// Command tracegen generates synthetic and MSR-like block I/O traces in
// the repository's binary or text trace formats.
//
// Usage:
//
//	tracegen -kind one-to-one  -n 2000   -o trace.bin
//	tracegen -kind wdev        -n 100000 -o wdev.bin -format text
//	tracegen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"daccor/internal/blktrace"
	"daccor/internal/msr"
	"daccor/internal/workload"
)

func main() {
	kind := flag.String("kind", "", "workload: one-to-one, one-to-many, many-to-many, wdev, src2, rsrch, stg, hm")
	n := flag.Int("n", 0, "synthetic: correlated occurrences; MSR-like: requests (0 = profile default)")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("o", "-", "output file (- for stdout)")
	format := flag.String("format", "binary", "output format: binary or text")
	list := flag.Bool("list", false, "list available workloads and exit")
	flag.Parse()

	if *list {
		fmt.Println("synthetic (known planted correlations):")
		for _, k := range []workload.Kind{workload.OneToOne, workload.OneToMany, workload.ManyToMany} {
			fmt.Printf("  %s\n", k)
		}
		fmt.Println("MSR-Cambridge-like enterprise servers:")
		for _, p := range msr.Profiles() {
			fmt.Printf("  %-6s %s (default %d requests)\n", p.Name, p.Description, p.DefaultRequests)
		}
		return
	}
	trace, err := generate(*kind, *n, *seed)
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	switch *format {
	case "binary":
		err = blktrace.WriteTrace(w, trace)
	case "text":
		err = blktrace.WriteText(w, trace)
	default:
		err = fmt.Errorf("unknown format %q (want binary or text)", *format)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d events (%s total, %s unique)\n",
		trace.Len(), msr.FormatBytes(trace.TotalBytes()), msr.FormatBytes(trace.UniqueBytes()))
}

func generate(kind string, n int, seed int64) (*blktrace.Trace, error) {
	synth := map[string]workload.Kind{
		"one-to-one":   workload.OneToOne,
		"one-to-many":  workload.OneToMany,
		"many-to-many": workload.ManyToMany,
	}
	if k, ok := synth[kind]; ok {
		if n <= 0 {
			n = 2000
		}
		syn, err := workload.Generate(workload.SyntheticConfig{Kind: k, Occurrences: n, Seed: seed})
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "planted correlations:\n")
		for i, c := range syn.Correlations {
			fmt.Fprintf(os.Stderr, "  rank %d (p=%.2f): %s <-> %s\n",
				i+1, c.Prob, c.Extents[0], c.Extents[1])
		}
		return syn.Trace, nil
	}
	p, err := msr.ProfileByName(kind)
	if err != nil {
		return nil, fmt.Errorf("unknown workload %q (try -list)", kind)
	}
	gen, err := p.Generate(n, seed)
	if err != nil {
		return nil, err
	}
	return gen.Trace, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
