// Command experiments regenerates every table and figure of the paper's
// evaluation, plus the Section V extensions and the ablations described
// in DESIGN.md.
//
// Usage:
//
//	experiments [flags] <experiment>...
//	experiments -scale 1 all
//
// Experiments: table1 table2 fig1 fig5 fig6 fig7 fig8 fig9 fig10
// gcopt ocssd ablation-window ablation-cap ablation-tiers
// stream-baseline cminer-baseline caching drift-baseline all
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"daccor/internal/experiments"
)

type renderer interface{ Render(io.Writer) }

type runner struct {
	order int
	run   func(experiments.Config) (renderer, error)
}

func wrap[T renderer](order int, f func(experiments.Config) (T, error)) runner {
	return runner{order: order, run: func(cfg experiments.Config) (renderer, error) {
		return f(cfg)
	}}
}

var registry = map[string]runner{
	"table1":          wrap(1, experiments.Table1),
	"table2":          wrap(2, experiments.Table2),
	"fig1":            wrap(3, experiments.Fig1),
	"fig5":            wrap(4, experiments.Fig5),
	"fig6":            wrap(5, experiments.Fig6),
	"fig7":            wrap(6, experiments.Fig7),
	"fig8":            wrap(7, experiments.Fig8),
	"fig9":            wrap(8, experiments.Fig9),
	"fig10":           wrap(9, experiments.Fig10),
	"gcopt":           wrap(10, experiments.GCOpt),
	"ocssd":           wrap(11, experiments.OCSSD),
	"ablation-window": wrap(12, experiments.AblationWindow),
	"ablation-cap":    wrap(13, experiments.AblationCap),
	"ablation-tiers":  wrap(14, experiments.AblationTiers),
	"stream-baseline": wrap(15, experiments.AblationStreamBaseline),
	"cminer-baseline": wrap(16, experiments.CMinerExperiment),
	"caching":         wrap(17, experiments.Caching),
	"drift-baseline":  wrap(18, experiments.SpaceSavingExperiment),
}

func names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Slice(out, func(i, j int) bool { return registry[out[i]].order < registry[out[j]].order })
	return out
}

func main() {
	scale := flag.Float64("scale", 1, "experiment scale (request counts and table sizes)")
	seed := flag.Int64("seed", 1, "random seed")
	support := flag.Int("support", 5, "minimum correlation frequency for real-world workloads")
	svgDir := flag.String("svg", "", "also write figure artifacts as SVG files into this directory")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: %s [flags] <experiment>...\n\nexperiments:\n", os.Args[0])
		for _, n := range names() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %s\n", n)
		}
		fmt.Fprintf(flag.CommandLine.Output(), "  all\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	cfg := experiments.Config{Scale: *scale, Seed: *seed, Support: *support}

	var selected []string
	for _, a := range args {
		if a == "all" {
			selected = names()
			break
		}
		if _, ok := registry[a]; !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", a)
			flag.Usage()
			os.Exit(2)
		}
		selected = append(selected, a)
	}
	if *svgDir != "" {
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	for i, name := range selected {
		if i > 0 {
			fmt.Println()
		}
		res, err := registry[name].run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		res.Render(os.Stdout)
		if *svgDir != "" {
			if sr, ok := res.(experiments.SVGRenderer); ok {
				if err := sr.RenderSVG(*svgDir); err != nil {
					fmt.Fprintf(os.Stderr, "%s: svg: %v\n", name, err)
					os.Exit(1)
				}
				fmt.Fprintf(os.Stderr, "(%s figures written to %s)\n", name, *svgDir)
			}
		}
	}
}
