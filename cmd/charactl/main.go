// Command charactl runs the real-time characterization pipeline over a
// trace: requests are replayed against a simulated NVMe device with the
// monitoring module (dynamic transaction window) and the online
// analysis module attached live, and the strongest detected extent
// correlations are printed.
//
// Usage:
//
//	tracegen -kind wdev -o wdev.bin
//	charactl -c 32768 -support 5 -top 20 wdev.bin
package main

import (
	"flag"
	"fmt"
	"os"

	"daccor/internal/blktrace"
	"daccor/internal/core"
	"daccor/internal/device"
	"daccor/internal/pipeline"
	"daccor/internal/replay"
)

func main() {
	capacity := flag.Int("c", 32*1024, "synopsis table size C (entries per tier, both tables)")
	support := flag.Uint("support", 5, "minimum correlation frequency to report")
	top := flag.Int("top", 20, "number of correlations to print (0 = all)")
	speedup := flag.Float64("speedup", 1, "replay acceleration factor")
	text := flag.Bool("text", false, "input is in text format instead of binary")
	rules := flag.Bool("rules", false, "also print directional association rules")
	minConf := flag.Float64("confidence", 0.5, "minimum rule confidence (with -rules)")
	save := flag.String("save", "", "save the synopsis state to this file afterwards")
	load := flag.String("load", "", "restore a previously saved synopsis state before analyzing")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintf(os.Stderr, "usage: %s [flags] <trace-file>\n", os.Args[0])
		flag.PrintDefaults()
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	var trace *blktrace.Trace
	if *text {
		trace, err = blktrace.ReadText(f)
	} else {
		trace, err = blktrace.ReadTrace(f)
	}
	if err != nil {
		fatal(err)
	}

	dev, err := device.New(device.NVMeSSD(), 1)
	if err != nil {
		fatal(err)
	}
	pcfg := pipeline.Config{
		Analyzer: core.Config{ItemCapacity: *capacity, PairCapacity: *capacity},
	}
	if *load != "" {
		lf, err := os.Open(*load)
		if err != nil {
			fatal(err)
		}
		restored, err := core.LoadAnalyzer(lf)
		lf.Close()
		if err != nil {
			fatal(err)
		}
		pcfg.Restored = restored
		fmt.Printf("restored synopsis state from %s (%d pairs held)\n\n",
			*load, restored.Pairs().Len())
	}
	pipe, res, err := pipeline.AnalyzeReplay(trace, dev, replay.Options{Speedup: *speedup}, pcfg)
	if err != nil {
		fatal(err)
	}

	mstats := pipe.Monitor().Stats()
	astats := pipe.Analyzer().Stats()
	fmt.Printf("replayed %d requests in %v simulated (mean read latency %v)\n",
		res.Requests, res.WallTime, res.MeanReadLatency)
	fmt.Printf("monitor: %d transactions, %d dedup'd requests, %d cap splits\n",
		mstats.Transactions, mstats.Duplicates, mstats.CapSplits)
	fmt.Printf("synopsis: %d extents, %d pair touches, %d pair evictions, %d bytes\n\n",
		astats.Extents, astats.PairTouches, astats.PairEvictions, pipe.Analyzer().MemoryBytes())

	snap := pipe.Snapshot(uint32(*support))
	fmt.Printf("%d extent correlations with frequency >= %d:\n", len(snap.Pairs), *support)
	limit := *top
	if limit <= 0 || limit > len(snap.Pairs) {
		limit = len(snap.Pairs)
	}
	for _, pc := range snap.Pairs[:limit] {
		tier := "T1"
		if pc.Tier == core.Tier2 {
			tier = "T2"
		}
		fmt.Printf("  %6d× %s  %s\n", pc.Count, tier, pc.Pair)
	}
	if limit < len(snap.Pairs) {
		fmt.Printf("  ... and %d more\n", len(snap.Pairs)-limit)
	}

	if *rules {
		rs := pipe.Analyzer().Rules(uint32(*support), *minConf)
		fmt.Printf("\n%d directional rules (confidence >= %.2f):\n", len(rs), *minConf)
		rlimit := *top
		if rlimit <= 0 || rlimit > len(rs) {
			rlimit = len(rs)
		}
		for _, r := range rs[:rlimit] {
			fmt.Printf("  %s -> %s  (%.0f%%, %d obs)\n", r.From, r.To, 100*r.Confidence, r.Support)
		}
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fatal(err)
		}
		if _, err := pipe.Analyzer().WriteTo(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("\nsynopsis state saved to %s\n", *save)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "charactl:", err)
	os.Exit(1)
}
