// Command charactld runs the characterization framework as a long-lived
// service: one or more devices stream workloads (generated, or replayed
// from a trace file in a loop) through the multi-device collection
// engine while an HTTP endpoint serves the live correlations, rules,
// and statistics — the shape of a deployment feeding a self-optimizing
// storage system across a fleet of volumes.
//
// With -partitions P each device's analyzer is split into P sub-shards
// processed by parallel partition workers — intra-device scale-up for
// a single hot volume — while every query and checkpoint still serves
// the merged per-device view.
//
// Usage:
//
//	charactld -workload wdev -devices 4 -partitions 4 -listen 127.0.0.1:7233
//	curl localhost:7233/v1/stats
//	curl localhost:7233/v1/devices
//	curl localhost:7233/v1/devices/dev0/snapshot?support=5
//	curl localhost:7233/v1/snapshot?support=5        # fleet-wide merge
//	curl localhost:7233/v1/rules?confidence=0.8      # fleet-wide rules
//	curl localhost:7233/v1/metrics                   # Prometheus text format
//	curl localhost:7233/v1/healthz                   # per-device supervision health
//	curl localhost:7233/v1/readyz                    # readiness probe
//
// With -checkpoint-dir, each device's synopsis is persisted crash-safely
// every -checkpoint-interval (atomic rename + fsync, keeping the last
// -checkpoint-keep generations) and restored on startup, so a restart
// skips the cold-start transient and a crash loses at most one
// interval:
//
//	charactld -workload wdev -checkpoint-dir /var/lib/charactld
//
// On SIGINT/SIGTERM the daemon shuts down in order: the HTTP listener
// stops accepting and drains in-flight requests under a deadline, the
// engine drains its queues and flushes open transactions, and each
// device writes a final checkpoint before the process exits.
//
// With -pprof, the standard net/http/pprof profiling handlers are
// mounted under /debug/pprof/ on the same listener:
//
//	charactld -workload wdev -pprof
//	go tool pprof http://localhost:7233/debug/pprof/profile?seconds=10
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"daccor/internal/blktrace"
	"daccor/internal/checkpoint"
	"daccor/internal/core"
	"daccor/internal/engine"
	"daccor/internal/fleet"
	"daccor/internal/msr"
	"daccor/internal/realtime"
	"daccor/internal/workload"
)

// shutdownTimeout bounds how long the HTTP server may spend draining
// in-flight requests once a termination signal arrives; the engine
// flush that follows is not subject to it (losing the final checkpoint
// to an impatient timer would defeat the point of checkpointing).
const shutdownTimeout = 5 * time.Second

func main() {
	wl := flag.String("workload", "wdev", "workload to stream: wdev, src2, rsrch, stg, hm, one-to-one, one-to-many, many-to-many, or a trace file path")
	n := flag.Int("n", 0, "requests per loop iteration per device (0 = workload default)")
	capacity := flag.Int("c", 32*1024, "synopsis table size C (entries per tier, per device)")
	devices := flag.Int("devices", 1, "number of devices to register and stream concurrently")
	partitions := flag.Int("partitions", 1, "per-device analyzer partitions: sub-shard workers processing each device's stream in parallel")
	queue := flag.Int("queue", engine.DefaultQueueSize, "per-device event queue capacity")
	listen := flag.String("listen", "127.0.0.1:7233", "HTTP listen address")
	seed := flag.Int64("seed", 1, "random seed (device i streams with seed+i)")
	pace := flag.Duration("pace", 50*time.Microsecond, "mean gap between submitted events per device (0 = as fast as possible)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/")
	ckptDir := flag.String("checkpoint-dir", "", "directory for crash-safe per-device synopsis checkpoints (empty = checkpointing off)")
	ckptInterval := flag.Duration("checkpoint-interval", 30*time.Second, "how often each device persists its synopsis (with -checkpoint-dir)")
	ckptKeep := flag.Int("checkpoint-keep", checkpoint.DefaultKeep, "checkpoint generations retained per device (with -checkpoint-dir)")
	aggregator := flag.String("aggregator", "", "aggregatord base URL to push delta syncs to (empty = fleet sync off)")
	collectorID := flag.String("collector-id", defaultCollectorID(), "fleet-wide collector identity (with -aggregator)")
	syncInterval := flag.Duration("sync-interval", fleet.DefaultSyncInterval, "how often to sync with the aggregator (with -aggregator)")
	drainTimeout := flag.Duration("drain-timeout", 0, "shutdown drain deadline: past it, queued events are discarded but the final checkpoint is still written (0 = drain fully)")
	flag.Parse()

	if *devices < 1 {
		log.Fatalf("charactld: -devices must be >= 1 (got %d)", *devices)
	}
	ids := make([]string, *devices)
	for i := range ids {
		ids[i] = fmt.Sprintf("dev%d", i)
	}
	opts := []engine.Option{
		engine.WithAnalyzer(core.Config{ItemCapacity: *capacity, PairCapacity: *capacity}),
		engine.WithQueueSize(*queue),
		engine.WithPartitions(*partitions),
		// A monitor must never stall its workload: drop-oldest, counted.
		engine.WithBackpressure(engine.DropOldest),
	}
	if *ckptDir != "" {
		if *ckptInterval <= 0 {
			log.Fatalf("charactld: -checkpoint-interval must be > 0 (got %v)", *ckptInterval)
		}
		store, err := checkpoint.Open(checkpoint.Config{Dir: *ckptDir, Keep: *ckptKeep})
		if err != nil {
			log.Fatal(err)
		}
		opts = append(opts, engine.WithCheckpoints(store, *ckptInterval))
	}
	// Devices are registered after the options so checkpoint restore
	// applies to each of them.
	opts = append(opts, engine.WithDevices(ids...))
	eng, err := engine.New(opts...)
	if err != nil {
		log.Fatal(err)
	}
	if *ckptDir != "" {
		for _, h := range eng.Health() {
			if h.CheckpointSeq != 0 {
				log.Printf("charactld: %s restored checkpoint generation %d (%s)",
					h.Device, h.CheckpointSeq, h.LastCheckpoint.Format(time.RFC3339))
			}
		}
	}

	var total int
	for i, id := range ids {
		// Distinct seeds give each device its own stream, so per-device
		// and merged views genuinely differ.
		trace, err := loadWorkload(*wl, *n, *seed+int64(i))
		if err != nil {
			log.Fatal(err)
		}
		total += trace.Len()
		dev, err := eng.Device(id)
		if err != nil {
			log.Fatal(err)
		}
		go feedForever(dev, trace, *pace)
	}

	var sync *fleet.SyncClient
	if *aggregator != "" {
		var err error
		sync, err = fleet.NewSyncClient(fleet.ClientConfig{
			Aggregator: *aggregator,
			Collector:  *collectorID,
			Engine:     eng,
			Interval:   *syncInterval,
		})
		if err != nil {
			log.Fatal(err)
		}
		sync.Start()
	}

	handler := realtime.NewEngineHandler(eng)
	if *pprofOn {
		// The profiling surface is opt-in: it exposes stacks, heap
		// contents, and CPU time, which an always-on ops endpoint
		// should not.
		root := http.NewServeMux()
		root.Handle("/", handler)
		root.HandleFunc("/debug/pprof/", pprof.Index)
		root.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		root.HandleFunc("/debug/pprof/profile", pprof.Profile)
		root.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		root.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = root
	}

	log.Printf("charactld: streaming %q to %d device(s) (%d events per loop), serving on http://%s",
		*wl, *devices, total, *listen)
	log.Printf("v1 endpoints: /v1/stats  /v1/devices  /v1/devices/{id}/snapshot  /v1/devices/{id}/rules  /v1/snapshot  /v1/rules  /v1/metrics  /v1/healthz  /v1/readyz")
	if *pprofOn {
		log.Printf("pprof: /debug/pprof/")
	}
	if *ckptDir != "" {
		log.Printf("checkpoints: %s every %v (keep %d)", *ckptDir, *ckptInterval, *ckptKeep)
	}
	if sync != nil {
		log.Printf("fleet sync: pushing to %s as %q every %v", *aggregator, *collectorID, *syncInterval)
	}

	srv := &http.Server{Addr: *listen, Handler: handler}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	// stopAll is the ordered teardown: flush the last state to the
	// aggregator while the engine is still live, stop the sync loop,
	// then drain the engine — forcibly past -drain-timeout, trading
	// queued events (counted as dropped) for a bounded shutdown while
	// still writing every device's final checkpoint.
	stopAll := func() {
		if sync != nil {
			ctx, cancel := context.WithTimeout(context.Background(), fleet.DefaultSyncTimeout)
			if _, err := sync.SyncNow(ctx); err != nil {
				log.Printf("charactld: final fleet sync: %v", err)
			}
			cancel()
			sync.Close()
		}
		if *drainTimeout > 0 {
			if forced := eng.StopTimeout(*drainTimeout); forced {
				log.Printf("charactld: drain deadline %v exceeded: queued events discarded, final checkpoints written", *drainTimeout)
			}
			return
		}
		eng.Stop()
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("charactld: %v: shutting down (drain deadline %v)", sig, shutdownTimeout)
		// Stop serving first so probes and clients see the listener go
		// away before the engine stops answering, then drain the engine:
		// queued events are processed, transactions flushed, and each
		// device writes its final checkpoint.
		ctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("charactld: http shutdown: %v", err)
		}
		cancel()
		stopAll()
		log.Printf("charactld: drained and stopped")
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			// The listener died on its own (port conflict, fd pressure);
			// still drain the engine so the final checkpoint is written.
			stopAll()
			log.Fatal(err)
		}
	}
}

// defaultCollectorID names this collector in the fleet: the hostname,
// which is what an operator grepping the aggregator's /v1/collectors
// output will recognize.
func defaultCollectorID() string {
	if h, err := os.Hostname(); err == nil && h != "" {
		return h
	}
	return "charactld"
}

func loadWorkload(name string, n int, seed int64) (*blktrace.Trace, error) {
	synth := map[string]workload.Kind{
		"one-to-one":   workload.OneToOne,
		"one-to-many":  workload.OneToMany,
		"many-to-many": workload.ManyToMany,
	}
	if k, ok := synth[name]; ok {
		if n <= 0 {
			n = 2000
		}
		syn, err := workload.Generate(workload.SyntheticConfig{Kind: k, Occurrences: n, Seed: seed})
		if err != nil {
			return nil, err
		}
		return syn.Trace, nil
	}
	if p, err := msr.ProfileByName(name); err == nil {
		gen, err := p.Generate(n, seed)
		if err != nil {
			return nil, err
		}
		return gen.Trace, nil
	}
	f, err := os.Open(name)
	if err != nil {
		return nil, fmt.Errorf("workload %q is neither a known profile nor a readable trace file: %w", name, err)
	}
	defer f.Close()
	return blktrace.ReadTrace(f)
}

// feedBatch is the replay batch size when streaming unpaced: big
// enough to amortize the per-batch queue lock, small enough that
// queries never wait long behind a batch.
const feedBatch = 256

// feedForever loops the trace through one device, re-basing timestamps
// each iteration so the stream is continuous. Unpaced replay submits
// in batches (one queue lock per feedBatch events); paced replay keeps
// the per-event path so the gap applies between individual events.
func feedForever(dev *engine.Device, t *blktrace.Trace, pace time.Duration) {
	if t.Len() == 0 {
		return
	}
	var clock int64
	batch := make([]blktrace.Event, 0, feedBatch)
	for {
		base := t.Events[0].Time
		var last int64
		for _, ev := range t.Events {
			ev.Time = clock + (ev.Time - base)
			last = ev.Time
			if pace > 0 {
				if err := dev.Submit(ev); err != nil {
					return // engine stopped or device failed
				}
				dev.ObserveLatency(int64(40 * time.Microsecond))
				time.Sleep(pace)
				continue
			}
			batch = append(batch, ev)
			if len(batch) == feedBatch {
				if err := dev.SubmitBatch(batch); err != nil {
					return // engine stopped or device failed
				}
				dev.ObserveLatency(int64(40 * time.Microsecond))
				batch = batch[:0]
			}
		}
		if len(batch) > 0 {
			if err := dev.SubmitBatch(batch); err != nil {
				return
			}
			dev.ObserveLatency(int64(40 * time.Microsecond))
			batch = batch[:0]
		}
		clock = last + int64(time.Millisecond)
	}
}
