// Command charactld runs the characterization framework as a long-lived
// service: a workload (generated, or replayed from a trace file in a
// loop) streams through the concurrent collector while an HTTP endpoint
// serves the live correlations, rules, and statistics — the shape of a
// deployment feeding a self-optimizing storage system.
//
// Usage:
//
//	charactld -workload wdev -listen 127.0.0.1:7233
//	curl localhost:7233/snapshot?support=5
//	curl localhost:7233/rules?confidence=0.8
//	curl localhost:7233/stats
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"daccor/internal/blktrace"
	"daccor/internal/core"
	"daccor/internal/msr"
	"daccor/internal/pipeline"
	"daccor/internal/realtime"
	"daccor/internal/workload"
)

func main() {
	wl := flag.String("workload", "wdev", "workload to stream: wdev, src2, rsrch, stg, hm, one-to-one, one-to-many, many-to-many, or a trace file path")
	n := flag.Int("n", 0, "requests per loop iteration (0 = workload default)")
	capacity := flag.Int("c", 32*1024, "synopsis table size C (entries per tier)")
	listen := flag.String("listen", "127.0.0.1:7233", "HTTP listen address")
	seed := flag.Int64("seed", 1, "random seed")
	pace := flag.Duration("pace", 50*time.Microsecond, "mean gap between submitted events (0 = as fast as possible)")
	flag.Parse()

	trace, err := loadWorkload(*wl, *n, *seed)
	if err != nil {
		log.Fatal(err)
	}
	collector, err := realtime.Start(realtime.Config{
		Pipeline: pipeline.Config{
			Analyzer: core.Config{ItemCapacity: *capacity, PairCapacity: *capacity},
		},
		DropOnBackpressure: true, // a monitor must never stall its workload
	})
	if err != nil {
		log.Fatal(err)
	}

	go feedForever(collector, trace, *pace)

	log.Printf("charactld: streaming %q (%d events per loop), serving on http://%s",
		*wl, trace.Len(), *listen)
	log.Printf("endpoints: /snapshot?support=N  /rules?support=N&confidence=F  /stats")
	if err := http.ListenAndServe(*listen, realtime.NewHTTPHandler(collector)); err != nil {
		log.Fatal(err)
	}
}

func loadWorkload(name string, n int, seed int64) (*blktrace.Trace, error) {
	synth := map[string]workload.Kind{
		"one-to-one":   workload.OneToOne,
		"one-to-many":  workload.OneToMany,
		"many-to-many": workload.ManyToMany,
	}
	if k, ok := synth[name]; ok {
		if n <= 0 {
			n = 2000
		}
		syn, err := workload.Generate(workload.SyntheticConfig{Kind: k, Occurrences: n, Seed: seed})
		if err != nil {
			return nil, err
		}
		return syn.Trace, nil
	}
	if p, err := msr.ProfileByName(name); err == nil {
		gen, err := p.Generate(n, seed)
		if err != nil {
			return nil, err
		}
		return gen.Trace, nil
	}
	f, err := os.Open(name)
	if err != nil {
		return nil, fmt.Errorf("workload %q is neither a known profile nor a readable trace file: %w", name, err)
	}
	defer f.Close()
	return blktrace.ReadTrace(f)
}

// feedForever loops the trace through the collector, re-basing
// timestamps each iteration so the stream is continuous.
func feedForever(c *realtime.Collector, t *blktrace.Trace, pace time.Duration) {
	if t.Len() == 0 {
		return
	}
	var clock int64
	for {
		base := t.Events[0].Time
		var last int64
		for _, ev := range t.Events {
			ev.Time = clock + (ev.Time - base)
			last = ev.Time
			if err := c.Submit(ev); err != nil {
				return // collector stopped
			}
			c.ObserveLatency(int64(40 * time.Microsecond))
			if pace > 0 {
				time.Sleep(pace)
			}
		}
		clock = last + int64(time.Millisecond)
	}
}
