package main

import "testing"

// TestScenarioClosedLoop runs the quick configuration end to end —
// replay → HTTP ingest → /v1/watch push → live prefetcher/assigner —
// and holds the PR's acceptance bar: online rules must strictly
// improve the cache hit rate over the no-rules baseline.
func TestScenarioClosedLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("full closed-loop replay")
	}
	online, baseline, err := run(defaultConfig(true, 42))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("hit rate: online %.2f%% vs baseline %.2f%%", online.hitRate()*100, baseline.hitRate()*100)
	t.Logf("WAF: online %.3f vs baseline %.3f", online.ssd.WAF, baseline.ssd.WAF)
	if online.hitRate() <= baseline.hitRate() {
		t.Errorf("online hit rate %.4f not strictly better than baseline %.4f",
			online.hitRate(), baseline.hitRate())
	}
	if online.cache.PrefetchHits == 0 {
		t.Error("online run recorded no prefetch hits — the watch feed never reached the prefetcher")
	}
	if online.ruleUpdates == 0 || online.streamUpdates == 0 {
		t.Errorf("live adapters not updated (rule updates %d, stream updates %d)",
			online.ruleUpdates, online.streamUpdates)
	}
	if online.ssd.HostPages == 0 || baseline.ssd.HostPages == 0 {
		t.Error("no write traffic reached the simulated SSD")
	}
}
