// Command scenario closes the paper's loop end to end and measures
// what the closed loop buys:
//
//	replayed workload → engine ingest (HTTP) → /v1/watch push stream
//	    → live prefetcher + live stream assigner → simulated device
//
// A synthetic trace with planted read and write correlations is
// replayed twice over identical cache/FTL/device simulations:
//
//   - online: events are ingested into the collection engine over the
//     v1 API while a /v1/watch SSE subscription pushes each new rule
//     state into a cache.RulePrefetcher (reads) and an
//     ftl.RuleStreams assigner (writes) — no polling anywhere.
//   - baseline: the same replay with no online rules (demand-only LRU,
//     single-stream SSD).
//
// Both runs share a warmup segment (excluded from measurement; the
// online run waits until the watch stream has delivered a non-empty
// rule set) and report, for the measured segment: cache hit rate,
// prefetch hits/waste, mean simulated read latency, SSD write
// amplification, and GC relocations. Output is a benchjson-compatible
// document (the committed SCENARIO_quick.json joins the benchjson
// -diff gate): each metric is one benchmark entry whose ns_per_op
// field carries the metric value and whose n carries the sample count.
//
// The command exits non-zero if the online cache hit rate is not
// strictly better than the baseline — the closed loop must pay for
// itself.
//
//	scenario [-quick] [-seed N] [-o out.json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"time"

	"daccor/internal/blktrace"
	"daccor/internal/cache"
	"daccor/internal/core"
	"daccor/internal/device"
	"daccor/internal/engine"
	"daccor/internal/ftl"
	"daccor/internal/monitor"
	"daccor/internal/realtime"
	"daccor/internal/workload"
	"daccor/pkg/client"
)

const deviceID = "vol0"

// scenarioConfig sizes one scenario run.
type scenarioConfig struct {
	occurrences int
	seed        int64
	// warmFrac is the leading fraction of the trace used to learn
	// rules before measurement starts.
	warmFrac float64
	// ruleWait bounds how long the online run waits for the watch
	// stream to deliver its first non-empty rule set.
	ruleWait time.Duration
}

func defaultConfig(quick bool, seed int64) scenarioConfig {
	cfg := scenarioConfig{
		occurrences: 6000,
		seed:        seed,
		warmFrac:    0.3,
		ruleWait:    30 * time.Second,
	}
	if quick {
		cfg.occurrences = 1500
	}
	return cfg
}

// generate builds the default replayed workload: one-to-one planted
// correlations (half reading, half writing), Poisson noise with a
// write fraction. The noise is dense relative to the correlation
// interarrival so the read cache is flushed between group recurrences
// — exactly the regime where semantic prefetch beats plain LRU.
func generate(cfg scenarioConfig) (*workload.Synthetic, error) {
	return workload.Generate(workload.SyntheticConfig{
		Kind:               workload.OneToOne,
		Occurrences:        cfg.occurrences,
		Correlations:       8,
		WriteGroups:        4,
		NoiseWriteFrac:     0.15,
		CorrelationMeanGap: 200 * time.Millisecond,
		NoiseMeanGap:       25 * time.Millisecond,
		Seed:               cfg.seed,
	})
}

// Simulation parameters shared by both runs.
const (
	cacheCapacity = 8
	ssdStreams    = 4
	ssdEUs        = 64
	ssdPagesPerEU = 32
	cacheHitNs    = 5_000 // served from DRAM cache: 5 µs
)

// sim is one replay target: cache + prefetcher, SSD + assigner,
// latency-model device.
type sim struct {
	cache    *cache.Cache
	prefetch cache.Prefetcher
	ssd      *ftl.SSD
	assign   ftl.StreamAssigner
	dev      *device.Device
	// logicalPages folds the trace's sparse block space onto the
	// simulated SSD's logical capacity.
	logicalPages uint64

	readLatencyNs uint64
	reads         uint64
}

func newSim(seed int64, prefetch cache.Prefetcher, assign ftl.StreamAssigner) (*sim, error) {
	c, err := cache.New(cacheCapacity)
	if err != nil {
		return nil, err
	}
	ssd, err := ftl.NewSSD(ftl.SSDConfig{EUs: ssdEUs, PagesPerEU: ssdPagesPerEU, Streams: ssdStreams})
	if err != nil {
		return nil, err
	}
	dev, err := device.New(device.NVMeSSD(), seed)
	if err != nil {
		return nil, err
	}
	logical := uint64(ssd.LogicalCapacityPages()) * 9 / 10
	return &sim{cache: c, prefetch: prefetch, ssd: ssd, assign: assign, dev: dev, logicalPages: logical}, nil
}

// replay runs one event through the simulation. Reads go through the
// cache (a miss pays the simulated device's read latency, a hit the
// DRAM cost) and trigger the prefetcher; writes are folded onto the
// SSD's logical space and placed by the stream assigner, keyed on the
// *original* extent — the address the characterizer learned.
func (s *sim) replay(ev blktrace.Event, measure bool) error {
	if ev.Op == blktrace.OpRead {
		hit := s.cache.Access(ev.Extent)
		if measure {
			s.reads++
			if hit {
				s.readLatencyNs += cacheHitNs
			} else {
				s.readLatencyNs += uint64(s.dev.ServiceTime(ev.Op, ev.Extent))
			}
		}
		for _, p := range s.prefetch.SuggestFor(ev.Extent) {
			s.cache.Prefetch(p)
		}
		return nil
	}
	stream := s.assign.Assign(ev.Extent)
	folded := blktrace.Extent{
		Block: (ftl.PageOf(ev.Extent.Block) % s.logicalPages) * ftl.BlocksPerPage,
		Len:   ev.Extent.Len,
	}
	return s.ssd.WriteExtent(folded, stream)
}

// meanReadLatencyNs is the measured segment's average simulated read
// latency (cache hits at DRAM cost, misses at device cost).
func (s *sim) meanReadLatencyNs() float64 {
	if s.reads == 0 {
		return 0
	}
	return float64(s.readLatencyNs) / float64(s.reads)
}

// runResult is one replay's measured-segment numbers.
type runResult struct {
	cache         cache.Stats
	ssd           ftl.SSDStats
	meanReadNs    float64
	reads         uint64
	ruleUpdates   uint64
	streamUpdates uint64
}

func (r runResult) hitRate() float64 { return r.cache.HitRate() }

// statsDelta subtracts the warmup's cache counters so only the
// measured segment is reported.
func statsDelta(after, before cache.Stats) cache.Stats {
	return cache.Stats{
		Hits:          after.Hits - before.Hits,
		Misses:        after.Misses - before.Misses,
		Prefetches:    after.Prefetches - before.Prefetches,
		PrefetchHits:  after.PrefetchHits - before.PrefetchHits,
		PrefetchWaste: after.PrefetchWaste - before.PrefetchWaste,
	}
}

// runBaseline replays the trace with no online rules: demand-only LRU
// and the single-append-point SSD.
func runBaseline(cfg scenarioConfig, syn *workload.Synthetic) (runResult, error) {
	s, err := newSim(cfg.seed+1, cache.NonePrefetcher{}, ftl.SingleStream{})
	if err != nil {
		return runResult{}, err
	}
	events := syn.Trace.Events
	warm := int(float64(len(events)) * cfg.warmFrac)
	for _, ev := range events[:warm] {
		if err := s.replay(ev, false); err != nil {
			return runResult{}, err
		}
	}
	pre := s.cache.Stats()
	s.ssd.ResetCounters()
	for _, ev := range events[warm:] {
		if err := s.replay(ev, true); err != nil {
			return runResult{}, err
		}
	}
	return runResult{
		cache:      statsDelta(s.cache.Stats(), pre),
		ssd:        s.ssd.Stats(),
		meanReadNs: s.meanReadLatencyNs(),
		reads:      s.reads,
	}, nil
}

// runOnline replays the trace through the full closed loop: events are
// ingested into a live engine over HTTP, and a /v1/watch subscription
// pushes every rule-state advance into the prefetcher and stream
// assigner while the replay runs.
func runOnline(cfg scenarioConfig, syn *workload.Synthetic) (runResult, error) {
	eng, err := engine.New(
		engine.WithMonitor(monitor.Config{Window: monitor.StaticWindow(time.Millisecond)}),
		engine.WithAnalyzer(core.Config{ItemCapacity: 4096, PairCapacity: 4096}),
		engine.WithBackpressure(engine.Block),
		engine.WithQueueSize(4096),
		engine.WithDevices(deviceID),
	)
	if err != nil {
		return runResult{}, err
	}
	defer eng.Stop()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return runResult{}, err
	}
	srv := &http.Server{Handler: realtime.NewEngineHandler(eng)}
	go srv.Serve(ln)
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cli := client.New("http://" + ln.Addr().String())

	pref := cache.NewRulePrefetcher(2)
	asg, err := ftl.NewRuleStreams(ssdStreams)
	if err != nil {
		return runResult{}, err
	}

	// The push half of the loop: every watch delivery (one per epoch
	// advance, coalesced under load) re-indexes the prefetcher and
	// regroups the stream assigner.
	w, err := cli.Watch(ctx, deviceID, client.Query{Support: 3, Confidence: 0.6, Top: 1000})
	if err != nil {
		return runResult{}, err
	}
	defer w.Close()
	gotRules := make(chan struct{})
	go func() {
		signaled := false
		for st := range w.Events() {
			pref.SetRules(st.Rules)
			asg.SetPairs(st.Pairs)
			if !signaled && len(st.Rules) > 0 {
				close(gotRules)
				signaled = true
			}
		}
	}()

	s, err := newSim(cfg.seed+1, pref, asg)
	if err != nil {
		return runResult{}, err
	}

	events := syn.Trace.Events
	warm := int(float64(len(events)) * cfg.warmFrac)
	const batch = 512
	feed := func(evs []blktrace.Event, measure bool) error {
		for len(evs) > 0 {
			n := min(batch, len(evs))
			if _, err := cli.SubmitEvents(ctx, deviceID, evs[:n]); err != nil {
				return err
			}
			for _, ev := range evs[:n] {
				if err := s.replay(ev, measure); err != nil {
					return err
				}
			}
			evs = evs[n:]
		}
		return nil
	}
	if err := feed(events[:warm], false); err != nil {
		return runResult{}, err
	}
	// Measurement starts only once the loop is actually closed: the
	// watch stream must have pushed a usable rule set.
	select {
	case <-gotRules:
	case <-time.After(cfg.ruleWait):
		return runResult{}, fmt.Errorf("no rules learned within %v of warmup", cfg.ruleWait)
	}
	pre := s.cache.Stats()
	s.ssd.ResetCounters()
	if err := feed(events[warm:], true); err != nil {
		return runResult{}, err
	}
	return runResult{
		cache:         statsDelta(s.cache.Stats(), pre),
		ssd:           s.ssd.Stats(),
		meanReadNs:    s.meanReadLatencyNs(),
		reads:         s.reads,
		ruleUpdates:   pref.Updates(),
		streamUpdates: asg.Updates(),
	}, nil
}

// benchjson-compatible output (see cmd/benchjson): one entry per
// metric, value in ns_per_op, sample count in n.
type benchResult struct {
	Name        string  `json:"name"`
	Pkg         string  `json:"pkg,omitempty"`
	N           int64   `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type benchDoc struct {
	Goos       string        `json:"goos,omitempty"`
	Goarch     string        `json:"goarch,omitempty"`
	Benchmarks []benchResult `json:"benchmarks"`
}

func report(online, baseline runResult) benchDoc {
	entry := func(name string, n uint64, value float64) benchResult {
		return benchResult{Name: name, Pkg: "daccor/cmd/scenario", N: int64(n), NsPerOp: value}
	}
	return benchDoc{
		Goos:   runtime.GOOS,
		Goarch: runtime.GOARCH,
		Benchmarks: []benchResult{
			entry("ScenarioCacheHitPct/online", online.cache.Hits+online.cache.Misses, online.hitRate()*100),
			entry("ScenarioCacheHitPct/baseline", baseline.cache.Hits+baseline.cache.Misses, baseline.hitRate()*100),
			entry("ScenarioCacheHitPct/delta", online.cache.Hits+online.cache.Misses,
				(online.hitRate()-baseline.hitRate())*100),
			entry("ScenarioPrefetchHits/online", online.cache.Prefetches, float64(online.cache.PrefetchHits)),
			entry("ScenarioPrefetchWaste/online", online.cache.Prefetches, float64(online.cache.PrefetchWaste)),
			entry("ScenarioMeanReadLatencyNs/online", online.reads, online.meanReadNs),
			entry("ScenarioMeanReadLatencyNs/baseline", baseline.reads, baseline.meanReadNs),
			entry("ScenarioWAF/online", online.ssd.HostPages, online.ssd.WAF),
			entry("ScenarioWAF/baseline", baseline.ssd.HostPages, baseline.ssd.WAF),
			entry("ScenarioGCRelocatedPages/online", online.ssd.GCRuns, float64(online.ssd.RelocatedPages)),
			entry("ScenarioGCRelocatedPages/baseline", baseline.ssd.GCRuns, float64(baseline.ssd.RelocatedPages)),
			entry("ScenarioWatchRuleUpdates/online", online.ruleUpdates, float64(online.ruleUpdates)),
		},
	}
}

// run executes the full scenario and returns both results (exposed for
// the package test).
func run(cfg scenarioConfig) (online, baseline runResult, err error) {
	syn, err := generate(cfg)
	if err != nil {
		return runResult{}, runResult{}, err
	}
	baseline, err = runBaseline(cfg, syn)
	if err != nil {
		return runResult{}, runResult{}, err
	}
	online, err = runOnline(cfg, syn)
	if err != nil {
		return runResult{}, runResult{}, err
	}
	return online, baseline, nil
}

func main() {
	quick := flag.Bool("quick", false, "smaller workload (CI smoke run)")
	seed := flag.Int64("seed", 42, "workload generation seed")
	out := flag.String("o", "", "write benchjson output to this file instead of stdout")
	flag.Parse()

	cfg := defaultConfig(*quick, *seed)
	online, baseline, err := run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scenario:", err)
		os.Exit(1)
	}

	doc := report(online, baseline)
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scenario:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "scenario:", err)
		os.Exit(1)
	}

	fmt.Fprintf(os.Stderr, "scenario: hit rate %.2f%% online vs %.2f%% baseline, WAF %.3f vs %.3f, mean read %.1fµs vs %.1fµs\n",
		online.hitRate()*100, baseline.hitRate()*100,
		online.ssd.WAF, baseline.ssd.WAF,
		online.meanReadNs/1e3, baseline.meanReadNs/1e3)
	if online.hitRate() <= baseline.hitRate() {
		fmt.Fprintln(os.Stderr, "scenario: FAIL — online rules did not improve the cache hit rate")
		os.Exit(1)
	}
}
