// Command loadgen soaks the full service under sustained multi-tenant
// load: many devices fed concurrently over the engine and HTTP ingest
// paths, tenants churned out of and back into the fleet mid-stream,
// worker crashes injected under the supervisor, and live query + SSE
// watch traffic held open throughout. After the run it asserts the
// SLOs (tail submit latency, drop rate, heap growth, goroutine leaks,
// watcher liveness) and writes the measured metrics as a cmd/benchjson
// document, so a committed baseline gates soak regressions with
// `benchjson -diff`.
//
// The command exits non-zero when any SLO is violated.
//
//	loadgen [-profile quick|tiny] [-partitions P] [-seed N] [-o out.json]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"daccor/internal/soak"
)

func main() {
	profile := flag.String("profile", "quick", "soak profile: quick or tiny")
	partitions := flag.Int("partitions", 0, "override the profile's per-device analyzer partition count (0 = profile default)")
	seed := flag.Int64("seed", 0, "override the profile's workload seed")
	out := flag.String("o", "", "write benchjson metrics to this file instead of stdout")
	flag.Parse()

	var cfg soak.Config
	switch *profile {
	case "quick":
		cfg = soak.Quick()
	case "tiny":
		cfg = soak.Tiny()
	default:
		fmt.Fprintf(os.Stderr, "loadgen: unknown profile %q (want quick or tiny)\n", *profile)
		os.Exit(2)
	}
	if *partitions != 0 {
		cfg.Partitions = *partitions
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	logger := log.New(os.Stderr, "", log.Ltime)
	res, err := soak.Run(cfg, logger.Printf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := soak.WriteBenchJSON(w, res); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}

	if len(res.Violations) > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d SLO violation(s):\n", len(res.Violations))
		for _, v := range res.Violations {
			fmt.Fprintln(os.Stderr, "  -", v)
		}
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "loadgen: all SLOs held: %d events, %d devices, %d churns, %d panics, p99 %v\n",
		res.EventsSubmitted, res.Devices, res.ChurnCycles, res.PanicsInjected, res.SubmitP99)
}
