// Command fimine performs offline frequent itemset mining over a trace,
// the baseline methodology the paper compares against: the trace is
// windowed into transactions (as the monitoring module would) and mined
// with apriori, eclat, or fp-growth.
//
// With -sequences, it instead mines gap-constrained frequent closed
// subsequences in the style of C-Miner (Li et al., FAST '04).
//
// Usage:
//
//	fimine -algo eclat -support 10 -window 10ms trace.bin
//	fimine -sequences -gap 2 -seglen 128 -support 5 trace.bin
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"daccor/internal/blktrace"
	"daccor/internal/cminer"
	"daccor/internal/fim"
	"daccor/internal/monitor"
	"daccor/internal/pipeline"
)

func main() {
	algo := flag.String("algo", "eclat", "mining algorithm: apriori, eclat, fpgrowth, brute")
	support := flag.Int("support", 5, "minimum support (transactions)")
	maxLen := flag.Int("maxlen", 2, "maximum itemset length (0 = unlimited)")
	window := flag.Duration("window", 100*time.Microsecond, "static transaction window")
	cap8 := flag.Int("cap", monitor.DefaultMaxRequests, "transaction size cap")
	top := flag.Int("top", 30, "itemsets to print (0 = all)")
	text := flag.Bool("text", false, "input is in text format instead of binary")
	sequences := flag.Bool("sequences", false, "mine gap-constrained subsequences (C-Miner style) instead of itemsets")
	gap := flag.Int("gap", 2, "C-Miner gap (with -sequences)")
	seglen := flag.Int("seglen", cminer.DefaultSegmentLen, "sequence segment length (with -sequences)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintf(os.Stderr, "usage: %s [flags] <trace-file>\n", os.Args[0])
		flag.PrintDefaults()
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	var trace *blktrace.Trace
	if *text {
		trace, err = blktrace.ReadText(f)
	} else {
		trace, err = blktrace.ReadTrace(f)
	}
	if err != nil {
		fatal(err)
	}

	if *sequences {
		mineSequences(trace, cminer.Options{
			SegmentLen: *seglen,
			Gap:        *gap,
			MinSupport: *support,
			MaxLen:     maxOr(*maxLen, cminer.DefaultMaxLen),
		}, *top)
		return
	}

	txs, err := monitor.Collect(trace, monitor.Config{
		Window:      monitor.StaticWindow(*window),
		MaxRequests: *cap8,
	})
	if err != nil {
		fatal(err)
	}
	ds := fim.NewDataset(pipeline.ExtentSets(txs))
	start := time.Now()
	mined, err := fim.Mine(fim.Algorithm(*algo), ds, fim.Options{
		MinSupport: *support,
		MaxLen:     *maxLen,
	})
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("%d transactions, %d distinct extents\n", ds.Transactions(), ds.Items())
	fmt.Printf("%s mined %d frequent itemsets (support >= %d) in %v\n\n",
		*algo, len(mined), *support, elapsed)
	limit := *top
	if limit <= 0 || limit > len(mined) {
		limit = len(mined)
	}
	for _, fs := range mined[:limit] {
		fmt.Printf("  %6d× ", fs.Support)
		for i, e := range ds.Decode(fs.Items) {
			if i > 0 {
				fmt.Print(" + ")
			}
			fmt.Print(e)
		}
		fmt.Println()
	}
	if limit < len(mined) {
		fmt.Printf("  ... and %d more\n", len(mined)-limit)
	}
}

func maxOr(v, def int) int {
	if v <= 0 {
		return def
	}
	return v
}

func mineSequences(trace *blktrace.Trace, opts cminer.Options, top int) {
	start := time.Now()
	res, err := cminer.Mine(trace, opts)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("%d sequences of up to %d requests\n", res.Sequences, opts.SegmentLen)
	fmt.Printf("C-Miner-style mining found %d closed patterns (support >= %d, gap %d) in %v\n\n",
		len(res.Patterns), opts.MinSupport, opts.Gap, elapsed)
	limit := top
	if limit <= 0 || limit > len(res.Patterns) {
		limit = len(res.Patterns)
	}
	for _, p := range res.Patterns[:limit] {
		fmt.Printf("  %6d× ", p.Support)
		for i, e := range p.Extents {
			if i > 0 {
				fmt.Print(" -> ")
			}
			fmt.Print(e)
		}
		fmt.Println()
	}
	if limit < len(res.Patterns) {
		fmt.Printf("  ... and %d more\n", len(res.Patterns)-limit)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fimine:", err)
	os.Exit(1)
}
