// Command aggregatord is the fleet half of the deployment: it accepts
// delta syncs pushed by charactld collectors (POST /v1/sync), mirrors
// their per-device synopses, and serves the merged fleet-wide
// correlations, rules, and staleness over the /v1 read surface.
//
// The aggregator is built to keep answering through partitions: a
// collector that goes silent ages from healthy to degraded (its mirror
// still serves, marked stale in every response's data.fleet block) to
// failed (excluded from the merge), and reads never turn into 5xxs on
// the way down. A collector whose sync disagrees with the mirror is
// repaired by anti-entropy — the aggregator demands a full snapshot
// and the collector ships it next round.
//
// Usage:
//
//	aggregatord -listen 127.0.0.1:9700
//	charactld -workload wdev -aggregator http://127.0.0.1:9700
//	curl localhost:9700/v1/snapshot?support=5   # fleet-wide merge + staleness
//	curl localhost:9700/v1/collectors           # per-collector sync state
//	curl localhost:9700/v1/watch                # SSE push of fleet changes
//
// With -state-dir the mirrors are checkpointed crash-safely every
// -state-interval and restored on startup, so a restart serves the
// fleet view immediately — and collectors that kept running can resume
// delta syncing against the restored mirrors instead of re-shipping
// full snapshots.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"daccor/internal/checkpoint"
	"daccor/internal/fleet"
)

// stateDevice is the checkpoint-store key the aggregator's state is
// filed under; the store is per-device, and the aggregator state is
// one logical device.
const stateDevice = "aggregator"

// shutdownTimeout bounds the HTTP drain on termination; the final
// state save that follows is not subject to it.
const shutdownTimeout = 5 * time.Second

func main() {
	listen := flag.String("listen", "127.0.0.1:9700", "HTTP listen address")
	lease := flag.Duration("lease", fleet.DefaultLease, "sync lease: a collector silent longer than this is degraded (served stale)")
	failAfter := flag.Duration("fail-after", fleet.DefaultFailAfter, "silence after which a collector is failed and excluded from merged reads")
	stateDir := flag.String("state-dir", "", "directory for crash-safe mirror state checkpoints (empty = persistence off)")
	stateInterval := flag.Duration("state-interval", 30*time.Second, "how often the mirror state is persisted (with -state-dir)")
	stateKeep := flag.Int("state-keep", checkpoint.DefaultKeep, "state generations retained (with -state-dir)")
	flag.Parse()

	agg := fleet.NewAggregator(fleet.Config{Lease: *lease, FailAfter: *failAfter})

	var store *checkpoint.Store
	if *stateDir != "" {
		if *stateInterval <= 0 {
			log.Fatalf("aggregatord: -state-interval must be > 0 (got %v)", *stateInterval)
		}
		var err error
		store, err = checkpoint.Open(checkpoint.Config{Dir: *stateDir, Keep: *stateKeep})
		if err != nil {
			log.Fatal(err)
		}
		gen, err := store.RestoreWith(stateDevice, agg.LoadState)
		switch {
		case err == nil:
			log.Printf("aggregatord: restored mirror state generation %d (%d collector(s))",
				gen.Seq, len(agg.Collectors()))
		case errors.Is(err, checkpoint.ErrNoCheckpoint):
			log.Printf("aggregatord: no prior state in %s, starting cold", *stateDir)
		default:
			log.Fatal(err)
		}
	}

	saveState := func(reason string) {
		if store == nil {
			return
		}
		if _, err := store.Save(stateDevice, agg); err != nil {
			log.Printf("aggregatord: %s state save failed: %v", reason, err)
		}
	}
	stopSaver := make(chan struct{})
	if store != nil {
		go func() {
			t := time.NewTicker(*stateInterval)
			defer t.Stop()
			for {
				select {
				case <-stopSaver:
					return
				case <-t.C:
					saveState("periodic")
				}
			}
		}()
	}

	log.Printf("aggregatord: serving fleet view on http://%s (lease %v, fail-after %v)", *listen, *lease, *failAfter)
	log.Printf("v1 endpoints: /v1/sync  /v1/snapshot  /v1/rules  /v1/devices  /v1/collectors  /v1/watch  /v1/metrics  /v1/healthz  /v1/readyz")
	if store != nil {
		log.Printf("state: %s every %v (keep %d)", *stateDir, *stateInterval, *stateKeep)
	}

	srv := &http.Server{Addr: *listen, Handler: fleet.NewHandler(agg)}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("aggregatord: %v: shutting down (drain deadline %v)", sig, shutdownTimeout)
		// Drain HTTP first so in-flight syncs land in the mirrors, then
		// close the aggregator (refusing new syncs, ending watches), and
		// only then persist — the final state includes every sync that
		// was acked.
		ctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("aggregatord: http shutdown: %v", err)
		}
		cancel()
		close(stopSaver)
		agg.Close()
		saveState("final")
		log.Printf("aggregatord: stopped")
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			close(stopSaver)
			agg.Close()
			saveState("final")
			log.Fatal(err)
		}
	}
}
