// Command benchjson converts `go test -bench` text output into a
// stable JSON document, so benchmark baselines can be committed and
// diffed (see BENCH_baseline.json and the `make bench` target).
//
//	go test -bench . -benchmem ./... | benchjson > BENCH_baseline.json
//
// The parser accepts the standard benchmark result line:
//
//	BenchmarkName[-GOMAXPROCS]  N  X ns/op  [Y MB/s]  [Z B/op]  [W allocs/op]
//
// plus the goos/goarch/pkg/cpu context lines, which are carried into
// the output as metadata. Lines that are not benchmark results (PASS,
// ok, test logs) are ignored, so the whole `go test` stream can be
// piped through unfiltered.
//
// Diff mode compares two converted documents:
//
//	benchjson -diff BENCH_baseline.json BENCH_pr5.json
//
// printing a per-benchmark delta table keyed by (pkg, name). With
// -fail-on-alloc-regress the exit status is 1 if any benchmark present
// in both documents reports more allocs/op in the new one — ns/op is
// machine- and load-sensitive, but allocation counts are deterministic,
// so they are the only dimension a CI gate can judge without flaking.
// With -fail-on-increase REGEXP the exit status is 1 if any benchmark
// whose name matches reports a larger ns/op value than the baseline,
// or is missing from the new document. This gates entries whose ns/op
// field carries a counter rather than a timing (the soak harness emits
// its SLO-violation count this way), where any increase is a
// regression by definition.
// With -fail-on-alloc-increase REGEXP the exit status is 1 if any
// benchmark whose name matches reports more allocs/op than the
// baseline, or is missing from the new document. Unlike the blanket
// -fail-on-alloc-regress it also refuses to let the gated benchmark
// disappear — it names benchmarks whose allocation count IS the
// contract (the merged fan-in read must stay O(1) allocations per
// read regardless of fleet size), where silently losing the metric
// would silently lose the gate. ns/op is never judged for these.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	// Name is the benchmark name exactly as printed, including any
	// -GOMAXPROCS suffix — a trailing -N is textually ambiguous with a
	// numbered sub-benchmark (devices-4 vs running at GOMAXPROCS=4), so
	// the name is never rewritten and baselines are keyed verbatim.
	Name string `json:"name"`
	// Pkg is the package under test, from the preceding "pkg:" line.
	Pkg string `json:"pkg,omitempty"`
	// Procs is the parsed trailing -N of the name (0 when absent) —
	// GOMAXPROCS when the suffix is one, per the caveat on Name.
	Procs int `json:"procs,omitempty"`
	// N is the iteration count.
	N int64 `json:"n"`
	// NsPerOp is nanoseconds per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// MBPerSec is throughput, when the benchmark calls SetBytes.
	MBPerSec float64 `json:"mb_per_s,omitempty"`
	// BytesPerOp and AllocsPerOp are present with -benchmem.
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// Doc is the whole converted run.
type Doc struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "write JSON to this file instead of stdout")
	diff := flag.Bool("diff", false, "compare two benchjson documents: benchjson -diff old.json new.json")
	failAlloc := flag.Bool("fail-on-alloc-regress", false, "with -diff, exit 1 if any benchmark's allocs/op regressed")
	failIncrease := flag.String("fail-on-increase", "", "with -diff, exit 1 if a benchmark matching this regexp reports a larger ns/op value (or is missing)")
	failAllocIncrease := flag.String("fail-on-alloc-increase", "", "with -diff, exit 1 if a benchmark matching this regexp reports more allocs/op (or is missing)")
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -diff needs exactly two files: old.json new.json")
			os.Exit(2)
		}
		compile := func(name, expr string) *regexp.Regexp {
			if expr == "" {
				return nil
			}
			re, err := regexp.Compile(expr)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", name, err)
				os.Exit(2)
			}
			return re
		}
		gate := compile("-fail-on-increase", *failIncrease)
		allocGate := compile("-fail-on-alloc-increase", *failAllocIncrease)
		os.Exit(runDiff(os.Stdout, flag.Arg(0), flag.Arg(1), *failAlloc, gate, allocGate))
	}

	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results in input")
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(r io.Reader) (*Doc, error) {
	doc := &Doc{Benchmarks: []Result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseResult(line)
			if ok {
				res.Pkg = pkg
				doc.Benchmarks = append(doc.Benchmarks, res)
			}
		}
	}
	return doc, sc.Err()
}

// parseResult parses one benchmark result line; ok is false for lines
// that start with "Benchmark" but are not results (e.g. a test log
// line that happens to mention a benchmark).
func parseResult(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 { // minimum shape: Name N value ns/op
		return Result{}, false
	}
	var res Result
	res.Name = fields[0]
	if i := strings.LastIndexByte(res.Name, '-'); i > 0 {
		if procs, err := strconv.Atoi(res.Name[i+1:]); err == nil {
			res.Procs = procs
		}
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res.N = n
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsPerOp = v
			sawNs = true
		case "MB/s":
			res.MBPerSec = v
		case "B/op":
			res.BytesPerOp = int64(v)
		case "allocs/op":
			res.AllocsPerOp = int64(v)
		}
	}
	return res, sawNs
}
