package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
)

// benchKey identifies one benchmark across runs. Name alone is not
// unique — the root package and internal packages both define Engine
// benchmarks — so the package qualifies it.
type benchKey struct {
	Pkg  string
	Name string
}

func loadDoc(path string) (*Doc, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var doc Doc
	if err := json.NewDecoder(f).Decode(&doc); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &doc, nil
}

func index(doc *Doc) map[benchKey]Result {
	m := make(map[benchKey]Result, len(doc.Benchmarks))
	for _, b := range doc.Benchmarks {
		m[benchKey{Pkg: b.Pkg, Name: b.Name}] = b
	}
	return m
}

// runDiff prints per-benchmark deltas between two converted documents
// and returns the process exit code. Benchmarks present in only one
// document are listed but never fail the alloc gate: its contract is
// "nothing that existed got worse", not "nothing changed shape".
// failIncrease (nil = off) is stricter: a benchmark whose name matches
// must not report a larger value than the baseline, and must not
// disappear — it names deliberately gated counters (SLO violations,
// error totals) whose value lives in ns_per_op, where silently losing
// the metric would silently lose the gate. failAllocIncrease (nil =
// off) is the same shape for allocs/op: a matching benchmark must not
// allocate more per op than the baseline and must not disappear. It
// gates benchmarks whose allocation count is the contract (the merged
// fan-in read stays O(1) allocs regardless of fleet size); ns/op on
// those is a timing and is deliberately not judged.
func runDiff(w io.Writer, oldPath, newPath string, failAlloc bool, failIncrease, failAllocIncrease *regexp.Regexp) int {
	oldDoc, err := loadDoc(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	newDoc, err := loadDoc(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	oldBy, newBy := index(oldDoc), index(newDoc)

	keys := make([]benchKey, 0, len(oldBy)+len(newBy))
	for k := range oldBy {
		keys = append(keys, k)
	}
	for k := range newBy {
		if _, dup := oldBy[k]; !dup {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Pkg != keys[j].Pkg {
			return keys[i].Pkg < keys[j].Pkg
		}
		return keys[i].Name < keys[j].Name
	})

	fmt.Fprintf(w, "%-58s %12s %12s %8s %14s\n", "benchmark", "old ns/op", "new ns/op", "delta", "allocs/op")
	regressed, increased := 0, 0
	for _, k := range keys {
		o, inOld := oldBy[k]
		n, inNew := newBy[k]
		name := k.Name
		if k.Pkg != "" {
			name = k.Pkg + " " + k.Name
		}
		gated := failIncrease != nil && failIncrease.MatchString(k.Name)
		gatedAlloc := failAllocIncrease != nil && failAllocIncrease.MatchString(k.Name)
		switch {
		case !inNew:
			mark := ""
			if gated || gatedAlloc {
				increased++
				mark = "  GATED METRIC MISSING"
			}
			fmt.Fprintf(w, "%-58s %12.1f %12s %8s %14s%s\n", name, o.NsPerOp, "-", "gone", "-", mark)
		case !inOld:
			fmt.Fprintf(w, "%-58s %12s %12.1f %8s %14s\n", name, "-", n.NsPerOp, "new", fmt.Sprintf("%d", n.AllocsPerOp))
		default:
			delta := "0.0%"
			if o.NsPerOp != 0 {
				delta = fmt.Sprintf("%+.1f%%", (n.NsPerOp-o.NsPerOp)/o.NsPerOp*100)
			}
			allocs := fmt.Sprintf("%d → %d", o.AllocsPerOp, n.AllocsPerOp)
			mark := ""
			if n.AllocsPerOp > o.AllocsPerOp {
				regressed++
				mark = "  ALLOC REGRESSION"
			}
			if gated && n.NsPerOp > o.NsPerOp {
				increased++
				mark += "  INCREASE"
			}
			if gatedAlloc && n.AllocsPerOp > o.AllocsPerOp {
				increased++
				mark += "  ALLOC INCREASE (GATED)"
			}
			fmt.Fprintf(w, "%-58s %12.1f %12.1f %8s %14s%s\n", name, o.NsPerOp, n.NsPerOp, delta, allocs, mark)
		}
	}
	code := 0
	if regressed > 0 {
		fmt.Fprintf(w, "\n%d benchmark(s) regressed allocs/op\n", regressed)
		if failAlloc {
			code = 1
		}
	}
	if increased > 0 {
		gates := ""
		if failIncrease != nil {
			gates = fmt.Sprintf("-fail-on-increase %q", failIncrease)
		}
		if failAllocIncrease != nil {
			if gates != "" {
				gates += ", "
			}
			gates += fmt.Sprintf("-fail-on-alloc-increase %q", failAllocIncrease)
		}
		fmt.Fprintf(w, "\n%d gated metric(s) increased or went missing (%s)\n", increased, gates)
		code = 1
	}
	return code
}
