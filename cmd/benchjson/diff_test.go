package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func writeDoc(t *testing.T, dir, name string, doc Doc) string {
	t.Helper()
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDiff(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeDoc(t, dir, "old.json", Doc{Benchmarks: []Result{
		{Name: "BenchmarkA", Pkg: "p", NsPerOp: 100, AllocsPerOp: 2},
		{Name: "BenchmarkB", Pkg: "p", NsPerOp: 50, AllocsPerOp: 0},
		{Name: "BenchmarkGone", Pkg: "p", NsPerOp: 10},
	}})
	newPath := writeDoc(t, dir, "new.json", Doc{Benchmarks: []Result{
		{Name: "BenchmarkA", Pkg: "p", NsPerOp: 80, AllocsPerOp: 2},
		{Name: "BenchmarkB", Pkg: "p", NsPerOp: 55, AllocsPerOp: 1},
		{Name: "BenchmarkNew", Pkg: "p", NsPerOp: 5, AllocsPerOp: 3},
	}})

	var out bytes.Buffer
	// One alloc regression (B: 0 → 1): reported, exit 0 without the
	// gate flag, exit 1 with it. Added and removed benchmarks never
	// trip the gate.
	if code := runDiff(&out, oldPath, newPath, false, nil, nil); code != 0 {
		t.Fatalf("ungated diff exit %d, want 0\n%s", code, out.String())
	}
	text := out.String()
	for _, want := range []string{
		"BenchmarkA", "-20.0%", // improvement computed against old
		"BenchmarkB", "ALLOC REGRESSION", "0 → 1",
		"BenchmarkGone", "gone",
		"BenchmarkNew", "new",
		"1 benchmark(s) regressed allocs/op",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("diff output missing %q:\n%s", want, text)
		}
	}
	if code := runDiff(&out, oldPath, newPath, true, nil, nil); code != 1 {
		t.Fatalf("gated diff exit %d, want 1", code)
	}
	// Identical documents: clean diff, gate passes.
	if code := runDiff(&out, oldPath, oldPath, true, nil, nil); code != 0 {
		t.Fatalf("self-diff exit %d, want 0", code)
	}
}

// TestDiffFailOnIncrease covers the value gate: a matching benchmark
// may improve but not increase, and may not disappear; non-matching
// benchmarks can do anything.
func TestDiffFailOnIncrease(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeDoc(t, dir, "old.json", Doc{Benchmarks: []Result{
		{Name: "SoakSLOViolations", Pkg: "p", NsPerOp: 0},
		{Name: "SoakEventsPerSec", Pkg: "p", NsPerOp: 5000},
		{Name: "BenchmarkOther", Pkg: "p", NsPerOp: 100},
	}})

	run := func(newDoc Doc, pattern string) (int, string) {
		t.Helper()
		newPath := writeDoc(t, dir, "new.json", newDoc)
		var out bytes.Buffer
		code := runDiff(&out, oldPath, newPath, false, regexp.MustCompile(pattern), nil)
		return code, out.String()
	}

	// Gated counter rose 0 → 1: fail, with the increase called out.
	code, text := run(Doc{Benchmarks: []Result{
		{Name: "SoakSLOViolations", Pkg: "p", NsPerOp: 1},
		{Name: "SoakEventsPerSec", Pkg: "p", NsPerOp: 5000},
		{Name: "BenchmarkOther", Pkg: "p", NsPerOp: 100},
	}}, "SoakSLOViolations")
	if code != 1 {
		t.Errorf("increase exit %d, want 1\n%s", code, text)
	}
	if !strings.Contains(text, "INCREASE") {
		t.Errorf("output does not mark the increase:\n%s", text)
	}

	// Gated metric missing from the new run: fail — losing the metric
	// must not silently lose the gate.
	code, text = run(Doc{Benchmarks: []Result{
		{Name: "BenchmarkOther", Pkg: "p", NsPerOp: 100},
	}}, "SoakSLOViolations")
	if code != 1 || !strings.Contains(text, "GATED METRIC MISSING") {
		t.Errorf("missing gated metric: exit %d\n%s", code, text)
	}

	// Equal or improved values pass; unrelated increases don't trip it.
	code, text = run(Doc{Benchmarks: []Result{
		{Name: "SoakSLOViolations", Pkg: "p", NsPerOp: 0},
		{Name: "SoakEventsPerSec", Pkg: "p", NsPerOp: 4000},
		{Name: "BenchmarkOther", Pkg: "p", NsPerOp: 900},
	}}, "SoakSLOViolations")
	if code != 0 {
		t.Errorf("clean gated diff exit %d, want 0\n%s", code, text)
	}
}

// TestDiffFailOnAllocIncrease covers the allocs/op gate: a matching
// benchmark may not allocate more per op than the baseline and may not
// disappear, while its ns/op is free to move either way.
func TestDiffFailOnAllocIncrease(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeDoc(t, dir, "old.json", Doc{Benchmarks: []Result{
		{Name: "BenchmarkMergedReadUnderIngest/devices-256/incremental", Pkg: "p", NsPerOp: 1600, AllocsPerOp: 2},
		{Name: "BenchmarkOther", Pkg: "p", NsPerOp: 100, AllocsPerOp: 5},
	}})

	run := func(newDoc Doc) (int, string) {
		t.Helper()
		newPath := writeDoc(t, dir, "new.json", newDoc)
		var out bytes.Buffer
		code := runDiff(&out, oldPath, newPath, false, nil, regexp.MustCompile("MergedReadUnderIngest"))
		return code, out.String()
	}

	// Gated benchmark allocates more: fail, even though ns/op improved.
	code, text := run(Doc{Benchmarks: []Result{
		{Name: "BenchmarkMergedReadUnderIngest/devices-256/incremental", Pkg: "p", NsPerOp: 900, AllocsPerOp: 3},
		{Name: "BenchmarkOther", Pkg: "p", NsPerOp: 100, AllocsPerOp: 5},
	}})
	if code != 1 || !strings.Contains(text, "ALLOC INCREASE (GATED)") {
		t.Errorf("alloc increase: exit %d\n%s", code, text)
	}

	// Gated benchmark missing: fail.
	code, text = run(Doc{Benchmarks: []Result{
		{Name: "BenchmarkOther", Pkg: "p", NsPerOp: 100, AllocsPerOp: 5},
	}})
	if code != 1 || !strings.Contains(text, "GATED METRIC MISSING") {
		t.Errorf("missing gated benchmark: exit %d\n%s", code, text)
	}

	// Slower but alloc-stable passes; ungated alloc regressions are
	// reported without tripping this gate.
	code, text = run(Doc{Benchmarks: []Result{
		{Name: "BenchmarkMergedReadUnderIngest/devices-256/incremental", Pkg: "p", NsPerOp: 2400, AllocsPerOp: 2},
		{Name: "BenchmarkOther", Pkg: "p", NsPerOp: 100, AllocsPerOp: 9},
	}})
	if code != 0 {
		t.Errorf("alloc-stable gated diff exit %d, want 0\n%s", code, text)
	}
}

func TestDiffBadInput(t *testing.T) {
	dir := t.TempDir()
	good := writeDoc(t, dir, "good.json", Doc{Benchmarks: []Result{{Name: "BenchmarkA"}}})
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if code := runDiff(&out, good, bad, false, nil, nil); code != 2 {
		t.Errorf("corrupt new doc: exit %d, want 2", code)
	}
	if code := runDiff(&out, filepath.Join(dir, "missing.json"), good, false, nil, nil); code != 2 {
		t.Errorf("missing old doc: exit %d, want 2", code)
	}
}
