package main

import (
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	input := `goos: linux
goarch: amd64
pkg: daccor/internal/core
cpu: Test CPU @ 3.00GHz
BenchmarkTableTouch/churn-8   	 8227395	       143.2 ns/op	       0 B/op	       0 allocs/op
BenchmarkTableTouch/hit       	20000000	        58.76 ns/op	       0 B/op	       0 allocs/op
BenchmarkEndToEndPipeline-8   	      50	  22000000 ns/op	 150.25 MB/s	 1200000 B/op	    9000 allocs/op
some log line
BenchmarkMentionedInALog ran fine
PASS
ok  	daccor/internal/core	12.3s
`
	doc, err := parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || doc.CPU != "Test CPU @ 3.00GHz" {
		t.Errorf("metadata = %q/%q/%q", doc.Goos, doc.Goarch, doc.CPU)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("got %d results, want 3: %+v", len(doc.Benchmarks), doc.Benchmarks)
	}
	// Names are kept verbatim (a trailing -N is ambiguous with numbered
	// sub-benchmarks); the parsed suffix lands in Procs.
	r := doc.Benchmarks[0]
	if r.Name != "BenchmarkTableTouch/churn-8" || r.Procs != 8 || r.N != 8227395 ||
		r.NsPerOp != 143.2 || r.BytesPerOp != 0 || r.AllocsPerOp != 0 ||
		r.Pkg != "daccor/internal/core" {
		t.Errorf("churn = %+v", r)
	}
	if r := doc.Benchmarks[1]; r.Name != "BenchmarkTableTouch/hit" || r.Procs != 0 {
		t.Errorf("hit = %+v", r)
	}
	if r := doc.Benchmarks[2]; r.Name != "BenchmarkEndToEndPipeline-8" ||
		r.MBPerSec != 150.25 || r.AllocsPerOp != 9000 {
		t.Errorf("pipeline = %+v", r)
	}
}
