// Package client is the typed Go client for the daccor v1 HTTP API.
//
// It wraps the uniform {data, error} envelope, surfaces the API's
// machine-readable error codes as *APIError values, revalidates query
// responses with ETags (a 304 is answered from the client's cache, and
// counted, so callers can verify they are not re-fetching unchanged
// state), and consumes the push routes: Watch opens a Server-Sent
// Events stream with automatic resume via Last-Event-ID, WatchPoll
// drives the ?wait= long-poll fallback.
//
// The zero value of Query omits every parameter, selecting the
// server-side defaults (support 5, top 100, confidence 0.5). A
// deliberate tradeoff: Support=0 cannot be expressed, but a support
// floor of zero just returns the whole synopsis, which ?top= bounds
// anyway.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"daccor/internal/blktrace"
	"daccor/internal/core"
	"daccor/internal/monitor"
)

// APIError is the error half of the v1 envelope plus the HTTP status
// it arrived under. Code is one of the API's machine-readable codes
// (bad_request, unknown_device, stopped, device_unavailable,
// internal).
type APIError struct {
	Status  int    `json:"-"`
	Code    string `json:"code"`
	Message string `json:"message"`
}

func (e *APIError) Error() string {
	return fmt.Sprintf("daccor api: %s (%d): %s", e.Code, e.Status, e.Message)
}

// envelope mirrors the server's uniform response shape.
type envelope struct {
	Data  json.RawMessage `json:"data"`
	Error *APIError       `json:"error"`
}

// Query carries the parameters shared by the snapshot, rules, and
// watch routes. Zero-valued fields are omitted, selecting the server
// defaults.
type Query struct {
	Support    uint32
	Top        int
	Confidence float64
	// Interval paces SSE watch deliveries: the server spaces
	// deliveries at least this far apart, coalescing intermediate
	// epoch advances. Only the watch routes honor it; it trades
	// delivery latency for server work, which matters when watching a
	// large fleet.
	Interval time.Duration
}

func (q Query) values() url.Values {
	v := url.Values{}
	if q.Support != 0 {
		v.Set("support", strconv.FormatUint(uint64(q.Support), 10))
	}
	if q.Top != 0 {
		v.Set("top", strconv.Itoa(q.Top))
	}
	if q.Confidence != 0 {
		v.Set("confidence", strconv.FormatFloat(q.Confidence, 'g', -1, 64))
	}
	if q.Interval != 0 {
		v.Set("interval", q.Interval.String())
	}
	return v
}

// Client talks to one daccor service. It is safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client

	mu          sync.Mutex
	cache       map[string]cachedResp // canonical URL -> last 200 response
	revalidated uint64
}

// cachedResp is one remembered query response, revalidated with
// If-None-Match on the next request for the same URL.
type cachedResp struct {
	etag string
	data json.RawMessage
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient replaces the underlying *http.Client (e.g. to set
// timeouts or a test transport).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New returns a client for the service at base, e.g.
// "http://127.0.0.1:9000". The path prefix "/v1" is appended by the
// client; base must not include it.
func New(base string, opts ...Option) *Client {
	c := &Client{
		base:  base,
		hc:    http.DefaultClient,
		cache: make(map[string]cachedResp),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Revalidations reports how many requests were answered 304 and served
// from the client's ETag cache.
func (c *Client) Revalidations() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.revalidated
}

// urlFor builds the canonical request URL (sorted query encoding, so
// equivalent requests share one cache slot).
func (c *Client) urlFor(path string, q url.Values) string {
	u := c.base + "/v1" + path
	if enc := q.Encode(); enc != "" {
		u += "?" + enc
	}
	return u
}

// get performs one enveloped GET with ETag revalidation and decodes
// the data half into out.
func (c *Client) get(ctx context.Context, path string, q url.Values, out any) error {
	u := c.urlFor(path, q)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	c.mu.Lock()
	prior, hasPrior := c.cache[u]
	c.mu.Unlock()
	if hasPrior {
		req.Header.Set("If-None-Match", prior.etag)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotModified {
		c.mu.Lock()
		c.revalidated++
		c.mu.Unlock()
		return json.Unmarshal(prior.data, out)
	}
	data, err := decodeEnvelope(resp)
	if err != nil {
		return err
	}
	if etag := resp.Header.Get("ETag"); etag != "" {
		c.mu.Lock()
		c.cache[u] = cachedResp{etag: etag, data: data}
		c.mu.Unlock()
	}
	return json.Unmarshal(data, out)
}

// decodeEnvelope reads one response body and splits the envelope:
// the raw data on success, the typed *APIError otherwise.
func decodeEnvelope(resp *http.Response) (json.RawMessage, error) {
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	var env envelope
	if err := json.Unmarshal(body, &env); err != nil {
		return nil, fmt.Errorf("daccor api: status %d with undecodable body: %v", resp.StatusCode, err)
	}
	if env.Error != nil {
		env.Error.Status = resp.StatusCode
		return nil, env.Error
	}
	if resp.StatusCode != http.StatusOK {
		// Data-carrying non-200 (the health routes) is the caller's to
		// interpret; anything else without an error envelope is broken.
		if env.Data == nil {
			return nil, &APIError{Status: resp.StatusCode, Code: "internal",
				Message: fmt.Sprintf("status %d with empty envelope", resp.StatusCode)}
		}
	}
	return env.Data, nil
}

// DeviceStats is one device's row in Stats.
type DeviceStats struct {
	ID       string        `json:"id"`
	Monitor  monitor.Stats `json:"monitor"`
	Analyzer core.Stats    `json:"analyzer"`
	WindowNs int64         `json:"windowNs"`
	Dropped  uint64        `json:"dropped"`
	Lag      int           `json:"lag"`
}

// Stats is the GET /v1/stats response.
type Stats struct {
	Devices []DeviceStats `json:"devices"`
	Totals  struct {
		Monitor  monitor.Stats `json:"monitor"`
		Analyzer core.Stats    `json:"analyzer"`
		Dropped  uint64        `json:"dropped"`
	} `json:"totals"`
}

// Stats fetches per-device and total pipeline counters.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var st Stats
	err := c.get(ctx, "/stats", nil, &st)
	return st, err
}

// DeviceInfo is one row of the GET /v1/devices listing.
type DeviceInfo struct {
	ID      string `json:"id"`
	Events  uint64 `json:"events"`
	Dropped uint64 `json:"dropped"`
	Lag     int    `json:"lag"`
}

// Devices lists the registered devices.
func (c *Client) Devices(ctx context.Context) ([]DeviceInfo, error) {
	var ds []DeviceInfo
	err := c.get(ctx, "/devices", nil, &ds)
	return ds, err
}

// Snapshot is a snapshot-route response: Device is set for the
// per-device route, Devices for the fleet route.
type Snapshot struct {
	Device     string           `json:"device"`
	Devices    []string         `json:"devices"`
	TotalPairs int              `json:"totalPairs"`
	Pairs      []core.PairCount `json:"pairs"`
}

// DeviceSnapshot fetches one device's frequent correlated pairs.
func (c *Client) DeviceSnapshot(ctx context.Context, device string, q Query) (Snapshot, error) {
	var s Snapshot
	err := c.get(ctx, "/devices/"+url.PathEscape(device)+"/snapshot", q.values(), &s)
	return s, err
}

// FleetSnapshot fetches the fleet-wide merged correlated pairs.
func (c *Client) FleetSnapshot(ctx context.Context, q Query) (Snapshot, error) {
	var s Snapshot
	err := c.get(ctx, "/snapshot", q.values(), &s)
	return s, err
}

// Rules is a rules-route response: Device is set for the per-device
// route, Devices for the fleet route.
type Rules struct {
	Device  string      `json:"device"`
	Devices []string    `json:"devices"`
	Rules   []core.Rule `json:"rules"`
}

// DeviceRules fetches one device's directional rules.
func (c *Client) DeviceRules(ctx context.Context, device string, q Query) (Rules, error) {
	var rs Rules
	err := c.get(ctx, "/devices/"+url.PathEscape(device)+"/rules", q.values(), &rs)
	return rs, err
}

// FleetRules fetches the fleet-wide merged rules.
func (c *Client) FleetRules(ctx context.Context, q Query) (Rules, error) {
	var rs Rules
	err := c.get(ctx, "/rules", q.values(), &rs)
	return rs, err
}

// wireEvent mirrors the ingest route's event shape.
type wireEvent struct {
	Time  int64  `json:"time"`
	PID   uint32 `json:"pid"`
	Op    string `json:"op"`
	Block uint64 `json:"block"`
	Len   uint32 `json:"len"`
}

// SubmitEvents posts one batch to a device's ingest route and returns
// how many events the server accepted (all of them, or none: a bad
// event rejects the whole batch).
func (c *Client) SubmitEvents(ctx context.Context, device string, evs []blktrace.Event) (int, error) {
	wire := make([]wireEvent, len(evs))
	for i, ev := range evs {
		op := "read"
		if ev.Op == blktrace.OpWrite {
			op = "write"
		}
		wire[i] = wireEvent{Time: ev.Time, PID: ev.PID, Op: op, Block: ev.Extent.Block, Len: ev.Extent.Len}
	}
	body, err := json.Marshal(map[string]any{"events": wire})
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.urlFor("/devices/"+url.PathEscape(device)+"/events", nil), bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, err := decodeEnvelope(resp)
	if err != nil {
		return 0, err
	}
	var out struct {
		Accepted int `json:"accepted"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		return 0, err
	}
	return out.Accepted, nil
}

// Unregister removes a device: its queue drains, its state flushes and
// checkpoints, and its watchers receive a terminal event.
func (c *Client) Unregister(ctx context.Context, device string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		c.urlFor("/devices/"+url.PathEscape(device), nil), nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, err = decodeEnvelope(resp)
	return err
}

// Health is the GET /v1/healthz response: Status is "ok", "degraded",
// or "failed"; Devices carries the per-device supervision detail.
type Health struct {
	Status  string           `json:"status"`
	Devices []map[string]any `json:"devices"`
}

// Health fetches the supervision health view. The route answers 503
// when every device has failed; the body is still returned.
func (c *Client) Health(ctx context.Context) (Health, error) {
	var h Health
	err := c.get(ctx, "/healthz", nil, &h)
	return h, err
}

// Ready reports the readiness probe: false once the service is
// stopping or wholly failed.
func (c *Client) Ready(ctx context.Context) (bool, error) {
	var body struct {
		Ready bool `json:"ready"`
	}
	if err := c.get(ctx, "/readyz", nil, &body); err != nil {
		return false, err
	}
	return body.Ready, nil
}

// watchPath returns the watch route for a device ("" = fleet).
func watchPath(device string) string {
	if device == "" {
		return "/watch"
	}
	return "/devices/" + url.PathEscape(device) + "/watch"
}

// WatchState is one delivery from a watch route: the rule/snapshot
// state at cursor Epoch. Device is set on per-device watches, Devices
// on fleet watches.
type WatchState struct {
	Epoch      string           `json:"epoch"`
	Device     string           `json:"device"`
	Devices    []string         `json:"devices"`
	TotalPairs int              `json:"totalPairs"`
	Pairs      []core.PairCount `json:"pairs"`
	Rules      []core.Rule      `json:"rules"`
}

// WatchPoll drives the long-poll form of the watch route (for callers
// that cannot hold an SSE stream). etag is the value returned by the
// previous WatchPoll ("" on the first call: the state returns
// immediately). With a current etag the server blocks up to wait for
// an epoch advance; changed=false means the wait elapsed with no
// change and st is the zero value.
func (c *Client) WatchPoll(ctx context.Context, device string, q Query, etag string, wait time.Duration) (st WatchState, newETag string, changed bool, err error) {
	v := q.values()
	v.Set("wait", wait.String())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.urlFor(watchPath(device), v), nil)
	if err != nil {
		return WatchState{}, etag, false, err
	}
	if etag != "" {
		req.Header.Set("If-None-Match", etag)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return WatchState{}, etag, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotModified {
		return WatchState{}, resp.Header.Get("ETag"), false, nil
	}
	data, err := decodeEnvelope(resp)
	if err != nil {
		return WatchState{}, etag, false, err
	}
	if err := json.Unmarshal(data, &st); err != nil {
		return WatchState{}, etag, false, err
	}
	return st, resp.Header.Get("ETag"), true, nil
}
