package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"
)

// WatchEndError is the terminal condition of a watch stream: the
// server said the watched state can never advance again. Reason
// mirrors the API error codes ("stopped", "device_unavailable").
type WatchEndError struct {
	Reason string
}

func (e *WatchEndError) Error() string {
	return fmt.Sprintf("daccor api: watch ended: %s", e.Reason)
}

// reconnect backoff for dropped watch streams.
const (
	watchBackoffBase = 100 * time.Millisecond
	watchBackoffCap  = 2 * time.Second
)

// Watcher is a live subscription to a watch route. Deliveries arrive
// on Events; the channel is buffered with capacity one and a slow
// consumer is never a problem — a newer state overwrites an
// undelivered older one (the same coalescing the server applies), so
// the reader always sees the freshest state it hasn't consumed.
//
// Events closes when the watch terminates; Err then reports why: nil
// after Close or context cancellation, a *WatchEndError when the
// server ended the stream, or the error that stopped reconnection.
// Dropped connections are re-dialed automatically with the last seen
// event ID, so no state is delivered twice and none is missed.
type Watcher struct {
	events chan WatchState

	cancel context.CancelFunc
	done   chan struct{}

	mu     sync.Mutex
	err    error
	lastID string
}

// Events is the delivery channel; it closes when the watch ends.
func (w *Watcher) Events() <-chan WatchState { return w.events }

// Err reports why the watch ended; call after Events closes.
func (w *Watcher) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil && (errors.Is(w.err, context.Canceled) || errors.Is(w.err, context.DeadlineExceeded)) {
		return nil
	}
	return w.err
}

// LastEventID is the cursor of the newest state received — the resume
// point a reconnect presents as Last-Event-ID.
func (w *Watcher) LastEventID() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastID
}

// Close tears the stream down and waits for the run loop to exit.
func (w *Watcher) Close() {
	w.cancel()
	<-w.done
}

// Watch subscribes to a device's watch route ("" = the fleet route).
// The first connection is made synchronously, so an unknown device or
// stopped service fails here rather than asynchronously; after that
// the stream lives until ctx ends, Close is called, or the server
// terminates it.
func (c *Client) Watch(ctx context.Context, device string, q Query) (*Watcher, error) {
	wctx, cancel := context.WithCancel(ctx)
	resp, err := c.dialWatch(wctx, device, q, "")
	if err != nil {
		cancel()
		return nil, err
	}
	w := &Watcher{
		events: make(chan WatchState, 1),
		cancel: cancel,
		done:   make(chan struct{}),
	}
	go w.run(wctx, c, device, q, resp)
	return w, nil
}

// dialWatch opens one SSE connection, resuming from lastID when set.
func (c *Client) dialWatch(ctx context.Context, device string, q Query, lastID string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.urlFor(watchPath(device), q.values()), nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "text/event-stream")
	if lastID != "" {
		req.Header.Set("Last-Event-ID", lastID)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		_, err := decodeEnvelope(resp)
		if err == nil {
			err = &APIError{Status: resp.StatusCode, Code: "internal", Message: "unexpected watch status"}
		}
		return nil, err
	}
	return resp, nil
}

// run consumes SSE connections until the watch ends, re-dialing with
// the resume cursor when a connection drops mid-stream.
func (w *Watcher) run(ctx context.Context, c *Client, device string, q Query, resp *http.Response) {
	defer close(w.done)
	defer close(w.events)
	backoff := watchBackoffBase
	for {
		terminal, err := w.consume(ctx, resp)
		if terminal {
			w.setErr(err)
			return
		}
		// Connection dropped mid-stream: resume. A typed API error on
		// re-dial (device gone, service stopped) is terminal; transport
		// errors retry under capped backoff.
		for {
			if ctx.Err() != nil {
				w.setErr(ctx.Err())
				return
			}
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				w.setErr(ctx.Err())
				return
			}
			if backoff *= 2; backoff > watchBackoffCap {
				backoff = watchBackoffCap
			}
			resp, err = c.dialWatch(ctx, device, q, w.LastEventID())
			if err == nil {
				backoff = watchBackoffBase
				break
			}
			var apiErr *APIError
			if errors.As(err, &apiErr) {
				w.setErr(err)
				return
			}
		}
	}
}

func (w *Watcher) setErr(err error) {
	w.mu.Lock()
	w.err = err
	w.mu.Unlock()
}

// consume reads one SSE connection until it ends. terminal=true means
// the watch is over (server end event, or context done); false means
// the connection dropped and the caller should reconnect.
func (w *Watcher) consume(ctx context.Context, resp *http.Response) (terminal bool, err error) {
	defer resp.Body.Close()
	// Tie the read to ctx: closing the body unblocks the scanner.
	stop := context.AfterFunc(ctx, func() { resp.Body.Close() })
	defer stop()

	var id, event string
	var data strings.Builder
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if event != "" || data.Len() > 0 {
				if done, err := w.dispatch(ctx, id, event, data.String()); done {
					return true, err
				}
			}
			id, event = "", ""
			data.Reset()
		case strings.HasPrefix(line, ":"):
			// keepalive comment
		case strings.HasPrefix(line, "id:"):
			id = strings.TrimSpace(line[len("id:"):])
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(line[len("event:"):])
		case strings.HasPrefix(line, "data:"):
			data.WriteString(strings.TrimSpace(line[len("data:"):]))
		}
	}
	if ctx.Err() != nil {
		return true, ctx.Err()
	}
	return false, sc.Err()
}

// dispatch handles one complete SSE frame. done=true ends the watch.
func (w *Watcher) dispatch(ctx context.Context, id, event, data string) (done bool, err error) {
	switch event {
	case "rules":
		var st WatchState
		if err := json.Unmarshal([]byte(data), &st); err != nil {
			return false, nil // skip undecodable frame, keep the stream
		}
		w.mu.Lock()
		if id != "" {
			w.lastID = id
		}
		w.mu.Unlock()
		// Coalescing delivery: displace an unconsumed older state.
		for {
			select {
			case w.events <- st:
				return false, nil
			case <-ctx.Done():
				return true, ctx.Err()
			default:
			}
			select {
			case <-w.events:
			default:
			}
		}
	case "end":
		var body struct {
			Reason string `json:"reason"`
		}
		_ = json.Unmarshal([]byte(data), &body)
		if body.Reason == "" {
			body.Reason = "unknown"
		}
		return true, &WatchEndError{Reason: body.Reason}
	}
	return false, nil
}
