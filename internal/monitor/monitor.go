package monitor

import (
	"errors"
	"fmt"
	"io"
	"time"

	"daccor/internal/blktrace"
)

// DefaultMaxRequests is the paper's transaction-size cap: "for our
// evaluation, we used a limit of eight I/O requests per transaction".
const DefaultMaxRequests = 8

// Transaction is a set of requests coincident in time. Extents holds
// the deduplicated extents in arrival order — the payload the online
// analysis module consumes — and Ops holds each extent's direction
// (the op of its first occurrence), so optimization modules can select
// correlated writes (§V.1 garbage collection) or correlated reads
// (§V.2 parallel placement). Requests counts raw events assigned to
// the transaction, including duplicates removed by deduplication.
type Transaction struct {
	Start, End int64 // issue timestamps of first and last event, ns
	Extents    []blktrace.Extent
	Ops        []blktrace.Op
	Requests   int
}

// ExtentsFor returns the transaction's extents issued with the given
// op, preserving arrival order.
func (tx Transaction) ExtentsFor(op blktrace.Op) []blktrace.Extent {
	var out []blktrace.Extent
	for i, e := range tx.Extents {
		if tx.Ops[i] == op {
			out = append(out, e)
		}
	}
	return out
}

// Config configures a Monitor.
type Config struct {
	// Window decides the transaction window; required.
	Window WindowPolicy
	// MaxRequests caps the number of requests per transaction; events
	// beyond the cap open a new transaction (the paper's stability
	// guard for the Θ(N²) analysis cost). 0 means DefaultMaxRequests.
	MaxRequests int
	// FilterPIDs, when non-empty, restricts monitoring to events from
	// these process IDs, mirroring the evaluation setup that filters
	// blktrace events to the workload's PIDs.
	FilterPIDs []uint32
	// KeepDuplicates disables in-transaction deduplication. The paper
	// dedups because repeated identical requests (seen in wdev) would
	// distort correlation frequencies; this switch exists for
	// measuring that effect.
	KeepDuplicates bool
}

// Stats counts the monitor's activity.
type Stats struct {
	Events       uint64 // events accepted (after PID filtering)
	Filtered     uint64 // events dropped by the PID filter
	Duplicates   uint64 // events removed by deduplication
	Transactions uint64 // transactions emitted
	CapSplits    uint64 // transactions closed by the size cap
	OutOfOrder   uint64 // events with timestamps before the open transaction's last event
}

// Monitor groups issue events into transactions and forwards them to a
// sink. It is a push-based state machine: feed events with
// HandleEvent, feed completion latencies with ObserveLatency (driving
// a dynamic window), and call Flush at end of stream.
type Monitor struct {
	cfg    Config
	sink   func(Transaction)
	filter map[uint32]struct{}

	open     Transaction
	seen     map[blktrace.Extent]struct{}
	lastTime int64

	stats Stats
}

// Validate reports whether the configuration can build a monitor: a
// window policy is required and MaxRequests must be non-negative
// (0 selects DefaultMaxRequests). It is the monitor leg of the unified
// Config/Validate surface shared with core.Config and pipeline.Config.
func (c Config) Validate() error {
	if c.Window == nil {
		return errors.New("monitor: Config.Window is required")
	}
	if c.MaxRequests < 0 {
		return fmt.Errorf("monitor: MaxRequests must be >= 1 (got %d)", c.MaxRequests)
	}
	return nil
}

// New returns a Monitor forwarding completed transactions to sink.
func New(cfg Config, sink func(Transaction)) (*Monitor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxRequests == 0 {
		cfg.MaxRequests = DefaultMaxRequests
	}
	if sink == nil {
		return nil, errors.New("monitor: sink is required")
	}
	m := &Monitor{
		cfg:  cfg,
		sink: sink,
		seen: make(map[blktrace.Extent]struct{}, cfg.MaxRequests),
	}
	if len(cfg.FilterPIDs) > 0 {
		m.filter = make(map[uint32]struct{}, len(cfg.FilterPIDs))
		for _, pid := range cfg.FilterPIDs {
			m.filter[pid] = struct{}{}
		}
	}
	return m, nil
}

// HandleEvent assigns one issue event to the open transaction, closing
// it first if the event falls outside the transaction window (measured
// from the transaction's first event) or if the size cap is reached.
func (m *Monitor) HandleEvent(ev blktrace.Event) error {
	if err := ev.Validate(); err != nil {
		return err
	}
	if m.filter != nil {
		if _, ok := m.filter[ev.PID]; !ok {
			m.stats.Filtered++
			return nil
		}
	}
	if ev.Time < m.lastTime {
		// blktrace streams can be mildly out of order across CPUs;
		// clamp rather than fail so a live monitor keeps running.
		m.stats.OutOfOrder++
		ev.Time = m.lastTime
	}
	m.lastTime = ev.Time

	if m.open.Requests > 0 {
		window := m.cfg.Window.Window()
		if ev.Time-m.open.Start > int64(window) {
			m.emit()
		} else if m.open.Requests >= m.cfg.MaxRequests {
			m.stats.CapSplits++
			m.emit()
		}
	}
	if m.open.Requests == 0 {
		m.open.Start = ev.Time
	}
	m.open.End = ev.Time
	m.open.Requests++
	m.stats.Events++

	if !m.cfg.KeepDuplicates {
		if _, dup := m.seen[ev.Extent]; dup {
			m.stats.Duplicates++
			return nil
		}
		m.seen[ev.Extent] = struct{}{}
	}
	m.open.Extents = append(m.open.Extents, ev.Extent)
	m.open.Ops = append(m.open.Ops, ev.Op)
	return nil
}

// ObserveLatency feeds one completed request latency (in nanoseconds)
// to the window policy.
func (m *Monitor) ObserveLatency(ns int64) {
	m.cfg.Window.ObserveLatency(time.Duration(ns))
}

// emit closes the open transaction and forwards it.
func (m *Monitor) emit() {
	if m.open.Requests == 0 {
		return
	}
	tx := m.open
	m.sink(tx)
	m.stats.Transactions++
	m.open = Transaction{}
	if len(m.seen) > 0 {
		clear(m.seen)
	}
}

// Flush closes and emits the open transaction, if any. Call it at end
// of stream.
func (m *Monitor) Flush() { m.emit() }

// Stats returns a copy of the monitor's counters.
func (m *Monitor) Stats() Stats { return m.stats }

// WindowDuration reports the window policy's current transaction
// window — the live value of the paper's dynamic 2×-average-latency
// window, surfaced as the rolling-window-size gauge in the
// observability layer.
func (m *Monitor) WindowDuration() time.Duration { return m.cfg.Window.Window() }

// Run drains a source through the monitor, flushing at EOF.
func (m *Monitor) Run(src blktrace.Source) error {
	for {
		ev, err := src.Next()
		if errors.Is(err, io.EOF) {
			m.Flush()
			return nil
		}
		if err != nil {
			return err
		}
		if err := m.HandleEvent(ev); err != nil {
			return err
		}
	}
}

// Collect is a convenience that runs a whole trace through a monitor
// with the given config and returns the transactions. It is how the
// offline FIM baselines obtain the same transactions the online
// analysis sees.
func Collect(t *blktrace.Trace, cfg Config) ([]Transaction, error) {
	var out []Transaction
	m, err := New(cfg, func(tx Transaction) { out = append(out, tx) })
	if err != nil {
		return nil, err
	}
	if err := m.Run(t.Source()); err != nil {
		return nil, err
	}
	return out, nil
}
