// Package monitor implements the paper's real-time monitoring module:
// it consumes block-layer issue events and groups them into
// transactions — sets of requests that occur within a brief transaction
// window — applying the paper's transaction-size cap and in-transaction
// deduplication before handing them to the online analysis module.
package monitor

import (
	"fmt"
	"time"
)

// A WindowPolicy decides the current transaction window duration. The
// monitor consults it when deciding whether an event still belongs to
// the open transaction, and feeds it observed request latencies so
// dynamic policies can adapt.
type WindowPolicy interface {
	// Window returns the current transaction window.
	Window() time.Duration
	// ObserveLatency feeds one completed request's latency.
	ObserveLatency(time.Duration)
}

// StaticWindow is a fixed transaction window duration; it ignores
// latency observations. The paper discusses this as the simple
// alternative that needs manual retuning per device and workload.
type StaticWindow time.Duration

// Window implements WindowPolicy.
func (w StaticWindow) Window() time.Duration { return time.Duration(w) }

// ObserveLatency implements WindowPolicy (no-op).
func (StaticWindow) ObserveLatency(time.Duration) {}

// DynamicWindow sizes the window as Multiplier × (exponentially
// weighted moving average of request latency), clamped to [Min, Max].
// The paper uses double the average I/O latency, noting the Linux
// kernel's hybrid-polling machinery maintains the same statistic.
type DynamicWindow struct {
	// Multiplier scales the average latency; the paper uses 2.
	Multiplier float64
	// Alpha is the EWMA weight of a new observation in (0, 1].
	Alpha float64
	// Min and Max clamp the window. Min also serves as the window
	// before any latency has been observed.
	Min, Max time.Duration

	avg float64 // EWMA of latency in nanoseconds; 0 until first sample
}

// Defaults for NewDynamicWindow.
const (
	DefaultMultiplier = 2.0
	DefaultAlpha      = 0.125 // TCP SRTT-style smoothing
)

// NewDynamicWindow returns the paper's dynamic policy: 2× average
// latency, smoothed, clamped to [min, max].
func NewDynamicWindow(min, max time.Duration) (*DynamicWindow, error) {
	if min <= 0 || max < min {
		return nil, fmt.Errorf("monitor: invalid window clamp [%v, %v]", min, max)
	}
	return &DynamicWindow{
		Multiplier: DefaultMultiplier,
		Alpha:      DefaultAlpha,
		Min:        min,
		Max:        max,
	}, nil
}

// ObserveLatency implements WindowPolicy.
func (w *DynamicWindow) ObserveLatency(d time.Duration) {
	if d <= 0 {
		return
	}
	if w.avg == 0 {
		w.avg = float64(d)
		return
	}
	w.avg += w.Alpha * (float64(d) - w.avg)
}

// Window implements WindowPolicy.
func (w *DynamicWindow) Window() time.Duration {
	if w.avg == 0 {
		return w.Min
	}
	win := time.Duration(w.Multiplier * w.avg)
	if win < w.Min {
		return w.Min
	}
	if win > w.Max {
		return w.Max
	}
	return win
}

// AverageLatency returns the current EWMA estimate (0 before the first
// sample).
func (w *DynamicWindow) AverageLatency() time.Duration {
	return time.Duration(w.avg)
}
