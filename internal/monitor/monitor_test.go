package monitor

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"daccor/internal/blktrace"
)

func ev(t int64, block uint64) blktrace.Event {
	return blktrace.Event{Time: t, PID: 1, Op: blktrace.OpRead,
		Extent: blktrace.Extent{Block: block, Len: 1}}
}

func collect(t *testing.T, cfg Config, events []blktrace.Event) ([]Transaction, Stats) {
	t.Helper()
	var out []Transaction
	m, err := New(cfg, func(tx Transaction) { out = append(out, tx) })
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for _, e := range events {
		if err := m.HandleEvent(e); err != nil {
			t.Fatalf("HandleEvent: %v", err)
		}
	}
	m.Flush()
	return out, m.Stats()
}

func TestConfigValidation(t *testing.T) {
	sink := func(Transaction) {}
	if _, err := New(Config{}, sink); err == nil {
		t.Error("want error for missing window policy")
	}
	if _, err := New(Config{Window: StaticWindow(time.Millisecond), MaxRequests: -2}, sink); err == nil {
		t.Error("want error for negative MaxRequests")
	}
	if _, err := New(Config{Window: StaticWindow(time.Millisecond)}, nil); err == nil {
		t.Error("want error for nil sink")
	}
}

func TestWindowSplitsTransactions(t *testing.T) {
	// 1 ms window; events at 0, 0.5ms, 0.9ms belong together; 2.5ms starts anew.
	txs, st := collect(t, Config{Window: StaticWindow(time.Millisecond)}, []blktrace.Event{
		ev(0, 10), ev(500_000, 20), ev(900_000, 30), ev(2_500_000, 40),
	})
	if len(txs) != 2 {
		t.Fatalf("transactions = %d, want 2", len(txs))
	}
	if len(txs[0].Extents) != 3 || len(txs[1].Extents) != 1 {
		t.Errorf("sizes = %d, %d; want 3, 1", len(txs[0].Extents), len(txs[1].Extents))
	}
	if txs[0].Start != 0 || txs[0].End != 900_000 {
		t.Errorf("txs[0] span = [%d, %d]", txs[0].Start, txs[0].End)
	}
	if st.Transactions != 2 || st.Events != 4 {
		t.Errorf("stats = %+v", st)
	}
}

func TestWindowMeasuredFromTransactionStart(t *testing.T) {
	// Events 0.6 ms apart with a 1 ms window: the window anchors at the
	// transaction's first event, so the third event (t=1.2ms) exceeds it
	// even though each consecutive gap is within the window.
	txs, _ := collect(t, Config{Window: StaticWindow(time.Millisecond)}, []blktrace.Event{
		ev(0, 1), ev(600_000, 2), ev(1_200_000, 3),
	})
	if len(txs) != 2 {
		t.Fatalf("transactions = %d, want 2 (window from start)", len(txs))
	}
}

func TestSizeCapSplits(t *testing.T) {
	events := make([]blktrace.Event, 20)
	for i := range events {
		events[i] = ev(int64(i), uint64(i)) // all within any window
	}
	txs, st := collect(t, Config{Window: StaticWindow(time.Second), MaxRequests: 8}, events)
	if len(txs) != 3 {
		t.Fatalf("transactions = %d, want 3 (8+8+4)", len(txs))
	}
	if len(txs[0].Extents) != 8 || len(txs[1].Extents) != 8 || len(txs[2].Extents) != 4 {
		t.Errorf("sizes = %d, %d, %d", len(txs[0].Extents), len(txs[1].Extents), len(txs[2].Extents))
	}
	if st.CapSplits != 2 {
		t.Errorf("CapSplits = %d, want 2", st.CapSplits)
	}
}

func TestDefaultCapIsEight(t *testing.T) {
	events := make([]blktrace.Event, 9)
	for i := range events {
		events[i] = ev(int64(i), uint64(i))
	}
	txs, _ := collect(t, Config{Window: StaticWindow(time.Second)}, events)
	if len(txs) != 2 || len(txs[0].Extents) != DefaultMaxRequests {
		t.Errorf("default cap not applied: %d txs, first size %d", len(txs), len(txs[0].Extents))
	}
}

func TestDeduplication(t *testing.T) {
	events := []blktrace.Event{ev(0, 10), ev(1, 10), ev(2, 20), ev(3, 10)}
	txs, st := collect(t, Config{Window: StaticWindow(time.Second)}, events)
	if len(txs) != 1 {
		t.Fatalf("transactions = %d, want 1", len(txs))
	}
	if len(txs[0].Extents) != 2 {
		t.Errorf("extents = %v, want 2 unique", txs[0].Extents)
	}
	if txs[0].Requests != 4 {
		t.Errorf("Requests = %d, want 4 raw", txs[0].Requests)
	}
	if st.Duplicates != 2 {
		t.Errorf("Duplicates = %d, want 2", st.Duplicates)
	}
}

func TestKeepDuplicates(t *testing.T) {
	events := []blktrace.Event{ev(0, 10), ev(1, 10)}
	txs, st := collect(t, Config{Window: StaticWindow(time.Second), KeepDuplicates: true}, events)
	if len(txs[0].Extents) != 2 {
		t.Errorf("extents = %d, want duplicates kept", len(txs[0].Extents))
	}
	if st.Duplicates != 0 {
		t.Errorf("Duplicates = %d, want 0", st.Duplicates)
	}
}

func TestDedupResetsAcrossTransactions(t *testing.T) {
	events := []blktrace.Event{ev(0, 10), ev(10_000_000, 10)} // 10 ms apart, 1 ms window
	txs, _ := collect(t, Config{Window: StaticWindow(time.Millisecond)}, events)
	if len(txs) != 2 || len(txs[0].Extents) != 1 || len(txs[1].Extents) != 1 {
		t.Errorf("dedup state leaked across transactions: %+v", txs)
	}
}

func TestPIDFilter(t *testing.T) {
	mk := func(t int64, pid uint32, block uint64) blktrace.Event {
		e := ev(t, block)
		e.PID = pid
		return e
	}
	events := []blktrace.Event{mk(0, 1, 10), mk(1, 2, 20), mk(2, 3, 30), mk(3, 1, 40)}
	txs, st := collect(t, Config{
		Window:     StaticWindow(time.Second),
		FilterPIDs: []uint32{1, 3},
	}, events)
	if len(txs) != 1 || len(txs[0].Extents) != 3 {
		t.Fatalf("filtered result wrong: %+v", txs)
	}
	if st.Filtered != 1 {
		t.Errorf("Filtered = %d, want 1", st.Filtered)
	}
}

func TestOutOfOrderClamped(t *testing.T) {
	events := []blktrace.Event{ev(1000, 1), ev(500, 2), ev(1500, 3)}
	txs, st := collect(t, Config{Window: StaticWindow(time.Second)}, events)
	if st.OutOfOrder != 1 {
		t.Errorf("OutOfOrder = %d, want 1", st.OutOfOrder)
	}
	if len(txs) != 1 || len(txs[0].Extents) != 3 {
		t.Errorf("clamped event should stay in transaction: %+v", txs)
	}
}

func TestHandleEventRejectsInvalid(t *testing.T) {
	m, err := New(Config{Window: StaticWindow(time.Second)}, func(Transaction) {})
	if err != nil {
		t.Fatal(err)
	}
	bad := blktrace.Event{Time: 0, Op: blktrace.OpRead,
		Extent: blktrace.Extent{Block: 1, Len: 0}}
	if err := m.HandleEvent(bad); err == nil {
		t.Error("want validation error")
	}
}

func TestFlushEmptyIsNoop(t *testing.T) {
	calls := 0
	m, err := New(Config{Window: StaticWindow(time.Second)}, func(Transaction) { calls++ })
	if err != nil {
		t.Fatal(err)
	}
	m.Flush()
	m.Flush()
	if calls != 0 {
		t.Errorf("Flush on empty emitted %d transactions", calls)
	}
}

func TestCollectMatchesManualRun(t *testing.T) {
	tr := &blktrace.Trace{}
	for i := 0; i < 100; i++ {
		tr.Append(ev(int64(i)*200_000, uint64(i%7)))
	}
	cfg := Config{Window: StaticWindow(time.Millisecond)}
	got, err := Collect(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := collect(t, cfg, tr.Events)
	if len(got) != len(want) {
		t.Fatalf("Collect = %d txs, manual = %d", len(got), len(want))
	}
}

// Property: every transaction respects the cap, extents are unique, the
// span never exceeds the window, and no accepted event is lost.
func TestMonitorInvariantsQuick(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		window := time.Duration(1+rng.Intn(5)) * time.Millisecond
		cap8 := 1 + rng.Intn(10)
		var events []blktrace.Event
		now := int64(0)
		for i := 0; i < int(n); i++ {
			now += rng.Int63n(2_000_000) // 0–2 ms gaps
			events = append(events, ev(now, uint64(rng.Intn(30))))
		}
		var txs []Transaction
		m, err := New(Config{Window: StaticWindow(window), MaxRequests: cap8},
			func(tx Transaction) { txs = append(txs, tx) })
		if err != nil {
			return false
		}
		for _, e := range events {
			if m.HandleEvent(e) != nil {
				return false
			}
		}
		m.Flush()
		totalRequests := 0
		for _, tx := range txs {
			totalRequests += tx.Requests
			if tx.Requests > cap8 || len(tx.Extents) > tx.Requests {
				return false
			}
			if tx.End-tx.Start > int64(window) {
				return false
			}
			seen := map[blktrace.Extent]struct{}{}
			for _, e := range tx.Extents {
				if _, dup := seen[e]; dup {
					return false
				}
				seen[e] = struct{}{}
			}
		}
		return totalRequests == len(events)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestStaticWindowPolicy(t *testing.T) {
	w := StaticWindow(5 * time.Millisecond)
	w.ObserveLatency(time.Hour) // must not change anything
	if w.Window() != 5*time.Millisecond {
		t.Errorf("Window = %v", w.Window())
	}
}

func TestDynamicWindowValidation(t *testing.T) {
	if _, err := NewDynamicWindow(0, time.Second); err == nil {
		t.Error("want error for zero min")
	}
	if _, err := NewDynamicWindow(time.Second, time.Millisecond); err == nil {
		t.Error("want error for max < min")
	}
}

func TestDynamicWindowTracksLatency(t *testing.T) {
	w, err := NewDynamicWindow(10*time.Microsecond, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if w.Window() != 10*time.Microsecond {
		t.Errorf("pre-sample window = %v, want min", w.Window())
	}
	w.ObserveLatency(time.Millisecond)
	if got := w.Window(); got != 2*time.Millisecond {
		t.Errorf("window after first sample = %v, want 2 ms (2×avg)", got)
	}
	// Converge toward a slower device: window should grow.
	for i := 0; i < 200; i++ {
		w.ObserveLatency(10 * time.Millisecond)
	}
	if got := w.Window(); got < 18*time.Millisecond || got > 20*time.Millisecond {
		t.Errorf("converged window = %v, want ~20 ms", got)
	}
	if got := w.AverageLatency(); got < 9*time.Millisecond {
		t.Errorf("AverageLatency = %v, want ~10 ms", got)
	}
}

func TestDynamicWindowClamps(t *testing.T) {
	w, err := NewDynamicWindow(time.Millisecond, 4*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	w.ObserveLatency(100 * time.Nanosecond)
	if w.Window() != time.Millisecond {
		t.Errorf("window = %v, want clamped to min", w.Window())
	}
	for i := 0; i < 100; i++ {
		w.ObserveLatency(time.Second)
	}
	if w.Window() != 4*time.Millisecond {
		t.Errorf("window = %v, want clamped to max", w.Window())
	}
	w.ObserveLatency(0)  // ignored
	w.ObserveLatency(-5) // ignored
	if w.Window() != 4*time.Millisecond {
		t.Error("non-positive latencies must be ignored")
	}
}

func TestMonitorObserveLatencyDrivesWindow(t *testing.T) {
	w, err := NewDynamicWindow(time.Microsecond, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{Window: w}, func(Transaction) {})
	if err != nil {
		t.Fatal(err)
	}
	m.ObserveLatency(int64(50 * time.Millisecond))
	if w.Window() != 100*time.Millisecond {
		t.Errorf("window = %v after ObserveLatency", w.Window())
	}
}

func TestTransactionOps(t *testing.T) {
	mk := func(tm int64, op blktrace.Op, block uint64) blktrace.Event {
		return blktrace.Event{Time: tm, PID: 1, Op: op,
			Extent: blktrace.Extent{Block: block, Len: 1}}
	}
	events := []blktrace.Event{
		mk(0, blktrace.OpRead, 10),
		mk(1, blktrace.OpWrite, 20),
		mk(2, blktrace.OpRead, 30),
		mk(3, blktrace.OpWrite, 10), // duplicate extent, different op: first wins
	}
	txs, _ := collect(t, Config{Window: StaticWindow(time.Second)}, events)
	if len(txs) != 1 {
		t.Fatalf("transactions = %d", len(txs))
	}
	tx := txs[0]
	if len(tx.Ops) != len(tx.Extents) {
		t.Fatalf("Ops len %d != Extents len %d", len(tx.Ops), len(tx.Extents))
	}
	reads := tx.ExtentsFor(blktrace.OpRead)
	writes := tx.ExtentsFor(blktrace.OpWrite)
	if len(reads) != 2 || len(writes) != 1 {
		t.Fatalf("reads=%d writes=%d, want 2/1", len(reads), len(writes))
	}
	if reads[0].Block != 10 || reads[1].Block != 30 || writes[0].Block != 20 {
		t.Errorf("op filtering wrong: reads=%v writes=%v", reads, writes)
	}
}
