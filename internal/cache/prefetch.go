package cache

import (
	"fmt"

	"daccor/internal/blktrace"
	"daccor/internal/core"
)

// A Prefetcher decides what to warm after each demand access. Observe
// sees every access (with the transaction stream, via the pipeline or
// manually); SuggestFor returns extents to preload when e is accessed.
type Prefetcher interface {
	Observe(tx []blktrace.Extent)
	SuggestFor(e blktrace.Extent) []blktrace.Extent
}

// NonePrefetcher never prefetches (the demand-only LRU baseline).
type NonePrefetcher struct{}

// Observe implements Prefetcher (no-op).
func (NonePrefetcher) Observe([]blktrace.Extent) {}

// SuggestFor implements Prefetcher.
func (NonePrefetcher) SuggestFor(blktrace.Extent) []blktrace.Extent { return nil }

// ReadAhead prefetches the next adjacent extent(s) — the classic
// sequential policy. It captures spatial locality but is blind to the
// semantic (random-looking) correlations the paper targets.
type ReadAhead struct {
	// Depth is how many consecutive same-shape extents to prefetch.
	Depth int
}

// Observe implements Prefetcher (no-op; read-ahead is stateless).
func (ReadAhead) Observe([]blktrace.Extent) {}

// SuggestFor implements Prefetcher.
func (r ReadAhead) SuggestFor(e blktrace.Extent) []blktrace.Extent {
	depth := r.Depth
	if depth < 1 {
		depth = 1
	}
	out := make([]blktrace.Extent, 0, depth)
	next := e
	for i := 0; i < depth; i++ {
		next = blktrace.Extent{Block: next.End(), Len: next.Len}
		out = append(out, next)
	}
	return out
}

// Correlated prefetches the partners of the accessed extent according
// to the online analyzer's directional rules — §V's "if frequently read
// together in the past, likely read together in the near future".
type Correlated struct {
	analyzer *core.Analyzer

	minSupport   uint32
	minConf      float64
	maxPartners  int
	rebuildEvery int
	sinceRebuild int

	partners map[blktrace.Extent][]blktrace.Extent
}

// CorrelatedConfig configures the learning prefetcher.
type CorrelatedConfig struct {
	// Analyzer configures the embedded online analyzer.
	Analyzer core.Config
	// MinSupport and MinConfidence gate which rules drive prefetch;
	// zero values mean 3 and 0.5.
	MinSupport    uint32
	MinConfidence float64
	// MaxPartners caps suggestions per access; 0 means 4.
	MaxPartners int
	// RebuildEvery is the number of observed transactions between rule
	// index rebuilds; 0 means 128.
	RebuildEvery int
}

// NewCorrelated returns a prefetcher that has learned nothing yet.
func NewCorrelated(cfg CorrelatedConfig) (*Correlated, error) {
	if cfg.MinSupport == 0 {
		cfg.MinSupport = 3
	}
	if cfg.MinConfidence == 0 {
		cfg.MinConfidence = 0.5
	}
	if cfg.MaxPartners == 0 {
		cfg.MaxPartners = 4
	}
	if cfg.MaxPartners < 1 || cfg.RebuildEvery < 0 {
		return nil, fmt.Errorf("cache: invalid correlated prefetcher config %+v", cfg)
	}
	if cfg.RebuildEvery == 0 {
		cfg.RebuildEvery = 128
	}
	analyzer, err := core.NewAnalyzer(cfg.Analyzer)
	if err != nil {
		return nil, err
	}
	return &Correlated{
		analyzer:     analyzer,
		minSupport:   cfg.MinSupport,
		minConf:      cfg.MinConfidence,
		maxPartners:  cfg.MaxPartners,
		rebuildEvery: cfg.RebuildEvery,
		partners:     make(map[blktrace.Extent][]blktrace.Extent),
	}, nil
}

// Observe implements Prefetcher: it feeds the analyzer and periodically
// re-indexes the rules.
func (c *Correlated) Observe(tx []blktrace.Extent) {
	c.analyzer.Process(tx)
	c.sinceRebuild++
	if c.sinceRebuild >= c.rebuildEvery {
		c.rebuild()
		c.sinceRebuild = 0
	}
}

func (c *Correlated) rebuild() {
	idx := make(map[blktrace.Extent][]blktrace.Extent)
	for _, r := range c.analyzer.Rules(c.minSupport, c.minConf) {
		if len(idx[r.From]) < c.maxPartners {
			idx[r.From] = append(idx[r.From], r.To)
		}
	}
	c.partners = idx
}

// SuggestFor implements Prefetcher.
func (c *Correlated) SuggestFor(e blktrace.Extent) []blktrace.Extent {
	return c.partners[e]
}

// Analyzer exposes the embedded analyzer (for stats and memory
// accounting).
func (c *Correlated) Analyzer() *core.Analyzer { return c.analyzer }

// Run replays a transaction stream through a cache with the given
// prefetcher: every extent of a transaction is a demand access, the
// prefetcher observes the transaction, and its suggestions are warmed
// after each access. It returns the cache's final stats.
func Run(c *Cache, p Prefetcher, txs [][]blktrace.Extent) Stats {
	for _, tx := range txs {
		for _, e := range tx {
			c.Access(e)
			for _, s := range p.SuggestFor(e) {
				c.Prefetch(s)
			}
		}
		p.Observe(tx)
	}
	return c.Stats()
}
