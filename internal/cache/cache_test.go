package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"daccor/internal/blktrace"
	"daccor/internal/core"
)

func e(b uint64) blktrace.Extent { return blktrace.Extent{Block: b, Len: 8} }

func mustCache(t *testing.T, capacity int) *Cache {
	t.Helper()
	c, err := New(capacity)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("want error for zero capacity")
	}
}

func TestAccessHitMiss(t *testing.T) {
	c := mustCache(t, 2)
	if c.Access(e(1)) {
		t.Error("first access should miss")
	}
	if !c.Access(e(1)) {
		t.Error("second access should hit")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.HitRate() != 0.5 {
		t.Errorf("HitRate = %v", st.HitRate())
	}
}

func TestLRUEviction(t *testing.T) {
	c := mustCache(t, 2)
	c.Access(e(1))
	c.Access(e(2))
	c.Access(e(1)) // refresh 1; LRU is now 2
	c.Access(e(3)) // evicts 2
	if !c.Contains(e(1)) || c.Contains(e(2)) || !c.Contains(e(3)) {
		t.Error("LRU eviction order wrong")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestPrefetchAccounting(t *testing.T) {
	c := mustCache(t, 4)
	c.Prefetch(e(1))
	c.Prefetch(e(1)) // already cached: no double count
	st := c.Stats()
	if st.Prefetches != 1 {
		t.Errorf("Prefetches = %d, want 1", st.Prefetches)
	}
	if !c.Access(e(1)) {
		t.Error("prefetched extent should hit")
	}
	if got := c.Stats(); got.PrefetchHits != 1 {
		t.Errorf("PrefetchHits = %d, want 1", got.PrefetchHits)
	}
	// A second demand hit is a plain hit, not another prefetch hit.
	c.Access(e(1))
	if got := c.Stats(); got.PrefetchHits != 1 {
		t.Errorf("PrefetchHits double-counted: %d", got.PrefetchHits)
	}
}

func TestPrefetchWaste(t *testing.T) {
	c := mustCache(t, 1)
	c.Prefetch(e(1))
	c.Access(e(2)) // evicts the unused prefetch
	if got := c.Stats(); got.PrefetchWaste != 1 {
		t.Errorf("PrefetchWaste = %d, want 1", got.PrefetchWaste)
	}
}

func TestPrefetchDoesNotOutrankDemand(t *testing.T) {
	c := mustCache(t, 2)
	c.Access(e(1))   // demand
	c.Prefetch(e(2)) // speculative, more recent
	c.Prefetch(e(2)) // no recency boost either way
	c.Access(e(3))   // one of {1,2} must go — wait: cap 2, 3 entries
	// The eviction takes the LRU end; e(1) was older than the prefetch,
	// so e(1) goes. This test documents that prefetch insertion is at
	// MRU (fresh prefetches are expected to be used soon).
	if c.Contains(e(1)) {
		t.Error("LRU victim should have been evicted")
	}
	if !c.Contains(e(2)) || !c.Contains(e(3)) {
		t.Error("newer entries should remain")
	}
}

func TestCapacityInvariantQuick(t *testing.T) {
	f := func(seed int64, ops uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := 1 + rng.Intn(8)
		c, err := New(capacity)
		if err != nil {
			return false
		}
		for i := 0; i < int(ops); i++ {
			x := e(uint64(rng.Intn(20)))
			if rng.Intn(3) == 0 {
				c.Prefetch(x)
			} else {
				c.Access(x)
			}
			if c.Len() > capacity {
				return false
			}
		}
		st := c.Stats()
		return st.Hits+st.Misses <= uint64(ops) && st.PrefetchHits <= st.Prefetches
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestReadAheadSuggestions(t *testing.T) {
	r := ReadAhead{Depth: 2}
	got := r.SuggestFor(blktrace.Extent{Block: 100, Len: 8})
	if len(got) != 2 || got[0].Block != 108 || got[1].Block != 116 {
		t.Errorf("SuggestFor = %v", got)
	}
	// Depth 0 clamps to 1.
	if got := (ReadAhead{}).SuggestFor(e(0)); len(got) != 1 {
		t.Errorf("default depth suggestions = %d", len(got))
	}
}

func TestCorrelatedConfigValidation(t *testing.T) {
	if _, err := NewCorrelated(CorrelatedConfig{}); err == nil {
		t.Error("want error for zero analyzer capacities")
	}
	if _, err := NewCorrelated(CorrelatedConfig{
		Analyzer:    core.Config{ItemCapacity: 4, PairCapacity: 4},
		MaxPartners: -1,
	}); err == nil {
		t.Error("want error for negative MaxPartners")
	}
}

func TestCorrelatedLearnsAndSuggests(t *testing.T) {
	p, err := NewCorrelated(CorrelatedConfig{
		Analyzer:     core.Config{ItemCapacity: 256, PairCapacity: 256},
		RebuildEvery: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, b := e(100), e(200)
	for i := 0; i < 10; i++ {
		p.Observe([]blktrace.Extent{a, b})
	}
	gotA := p.SuggestFor(a)
	gotB := p.SuggestFor(b)
	if len(gotA) != 1 || gotA[0] != b {
		t.Errorf("SuggestFor(a) = %v, want [b]", gotA)
	}
	if len(gotB) != 1 || gotB[0] != a {
		t.Errorf("SuggestFor(b) = %v, want [a]", gotB)
	}
	if p.SuggestFor(e(999)) != nil {
		t.Error("unknown extent should suggest nothing")
	}
}

// The application-level claim: on a workload with semantic (random
// placement) correlations, the correlation prefetcher beats both plain
// LRU and sequential read-ahead.
func TestCorrelatedBeatsBaselines(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// 50 correlated groups, randomly placed; each transaction is one
	// group; some noise transactions.
	groups := make([][]blktrace.Extent, 50)
	for g := range groups {
		groups[g] = []blktrace.Extent{
			e(uint64(rng.Intn(1 << 28))),
			e(uint64(rng.Intn(1 << 28))),
			e(uint64(rng.Intn(1 << 28))),
		}
	}
	var txs [][]blktrace.Extent
	for i := 0; i < 4000; i++ {
		if rng.Intn(4) == 0 {
			txs = append(txs, []blktrace.Extent{e(uint64(rng.Intn(1 << 28)))})
		} else {
			txs = append(txs, groups[rng.Intn(len(groups))])
		}
	}
	const capacity = 64 // far smaller than the working set of 150 extents

	lru := mustCache(t, capacity)
	lruStats := Run(lru, NonePrefetcher{}, txs)

	ra := mustCache(t, capacity)
	raStats := Run(ra, ReadAhead{Depth: 1}, txs)

	cp, err := NewCorrelated(CorrelatedConfig{
		Analyzer:     core.Config{ItemCapacity: 1024, PairCapacity: 1024},
		RebuildEvery: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	cc := mustCache(t, capacity)
	ccStats := Run(cc, cp, txs)

	if ccStats.HitRate() <= lruStats.HitRate() {
		t.Errorf("correlated %.3f should beat LRU %.3f", ccStats.HitRate(), lruStats.HitRate())
	}
	if ccStats.HitRate() <= raStats.HitRate() {
		t.Errorf("correlated %.3f should beat read-ahead %.3f", ccStats.HitRate(), raStats.HitRate())
	}
	// And the margin should be material on this workload.
	if ccStats.HitRate() < lruStats.HitRate()+0.1 {
		t.Errorf("margin too thin: corr %.3f vs lru %.3f", ccStats.HitRate(), lruStats.HitRate())
	}
}
