// Package cache implements a read cache with pluggable prefetch
// policies — the first optimization application the paper lists for
// detected correlations. The cache itself is a classic LRU over
// extents; prefetchers observe the miss/hit stream and preload extents
// they expect next. The correlation prefetcher consumes the online
// analyzer's directional rules, turning "A and B are frequently
// requested together" into "a request for A warms B".
package cache

import (
	"fmt"

	"daccor/internal/blktrace"
)

// Stats counts cache activity. PrefetchHits counts hits on entries
// that entered the cache via prefetch and had not yet been demand-hit.
type Stats struct {
	Hits, Misses  uint64
	Prefetches    uint64
	PrefetchHits  uint64
	PrefetchWaste uint64 // prefetched entries evicted unused
}

// HitRate returns Hits / (Hits + Misses).
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// entry is an LRU node.
type entry struct {
	key        blktrace.Extent
	prefetched bool // entered via prefetch, no demand hit yet
	prev, next *entry
}

// Cache is a fixed-capacity LRU read cache over extents. Not safe for
// concurrent use.
type Cache struct {
	capacity    int
	index       map[blktrace.Extent]*entry
	front, back *entry
	stats       Stats
}

// New returns an empty cache holding up to capacity extents.
func New(capacity int) (*Cache, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("cache: capacity must be >= 1 (got %d)", capacity)
	}
	return &Cache{
		capacity: capacity,
		index:    make(map[blktrace.Extent]*entry, capacity),
	}, nil
}

func (c *Cache) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.front = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.back = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache) pushFront(e *entry) {
	e.next = c.front
	if c.front != nil {
		c.front.prev = e
	}
	c.front = e
	if c.back == nil {
		c.back = e
	}
}

func (c *Cache) evictLRU() {
	victim := c.back
	if victim == nil {
		return
	}
	c.unlink(victim)
	delete(c.index, victim.key)
	if victim.prefetched {
		c.stats.PrefetchWaste++
	}
}

// Access performs a demand access: a hit refreshes recency and returns
// true; a miss inserts the extent (evicting the LRU victim if full)
// and returns false.
func (c *Cache) Access(e blktrace.Extent) bool {
	if ent, ok := c.index[e]; ok {
		c.stats.Hits++
		if ent.prefetched {
			c.stats.PrefetchHits++
			ent.prefetched = false
		}
		c.unlink(ent)
		c.pushFront(ent)
		return true
	}
	c.stats.Misses++
	if len(c.index) >= c.capacity {
		c.evictLRU()
	}
	ent := &entry{key: e}
	c.index[e] = ent
	c.pushFront(ent)
	return false
}

// Prefetch warms the cache with an extent without counting a demand
// access. Already-cached extents are left untouched (no recency boost:
// speculation must not outrank demand).
func (c *Cache) Prefetch(e blktrace.Extent) {
	if _, ok := c.index[e]; ok {
		return
	}
	c.stats.Prefetches++
	if len(c.index) >= c.capacity {
		c.evictLRU()
	}
	ent := &entry{key: e, prefetched: true}
	c.index[e] = ent
	c.pushFront(ent)
}

// Contains reports residency without touching recency or stats.
func (c *Cache) Contains(e blktrace.Extent) bool {
	_, ok := c.index[e]
	return ok
}

// Len returns the number of cached extents.
func (c *Cache) Len() int { return len(c.index) }

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }
