package cache

import (
	"sync"

	"daccor/internal/blktrace"
	"daccor/internal/core"
)

// RulePrefetcher is the push-fed variant of Correlated: instead of
// embedding its own analyzer, it is driven by rules learned elsewhere
// — typically the engine's live rule state arriving over a /v1/watch
// stream. SetRules swaps the partner index atomically; readers on the
// cache hot path never block behind an update.
//
// This is the consuming half of the paper's closed loop: the
// characterizer detects correlations online, and the prefetcher acts
// on the freshest rule set the moment an epoch advances, rather than
// polling or re-learning.
type RulePrefetcher struct {
	maxPartners int

	mu       sync.RWMutex
	partners map[blktrace.Extent][]blktrace.Extent
	updates  uint64
}

// NewRulePrefetcher returns a prefetcher with no rules yet (it
// suggests nothing until SetRules is called). maxPartners caps
// suggestions per access; 0 means 4.
func NewRulePrefetcher(maxPartners int) *RulePrefetcher {
	if maxPartners <= 0 {
		maxPartners = 4
	}
	return &RulePrefetcher{
		maxPartners: maxPartners,
		partners:    make(map[blktrace.Extent][]blktrace.Extent),
	}
}

// SetRules replaces the partner index from a fresh rule set. Rules
// arrive sorted by descending confidence (the API's order), so the
// per-extent partner cap keeps the strongest predictions.
func (p *RulePrefetcher) SetRules(rules []core.Rule) {
	idx := make(map[blktrace.Extent][]blktrace.Extent)
	for _, r := range rules {
		if r.From == r.To {
			continue
		}
		if len(idx[r.From]) < p.maxPartners {
			idx[r.From] = append(idx[r.From], r.To)
		}
	}
	p.mu.Lock()
	p.partners = idx
	p.updates++
	p.mu.Unlock()
}

// Observe implements Prefetcher (no-op: learning happens in the
// characterizer this prefetcher subscribes to).
func (p *RulePrefetcher) Observe([]blktrace.Extent) {}

// SuggestFor implements Prefetcher.
func (p *RulePrefetcher) SuggestFor(e blktrace.Extent) []blktrace.Extent {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.partners[e]
}

// Updates reports how many rule sets have been installed.
func (p *RulePrefetcher) Updates() uint64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.updates
}
