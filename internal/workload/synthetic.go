package workload

import (
	"fmt"
	"math/rand"
	"time"

	"daccor/internal/blktrace"
)

// Kind selects one of the paper's three synthetic correlation shapes.
type Kind int

const (
	// OneToOne correlates a single block with another non-contiguous
	// single block (two small associated records).
	OneToOne Kind = iota
	// OneToMany correlates a single block with a contiguous range
	// (e.g. an inode with its file contents).
	OneToMany
	// ManyToMany correlates two contiguous ranges (e.g. a web
	// resource file with a database table).
	ManyToMany
)

// String names the kind as in the paper.
func (k Kind) String() string {
	switch k {
	case OneToOne:
		return "one-to-one"
	case OneToMany:
		return "one-to-many"
	case ManyToMany:
		return "many-to-many"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Paper parameters for the synthetic workloads (Sec. IV-B1).
const (
	// DefaultCorrelations is the number of planted correlations.
	DefaultCorrelations = 4
	// DefaultCorrelationMeanGap is the mean interarrival of correlated
	// events: 200 ms, "large so that two sets of constructed
	// correlations will not merge into the same transaction".
	DefaultCorrelationMeanGap = 200 * time.Millisecond
	// DefaultNoiseMeanGap is the mean interarrival of noise requests:
	// 100 ms.
	DefaultNoiseMeanGap = 100 * time.Millisecond
	// MaxExtentBlocks is 1 MB of 512 B blocks, the top of the paper's
	// random extent size range.
	MaxExtentBlocks = 1 << 11
	// MaxNoiseBlocks is 8 KB, the top of the noise size range.
	MaxNoiseBlocks = 16
)

// Correlation is one planted inter-request correlation: its extents are
// always requested together (one I/O request per extent, same
// transaction window), with popularity Prob. Op is the direction every
// occurrence issues — read groups model correlated fetches, write
// groups model data that dies together (the §V.1 multi-stream case).
type Correlation struct {
	Extents []blktrace.Extent
	Prob    float64
	Op      blktrace.Op
}

// Pairs returns the ground-truth inter-request extent pairs this
// correlation should produce.
func (c Correlation) Pairs() []blktrace.Pair {
	var out []blktrace.Pair
	for i := 0; i < len(c.Extents); i++ {
		for j := i + 1; j < len(c.Extents); j++ {
			out = append(out, blktrace.MakePair(c.Extents[i], c.Extents[j]))
		}
	}
	return out
}

// SyntheticConfig configures a synthetic trace generation.
type SyntheticConfig struct {
	Kind Kind
	// Occurrences is the number of correlated-group arrivals to plant.
	Occurrences int
	// Correlations is the number of distinct planted correlations,
	// ranked by a Zipf-like distribution; 0 means DefaultCorrelations
	// (4, giving 48/24/16/12%).
	Correlations int
	// CorrelationMeanGap and NoiseMeanGap override the paper's 200 ms
	// and 100 ms mean interarrivals when non-zero.
	CorrelationMeanGap time.Duration
	NoiseMeanGap       time.Duration
	// NumberSpace is the block number space; 0 means 1<<26 (32 GB).
	NumberSpace uint64
	// WriteGroups is how many of the planted correlations issue writes
	// instead of reads (0 = a pure read trace, the previous behavior).
	// Write groups are taken from alternating popularity ranks (1, 3,
	// 5, …, then 0, 2, 4, …) so reads and writes both span the Zipf
	// distribution rather than writes claiming only the hottest or
	// coldest groups.
	WriteGroups int
	// NoiseWriteFrac is the fraction of noise requests issued as writes,
	// in [0,1] (0 = all-read noise, the previous behavior).
	NoiseWriteFrac float64
	// Seed makes generation deterministic.
	Seed int64
}

func (c *SyntheticConfig) applyDefaults() {
	if c.Correlations == 0 {
		c.Correlations = DefaultCorrelations
	}
	if c.CorrelationMeanGap == 0 {
		c.CorrelationMeanGap = DefaultCorrelationMeanGap
	}
	if c.NoiseMeanGap == 0 {
		c.NoiseMeanGap = DefaultNoiseMeanGap
	}
	if c.NumberSpace == 0 {
		c.NumberSpace = 1 << 26
	}
}

// validate checks the full config for batch generation; Generate needs
// a trace length, so Occurrences is required on top of the shape.
func (c *SyntheticConfig) validate() error {
	if c.Occurrences < 1 {
		return fmt.Errorf("workload: Occurrences must be >= 1 (got %d)", c.Occurrences)
	}
	return c.validateShape()
}

// validateShape checks everything except Occurrences — the subset a
// Stream needs, since open-ended generation has no trace length.
func (c *SyntheticConfig) validateShape() error {
	if c.Correlations < 1 {
		return fmt.Errorf("workload: Correlations must be >= 1 (got %d)", c.Correlations)
	}
	if c.Kind != OneToOne && c.Kind != OneToMany && c.Kind != ManyToMany {
		return fmt.Errorf("workload: unknown kind %d", int(c.Kind))
	}
	if c.WriteGroups < 0 || c.WriteGroups > c.Correlations {
		return fmt.Errorf("workload: WriteGroups must be in [0,%d] (got %d)", c.Correlations, c.WriteGroups)
	}
	if c.NoiseWriteFrac < 0 || c.NoiseWriteFrac > 1 {
		return fmt.Errorf("workload: NoiseWriteFrac must be in [0,1] (got %g)", c.NoiseWriteFrac)
	}
	return nil
}

// Synthetic is a generated trace with its ground truth.
type Synthetic struct {
	Trace        *blktrace.Trace
	Correlations []Correlation
	// NoiseEvents counts the random background requests mixed in.
	NoiseEvents int
}

// PlantedPairs returns all ground-truth inter-request pairs across the
// planted correlations.
func (s *Synthetic) PlantedPairs() []blktrace.Pair {
	var out []blktrace.Pair
	for _, c := range s.Correlations {
		out = append(out, c.Pairs()...)
	}
	return out
}

// Generate builds a synthetic trace: Occurrences correlated-group
// arrivals (group chosen per arrival by the Zipf-like rank
// distribution, requests of a group issued back-to-back with
// microsecond spacing) interleaved with Poisson noise of random
// single-extent requests — "contributing to infrequent and 'false'
// correlations".
func Generate(cfg SyntheticConfig) (*Synthetic, error) {
	cfg.applyDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf, err := NewZipfRanks(cfg.Correlations, 1)
	if err != nil {
		return nil, err
	}
	correlations, err := plantCorrelations(cfg, rng, zipf)
	if err != nil {
		return nil, err
	}

	trace := &blktrace.Trace{}
	arrivals, err := NewExpArrivals(rng, float64(cfg.CorrelationMeanGap))
	if err != nil {
		return nil, err
	}
	var lastTime int64
	for i := 0; i < cfg.Occurrences; i++ {
		at := arrivals.Next()
		c := correlations[zipf.Sample(rng)]
		for j, e := range c.Extents {
			trace.Append(blktrace.Event{
				Time:   at + int64(j)*int64(intraGroupGap),
				PID:    1,
				Op:     c.Op,
				Extent: e,
			})
		}
		lastTime = at
	}

	// Noise: single random requests, 512 B – 8 KB, uniform positions.
	noise, err := NewExpArrivals(rng, float64(cfg.NoiseMeanGap))
	if err != nil {
		return nil, err
	}
	noiseCount := 0
	for {
		at := noise.Next()
		if at > lastTime {
			break
		}
		op := blktrace.OpRead
		if cfg.NoiseWriteFrac > 0 && rng.Float64() < cfg.NoiseWriteFrac {
			op = blktrace.OpWrite
		}
		trace.Append(blktrace.Event{
			Time: at,
			PID:  2,
			Op:   op,
			Extent: blktrace.Extent{
				Block: uint64(rng.Int63n(int64(cfg.NumberSpace))),
				Len:   uint32(1 + rng.Intn(MaxNoiseBlocks)),
			},
		})
		noiseCount++
	}
	trace.SortByTime()
	return &Synthetic{Trace: trace, Correlations: correlations, NoiseEvents: noiseCount}, nil
}

// plantCorrelations constructs the fixed correlated extent groups for
// the requested kind, spread across the number space so groups never
// overlap.
func plantCorrelations(cfg SyntheticConfig, rng *rand.Rand, zipf *ZipfRanks) ([]Correlation, error) {
	out := make([]Correlation, cfg.Correlations)
	// Partition the number space into disjoint regions, two per
	// correlation (one per side), so planted extents never collide
	// with each other.
	regions := uint64(2 * cfg.Correlations)
	regionSize := cfg.NumberSpace / regions
	if regionSize < 2*MaxExtentBlocks {
		return nil, fmt.Errorf("workload: number space %d too small for %d correlations",
			cfg.NumberSpace, cfg.Correlations)
	}
	place := func(region uint64, length uint32) blktrace.Extent {
		base := region * regionSize
		offset := uint64(rng.Int63n(int64(regionSize - uint64(length))))
		return blktrace.Extent{Block: base + offset, Len: length}
	}
	randLen := func() uint32 { return uint32(1 + rng.Intn(MaxExtentBlocks)) }
	for i := range out {
		var a, b blktrace.Extent
		switch cfg.Kind {
		case OneToOne:
			a = place(uint64(2*i), 1)
			b = place(uint64(2*i+1), 1)
		case OneToMany:
			a = place(uint64(2*i), 1)
			b = place(uint64(2*i+1), randLen())
		case ManyToMany:
			a = place(uint64(2*i), randLen())
			b = place(uint64(2*i+1), randLen())
		}
		out[i] = Correlation{Extents: []blktrace.Extent{a, b}, Prob: zipf.Prob(i)}
	}
	for _, rank := range writeRanks(cfg.Correlations, cfg.WriteGroups) {
		out[rank].Op = blktrace.OpWrite
	}
	return out, nil
}

// writeRanks picks which popularity ranks become write groups:
// odd ranks first (1, 3, 5, …), then even (0, 2, 4, …), so a partial
// selection interleaves writes through the Zipf distribution instead
// of converting only its head or tail.
func writeRanks(correlations, writeGroups int) []int {
	order := make([]int, 0, correlations)
	for r := 1; r < correlations; r += 2 {
		order = append(order, r)
	}
	for r := 0; r < correlations; r += 2 {
		order = append(order, r)
	}
	return order[:writeGroups]
}
