package workload

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"daccor/internal/blktrace"
)

func TestZipfPaperProbabilities(t *testing.T) {
	// n=4, s=1 must give the paper's 48%, 24%, 16%, 12%.
	z, err := NewZipfRanks(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.48, 0.24, 0.16, 0.12}
	for i, w := range want {
		if got := z.Prob(i); math.Abs(got-w) > 0.0001 {
			t.Errorf("Prob(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestZipfSampleDistribution(t *testing.T) {
	z, err := NewZipfRanks(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, 4)
	const n = 200_000
	for i := 0; i < n; i++ {
		counts[z.Sample(rng)]++
	}
	for i := 0; i < 4; i++ {
		got := float64(counts[i]) / n
		if math.Abs(got-z.Prob(i)) > 0.01 {
			t.Errorf("empirical P(%d) = %v, want %v", i, got, z.Prob(i))
		}
	}
	// Ranks strictly ordered by popularity.
	for i := 1; i < 4; i++ {
		if counts[i] >= counts[i-1] {
			t.Errorf("rank %d sampled more than rank %d", i, i-1)
		}
	}
}

func TestZipfValidation(t *testing.T) {
	if _, err := NewZipfRanks(0, 1); err == nil {
		t.Error("want error for n=0")
	}
	if _, err := NewZipfRanks(4, 0); err == nil {
		t.Error("want error for s=0")
	}
	z, err := NewZipfRanks(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if z.Prob(0) != 1 || z.N() != 1 {
		t.Error("single-rank zipf should be degenerate")
	}
}

func TestExpArrivalsMean(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, err := NewExpArrivals(rng, 1e6) // 1 ms mean
	if err != nil {
		t.Fatal(err)
	}
	const n = 100_000
	var last int64
	for i := 0; i < n; i++ {
		now := a.Next()
		if now < last {
			t.Fatal("arrivals must be monotone")
		}
		last = now
	}
	mean := float64(last) / n
	if math.Abs(mean-1e6) > 2e4 {
		t.Errorf("mean interarrival = %v ns, want ~1e6", mean)
	}
	if a.Now() != last {
		t.Error("Now() should track last arrival")
	}
	if _, err := NewExpArrivals(rng, 0); err == nil {
		t.Error("want error for zero mean")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(SyntheticConfig{Kind: OneToOne}); err == nil {
		t.Error("want error for zero occurrences")
	}
	if _, err := Generate(SyntheticConfig{Kind: Kind(9), Occurrences: 10}); err == nil {
		t.Error("want error for unknown kind")
	}
	if _, err := Generate(SyntheticConfig{Kind: ManyToMany, Occurrences: 10, NumberSpace: 1024}); err == nil {
		t.Error("want error for tiny number space")
	}
}

func TestGenerateShapes(t *testing.T) {
	for _, kind := range []Kind{OneToOne, OneToMany, ManyToMany} {
		s, err := Generate(SyntheticConfig{Kind: kind, Occurrences: 500, Seed: 1})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if len(s.Correlations) != DefaultCorrelations {
			t.Fatalf("%v: %d correlations", kind, len(s.Correlations))
		}
		for _, c := range s.Correlations {
			if len(c.Extents) != 2 {
				t.Fatalf("%v: correlation with %d extents", kind, len(c.Extents))
			}
			a, b := c.Extents[0], c.Extents[1]
			switch kind {
			case OneToOne:
				if a.Len != 1 || b.Len != 1 {
					t.Errorf("one-to-one extents %v, %v should be single blocks", a, b)
				}
			case OneToMany:
				if a.Len != 1 {
					t.Errorf("one-to-many first extent %v should be a single block", a)
				}
			}
			if a.Overlaps(b) {
				t.Errorf("%v: correlated extents overlap: %v, %v", kind, a, b)
			}
		}
		// Popularity follows the paper's Zipf ranks.
		if math.Abs(s.Correlations[0].Prob-0.48) > 0.001 {
			t.Errorf("%v: top correlation prob = %v", kind, s.Correlations[0].Prob)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := SyntheticConfig{Kind: ManyToMany, Occurrences: 200, Seed: 42}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Trace.Len() != b.Trace.Len() {
		t.Fatal("same seed, different lengths")
	}
	for i := range a.Trace.Events {
		if a.Trace.Events[i] != b.Trace.Events[i] {
			t.Fatal("same seed, different events")
		}
	}
}

func TestGenerateTraceProperties(t *testing.T) {
	s, err := Generate(SyntheticConfig{Kind: OneToOne, Occurrences: 1000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tr := s.Trace
	// Sorted by time and valid.
	for i, ev := range tr.Events {
		if err := ev.Validate(); err != nil {
			t.Fatalf("event %d invalid: %v", i, err)
		}
		if i > 0 && ev.Time < tr.Events[i-1].Time {
			t.Fatal("trace not sorted")
		}
	}
	// 1000 occurrences × 2 extents + noise.
	if tr.Len() < 2000 || s.NoiseEvents == 0 {
		t.Errorf("trace len %d, noise %d", tr.Len(), s.NoiseEvents)
	}
	// Noise rate ≈ 2× correlation rate (100 ms vs 200 ms means).
	ratio := float64(s.NoiseEvents) / 1000
	if ratio < 1.5 || ratio > 2.6 {
		t.Errorf("noise/occurrence ratio = %v, want ≈2", ratio)
	}
	// Planted pairs ground truth: 4 correlations → 4 pairs.
	if pairs := s.PlantedPairs(); len(pairs) != 4 {
		t.Errorf("PlantedPairs = %d, want 4", len(pairs))
	}
}

// Planted groups arrive far apart (200 ms mean) while group members are
// microseconds apart, so a window-based grouping at a few ms must see
// each group intact. The trace comes from the pull iterator — the
// open-ended path the soak harness feeds from — so the property is
// pinned on the generator loadgen actually uses.
func TestGroupsAreTemporallyTight(t *testing.T) {
	s, err := NewStream(SyntheticConfig{Kind: OneToOne, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	extentOf := map[blktrace.Extent]int{}
	for i, c := range s.Correlations() {
		for _, e := range c.Extents {
			extentOf[e] = i
		}
	}
	// For every planted event, its partner must occur within 1 ms. The
	// last few events are pulled but not checked: their partners may
	// sit just past the pulled window.
	byTime := pull(t, s, 900)
	for i, ev := range byTime[:len(byTime)-4] {
		ci, planted := extentOf[ev.Extent]
		if !planted {
			continue
		}
		found := false
		for j := i - 3; j <= i+3 && !found; j++ {
			if j < 0 || j >= len(byTime) || j == i {
				continue
			}
			cj, ok := extentOf[byTime[j].Extent]
			if ok && cj == ci && byTime[j].Extent != ev.Extent &&
				abs64(byTime[j].Time-ev.Time) < int64(time.Millisecond) {
				found = true
			}
		}
		if !found {
			t.Fatalf("event %d (%v) has no nearby partner", i, ev.Extent)
		}
	}
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestKindString(t *testing.T) {
	if OneToOne.String() != "one-to-one" || OneToMany.String() != "one-to-many" ||
		ManyToMany.String() != "many-to-many" {
		t.Error("kind names should match the paper")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Error("unknown kind formatting")
	}
}
