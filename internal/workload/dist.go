// Package workload generates synthetic block I/O traces with known,
// planted data access correlations — the paper's one-to-one,
// one-to-many, and many-to-many workloads — plus the distribution
// helpers (Zipf-like rank popularity, exponential interarrivals) shared
// with the MSR-like trace synthesiser.
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// ZipfRanks samples ranks 0..n-1 with probability inversely
// proportional to (rank+1)^s — the "Zipf-like distribution" of Breslau
// et al. that the paper uses both for synthetic correlation popularity
// (s=1, n=4 gives the paper's 48/24/16/12%) and to model real-workload
// frequency skew.
type ZipfRanks struct {
	cdf []float64
}

// NewZipfRanks builds a sampler over n ranks with skew s > 0.
func NewZipfRanks(n int, s float64) (*ZipfRanks, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: zipf needs n >= 1 (got %d)", n)
	}
	if s <= 0 {
		return nil, fmt.Errorf("workload: zipf skew must be > 0 (got %v)", s)
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &ZipfRanks{cdf: cdf}, nil
}

// Prob returns the probability of rank i.
func (z *ZipfRanks) Prob(i int) float64 {
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}

// N returns the number of ranks.
func (z *ZipfRanks) N() int { return len(z.cdf) }

// Sample draws a rank.
func (z *ZipfRanks) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	// Binary search the CDF.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// ExpArrivals yields successive arrival timestamps (ns) with
// exponentially distributed interarrival times of the given mean —
// a Poisson arrival process.
type ExpArrivals struct {
	rng    *rand.Rand
	meanNs float64
	now    int64
}

// NewExpArrivals starts a process at t=0 with the given mean
// interarrival in nanoseconds.
func NewExpArrivals(rng *rand.Rand, meanNs float64) (*ExpArrivals, error) {
	if meanNs <= 0 {
		return nil, fmt.Errorf("workload: mean interarrival must be > 0 (got %v)", meanNs)
	}
	return &ExpArrivals{rng: rng, meanNs: meanNs}, nil
}

// Next returns the next arrival timestamp.
func (a *ExpArrivals) Next() int64 {
	a.now += int64(a.rng.ExpFloat64() * a.meanNs)
	return a.now
}

// Now returns the last returned arrival time.
func (a *ExpArrivals) Now() int64 { return a.now }
