package workload

import (
	"hash/fnv"
	"math/rand"
	"time"

	"daccor/internal/blktrace"
)

// Stream is the pull-based form of Generate: the same two merged
// processes — Zipf-ranked correlated-group arrivals and Poisson noise —
// but produced one event at a time, open-ended, in O(1) memory.
// Generate materializes the whole trace up front (Occurrences arrivals,
// then a sort), which is fine for test fixtures and fatal for a soak
// harness that wants billions of events; a Stream never allocates past
// its construction.
//
// The planted correlations are identical to Generate's for the same
// config and seed (the placement draws come first from the same seeded
// source), so ground truth carries over; the arrival interleaving does
// not match Generate byte-for-byte — each process gets its own derived
// rng so the merge needs no global sort — but it is deterministic per
// (config, seed) and preserves the same statistics: group members
// microseconds apart, groups hundreds of milliseconds apart, noise at
// its own exponential cadence.
//
// A Stream is not safe for concurrent use; give each producer its own.
type Stream struct {
	correlations []Correlation
	zipf         *ZipfRanks
	groupRng     *rand.Rand
	noiseRng     *rand.Rand
	groupArrive  *ExpArrivals
	noiseArrive  *ExpArrivals

	noiseWriteFrac float64
	numberSpace    uint64

	// group holds the not-yet-emitted events of the current correlated
	// group; nextNoise is the precomputed head of the noise process.
	// Next is a two-way merge of the two time-ordered sequences.
	group     []blktrace.Event
	groupAt   int
	lastGroup int64 // end time of the latest scheduled group, for monotonicity
	nextNoise blktrace.Event

	groups uint64
	noise  uint64
}

// intraGroupGap is the spacing between requests of one correlated
// group — the same near-simultaneity Generate plants.
const intraGroupGap = 5 * time.Microsecond

// Derived-rng tweaks: each process draws from its own source so pulling
// one event never perturbs the other process's sequence (the property
// that makes the merge streamable without a sort).
const (
	groupSeedMix = int64(-0x61c8864680b583eb) // 0x9e3779b97f4a7c15 as int64
	noiseSeedMix = int64(0x6a09e667f3bcc909)
)

// NewStream validates cfg (Occurrences is ignored — a stream has no
// end) and returns a generator positioned before the first event.
func NewStream(cfg SyntheticConfig) (*Stream, error) {
	cfg.applyDefaults()
	if err := cfg.validateShape(); err != nil {
		return nil, err
	}
	// Placement uses the seed directly, exactly as Generate does, so a
	// Stream and a Generate at the same (config, seed) plant the same
	// correlations.
	placeRng := rand.New(rand.NewSource(cfg.Seed))
	zipf, err := NewZipfRanks(cfg.Correlations, 1)
	if err != nil {
		return nil, err
	}
	correlations, err := plantCorrelations(cfg, placeRng, zipf)
	if err != nil {
		return nil, err
	}
	groupRng := rand.New(rand.NewSource(cfg.Seed ^ groupSeedMix))
	noiseRng := rand.New(rand.NewSource(cfg.Seed ^ noiseSeedMix))
	groupArrive, err := NewExpArrivals(groupRng, float64(cfg.CorrelationMeanGap))
	if err != nil {
		return nil, err
	}
	noiseArrive, err := NewExpArrivals(noiseRng, float64(cfg.NoiseMeanGap))
	if err != nil {
		return nil, err
	}
	s := &Stream{
		correlations:   correlations,
		zipf:           zipf,
		groupRng:       groupRng,
		noiseRng:       noiseRng,
		groupArrive:    groupArrive,
		noiseArrive:    noiseArrive,
		noiseWriteFrac: cfg.NoiseWriteFrac,
		numberSpace:    cfg.NumberSpace,
		group:          make([]blktrace.Event, 0, 4),
	}
	s.refillGroup()
	s.advanceNoise()
	return s, nil
}

// Correlations returns the planted ground truth (identical to what
// Generate plants for the same config and seed). Callers must treat the
// slice as read-only.
func (s *Stream) Correlations() []Correlation { return s.correlations }

// PlantedPairs returns all ground-truth inter-request pairs across the
// planted correlations.
func (s *Stream) PlantedPairs() []blktrace.Pair {
	var out []blktrace.Pair
	for _, c := range s.correlations {
		out = append(out, c.Pairs()...)
	}
	return out
}

// Counts reports how many correlated-group and noise events have been
// emitted so far.
func (s *Stream) Counts() (group, noise uint64) { return s.groups, s.noise }

// Next returns the next event. Timestamps are nondecreasing; the stream
// never ends.
func (s *Stream) Next() blktrace.Event {
	if s.groupAt == len(s.group) {
		s.refillGroup()
	}
	if g := s.group[s.groupAt]; g.Time <= s.nextNoise.Time {
		s.groupAt++
		s.groups++
		return g
	}
	ev := s.nextNoise
	s.advanceNoise()
	s.noise++
	return ev
}

// NextBatch fills dst to its capacity and returns it — the batch-ingest
// form of Next, allocating nothing.
func (s *Stream) NextBatch(dst []blktrace.Event) []blktrace.Event {
	dst = dst[:cap(dst)]
	for i := range dst {
		dst[i] = s.Next()
	}
	return dst
}

// refillGroup schedules the next correlated-group arrival: a rank drawn
// from the Zipf distribution, its extents issued back-to-back.
func (s *Stream) refillGroup() {
	at := s.groupArrive.Next()
	// Exponential interarrivals can (rarely) undercut the previous
	// group's intra-group tail; clamp so the merged output stays
	// time-ordered without a sort.
	if at < s.lastGroup {
		at = s.lastGroup
	}
	c := s.correlations[s.zipf.Sample(s.groupRng)]
	s.group = s.group[:0]
	for j, e := range c.Extents {
		s.group = append(s.group, blktrace.Event{
			Time:   at + int64(j)*int64(intraGroupGap),
			PID:    1,
			Op:     c.Op,
			Extent: e,
		})
	}
	s.groupAt = 0
	s.lastGroup = s.group[len(s.group)-1].Time
}

// advanceNoise draws the next background request: a single random
// extent, 512 B – 8 KB, uniform position, read or write per
// NoiseWriteFrac.
func (s *Stream) advanceNoise() {
	op := blktrace.OpRead
	if s.noiseWriteFrac > 0 && s.noiseRng.Float64() < s.noiseWriteFrac {
		op = blktrace.OpWrite
	}
	s.nextNoise = blktrace.Event{
		Time: s.noiseArrive.Next(),
		PID:  2,
		Op:   op,
		Extent: blktrace.Extent{
			Block: uint64(s.noiseRng.Int63n(int64(s.numberSpace))),
			Len:   uint32(1 + s.noiseRng.Intn(MaxNoiseBlocks)),
		},
	}
}

// TenantSeed derives a per-tenant generation seed from a base seed: the
// multi-tenant form of SyntheticConfig.Seed. Two tenants get
// uncorrelated streams; the same (base, tenant) always gets the same
// one.
func TenantSeed(base int64, tenant string) int64 {
	h := fnv.New64a()
	h.Write([]byte(tenant))
	return base ^ int64(h.Sum64())
}
