package workload

import (
	"testing"
	"time"

	"daccor/internal/blktrace"
	"daccor/internal/core"
	"daccor/internal/monitor"
	"daccor/internal/pipeline"
)

func pull(t *testing.T, s *Stream, n int) []blktrace.Event {
	t.Helper()
	out := make([]blktrace.Event, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, s.Next())
	}
	return out
}

// Determinism per (tenant, seed): the same tenant replays the same
// stream, different tenants get uncorrelated ones.
func TestStreamDeterministicPerTenantSeed(t *testing.T) {
	const base = 42
	cfgFor := func(tenant string) SyntheticConfig {
		return SyntheticConfig{Kind: OneToOne, Seed: TenantSeed(base, tenant)}
	}
	if TenantSeed(base, "vol0") != TenantSeed(base, "vol0") {
		t.Fatal("TenantSeed not deterministic")
	}
	if TenantSeed(base, "vol0") == TenantSeed(base, "vol1") {
		t.Fatal("distinct tenants share a seed")
	}

	a, err := NewStream(cfgFor("vol0"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewStream(cfgFor("vol0"))
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	evA, evB := pull(t, a, n), pull(t, b, n)
	for i := range evA {
		if evA[i] != evB[i] {
			t.Fatalf("same (tenant, seed), event %d differs: %+v vs %+v", i, evA[i], evB[i])
		}
	}

	c, err := NewStream(cfgFor("vol1"))
	if err != nil {
		t.Fatal(err)
	}
	evC := pull(t, c, n)
	same := 0
	for i := range evA {
		if evA[i] == evC[i] {
			same++
		}
	}
	if same == n {
		t.Fatal("different tenants produced identical streams")
	}
}

// The stream plants exactly what Generate plants for the same config
// and seed: ground truth carries across the two APIs.
func TestStreamPlantsGenerateGroundTruth(t *testing.T) {
	cfg := SyntheticConfig{Kind: ManyToMany, Occurrences: 10, WriteGroups: 2, Seed: 9}
	syn, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Correlations()) != len(syn.Correlations) {
		t.Fatalf("stream planted %d correlations, Generate %d", len(st.Correlations()), len(syn.Correlations))
	}
	for i, c := range st.Correlations() {
		g := syn.Correlations[i]
		if c.Prob != g.Prob || c.Op != g.Op || len(c.Extents) != len(g.Extents) {
			t.Fatalf("correlation %d differs: %+v vs %+v", i, c, g)
		}
		for j := range c.Extents {
			if c.Extents[j] != g.Extents[j] {
				t.Fatalf("correlation %d extent %d differs: %v vs %v", i, j, c.Extents[j], g.Extents[j])
			}
		}
	}
	if len(st.PlantedPairs()) != len(syn.PlantedPairs()) {
		t.Fatal("planted pair ground truth differs")
	}
}

// Events come out valid and time-ordered, both processes contribute,
// and NextBatch is just Next in bulk.
func TestStreamMonotoneValidEvents(t *testing.T) {
	s, err := NewStream(SyntheticConfig{Kind: OneToMany, NoiseWriteFrac: 0.25, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var last int64
	for i := 0; i < 10_000; i++ {
		ev := s.Next()
		if err := ev.Validate(); err != nil {
			t.Fatalf("event %d invalid: %v", i, err)
		}
		if ev.Time < last {
			t.Fatalf("event %d out of order: %d after %d", i, ev.Time, last)
		}
		last = ev.Time
	}
	group, noise := s.Counts()
	if group == 0 || noise == 0 {
		t.Fatalf("one process never fired: group %d, noise %d", group, noise)
	}
	// Mean gaps 200 ms (groups of 2) vs 100 ms noise ⇒ roughly equal
	// event counts; a badly broken merge starves one side entirely.
	ratio := float64(group) / float64(noise)
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("group/noise ratio = %v, want ≈1", ratio)
	}

	batch := s.NextBatch(make([]blktrace.Event, 0, 256))
	if len(batch) != 256 {
		t.Fatalf("NextBatch filled %d of 256", len(batch))
	}
	if batch[0].Time < last {
		t.Error("NextBatch went back in time")
	}
}

// analyzeRecall feeds events through a monitor+synopsis pipeline and
// reports what fraction of the planted pairs the synopsis recovered at
// the given support.
func analyzeRecall(t *testing.T, events []blktrace.Event, planted []blktrace.Pair, support uint32) float64 {
	t.Helper()
	p, err := pipeline.New(pipeline.Config{
		Monitor:  monitor.Config{Window: monitor.StaticWindow(time.Millisecond)},
		Analyzer: core.Config{ItemCapacity: 4096, PairCapacity: 4096},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if err := p.HandleIssue(ev); err != nil {
			t.Fatal(err)
		}
	}
	p.Flush()
	found := make(map[blktrace.Pair]bool)
	for _, pc := range p.Snapshot(support).Pairs {
		found[pc.Pair] = true
	}
	hit := 0
	for _, pr := range planted {
		if found[pr] {
			hit++
		}
	}
	return float64(hit) / float64(len(planted))
}

// Planted-pair recall through the analysis pipeline is preserved when
// the trace comes from the pull iterator instead of the batch Generate
// path: the streaming rewrite must not cost detection quality.
func TestStreamRecallMatchesGenerate(t *testing.T) {
	cfg := SyntheticConfig{Kind: OneToOne, Occurrences: 400, Seed: 11}
	syn, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	genRecall := analyzeRecall(t, syn.Trace.Events, syn.PlantedPairs(), 3)

	st, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Pull until the stream has emitted as many correlated events as
	// the batch trace holds, so both runs plant comparable evidence.
	target := uint64(syn.Trace.Len() - syn.NoiseEvents)
	var events []blktrace.Event
	for {
		events = append(events, st.Next())
		if g, _ := st.Counts(); g >= target {
			break
		}
	}
	streamRecall := analyzeRecall(t, events, st.PlantedPairs(), 3)

	if genRecall != 1 {
		t.Fatalf("Generate recall = %v, want 1 (fixture seed should be fully recoverable)", genRecall)
	}
	if streamRecall < genRecall {
		t.Fatalf("stream recall %v < Generate recall %v", streamRecall, genRecall)
	}
}

// Table-driven config validation across both generation APIs. The
// stream ignores Occurrences (it has no end); everything else is
// enforced identically.
func TestStreamConfigValidation(t *testing.T) {
	cases := []struct {
		name      string
		cfg       SyntheticConfig
		wantErr   bool
		streamErr bool // NewStream's verdict, when different from Generate's
	}{
		{name: "valid", cfg: SyntheticConfig{Kind: OneToOne, Occurrences: 10}},
		{name: "zero occurrences rejected by Generate only",
			cfg: SyntheticConfig{Kind: OneToOne}, wantErr: true, streamErr: false},
		{name: "unknown kind",
			cfg: SyntheticConfig{Kind: Kind(9), Occurrences: 10}, wantErr: true, streamErr: true},
		{name: "negative correlations",
			cfg: SyntheticConfig{Kind: OneToOne, Occurrences: 10, Correlations: -1}, wantErr: true, streamErr: true},
		{name: "number space too small",
			cfg: SyntheticConfig{Kind: ManyToMany, Occurrences: 10, NumberSpace: 1024}, wantErr: true, streamErr: true},
		{name: "write groups out of range",
			cfg: SyntheticConfig{Kind: OneToOne, Occurrences: 10, WriteGroups: 5}, wantErr: true, streamErr: true},
		{name: "noise write fraction out of range",
			cfg: SyntheticConfig{Kind: OneToOne, Occurrences: 10, NoiseWriteFrac: 1.5}, wantErr: true, streamErr: true},
		{name: "write groups within custom correlations",
			cfg: SyntheticConfig{Kind: OneToOne, Occurrences: 10, Correlations: 6, WriteGroups: 5}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Generate(tc.cfg)
			if (err != nil) != tc.wantErr {
				t.Errorf("Generate err = %v, want error %v", err, tc.wantErr)
			}
			_, err = NewStream(tc.cfg)
			if (err != nil) != tc.streamErr {
				t.Errorf("NewStream err = %v, want error %v", err, tc.streamErr)
			}
		})
	}
}
