// Package replay drives a trace against a simulated storage device,
// playing the role of fio's trace replay in the paper's evaluation.
//
// Two modes mirror the paper's setup:
//
//   - Timed replay with a speedup factor: arrival times are the trace
//     timestamps divided by Speedup, so traces recorded on slow HDDs can
//     be accelerated to stress the real-time pipeline (Table II derives
//     the per-workload factors).
//   - No-stall synchronous replay (fio's replay_no_stall): timestamps
//     are ignored and each request is issued as soon as the previous
//     one completes, which is how the paper measures the test device's
//     intrinsic latency.
package replay

import (
	"errors"
	"fmt"
	"time"

	"daccor/internal/blktrace"
	"daccor/internal/device"
)

// Options configures a replay run.
type Options struct {
	// Speedup divides the trace's interarrival times; 1 (or 0) replays
	// at recorded speed. Table II's factors range from 61.2× to 473×.
	Speedup float64
	// NoStall ignores trace timestamps and issues each request
	// synchronously after the previous completion (queue depth 1).
	NoStall bool
	// OnIssue, if set, observes every request at its (re-timed) issue
	// moment — the hook the real-time monitor attaches to, standing in
	// for blktrace's issue events.
	OnIssue func(blktrace.Event)
	// OnComplete, if set, observes every completion — the hook that
	// feeds request latencies to the dynamic transaction window.
	OnComplete func(device.Completion)
}

// Result summarises a replay run.
type Result struct {
	Requests         int
	Reads, Writes    int
	MeanReadLatency  time.Duration
	MeanWriteLatency time.Duration
	// WallTime is the simulated duration from first issue to last
	// completion.
	WallTime time.Duration
	// Device is the device's stats for this run.
	Device device.Stats
}

// Run replays the trace against the device. The device's stats and
// queue state are reset at the start so Result.Device covers exactly
// this run and the replay clock starts at zero.
func Run(t *blktrace.Trace, d *device.Device, opts Options) (Result, error) {
	if opts.Speedup < 0 {
		return Result{}, fmt.Errorf("replay: negative speedup %v", opts.Speedup)
	}
	if opts.Speedup == 0 {
		opts.Speedup = 1
	}
	d.Reset()
	var res Result
	if t.Len() == 0 {
		return res, nil
	}
	base := t.Events[0].Time
	var lastComplete int64
	var firstIssue, lastEnd int64
	for i, ev := range t.Events {
		if err := ev.Validate(); err != nil {
			return Result{}, fmt.Errorf("replay: event %d: %w", i, err)
		}
		var at int64
		if opts.NoStall {
			at = lastComplete
		} else {
			at = int64(float64(ev.Time-base) / opts.Speedup)
		}
		if opts.OnIssue != nil {
			issued := ev
			issued.Time = at
			opts.OnIssue(issued)
		}
		c := d.Submit(at, ev.Op, ev.Extent)
		lastComplete = c.CompleteTime
		if i == 0 {
			firstIssue = at
		}
		if c.CompleteTime > lastEnd {
			lastEnd = c.CompleteTime
		}
		if opts.OnComplete != nil {
			opts.OnComplete(c)
		}
		res.Requests++
		if ev.Op == blktrace.OpWrite {
			res.Writes++
		} else {
			res.Reads++
		}
	}
	res.Device = d.Stats()
	res.MeanReadLatency = res.Device.MeanReadLatency()
	res.MeanWriteLatency = res.Device.MeanWriteLatency()
	res.WallTime = time.Duration(lastEnd - firstIssue)
	return res, nil
}

// SpeedupMeasurement is one row of Table II: the mean latency recorded
// in the trace, the mean read latency measured by no-stall replay on
// the test device, and their ratio — the factor by which the paper
// accelerates the workload's arrival rate.
type SpeedupMeasurement struct {
	MeanTraceLatency    time.Duration
	MeanMeasuredLatency time.Duration
	Speedup             float64
}

// MeasureSpeedup reproduces the paper's Table II methodology: replay
// the trace `reps` times (the paper uses 10) on the test device with
// no-stall synchronous requests, record the average *read* latency
// (writes may be absorbed by the device's cache and report unrealistic
// completions), and divide the trace's recorded mean latency by it.
// traceLatencies are the per-request latencies recorded in the original
// trace, parallel to t.Events.
func MeasureSpeedup(t *blktrace.Trace, traceLatencies []time.Duration, d *device.Device, reps int) (SpeedupMeasurement, error) {
	if len(traceLatencies) != t.Len() {
		return SpeedupMeasurement{}, fmt.Errorf("replay: %d latencies for %d events",
			len(traceLatencies), t.Len())
	}
	if t.Len() == 0 {
		return SpeedupMeasurement{}, errors.New("replay: empty trace")
	}
	if reps < 1 {
		reps = 1
	}
	var traceSum time.Duration
	for _, l := range traceLatencies {
		traceSum += l
	}
	meanTrace := traceSum / time.Duration(t.Len())

	var readSum time.Duration
	var reads uint64
	for r := 0; r < reps; r++ {
		res, err := Run(t, d, Options{NoStall: true})
		if err != nil {
			return SpeedupMeasurement{}, err
		}
		readSum += res.Device.ReadLatencySum
		reads += res.Device.Reads
	}
	if reads == 0 {
		return SpeedupMeasurement{}, errors.New("replay: trace has no reads to measure")
	}
	meanMeasured := readSum / time.Duration(reads)
	return SpeedupMeasurement{
		MeanTraceLatency:    meanTrace,
		MeanMeasuredLatency: meanMeasured,
		Speedup:             float64(meanTrace) / float64(meanMeasured),
	}, nil
}
