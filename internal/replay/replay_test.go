package replay

import (
	"testing"
	"time"

	"daccor/internal/blktrace"
	"daccor/internal/device"
)

func testTrace(n int, gapNs int64) *blktrace.Trace {
	t := &blktrace.Trace{}
	for i := 0; i < n; i++ {
		op := blktrace.OpRead
		if i%4 == 3 {
			op = blktrace.OpWrite
		}
		t.Append(blktrace.Event{
			Time:   int64(i) * gapNs,
			PID:    1,
			Op:     op,
			Extent: blktrace.Extent{Block: uint64(i * 100), Len: 8},
		})
	}
	return t
}

func nvme(t *testing.T) *device.Device {
	t.Helper()
	d, err := device.New(device.NVMeSSD(), 1)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRunCountsAndStats(t *testing.T) {
	tr := testTrace(100, 1_000_000)
	res, err := Run(tr, nvme(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 100 || res.Reads != 75 || res.Writes != 25 {
		t.Errorf("counts = %+v", res)
	}
	if res.MeanReadLatency <= 0 || res.WallTime <= 0 {
		t.Errorf("latency/walltime not positive: %+v", res)
	}
}

func TestSpeedupCompressesArrivals(t *testing.T) {
	tr := testTrace(200, 10_000_000) // 10 ms apart: device is always idle
	d := nvme(t)
	slow, err := Run(tr, d, Options{Speedup: 1})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Run(tr, d, Options{Speedup: 100})
	if err != nil {
		t.Fatal(err)
	}
	if fast.WallTime >= slow.WallTime/50 {
		t.Errorf("speedup 100 gave wall %v vs %v", fast.WallTime, slow.WallTime)
	}
}

func TestHighSpeedupCausesQueueing(t *testing.T) {
	tr := testTrace(500, 1_000_000)
	d := nvme(t)
	res, err := Run(tr, d, Options{Speedup: 1000}) // 1 µs apart ≪ service time
	if err != nil {
		t.Fatal(err)
	}
	if res.Device.QueueWaitSum == 0 {
		t.Error("extreme acceleration should cause queue waits")
	}
}

func TestNoStallIgnoresTimestamps(t *testing.T) {
	// Hour-long gaps; no-stall must finish in device time, not trace time.
	tr := testTrace(50, int64(time.Hour))
	res, err := Run(tr, nvme(t), Options{NoStall: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.WallTime > time.Second {
		t.Errorf("no-stall wall time = %v, should be ~50 service times", res.WallTime)
	}
	if res.Device.QueueWaitSum != 0 {
		t.Error("no-stall (QD1) must never queue")
	}
}

func TestHooksFireInOrder(t *testing.T) {
	tr := testTrace(30, 1_000_000)
	var issues []int64
	var completes int
	lastIssue := int64(-1)
	_, err := Run(tr, nvme(t), Options{
		Speedup: 2,
		OnIssue: func(ev blktrace.Event) {
			if ev.Time < lastIssue {
				t.Error("issue times must be monotone")
			}
			lastIssue = ev.Time
			issues = append(issues, ev.Time)
		},
		OnComplete: func(c device.Completion) {
			if c.CompleteTime < c.SubmitTime {
				t.Error("completion before submission")
			}
			completes++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(issues) != 30 || completes != 30 {
		t.Errorf("hooks fired %d/%d times", len(issues), completes)
	}
	// Re-timed issues: event i at i*1ms/2.
	if issues[2] != 1_000_000 {
		t.Errorf("issue[2] = %d, want 1000000 (2ms/2)", issues[2])
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	tr := testTrace(5, 1000)
	if _, err := Run(tr, nvme(t), Options{Speedup: -1}); err == nil {
		t.Error("want error for negative speedup")
	}
	bad := &blktrace.Trace{}
	bad.Append(blktrace.Event{Time: 0, Op: blktrace.Op(9), Extent: blktrace.Extent{Block: 1, Len: 1}})
	if _, err := Run(bad, nvme(t), Options{}); err == nil {
		t.Error("want error for invalid event")
	}
}

func TestRunEmptyTrace(t *testing.T) {
	res, err := Run(&blktrace.Trace{}, nvme(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 0 || res.WallTime != 0 {
		t.Errorf("empty trace result = %+v", res)
	}
}

func TestMeasureSpeedupTableIIRegime(t *testing.T) {
	// A trace "recorded" with ms-class latencies replayed on a µs-class
	// device must yield a large speedup, like Table II's 61–473×.
	tr := testTrace(400, 5_000_000)
	lats := make([]time.Duration, tr.Len())
	for i := range lats {
		lats[i] = 4 * time.Millisecond
	}
	m, err := MeasureSpeedup(tr, lats, nvme(t), 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.MeanTraceLatency != 4*time.Millisecond {
		t.Errorf("MeanTraceLatency = %v", m.MeanTraceLatency)
	}
	if m.MeanMeasuredLatency < 10*time.Microsecond || m.MeanMeasuredLatency > 200*time.Microsecond {
		t.Errorf("MeanMeasuredLatency = %v, want tens of µs", m.MeanMeasuredLatency)
	}
	if m.Speedup < 20 || m.Speedup > 500 {
		t.Errorf("Speedup = %.1f, want the paper's order of magnitude", m.Speedup)
	}
}

func TestMeasureSpeedupValidation(t *testing.T) {
	tr := testTrace(5, 1000)
	if _, err := MeasureSpeedup(tr, make([]time.Duration, 3), nvme(t), 1); err == nil {
		t.Error("want error for mismatched latencies")
	}
	if _, err := MeasureSpeedup(&blktrace.Trace{}, nil, nvme(t), 1); err == nil {
		t.Error("want error for empty trace")
	}
	// Write-only trace has no reads to measure.
	wo := &blktrace.Trace{}
	wo.Append(blktrace.Event{Time: 0, Op: blktrace.OpWrite, Extent: blktrace.Extent{Block: 1, Len: 1}})
	if _, err := MeasureSpeedup(wo, []time.Duration{time.Millisecond}, nvme(t), 1); err == nil {
		t.Error("want error for read-free trace")
	}
}

func TestMeasureSpeedupRepsAveraged(t *testing.T) {
	tr := testTrace(100, 1000)
	lats := make([]time.Duration, tr.Len())
	for i := range lats {
		lats[i] = time.Millisecond
	}
	one, err := MeasureSpeedup(tr, lats, nvme(t), 0) // clamps to 1 rep
	if err != nil {
		t.Fatal(err)
	}
	ten, err := MeasureSpeedup(tr, lats, nvme(t), 10)
	if err != nil {
		t.Fatal(err)
	}
	// Both estimates should be in the same ballpark; 10 reps just smooths.
	ratio := float64(one.MeanMeasuredLatency) / float64(ten.MeanMeasuredLatency)
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("rep averaging unstable: %v vs %v", one.MeanMeasuredLatency, ten.MeanMeasuredLatency)
	}
}
