package pipeline

import (
	"bytes"
	"testing"
	"time"

	"daccor/internal/analysis"
	"daccor/internal/blktrace"
	"daccor/internal/core"
	"daccor/internal/device"
	"daccor/internal/fim"
	"daccor/internal/monitor"
	"daccor/internal/replay"
	"daccor/internal/workload"
)

func staticCfg(window time.Duration, c int) Config {
	return Config{
		Monitor:  monitor.Config{Window: monitor.StaticWindow(window)},
		Analyzer: core.Config{ItemCapacity: c, PairCapacity: c},
	}
}

func TestNewValidatesAnalyzer(t *testing.T) {
	_, err := New(Config{Analyzer: core.Config{}})
	if err == nil {
		t.Error("want error for zero capacities")
	}
}

func TestDefaultWindowIsDynamic(t *testing.T) {
	p, err := New(Config{Analyzer: core.Config{ItemCapacity: 8, PairCapacity: 8}})
	if err != nil {
		t.Fatal(err)
	}
	// Feed a completion and verify it influences windowing (no panic,
	// and the monitor accepts events across a widened window).
	p.HandleCompletion(device.Completion{SubmitTime: 0, CompleteTime: int64(10 * time.Millisecond)})
	if err := p.HandleIssue(blktrace.Event{Time: 0, Op: blktrace.OpRead,
		Extent: blktrace.Extent{Block: 1, Len: 1}}); err != nil {
		t.Fatal(err)
	}
	p.Flush()
	if p.Analyzer().Stats().Transactions != 1 {
		t.Error("transaction not processed")
	}
}

func TestKeepTransactions(t *testing.T) {
	cfg := staticCfg(time.Millisecond, 64)
	cfg.KeepTransactions = true
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	events := []blktrace.Event{
		{Time: 0, Op: blktrace.OpRead, Extent: blktrace.Extent{Block: 1, Len: 1}},
		{Time: 100, Op: blktrace.OpRead, Extent: blktrace.Extent{Block: 2, Len: 1}},
		{Time: int64(10 * time.Millisecond), Op: blktrace.OpRead, Extent: blktrace.Extent{Block: 3, Len: 1}},
	}
	for _, ev := range events {
		if err := p.HandleIssue(ev); err != nil {
			t.Fatal(err)
		}
	}
	p.Flush()
	txs := p.Transactions()
	if len(txs) != 2 {
		t.Fatalf("stored %d transactions, want 2", len(txs))
	}
	sets := ExtentSets(txs)
	if len(sets[0]) != 2 || len(sets[1]) != 1 {
		t.Errorf("extent sets = %v", sets)
	}
}

// End-to-end on all three synthetic workloads: the online pipeline must
// recover every planted correlation, with the top-ranked one counted
// most often — the Fig. 7 experiment, asserted numerically.
func TestSyntheticPlantedCorrelationsRecovered(t *testing.T) {
	for _, kind := range []workload.Kind{workload.OneToOne, workload.OneToMany, workload.ManyToMany} {
		syn, err := workload.Generate(workload.SyntheticConfig{
			Kind:        kind,
			Occurrences: 1500,
			Seed:        17,
		})
		if err != nil {
			t.Fatal(err)
		}
		// 10 ms static window: group gaps are µs, arrivals are ~100 ms.
		p, err := AnalyzeTrace(syn.Trace, staticCfg(10*time.Millisecond, 4096))
		if err != nil {
			t.Fatal(err)
		}
		snap := p.Snapshot(10) // support 10, as Fig. 7 uses for eclat
		counts := snap.PairCounts()
		var prevCount uint32 = 1 << 31
		for rank, c := range syn.Correlations {
			pr := c.Pairs()[0]
			got, ok := counts[pr]
			if !ok {
				t.Fatalf("%v: planted pair rank %d (%v) not detected", kind, rank, pr)
			}
			// Zipf ranking must be preserved (with slack for sampling noise).
			if got > prevCount+prevCount/4 {
				t.Errorf("%v: rank %d count %d exceeds higher rank's %d", kind, rank, got, prevCount)
			}
			prevCount = got
		}
	}
}

// The same transactions fed to offline FIM and the online synopsis must
// agree on the frequent pairs (the >90% claim, on a synthetic where the
// synopsis has room).
func TestOnlineMatchesOfflineOnSynthetic(t *testing.T) {
	syn, err := workload.Generate(workload.SyntheticConfig{
		Kind:        workload.ManyToMany,
		Occurrences: 1200,
		Seed:        23,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := staticCfg(10*time.Millisecond, 4096)
	cfg.KeepTransactions = true
	p, err := AnalyzeTrace(syn.Trace, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds := fim.NewDataset(ExtentSets(p.Transactions()))
	truth := analysis.FrequentSet(ds.PairFrequencies(), 10)
	online := p.Snapshot(10).PairSet()
	prf := analysis.DetectionPRF(online, truth)
	if prf.Recall < 0.9 {
		t.Errorf("recall = %.3f, want >= 0.9 (the paper's headline)", prf.Recall)
	}
	if prf.Precision < 0.9 {
		t.Errorf("precision = %.3f, want >= 0.9", prf.Precision)
	}
}

// Replay integration: live monitoring during an accelerated replay on
// the simulated NVMe device, dynamic window, still detects the planted
// pairs.
func TestAnalyzeReplayLive(t *testing.T) {
	syn, err := workload.Generate(workload.SyntheticConfig{
		Kind:        workload.OneToOne,
		Occurrences: 800,
		Seed:        31,
	})
	if err != nil {
		t.Fatal(err)
	}
	dev, err := device.New(device.NVMeSSD(), 1)
	if err != nil {
		t.Fatal(err)
	}
	issues, completes := 0, 0
	p, res, err := AnalyzeReplay(syn.Trace, dev, replay.Options{
		Speedup:    10,
		OnIssue:    func(blktrace.Event) { issues++ },
		OnComplete: func(device.Completion) { completes++ },
	}, Config{Analyzer: core.Config{ItemCapacity: 4096, PairCapacity: 4096}})
	if err != nil {
		t.Fatal(err)
	}
	if issues != syn.Trace.Len() || completes != syn.Trace.Len() {
		t.Errorf("caller hooks preserved? issues=%d completes=%d", issues, completes)
	}
	if res.Requests != syn.Trace.Len() {
		t.Errorf("replay requests = %d", res.Requests)
	}
	counts := p.Snapshot(5).PairCounts()
	for rank, c := range syn.Correlations {
		if _, ok := counts[c.Pairs()[0]]; !ok {
			t.Errorf("planted pair rank %d missing after live replay", rank)
		}
	}
	if p.Monitor().Stats().Transactions == 0 {
		t.Error("monitor emitted no transactions")
	}
}

// Multi-tenant isolation: two tenants' workloads interleave at the
// block layer; PID filtering must characterize one tenant's
// correlations without contamination from the other's.
func TestMultiTenantPIDFilter(t *testing.T) {
	tenantA, err := workload.Generate(workload.SyntheticConfig{
		Kind: workload.OneToOne, Occurrences: 600, Seed: 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	tenantB, err := workload.Generate(workload.SyntheticConfig{
		Kind: workload.ManyToMany, Occurrences: 600, Seed: 43,
	})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := blktrace.ReadAll(blktrace.MergeSources(
		blktrace.WithPID(tenantA.Trace.Source(), 100),
		blktrace.WithPID(tenantB.Trace.Source(), 200),
	))
	if err != nil {
		t.Fatal(err)
	}

	cfg := staticCfg(10*time.Millisecond, 4096)
	cfg.Monitor.FilterPIDs = []uint32{100}
	p, err := AnalyzeTrace(merged, cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := p.Snapshot(5).PairCounts()
	for rank, c := range tenantA.Correlations {
		if _, ok := counts[c.Pairs()[0]]; !ok {
			t.Errorf("tenant A pair rank %d missing under PID filter", rank)
		}
	}
	for rank, c := range tenantB.Correlations {
		if _, ok := counts[c.Pairs()[0]]; ok {
			t.Errorf("tenant B pair rank %d leaked through the PID filter", rank)
		}
	}
	if p.Monitor().Stats().Filtered == 0 {
		t.Error("filter should have dropped tenant B events")
	}
}

// Warm restart: a pipeline built from a restored analyzer continues
// exactly where the saved one left off.
func TestRestoredAnalyzerPipeline(t *testing.T) {
	syn, err := workload.Generate(workload.SyntheticConfig{
		Kind: workload.OneToOne, Occurrences: 400, Seed: 51,
	})
	if err != nil {
		t.Fatal(err)
	}
	half := syn.Trace.Len() / 2

	// Uninterrupted reference run.
	ref, err := AnalyzeTrace(syn.Trace, staticCfg(10*time.Millisecond, 2048))
	if err != nil {
		t.Fatal(err)
	}

	// First half, save, restore, second half.
	first, err := AnalyzeTrace(syn.Trace.Slice(0, half), staticCfg(10*time.Millisecond, 2048))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := first.Analyzer().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := core.LoadAnalyzer(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cfg := staticCfg(10*time.Millisecond, 2048)
	cfg.Restored = restored
	second, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range syn.Trace.Slice(half, syn.Trace.Len()).Events {
		if err := second.HandleIssue(ev); err != nil {
			t.Fatal(err)
		}
	}
	second.Flush()

	// The monitor boundary at the split can divide one transaction in
	// two, so compare the detected frequent pairs rather than demanding
	// bit-identical counters.
	refPairs := ref.Snapshot(5).PairCounts()
	gotPairs := second.Snapshot(5).PairCounts()
	if len(refPairs) != len(gotPairs) {
		t.Fatalf("pair sets differ: %d vs %d", len(refPairs), len(gotPairs))
	}
	for p, c := range refPairs {
		got, ok := gotPairs[p]
		if !ok {
			t.Fatalf("pair %v lost across restart", p)
		}
		if diff := int64(got) - int64(c); diff > 1 || diff < -1 {
			t.Errorf("pair %v count %d vs %d", p, got, c)
		}
	}
}
