// Package pipeline wires the framework of the paper's Fig. 3 together:
// issue events flow from a replayed (or live) request stream into the
// real-time monitoring module, whose transactions feed the online
// analysis module, while completion latencies drive the dynamic
// transaction window. It also optionally stores the transactions, which
// is how the evaluation hands the *same* transaction stream to the
// offline FIM baselines.
package pipeline

import (
	"fmt"
	"time"

	"daccor/internal/blktrace"
	"daccor/internal/core"
	"daccor/internal/device"
	"daccor/internal/monitor"
	"daccor/internal/replay"
)

// Config assembles a pipeline.
type Config struct {
	Monitor  monitor.Config
	Analyzer core.Config
	// Restored, when non-nil, is a pre-built analyzer (typically from
	// core.LoadAnalyzer) used instead of constructing one from the
	// Analyzer config — a warm restart of the characterizer.
	Restored *core.Analyzer
	// KeepTransactions retains every emitted transaction for offline
	// analysis (at memory cost proportional to the trace).
	KeepTransactions bool
}

// Pipeline is a monitor + analyzer pair fed by issue and completion
// events. Not safe for concurrent use.
type Pipeline struct {
	mon      *monitor.Monitor
	analyzer *core.Analyzer

	keepTx       bool
	transactions []monitor.Transaction
}

// Validate reports whether the configuration can build a pipeline,
// composing the monitor and analyzer legs of the unified Config
// surface. Unlike monitor.Config.Validate, a nil Monitor.Window is
// accepted here because New substitutes the paper's dynamic window;
// the Analyzer config is skipped when a Restored analyzer supersedes
// it.
func (c Config) Validate() error {
	if c.Restored == nil {
		if err := c.Analyzer.Validate(); err != nil {
			return err
		}
	}
	mc := c.Monitor
	if mc.Window == nil {
		// Stand-in for the dynamic default New installs; only the
		// remaining monitor fields are validated.
		mc.Window = monitor.StaticWindow(1)
	}
	return mc.Validate()
}

// New builds a pipeline. If cfg.Monitor.Window is nil, the paper's
// dynamic 2×-average-latency window is used with a [50 µs, 100 ms]
// clamp.
func New(cfg Config) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Monitor.Window == nil {
		w, err := monitor.NewDynamicWindow(50*time.Microsecond, 100*time.Millisecond)
		if err != nil {
			return nil, err
		}
		cfg.Monitor.Window = w
	}
	analyzer := cfg.Restored
	if analyzer == nil {
		var err error
		analyzer, err = core.NewAnalyzer(cfg.Analyzer)
		if err != nil {
			return nil, err
		}
	}
	p := &Pipeline{analyzer: analyzer, keepTx: cfg.KeepTransactions}
	mon, err := monitor.New(cfg.Monitor, func(tx monitor.Transaction) {
		if p.keepTx {
			p.transactions = append(p.transactions, tx)
		}
		p.analyzer.Process(tx.Extents)
	})
	if err != nil {
		return nil, err
	}
	p.mon = mon
	return p, nil
}

// NewPartitioned builds the components of a partitioned pipeline: one
// monitor (transaction assembly is a sequential scan of the timestamp
// order, so it stays singular) whose completed transactions go to
// sink, plus parts analyzers each sized to own 1/P of the extent space
// (core.Config.Split; see core.PartitionOf for the ownership hash). A
// Restored analyzer is redistributed across the partitions
// (core.SplitAnalyzer); shed reports entries that did not fit the
// per-partition tiers during redistribution. The caller owns routing
// sink's transactions to the analyzers.
func NewPartitioned(cfg Config, parts int, sink func(monitor.Transaction)) (*monitor.Monitor, []*core.Analyzer, int, error) {
	if parts < 2 {
		return nil, nil, 0, fmt.Errorf("pipeline: partitioned build needs >= 2 partitions (got %d)", parts)
	}
	if cfg.KeepTransactions {
		return nil, nil, 0, fmt.Errorf("pipeline: KeepTransactions is not supported with %d partitions", parts)
	}
	if err := cfg.Validate(); err != nil {
		return nil, nil, 0, err
	}
	if cfg.Monitor.Window == nil {
		w, err := monitor.NewDynamicWindow(50*time.Microsecond, 100*time.Millisecond)
		if err != nil {
			return nil, nil, 0, err
		}
		cfg.Monitor.Window = w
	}
	var analyzers []*core.Analyzer
	shed := 0
	if cfg.Restored != nil {
		var err error
		analyzers, shed, err = core.SplitAnalyzer(cfg.Restored, parts)
		if err != nil {
			return nil, nil, 0, err
		}
	} else {
		sub, err := cfg.Analyzer.Split(parts)
		if err != nil {
			return nil, nil, 0, err
		}
		analyzers = make([]*core.Analyzer, parts)
		for k := range analyzers {
			if analyzers[k], err = core.NewAnalyzer(sub); err != nil {
				return nil, nil, 0, err
			}
		}
	}
	mon, err := monitor.New(cfg.Monitor, sink)
	if err != nil {
		return nil, nil, 0, err
	}
	return mon, analyzers, shed, nil
}

// HandleIssue feeds one block-layer issue event.
func (p *Pipeline) HandleIssue(ev blktrace.Event) error {
	return p.mon.HandleEvent(ev)
}

// HandleCompletion feeds one completion, driving the dynamic window.
func (p *Pipeline) HandleCompletion(c device.Completion) {
	p.mon.ObserveLatency(int64(c.Latency()))
}

// Flush closes the open transaction; call at end of stream.
func (p *Pipeline) Flush() { p.mon.Flush() }

// Analyzer exposes the online analysis module.
func (p *Pipeline) Analyzer() *core.Analyzer { return p.analyzer }

// Monitor exposes the monitoring module.
func (p *Pipeline) Monitor() *monitor.Monitor { return p.mon }

// WindowDuration reports the monitor's current transaction window;
// see monitor.Monitor.WindowDuration.
func (p *Pipeline) WindowDuration() time.Duration { return p.mon.WindowDuration() }

// Snapshot exports the synopsis at minSupport.
func (p *Pipeline) Snapshot(minSupport uint32) core.Snapshot {
	return p.analyzer.Snapshot(minSupport)
}

// Transactions returns the stored transactions (empty unless
// KeepTransactions was set).
func (p *Pipeline) Transactions() []monitor.Transaction { return p.transactions }

// ExtentSets converts stored transactions into the extent-set form the
// fim package consumes.
func ExtentSets(txs []monitor.Transaction) [][]blktrace.Extent {
	out := make([][]blktrace.Extent, len(txs))
	for i, tx := range txs {
		out[i] = tx.Extents
	}
	return out
}

// AnalyzeReplay replays a trace on a device with monitoring and online
// analysis attached live — the paper's evaluation setup — and returns
// the pipeline (for snapshots) plus the replay result.
func AnalyzeReplay(t *blktrace.Trace, d *device.Device, opts replay.Options, cfg Config) (*Pipeline, replay.Result, error) {
	p, err := New(cfg)
	if err != nil {
		return nil, replay.Result{}, err
	}
	prevIssue := opts.OnIssue
	opts.OnIssue = func(ev blktrace.Event) {
		if prevIssue != nil {
			prevIssue(ev)
		}
		// The replayer guarantees valid, monotone re-timed events.
		_ = p.HandleIssue(ev)
	}
	prevComplete := opts.OnComplete
	opts.OnComplete = func(c device.Completion) {
		if prevComplete != nil {
			prevComplete(c)
		}
		p.HandleCompletion(c)
	}
	res, err := replay.Run(t, d, opts)
	if err != nil {
		return nil, replay.Result{}, err
	}
	p.Flush()
	return p, res, nil
}

// AnalyzeTrace runs a trace's events straight through the pipeline
// using the trace's own timestamps (no device in the loop). The monitor
// config must carry an explicit window policy, since without
// completions a dynamic window never adapts beyond its minimum.
func AnalyzeTrace(t *blktrace.Trace, cfg Config) (*Pipeline, error) {
	p, err := New(cfg)
	if err != nil {
		return nil, err
	}
	for _, ev := range t.Events {
		if err := p.HandleIssue(ev); err != nil {
			return nil, err
		}
	}
	p.Flush()
	return p, nil
}
