package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"daccor/internal/core"
	"daccor/internal/engine"
	"daccor/internal/obs"
)

// Sync client defaults.
const (
	DefaultSyncInterval = time.Second
	DefaultSyncTimeout  = 5 * time.Second
	DefaultMaxAttempts  = 4
	DefaultBackoffBase  = 100 * time.Millisecond
	DefaultBackoffCap   = 2 * time.Second
)

// Client metric families, registered in the engine's registry so the
// collector's /v1/metrics exposes its own sync health.
const (
	MetricSyncRounds   = "daccor_fleet_sync_rounds_total"
	MetricSyncFailures = "daccor_fleet_sync_failures_total"
	MetricSyncTxBytes  = "daccor_fleet_sync_tx_bytes_total"
	MetricSyncLastUnix = "daccor_fleet_sync_last_success_unixtime"
)

// ClientConfig configures a collector's sync client.
type ClientConfig struct {
	// Aggregator is the aggregatord base URL, e.g. "http://agg:9700".
	Aggregator string
	// Collector is this collector's fleet-wide identity.
	Collector string
	// Engine is the local engine whose devices are synced.
	Engine *engine.Engine
	// Interval paces the periodic rounds of Start; 0 selects
	// DefaultSyncInterval.
	Interval time.Duration
	// Timeout bounds each HTTP attempt; 0 selects DefaultSyncTimeout.
	Timeout time.Duration
	// MaxAttempts bounds the tries per round (first try included);
	// 0 selects DefaultMaxAttempts.
	MaxAttempts int
	// BackoffBase and BackoffCap shape the jittered exponential
	// backoff between attempts — the supervisor's restart discipline
	// applied to the network.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// HTTPClient overrides the transport; nil uses http.DefaultClient
	// with Timeout applied per request via context. Tests inject
	// flaky transports here.
	HTTPClient *http.Client
}

// ClientStats is the sync client's cumulative accounting. DeltaBytes
// counts bytes of frames carrying only deltas, removes, or heartbeats;
// FullBytes counts frames carrying at least one full snapshot — the
// split that shows delta sync earning its keep.
type ClientStats struct {
	Rounds     uint64
	Failures   uint64
	DeltaBytes uint64
	FullBytes  uint64
	LastSync   time.Time
}

// RoundReport describes one completed sync round, for tests and logs.
type RoundReport struct {
	Seq          uint64
	Sections     int
	Deltas       int
	Fulls        int
	Removes      int
	Bytes        int
	Applied      int
	FullRequired int
}

// deviceSyncState is the client's book-keeping for one device: the
// exact snapshot and epoch the aggregator last acked (the delta base),
// and whether anti-entropy demands a full snapshot next round.
type deviceSyncState struct {
	epoch    uint64
	shadow   core.Snapshot
	needFull bool
}

// SyncClient pushes an engine's per-device synopses to an aggregator:
// content deltas against the last acked state when possible, full
// snapshots when the aggregator demands repair, removals when devices
// unregister, heartbeats when nothing changed.
type SyncClient struct {
	cfg  ClientConfig
	http *http.Client

	// instance identifies this client incarnation to the aggregator's
	// seq gate; drawn randomly at construction so a restarted collector
	// is not mistaken for its previous self replaying old frames.
	instance uint64

	mu     sync.Mutex
	states map[string]*deviceSyncState
	seq    uint64
	stats  ClientStats

	stopOnce sync.Once
	stopCh   chan struct{}
	done     chan struct{}

	rounds     *obs.Counter
	failures   *obs.Counter
	deltaBytes *obs.Counter
	fullBytes  *obs.Counter
	lastUnix   *obs.Gauge
}

// NewSyncClient validates cfg and builds a client. Start launches the
// periodic loop; SyncNow runs single rounds under the caller's
// control.
func NewSyncClient(cfg ClientConfig) (*SyncClient, error) {
	if cfg.Aggregator == "" {
		return nil, errors.New("fleet: aggregator URL required")
	}
	if cfg.Collector == "" || len(cfg.Collector) > MaxCollectorID {
		return nil, fmt.Errorf("fleet: collector id must be 1..%d bytes", MaxCollectorID)
	}
	if cfg.Engine == nil {
		return nil, errors.New("fleet: engine required")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultSyncInterval
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultSyncTimeout
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = DefaultMaxAttempts
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = DefaultBackoffBase
	}
	if cfg.BackoffCap <= 0 {
		cfg.BackoffCap = DefaultBackoffCap
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	reg := cfg.Engine.Metrics()
	return &SyncClient{
		cfg:      cfg,
		http:     hc,
		instance: rand.Uint64(),
		states:   make(map[string]*deviceSyncState),
		stopCh:   make(chan struct{}),
		done:     make(chan struct{}),

		rounds:     reg.Counter(MetricSyncRounds, "Completed fleet sync rounds."),
		failures:   reg.Counter(MetricSyncFailures, "Fleet sync rounds abandoned after all attempts failed."),
		deltaBytes: reg.Counter(MetricSyncTxBytes, "Fleet sync bytes sent, by frame kind.", obs.L("kind", "delta")),
		fullBytes:  reg.Counter(MetricSyncTxBytes, "Fleet sync bytes sent, by frame kind.", obs.L("kind", "full")),
		lastUnix:   reg.Gauge(MetricSyncLastUnix, "Unix time of the last acked sync round."),
	}, nil
}

// Start launches the periodic sync loop. Failed rounds are counted and
// retried on the next tick — the engine keeps collecting regardless;
// a partition only ages the aggregator's mirror.
func (c *SyncClient) Start() {
	go func() {
		defer close(c.done)
		t := time.NewTicker(c.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-c.stopCh:
				return
			case <-t.C:
				ctx, cancel := context.WithCancel(context.Background())
				go func() {
					select {
					case <-c.stopCh:
						cancel()
					case <-ctx.Done():
					}
				}()
				_, _ = c.SyncNow(ctx)
				cancel()
			}
		}
	}()
}

// Close stops the periodic loop and waits for an in-flight round to
// finish. It does not sync: callers wanting a final flush run SyncNow
// first, while the engine is still live.
func (c *SyncClient) Close() {
	c.stopOnce.Do(func() { close(c.stopCh) })
	<-c.done
}

// Stats returns the cumulative sync accounting.
func (c *SyncClient) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// pendingSection pairs a wire section with the state to commit when
// the aggregator acks it.
type pendingSection struct {
	sec  Section
	snap core.Snapshot // the exact state sent (full or post-delta)
}

// SyncNow runs one sync round: diff every device against its acked
// shadow, send the frame (retrying with jittered backoff), and commit
// the acks. A round that exhausts its attempts leaves all shadows
// untouched — the next round simply diffs against the same base and
// carries the accumulated changes.
func (c *SyncClient) SyncNow(ctx context.Context) (RoundReport, error) {
	c.mu.Lock()
	pending, frame, err := c.buildFrameLocked()
	if err != nil {
		c.mu.Unlock()
		return RoundReport{}, err
	}
	c.mu.Unlock()

	var buf bytes.Buffer
	if err := EncodeFrame(&buf, frame); err != nil {
		return RoundReport{}, err
	}
	rep := RoundReport{Seq: frame.Seq, Sections: len(frame.Sections), Bytes: buf.Len()}
	for _, p := range pending {
		switch p.sec.Kind {
		case SectionFull:
			rep.Fulls++
		case SectionDelta:
			rep.Deltas++
		case SectionRemove:
			rep.Removes++
		}
	}

	res, err := c.post(ctx, buf.Bytes())
	if err != nil {
		c.failures.Inc()
		c.mu.Lock()
		c.stats.Failures++
		if isClientError(err) {
			// The aggregator rejected the frame outright (or we cannot
			// even agree on the protocol). Retrying the same deltas
			// would loop; fall back to anti-entropy and resend
			// everything as full snapshots.
			for _, p := range pending {
				if st := c.states[p.sec.Device]; st != nil {
					st.needFull = true
				}
			}
		}
		c.mu.Unlock()
		return rep, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	byDevice := make(map[string]Ack, len(res.Acks))
	for _, a := range res.Acks {
		byDevice[a.Device] = a
	}
	for _, p := range pending {
		ack, ok := byDevice[p.sec.Device]
		if !ok {
			// No ack for a section we sent: treat as unacked; the next
			// round re-diffs against the old shadow.
			continue
		}
		switch {
		case ack.Action == AckApplied && p.sec.Kind == SectionRemove:
			delete(c.states, p.sec.Device)
			rep.Applied++
		case ack.Action == AckApplied:
			c.states[p.sec.Device] = &deviceSyncState{epoch: p.sec.Epoch, shadow: p.snap}
			rep.Applied++
		default:
			st := c.states[p.sec.Device]
			if st == nil {
				st = &deviceSyncState{}
				c.states[p.sec.Device] = st
			}
			st.needFull = true
			rep.FullRequired++
		}
	}
	c.stats.Rounds++
	c.stats.LastSync = time.Now()
	if rep.Fulls > 0 {
		c.stats.FullBytes += uint64(rep.Bytes)
		c.fullBytes.Add(uint64(rep.Bytes))
	} else {
		c.stats.DeltaBytes += uint64(rep.Bytes)
		c.deltaBytes.Add(uint64(rep.Bytes))
	}
	c.rounds.Inc()
	c.lastUnix.Set(float64(c.stats.LastSync.Unix()))
	return rep, nil
}

// buildFrameLocked assembles the round's sections from the engine's
// current state. Devices whose export fails (restarting, failed) are
// skipped — their mirror just stays stale. Caller holds c.mu.
func (c *SyncClient) buildFrameLocked() ([]pendingSection, Frame, error) {
	eng := c.cfg.Engine
	devices := eng.Devices()
	live := make(map[string]struct{}, len(devices))
	var pending []pendingSection
	for _, id := range devices {
		live[id] = struct{}{}
		st := c.states[id]
		if st == nil || st.needFull {
			snap, err := eng.Snapshot(id, 0)
			if err != nil {
				continue
			}
			epoch, err := eng.Epoch(id)
			if err != nil {
				continue
			}
			pending = append(pending, pendingSection{
				sec:  Section{Device: id, Kind: SectionFull, Epoch: epoch, Snap: snap},
				snap: snap,
			})
			continue
		}
		snap, epoch, changed, err := eng.SnapshotSince(id, st.epoch)
		if err != nil || !changed {
			continue
		}
		d := core.DiffSnapshots(st.shadow, snap)
		if d.Empty() {
			// The epoch moved but the export did not (e.g. counts below
			// a tier threshold); nothing to ship, and the shadow still
			// matches, so just leave the state at the old epoch.
			continue
		}
		pending = append(pending, pendingSection{
			sec:  Section{Device: id, Kind: SectionDelta, BaseEpoch: st.epoch, Epoch: epoch, Delta: d},
			snap: snap,
		})
	}
	for id := range c.states {
		if _, ok := live[id]; !ok {
			pending = append(pending, pendingSection{sec: Section{Device: id, Kind: SectionRemove}})
		}
	}
	c.seq++
	f := Frame{Collector: c.cfg.Collector, Instance: c.instance, Seq: c.seq, Sections: make([]Section, 0, len(pending))}
	for _, p := range pending {
		f.Sections = append(f.Sections, p.sec)
	}
	return pending, f, nil
}

// post sends one encoded frame, retrying transient failures with the
// supervisor's jittered exponential backoff. The frame (and its seq)
// is byte-identical across attempts, so the aggregator can collapse a
// duplicate delivery into a retransmit ack.
func (c *SyncClient) post(ctx context.Context, body []byte) (SyncResult, error) {
	bo := engine.SupervisorConfig{BackoffBase: c.cfg.BackoffBase, BackoffCap: c.cfg.BackoffCap}
	var lastErr error
	for attempt := 1; attempt <= c.cfg.MaxAttempts; attempt++ {
		if attempt > 1 {
			select {
			case <-ctx.Done():
				return SyncResult{}, ctx.Err()
			case <-time.After(bo.BackoffDelay(attempt - 1)):
			}
		}
		res, err := c.postOnce(ctx, body)
		if err == nil {
			return res, nil
		}
		lastErr = err
		if isClientError(err) || ctx.Err() != nil {
			return SyncResult{}, err
		}
	}
	return SyncResult{}, fmt.Errorf("fleet: sync failed after %d attempts: %w", c.cfg.MaxAttempts, lastErr)
}

// errClientRejected marks HTTP 4xx answers: retrying the identical
// frame cannot succeed.
var errClientRejected = errors.New("fleet: aggregator rejected frame")

func isClientError(err error) bool { return errors.Is(err, errClientRejected) }

func (c *SyncClient) postOnce(ctx context.Context, body []byte) (SyncResult, error) {
	rctx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost,
		c.cfg.Aggregator+"/v1/sync", bytes.NewReader(body))
	if err != nil {
		return SyncResult{}, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.http.Do(req)
	if err != nil {
		return SyncResult{}, err
	}
	defer resp.Body.Close()
	rb, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return SyncResult{}, err
	}
	if resp.StatusCode != http.StatusOK {
		err := fmt.Errorf("fleet: sync answered %s: %s", resp.Status, firstLine(rb))
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			err = fmt.Errorf("%w: %v", errClientRejected, err)
		}
		return SyncResult{}, err
	}
	var env struct {
		Data SyncResult `json:"data"`
	}
	if err := json.Unmarshal(rb, &env); err != nil {
		return SyncResult{}, fmt.Errorf("fleet: bad sync response: %w", err)
	}
	return env.Data, nil
}

func firstLine(b []byte) string {
	if i := bytes.IndexByte(b, '\n'); i >= 0 {
		b = b[:i]
	}
	if len(b) > 200 {
		b = b[:200]
	}
	return string(b)
}
