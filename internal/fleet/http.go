package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"daccor/internal/core"
	"daccor/internal/obs"
)

// Read-route defaults mirror the collector's v1 API so a consumer can
// point the same client at either.
const (
	DefaultSupport    = 5
	DefaultTop        = 100
	MaxTop            = 10_000
	DefaultConfidence = 0.5

	// MaxSyncBody bounds one POST /v1/sync body. A full snapshot of a
	// saturated synopsis is a few MB; 64 MB covers a many-device
	// collector with headroom while still refusing unbounded uploads.
	MaxSyncBody = 64 << 20
)

// Watch stream pacing, as the collector's watch routes.
const (
	watchKeepalive = 25 * time.Second
	// watchWriteTimeout bounds each SSE write: a consumer that stops
	// reading trips the deadline and is disconnected instead of
	// parking a handler goroutine on a dead socket forever.
	watchWriteTimeout = 10 * time.Second
)

// Machine-readable error codes in the fleet v1 envelope.
const (
	ErrCodeBadRequest    = "bad_request"
	ErrCodeBadFrame      = "bad_frame"
	ErrCodeUnknownDevice = "unknown_device"
	ErrCodeClosed        = "closed"
	ErrCodeInternal      = "internal"
)

type apiError struct {
	status  int
	Code    string `json:"code"`
	Message string `json:"message"`
}

func (e *apiError) Error() string { return e.Message }

func apiErrorf(status int, code, format string, args ...any) *apiError {
	return &apiError{status: status, Code: code, Message: fmt.Sprintf(format, args...)}
}

type apiHandler func(w http.ResponseWriter, r *http.Request) *apiError

func handle(h apiHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if err := h(w, r); err != nil {
			writeAPIError(w, err)
		}
	}
}

// envelope matches the collector API's {data, error} shape. Fleet read
// responses additionally stamp the staleness block into data.fleet:
// during a partition the aggregator keeps answering 200s from its
// mirrors, and data.fleet is how the caller learns how stale they are.
type envelope struct {
	Data  any       `json:"data"`
	Error *apiError `json:"error"`
}

// NewHandler exposes an aggregator over HTTP.
//
//	POST /v1/sync                    collector sync frames (DFLT binary)
//	GET  /v1/snapshot                fleet-wide merged correlations   ?support=&top=
//	GET  /v1/rules                   fleet-wide merged rules          ?support=&confidence=&top=
//	GET  /v1/devices                 mirrored device IDs
//	GET  /v1/devices/{id}/snapshot   one device's merged mirror       ?support=&top=
//	GET  /v1/devices/{id}/rules      one device's rules               ?support=&confidence=&top=
//	GET  /v1/collectors              per-collector sync state
//	GET  /v1/watch                   SSE push of merged state (cursor: aggregator version)
//	GET  /v1/metrics                 Prometheus text exposition
//	GET  /v1/healthz                 fleet status probe (always 200; body carries degraded/failed)
//	GET  /v1/readyz                  503 only once the aggregator is closed
func NewHandler(a *Aggregator) http.Handler {
	mux := http.NewServeMux()
	reg := a.Metrics()
	watchers := reg.Gauge("daccor_fleet_watch_watchers", "Currently connected fleet watch streams.")
	slowDrops := reg.Counter("daccor_fleet_watch_slow_drops_total",
		"Watch streams disconnected because the consumer stopped reading.")

	mux.HandleFunc("POST /v1/sync", handle(func(w http.ResponseWriter, r *http.Request) *apiError {
		body, err := io.ReadAll(io.LimitReader(r.Body, MaxSyncBody+1))
		if err != nil {
			return apiErrorf(http.StatusBadRequest, ErrCodeBadRequest, "read body: %v", err)
		}
		if len(body) > MaxSyncBody {
			return apiErrorf(http.StatusRequestEntityTooLarge, ErrCodeBadRequest,
				"sync body exceeds %d bytes", MaxSyncBody)
		}
		f, err := DecodeFrame(bytes.NewReader(body))
		if err != nil {
			return apiErrorf(http.StatusBadRequest, ErrCodeBadFrame, "%v", err)
		}
		res, err := a.Apply(f, len(body))
		if err != nil {
			return closedError(err)
		}
		writeData(w, res)
		return nil
	}))

	mux.HandleFunc("GET /v1/snapshot", handle(func(w http.ResponseWriter, r *http.Request) *apiError {
		support, top, err := snapshotParams(r)
		if err != nil {
			return apiErrorf(http.StatusBadRequest, ErrCodeBadRequest, "%v", err)
		}
		if revalidated(w, r, fmt.Sprintf("fleet-%d-s%d-t%d", a.Version(), support, top)) {
			return nil
		}
		snap := a.MergedSnapshot(support)
		writeData(w, snapshotBody(a, snap, top, map[string]any{"devices": a.Devices()}))
		return nil
	}))

	mux.HandleFunc("GET /v1/rules", handle(func(w http.ResponseWriter, r *http.Request) *apiError {
		support, top, conf, err := ruleParams(r)
		if err != nil {
			return apiErrorf(http.StatusBadRequest, ErrCodeBadRequest, "%v", err)
		}
		if revalidated(w, r, fmt.Sprintf("fleet-%d-s%d-t%d-c%g", a.Version(), support, top, conf)) {
			return nil
		}
		writeData(w, map[string]any{
			"devices": a.Devices(),
			"rules":   fleetTopRules(a, support, conf, top),
			"fleet":   a.Status(),
		})
		return nil
	}))

	mux.HandleFunc("GET /v1/devices", handle(func(w http.ResponseWriter, r *http.Request) *apiError {
		writeData(w, map[string]any{"devices": a.Devices(), "fleet": a.Status()})
		return nil
	}))

	mux.HandleFunc("GET /v1/devices/{id}/snapshot", handle(func(w http.ResponseWriter, r *http.Request) *apiError {
		support, top, err := snapshotParams(r)
		if err != nil {
			return apiErrorf(http.StatusBadRequest, ErrCodeBadRequest, "%v", err)
		}
		id := r.PathValue("id")
		snap, ok := a.DeviceSnapshot(id, support)
		if !ok {
			return apiErrorf(http.StatusNotFound, ErrCodeUnknownDevice, "no live mirror for device %q", id)
		}
		writeData(w, snapshotBody(a, snap, top, map[string]any{"device": id}))
		return nil
	}))

	mux.HandleFunc("GET /v1/devices/{id}/rules", handle(func(w http.ResponseWriter, r *http.Request) *apiError {
		support, top, conf, err := ruleParams(r)
		if err != nil {
			return apiErrorf(http.StatusBadRequest, ErrCodeBadRequest, "%v", err)
		}
		id := r.PathValue("id")
		rules, ok := a.DeviceTopRules(id, support, conf, ruleLimit(top))
		if !ok {
			return apiErrorf(http.StatusNotFound, ErrCodeUnknownDevice, "no live mirror for device %q", id)
		}
		if top <= 0 {
			rules = []core.Rule{}
		}
		writeData(w, map[string]any{"device": id, "rules": rules, "fleet": a.Status()})
		return nil
	}))

	mux.HandleFunc("GET /v1/collectors", handle(func(w http.ResponseWriter, r *http.Request) *apiError {
		writeData(w, map[string]any{"fleet": a.Status()})
		return nil
	}))

	mux.HandleFunc("GET /v1/watch", handle(func(w http.ResponseWriter, r *http.Request) *apiError {
		return serveWatch(a, watchers, slowDrops, w, r)
	}))

	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", obs.TextContentType)
		_ = reg.WritePrometheus(w)
	})

	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		// Always 200: a degraded fleet is the aggregator doing its job
		// (serving through a partition), not the aggregator failing.
		// The body says which collectors are behind.
		writeJSON(w, http.StatusOK, envelope{Data: map[string]any{"fleet": a.Status()}})
	})

	mux.HandleFunc("GET /v1/readyz", func(w http.ResponseWriter, r *http.Request) {
		status := http.StatusOK
		ready := true
		a.mu.Lock()
		closed := a.closed
		a.mu.Unlock()
		if closed {
			status, ready = http.StatusServiceUnavailable, false
		}
		writeJSON(w, status, envelope{Data: map[string]any{"ready": ready, "fleet": a.Status()}})
	})

	return mux
}

// serveWatch streams merged-state updates keyed on the aggregator
// version. Each write carries a deadline: a consumer that stops
// reading (TCP backpressure filling its socket) times out and is
// dropped rather than wedging the handler.
func serveWatch(a *Aggregator, watchers *obs.Gauge, slowDrops *obs.Counter, w http.ResponseWriter, r *http.Request) *apiError {
	support, top, conf, err := ruleParams(r)
	if err != nil {
		return apiErrorf(http.StatusBadRequest, ErrCodeBadRequest, "%v", err)
	}
	rc := http.NewResponseController(w)
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	_ = rc.Flush()
	watchers.Add(1)
	defer watchers.Add(-1)

	write := func(id, event string, data any) error {
		_ = rc.SetWriteDeadline(time.Now().Add(watchWriteTimeout))
		if err := writeSSEEvent(w, id, event, data); err != nil {
			return err
		}
		if err := rc.Flush(); err != nil {
			return err
		}
		return nil
	}

	cur := a.Version()
	deliver := true
	if last := r.Header.Get("Last-Event-ID"); last != "" {
		if v, err := strconv.ParseUint(last, 10, 64); err == nil && v == cur {
			deliver = false
		}
	}
	for {
		if deliver {
			body := map[string]any{
				"version": strconv.FormatUint(cur, 10),
				"devices": a.Devices(),
				"fleet":   a.Status(),
			}
			snap := a.MergedSnapshot(support)
			body["totalPairs"] = len(snap.Pairs)
			body["pairs"] = snap.TopPairs(top)
			body["rules"] = fleetTopRules(a, support, conf, top)
			if err := write(strconv.FormatUint(cur, 10), "state", body); err != nil {
				slowDrops.Inc()
				return nil
			}
		}
		kctx, cancel := context.WithTimeout(r.Context(), watchKeepalive)
		next, werr := a.WaitVersion(kctx, cur)
		cancel()
		switch {
		case werr == nil:
			cur = next
			deliver = true
		case errors.Is(werr, context.DeadlineExceeded):
			if err := write("", "", nil); err != nil {
				slowDrops.Inc()
				return nil
			}
			deliver = false
		case r.Context().Err() != nil:
			return nil
		default: // ErrClosed
			_ = write("", "end", map[string]any{"reason": ErrCodeClosed})
			return nil
		}
	}
}

// writeSSEEvent writes one SSE frame; an empty event writes a
// keepalive comment.
func writeSSEEvent(w io.Writer, id, event string, data any) error {
	if event == "" {
		_, err := io.WriteString(w, ": keepalive\n\n")
		return err
	}
	b, err := json.Marshal(data)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if id != "" {
		fmt.Fprintf(&buf, "id: %s\n", id)
	}
	fmt.Fprintf(&buf, "event: %s\ndata: %s\n\n", event, b)
	_, err = w.Write(buf.Bytes())
	return err
}

func closedError(err error) *apiError {
	if errors.Is(err, ErrClosed) {
		return apiErrorf(http.StatusServiceUnavailable, ErrCodeClosed, "%v", err)
	}
	return apiErrorf(http.StatusInternalServerError, ErrCodeInternal, "%v", err)
}

func snapshotBody(a *Aggregator, snap core.Snapshot, top int, extra map[string]any) map[string]any {
	body := map[string]any{
		"totalPairs": len(snap.Pairs),
		"pairs":      snap.TopPairs(top),
		"fleet":      a.Status(),
	}
	for k, v := range extra {
		body[k] = v
	}
	return body
}

// fleetTopRules serves the merged rules bounded to top, pushed into
// extraction (bounded-heap selection over the merge index) so no more
// rules are materialized than served. top=0 short-circuits to none —
// the aggregator API reserves limit<=0 for "all".
func fleetTopRules(a *Aggregator, support uint32, conf float64, top int) []core.Rule {
	if top <= 0 {
		return []core.Rule{}
	}
	return a.TopRules(support, conf, top)
}

// ruleLimit maps the HTTP ?top= parameter onto an extraction limit:
// top=0 must extract nothing, but limit<=0 means "all", so callers
// pass 1 and discard (the lookup still reports device existence).
func ruleLimit(top int) int {
	if top <= 0 {
		return 1
	}
	return top
}

func revalidated(w http.ResponseWriter, r *http.Request, tag string) bool {
	etag := `"` + tag + `"`
	w.Header().Set("ETag", etag)
	if r.Header.Get("If-None-Match") == etag {
		w.WriteHeader(http.StatusNotModified)
		return true
	}
	return false
}

func snapshotParams(r *http.Request) (support uint32, top int, err error) {
	if support, err = supportParam(r); err != nil {
		return 0, 0, err
	}
	if top, err = topParam(r); err != nil {
		return 0, 0, err
	}
	return support, top, nil
}

func ruleParams(r *http.Request) (support uint32, top int, conf float64, err error) {
	if support, top, err = snapshotParams(r); err != nil {
		return 0, 0, 0, err
	}
	conf = DefaultConfidence
	if v := r.URL.Query().Get("confidence"); v != "" {
		conf, err = strconv.ParseFloat(v, 64)
		if err != nil || conf < 0 || conf > 1 {
			return 0, 0, 0, fmt.Errorf("confidence must be in [0,1], got %q", v)
		}
	}
	return support, top, conf, nil
}

func supportParam(r *http.Request) (uint32, error) {
	v := r.URL.Query().Get("support")
	if v == "" {
		return DefaultSupport, nil
	}
	n, err := strconv.ParseUint(v, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("support must be a non-negative integer, got %q", v)
	}
	return uint32(n), nil
}

func topParam(r *http.Request) (int, error) {
	v := r.URL.Query().Get("top")
	if v == "" {
		return DefaultTop, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 || n > MaxTop {
		return 0, fmt.Errorf("top must be in [1,%d], got %q", MaxTop, v)
	}
	return n, nil
}

func writeData(w http.ResponseWriter, v any) {
	writeJSON(w, http.StatusOK, envelope{Data: v})
}

func writeAPIError(w http.ResponseWriter, e *apiError) {
	writeJSON(w, e.status, envelope{Error: e})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
