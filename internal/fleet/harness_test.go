package fleet

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"daccor/internal/blktrace"
	"daccor/internal/core"
	"daccor/internal/engine"
	"daccor/internal/monitor"
)

// The fleet test harness: real engines, the real aggregator behind a
// real HTTP server, and a real sync client — faults are injected at
// the transport (flaky RoundTrippers), the clock (fakeClock), and the
// process boundary (engines restarted from checkpoint directories).

func newTestEngine(t *testing.T, devices ...string) *engine.Engine {
	t.Helper()
	e, err := engine.New(
		engine.WithMonitor(monitor.Config{Window: monitor.StaticWindow(10 * time.Millisecond)}),
		engine.WithAnalyzer(core.Config{ItemCapacity: 4096, PairCapacity: 4096}),
		engine.WithDevices(devices...),
	)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// feed submits n read events over a 16-block universe (blocks offset
// by seed so different feeds produce different correlations) and
// waits until the device has drained them.
func feed(t *testing.T, e *engine.Engine, dev string, n int, seed uint64) {
	t.Helper()
	feedKeys(t, e, dev, n, seed, 16)
}

// feedKeys is feed with an explicit key-universe size: a wide universe
// builds a large synopsis, a narrow one touches only a few entries —
// the content-incremental workload delta sync exists for.
func feedKeys(t *testing.T, e *engine.Engine, dev string, n int, seed uint64, keys int) {
	t.Helper()
	var before uint64
	if ds, err := e.DeviceStatsFor(dev); err == nil {
		before = ds.Monitor.Events + ds.Dropped
	}
	for i := 0; i < n; i++ {
		ev := blktrace.Event{
			Time:   int64(i+1) * int64(time.Millisecond),
			Op:     blktrace.OpRead,
			Extent: blktrace.Extent{Block: seed*65536 + uint64(1+i%keys)*8, Len: 1},
		}
		if err := e.Submit(dev, ev); err != nil {
			t.Fatalf("submit %s event %d: %v", dev, i, err)
		}
	}
	waitDrained(t, e, dev, before+uint64(n))
}

func waitDrained(t *testing.T, e *engine.Engine, dev string, want uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		ds, err := e.DeviceStatsFor(dev)
		if err != nil {
			t.Fatal(err)
		}
		if ds.Monitor.Events+ds.Dropped >= want && ds.Lag == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("device %s drained %d+%d of %d before deadline", dev, ds.Monitor.Events, ds.Dropped, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// fleetMerge computes the ground truth the aggregator must converge
// to: core.MergeSnapshots over every named device of every engine —
// exactly what a single process holding all devices would serve.
func fleetMerge(t *testing.T, engines ...*engine.Engine) core.Snapshot {
	t.Helper()
	var snaps []core.Snapshot
	for _, e := range engines {
		for _, dev := range e.Devices() {
			s, err := e.Snapshot(dev, 0)
			if err != nil {
				t.Fatalf("snapshot %s: %v", dev, err)
			}
			snaps = append(snaps, s)
		}
	}
	return core.MergeSnapshots(snaps...)
}

// requireConverged asserts the aggregator's merged mirror is
// DeepEqual to the single-process merge of the given engines.
func requireConverged(t *testing.T, a *Aggregator, engines ...*engine.Engine) {
	t.Helper()
	want := fleetMerge(t, engines...)
	got := a.MergedSnapshot(0)
	if !reflect.DeepEqual(got, want) {
		for i := range want.Items {
			if i >= len(got.Items) || got.Items[i] != want.Items[i] {
				t.Logf("first item mismatch at %d: got %+v want %+v", i, got.Items[i], want.Items[i])
				break
			}
		}
		for i := range want.Pairs {
			if i >= len(got.Pairs) || got.Pairs[i] != want.Pairs[i] {
				t.Logf("first pair mismatch at %d: got %+v want %+v", i, got.Pairs[i], want.Pairs[i])
				break
			}
		}
		t.Fatalf("aggregator diverged from single-process merge:\ngot  %d pairs / %d items\nwant %d pairs / %d items",
			len(got.Pairs), len(got.Items), len(want.Pairs), len(want.Items))
	}
}

// fakeClock is a concurrency-safe manual clock for lease/staleness
// tests. Install with newAggregatorAt before the aggregator serves.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// newAggregatorAt builds an aggregator on a fake clock.
func newAggregatorAt(cfg Config, clk *fakeClock) *Aggregator {
	a := NewAggregator(cfg)
	a.now = clk.Now
	return a
}

// newLocalServer serves h on a loopback listener and returns its URL.
func newLocalServer(t *testing.T, h http.Handler) string {
	t.Helper()
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv.URL
}

// testFleet wires one aggregator (fake clock, short lease) behind an
// httptest server with one sync client per engine.
type testFleet struct {
	agg     *Aggregator
	clk     *fakeClock
	srv     *httptest.Server
	clients []*SyncClient
}

func newTestFleet(t *testing.T, cfg Config, engines ...*engine.Engine) *testFleet {
	t.Helper()
	clk := newFakeClock()
	agg := newAggregatorAt(cfg, clk)
	srv := httptest.NewServer(NewHandler(agg))
	t.Cleanup(srv.Close)
	tf := &testFleet{agg: agg, clk: clk, srv: srv}
	for i, e := range engines {
		c, err := NewSyncClient(ClientConfig{
			Aggregator:  srv.URL,
			Collector:   "c" + string(rune('0'+i)),
			Engine:      e,
			MaxAttempts: 3,
			BackoffBase: time.Millisecond,
			BackoffCap:  5 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		tf.clients = append(tf.clients, c)
	}
	return tf
}

// syncAll runs one round on every client, failing the test on error.
func (tf *testFleet) syncAll(t *testing.T) []RoundReport {
	t.Helper()
	reps := make([]RoundReport, len(tf.clients))
	for i, c := range tf.clients {
		rep, err := c.SyncNow(context.Background())
		if err != nil {
			t.Fatalf("client %d sync: %v", i, err)
		}
		reps[i] = rep
	}
	return reps
}
