// Package fleet turns many single-host collectors into one queryable
// fleet view. Each charactld pushes its per-device synopses to an
// aggregatord over HTTP — as content deltas against the last state the
// aggregator acknowledged, falling back to full snapshots whenever the
// two sides disagree (anti-entropy). The aggregator mirrors every
// collector's devices, merges them through core.MergeSnapshots on
// read, and keeps serving during partitions: a silent collector is
// marked degraded, then failed and excluded from the merge, but reads
// never turn into 5xxs.
//
// The sync frame is the package's wire unit. Its framing follows the
// checkpoint format's discipline (magic, explicit version, hand-rolled
// little-endian records, hostile-input validation before allocation)
// and its payloads are the core snapshot/delta record encodings, so a
// mirrored snapshot is bit-identical to what the collector exported.
package fleet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"daccor/internal/core"
)

// Frame wire constants.
const (
	frameMagic   = "DFLT"
	frameVersion = 1

	// MaxCollectorID and MaxDeviceID bound identifier strings so a
	// hostile frame cannot make the decoder allocate unboundedly.
	MaxCollectorID = 256
	MaxDeviceID    = 256
	// MaxFrameSections bounds the device sections in one frame.
	MaxFrameSections = 4096
)

// ErrBadFrame reports a sync frame that failed validation: wrong
// magic or version, out-of-range identifier or section count,
// duplicate device sections, an epoch that regresses inside a delta
// section, or a corrupt payload.
var ErrBadFrame = errors.New("fleet: invalid sync frame")

// SectionKind says how one device section updates the aggregator's
// mirror of that device.
type SectionKind uint8

const (
	// SectionFull replaces the mirror with the carried snapshot —
	// the anti-entropy repair path, and the first sync of any device.
	SectionFull SectionKind = 1
	// SectionDelta patches the mirror the aggregator holds at
	// BaseEpoch up to Epoch. Applies only if the bases agree.
	SectionDelta SectionKind = 2
	// SectionRemove drops the device from the mirror (the collector
	// unregistered it).
	SectionRemove SectionKind = 3
)

func (k SectionKind) String() string {
	switch k {
	case SectionFull:
		return "full"
	case SectionDelta:
		return "delta"
	case SectionRemove:
		return "remove"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Section is one device's update inside a frame.
type Section struct {
	Device string
	Kind   SectionKind
	// BaseEpoch is the collector epoch the delta was diffed against —
	// the epoch of the state the aggregator acked last. Delta only.
	BaseEpoch uint64
	// Epoch is the collector epoch of the carried state. Full and
	// delta.
	Epoch uint64
	Snap  core.Snapshot      // full
	Delta core.SnapshotDelta // delta
}

// Frame is one collector→aggregator sync: a sequence number (the
// idempotency key — retries of a lost response reuse it, so the
// aggregator can tell a retransmit from new state) and the device
// sections changed since the last acked round. A frame with no
// sections is a heartbeat: it renews the collector's lease without
// touching any mirror.
//
// Instance scopes the sequence numbers: each sync client draws a
// random instance at startup, so a restarted collector (whose seqs
// begin again at 1) is recognized as a new incarnation instead of
// having its first frames dropped as retransmits of the old one.
type Frame struct {
	Collector string
	Instance  uint64
	Seq       uint64
	Sections  []Section
}

// EncodeFrame writes f in the DFLT wire format.
func EncodeFrame(w io.Writer, f Frame) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(frameMagic)
	var u16 [2]byte
	var u64 [8]byte
	binary.LittleEndian.PutUint16(u16[:], frameVersion)
	bw.Write(u16[:])
	if err := writeString(bw, f.Collector, MaxCollectorID); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(u64[:], f.Instance)
	bw.Write(u64[:])
	binary.LittleEndian.PutUint64(u64[:], f.Seq)
	bw.Write(u64[:])
	if len(f.Sections) > MaxFrameSections {
		return fmt.Errorf("%w: %d sections exceeds limit %d", ErrBadFrame, len(f.Sections), MaxFrameSections)
	}
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(f.Sections)))
	bw.Write(u32[:])
	for _, s := range f.Sections {
		if err := writeString(bw, s.Device, MaxDeviceID); err != nil {
			return err
		}
		bw.WriteByte(byte(s.Kind))
		switch s.Kind {
		case SectionFull:
			binary.LittleEndian.PutUint64(u64[:], s.Epoch)
			bw.Write(u64[:])
			if _, err := core.EncodeSnapshotRecords(bw, s.Snap); err != nil {
				return err
			}
		case SectionDelta:
			binary.LittleEndian.PutUint64(u64[:], s.BaseEpoch)
			bw.Write(u64[:])
			binary.LittleEndian.PutUint64(u64[:], s.Epoch)
			bw.Write(u64[:])
			if _, err := core.EncodeDelta(bw, s.Delta); err != nil {
				return err
			}
		case SectionRemove:
			// No payload.
		default:
			return fmt.Errorf("%w: unknown section kind %d", ErrBadFrame, s.Kind)
		}
	}
	return bw.Flush()
}

// DecodeFrame parses and validates one sync frame. Hostile input —
// truncation anywhere, oversized identifiers or counts, duplicate
// device sections, a delta whose Epoch does not advance past its
// BaseEpoch (an epoch regression: collector epochs are monotone, so a
// frame claiming otherwise is corrupt or confused and must not touch
// a mirror), corrupt snapshot or delta records — errors; it never
// panics and never allocates proportionally to a claimed count before
// validating it.
func DecodeFrame(r io.Reader) (Frame, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return Frame{}, fmt.Errorf("%w: short magic: %v", ErrBadFrame, err)
	}
	if string(magic[:]) != frameMagic {
		return Frame{}, fmt.Errorf("%w: bad magic %q", ErrBadFrame, magic)
	}
	var u16 [2]byte
	if _, err := io.ReadFull(br, u16[:]); err != nil {
		return Frame{}, fmt.Errorf("%w: short version: %v", ErrBadFrame, err)
	}
	if v := binary.LittleEndian.Uint16(u16[:]); v != frameVersion {
		return Frame{}, fmt.Errorf("%w: unsupported version %d", ErrBadFrame, v)
	}
	var f Frame
	var err error
	if f.Collector, err = readString(br, MaxCollectorID); err != nil {
		return Frame{}, fmt.Errorf("%w: collector id: %v", ErrBadFrame, err)
	}
	if f.Collector == "" {
		return Frame{}, fmt.Errorf("%w: empty collector id", ErrBadFrame)
	}
	var u64 [8]byte
	if _, err := io.ReadFull(br, u64[:]); err != nil {
		return Frame{}, fmt.Errorf("%w: short instance: %v", ErrBadFrame, err)
	}
	f.Instance = binary.LittleEndian.Uint64(u64[:])
	if _, err := io.ReadFull(br, u64[:]); err != nil {
		return Frame{}, fmt.Errorf("%w: short seq: %v", ErrBadFrame, err)
	}
	f.Seq = binary.LittleEndian.Uint64(u64[:])
	var u32 [4]byte
	if _, err := io.ReadFull(br, u32[:]); err != nil {
		return Frame{}, fmt.Errorf("%w: short section count: %v", ErrBadFrame, err)
	}
	n := binary.LittleEndian.Uint32(u32[:])
	if n > MaxFrameSections {
		return Frame{}, fmt.Errorf("%w: %d sections exceeds limit %d", ErrBadFrame, n, MaxFrameSections)
	}
	seen := make(map[string]struct{}, n)
	for i := uint32(0); i < n; i++ {
		var s Section
		if s.Device, err = readString(br, MaxDeviceID); err != nil {
			return Frame{}, fmt.Errorf("%w: section %d device: %v", ErrBadFrame, i, err)
		}
		if s.Device == "" {
			return Frame{}, fmt.Errorf("%w: section %d: empty device id", ErrBadFrame, i)
		}
		if _, dup := seen[s.Device]; dup {
			// Two sections for one device would make the applied state
			// depend on section order; reject rather than guess.
			return Frame{}, fmt.Errorf("%w: duplicate section for device %q", ErrBadFrame, s.Device)
		}
		seen[s.Device] = struct{}{}
		kind, err := br.ReadByte()
		if err != nil {
			return Frame{}, fmt.Errorf("%w: section %d kind: %v", ErrBadFrame, i, err)
		}
		s.Kind = SectionKind(kind)
		switch s.Kind {
		case SectionFull:
			if _, err := io.ReadFull(br, u64[:]); err != nil {
				return Frame{}, fmt.Errorf("%w: section %d epoch: %v", ErrBadFrame, i, err)
			}
			s.Epoch = binary.LittleEndian.Uint64(u64[:])
			if s.Snap, err = core.DecodeSnapshotRecords(br); err != nil {
				return Frame{}, fmt.Errorf("%w: section %d snapshot: %v", ErrBadFrame, i, err)
			}
		case SectionDelta:
			if _, err := io.ReadFull(br, u64[:]); err != nil {
				return Frame{}, fmt.Errorf("%w: section %d base epoch: %v", ErrBadFrame, i, err)
			}
			s.BaseEpoch = binary.LittleEndian.Uint64(u64[:])
			if _, err := io.ReadFull(br, u64[:]); err != nil {
				return Frame{}, fmt.Errorf("%w: section %d epoch: %v", ErrBadFrame, i, err)
			}
			s.Epoch = binary.LittleEndian.Uint64(u64[:])
			if s.Epoch <= s.BaseEpoch {
				return Frame{}, fmt.Errorf("%w: section %d: delta epoch %d does not advance past base %d",
					ErrBadFrame, i, s.Epoch, s.BaseEpoch)
			}
			if s.Delta, err = core.DecodeDelta(br); err != nil {
				return Frame{}, fmt.Errorf("%w: section %d delta: %v", ErrBadFrame, i, err)
			}
		case SectionRemove:
			// No payload.
		default:
			return Frame{}, fmt.Errorf("%w: section %d: unknown kind %d", ErrBadFrame, i, kind)
		}
		f.Sections = append(f.Sections, s)
	}
	// Trailing bytes mean the sender and receiver disagree about the
	// frame length — a framing bug that must not pass silently.
	if _, err := br.ReadByte(); err != io.EOF {
		return Frame{}, fmt.Errorf("%w: trailing bytes after last section", ErrBadFrame)
	}
	return f, nil
}

func writeString(bw *bufio.Writer, s string, max int) error {
	if len(s) > max {
		return fmt.Errorf("%w: identifier %d bytes exceeds limit %d", ErrBadFrame, len(s), max)
	}
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], uint16(len(s)))
	bw.Write(u16[:])
	_, err := bw.WriteString(s)
	return err
}

func readString(br *bufio.Reader, max int) (string, error) {
	var u16 [2]byte
	if _, err := io.ReadFull(br, u16[:]); err != nil {
		return "", err
	}
	n := int(binary.LittleEndian.Uint16(u16[:]))
	if n > max {
		return "", fmt.Errorf("length %d exceeds limit %d", n, max)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(br, b); err != nil {
		return "", err
	}
	return string(b), nil
}
