package fleet

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"daccor/internal/core"
	"daccor/internal/obs"
)

// Aggregator defaults: a collector syncing every second comfortably
// renews a 10s lease; one silent for a minute has missed dozens of
// rounds and its mirror is no longer worth merging.
const (
	DefaultLease     = 10 * time.Second
	DefaultFailAfter = 60 * time.Second
)

// ErrClosed reports an operation on a closed aggregator.
var ErrClosed = errors.New("fleet: aggregator closed")

// Aggregator metric families.
const (
	MetricFleetSyncs      = "daccor_fleet_syncs_total"
	MetricFleetSyncBytes  = "daccor_fleet_sync_bytes_total"
	MetricFleetSections   = "daccor_fleet_sections_total"
	MetricFleetRejects    = "daccor_fleet_delta_rejects_total"
	MetricFleetCollectors = "daccor_fleet_collectors"
	MetricFleetMaxSyncAge = "daccor_fleet_max_sync_age_seconds"
)

// CollectorState is the aggregator's view of one collector's liveness,
// derived from its last successful sync: within the lease it is
// healthy; past the lease it is degraded — its mirror still serves,
// marked stale; past FailAfter it is failed and excluded from merged
// reads until it syncs again.
type CollectorState int

const (
	Healthy CollectorState = iota
	Degraded
	Failed
)

func (s CollectorState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Config tunes an Aggregator.
type Config struct {
	// Lease is how long a sync keeps a collector healthy; 0 selects
	// DefaultLease.
	Lease time.Duration
	// FailAfter is the silence after which a collector is failed and
	// dropped from merged reads; 0 selects DefaultFailAfter. It is
	// clamped up to Lease.
	FailAfter time.Duration
	// Metrics receives the aggregator's instruments; nil creates a
	// private registry.
	Metrics *obs.Registry
}

// Ack actions: what the aggregator did with one device section.
const (
	// AckApplied: the mirror now holds the section's state.
	AckApplied = "applied"
	// AckFullRequired: the section could not be applied (unknown
	// device, base epoch mismatch, or a delta that failed to apply) —
	// the collector must send a full snapshot for this device next
	// round. This is the anti-entropy trigger.
	AckFullRequired = "full_required"
)

// Ack is the aggregator's per-section answer to a sync frame.
type Ack struct {
	Device string `json:"device"`
	Action string `json:"action"`
	// Epoch echoes the collector epoch the mirror holds after the
	// section was processed (0 for removes).
	Epoch uint64 `json:"epoch"`
}

// SyncResult is the body answered to POST /v1/sync.
type SyncResult struct {
	Collector string `json:"collector"`
	Seq       uint64 `json:"seq"`
	Acks      []Ack  `json:"acks"`
}

// CollectorStatus is one collector's externally visible sync state.
type CollectorStatus struct {
	ID          string
	State       CollectorState
	LastSyncAge time.Duration
	Devices     int
	Syncs       uint64
	Rejects     uint64
	Bytes       uint64
}

// deviceMirror is the aggregator's copy of one collector device: the
// snapshot exactly as the collector exported it (support 0), and the
// collector epoch it corresponds to — the base a delta must name to
// apply.
type deviceMirror struct {
	snap  core.Snapshot
	epoch uint64
}

// collectorMirror is everything the aggregator holds for one
// collector.
type collectorMirror struct {
	lastSync time.Time
	// instance scopes lastSeq: sequence numbers only order frames from
	// one client incarnation, so a frame carrying a new instance resets
	// the gate instead of being misread as a retransmit.
	instance uint64
	lastSeq  uint64
	devices  map[string]*deviceMirror
	syncs    uint64
	rejects  uint64
	bytes    uint64
}

func (m *collectorMirror) state(now time.Time, lease, failAfter time.Duration) CollectorState {
	age := now.Sub(m.lastSync)
	switch {
	case age <= lease:
		return Healthy
	case age <= failAfter:
		return Degraded
	default:
		return Failed
	}
}

// Aggregator mirrors a fleet of collectors and serves their merged
// synopsis. All methods are safe for concurrent use.
type Aggregator struct {
	lease     time.Duration
	failAfter time.Duration
	metrics   *obs.Registry

	// now is the clock; tests shorten partitions by replacing it
	// before the aggregator starts serving.
	now func() time.Time

	mu         sync.Mutex
	collectors map[string]*collectorMirror
	closed     bool
	// version counts mirror mutations; watch streams cursor on it.
	version uint64
	// notify is closed (and replaced) on every version bump and on
	// Close, waking WaitVersion blockers.
	notify chan struct{}

	// idx incrementally maintains the union of every live mirror, one
	// source per (collector, device). Apply feeds it O(delta) work as
	// sections land; merged reads materialize it without re-merging
	// unchanged mirrors and without holding mu — ingest and fan-in
	// reads only contend for the brief index mutation, never for a
	// full merge. idxExcluded marks collectors whose sources were
	// replayed out of the union because they crossed FailAfter; their
	// next accepted frame folds them back in. idxMu nests inside mu
	// (mu → idxMu) and is never held across a blocking call.
	idxMu       sync.Mutex
	idx         *core.MergeIndex
	idxExcluded map[string]bool

	// Version-gated merge cache, same discipline as the engine's: the
	// key is read under mu before the materialize, so it can only
	// under-claim freshness. The failed-set is part of the key because
	// a collector crossing FailAfter changes the merge without a
	// version bump. The cache holds the full support-0 merged export;
	// requested supports are suffix cuts of it, so one entry serves
	// every support.
	mergeMu      sync.Mutex
	mergeCached  core.Snapshot
	mergeVersion uint64
	mergeFailed  string
	mergeValid   bool

	syncsTotal    *obs.Counter
	bytesTotal    *obs.Counter
	rejectsTotal  *obs.Counter
	sectionsFull  *obs.Counter
	sectionsDelta *obs.Counter
	sectionsRm    *obs.Counter
}

// NewAggregator builds an aggregator from cfg.
func NewAggregator(cfg Config) *Aggregator {
	if cfg.Lease <= 0 {
		cfg.Lease = DefaultLease
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = DefaultFailAfter
	}
	if cfg.FailAfter < cfg.Lease {
		cfg.FailAfter = cfg.Lease
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	a := &Aggregator{
		lease:       cfg.Lease,
		failAfter:   cfg.FailAfter,
		metrics:     reg,
		now:         time.Now,
		collectors:  make(map[string]*collectorMirror),
		notify:      make(chan struct{}),
		idx:         core.NewMergeIndex(),
		idxExcluded: make(map[string]bool),

		syncsTotal:    reg.Counter(MetricFleetSyncs, "Sync frames accepted, including heartbeats and retransmits."),
		bytesTotal:    reg.Counter(MetricFleetSyncBytes, "Sync frame payload bytes accepted."),
		rejectsTotal:  reg.Counter(MetricFleetRejects, "Delta sections rejected with full_required (anti-entropy repairs triggered)."),
		sectionsFull:  reg.Counter(MetricFleetSections, "Device sections applied, by kind.", obs.L("kind", "full")),
		sectionsDelta: reg.Counter(MetricFleetSections, "Device sections applied, by kind.", obs.L("kind", "delta")),
		sectionsRm:    reg.Counter(MetricFleetSections, "Device sections applied, by kind.", obs.L("kind", "remove")),
	}
	for _, st := range []CollectorState{Healthy, Degraded, Failed} {
		st := st
		reg.GaugeFunc(MetricFleetCollectors, "Known collectors, by liveness state.", func() float64 {
			n := 0
			for _, c := range a.Collectors() {
				if c.State == st {
					n++
				}
			}
			return float64(n)
		}, obs.L("state", st.String()))
	}
	reg.GaugeFunc(MetricFleetMaxSyncAge, "Age of the stalest non-failed collector's last sync, in seconds.", func() float64 {
		return a.MaxSyncAge().Seconds()
	})
	return a
}

// Metrics returns the aggregator's registry.
func (a *Aggregator) Metrics() *obs.Registry { return a.metrics }

// Apply processes one sync frame and reports per-section acks. bytes
// is the encoded frame size, accounted to the collector's counters.
//
// Frames are seq-gated per collector incarnation: a frame whose Seq
// does not exceed the last applied one from the same Instance is a
// retransmit (the collector re-sent after losing our response) or a
// stale delivery from a partitioned path. Retransmits never mutate
// mirrors — the acks are recomputed from the mirrors' current epochs,
// which for a true retransmit reproduce the lost response. A frame
// with a different Instance is a restarted collector starting its
// sequence over; its first frame must apply, not be dropped as a
// replay of the previous incarnation.
func (a *Aggregator) Apply(f Frame, bytes int) (SyncResult, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return SyncResult{}, ErrClosed
	}
	m := a.collectors[f.Collector]
	if m == nil {
		m = &collectorMirror{devices: make(map[string]*deviceMirror)}
		a.collectors[f.Collector] = m
	}
	res := SyncResult{Collector: f.Collector, Seq: f.Seq, Acks: make([]Ack, 0, len(f.Sections))}
	mutated := false
	if f.Instance != m.instance {
		m.instance = f.Instance
		m.lastSeq = 0
	}
	// This frame makes the collector live again (lastSync advances
	// below); if its sources were replayed out of the union when it
	// crossed FailAfter, fold the current mirrors back in before the
	// sections patch on top.
	if a.idxExcluded[f.Collector] {
		delete(a.idxExcluded, f.Collector)
		a.idxMu.Lock()
		for dev, dm := range m.devices {
			a.idx.Update(mirrorKey(f.Collector, dev), dm.snap)
		}
		a.idxMu.Unlock()
	}
	retransmit := m.lastSeq != 0 && f.Seq <= m.lastSeq
	for _, s := range f.Sections {
		dev := m.devices[s.Device]
		switch s.Kind {
		case SectionRemove:
			if retransmit {
				if dev == nil {
					res.Acks = append(res.Acks, Ack{Device: s.Device, Action: AckApplied})
				} else {
					res.Acks = append(res.Acks, Ack{Device: s.Device, Action: AckFullRequired, Epoch: dev.epoch})
				}
				continue
			}
			if dev != nil {
				delete(m.devices, s.Device)
				a.idxMu.Lock()
				a.idx.Remove(mirrorKey(f.Collector, s.Device))
				a.idxMu.Unlock()
				mutated = true
			}
			a.sectionsRm.Inc()
			res.Acks = append(res.Acks, Ack{Device: s.Device, Action: AckApplied})
		case SectionFull:
			if retransmit {
				res.Acks = append(res.Acks, a.retransmitAck(dev, s))
				continue
			}
			m.devices[s.Device] = &deviceMirror{snap: s.Snap, epoch: s.Epoch}
			// Anti-entropy repair (and first contact): the union cannot
			// trust its previous image of this source, so the full
			// snapshot reconciles against it entry by entry.
			a.idxMu.Lock()
			a.idx.Update(mirrorKey(f.Collector, s.Device), s.Snap)
			a.idxMu.Unlock()
			mutated = true
			a.sectionsFull.Inc()
			res.Acks = append(res.Acks, Ack{Device: s.Device, Action: AckApplied, Epoch: s.Epoch})
		case SectionDelta:
			if retransmit {
				res.Acks = append(res.Acks, a.retransmitAck(dev, s))
				continue
			}
			if dev == nil || dev.epoch != s.BaseEpoch {
				m.rejects++
				a.rejectsTotal.Inc()
				ack := Ack{Device: s.Device, Action: AckFullRequired}
				if dev != nil {
					ack.Epoch = dev.epoch
				}
				res.Acks = append(res.Acks, ack)
				continue
			}
			next, err := s.Delta.Apply(dev.snap)
			if err != nil {
				// The delta names our base epoch but does not patch our
				// snapshot — the mirrors have drifted (a bug or a torn
				// state somewhere). Anti-entropy repairs it: demand a
				// full snapshot rather than serve a corrupt merge.
				m.rejects++
				a.rejectsTotal.Inc()
				res.Acks = append(res.Acks, Ack{Device: s.Device, Action: AckFullRequired, Epoch: dev.epoch})
				continue
			}
			dev.snap, dev.epoch = next, s.Epoch
			// The decoded delta drives the union directly — O(changed
			// entries), no re-merge of the mirror. A conflict here means
			// the union drifted from the mirror (it should be
			// impossible); reconciling the freshly patched snapshot
			// self-heals rather than serving a corrupt merge.
			a.idxMu.Lock()
			if ierr := a.idx.ApplyDelta(mirrorKey(f.Collector, s.Device), s.Delta); ierr != nil {
				a.idx.Update(mirrorKey(f.Collector, s.Device), next)
			}
			a.idxMu.Unlock()
			mutated = true
			a.sectionsDelta.Inc()
			res.Acks = append(res.Acks, Ack{Device: s.Device, Action: AckApplied, Epoch: s.Epoch})
		}
	}
	m.lastSync = a.now()
	if f.Seq > m.lastSeq {
		m.lastSeq = f.Seq
	}
	m.syncs++
	m.bytes += uint64(bytes)
	a.syncsTotal.Inc()
	a.bytesTotal.Add(uint64(bytes))
	if mutated {
		a.bumpLocked()
	}
	return res, nil
}

// retransmitAck recomputes the ack a lost response would have carried:
// if the mirror already holds the section's epoch the original apply
// succeeded; anything else demands a full sync, which is always safe.
func (a *Aggregator) retransmitAck(dev *deviceMirror, s Section) Ack {
	if dev != nil && dev.epoch == s.Epoch {
		return Ack{Device: s.Device, Action: AckApplied, Epoch: s.Epoch}
	}
	ack := Ack{Device: s.Device, Action: AckFullRequired}
	if dev != nil {
		ack.Epoch = dev.epoch
	}
	return ack
}

// bumpLocked advances the version and wakes watchers. Caller holds mu.
func (a *Aggregator) bumpLocked() {
	a.version++
	close(a.notify)
	a.notify = make(chan struct{})
}

// Version returns the mirror mutation counter — the watch cursor.
func (a *Aggregator) Version() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.version
}

// WaitVersion blocks until the version differs from since, the context
// ends, or the aggregator closes (ErrClosed — the watch streams'
// terminal signal).
func (a *Aggregator) WaitVersion(ctx context.Context, since uint64) (uint64, error) {
	for {
		a.mu.Lock()
		v, ch, closed := a.version, a.notify, a.closed
		a.mu.Unlock()
		if v != since {
			return v, nil
		}
		if closed {
			return v, ErrClosed
		}
		select {
		case <-ctx.Done():
			return v, ctx.Err()
		case <-ch:
		}
	}
}

// Close stops the aggregator: syncs are refused and watch streams end.
// Mirrors remain readable (WriteTo still works) so a final state save
// can follow.
func (a *Aggregator) Close() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return
	}
	a.closed = true
	close(a.notify)
	a.notify = make(chan struct{})
}

// Collectors lists every known collector's status, sorted by ID.
func (a *Aggregator) Collectors() []CollectorStatus {
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.now()
	out := make([]CollectorStatus, 0, len(a.collectors))
	for id, m := range a.collectors {
		out = append(out, CollectorStatus{
			ID:          id,
			State:       m.state(now, a.lease, a.failAfter),
			LastSyncAge: now.Sub(m.lastSync),
			Devices:     len(m.devices),
			Syncs:       m.syncs,
			Rejects:     m.rejects,
			Bytes:       m.bytes,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// MaxSyncAge reports the stalest last-sync age among non-failed
// collectors — the number an operator alerts on. Zero when no
// collector is known or all have failed.
func (a *Aggregator) MaxSyncAge() time.Duration {
	var max time.Duration
	for _, c := range a.Collectors() {
		if c.State != Failed && c.LastSyncAge > max {
			max = c.LastSyncAge
		}
	}
	return max
}

// Devices lists every device mirrored by a non-failed collector,
// sorted.
func (a *Aggregator) Devices() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.now()
	seen := make(map[string]struct{})
	for _, m := range a.collectors {
		if m.state(now, a.lease, a.failAfter) == Failed {
			continue
		}
		for id := range m.devices {
			seen[id] = struct{}{}
		}
	}
	out := make([]string, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// liveSnapshots collects the mirrors that participate in merged reads
// (devices of non-failed collectors), plus the failed-set cache key.
func (a *Aggregator) liveSnapshots(device string) (snaps []core.Snapshot, version uint64, failedKey string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.now()
	ids := make([]string, 0, len(a.collectors))
	for id := range a.collectors {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var failed []byte
	for _, id := range ids {
		m := a.collectors[id]
		if m.state(now, a.lease, a.failAfter) == Failed {
			failed = append(failed, id...)
			failed = append(failed, 0)
			continue
		}
		for dev, dm := range m.devices {
			if device != "" && dev != device {
				continue
			}
			snaps = append(snaps, dm.snap)
		}
	}
	return snaps, a.version, string(failed)
}

// MergedSnapshot merges every live mirror into the fleet-wide synopsis
// at minSupport. The result is exactly core.MergeSnapshots over the
// collectors' exports: an aggregator that has converged answers
// byte-for-byte what a single process holding all devices would. The
// merge is incrementally maintained — Apply feeds each section's
// changes into the union as it lands, so a read after one device's
// delta re-sorts only that device's changed entries and never holds
// the ingest mutex across a merge.
func (a *Aggregator) MergedSnapshot(minSupport uint32) core.Snapshot {
	a.mergeMu.Lock()
	defer a.mergeMu.Unlock()
	return filterSupport(a.refreshMergedLocked(), minSupport)
}

// refreshMergedLocked returns the up-to-date full (support-0) merged
// export, re-materializing from the index only when the version or the
// failed-set moved. Caller holds mergeMu.
func (a *Aggregator) refreshMergedLocked() core.Snapshot {
	version, failedKey := a.reconcileIndex()
	if a.mergeValid && a.mergeVersion == version && a.mergeFailed == failedKey {
		return a.mergeCached
	}
	a.idxMu.Lock()
	merged := a.idx.Snapshot()
	a.idxMu.Unlock()
	a.mergeCached, a.mergeVersion, a.mergeFailed, a.mergeValid = merged, version, failedKey, true
	return merged
}

// reconcileIndex replays the sources of collectors that crossed
// FailAfter out of the union (their re-inclusion happens in Apply, the
// only way a collector's sync age can shrink) and returns the merge
// cache key: the mirror version and the failed-set.
func (a *Aggregator) reconcileIndex() (version uint64, failedKey string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.now()
	ids := make([]string, 0, len(a.collectors))
	for id := range a.collectors {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var failed []byte
	for _, id := range ids {
		m := a.collectors[id]
		if m.state(now, a.lease, a.failAfter) != Failed {
			continue
		}
		failed = append(failed, id...)
		failed = append(failed, 0)
		if !a.idxExcluded[id] {
			a.idxExcluded[id] = true
			a.idxMu.Lock()
			for dev := range m.devices {
				a.idx.Remove(mirrorKey(id, dev))
			}
			a.idxMu.Unlock()
		}
	}
	return a.version, string(failed)
}

// mirrorKey names one (collector, device) source in the merge index.
// IDs are only length-bounded by the wire format (any byte may appear,
// including the separator), so the collector's length is prefixed to
// make the split point — and therefore the key — unambiguous.
func mirrorKey(collector, device string) string {
	return strconv.Itoa(len(collector)) + "\x00" + collector + device
}

// DeviceSnapshot merges one device's mirrors (normally a single
// collector's) at minSupport. ok is false when no live collector
// mirrors the device.
func (a *Aggregator) DeviceSnapshot(device string, minSupport uint32) (core.Snapshot, bool) {
	snaps, _, _ := a.liveSnapshots(device)
	if len(snaps) == 0 {
		return core.Snapshot{}, false
	}
	return filterSupport(core.MergeSnapshots(snaps...), minSupport), true
}

// Rules derives fleet-wide directional rules from the merged mirror,
// as engine.MergedRules does from live tables.
func (a *Aggregator) Rules(minSupport uint32, minConfidence float64) []core.Rule {
	return a.TopRules(minSupport, minConfidence, 0)
}

// TopRules is Rules bounded to the limit highest-ranked rules (all of
// them when limit <= 0); the result is exactly Rules(...)[:limit].
// Extraction runs straight off the merge index — antecedent lookups
// hit its item hash and selection is a bounded heap, so a top-K read
// allocates O(K) regardless of fleet size.
func (a *Aggregator) TopRules(minSupport uint32, minConfidence float64, limit int) []core.Rule {
	a.mergeMu.Lock()
	defer a.mergeMu.Unlock()
	a.refreshMergedLocked() // replay failed collectors out of the index first
	a.idxMu.Lock()
	defer a.idxMu.Unlock()
	return a.idx.TopRules(minSupport, minConfidence, limit)
}

// DeviceRules derives one device's rules from its mirror.
func (a *Aggregator) DeviceRules(device string, minSupport uint32, minConfidence float64) ([]core.Rule, bool) {
	return a.DeviceTopRules(device, minSupport, minConfidence, 0)
}

// DeviceTopRules is DeviceRules bounded to the limit highest-ranked
// rules (all of them when limit <= 0).
func (a *Aggregator) DeviceTopRules(device string, minSupport uint32, minConfidence float64, limit int) ([]core.Rule, bool) {
	snap, ok := a.DeviceSnapshot(device, 0)
	if !ok {
		return nil, false
	}
	return snap.TopRules(minSupport, minConfidence, limit), true
}

// filterSupport cuts a sorted-descending snapshot at minSupport.
// Exports and merges are sorted by descending count, so the entries
// below the threshold are exactly a suffix (core.Snapshot.FilterSupport).
func filterSupport(s core.Snapshot, minSupport uint32) core.Snapshot {
	return s.FilterSupport(minSupport)
}

// FleetStatus is the staleness block stamped into every read response:
// reads keep answering during partitions, and this is how the caller
// knows what it got.
type FleetStatus struct {
	// Status is "ok" (all collectors healthy), "degraded" (some
	// degraded or failed), "failed" (all failed), or "empty" (no
	// collector has ever synced).
	Status string `json:"status"`
	// MaxSyncAgeSeconds is the stalest non-failed collector's sync
	// age — the staleness bound on the data served.
	MaxSyncAgeSeconds float64           `json:"maxSyncAgeSeconds"`
	Collectors        []collectorStatus `json:"collectors"`
}

type collectorStatus struct {
	ID             string  `json:"id"`
	State          string  `json:"state"`
	LastSyncAgeSec float64 `json:"lastSyncAgeSeconds"`
	Devices        int     `json:"devices"`
	Syncs          uint64  `json:"syncs"`
	Rejects        uint64  `json:"rejects"`
}

// Status assembles the staleness block.
func (a *Aggregator) Status() FleetStatus {
	cs := a.Collectors()
	st := FleetStatus{Status: "empty", Collectors: make([]collectorStatus, 0, len(cs))}
	var maxAge time.Duration
	allFailed, anyUnwell := len(cs) > 0, false
	for _, c := range cs {
		if c.State != Failed {
			allFailed = false
			if c.LastSyncAge > maxAge {
				maxAge = c.LastSyncAge
			}
		}
		if c.State != Healthy {
			anyUnwell = true
		}
		st.Collectors = append(st.Collectors, collectorStatus{
			ID:             c.ID,
			State:          c.State.String(),
			LastSyncAgeSec: c.LastSyncAge.Seconds(),
			Devices:        c.Devices,
			Syncs:          c.Syncs,
			Rejects:        c.Rejects,
		})
	}
	switch {
	case len(cs) == 0:
		st.Status = "empty"
	case allFailed:
		st.Status = "failed"
	case anyUnwell:
		st.Status = "degraded"
	default:
		st.Status = "ok"
	}
	st.MaxSyncAgeSeconds = maxAge.Seconds()
	return st
}
