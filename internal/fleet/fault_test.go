package fleet

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"testing"
	"time"

	"daccor/internal/checkpoint"
	"daccor/internal/core"
	"daccor/internal/engine"
	"daccor/internal/monitor"
)

// The fleet fault-injection suite. Faults live at the transport (a
// RoundTripper that drops, duplicates, or fails requests), the clock
// (partitions age leases via fakeClock), and the process boundary
// (collectors and aggregators restarted from persisted state). The
// invariant under every fault: after the fault clears and one clean
// round completes, the aggregator's merged mirror is DeepEqual to the
// single-process merge of the surviving collectors, and reads answered
// 200 throughout.

// flakyTransport wraps a base RoundTripper with deterministic fault
// injection. Request bodies are buffered so a duplicated request can
// be replayed byte-identically.
type flakyTransport struct {
	base http.RoundTripper

	mu        sync.Mutex
	rng       *rand.Rand
	dropEvery int // fail request n, n*2, ... with a transport error
	duplicate bool
	partition bool
	drops     int
	dups      int
	calls     int
}

var errInjectedDrop = errors.New("fault: injected network drop")

func (f *flakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	var body []byte
	if req.Body != nil {
		var err error
		body, err = io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, err
		}
	}
	clone := func() *http.Request {
		r2 := req.Clone(req.Context())
		r2.Body = io.NopCloser(bytes.NewReader(body))
		r2.ContentLength = int64(len(body))
		return r2
	}
	f.mu.Lock()
	f.calls++
	drop := f.partition || (f.dropEvery > 0 && f.calls%f.dropEvery == 0)
	dup := f.duplicate && !drop
	if drop {
		f.drops++
	}
	if dup {
		f.dups++
	}
	f.mu.Unlock()
	if drop {
		return nil, errInjectedDrop
	}
	if dup {
		// First delivery: response discarded (as if lost); the caller
		// sees only the second — the aggregator sees the frame twice.
		if resp, err := f.base.RoundTrip(clone()); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	return f.base.RoundTrip(clone())
}

func (f *flakyTransport) setPartition(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.partition = on
}

// flakyClient builds a sync client whose transport is the flaky one.
func flakyClient(t *testing.T, tf *testFleet, id string, e *engine.Engine, ft *flakyTransport) *SyncClient {
	t.Helper()
	if ft.base == nil {
		ft.base = http.DefaultTransport
	}
	c, err := NewSyncClient(ClientConfig{
		Aggregator:  tf.srv.URL,
		Collector:   id,
		Engine:      e,
		MaxAttempts: 5,
		BackoffBase: time.Millisecond,
		BackoffCap:  4 * time.Millisecond,
		HTTPClient:  &http.Client{Transport: ft},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestFaultDroppedSyncs: every third request dies on the wire; the
// client's bounded retry with backoff absorbs the drops and the
// mirrors converge exactly.
func TestFaultDroppedSyncs(t *testing.T) {
	e := newTestEngine(t, "vol0", "vol1")
	defer e.Stop()
	tf := newTestFleet(t, Config{}, e)
	ft := &flakyTransport{rng: rand.New(rand.NewSource(1)), dropEvery: 3}
	c := flakyClient(t, tf, "c0", e, ft)

	for i := 0; i < 8; i++ {
		feedKeys(t, e, "vol0", 60, 1, 8)
		feedKeys(t, e, "vol1", 60, 2, 8)
		if _, err := c.SyncNow(context.Background()); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
	if ft.drops == 0 {
		t.Fatal("fault injector never fired")
	}
	requireConverged(t, tf.agg, e)
}

// TestFaultDuplicatedSyncs: every frame is delivered twice (the first
// response lost). The aggregator's seq gating must collapse the
// duplicate into a retransmit ack, never a double count.
func TestFaultDuplicatedSyncs(t *testing.T) {
	e := newTestEngine(t, "vol0")
	defer e.Stop()
	tf := newTestFleet(t, Config{}, e)
	ft := &flakyTransport{rng: rand.New(rand.NewSource(2)), duplicate: true}
	c := flakyClient(t, tf, "c0", e, ft)

	for i := 0; i < 6; i++ {
		feedKeys(t, e, "vol0", 80, 1, 8)
		if _, err := c.SyncNow(context.Background()); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
	if ft.dups == 0 {
		t.Fatal("fault injector never fired")
	}
	// Double counting would inflate merged counts; exact DeepEqual
	// convergence rules it out.
	requireConverged(t, tf.agg, e)
}

// TestFaultReorderedStaleFrame: a frame from an earlier round is
// re-delivered after later rounds applied (an extreme reordering). The
// seq gate must ignore its payload entirely.
func TestFaultReorderedStaleFrame(t *testing.T) {
	e := newTestEngine(t, "vol0")
	defer e.Stop()
	tf := newTestFleet(t, Config{}, e)

	// capture transport: records every request body sent.
	var mu sync.Mutex
	var frames [][]byte
	ft := &flakyTransport{base: roundTripFunc(func(req *http.Request) (*http.Response, error) {
		body, _ := io.ReadAll(req.Body)
		req.Body.Close()
		mu.Lock()
		frames = append(frames, body)
		mu.Unlock()
		r2 := req.Clone(req.Context())
		r2.Body = io.NopCloser(bytes.NewReader(body))
		r2.ContentLength = int64(len(body))
		return http.DefaultTransport.RoundTrip(r2)
	})}
	c := flakyClient(t, tf, "c0", e, ft)

	feedKeys(t, e, "vol0", 500, 1, 64)
	if _, err := c.SyncNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		feedKeys(t, e, "vol0", 50, 1, 4)
		if _, err := c.SyncNow(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	before := tf.agg.MergedSnapshot(0)

	// Replay the first (full) and second (delta) frames out of order.
	mu.Lock()
	stale := [][]byte{frames[0], frames[1]}
	mu.Unlock()
	for i, b := range stale {
		resp, err := http.Post(tf.srv.URL+"/v1/sync", "application/octet-stream", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("stale frame %d answered %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	if !snapshotsEqual(tf.agg.MergedSnapshot(0), before) {
		t.Fatal("stale frame replay mutated the mirrors")
	}
	requireConverged(t, tf.agg, e)
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

func snapshotsEqual(a, b core.Snapshot) bool {
	if len(a.Pairs) != len(b.Pairs) || len(a.Items) != len(b.Items) {
		return false
	}
	for i := range a.Pairs {
		if a.Pairs[i] != b.Pairs[i] {
			return false
		}
	}
	for i := range a.Items {
		if a.Items[i] != b.Items[i] {
			return false
		}
	}
	return true
}

// TestFaultPartitionThenHeal: a full partition outlasts the lease
// (degraded) and FailAfter (failed, out of the merge); the whole time
// reads answer 200. When the partition heals, one round of syncs
// re-converges without a full resync — the mirrors never diverged,
// they only aged.
func TestFaultPartitionThenHeal(t *testing.T) {
	e0 := newTestEngine(t, "vol0")
	e1 := newTestEngine(t, "vol1")
	defer e0.Stop()
	defer e1.Stop()
	tf := newTestFleet(t, Config{Lease: 10 * time.Second, FailAfter: 60 * time.Second}, e0)
	ft := &flakyTransport{rng: rand.New(rand.NewSource(3))}
	c0 := flakyClient(t, tf, "c0", e0, ft)
	c1 := flakyClient(t, tf, "c1", e1, &flakyTransport{rng: rand.New(rand.NewSource(4))})

	feedKeys(t, e0, "vol0", 800, 1, 64)
	feedKeys(t, e1, "vol1", 800, 2, 64)
	for _, c := range []*SyncClient{c0, c1} {
		if _, err := c.SyncNow(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	requireConverged(t, tf.agg, e0, e1)

	// Partition c0. Its rounds fail; c1 keeps syncing.
	ft.setPartition(true)
	if _, err := c0.SyncNow(context.Background()); err == nil {
		t.Fatal("partitioned sync succeeded")
	}
	tf.clk.Advance(15 * time.Second)
	if _, err := c1.SyncNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := tf.agg.Status()
	if st.Status != "degraded" {
		t.Fatalf("fleet status %q during partition, want degraded", st.Status)
	}
	// The degraded mirror still serves: merged view includes c0's data.
	if !snapshotsEqual(tf.agg.MergedSnapshot(0), fleetMerge(t, e0, e1)) {
		t.Fatal("degraded collector's mirror dropped out of the merge early")
	}

	// Past FailAfter: c0 is failed and excluded — merged equals the
	// single-process merge of the *surviving* collector only.
	tf.clk.Advance(60 * time.Second)
	if _, err := c1.SyncNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := tf.agg.Status().Status; got != "degraded" {
		t.Fatalf("fleet status %q with one failed collector, want degraded", got)
	}
	requireConverged(t, tf.agg, e1)

	// Heal. The client's shadow still matches the aggregator's mirror
	// (neither moved during the partition), so recovery is pure delta —
	// no anti-entropy full resync needed.
	ft.setPartition(false)
	feedKeys(t, e0, "vol0", 50, 1, 4)
	rep, err := c0.SyncNow(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fulls != 0 || rep.FullRequired != 0 {
		t.Fatalf("healed sync forced a full resync: %+v", rep)
	}
	requireConverged(t, tf.agg, e0, e1)
}

// TestFaultCollectorRestart: a collector dies mid-stream and restarts
// from its checkpoint directory with a fresh client (no shadow state).
// The new client full-syncs — even though the restored engine's epochs
// restarted — and the fleet re-converges on the collector's restored
// state.
func TestFaultCollectorRestart(t *testing.T) {
	dir := t.TempDir()
	newCollector := func() *engine.Engine {
		store, err := checkpoint.Open(checkpoint.Config{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		e, err := engine.New(
			engine.WithMonitor(monitor.Config{Window: monitor.StaticWindow(10 * time.Millisecond)}),
			engine.WithAnalyzer(core.Config{ItemCapacity: 4096, PairCapacity: 4096}),
			engine.WithDevices("vol0"),
			engine.WithCheckpoints(store, time.Hour),
		)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}

	e := newCollector()
	tf := newTestFleet(t, Config{}, e)
	c := tf.clients[0]
	feedKeys(t, e, "vol0", 900, 1, 64)
	if _, err := c.SyncNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	requireConverged(t, tf.agg, e)

	// Crash: stop writes the final checkpoint; the client dies with the
	// process.
	e.Stop()

	// Restart: new engine restores the checkpoint; a brand-new client
	// (same collector identity, empty shadow) takes over.
	e2 := newCollector()
	defer e2.Stop()
	c2, err := NewSyncClient(ClientConfig{
		Aggregator:  tf.srv.URL,
		Collector:   "c0",
		Engine:      e2,
		MaxAttempts: 3,
		BackoffBase: time.Millisecond,
		BackoffCap:  4 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	feedKeys(t, e2, "vol0", 100, 1, 4)
	rep, err := c2.SyncNow(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fulls == 0 {
		t.Fatalf("restarted client must full-sync, got %+v", rep)
	}
	requireConverged(t, tf.agg, e2)
}

// TestFaultAggregatorRestartCold: the aggregator restarts with no
// persisted state. The collector's next delta names a base the new
// aggregator does not hold; anti-entropy demands a full, the round
// after that ships it, and the fleet re-converges.
func TestFaultAggregatorRestartCold(t *testing.T) {
	e := newTestEngine(t, "vol0")
	defer e.Stop()

	// swapper serves whichever aggregator is current.
	var mu sync.Mutex
	agg := NewAggregator(Config{})
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		h := NewHandler(agg)
		mu.Unlock()
		h.ServeHTTP(w, r)
	})
	srv := newLocalServer(t, handler)
	c, err := NewSyncClient(ClientConfig{
		Aggregator:  srv,
		Collector:   "c0",
		Engine:      e,
		MaxAttempts: 3,
		BackoffBase: time.Millisecond,
		BackoffCap:  4 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	feedKeys(t, e, "vol0", 700, 1, 64)
	if _, err := c.SyncNow(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Aggregator crashes and restarts empty.
	mu.Lock()
	agg = NewAggregator(Config{})
	fresh := agg
	mu.Unlock()

	// Next delta round: rejected with full_required (mirror unknown).
	feedKeys(t, e, "vol0", 60, 1, 4)
	rep, err := c.SyncNow(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.FullRequired == 0 {
		t.Fatalf("cold aggregator must reject the delta: %+v", rep)
	}
	// Anti-entropy repair: the round after ships the full snapshot.
	rep, err = c.SyncNow(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fulls == 0 {
		t.Fatalf("repair round must ship a full snapshot: %+v", rep)
	}
	requireConverged(t, fresh, e)
}

// TestFaultAggregatorRestartWarm: the aggregator restarts from
// persisted state (WriteTo → LoadState). Epochs and seqs survive, so
// the collector keeps delta-syncing — no anti-entropy round, no full
// resync.
func TestFaultAggregatorRestartWarm(t *testing.T) {
	e := newTestEngine(t, "vol0")
	defer e.Stop()

	var mu sync.Mutex
	agg := NewAggregator(Config{})
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		h := NewHandler(agg)
		mu.Unlock()
		h.ServeHTTP(w, r)
	})
	srv := newLocalServer(t, handler)
	c, err := NewSyncClient(ClientConfig{
		Aggregator:  srv,
		Collector:   "c0",
		Engine:      e,
		MaxAttempts: 3,
		BackoffBase: time.Millisecond,
		BackoffCap:  4 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	feedKeys(t, e, "vol0", 700, 1, 64)
	if _, err := c.SyncNow(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Persist, "crash", restore into a fresh aggregator.
	var state bytes.Buffer
	mu.Lock()
	if _, err := agg.WriteTo(&state); err != nil {
		mu.Unlock()
		t.Fatal(err)
	}
	restored := NewAggregator(Config{})
	if err := restored.LoadState(bytes.NewReader(state.Bytes())); err != nil {
		mu.Unlock()
		t.Fatal(err)
	}
	agg = restored
	mu.Unlock()

	feedKeys(t, e, "vol0", 60, 1, 4)
	rep, err := c.SyncNow(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fulls != 0 || rep.FullRequired != 0 {
		t.Fatalf("warm restart must keep delta sync working: %+v", rep)
	}
	if rep.Deltas == 0 {
		t.Fatalf("expected a delta section: %+v", rep)
	}
	requireConverged(t, restored, e)
}
