package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"daccor/internal/blktrace"
	"daccor/internal/core"
)

func sampleSnapshot() core.Snapshot {
	a := blktrace.Extent{Block: 8, Len: 1}
	b := blktrace.Extent{Block: 16, Len: 2}
	c := blktrace.Extent{Block: 32, Len: 1}
	return core.Snapshot{
		Pairs: []core.PairCount{
			{Pair: blktrace.MakePair(a, b), Count: 9, Tier: core.Tier2},
			{Pair: blktrace.MakePair(b, c), Count: 3, Tier: core.Tier1},
		},
		Items: []core.ItemCount{
			{Extent: a, Count: 12, Tier: core.Tier2},
			{Extent: b, Count: 10, Tier: core.Tier2},
			{Extent: c, Count: 3, Tier: core.Tier1},
		},
	}
}

func TestFrameWireRoundTrip(t *testing.T) {
	snap := sampleSnapshot()
	next := sampleSnapshot()
	next.Items[0].Count = 20
	f := Frame{
		Collector: "host-a",
		Seq:       42,
		Sections: []Section{
			{Device: "vol0", Kind: SectionFull, Epoch: 7, Snap: snap},
			{Device: "vol1", Kind: SectionDelta, BaseEpoch: 7, Epoch: 9, Delta: core.DiffSnapshots(snap, next)},
			{Device: "vol2", Kind: SectionRemove},
		},
	}
	var buf bytes.Buffer
	if err := EncodeFrame(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFrame(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Collector != f.Collector || got.Seq != f.Seq || len(got.Sections) != len(f.Sections) {
		t.Fatalf("frame header mismatch: %+v", got)
	}
	for i, s := range got.Sections {
		w := f.Sections[i]
		if s.Device != w.Device || s.Kind != w.Kind || s.BaseEpoch != w.BaseEpoch || s.Epoch != w.Epoch {
			t.Fatalf("section %d header mismatch: got %+v want %+v", i, s, w)
		}
	}
	if !reflect.DeepEqual(got.Sections[0].Snap, snap) {
		t.Fatal("full section snapshot mismatch")
	}
	// The delta must patch the same base to the same result.
	want, err := f.Sections[1].Delta.Apply(snap)
	if err != nil {
		t.Fatal(err)
	}
	g, err := got.Sections[1].Delta.Apply(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g, want) {
		t.Fatal("delta section does not apply identically after roundtrip")
	}
}

func TestDecodeFrameRejects(t *testing.T) {
	snap := sampleSnapshot()
	valid := func(f Frame) []byte {
		var buf bytes.Buffer
		if err := EncodeFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	base := valid(Frame{Collector: "c", Seq: 1, Sections: []Section{
		{Device: "vol0", Kind: SectionFull, Epoch: 3, Snap: snap},
	}})

	// Truncation at every prefix errors, never panics.
	for cut := 0; cut < len(base); cut++ {
		if _, err := DecodeFrame(bytes.NewReader(base[:cut])); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
	// Trailing bytes are a framing bug, not padding.
	if _, err := DecodeFrame(bytes.NewReader(append(append([]byte{}, base...), 0))); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("trailing byte: got %v, want ErrBadFrame", err)
	}
	// Wrong magic.
	bad := append([]byte{}, base...)
	bad[0] = 'X'
	if _, err := DecodeFrame(bytes.NewReader(bad)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("bad magic: got %v, want ErrBadFrame", err)
	}
	// Duplicate device sections.
	dup := valid(Frame{Collector: "c", Seq: 1, Sections: []Section{
		{Device: "vol0", Kind: SectionFull, Epoch: 3, Snap: snap},
		{Device: "vol0", Kind: SectionRemove},
	}})
	if _, err := DecodeFrame(bytes.NewReader(dup)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("duplicate device: got %v, want ErrBadFrame", err)
	}
	// Epoch regression inside a delta section must error: collector
	// epochs are monotone, so Epoch <= BaseEpoch is corruption.
	reg := valid(Frame{Collector: "c", Seq: 1, Sections: []Section{
		{Device: "vol0", Kind: SectionDelta, BaseEpoch: 9, Epoch: 9,
			Delta: core.DiffSnapshots(core.Snapshot{}, snap)},
	}})
	if _, err := DecodeFrame(bytes.NewReader(reg)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("epoch regression: got %v, want ErrBadFrame", err)
	}
}

// TestSyncDeltaFlow is the tentpole's happy path: first rounds ship
// full snapshots, steady-state rounds ship deltas, the aggregator's
// merged mirror stays DeepEqual to the single-process merge, and the
// byte counters prove deltas are materially cheaper than fulls on an
// incremental workload.
func TestSyncDeltaFlow(t *testing.T) {
	e0 := newTestEngine(t, "vol0", "vol1")
	e1 := newTestEngine(t, "vol2")
	defer e0.Stop()
	defer e1.Stop()
	tf := newTestFleet(t, Config{}, e0, e1)

	// A substantial initial corpus over a wide key universe, then the
	// first sync: all fulls.
	feedKeys(t, e0, "vol0", 4000, 1, 512)
	feedKeys(t, e0, "vol1", 4000, 2, 512)
	feedKeys(t, e1, "vol2", 4000, 3, 512)
	reps := tf.syncAll(t)
	if reps[0].Fulls != 2 || reps[1].Fulls != 1 {
		t.Fatalf("first rounds not full syncs: %+v", reps)
	}
	requireConverged(t, tf.agg, e0, e1)

	// Incremental rounds: small feeds over a few hot keys, delta syncs
	// only.
	deltaRounds := 0
	for i := 0; i < 5; i++ {
		feedKeys(t, e0, "vol0", 40, 1, 4)
		feedKeys(t, e1, "vol2", 40, 3, 4)
		reps = tf.syncAll(t)
		for _, r := range reps {
			if r.Fulls > 0 {
				t.Fatalf("incremental round %d shipped a full snapshot: %+v", i, r)
			}
			deltaRounds += r.Deltas
		}
	}
	if deltaRounds == 0 {
		t.Fatal("no delta sections shipped on incremental rounds")
	}
	requireConverged(t, tf.agg, e0, e1)

	// Byte accounting: deltas must be materially cheaper per round.
	for i, c := range tf.clients {
		st := c.Stats()
		if st.FullBytes == 0 || st.DeltaBytes == 0 {
			t.Fatalf("client %d: byte counters not populated: %+v", i, st)
		}
		// 5 (client 0) or fewer delta-bearing rounds together must cost
		// less than the one full round: per-round deltas are far
		// smaller than the snapshot they patch.
		if st.DeltaBytes >= st.FullBytes {
			t.Fatalf("client %d: delta rounds (%d B total) not cheaper than full rounds (%d B)",
				i, st.DeltaBytes, st.FullBytes)
		}
	}

	// An idle round is a heartbeat: no sections, still acked.
	rep, err := tf.clients[0].SyncNow(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sections != 0 {
		t.Fatalf("idle round shipped %d sections", rep.Sections)
	}
}

// TestStalenessServing: a partitioned collector degrades, then fails;
// reads keep answering 200 with the staleness block telling the truth
// the whole way down.
func TestStalenessServing(t *testing.T) {
	e := newTestEngine(t, "vol0")
	defer e.Stop()
	tf := newTestFleet(t, Config{Lease: 10 * time.Second, FailAfter: 60 * time.Second}, e)

	feed(t, e, "vol0", 500, 1)
	tf.syncAll(t)

	get := func(path string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Get(tf.srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var env struct {
			Data map[string]any `json:"data"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, env.Data
	}
	fleetStatus := func(data map[string]any) string {
		fl, _ := data["fleet"].(map[string]any)
		s, _ := fl["status"].(string)
		return s
	}

	code, data := get("/v1/snapshot?support=1")
	if code != 200 || fleetStatus(data) != "ok" {
		t.Fatalf("fresh read: code %d, status %q", code, fleetStatus(data))
	}
	if n, _ := data["totalPairs"].(float64); n == 0 {
		t.Fatal("fresh read served no pairs")
	}

	// Partition: the collector goes silent past its lease.
	tf.clk.Advance(15 * time.Second)
	code, data = get("/v1/snapshot?support=1")
	if code != 200 {
		t.Fatalf("degraded read answered %d, want 200", code)
	}
	if fleetStatus(data) != "degraded" {
		t.Fatalf("degraded read status %q", fleetStatus(data))
	}
	if n, _ := data["totalPairs"].(float64); n == 0 {
		t.Fatal("degraded read must keep serving the stale mirror")
	}
	fl := data["fleet"].(map[string]any)
	if age, _ := fl["maxSyncAgeSeconds"].(float64); age < 14 {
		t.Fatalf("staleness not reported: maxSyncAgeSeconds = %v", age)
	}

	// Prolonged silence: failed, excluded from the merge, still 200.
	tf.clk.Advance(60 * time.Second)
	code, data = get("/v1/snapshot?support=1")
	if code != 200 {
		t.Fatalf("failed read answered %d, want 200", code)
	}
	if fleetStatus(data) != "failed" {
		t.Fatalf("failed read status %q", fleetStatus(data))
	}
	if n, _ := data["totalPairs"].(float64); n != 0 {
		t.Fatal("failed collector's mirror must drop out of the merge")
	}

	// The collector comes back: one sync restores everything.
	tf.syncAll(t)
	code, data = get("/v1/snapshot?support=1")
	if code != 200 || fleetStatus(data) != "ok" {
		t.Fatalf("healed read: code %d, status %q", code, fleetStatus(data))
	}
	requireConverged(t, tf.agg, e)
}

func TestPersistRoundTrip(t *testing.T) {
	e := newTestEngine(t, "vol0", "vol1")
	defer e.Stop()
	tf := newTestFleet(t, Config{}, e)
	feed(t, e, "vol0", 1000, 1)
	feed(t, e, "vol1", 800, 2)
	tf.syncAll(t)

	var buf bytes.Buffer
	if _, err := tf.agg.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}

	restored := newAggregatorAt(Config{}, tf.clk)
	if err := restored.LoadState(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(restored.MergedSnapshot(0), tf.agg.MergedSnapshot(0)) {
		t.Fatal("restored aggregator serves a different merge")
	}
	cs, want := restored.Collectors(), tf.agg.Collectors()
	if !reflect.DeepEqual(cs[0].ID, want[0].ID) || cs[0].Devices != want[0].Devices {
		t.Fatalf("restored collector status mismatch: %+v vs %+v", cs, want)
	}

	// Torn payloads must error without replacing the mirrors.
	state := buf.Bytes()
	for _, cut := range []int{0, 1, 4, 6, 10, len(state) / 2, len(state) - 1} {
		fresh := NewAggregator(Config{})
		if err := fresh.LoadState(bytes.NewReader(state[:cut])); !errors.Is(err, ErrBadState) {
			t.Fatalf("truncation at %d: got %v, want ErrBadState", cut, err)
		}
		if len(fresh.Devices()) != 0 {
			t.Fatalf("truncation at %d left partial mirrors behind", cut)
		}
	}
}

// TestWatchStream: the fleet watch delivers the current state, pushes
// on version advance, and terminates with an end event on Close.
func TestWatchStream(t *testing.T) {
	e := newTestEngine(t, "vol0")
	defer e.Stop()
	tf := newTestFleet(t, Config{}, e)
	feed(t, e, "vol0", 500, 1)
	tf.syncAll(t)

	req, err := http.NewRequest(http.MethodGet, tf.srv.URL+"/v1/watch?support=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	events := make(chan string, 16)
	go func() {
		defer close(events)
		buf := make([]byte, 4096)
		var acc strings.Builder
		for {
			n, err := resp.Body.Read(buf)
			if n > 0 {
				acc.Write(buf[:n])
				for {
					s := acc.String()
					i := strings.Index(s, "\n\n")
					if i < 0 {
						break
					}
					events <- s[:i]
					acc.Reset()
					acc.WriteString(s[i+2:])
				}
			}
			if err != nil {
				return
			}
		}
	}()
	waitEvent := func(kind string) string {
		t.Helper()
		deadline := time.After(10 * time.Second)
		for {
			select {
			case ev, ok := <-events:
				if !ok {
					t.Fatalf("stream closed waiting for %q", kind)
				}
				if strings.Contains(ev, "event: "+kind) {
					return ev
				}
			case <-deadline:
				t.Fatalf("no %q event before deadline", kind)
			}
		}
	}

	first := waitEvent("state")
	if !strings.Contains(first, "totalPairs") {
		t.Fatalf("state event missing body: %q", first)
	}
	// A new sync bumps the version and pushes a fresh state.
	feed(t, e, "vol0", 100, 1)
	tf.syncAll(t)
	waitEvent("state")

	tf.agg.Close()
	end := waitEvent("end")
	if !strings.Contains(end, ErrCodeClosed) {
		t.Fatalf("end event missing reason: %q", end)
	}
}

// TestSyncAfterAggregatorClose: a closed aggregator answers 503 and
// the client reports the failure without wedging.
func TestSyncAfterAggregatorClose(t *testing.T) {
	e := newTestEngine(t, "vol0")
	defer e.Stop()
	tf := newTestFleet(t, Config{}, e)
	feed(t, e, "vol0", 100, 1)
	tf.syncAll(t)
	tf.agg.Close()
	if _, err := tf.clients[0].SyncNow(context.Background()); err == nil {
		t.Fatal("sync against closed aggregator succeeded")
	}
}

// TestFilterSupport pins the suffix-cut filter against the obvious
// map-based implementation.
func TestFilterSupport(t *testing.T) {
	s := sampleSnapshot()
	got := filterSupport(s, 4)
	if len(got.Pairs) != 1 || got.Pairs[0].Count != 9 {
		t.Fatalf("pairs: %+v", got.Pairs)
	}
	if len(got.Items) != 2 {
		t.Fatalf("items: %+v", got.Items)
	}
	all := filterSupport(s, 1)
	if !reflect.DeepEqual(all, s) {
		t.Fatal("support 1 must keep everything")
	}
	none := filterSupport(s, 1000)
	if none.Pairs != nil || none.Items != nil {
		t.Fatalf("support 1000 must empty (nil) the snapshot: %+v", none)
	}
}

// TestRetransmitAck: re-delivering an applied frame must not mutate
// mirrors and must reproduce the lost acks.
func TestRetransmitAck(t *testing.T) {
	a := NewAggregator(Config{})
	snap := sampleSnapshot()
	f := Frame{Collector: "c0", Seq: 1, Sections: []Section{
		{Device: "vol0", Kind: SectionFull, Epoch: 5, Snap: snap},
	}}
	res1, err := a.Apply(f, 100)
	if err != nil {
		t.Fatal(err)
	}
	v := a.Version()
	res2, err := a.Apply(f, 100)
	if err != nil {
		t.Fatal(err)
	}
	if a.Version() != v {
		t.Fatal("retransmit mutated the mirrors")
	}
	if !reflect.DeepEqual(res1.Acks, res2.Acks) {
		t.Fatalf("retransmit acks differ: %+v vs %+v", res1.Acks, res2.Acks)
	}
	if fmt.Sprint(res2.Acks[0].Action) != AckApplied {
		t.Fatalf("retransmit ack action %q", res2.Acks[0].Action)
	}
}
