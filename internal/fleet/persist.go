package fleet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"daccor/internal/core"
)

// Aggregator state persistence: aggregatord checkpoints its mirrors so
// a restart serves the fleet view immediately instead of waiting a
// full sync round per collector. The format rides the checkpoint
// store's crash-safety (temp+fsync+rename); this file only defines the
// payload.
//
//	"DFAG" u16 version
//	u32 nCollectors, then per collector:
//	  string id | i64 lastSyncUnixNano | u64 instance | u64 lastSeq |
//	  u32 nDevices
//	  per device: string id | u64 epoch | snapshot records
//
// Epochs, instance, and lastSeq are preserved so a collector that kept
// running across our restart can continue delta-syncing against the
// restored mirrors instead of being forced through anti-entropy.

const (
	stateMagic   = "DFAG"
	stateVersion = 1
)

// ErrBadState reports a state payload that failed validation.
var ErrBadState = errors.New("fleet: invalid aggregator state")

// WriteTo serializes the mirrors; it implements io.WriterTo so an
// Aggregator can be handed straight to checkpoint.Store.Save.
func (a *Aggregator) WriteTo(w io.Writer) (int64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	cw := &countWriter{w: w}
	bw := bufio.NewWriter(cw)
	bw.WriteString(stateMagic)
	var b [8]byte
	binary.LittleEndian.PutUint16(b[:2], stateVersion)
	bw.Write(b[:2])
	binary.LittleEndian.PutUint32(b[:4], uint32(len(a.collectors)))
	bw.Write(b[:4])
	for id, m := range a.collectors {
		if err := writeString(bw, id, MaxCollectorID); err != nil {
			return cw.n, err
		}
		binary.LittleEndian.PutUint64(b[:], uint64(m.lastSync.UnixNano()))
		bw.Write(b[:])
		binary.LittleEndian.PutUint64(b[:], m.instance)
		bw.Write(b[:])
		binary.LittleEndian.PutUint64(b[:], m.lastSeq)
		bw.Write(b[:])
		binary.LittleEndian.PutUint32(b[:4], uint32(len(m.devices)))
		bw.Write(b[:4])
		for dev, dm := range m.devices {
			if err := writeString(bw, dev, MaxDeviceID); err != nil {
				return cw.n, err
			}
			binary.LittleEndian.PutUint64(b[:], dm.epoch)
			bw.Write(b[:])
			if _, err := core.EncodeSnapshotRecords(bw, dm.snap); err != nil {
				return cw.n, err
			}
		}
	}
	err := bw.Flush()
	return cw.n, err
}

// LoadState replaces the aggregator's mirrors with a previously
// serialized state. Meant for startup (before serving); it validates
// fully before touching the aggregator, so a torn checkpoint leaves
// the mirrors unchanged and the caller falls back to an older
// generation.
func (a *Aggregator) LoadState(r io.Reader) error {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("%w: short magic: %v", ErrBadState, err)
	}
	if string(magic[:]) != stateMagic {
		return fmt.Errorf("%w: bad magic %q", ErrBadState, magic)
	}
	var b [8]byte
	if _, err := io.ReadFull(br, b[:2]); err != nil {
		return fmt.Errorf("%w: short version: %v", ErrBadState, err)
	}
	if v := binary.LittleEndian.Uint16(b[:2]); v != stateVersion {
		return fmt.Errorf("%w: unsupported version %d", ErrBadState, v)
	}
	if _, err := io.ReadFull(br, b[:4]); err != nil {
		return fmt.Errorf("%w: short collector count: %v", ErrBadState, err)
	}
	nc := binary.LittleEndian.Uint32(b[:4])
	if nc > MaxFrameSections {
		return fmt.Errorf("%w: %d collectors exceeds limit %d", ErrBadState, nc, MaxFrameSections)
	}
	loaded := make(map[string]*collectorMirror, nc)
	for i := uint32(0); i < nc; i++ {
		id, err := readString(br, MaxCollectorID)
		if err != nil {
			return fmt.Errorf("%w: collector %d id: %v", ErrBadState, i, err)
		}
		if id == "" {
			return fmt.Errorf("%w: collector %d: empty id", ErrBadState, i)
		}
		if _, dup := loaded[id]; dup {
			return fmt.Errorf("%w: duplicate collector %q", ErrBadState, id)
		}
		m := &collectorMirror{devices: make(map[string]*deviceMirror)}
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return fmt.Errorf("%w: collector %q last sync: %v", ErrBadState, id, err)
		}
		m.lastSync = time.Unix(0, int64(binary.LittleEndian.Uint64(b[:])))
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return fmt.Errorf("%w: collector %q instance: %v", ErrBadState, id, err)
		}
		m.instance = binary.LittleEndian.Uint64(b[:])
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return fmt.Errorf("%w: collector %q last seq: %v", ErrBadState, id, err)
		}
		m.lastSeq = binary.LittleEndian.Uint64(b[:])
		if _, err := io.ReadFull(br, b[:4]); err != nil {
			return fmt.Errorf("%w: collector %q device count: %v", ErrBadState, id, err)
		}
		nd := binary.LittleEndian.Uint32(b[:4])
		if nd > MaxFrameSections {
			return fmt.Errorf("%w: collector %q: %d devices exceeds limit %d", ErrBadState, id, nd, MaxFrameSections)
		}
		for j := uint32(0); j < nd; j++ {
			dev, err := readString(br, MaxDeviceID)
			if err != nil {
				return fmt.Errorf("%w: collector %q device %d id: %v", ErrBadState, id, j, err)
			}
			if dev == "" {
				return fmt.Errorf("%w: collector %q device %d: empty id", ErrBadState, id, j)
			}
			if _, dup := m.devices[dev]; dup {
				return fmt.Errorf("%w: collector %q: duplicate device %q", ErrBadState, id, dev)
			}
			if _, err := io.ReadFull(br, b[:]); err != nil {
				return fmt.Errorf("%w: device %q epoch: %v", ErrBadState, dev, err)
			}
			dm := &deviceMirror{epoch: binary.LittleEndian.Uint64(b[:])}
			if dm.snap, err = core.DecodeSnapshotRecords(br); err != nil {
				return fmt.Errorf("%w: device %q snapshot: %v", ErrBadState, dev, err)
			}
			m.devices[dev] = dm
		}
		loaded[id] = m
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return fmt.Errorf("%w: trailing bytes", ErrBadState)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return ErrClosed
	}
	a.collectors = loaded
	// The merge index describes the replaced mirrors; rebuild it from
	// the loaded ones. Failed-collector exclusions are recomputed on
	// the next merged read from the restored lastSync stamps.
	idx := core.NewMergeIndex()
	for id, m := range loaded {
		for dev, dm := range m.devices {
			idx.Update(mirrorKey(id, dev), dm.snap)
		}
	}
	a.idxMu.Lock()
	a.idx = idx
	a.idxExcluded = make(map[string]bool)
	a.idxMu.Unlock()
	a.bumpLocked()
	return nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
