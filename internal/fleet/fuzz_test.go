package fleet

import (
	"bytes"
	"testing"

	"daccor/internal/blktrace"
	"daccor/internal/core"
)

// FuzzDeltaDecode hammers DecodeFrame with hostile bytes. The decoder
// guards the aggregator's only write path, so the contract is strict:
// any input either decodes to a frame that re-encodes to the same
// bytes, or errors — it never panics and never allocates
// proportionally to a length field it has not validated.
func FuzzDeltaDecode(f *testing.F) {
	// Seed with valid frames of every section kind so mutation explores
	// the deep decode paths, not just the magic check.
	seedFrames := []Frame{
		{Collector: "c0", Instance: 7, Seq: 1},
		{Collector: "c0", Instance: 7, Seq: 2, Sections: []Section{
			{Device: "sda", Kind: SectionFull, Epoch: 3, Snap: core.Snapshot{
				Items: []core.ItemCount{{Extent: blktrace.Extent{Block: 8, Len: 1}, Count: 9, Tier: 2}},
				Pairs: []core.PairCount{{
					Pair:  blktrace.MakePair(blktrace.Extent{Block: 8, Len: 1}, blktrace.Extent{Block: 16, Len: 1}),
					Count: 4,
				}},
			}},
		}},
		{Collector: "c1", Instance: 1, Seq: 9, Sections: []Section{
			{Device: "sdb", Kind: SectionDelta, BaseEpoch: 2, Epoch: 5, Delta: core.SnapshotDelta{
				UpsertItems: []core.ItemCount{{Extent: blktrace.Extent{Block: 24, Len: 1}, Count: 2, Tier: 1}},
				DeleteItems: []blktrace.Extent{{Block: 8, Len: 1}},
			}},
			{Device: "sdc", Kind: SectionRemove},
		}},
	}
	for _, fr := range seedFrames {
		var buf bytes.Buffer
		if err := EncodeFrame(&buf, fr); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// Seed known-bad shapes so the corpus starts on the rejection
	// paths: truncation, a duplicate device, an epoch regression.
	// EncodeFrame frames sections as given without cross-validating
	// them, so it can produce these on purpose.
	bad := []Frame{
		{Collector: "c0", Instance: 1, Seq: 3, Sections: []Section{
			{Device: "sdc", Kind: SectionRemove}, {Device: "sdc", Kind: SectionRemove},
		}},
		{Collector: "c0", Instance: 1, Seq: 4, Sections: []Section{
			{Device: "sdb", Kind: SectionDelta, BaseEpoch: 5, Epoch: 5},
		}},
	}
	for _, fr := range bad {
		var buf bytes.Buffer
		if err := EncodeFrame(&buf, fr); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	var trunc bytes.Buffer
	if err := EncodeFrame(&trunc, seedFrames[1]); err != nil {
		f.Fatal(err)
	}
	f.Add(trunc.Bytes()[:trunc.Len()-3])

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := DecodeFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input must round-trip bit-exactly: decode is the
		// inverse of encode on everything it admits.
		var buf bytes.Buffer
		if err := EncodeFrame(&buf, fr); err != nil {
			t.Fatalf("decoded frame failed to re-encode: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), data) {
			t.Fatalf("round-trip mismatch:\nin  %x\nout %x", data, buf.Bytes())
		}
		// Every invariant DecodeFrame promises must hold on its output.
		seen := make(map[string]bool, len(fr.Sections))
		for _, s := range fr.Sections {
			if s.Device == "" || seen[s.Device] {
				t.Fatalf("accepted frame with empty or duplicate device %q", s.Device)
			}
			seen[s.Device] = true
			if s.Kind == SectionDelta && s.Epoch <= s.BaseEpoch {
				t.Fatalf("accepted delta with epoch regression: base %d epoch %d", s.BaseEpoch, s.Epoch)
			}
		}
	})
}
