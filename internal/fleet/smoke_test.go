package fleet

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"daccor/internal/checkpoint"
	"daccor/internal/core"
	"daccor/internal/engine"
	"daccor/internal/monitor"
)

// TestFleetSmoke is the end-to-end drill behind `make fleet-smoke`:
// one aggregator and two collectors on real clocks, real HTTP, and
// real periodic sync loops. One collector is killed mid-stream with
// unsynced events in its engine; the fleet keeps serving 200s and
// reports itself degraded; the collector restarts from its checkpoint
// and the fleet re-converges on the merged state of both engines.
func TestFleetSmoke(t *testing.T) {
	// Short lease so the killed collector visibly degrades within the
	// test's patience; FailAfter is kept huge so its stale mirror keeps
	// serving instead of dropping out.
	agg := NewAggregator(Config{Lease: 300 * time.Millisecond, FailAfter: time.Hour})
	srv := httptest.NewServer(NewHandler(agg))
	defer srv.Close()

	ckptDir := t.TempDir()
	newCollector := func(dev string) *engine.Engine {
		store, err := checkpoint.Open(checkpoint.Config{Dir: ckptDir})
		if err != nil {
			t.Fatal(err)
		}
		e, err := engine.New(
			engine.WithMonitor(monitor.Config{Window: monitor.StaticWindow(10 * time.Millisecond)}),
			engine.WithAnalyzer(core.Config{ItemCapacity: 4096, PairCapacity: 4096}),
			engine.WithDevices(dev),
			engine.WithCheckpoints(store, time.Hour),
		)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	newClient := func(id string, e *engine.Engine) *SyncClient {
		c, err := NewSyncClient(ClientConfig{
			Aggregator:  srv.URL,
			Collector:   id,
			Engine:      e,
			Interval:    20 * time.Millisecond,
			MaxAttempts: 3,
			BackoffBase: time.Millisecond,
			BackoffCap:  5 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		c.Start()
		return c
	}

	waitConverged := func(engines ...*engine.Engine) {
		t.Helper()
		want := fleetMerge(t, engines...)
		deadline := time.Now().Add(10 * time.Second)
		for !reflect.DeepEqual(agg.MergedSnapshot(0), want) {
			if time.Now().After(deadline) {
				requireConverged(t, agg, engines...) // fails with the diff
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	get := func(path string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var env struct {
			Data map[string]any `json:"data"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, env.Data
	}
	fleetStatus := func(data map[string]any) string {
		fl, _ := data["fleet"].(map[string]any)
		s, _ := fl["status"].(string)
		return s
	}

	// Two collectors stream live I/O and sync on their own loops.
	e0 := newCollector("volA")
	defer e0.Stop()
	c0 := newClient("c0", e0)
	defer c0.Close()
	e1 := newCollector("volB")
	c1 := newClient("c1", e1)

	feedKeys(t, e0, "volA", 900, 1, 64)
	feedKeys(t, e1, "volB", 900, 2, 64)
	waitConverged(e0, e1)
	if code, data := get("/v1/snapshot?support=1"); code != 200 || fleetStatus(data) != "ok" {
		t.Fatalf("healthy fleet read: code %d, status %q", code, fleetStatus(data))
	}

	// Kill collector 1 mid-stream: fresh events land in its engine,
	// then the client dies before shipping them and the engine stops,
	// writing its final checkpoint.
	feedKeys(t, e1, "volB", 200, 2, 4)
	c1.Close()
	e1.Stop()

	// Past the lease the fleet is degraded — and still answering 200s
	// with collector 0's fresh data merged against the stale mirror.
	time.Sleep(400 * time.Millisecond)
	code, data := get("/v1/snapshot?support=1")
	if code != 200 {
		t.Fatalf("degraded fleet must keep serving, got %d", code)
	}
	if s := fleetStatus(data); s != "degraded" {
		t.Fatalf("fleet status = %q, want degraded", s)
	}
	if code, _ := get("/v1/healthz"); code != 200 {
		t.Fatalf("healthz during partition = %d, want 200", code)
	}

	// Restart collector 1 from its checkpoint with a fresh client. The
	// restored engine holds the events the dead client never shipped;
	// the fleet must converge on them and report healthy again.
	e1b := newCollector("volB")
	defer e1b.Stop()
	c1b := newClient("c1", e1b)
	defer c1b.Close()

	waitConverged(e0, e1b)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, data := get("/v1/snapshot?support=1"); fleetStatus(data) == "ok" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("fleet did not return to ok after collector restart")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
