package fleet

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"daccor/internal/blktrace"
	"daccor/internal/core"
)

// The aggregator's merged view is incrementally maintained: Apply
// feeds each section straight into the merge index and reads
// materialize it, so the from-scratch answer — core.MergeSnapshots
// over the live mirrors — is never computed in production. This suite
// recomputes it after every mutation and demands equality, across
// deltas, fulls (anti-entropy repairs), removes, retransmits, failed
// collectors, recovery, and state restore.

type fleetModel struct {
	t   *testing.T
	a   *Aggregator
	clk *fakeClock
	rng *rand.Rand
	// mirrors is what each collector's device mirror must hold now.
	mirrors map[string]map[string]core.Snapshot
	epochs  map[string]map[string]uint64
	seqs    map[string]uint64
}

func newFleetModel(t *testing.T, cfg Config) *fleetModel {
	clk := newFakeClock()
	return &fleetModel{
		t: t, a: newAggregatorAt(cfg, clk), clk: clk,
		rng:     rand.New(rand.NewSource(23)),
		mirrors: make(map[string]map[string]core.Snapshot),
		epochs:  make(map[string]map[string]uint64),
		seqs:    make(map[string]uint64),
	}
}

// genSnap builds a random canonical snapshot over a small shared
// keyspace; counts occasionally sit near the uint32 ceiling so merged
// sums saturate.
func (m *fleetModel) genSnap() core.Snapshot {
	ext := func(i int) blktrace.Extent { return blktrace.Extent{Block: uint64(i) * 8, Len: 8} }
	var s core.Snapshot
	count := func() uint32 {
		if m.rng.Intn(8) == 0 {
			return math.MaxUint32 - uint32(m.rng.Intn(100))
		}
		return 1 + uint32(m.rng.Intn(500))
	}
	tier := func() core.Tier {
		if m.rng.Intn(3) == 0 {
			return core.Tier2
		}
		return core.Tier1
	}
	for i, n := 0, m.rng.Intn(12); i < n; i++ {
		s.Items = append(s.Items, core.ItemCount{Extent: ext(m.rng.Intn(16)), Count: count(), Tier: tier()})
	}
	for i, n := 0, m.rng.Intn(12); i < n; i++ {
		a, b := m.rng.Intn(16), m.rng.Intn(16)
		if a == b {
			continue
		}
		s.Pairs = append(s.Pairs, core.PairCount{Pair: blktrace.MakePair(ext(a), ext(b)), Count: count(), Tier: tier()})
	}
	// MergeSnapshots canonicalizes: duplicate keys collapse (summed),
	// output sorted and nil-normalized.
	return core.MergeSnapshots(s)
}

func (m *fleetModel) apply(f Frame) SyncResult {
	m.t.Helper()
	res, err := m.a.Apply(f, 100)
	if err != nil {
		m.t.Fatal(err)
	}
	return res
}

func (m *fleetModel) nextSeq(c string) uint64 {
	m.seqs[c]++
	return m.seqs[c]
}

func (m *fleetModel) full(c, dev string) {
	m.t.Helper()
	snap := m.genSnap()
	if m.mirrors[c] == nil {
		m.mirrors[c] = make(map[string]core.Snapshot)
		m.epochs[c] = make(map[string]uint64)
	}
	m.epochs[c][dev]++
	m.apply(Frame{Collector: c, Instance: 1, Seq: m.nextSeq(c), Sections: []Section{
		{Device: dev, Kind: SectionFull, Epoch: m.epochs[c][dev], Snap: snap},
	}})
	m.mirrors[c][dev] = snap
}

func (m *fleetModel) delta(c, dev string) {
	m.t.Helper()
	prev, ok := m.mirrors[c][dev]
	if !ok {
		m.full(c, dev)
		return
	}
	next := m.genSnap()
	base := m.epochs[c][dev]
	m.epochs[c][dev]++
	res := m.apply(Frame{Collector: c, Instance: 1, Seq: m.nextSeq(c), Sections: []Section{
		{Device: dev, Kind: SectionDelta, BaseEpoch: base, Epoch: m.epochs[c][dev],
			Delta: core.DiffSnapshots(prev, next)},
	}})
	if res.Acks[0].Action != AckApplied {
		m.t.Fatalf("delta for %s/%s not applied: %+v", c, dev, res.Acks[0])
	}
	m.mirrors[c][dev] = next
}

func (m *fleetModel) remove(c, dev string) {
	m.t.Helper()
	m.apply(Frame{Collector: c, Instance: 1, Seq: m.nextSeq(c), Sections: []Section{
		{Device: dev, Kind: SectionRemove},
	}})
	delete(m.mirrors[c], dev)
	delete(m.epochs[c], dev)
}

func (m *fleetModel) heartbeat(c string) {
	m.t.Helper()
	m.apply(Frame{Collector: c, Instance: 1, Seq: m.nextSeq(c)})
}

// check asserts the incremental merged view equals the from-scratch
// merge over the live mirrors, at several supports, plus the top-K
// rules identity.
func (m *fleetModel) check() {
	m.t.Helper()
	var snaps []core.Snapshot
	for _, cs := range m.a.Collectors() {
		if cs.State == Failed {
			continue
		}
		for _, snap := range m.mirrors[cs.ID] {
			snaps = append(snaps, snap)
		}
	}
	want := core.MergeSnapshots(snaps...)
	for _, minSupport := range []uint32{0, 3} {
		got := m.a.MergedSnapshot(minSupport)
		if !reflect.DeepEqual(got, want.FilterSupport(minSupport)) {
			m.t.Fatalf("merged view (support %d) diverged from scratch merge: %d/%d pairs/items, want %d/%d",
				minSupport, len(got.Pairs), len(got.Items),
				len(want.FilterSupport(minSupport).Pairs), len(want.FilterSupport(minSupport).Items))
		}
	}
	full := m.a.Rules(2, 0.1)
	top := m.a.TopRules(2, 0.1, 4)
	wantTop := full
	if len(wantTop) > 4 {
		wantTop = wantTop[:4]
	}
	if !reflect.DeepEqual(top, wantTop) {
		m.t.Fatalf("TopRules != Rules[:4] (%d vs %d rules)", len(top), len(wantTop))
	}
}

func TestAggregatorIncrementalEqualsScratch(t *testing.T) {
	m := newFleetModel(t, Config{Lease: time.Second, FailAfter: 3 * time.Second})
	collectors := []string{"c0", "c1", "c2"}
	devices := []string{"vol0", "vol1"}
	for _, c := range collectors {
		for _, d := range devices {
			m.full(c, d)
			m.check()
		}
	}
	for round := 0; round < 60; round++ {
		c := collectors[m.rng.Intn(len(collectors))]
		d := devices[m.rng.Intn(len(devices))]
		switch m.rng.Intn(10) {
		case 0:
			m.full(c, d) // periodic anti-entropy style refresh
		case 1:
			m.remove(c, d)
		default:
			m.delta(c, d)
		}
		m.check()
	}

	// A delta that names the right base but cannot patch the mirror is
	// the anti-entropy trigger: rejected with full_required, no
	// mutation anywhere; the repair full then reconciles the union.
	c, d := "c0", "vol0"
	if _, ok := m.mirrors[c][d]; !ok {
		m.full(c, d)
	}
	bogus := core.SnapshotDelta{DeleteItems: []blktrace.Extent{{Block: 1 << 40, Len: 8}}}
	res := m.apply(Frame{Collector: c, Instance: 1, Seq: m.nextSeq(c), Sections: []Section{
		{Device: d, Kind: SectionDelta, BaseEpoch: m.epochs[c][d], Epoch: m.epochs[c][d] + 1, Delta: bogus},
	}})
	if res.Acks[0].Action != AckFullRequired {
		t.Fatalf("unappliable delta: got %+v, want full_required", res.Acks[0])
	}
	m.check()
	m.full(c, d) // the repair
	m.check()

	// Retransmit: replaying the previous frame must not disturb the
	// union (stale seq, recomputed acks only).
	prev := m.mirrors["c1"]["vol1"]
	m.apply(Frame{Collector: "c1", Instance: 1, Seq: m.seqs["c1"], Sections: []Section{
		{Device: "vol1", Kind: SectionFull, Epoch: 1, Snap: m.genSnap()},
	}})
	if !reflect.DeepEqual(m.mirrors["c1"]["vol1"], prev) {
		t.Fatal("model corrupted")
	}
	m.check()

	// Failure replays a collector's sources out of the merged view with
	// no version bump; its next frame folds the current mirrors back in.
	m.heartbeat("c0")
	m.heartbeat("c1")
	m.clk.Advance(2 * time.Second) // c2 degraded: still merged
	m.heartbeat("c0")
	m.heartbeat("c1")
	m.check()
	m.clk.Advance(2 * time.Second) // c2 over FailAfter: excluded
	m.heartbeat("c0")
	m.heartbeat("c1")
	m.check()
	m.heartbeat("c2") // back alive: mirrors re-fed unchanged
	m.check()
	m.clk.Advance(4 * time.Second) // everyone failed
	m.check()
	for _, c := range collectors { // recovery via live sections
		m.delta(c, "vol0")
	}
	m.check()

	// State restore must rebuild the index: a restored aggregator's
	// merged view equals the saved one's.
	var buf bytes.Buffer
	if _, err := m.a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := newAggregatorAt(Config{Lease: time.Second, FailAfter: 3 * time.Second}, m.clk)
	if err := b.LoadState(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got, want := b.MergedSnapshot(0), m.a.MergedSnapshot(0); !reflect.DeepEqual(got, want) {
		t.Fatalf("restored merged view diverged: %d pairs, want %d", len(got.Pairs), len(want.Pairs))
	}
	// And the restored index must keep tracking deltas.
	restored := &fleetModel{t: t, a: b, clk: m.clk, rng: m.rng,
		mirrors: m.mirrors, epochs: m.epochs, seqs: m.seqs}
	for _, c := range collectors {
		restored.delta(c, "vol1")
		restored.check()
	}
}

// TestFilterSupportNoCopy pins the suffix-cut support filter: the
// support<=1 fast path must not allocate or copy.
func TestFilterSupportNoCopy(t *testing.T) {
	s := sampleSnapshot()
	if got := filterSupport(s, 0); &got.Pairs[0] != &s.Pairs[0] || &got.Items[0] != &s.Items[0] {
		t.Fatal("filterSupport(0) copied the slices")
	}
	if allocs := testing.AllocsPerRun(100, func() { filterSupport(s, 0) }); allocs > 0 {
		t.Errorf("filterSupport(0) allocates %.0f times, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { filterSupport(s, 5) }); allocs > 0 {
		t.Errorf("filterSupport(5) allocates %.0f times, want 0", allocs)
	}
}
