package spacesaving

import (
	"math/rand"
	"testing"
	"testing/quick"

	"daccor/internal/blktrace"
)

func pr(a, b uint64) blktrace.Pair {
	return blktrace.MakePair(
		blktrace.Extent{Block: a, Len: 1},
		blktrace.Extent{Block: b, Len: 1},
	)
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("want error for k=0")
	}
}

func TestExactWhenUnderCapacity(t *testing.T) {
	s, err := New(10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		s.Offer(pr(1, 2))
	}
	for i := 0; i < 3; i++ {
		s.Offer(pr(3, 4))
	}
	top := s.Top(0)
	if len(top) != 2 {
		t.Fatalf("top = %d entries", len(top))
	}
	if top[0].Pair != pr(1, 2) || top[0].Count != 7 || top[0].Err != 0 {
		t.Errorf("top[0] = %+v", top[0])
	}
	if top[1].Count != 3 || top[1].Err != 0 {
		t.Errorf("top[1] = %+v", top[1])
	}
}

func TestReplacementInheritsError(t *testing.T) {
	s, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	s.Offer(pr(1, 2))
	s.Offer(pr(1, 2)) // count 2
	s.Offer(pr(3, 4)) // replaces: count 3, err 2
	top := s.Top(0)
	if len(top) != 1 || top[0].Pair != pr(3, 4) {
		t.Fatalf("top = %+v", top)
	}
	if top[0].Count != 3 || top[0].Err != 2 {
		t.Errorf("entry = %+v, want count 3 err 2", top[0])
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestHeavyHitterSurvivesNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s, err := New(64)
	if err != nil {
		t.Fatal(err)
	}
	hot := pr(7, 8)
	for i := 0; i < 5000; i++ {
		if i%4 == 0 {
			s.Offer(hot)
		}
		s.Offer(pr(uint64(rng.Intn(100000)), uint64(100000+rng.Intn(100000))))
	}
	if _, ok := s.PairSet(500)[hot]; !ok {
		t.Error("heavy hitter lost")
	}
}

// Space-Saving guarantee: for any monitored pair, trueCount is within
// [Count-Err, Count]; and any pair with true count > N/k is monitored.
func TestGuaranteesQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 4 + rng.Intn(12)
		s, err := New(k)
		if err != nil {
			return false
		}
		truth := map[blktrace.Pair]uint64{}
		n := uint64(0)
		// Skewed stream over a small universe.
		for i := 0; i < 2000; i++ {
			a := uint64(rng.Intn(8))
			b := uint64(8 + rng.Intn(8))
			if rng.Intn(3) == 0 { // extra skew
				a, b = 0, 8
			}
			p := pr(a, b)
			s.Offer(p)
			truth[p]++
			n++
		}
		for _, e := range s.Top(0) {
			tc := truth[e.Pair]
			if tc > e.Count || e.Count-e.Err > tc {
				return false
			}
		}
		// Coverage guarantee.
		for p, tc := range truth {
			if tc > n/uint64(k) {
				if _, ok := s.PairSet(0)[p]; !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestProcessExpandsPairs(t *testing.T) {
	s, err := New(16)
	if err != nil {
		t.Fatal(err)
	}
	s.Process([]blktrace.Extent{
		{Block: 1, Len: 1}, {Block: 2, Len: 1}, {Block: 3, Len: 1},
	})
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3 pairs from a 3-extent transaction", s.Len())
	}
}

// The design contrast with the paper's synopsis: after a workload
// shift, Space-Saving's old giants linger at the top.
func TestNoRecency(t *testing.T) {
	s, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	old := pr(1, 2)
	for i := 0; i < 1000; i++ {
		s.Offer(old)
	}
	// New concept: many moderately hot pairs.
	for i := 0; i < 100; i++ {
		for j := uint64(0); j < 4; j++ {
			s.Offer(pr(100+j, 200+j))
		}
	}
	top := s.Top(0)
	if top[0].Pair != old {
		t.Error("expected the stale giant to still dominate (frequency-only design)")
	}
}
