// Package spacesaving implements the Space-Saving heavy-hitter
// algorithm (Metwally, Agrawal & El Abbadi, ICDT 2005) over extent
// pairs. It is the canonical frequency-only stream summary: k counters,
// exact for the head of a skewed distribution, with bounded
// overestimation error.
//
// As a baseline it isolates one design question of the paper's
// synopsis: Space-Saving keeps *frequency* but has no notion of
// *recency*, so once a pattern earns large counters it lingers after
// the workload moves on — exactly what the concept-drift experiment
// punishes and the two-tier LRU design handles.
package spacesaving

import (
	"fmt"
	"sort"

	"daccor/internal/blktrace"
)

type ssEntry struct {
	pair  blktrace.Pair
	count uint64
	err   uint64 // overestimation bound inherited at replacement
	idx   int    // heap index
}

// Summary is a Space-Saving summary over extent pairs. Not safe for
// concurrent use.
type Summary struct {
	capacity int
	index    map[blktrace.Pair]*ssEntry
	heap     []*ssEntry // min-heap by count
}

// New returns a summary with k counters.
func New(k int) (*Summary, error) {
	if k < 1 {
		return nil, fmt.Errorf("spacesaving: k must be >= 1 (got %d)", k)
	}
	return &Summary{
		capacity: k,
		index:    make(map[blktrace.Pair]*ssEntry, k),
	}, nil
}

// heap helpers (min-heap on count).

func (s *Summary) less(i, j int) bool { return s.heap[i].count < s.heap[j].count }

func (s *Summary) swap(i, j int) {
	s.heap[i], s.heap[j] = s.heap[j], s.heap[i]
	s.heap[i].idx = i
	s.heap[j].idx = j
}

func (s *Summary) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s.swap(i, parent)
		i = parent
	}
}

func (s *Summary) down(i int) {
	n := len(s.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && s.less(l, smallest) {
			smallest = l
		}
		if r < n && s.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		s.swap(i, smallest)
		i = smallest
	}
}

// Offer records one occurrence of the pair. A monitored pair's counter
// increments; an unmonitored pair replaces the minimum counter,
// inheriting its count as the overestimation bound.
func (s *Summary) Offer(p blktrace.Pair) {
	if e, ok := s.index[p]; ok {
		e.count++
		s.down(e.idx)
		return
	}
	if len(s.heap) < s.capacity {
		e := &ssEntry{pair: p, count: 1, idx: len(s.heap)}
		s.heap = append(s.heap, e)
		s.index[p] = e
		s.up(e.idx)
		return
	}
	// Replace the minimum.
	min := s.heap[0]
	delete(s.index, min.pair)
	min.pair = p
	min.err = min.count
	min.count++
	s.index[p] = min
	s.down(0)
}

// Process offers every unique pair of a transaction's extents.
func (s *Summary) Process(extents []blktrace.Extent) {
	for i := 0; i < len(extents); i++ {
		for j := i + 1; j < len(extents); j++ {
			s.Offer(blktrace.MakePair(extents[i], extents[j]))
		}
	}
}

// PairCount is one monitored pair with its (over)estimate and error
// bound: the true count lies in [Count-Err, Count].
type PairCount struct {
	Pair  blktrace.Pair
	Count uint64
	Err   uint64
}

// Top returns monitored pairs with Count >= minCount, sorted by
// descending count (ties by pair order).
func (s *Summary) Top(minCount uint64) []PairCount {
	out := make([]PairCount, 0, len(s.heap))
	for _, e := range s.heap {
		if e.count >= minCount {
			out = append(out, PairCount{Pair: e.pair, Count: e.count, Err: e.err})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		pi, pj := out[i].Pair, out[j].Pair
		if pi.A != pj.A {
			return pi.A.Less(pj.A)
		}
		return pi.B.Less(pj.B)
	})
	return out
}

// PairSet returns the monitored pairs with Count >= minCount as a set.
func (s *Summary) PairSet(minCount uint64) map[blktrace.Pair]struct{} {
	out := make(map[blktrace.Pair]struct{}, len(s.heap))
	for _, e := range s.heap {
		if e.count >= minCount {
			out[e.pair] = struct{}{}
		}
	}
	return out
}

// Len returns the number of monitored pairs.
func (s *Summary) Len() int { return len(s.heap) }
