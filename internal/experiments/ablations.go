package experiments

import (
	"fmt"
	"io"
	"time"

	"daccor/internal/analysis"
	"daccor/internal/blktrace"
	"daccor/internal/core"
	"daccor/internal/device"
	"daccor/internal/estdec"
	"daccor/internal/fim"
	"daccor/internal/monitor"
	"daccor/internal/msr"
	"daccor/internal/pipeline"
	"daccor/internal/replay"
	"daccor/internal/workload"
)

// WindowRow is one transaction-window policy's outcome on the synthetic
// detection task.
type WindowRow struct {
	Policy       string
	Detected     int // planted pairs found at support >= 5 (of Planted)
	SupportSum   uint32
	Transactions uint64
}

// WindowAblation (A1) compares static transaction windows against the
// paper's dynamic 2×-average-latency window on the many-to-many
// synthetic workload replayed on the simulated NVMe device.
type WindowAblation struct {
	Planted int
	Rows    []WindowRow
}

// AblationWindow runs the window-policy sweep.
func AblationWindow(cfg Config) (*WindowAblation, error) {
	cfg = cfg.withDefaults()
	syn, err := workload.Generate(workload.SyntheticConfig{
		Kind:        workload.ManyToMany,
		Occurrences: cfg.scaled(1500),
		Seed:        cfg.Seed + 11,
	})
	if err != nil {
		return nil, err
	}
	type policy struct {
		name string
		mk   func() (monitor.WindowPolicy, error)
	}
	static := func(d time.Duration) func() (monitor.WindowPolicy, error) {
		return func() (monitor.WindowPolicy, error) { return monitor.StaticWindow(d), nil }
	}
	policies := []policy{
		{"static 1 µs (too small)", static(time.Microsecond)},
		{"static 100 µs", static(100 * time.Microsecond)},
		{"static 10 ms", static(10 * time.Millisecond)},
		{"static 1 s (too large)", static(time.Second)},
		{"dynamic 2×avg latency (paper)", func() (monitor.WindowPolicy, error) {
			return monitor.NewDynamicWindow(20*time.Microsecond, 100*time.Millisecond)
		}},
	}
	res := &WindowAblation{Planted: len(syn.Correlations)}
	for _, pol := range policies {
		win, err := pol.mk()
		if err != nil {
			return nil, err
		}
		dev, err := device.New(device.NVMeSSD(), cfg.Seed)
		if err != nil {
			return nil, err
		}
		pipe, _, err := pipeline.AnalyzeReplay(syn.Trace, dev, replay.Options{},
			pipeline.Config{
				Monitor:  monitor.Config{Window: win},
				Analyzer: core.Config{ItemCapacity: 8192, PairCapacity: 8192},
			})
		if err != nil {
			return nil, err
		}
		row := WindowRow{Policy: pol.name, Transactions: pipe.Monitor().Stats().Transactions}
		counts := pipe.Snapshot(5).PairCounts()
		for _, c := range syn.Correlations {
			if got, ok := counts[c.Pairs()[0]]; ok {
				row.Detected++
				row.SupportSum += got
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render writes the window sweep.
func (r *WindowAblation) Render(w io.Writer) {
	fprintf(w, "ABLATION A1: Transaction window policy (many-to-many synthetic)\n\n")
	fprintf(w, "%-30s %10s %12s %13s\n", "policy", "detected", "support sum", "transactions")
	for _, row := range r.Rows {
		fprintf(w, "%-30s %7d/%-2d %12d %13d\n",
			row.Policy, row.Detected, r.Planted, row.SupportSum, row.Transactions)
	}
	fprintf(w, "\ntoo small a window splits correlated requests; too large merges\n")
	fprintf(w, "unrelated ones into capped transactions. The dynamic window tracks\n")
	fprintf(w, "device latency into the working region without manual tuning.\n")
}

// CapRow is one transaction-cap setting's cost/accuracy point.
type CapRow struct {
	Cap         int
	PairTouches uint64
	Recall      float64
	CapSplits   uint64
}

// CapAblation (A2) sweeps the transaction-size cap on a real-world-like
// workload: cost is quadratic in the cap, while detection saturates.
type CapAblation struct {
	Support int
	Rows    []CapRow
}

// AblationCap runs the cap sweep on the wdev-like trace.
func AblationCap(cfg Config) (*CapAblation, error) {
	cfg = cfg.withDefaults()
	p, err := msr.ProfileByName("wdev")
	if err != nil {
		return nil, err
	}
	gen, err := p.Generate(cfg.scaled(p.DefaultRequests), cfg.Seed)
	if err != nil {
		return nil, err
	}
	window := monitor.Config{Window: monitor.StaticWindow(100 * time.Microsecond)}

	// Reference truth: frequent pairs with a generous cap.
	refCfg := window
	refCfg.MaxRequests = 64
	refTx, err := monitor.Collect(gen.Trace, refCfg)
	if err != nil {
		return nil, err
	}
	ds := fim.NewDataset(extentSets(refTx))
	truth := analysis.FrequentSet(ds.PairFrequencies(), cfg.Support)

	res := &CapAblation{Support: cfg.Support}
	for _, cap := range []int{2, 4, 8, 16, 32} {
		mCfg := window
		mCfg.MaxRequests = cap
		var splits uint64
		a, err := core.NewAnalyzer(core.Config{ItemCapacity: cfg.scaled(32 * 1024), PairCapacity: cfg.scaled(32 * 1024)})
		if err != nil {
			return nil, err
		}
		mon, err := monitor.New(mCfg, func(tx monitor.Transaction) { a.Process(tx.Extents) })
		if err != nil {
			return nil, err
		}
		if err := mon.Run(gen.Trace.Source()); err != nil {
			return nil, err
		}
		splits = mon.Stats().CapSplits
		online := a.Snapshot(uint32(cfg.Support)).PairSet()
		res.Rows = append(res.Rows, CapRow{
			Cap:         cap,
			PairTouches: a.Stats().PairTouches,
			Recall:      analysis.DetectionPRF(online, truth).Recall,
			CapSplits:   splits,
		})
	}
	return res, nil
}

func extentSets(txs []monitor.Transaction) [][]blktrace.Extent {
	return pipeline.ExtentSets(txs)
}

// Render writes the cap sweep.
func (r *CapAblation) Render(w io.Writer) {
	fprintf(w, "ABLATION A2: Transaction size cap (wdev-like, support %d)\n\n", r.Support)
	fprintf(w, "%6s %14s %10s %12s\n", "cap", "pair touches", "recall", "cap splits")
	for _, row := range r.Rows {
		fprintf(w, "%6d %14d %9.1f%% %12d\n", row.Cap, row.PairTouches, 100*row.Recall, row.CapSplits)
	}
	fprintf(w, "\nΘ(N²) pair cost grows with the cap while recall saturates — the\n")
	fprintf(w, "paper's cap of 8 buys stable stream processing cheaply.\n")
}

// TierRow is one (threshold, ratio) configuration's accuracy.
type TierRow struct {
	PromoteThreshold uint32
	TierRatio        float64 // 0 = equal split
	WeightedRecall   float64
}

// TierAblation (A3) sweeps the promote threshold and T1:T2 split at a
// deliberately small table.
type TierAblation struct {
	Support  int
	Capacity int
	Rows     []TierRow
}

// AblationTiers runs the tier-design sweep on the wdev-like trace.
func AblationTiers(cfg Config) (*TierAblation, error) {
	cfg = cfg.withDefaults()
	p, err := msr.ProfileByName("wdev")
	if err != nil {
		return nil, err
	}
	run, err := runWorkload(p, cfg.scaled(p.DefaultRequests), cfg.Seed, cfg.scaled(32*1024))
	if err != nil {
		return nil, err
	}
	capacity := cfg.scaled(2048)
	res := &TierAblation{Support: cfg.Support, Capacity: capacity}
	for _, threshold := range []uint32{2, 3, 4, 8} {
		for _, ratio := range []float64{0.25, 0, 0.75} { // 0 = equal, the paper's choice
			a, err := core.NewAnalyzer(core.Config{
				ItemCapacity:     capacity,
				PairCapacity:     capacity,
				PromoteThreshold: threshold,
				TierRatio:        ratio,
			})
			if err != nil {
				return nil, err
			}
			for _, tx := range run.Transactions {
				a.Process(tx.Extents)
			}
			held := a.Snapshot(0).PairSet()
			res.Rows = append(res.Rows, TierRow{
				PromoteThreshold: threshold,
				TierRatio:        ratio,
				WeightedRecall:   analysis.WeightedRecall(held, run.Freqs, cfg.Support),
			})
		}
	}
	return res, nil
}

// Render writes the tier sweep.
func (r *TierAblation) Render(w io.Writer) {
	fprintf(w, "ABLATION A3: Promote threshold × tier split (wdev-like, C=%d, support %d)\n\n",
		r.Capacity, r.Support)
	fprintf(w, "%10s %12s %16s\n", "threshold", "T1 fraction", "weighted recall")
	for _, row := range r.Rows {
		frac := "equal"
		if row.TierRatio != 0 {
			frac = fmt.Sprintf("%.0f%%", 100*row.TierRatio)
		}
		fprintf(w, "%10d %12s %15.1f%%\n", row.PromoteThreshold, frac, 100*row.WeightedRecall)
	}
	fprintf(w, "\nthe paper uses equal tiers and promotion on the second sighting,\n")
	fprintf(w, "noting T1 must stay large enough to absorb infrequent noise.\n")
}

// StreamBaselineRow compares one detector's accuracy and throughput.
type StreamBaselineRow struct {
	Detector       string
	WeightedRecall float64
	NsPerTx        float64
	EntriesUsed    int
}

// StreamBaseline (A4) pits the synopsis against an estDec-style decayed
// stream miner at equal pair-entry budget.
type StreamBaseline struct {
	Support int
	Rows    []StreamBaselineRow
}

// AblationStreamBaseline runs the comparison on the wdev-like trace.
func AblationStreamBaseline(cfg Config) (*StreamBaseline, error) {
	cfg = cfg.withDefaults()
	p, err := msr.ProfileByName("wdev")
	if err != nil {
		return nil, err
	}
	run, err := runWorkload(p, cfg.scaled(p.DefaultRequests), cfg.Seed, cfg.scaled(32*1024))
	if err != nil {
		return nil, err
	}
	capacity := cfg.scaled(4096)
	res := &StreamBaseline{Support: cfg.Support}

	// Synopsis at C = capacity (2C pair entries).
	a, err := core.NewAnalyzer(core.Config{ItemCapacity: capacity, PairCapacity: capacity})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	for _, tx := range run.Transactions {
		a.Process(tx.Extents)
	}
	elapsed := time.Since(start)
	res.Rows = append(res.Rows, StreamBaselineRow{
		Detector:       "two-tier synopsis (paper)",
		WeightedRecall: analysis.WeightedRecall(a.Snapshot(0).PairSet(), run.Freqs, cfg.Support),
		NsPerTx:        float64(elapsed.Nanoseconds()) / float64(len(run.Transactions)),
		EntriesUsed:    a.Pairs().Capacity(),
	})

	// estDec-style pair miner with the same pair budget.
	m, err := estdec.New(estdec.Config{
		Decay:      0.99995,
		PruneBelow: 0.00001,
		MaxEntries: 2 * capacity,
	})
	if err != nil {
		return nil, err
	}
	start = time.Now()
	for _, tx := range run.Transactions {
		m.Process(tx.Extents)
	}
	elapsed = time.Since(start)
	res.Rows = append(res.Rows, StreamBaselineRow{
		Detector:       "estDec-style decayed miner",
		WeightedRecall: analysis.WeightedRecall(m.PairSet(0), run.Freqs, cfg.Support),
		NsPerTx:        float64(elapsed.Nanoseconds()) / float64(len(run.Transactions)),
		EntriesUsed:    2 * capacity,
	})

	// estDec+-style CP-tree monitoring general itemsets — the shape of
	// miner the paper says cannot keep pace with disk I/O streams.
	tree, err := estdec.NewTree(estdec.TreeConfig{
		Decay:        0.99995,
		SigThreshold: 0.00002,
		PruneBelow:   0.00001,
		MaxNodes:     2 * capacity,
	})
	if err != nil {
		return nil, err
	}
	start = time.Now()
	for _, tx := range run.Transactions {
		tree.Process(tx.Extents)
	}
	elapsed = time.Since(start)
	res.Rows = append(res.Rows, StreamBaselineRow{
		Detector:       "estDec+-style CP-tree (itemsets)",
		WeightedRecall: analysis.WeightedRecall(tree.FrequentPairSet(0), run.Freqs, cfg.Support),
		NsPerTx:        float64(elapsed.Nanoseconds()) / float64(len(run.Transactions)),
		EntriesUsed:    2 * capacity,
	})
	return res, nil
}

// Render writes the baseline comparison.
func (r *StreamBaseline) Render(w io.Writer) {
	fprintf(w, "BASELINE A4: Synopsis vs stream FIM at equal memory (wdev-like, support %d)\n\n", r.Support)
	fprintf(w, "%-34s %16s %12s %10s\n", "detector", "weighted recall", "ns/tx", "entries")
	for _, row := range r.Rows {
		fprintf(w, "%-34s %15.1f%% %12.0f %10d\n",
			row.Detector, 100*row.WeightedRecall, row.NsPerTx, row.EntriesUsed)
	}
}
