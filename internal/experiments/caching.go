package experiments

import (
	"io"

	"daccor/internal/cache"
	"daccor/internal/core"
	"daccor/internal/msr"
	"daccor/internal/pipeline"
)

// CachingRow is one prefetch policy's outcome.
type CachingRow struct {
	Policy string
	Stats  cache.Stats
}

// CachingResult is the caching application experiment (the first
// optimization the paper lists): hit rate of a small extent cache
// under demand-only LRU, sequential read-ahead, and correlation-driven
// prefetch on the wdev-like workload.
type CachingResult struct {
	Capacity int
	Rows     []CachingRow
}

// Caching runs the comparison. The cache is deliberately much smaller
// than the workload's hot set, so policy quality — not capacity —
// decides the hit rate.
func Caching(cfg Config) (*CachingResult, error) {
	cfg = cfg.withDefaults()
	p, err := msr.ProfileByName("wdev")
	if err != nil {
		return nil, err
	}
	run, err := runWorkload(p, cfg.scaled(p.DefaultRequests), cfg.Seed, cfg.scaled(32*1024))
	if err != nil {
		return nil, err
	}
	txs := pipeline.ExtentSets(run.Transactions)
	capacity := cfg.scaled(512)
	res := &CachingResult{Capacity: capacity}

	type entry struct {
		name string
		mk   func() (cache.Prefetcher, error)
	}
	entries := []entry{
		{"LRU, demand only", func() (cache.Prefetcher, error) { return cache.NonePrefetcher{}, nil }},
		{"LRU + sequential read-ahead", func() (cache.Prefetcher, error) { return cache.ReadAhead{Depth: 1}, nil }},
		{"LRU + correlation prefetch", func() (cache.Prefetcher, error) {
			return cache.NewCorrelated(cache.CorrelatedConfig{
				Analyzer: core.Config{
					ItemCapacity: cfg.scaled(8192),
					PairCapacity: cfg.scaled(8192),
				},
			})
		}},
	}
	for _, e := range entries {
		pf, err := e.mk()
		if err != nil {
			return nil, err
		}
		c, err := cache.New(capacity)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, CachingRow{Policy: e.name, Stats: cache.Run(c, pf, txs)})
	}
	return res, nil
}

// Render writes the hit-rate table.
func (r *CachingResult) Render(w io.Writer) {
	fprintf(w, "APPLICATION: Correlation-driven caching (wdev-like, %d-extent cache)\n\n", r.Capacity)
	fprintf(w, "%-30s %10s %12s %15s %10s\n", "policy", "hit rate", "prefetches", "prefetch hits", "wasted")
	for _, row := range r.Rows {
		fprintf(w, "%-30s %9.1f%% %12d %15d %10d\n",
			row.Policy, 100*row.Stats.HitRate(), row.Stats.Prefetches,
			row.Stats.PrefetchHits, row.Stats.PrefetchWaste)
	}
	fprintf(w, "\nsemantic correlations live at random distances, where read-ahead\n")
	fprintf(w, "cannot reach; the synopsis turns them into timely prefetches.\n")
}
