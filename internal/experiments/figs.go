package experiments

import (
	"io"

	"daccor/internal/analysis"
	"daccor/internal/msr"
)

// Fig1Result holds the per-workload storage heat maps of Fig. 1
// (request sequence × starting block).
type Fig1Result struct {
	Names []string
	Maps  []*analysis.Heatmap
}

// Fig1 renders storage heat maps of the five MSR-like traces. The
// vertical stripes are the planted correlated groups recurring over
// time — the paper's visual motivation.
func Fig1(cfg Config) (*Fig1Result, error) {
	cfg = cfg.withDefaults()
	res := &Fig1Result{}
	for _, p := range msr.Profiles() {
		gen, err := p.Generate(cfg.scaled(p.DefaultRequests), cfg.Seed)
		if err != nil {
			return nil, err
		}
		res.Names = append(res.Names, p.Name)
		res.Maps = append(res.Maps, analysis.TraceHeatmap(gen.Trace, 72, 20))
	}
	return res, nil
}

// Render writes the ASCII heat maps.
func (r *Fig1Result) Render(w io.Writer) {
	fprintf(w, "FIG 1: Storage heat maps (x: request sequence, y: block number)\n")
	for i, name := range r.Names {
		fprintf(w, "\n--- %s ---\n%s", name, r.Maps[i].Render())
	}
}

// Fig5Workload is one workload's correlation-frequency CDF.
type Fig5Workload struct {
	Name string
	// Points at selected supports: fraction of unique pairs (solid
	// line) and frequency-weighted fraction (dashed line) with
	// frequency <= support.
	Points []analysis.CDFPoint
	// UniqueAtSupport1 is the fraction of pairs occurring exactly
	// once; the paper reads ~3/4 for wdev, src2, rsrch.
	UniqueAtSupport1 float64
}

// Fig5Result reproduces Fig. 5.
type Fig5Result struct {
	Workloads []Fig5Workload
	// Supports are the x positions reported.
	Supports []int
}

// Fig5 mines each workload's transactions offline and computes the
// cumulative distribution of extent-correlation frequencies.
func Fig5(cfg Config) (*Fig5Result, error) {
	cfg = cfg.withDefaults()
	supports := []int{1, 2, 3, 5, 10, 20, 50, 100}
	res := &Fig5Result{Supports: supports}
	for _, p := range msr.Profiles() {
		run, err := runWorkload(p, cfg.scaled(p.DefaultRequests), cfg.Seed, cfg.scaled(32*1024))
		if err != nil {
			return nil, err
		}
		cdf := analysis.CorrelationCDF(run.Freqs)
		wl := Fig5Workload{Name: p.Name}
		for _, s := range supports {
			wl.Points = append(wl.Points, cdfAt(cdf, s))
		}
		if len(cdf) > 0 && cdf[0].Support == 1 {
			wl.UniqueAtSupport1 = cdf[0].UniqueFrac
		}
		res.Workloads = append(res.Workloads, wl)
	}
	return res, nil
}

// cdfAt evaluates the step-function CDF at support s.
func cdfAt(cdf []analysis.CDFPoint, s int) analysis.CDFPoint {
	out := analysis.CDFPoint{Support: s}
	for _, pt := range cdf {
		if pt.Support > s {
			break
		}
		out.UniqueFrac = pt.UniqueFrac
		out.WeightedFrac = pt.WeightedFrac
	}
	return out
}

// Render writes the CDF series.
func (r *Fig5Result) Render(w io.Writer) {
	fprintf(w, "FIG 5: Cumulative distribution of extent correlations by frequency\n")
	fprintf(w, "(unique-pair fraction / frequency-weighted fraction at each support)\n\n")
	fprintf(w, "%-6s", "trace")
	for _, s := range r.Supports {
		fprintf(w, "  s<=%-10d", s)
	}
	fprintf(w, "\n")
	for _, wl := range r.Workloads {
		fprintf(w, "%-6s", wl.Name)
		for _, pt := range wl.Points {
			fprintf(w, "  %.2f / %.2f ", pt.UniqueFrac, pt.WeightedFrac)
		}
		fprintf(w, "\n")
	}
	fprintf(w, "\npaper: for wdev/src2/rsrch, ~3/4 of unique pairs occur only once;\n")
	fprintf(w, "unique fraction rises fast while weighted fraction lags (Zipf-like).\n")
}

// Fig6Workload is one workload's optimal table-size curve.
type Fig6Workload struct {
	Name        string
	UniquePairs int
	// FracAtSize[i] is the best possible captured-frequency fraction
	// with Sizes[i] table entries.
	FracAtSize []float64
}

// Fig6Result reproduces Fig. 6: table size necessary to support the
// traces.
type Fig6Result struct {
	Sizes     []int
	Workloads []Fig6Workload
}

// Fig6 computes, per workload, the cumulative frequency fraction of the
// n most frequent pairs for a ladder of table sizes.
func Fig6(cfg Config) (*Fig6Result, error) {
	cfg = cfg.withDefaults()
	sizes := []int{16, 64, 256, 1024, 4096, 16384, 65536, 262144}
	res := &Fig6Result{Sizes: sizes}
	for _, p := range msr.Profiles() {
		run, err := runWorkload(p, cfg.scaled(p.DefaultRequests), cfg.Seed, cfg.scaled(32*1024))
		if err != nil {
			return nil, err
		}
		wl := Fig6Workload{Name: p.Name, UniquePairs: len(run.Freqs)}
		curve := analysis.OptimalCurve(run.Freqs)
		for _, n := range sizes {
			idx := n - 1
			if idx >= len(curve) {
				idx = len(curve) - 1
			}
			if idx < 0 {
				wl.FracAtSize = append(wl.FracAtSize, 0)
				continue
			}
			wl.FracAtSize = append(wl.FracAtSize, curve[idx])
		}
		res.Workloads = append(res.Workloads, wl)
	}
	return res, nil
}

// Render writes the curve samples.
func (r *Fig6Result) Render(w io.Writer) {
	fprintf(w, "FIG 6: Optimal captured-frequency fraction vs correlation table size\n\n")
	fprintf(w, "%-6s %12s", "trace", "unique pairs")
	for _, n := range r.Sizes {
		fprintf(w, " %8d", n)
	}
	fprintf(w, "\n")
	for _, wl := range r.Workloads {
		fprintf(w, "%-6s %12d", wl.Name, wl.UniquePairs)
		for _, f := range wl.FracAtSize {
			fprintf(w, " %7.1f%%", 100*f)
		}
		fprintf(w, "\n")
	}
	fprintf(w, "\npaper: ~40%% of all extent correlations representable with a small table;\n")
	fprintf(w, "about half a million entries cover wdev, src2, and rsrch entirely.\n")
}
