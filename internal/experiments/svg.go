package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"daccor/internal/analysis"
)

// SVGRenderer is implemented by results that can also emit figure
// artifacts; cmd/experiments calls it when -svg is set.
type SVGRenderer interface {
	RenderSVG(dir string) error
}

func writeSVG(dir, name string, render func(*os.File) error) error {
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return fmt.Errorf("%s: %w", path, err)
	}
	return f.Close()
}

func heatmapSVG(dir, name, title string, hm *analysis.Heatmap) error {
	return writeSVG(dir, name, func(f *os.File) error { return hm.SVG(f, title) })
}

// RenderSVG writes one heat map per workload (Fig. 1).
func (r *Fig1Result) RenderSVG(dir string) error {
	for i, name := range r.Names {
		if err := heatmapSVG(dir, fmt.Sprintf("fig1_%s.svg", name),
			fmt.Sprintf("Fig 1: %s storage heat map", name), r.Maps[i]); err != nil {
			return err
		}
	}
	return nil
}

// RenderSVG writes one CDF chart per workload (Fig. 5).
func (r *Fig5Result) RenderSVG(dir string) error {
	for _, wl := range r.Workloads {
		unique := analysis.Series{Name: "unique pairs"}
		weighted := analysis.Series{Name: "weighted"}
		for _, pt := range wl.Points {
			unique.X = append(unique.X, float64(pt.Support))
			unique.Y = append(unique.Y, pt.UniqueFrac)
			weighted.X = append(weighted.X, float64(pt.Support))
			weighted.Y = append(weighted.Y, pt.WeightedFrac)
		}
		err := writeSVG(dir, fmt.Sprintf("fig5_%s.svg", wl.Name), func(f *os.File) error {
			return analysis.LineChartSVG(f,
				fmt.Sprintf("Fig 5: %s correlation-frequency CDF", wl.Name),
				"support (log)", "cumulative fraction", true,
				[]analysis.Series{unique, weighted})
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// RenderSVG writes the optimal table-size chart (Fig. 6).
func (r *Fig6Result) RenderSVG(dir string) error {
	var series []analysis.Series
	for _, wl := range r.Workloads {
		s := analysis.Series{Name: wl.Name}
		for i, n := range r.Sizes {
			s.X = append(s.X, float64(n))
			s.Y = append(s.Y, wl.FracAtSize[i])
		}
		series = append(series, s)
	}
	return writeSVG(dir, "fig6.svg", func(f *os.File) error {
		return analysis.LineChartSVG(f, "Fig 6: optimal captured fraction vs table size",
			"table entries (log)", "fraction of correlations", true, series)
	})
}

// RenderSVG writes the four panels per synthetic workload (Fig. 7).
func (r *Fig7Result) RenderSVG(dir string) error {
	for _, p := range r.Panels {
		panels := []struct {
			suffix string
			hm     *analysis.Heatmap
		}{
			{"trace", p.Trace},
			{"allpairs", p.AllPairs},
			{"offline", p.Offline},
			{"online", p.Online},
		}
		for _, panel := range panels {
			name := fmt.Sprintf("fig7_%s_%s.svg", p.Kind, panel.suffix)
			title := fmt.Sprintf("Fig 7: %s — %s", p.Kind, panel.suffix)
			if err := heatmapSVG(dir, name, title, panel.hm); err != nil {
				return err
			}
		}
	}
	return nil
}

// RenderSVG writes the three panels per real-world workload (Fig. 8).
func (r *Fig8Result) RenderSVG(dir string) error {
	for _, wl := range r.Workloads {
		panels := []struct {
			suffix string
			hm     *analysis.Heatmap
		}{
			{"allpairs", wl.AllPairs},
			{"offline", wl.Offline},
			{"online", wl.Online},
		}
		for _, panel := range panels {
			name := fmt.Sprintf("fig8_%s_%s.svg", wl.Name, panel.suffix)
			title := fmt.Sprintf("Fig 8: %s — %s (support %d)", wl.Name, panel.suffix, r.Support)
			if err := heatmapSVG(dir, name, title, panel.hm); err != nil {
				return err
			}
		}
	}
	return nil
}

// RenderSVG writes the representability chart (Fig. 9).
func (r *Fig9Result) RenderSVG(dir string) error {
	var series []analysis.Series
	for _, wl := range r.Workloads {
		s := analysis.Series{Name: wl.Name}
		for i, c := range r.Sizes {
			s.X = append(s.X, float64(c))
			s.Y = append(s.Y, wl.RepAtSize[i])
		}
		series = append(series, s)
	}
	return writeSVG(dir, "fig9.svg", func(f *os.File) error {
		return analysis.LineChartSVG(f, "Fig 9: representability vs optimal",
			"correlation table size C (log)", "captured / optimal", true, series)
	})
}

// RenderSVG writes one synopsis scatter per checkpoint (Fig. 10).
func (r *Fig10Result) RenderSVG(dir string) error {
	for i, cp := range r.Checkpoints {
		name := fmt.Sprintf("fig10_%d.svg", i+1)
		if err := heatmapSVG(dir, name, "Fig 10: "+cp.Label, cp.Scatter); err != nil {
			return err
		}
	}
	return nil
}
