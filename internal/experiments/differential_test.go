package experiments

// Differential online-vs-FIM suite: the repository's standing check
// that the online ARC-inspired synopsis still agrees with the offline
// frequent-itemset baselines when both consume the *same* transaction
// stream. Each case replays a deterministic synthetic trace through
// the live pipeline with transaction storage enabled, mines the stored
// transactions with the three offline algorithms, and holds the online
// report to golden precision/recall thresholds.
//
// Two regimes are covered per workload shape:
//
//   - ample capacity: the synopsis never evicts, so the online pair
//     set and every counter must match the exact offline result —
//     any divergence is a correctness bug, not an approximation.
//   - bounded capacity: tables far smaller than the pair universe, the
//     paper's operating point. The synopsis may undercount (evicted
//     entries restart), so precision must stay perfect while recall of
//     the frequent pairs clears the golden threshold.

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"daccor/internal/analysis"
	"daccor/internal/blktrace"
	"daccor/internal/core"
	"daccor/internal/fim"
	"daccor/internal/monitor"
	"daccor/internal/pipeline"
	"daccor/internal/workload"
)

// Golden thresholds for the bounded-capacity regime. The paper's
// headline is >90% of correlations detected; the deterministic seeds
// here comfortably clear these, so a dip below is a regression in the
// synopsis, monitor, or generator — not noise.
const (
	diffSupport      = 10
	diffMinPrecision = 1.0 // synopsis counters never overcount
	diffMinRecall    = 0.90
)

// diffRun replays one synthetic trace through the online pipeline and
// returns the pipeline plus the FIM dataset over its stored
// transactions.
func diffRun(t *testing.T, kind workload.Kind, capacity int) (*pipeline.Pipeline, *fim.Dataset) {
	t.Helper()
	syn, err := workload.Generate(workload.SyntheticConfig{
		Kind:        kind,
		Occurrences: 2000,
		Seed:        42 + int64(kind),
	})
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := pipeline.AnalyzeTrace(syn.Trace, pipeline.Config{
		Monitor:          monitor.Config{Window: monitor.StaticWindow(10 * time.Millisecond)},
		Analyzer:         core.Config{ItemCapacity: capacity, PairCapacity: capacity},
		KeepTransactions: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pipe, fim.NewDataset(pipeline.ExtentSets(pipe.Transactions()))
}

// minedPairs runs one offline algorithm at diffSupport and returns its
// frequent 2-itemsets.
func minedPairs(t *testing.T, ds *fim.Dataset, algo fim.Algorithm) map[blktrace.Pair]int {
	t.Helper()
	mined, err := fim.Mine(algo, ds, fim.Options{MinSupport: diffSupport, MaxLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	return fim.FrequentPairs(ds, mined)
}

func TestDifferentialOnlineVsFIMExact(t *testing.T) {
	for _, kind := range []workload.Kind{workload.OneToOne, workload.OneToMany, workload.ManyToMany} {
		t.Run(kind.String(), func(t *testing.T) {
			// 1<<16 entries per tier dwarfs the pair universe of a
			// 2000-occurrence trace: nothing is ever evicted.
			pipe, ds := diffRun(t, kind, 1<<16)

			offline := minedPairs(t, ds, fim.AlgoEclat)
			// The three offline baselines must agree with each other
			// before the online side is judged against them.
			for _, algo := range []fim.Algorithm{fim.AlgoApriori, fim.AlgoFPGrowth} {
				other := minedPairs(t, ds, algo)
				if len(other) != len(offline) {
					t.Fatalf("%s mined %d pairs, eclat %d", algo, len(other), len(offline))
				}
				for p, s := range offline {
					if other[p] != s {
						t.Fatalf("%s support for %v = %d, eclat %d", algo, p, other[p], s)
					}
				}
			}

			online := pipe.Snapshot(diffSupport).PairCounts()
			if len(online) != len(offline) {
				t.Errorf("online reports %d pairs, offline %d", len(online), len(offline))
			}
			for p, s := range offline {
				if got := online[p]; int(got) != s {
					t.Errorf("pair %v: online count %d, offline support %d", p, got, s)
				}
			}
		})
	}
}

// TestDifferentialCheckpointRestoreReplay is the crash-recovery
// determinism check: an analyzer that is checkpointed mid-stream,
// restored from the snapshot bytes, and fed the remainder must be
// byte-for-byte indistinguishable — in its own WriteTo output — from
// one that processed the whole stream uninterrupted. This is what
// makes the engine's periodic checkpoints trustworthy: recovery does
// not merely approximate the lost state, it reproduces the exact
// recency order, tier placement, and counters. Both the ample and the
// bounded (eviction-active) regimes are held to it, for every workload
// shape and several split points including the degenerate edges.
func TestDifferentialCheckpointRestoreReplay(t *testing.T) {
	for _, kind := range []workload.Kind{workload.OneToOne, workload.OneToMany, workload.ManyToMany} {
		for _, capacity := range []int{64, 1 << 16} {
			t.Run(fmt.Sprintf("%s/C=%d", kind, capacity), func(t *testing.T) {
				pipe, _ := diffRun(t, kind, 1<<16)
				txs := pipeline.ExtentSets(pipe.Transactions())
				if len(txs) < 4 {
					t.Fatalf("only %d transactions, trace too small to split", len(txs))
				}
				cfg := core.Config{ItemCapacity: capacity, PairCapacity: capacity}
				uninterrupted, err := core.NewAnalyzer(cfg)
				if err != nil {
					t.Fatal(err)
				}
				for _, tx := range txs {
					uninterrupted.Process(tx)
				}
				var want bytes.Buffer
				if _, err := uninterrupted.WriteTo(&want); err != nil {
					t.Fatal(err)
				}

				for _, cut := range []int{0, 1, len(txs) / 2, len(txs) - 1, len(txs)} {
					first, err := core.NewAnalyzer(cfg)
					if err != nil {
						t.Fatal(err)
					}
					for _, tx := range txs[:cut] {
						first.Process(tx)
					}
					var ckpt bytes.Buffer
					if _, err := first.WriteTo(&ckpt); err != nil {
						t.Fatalf("checkpoint at %d: %v", cut, err)
					}
					restored, err := core.LoadAnalyzer(&ckpt)
					if err != nil {
						t.Fatalf("restore at %d: %v", cut, err)
					}
					for _, tx := range txs[cut:] {
						restored.Process(tx)
					}
					var got bytes.Buffer
					if _, err := restored.WriteTo(&got); err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(got.Bytes(), want.Bytes()) {
						t.Errorf("split at %d/%d: restored+replayed snapshot differs from uninterrupted (%d vs %d bytes)",
							cut, len(txs), got.Len(), want.Len())
					}
				}
			})
		}
	}
}

func TestDifferentialOnlineVsFIMBounded(t *testing.T) {
	for _, kind := range []workload.Kind{workload.OneToOne, workload.OneToMany, workload.ManyToMany} {
		t.Run(kind.String(), func(t *testing.T) {
			// 256 entries per tier is far below the noise-pair universe:
			// the two-tier eviction policy must hold onto the planted
			// correlations while noise churns through T1.
			pipe, ds := diffRun(t, kind, 256)

			exact := ds.PairFrequencies()
			truth := analysis.FrequentSet(exact, diffSupport)
			snap := pipe.Snapshot(diffSupport)
			online := snap.PairSet()

			prf := analysis.DetectionPRF(online, truth)
			if prf.Precision < diffMinPrecision {
				t.Errorf("precision = %.3f, want >= %.2f (%d false positives)",
					prf.Precision, diffMinPrecision, prf.FalsePos)
			}
			if prf.Recall < diffMinRecall {
				t.Errorf("recall = %.3f, want >= %.2f (%d of %d missed)",
					prf.Recall, diffMinRecall, prf.FalseNeg, prf.TruePos+prf.FalseNeg)
			}
			// Undercount-only: a reported counter above the exact
			// frequency means the synopsis credited a pair with touches
			// it never saw.
			for _, pc := range snap.Pairs {
				if int(pc.Count) > exact[pc.Pair] {
					t.Errorf("pair %v: online count %d exceeds exact frequency %d",
						pc.Pair, pc.Count, exact[pc.Pair])
				}
			}
			t.Logf("%s: precision %.3f recall %.3f (%d truth pairs, %d online)",
				kind, prf.Precision, prf.Recall, len(truth), len(online))
		})
	}
}
