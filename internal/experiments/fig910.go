package experiments

import (
	"io"
	"time"

	"daccor/internal/analysis"
	"daccor/internal/blktrace"
	"daccor/internal/core"
	"daccor/internal/fim"
	"daccor/internal/monitor"
	"daccor/internal/msr"
	"daccor/internal/pipeline"
)

// Fig9Workload is one workload's representability curve.
type Fig9Workload struct {
	Name string
	// UniquePairs is the number of distinct pairs in the ground truth;
	// representability reaches 1 once 2C covers it ("the table is
	// large enough to store every pair").
	UniquePairs int
	// RepAtSize[i] is captured frequency relative to the optimal for
	// the same entry count, with correlation table C = Sizes[i].
	RepAtSize []float64
}

// Fig9Result reproduces Fig. 9: representability of extent correlations
// versus optimal, across correlation table sizes.
type Fig9Result struct {
	// Sizes are the per-tier capacities C (the paper sweeps 16K–4M;
	// scaled down with the trace length here).
	Sizes     []int
	Workloads []Fig9Workload
}

// Fig9 collects each workload's transactions once, then replays them
// through fresh analyzers at each table size and scores the synopsis
// contents against the offline optimum.
func Fig9(cfg Config) (*Fig9Result, error) {
	cfg = cfg.withDefaults()
	sizes := []int{512, 1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072, 262144}
	res := &Fig9Result{Sizes: sizes}
	for _, p := range msr.Profiles() {
		run, err := runWorkload(p, cfg.scaled(p.DefaultRequests), cfg.Seed, cfg.scaled(32*1024))
		if err != nil {
			return nil, err
		}
		wl := Fig9Workload{Name: p.Name, UniquePairs: len(run.Freqs)}
		for _, c := range sizes {
			a, err := replayTransactions(run.Transactions, c)
			if err != nil {
				return nil, err
			}
			held := a.Snapshot(0).PairSet()
			// Entry budget for the optimal comparison: both tiers.
			wl.RepAtSize = append(wl.RepAtSize,
				analysis.Representability(held, run.Freqs, 2*c))
		}
		res.Workloads = append(res.Workloads, wl)
	}
	return res, nil
}

// Render writes the representability series.
func (r *Fig9Result) Render(w io.Writer) {
	fprintf(w, "FIG 9: Representability of extent correlations vs optimal\n")
	fprintf(w, "(captured frequency ÷ optimal for the same entry count)\n\n")
	fprintf(w, "%-6s", "C =")
	for _, c := range r.Sizes {
		fprintf(w, " %8d", c)
	}
	fprintf(w, "\n")
	for _, wl := range r.Workloads {
		fprintf(w, "%-6s", wl.Name)
		for _, rep := range wl.RepAtSize {
			fprintf(w, " %7.1f%%", 100*rep)
		}
		fprintf(w, "\n")
	}
	fprintf(w, "\npaper: quality grows with table size toward 100%%; stg (and hm's\n")
	fprintf(w, "long tail) lag at small tables because eventually-frequent pairs\n")
	fprintf(w, "are evicted by LRU before they prove themselves.\n")
}

// Fig10Checkpoint is one snapshot of the drift experiment.
type Fig10Checkpoint struct {
	Label string
	// RecallWdev and RecallHm are the fractions of each concept's
	// frequent pairs currently held by the synopsis — how much of each
	// pattern it "remembers".
	RecallWdev, RecallHm float64
	Pairs                int
	Scatter              *analysis.Heatmap
}

// Fig10Result reproduces Fig. 10: learning new concepts and forgetting
// old ones.
type Fig10Result struct {
	Checkpoints []Fig10Checkpoint
}

// Fig10 replays wdev → hm → wdev segments through one synopsis with a
// deliberately small correlation table and snapshots it at the three
// boundaries.
func Fig10(cfg Config) (*Fig10Result, error) {
	cfg = cfg.withDefaults()
	segment := cfg.scaled(40_000) // paper: 100 K requests per segment

	wdevProfile, err := msr.ProfileByName("wdev")
	if err != nil {
		return nil, err
	}
	hmProfile, err := msr.ProfileByName("hm")
	if err != nil {
		return nil, err
	}
	wdevGen, err := wdevProfile.Generate(2*segment, cfg.Seed)
	if err != nil {
		return nil, err
	}
	hmGen, err := hmProfile.Generate(segment, cfg.Seed+1)
	if err != nil {
		return nil, err
	}

	// Per-concept ground truth: frequent pairs of each segment mined
	// offline from monitor transactions, using the same windowing as
	// the drifting synopsis.
	support := cfg.Support
	window := monitor.Config{Window: monitor.StaticWindow(100 * time.Microsecond)}
	truth := func(t *blktrace.Trace) (map[blktrace.Pair]struct{}, error) {
		pipe, err := pipeline.AnalyzeTrace(t, pipeline.Config{
			Monitor:          window,
			Analyzer:         core.Config{ItemCapacity: 1 << 20, PairCapacity: 1 << 20},
			KeepTransactions: true,
		})
		if err != nil {
			return nil, err
		}
		ds := fim.NewDataset(pipeline.ExtentSets(pipe.Transactions()))
		return analysis.FrequentSet(ds.PairFrequencies(), support), nil
	}
	wdevTruth, err := truth(wdevGen.Trace.Slice(0, segmentEvents(wdevGen, segment)))
	if err != nil {
		return nil, err
	}
	hmTruth, err := truth(hmGen.Trace)
	if err != nil {
		return nil, err
	}

	// The drifting synopsis. The paper picks C = 32 K because it is
	// "too small to store both patterns"; we self-calibrate to the
	// same condition — a third of the two patterns' combined size —
	// so the displacement dynamic holds at any scale.
	tableC := (len(wdevTruth) + len(hmTruth)) / 3
	if tableC < 64 {
		tableC = 64
	}
	pipe, err := pipeline.New(pipeline.Config{
		Monitor:  window,
		Analyzer: core.Config{ItemCapacity: tableC, PairCapacity: tableC},
	})
	if err != nil {
		return nil, err
	}
	res := &Fig10Result{}
	checkpoint := func(label string) {
		held := pipe.Snapshot(uint32(support)).PairSet()
		res.Checkpoints = append(res.Checkpoints, Fig10Checkpoint{
			Label:      label,
			RecallWdev: recallOf(held, wdevTruth),
			RecallHm:   recallOf(held, hmTruth),
			Pairs:      len(held),
			Scatter:    analysis.PairScatter(held, 48, 0, 0),
		})
	}
	// clock re-bases each segment so they abut in time instead of
	// rewinding (the monitor would otherwise clamp every timestamp).
	var clock int64
	feed := func(t *blktrace.Trace, from, to int) error {
		seg := t.Slice(from, to)
		if seg.Len() == 0 {
			return nil
		}
		base := seg.Events[0].Time
		var last int64
		for _, ev := range seg.Events {
			ev.Time = clock + (ev.Time - base)
			last = ev.Time
			if err := pipe.HandleIssue(ev); err != nil {
				return err
			}
		}
		clock = last + int64(time.Millisecond)
		pipe.Flush()
		return nil
	}
	wdevSegEvents := segmentEvents(wdevGen, segment)
	if err := feed(wdevGen.Trace, 0, wdevSegEvents); err != nil {
		return nil, err
	}
	checkpoint("after wdev[0:N]")
	if err := feed(hmGen.Trace, 0, hmGen.Trace.Len()); err != nil {
		return nil, err
	}
	checkpoint("after hm[0:N] (temporary concept)")
	if err := feed(wdevGen.Trace, wdevSegEvents, wdevGen.Trace.Len()); err != nil {
		return nil, err
	}
	checkpoint("after wdev[N:2N]")
	return res, nil
}

// recallOf is |held ∩ truth| / |truth| (0 for empty truth).
func recallOf(held, truth map[blktrace.Pair]struct{}) float64 {
	if len(truth) == 0 {
		return 0
	}
	n := 0
	for p := range truth {
		if _, ok := held[p]; ok {
			n++
		}
	}
	return float64(n) / float64(len(truth))
}

// segmentEvents clamps a segment length to the trace.
func segmentEvents(g *msr.GeneratedTrace, segment int) int {
	if segment > g.Trace.Len() {
		return g.Trace.Len()
	}
	return segment
}

// Render writes the checkpoint metrics and scatters.
func (r *Fig10Result) Render(w io.Writer) {
	fprintf(w, "FIG 10: Concept drift — learning new concepts, forgetting old ones\n\n")
	fprintf(w, "%-36s %8s %14s %12s\n", "checkpoint", "pairs", "wdev recall", "hm recall")
	for _, cp := range r.Checkpoints {
		fprintf(w, "%-36s %8d %14.3f %12.3f\n", cp.Label, cp.Pairs, cp.RecallWdev, cp.RecallHm)
	}
	fprintf(w, "\npaper: the wdev pattern forms, is displaced by hm (the table is too\n")
	fprintf(w, "small for both), and begins to fade back to wdev afterwards.\n")
	for _, cp := range r.Checkpoints {
		fprintf(w, "\n=== %s ===\n%s", cp.Label, cp.Scatter.Render())
	}
}
