package experiments

import (
	"io"
	"time"

	"daccor/internal/analysis"
	"daccor/internal/blktrace"
	"daccor/internal/core"
	"daccor/internal/fim"
	"daccor/internal/monitor"
	"daccor/internal/msr"
	"daccor/internal/pipeline"
	"daccor/internal/workload"
)

// Fig7Panel is one synthetic workload's four-column comparison.
type Fig7Panel struct {
	Kind workload.Kind
	// PlantedDetected counts planted correlations recovered by online
	// analysis at the figure's support (10), out of Planted.
	Planted, PlantedDetected int
	// RankOrderPreserved reports whether detected counts follow the
	// Zipf popularity ranking.
	RankOrderPreserved bool
	// Similarity is the occupancy similarity between the offline
	// (eclat, support 10) and online pair scatters.
	Similarity float64
	// Panels: trace heat map, support-1 pairs, offline support-10,
	// online support-10.
	Trace, AllPairs, Offline, Online *analysis.Heatmap
}

// Fig7Result reproduces Fig. 7.
type Fig7Result struct {
	Panels []Fig7Panel
}

// fig7Support is the minimum correlation frequency Fig. 7 uses for its
// offline (eclat) and online columns.
const fig7Support = 10

// Fig7 generates the three synthetic workloads, runs offline eclat and
// the online pipeline over the same transactions, and compares.
func Fig7(cfg Config) (*Fig7Result, error) {
	cfg = cfg.withDefaults()
	res := &Fig7Result{}
	for _, kind := range []workload.Kind{workload.OneToOne, workload.OneToMany, workload.ManyToMany} {
		syn, err := workload.Generate(workload.SyntheticConfig{
			Kind:        kind,
			Occurrences: cfg.scaled(2000),
			Seed:        cfg.Seed + int64(kind),
		})
		if err != nil {
			return nil, err
		}
		pcfg := pipeline.Config{
			Monitor:          monitor.Config{Window: monitor.StaticWindow(10 * time.Millisecond)},
			Analyzer:         core.Config{ItemCapacity: cfg.scaled(8192), PairCapacity: cfg.scaled(8192)},
			KeepTransactions: true,
		}
		pipe, err := pipeline.AnalyzeTrace(syn.Trace, pcfg)
		if err != nil {
			return nil, err
		}
		ds := fim.NewDataset(pipeline.ExtentSets(pipe.Transactions()))
		mined, err := fim.Eclat(ds, fim.Options{MinSupport: fig7Support, MaxLen: 2})
		if err != nil {
			return nil, err
		}
		offline := setOf(fim.FrequentPairs(ds, mined))
		online := pipe.Snapshot(fig7Support).PairSet()
		allPairs := setOf(ds.PairFrequencies())

		lo, hi := analysis.BlockRangeOfPairs(allPairs)
		offMap := analysis.PairScatter(offline, 48, lo, hi)
		onMap := analysis.PairScatter(online, 48, lo, hi)
		sim, err := offMap.OccupancySimilarity(onMap)
		if err != nil {
			return nil, err
		}

		panel := Fig7Panel{
			Kind:       kind,
			Planted:    len(syn.Correlations),
			Similarity: sim,
			Trace:      analysis.TraceHeatmap(syn.Trace, 48, 16),
			AllPairs:   analysis.PairScatter(allPairs, 48, lo, hi),
			Offline:    offMap,
			Online:     onMap,
		}
		counts := pipe.Snapshot(fig7Support).PairCounts()
		panel.RankOrderPreserved = true
		var prev uint32 = 1 << 31
		for _, c := range syn.Correlations {
			got, ok := counts[c.Pairs()[0]]
			if ok {
				panel.PlantedDetected++
			}
			if got > prev+prev/4 {
				panel.RankOrderPreserved = false
			}
			prev = got
		}
		res.Panels = append(res.Panels, panel)
	}
	return res, nil
}

func setOf(m map[blktrace.Pair]int) map[blktrace.Pair]struct{} {
	out := make(map[blktrace.Pair]struct{}, len(m))
	for p := range m {
		out[p] = struct{}{}
	}
	return out
}

// Render writes the panels and summary metrics.
func (r *Fig7Result) Render(w io.Writer) {
	fprintf(w, "FIG 7: Synthetic workloads — offline vs online analysis (support %d)\n", fig7Support)
	for _, p := range r.Panels {
		fprintf(w, "\n=== %s ===\n", p.Kind)
		fprintf(w, "planted correlations detected online: %d/%d (rank order preserved: %v)\n",
			p.PlantedDetected, p.Planted, p.RankOrderPreserved)
		fprintf(w, "offline/online scatter occupancy similarity: %.2f\n", p.Similarity)
		fprintf(w, "\n[trace heat map]\n%s", p.Trace.Render())
		fprintf(w, "\n[all pairs, support 1]\n%s", p.AllPairs.Render())
		fprintf(w, "\n[offline eclat, support %d]\n%s", fig7Support, p.Offline.Render())
		fprintf(w, "\n[online synopsis, support %d]\n%s", fig7Support, p.Online.Render())
	}
}

// Fig8Workload is one real-world workload's offline/online comparison.
type Fig8Workload struct {
	Name string
	// Detection metrics of the online pair set against the offline
	// frequent pairs at the figure's support (5).
	PRF analysis.PRF
	// WeightedRecall is the fraction of frequent-pair occurrences
	// captured — the paper's ">90% of data access correlations".
	WeightedRecall float64
	// Sequentiality summarises how much of the ground truth is
	// adjacent extents (sequential patterns) versus distant semantic
	// correlations.
	Sequentiality analysis.Sequentiality
	// Similarity is the occupancy similarity of the offline and online
	// scatters.
	Similarity float64
	// Panels: support-1 pairs, offline support-5, online support-5.
	AllPairs, Offline, Online *analysis.Heatmap
}

// Fig8Result reproduces Fig. 8 plus the paper's headline accuracy.
type Fig8Result struct {
	Support   int
	Workloads []Fig8Workload
}

// Fig8 replays each MSR-like workload with live monitoring and online
// analysis, mines the stored transactions offline, and compares at
// support 5 ("past the knee of the unique pairs curve").
func Fig8(cfg Config) (*Fig8Result, error) {
	cfg = cfg.withDefaults()
	res := &Fig8Result{Support: cfg.Support}
	for _, p := range msr.Profiles() {
		run, err := runWorkload(p, cfg.scaled(p.DefaultRequests), cfg.Seed, cfg.scaled(32*1024))
		if err != nil {
			return nil, err
		}
		truth := analysis.FrequentSet(run.Freqs, cfg.Support)
		online := run.Pipe.Snapshot(uint32(cfg.Support)).PairSet()
		allPairs := setOf(run.Freqs)

		lo, hi := analysis.BlockRangeOfPairs(allPairs)
		offMap := analysis.PairScatter(truth, 48, lo, hi)
		onMap := analysis.PairScatter(online, 48, lo, hi)
		sim, err := offMap.OccupancySimilarity(onMap)
		if err != nil {
			return nil, err
		}
		res.Workloads = append(res.Workloads, Fig8Workload{
			Name:           p.Name,
			PRF:            analysis.DetectionPRF(online, truth),
			WeightedRecall: analysis.WeightedRecall(online, run.Freqs, cfg.Support),
			Sequentiality:  analysis.SequentialityOf(run.Freqs),
			Similarity:     sim,
			AllPairs:       analysis.PairScatter(allPairs, 48, lo, hi),
			Offline:        offMap,
			Online:         onMap,
		})
	}
	return res, nil
}

// Render writes the metrics table and panels.
func (r *Fig8Result) Render(w io.Writer) {
	fprintf(w, "FIG 8: Real-world workloads — offline vs online at support %d\n\n", r.Support)
	fprintf(w, "%-6s %10s %8s %8s %16s %11s %14s\n",
		"trace", "precision", "recall", "F1", "weighted recall", "similarity", "adj. pairs")
	for _, wl := range r.Workloads {
		fprintf(w, "%-6s %9.1f%% %7.1f%% %7.1f%% %15.1f%% %11.2f %13.1f%%\n",
			wl.Name, 100*wl.PRF.Precision, 100*wl.PRF.Recall, 100*wl.PRF.F1,
			100*wl.WeightedRecall, wl.Similarity, 100*wl.Sequentiality.AdjacentFrac)
	}
	fprintf(w, "\npaper: online detects over 90%% of data access correlations.\n")
	for _, wl := range r.Workloads {
		fprintf(w, "\n=== %s ===\n", wl.Name)
		fprintf(w, "[all pairs, support 1]\n%s", wl.AllPairs.Render())
		fprintf(w, "\n[offline, support %d]\n%s", r.Support, wl.Offline.Render())
		fprintf(w, "\n[online, support %d]\n%s", r.Support, wl.Online.Render())
	}
}
