package experiments

import (
	"io"
	"time"

	"daccor/internal/device"
	"daccor/internal/msr"
	"daccor/internal/replay"
)

// Table1Row is one workload's statistics (Table I), paired with the
// paper's reported values for side-by-side comparison.
type Table1Row struct {
	Name, Description string
	Requests          int
	TotalBytes        uint64
	UniqueBytes       uint64
	FastFraction      float64 // interarrival % < 100 µs

	PaperFastFraction float64
	PaperUniqueRatio  float64
	UniqueRatio       float64
}

// Table1Result reproduces Table I.
type Table1Result struct {
	Rows []Table1Row
}

// Paper values from Table I: fast-interarrival fractions and the
// unique/total data ratios implied by its byte columns.
var paperTable1 = map[string]struct {
	fast, uniqueRatio float64
}{
	"wdev":  {0.784, 0.53 / 11.3},
	"src2":  {0.712, 26.4 / 109.9},
	"rsrch": {0.774, 0.97 / 13.1},
	"stg":   {0.659, 83.9 / 107.9},
	"hm":    {0.670, 2.42 / 39.2},
}

// Table1 generates the five MSR-like traces and computes their Table I
// statistics.
func Table1(cfg Config) (*Table1Result, error) {
	cfg = cfg.withDefaults()
	res := &Table1Result{}
	for _, p := range msr.Profiles() {
		gen, err := p.Generate(cfg.scaled(p.DefaultRequests), cfg.Seed)
		if err != nil {
			return nil, err
		}
		st := gen.Stats()
		paper := paperTable1[p.Name]
		res.Rows = append(res.Rows, Table1Row{
			Name:              st.Name,
			Description:       st.Description,
			Requests:          st.Requests,
			TotalBytes:        st.TotalBytes,
			UniqueBytes:       st.UniqueBytes,
			FastFraction:      st.FastFraction,
			UniqueRatio:       st.UniqueOverTotal,
			PaperFastFraction: paper.fast,
			PaperUniqueRatio:  paper.uniqueRatio,
		})
	}
	return res, nil
}

// Render writes the table in the paper's layout.
func (r *Table1Result) Render(w io.Writer) {
	fprintf(w, "TABLE I: Microsoft-like workload statistics (scaled traces)\n")
	fprintf(w, "%-6s %-18s %9s %12s %12s %12s %12s %13s %13s\n",
		"trace", "role", "requests", "total", "unique", "uniq/total", "paper u/t", "interarr<100µs", "paper")
	for _, row := range r.Rows {
		fprintf(w, "%-6s %-18s %9d %12s %12s %11.1f%% %11.1f%% %13.1f%% %12.1f%%\n",
			row.Name, row.Description, row.Requests,
			msr.FormatBytes(row.TotalBytes), msr.FormatBytes(row.UniqueBytes),
			100*row.UniqueRatio, 100*row.PaperUniqueRatio,
			100*row.FastFraction, 100*row.PaperFastFraction)
	}
}

// Table2Row is one workload's replay-speedup measurement (Table II).
type Table2Row struct {
	Name                string
	MeanTraceLatency    time.Duration
	MeanMeasuredLatency time.Duration
	Speedup             float64

	PaperTraceLatency    time.Duration
	PaperMeasuredLatency time.Duration
	PaperSpeedup         float64
}

// Table2Result reproduces Table II.
type Table2Result struct {
	Rows []Table2Row
}

// Paper values from Table II.
var paperTable2 = map[string]struct {
	trace, measured time.Duration
	speedup         float64
}{
	"wdev":  {3650 * time.Microsecond, 48000 * time.Nanosecond, 76.0},
	"src2":  {3880 * time.Microsecond, 63350 * time.Nanosecond, 61.2},
	"rsrch": {3020 * time.Microsecond, 31790 * time.Nanosecond, 94.9},
	"stg":   {18940 * time.Microsecond, 40060 * time.Nanosecond, 473},
	"hm":    {13860 * time.Microsecond, 63840 * time.Nanosecond, 217},
}

// Table2 measures replay speedups with the paper's methodology: replay
// each trace 10 times (scaled) synchronously on the NVMe-profile
// device ignoring timestamps, average the read latency, and divide the
// trace's recorded mean latency by it.
func Table2(cfg Config) (*Table2Result, error) {
	cfg = cfg.withDefaults()
	reps := 10
	if cfg.Scale < 1 {
		reps = 3
	}
	res := &Table2Result{}
	for _, p := range msr.Profiles() {
		gen, err := p.Generate(cfg.scaled(p.DefaultRequests), cfg.Seed)
		if err != nil {
			return nil, err
		}
		dev, err := device.New(device.NVMeSSD(), cfg.Seed+1)
		if err != nil {
			return nil, err
		}
		m, err := replay.MeasureSpeedup(gen.Trace, gen.Latencies, dev, reps)
		if err != nil {
			return nil, err
		}
		paper := paperTable2[p.Name]
		res.Rows = append(res.Rows, Table2Row{
			Name:                 p.Name,
			MeanTraceLatency:     m.MeanTraceLatency,
			MeanMeasuredLatency:  m.MeanMeasuredLatency,
			Speedup:              m.Speedup,
			PaperTraceLatency:    paper.trace,
			PaperMeasuredLatency: paper.measured,
			PaperSpeedup:         paper.speedup,
		})
	}
	return res, nil
}

// Render writes the table in the paper's layout.
func (r *Table2Result) Render(w io.Writer) {
	fprintf(w, "TABLE II: Replay speedup of Microsoft-like traces\n")
	fprintf(w, "%-6s %14s %12s %14s %12s %10s %10s\n",
		"trace", "mean trace lat", "paper", "mean measured", "paper", "speedup", "paper")
	for _, row := range r.Rows {
		fprintf(w, "%-6s %14s %12s %14s %12s %9.1f× %9.1f×\n",
			row.Name,
			fmtDur(row.MeanTraceLatency), fmtDur(row.PaperTraceLatency),
			fmtDur(row.MeanMeasuredLatency), fmtDur(row.PaperMeasuredLatency),
			row.Speedup, row.PaperSpeedup)
	}
}
