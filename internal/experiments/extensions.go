package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"daccor/internal/blktrace"
	"daccor/internal/core"
	"daccor/internal/ftl"
)

// gcGeometry fixes the §V.1 simulation: EU-sized correlated write
// groups rewritten as units by concurrent writers whose pages
// interleave at the device.
type gcGeometry struct {
	groups     int
	groupPages int
	writers    int
	totalOps   int
	ssd        ftl.SSDConfig
}

func defaultGCGeometry(cfg Config) gcGeometry {
	return gcGeometry{
		groups:     24,
		groupPages: 32,
		writers:    4,
		totalOps:   cfg.scaled(1500),
		ssd:        ftl.SSDConfig{EUs: 48, PagesPerEU: 32, Streams: 8},
	}
}

func (g gcGeometry) extents(group int) []blktrace.Extent {
	out := make([]blktrace.Extent, g.groupPages)
	for k := range out {
		out[k] = blktrace.Extent{
			Block: uint64((group*g.groupPages + k) * ftl.BlocksPerPage),
			Len:   ftl.BlocksPerPage,
		}
	}
	return out
}

// run drives the workload against a fresh SSD with the given assigner,
// excluding the first 20% of operations from the measured counters.
func (g gcGeometry) run(assigner ftl.StreamAssigner, seed int64) (ftl.SSDStats, error) {
	s, err := ftl.NewSSD(g.ssd)
	if err != nil {
		return ftl.SSDStats{}, err
	}
	write := func(e blktrace.Extent) error {
		return s.WriteExtent(e, assigner.Assign(e))
	}
	for grp := 0; grp < g.groups; grp++ {
		assigner.Observe(g.extents(grp))
		for _, e := range g.extents(grp) {
			if err := write(e); err != nil {
				return ftl.SSDStats{}, err
			}
		}
	}
	rng := rand.New(rand.NewSource(seed))
	type op struct{ pending []blktrace.Extent }
	started := 0
	startOp := func() *op {
		grp := rng.Intn(g.groups)
		assigner.Observe(g.extents(grp))
		started++
		return &op{pending: g.extents(grp)}
	}
	var active []*op
	for len(active) < g.writers {
		active = append(active, startOp())
	}
	warmup := g.totalOps / 5
	reset := false
	for len(active) > 0 {
		if !reset && started >= warmup {
			s.ResetCounters()
			reset = true
		}
		i := rng.Intn(len(active))
		o := active[i]
		if err := write(o.pending[0]); err != nil {
			return ftl.SSDStats{}, err
		}
		o.pending = o.pending[1:]
		if len(o.pending) == 0 {
			if started < g.totalOps {
				active[i] = startOp()
			} else {
				active = append(active[:i], active[i+1:]...)
			}
		}
	}
	return s.Stats(), nil
}

// oracleAssigner knows the planted groups (upper bound for learners).
type oracleAssigner struct{ g gcGeometry }

func (oracleAssigner) Observe([]blktrace.Extent) {}
func (o oracleAssigner) Assign(e blktrace.Extent) int {
	grp := int(e.Block) / ftl.BlocksPerPage / o.g.groupPages
	span := o.g.ssd.Streams - 1
	return 1 + grp*span/o.g.groups
}

// GCOptRow is one policy's measured write amplification.
type GCOptRow struct {
	Policy string
	Stats  ftl.SSDStats
}

// GCOptResult is the §V.1 extension experiment: WAF by stream policy.
type GCOptResult struct {
	Rows []GCOptRow
}

// GCOpt measures write amplification for single-stream, address-hash,
// correlation-learned (cold start and converged), and oracle stream
// assignment under the correlated-write workload.
func GCOpt(cfg Config) (*GCOptResult, error) {
	cfg = cfg.withDefaults()
	g := defaultGCGeometry(cfg)
	res := &GCOptResult{}

	newLearner := func() (*ftl.CorrelationStreams, error) {
		return ftl.NewCorrelationStreams(ftl.CorrelationStreamsConfig{
			Streams:      g.ssd.Streams,
			Analyzer:     core.Config{ItemCapacity: 16384, PairCapacity: 16384},
			MinSupport:   2,
			RebuildEvery: 16,
		})
	}

	type entry struct {
		name string
		mk   func() (ftl.StreamAssigner, error)
	}
	entries := []entry{
		{"single-stream (conventional SSD)", func() (ftl.StreamAssigner, error) { return ftl.SingleStream{}, nil }},
		{"hash streams (death-time blind)", func() (ftl.StreamAssigner, error) { return ftl.HashStreams{Streams: g.ssd.Streams}, nil }},
		{"correlation streams (cold start)", func() (ftl.StreamAssigner, error) { return newLearner() }},
		{"correlation streams (converged)", func() (ftl.StreamAssigner, error) {
			l, err := newLearner()
			if err != nil {
				return nil, err
			}
			for r := 0; r < 5; r++ {
				for grp := 0; grp < g.groups; grp++ {
					l.Observe(g.extents(grp))
				}
			}
			return l, nil
		}},
		{"oracle (planted groups)", func() (ftl.StreamAssigner, error) { return oracleAssigner{g: g}, nil }},
	}
	for _, e := range entries {
		assigner, err := e.mk()
		if err != nil {
			return nil, err
		}
		stats, err := g.run(assigner, cfg.Seed+7)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.name, err)
		}
		res.Rows = append(res.Rows, GCOptRow{Policy: e.name, Stats: stats})
	}
	return res, nil
}

// Render writes the WAF table.
func (r *GCOptResult) Render(w io.Writer) {
	fprintf(w, "EXT §V.1: Multi-stream SSD garbage collection (steady state)\n\n")
	fprintf(w, "%-36s %8s %12s %12s %8s\n", "policy", "WAF", "host pages", "relocated", "erases")
	for _, row := range r.Rows {
		fprintf(w, "%-36s %8.3f %12d %12d %8d\n",
			row.Policy, row.Stats.WAF, row.Stats.HostPages, row.Stats.RelocatedPages, row.Stats.Erases)
	}
	fprintf(w, "\ncorrelated writes share death times; placing them in the same erase\n")
	fprintf(w, "units lets whole EUs die together and cuts relocation (the paper's\n")
	fprintf(w, "death-time prediction assumption).\n")
}

// OCSSDRow is one placement's mean correlated-burst latency.
type OCSSDRow struct {
	Policy      string
	MeanLatency time.Duration
}

// OCSSDResult is the §V.2 extension experiment.
type OCSSDResult struct {
	Rows    []OCSSDRow
	Speedup float64 // best correlation-aware speedup over the aged layout
}

// OCSSD measures correlated read-burst latency on an open-channel SSD
// under fresh striping, an aged (ill-mapped, skewed) layout, and
// correlation-aware placement learned online.
func OCSSD(cfg Config) (*OCSSDResult, error) {
	cfg = cfg.withDefaults()
	const (
		nGroups   = 30
		burstSize = 4
		pus       = 8
	)
	rounds := cfg.scaled(80)
	oc := ftl.OCSSDConfig{PUs: pus, PUReadLatency: 80 * time.Microsecond}
	striped := ftl.Striped{Chunk: 64, PUs: pus}
	aged := ftl.Aged{Striped: striped, Skew: 0.8, HotPUs: 2}

	rng := rand.New(rand.NewSource(cfg.Seed + 3))
	groups := make([][]blktrace.Extent, nGroups)
	for g := range groups {
		groups[g] = make([]blktrace.Extent, burstSize)
		for k := range groups[g] {
			groups[g][k] = blktrace.Extent{
				Block: uint64(rng.Intn(1 << 24)),
				Len:   uint32(8 * (1 + rng.Intn(4))),
			}
		}
	}
	cp, err := ftl.NewCorrelationPlacement(ftl.CorrelationPlacementConfig{
		PUs:  pus,
		Base: aged,
		Analyzer: core.Config{
			ItemCapacity: 2048,
			PairCapacity: 2048,
		},
	})
	if err != nil {
		return nil, err
	}
	var totals [3]time.Duration
	measured := 0
	for r := 0; r < rounds; r++ {
		for _, g := range rng.Perm(nGroups) {
			burst := groups[g]
			cp.Observe(burst)
			if r < rounds/2 {
				continue // learning warmup
			}
			for i, placement := range []ftl.Placement{striped, aged, cp} {
				lat, err := ftl.BurstLatency(burst, placement, oc)
				if err != nil {
					return nil, err
				}
				totals[i] += lat
			}
			measured++
		}
	}
	if measured == 0 {
		return nil, fmt.Errorf("ocssd: nothing measured (rounds too small)")
	}
	res := &OCSSDResult{}
	names := []string{
		"fresh striping (RAID-0 like)",
		"aged / ill-mapped layout",
		"correlation-aware placement",
	}
	for i, name := range names {
		res.Rows = append(res.Rows, OCSSDRow{
			Policy:      name,
			MeanLatency: totals[i] / time.Duration(measured),
		})
	}
	res.Speedup = float64(res.Rows[1].MeanLatency) / float64(res.Rows[2].MeanLatency)
	return res, nil
}

// Render writes the latency table.
func (r *OCSSDResult) Render(w io.Writer) {
	fprintf(w, "EXT §V.2: Open-channel SSD parallel I/O placement\n\n")
	fprintf(w, "%-32s %16s\n", "placement", "mean burst lat")
	for _, row := range r.Rows {
		fprintf(w, "%-32s %16s\n", row.Policy, fmtDur(row.MeanLatency))
	}
	fprintf(w, "\ncorrelation-aware speedup over the ill-mapped layout: %.2f×\n", r.Speedup)
	fprintf(w, "(prior work cites up to 4.2× latency inflation from ill-mapped data)\n")
}
