package experiments

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// small is the fast test configuration; shape assertions hold from this
// scale upward.
var small = Config{Scale: 0.2, Seed: 42}

// render exercises each result's renderer and returns the text.
func render(t *testing.T, r interface{ Render(io.Writer) }) string {
	t.Helper()
	var buf bytes.Buffer
	r.Render(&buf)
	if buf.Len() == 0 {
		t.Fatal("renderer produced nothing")
	}
	return buf.String()
}

func TestTable1Shape(t *testing.T) {
	// Table I's unique/total ratio depends on trace length (the fixed
	// hot set amortises over more requests), so this one runs at full
	// scale — it is cheap, involving no replay.
	res, err := Table1(Config{Scale: 1, Seed: small.Seed})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(res.Rows))
	}
	for _, row := range res.Rows {
		if diff := row.FastFraction - row.PaperFastFraction; diff > 0.03 || diff < -0.03 {
			t.Errorf("%s: fast fraction %.3f vs paper %.3f", row.Name, row.FastFraction, row.PaperFastFraction)
		}
		if row.UniqueBytes == 0 || row.UniqueBytes > row.TotalBytes {
			t.Errorf("%s: bytes inconsistent: %d unique of %d", row.Name, row.UniqueBytes, row.TotalBytes)
		}
		// Regime check: same side of 50% as the paper, and within a
		// factor of ~2 of the paper's ratio.
		if row.UniqueRatio < row.PaperUniqueRatio/2 || row.UniqueRatio > row.PaperUniqueRatio*2 {
			t.Errorf("%s: unique ratio %.3f vs paper %.3f", row.Name, row.UniqueRatio, row.PaperUniqueRatio)
		}
	}
	out := render(t, res)
	if !strings.Contains(out, "wdev") || !strings.Contains(out, "TABLE I") {
		t.Error("render missing content")
	}
}

func TestTable2Shape(t *testing.T) {
	res, err := Table2(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	bySpeed := map[string]float64{}
	for _, row := range res.Rows {
		if row.Speedup < 20 || row.Speedup > 900 {
			t.Errorf("%s: speedup %.1f outside the paper's order of magnitude", row.Name, row.Speedup)
		}
		// Trace latency should match the paper's within 15%.
		ratio := float64(row.MeanTraceLatency) / float64(row.PaperTraceLatency)
		if ratio < 0.85 || ratio > 1.15 {
			t.Errorf("%s: trace latency %v vs paper %v", row.Name, row.MeanTraceLatency, row.PaperTraceLatency)
		}
		bySpeed[row.Name] = row.Speedup
	}
	// Shape: stg and hm need far larger accelerations than the rest.
	if bySpeed["stg"] <= bySpeed["wdev"] || bySpeed["hm"] <= bySpeed["wdev"] {
		t.Errorf("speedup ordering wrong: %v", bySpeed)
	}
	render(t, res)
}

func TestFig1Shape(t *testing.T) {
	res, err := Fig1(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Maps) != 5 {
		t.Fatalf("maps = %d", len(res.Maps))
	}
	for i, hm := range res.Maps {
		if hm.NonEmpty() < 20 {
			t.Errorf("%s heatmap nearly empty", res.Names[i])
		}
	}
	render(t, res)
}

func TestFig5Shape(t *testing.T) {
	res, err := Fig5(small)
	if err != nil {
		t.Fatal(err)
	}
	for _, wl := range res.Workloads {
		// The large majority of unique pairs must be infrequent.
		if wl.UniqueAtSupport1 < 0.4 {
			t.Errorf("%s: unique fraction at support 1 = %.2f, want Zipf-like mass", wl.Name, wl.UniqueAtSupport1)
		}
		for i := 1; i < len(wl.Points); i++ {
			if wl.Points[i].UniqueFrac < wl.Points[i-1].UniqueFrac ||
				wl.Points[i].WeightedFrac < wl.Points[i-1].WeightedFrac {
				t.Errorf("%s: CDF not monotone", wl.Name)
			}
		}
		// Unique fraction leads the weighted fraction at low support.
		if wl.Points[0].UniqueFrac <= wl.Points[0].WeightedFrac {
			t.Errorf("%s: unique should lead weighted at support 1", wl.Name)
		}
	}
	render(t, res)
}

func TestFig6Shape(t *testing.T) {
	res, err := Fig6(small)
	if err != nil {
		t.Fatal(err)
	}
	for _, wl := range res.Workloads {
		for i := 1; i < len(wl.FracAtSize); i++ {
			if wl.FracAtSize[i] < wl.FracAtSize[i-1]-1e-9 {
				t.Errorf("%s: optimal curve not monotone", wl.Name)
			}
		}
		last := wl.FracAtSize[len(wl.FracAtSize)-1]
		if last < 0.99 {
			t.Errorf("%s: largest size covers %.2f, want ~1", wl.Name, last)
		}
	}
	// A small table already covers a sizable fraction of the easiest
	// trace (paper: roughly 40% across traces at full scale).
	for _, wl := range res.Workloads {
		if wl.Name == "wdev" && wl.FracAtSize[3] < 0.2 { // 1024 entries
			t.Errorf("wdev: 1K entries cover only %.2f", wl.FracAtSize[3])
		}
	}
	render(t, res)
}

func TestFig7Shape(t *testing.T) {
	res, err := Fig7(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Panels) != 3 {
		t.Fatalf("panels = %d", len(res.Panels))
	}
	for _, p := range res.Panels {
		if p.PlantedDetected != p.Planted {
			t.Errorf("%s: detected %d/%d planted correlations", p.Kind, p.PlantedDetected, p.Planted)
		}
		if !p.RankOrderPreserved {
			t.Errorf("%s: Zipf rank order lost", p.Kind)
		}
		if p.Similarity < 0.3 {
			t.Errorf("%s: offline/online similarity %.2f too low", p.Kind, p.Similarity)
		}
	}
	render(t, res)
}

func TestFig8Shape(t *testing.T) {
	res, err := Fig8(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Workloads) != 5 {
		t.Fatalf("workloads = %d", len(res.Workloads))
	}
	// The paper's headline: >90% of correlations detected. At this
	// reduced scale the harder traces legitimately trail (their long
	// tails are exactly what Fig. 9 shows struggling), so the 0.9 bar
	// applies to the easiest traces and looser ones to the rest; the
	// full-scale record lives in EXPERIMENTS.md.
	for _, wl := range res.Workloads {
		bar := 0.9
		switch wl.Name {
		case "src2":
			bar = 0.85
		case "stg", "hm":
			bar = 0.7
		}
		if wl.WeightedRecall < bar {
			t.Errorf("%s: weighted recall %.3f < %.2f", wl.Name, wl.WeightedRecall, bar)
		}
		if wl.PRF.Recall < 0.55 {
			t.Errorf("%s: unique-pair recall %.3f", wl.Name, wl.PRF.Recall)
		}
	}
	render(t, res)
}

func TestFig9Shape(t *testing.T) {
	res, err := Fig9(small)
	if err != nil {
		t.Fatal(err)
	}
	for _, wl := range res.Workloads {
		first := wl.RepAtSize[0]
		last := wl.RepAtSize[len(wl.RepAtSize)-1]
		if last < first {
			t.Errorf("%s: representability should grow with table size (%.2f -> %.2f)",
				wl.Name, first, last)
		}
		// "Eventually reaching 100% when the table is large enough to
		// store every pair": only assert saturation when it is.
		if biggest := res.Sizes[len(res.Sizes)-1]; biggest >= wl.UniquePairs && last < 0.95 {
			t.Errorf("%s: representability %.2f with every pair storable", wl.Name, last)
		}
		for _, rep := range wl.RepAtSize {
			if rep < 0 || rep > 1.01 {
				t.Errorf("%s: representability %.3f out of range", wl.Name, rep)
			}
		}
	}
	// stg's small-table representability must trail the easy traces
	// (wdev), the paper's observation.
	byName := map[string][]float64{}
	for _, wl := range res.Workloads {
		byName[wl.Name] = wl.RepAtSize
	}
	if byName["stg"][0] >= byName["wdev"][0] {
		t.Errorf("stg small-table rep %.2f should trail wdev %.2f",
			byName["stg"][0], byName["wdev"][0])
	}
	render(t, res)
}

func TestFig10Shape(t *testing.T) {
	res, err := Fig10(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Checkpoints) != 3 {
		t.Fatalf("checkpoints = %d", len(res.Checkpoints))
	}
	cp := res.Checkpoints
	// After the first wdev segment the synopsis remembers wdev, not hm.
	if cp[0].RecallWdev <= cp[0].RecallHm {
		t.Errorf("cp0: wdev %.3f vs hm %.3f", cp[0].RecallWdev, cp[0].RecallHm)
	}
	// The hm interlude displaces wdev: hm recall rises, wdev drops.
	if cp[1].RecallHm <= cp[0].RecallHm {
		t.Errorf("cp1: hm recall should rise (%.3f -> %.3f)", cp[0].RecallHm, cp[1].RecallHm)
	}
	if cp[1].RecallWdev >= cp[0].RecallWdev {
		t.Errorf("cp1: wdev recall should drop (%.3f -> %.3f)", cp[0].RecallWdev, cp[1].RecallWdev)
	}
	// More wdev traffic fades hm and recovers wdev.
	if cp[2].RecallWdev <= cp[1].RecallWdev {
		t.Errorf("cp2: wdev should recover (%.3f -> %.3f)", cp[1].RecallWdev, cp[2].RecallWdev)
	}
	if cp[2].RecallHm >= cp[1].RecallHm {
		t.Errorf("cp2: hm should fade (%.3f -> %.3f)", cp[1].RecallHm, cp[2].RecallHm)
	}
	render(t, res)
}

func TestGCOptShape(t *testing.T) {
	res, err := GCOpt(small)
	if err != nil {
		t.Fatal(err)
	}
	waf := map[string]float64{}
	for _, row := range res.Rows {
		waf[row.Policy] = row.Stats.WAF
		if row.Stats.WAF < 1 {
			t.Errorf("%s: WAF %.3f < 1", row.Policy, row.Stats.WAF)
		}
	}
	single := waf["single-stream (conventional SSD)"]
	converged := waf["correlation streams (converged)"]
	oracle := waf["oracle (planted groups)"]
	hash := waf["hash streams (death-time blind)"]
	if converged >= single {
		t.Errorf("converged correlation WAF %.3f should beat single %.3f", converged, single)
	}
	if (single-1)/(converged-1) < 2 {
		t.Errorf("overhead cut only %.2fx", (single-1)/(converged-1))
	}
	if hash <= single {
		t.Errorf("hash streams %.3f should be worse than single %.3f on this workload", hash, single)
	}
	if oracle > converged+0.05 {
		t.Errorf("oracle %.3f should not lose to the learner %.3f", oracle, converged)
	}
	render(t, res)
}

func TestOCSSDShape(t *testing.T) {
	res, err := OCSSD(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Speedup < 1.5 {
		t.Errorf("correlation placement speedup %.2f < 1.5", res.Speedup)
	}
	// Fresh striping sits between the aged layout and the learned one.
	if res.Rows[0].MeanLatency >= res.Rows[1].MeanLatency {
		t.Errorf("fresh striping %v should beat the aged layout %v",
			res.Rows[0].MeanLatency, res.Rows[1].MeanLatency)
	}
	render(t, res)
}

func TestAblationWindowShape(t *testing.T) {
	res, err := AblationWindow(small)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]WindowRow{}
	for _, row := range res.Rows {
		byName[row.Policy] = row
	}
	if got := byName["dynamic 2×avg latency (paper)"].Detected; got != res.Planted {
		t.Errorf("dynamic window detected %d/%d", got, res.Planted)
	}
	if got := byName["static 1 µs (too small)"].Detected; got >= res.Planted {
		t.Errorf("1 µs window should miss correlations, detected %d", got)
	}
	render(t, res)
}

func TestAblationCapShape(t *testing.T) {
	res, err := AblationCap(small)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].PairTouches < res.Rows[i-1].PairTouches {
			t.Error("pair touches should grow with the cap")
		}
		if res.Rows[i].Recall+1e-9 < res.Rows[i-1].Recall-0.05 {
			t.Error("recall should not collapse as the cap grows")
		}
	}
	// Cap 8 should already be close to the cap-32 recall.
	if res.Rows[2].Recall < res.Rows[4].Recall-0.1 {
		t.Errorf("cap 8 recall %.3f far from cap 32 recall %.3f",
			res.Rows[2].Recall, res.Rows[4].Recall)
	}
	render(t, res)
}

func TestAblationTiersShape(t *testing.T) {
	res, err := AblationTiers(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.WeightedRecall <= 0 || row.WeightedRecall > 1 {
			t.Errorf("threshold %d ratio %.2f: recall %.3f out of range",
				row.PromoteThreshold, row.TierRatio, row.WeightedRecall)
		}
	}
	render(t, res)
}

func TestStreamBaselineShape(t *testing.T) {
	res, err := AblationStreamBaseline(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	synopsis := res.Rows[0]
	if synopsis.WeightedRecall < 0.5 {
		t.Errorf("synopsis recall %.3f unexpectedly low", synopsis.WeightedRecall)
	}
	// The paper's throughput argument: both stream-FIM baselines are
	// drastically slower per transaction than the synopsis.
	for _, row := range res.Rows[1:] {
		if row.NsPerTx < 5*synopsis.NsPerTx {
			t.Errorf("%s: %.0f ns/tx suspiciously close to the synopsis's %.0f",
				row.Detector, row.NsPerTx, synopsis.NsPerTx)
		}
	}
	render(t, res)
}

func TestCMinerBaselineShape(t *testing.T) {
	res, err := CMinerExperiment(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	online, offline := res.Rows[0], res.Rows[1]
	if online.WeightedRecall < 0.5 {
		t.Errorf("online recall %.3f unexpectedly low", online.WeightedRecall)
	}
	// C-Miner mines the raw stream: it must find a substantial share of
	// the transaction-defined correlations too.
	if offline.WeightedRecall < 0.4 {
		t.Errorf("C-Miner recall %.3f unexpectedly low", offline.WeightedRecall)
	}
	if offline.Runtime <= 0 {
		t.Error("C-Miner runtime not recorded")
	}
	render(t, res)
}

func TestCachingShape(t *testing.T) {
	res, err := Caching(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	lru := res.Rows[0].Stats.HitRate()
	ra := res.Rows[1].Stats.HitRate()
	corr := res.Rows[2].Stats.HitRate()
	if corr <= lru {
		t.Errorf("correlation prefetch %.3f should beat LRU %.3f", corr, lru)
	}
	if corr <= ra {
		t.Errorf("correlation prefetch %.3f should beat read-ahead %.3f", corr, ra)
	}
	render(t, res)
}

func TestRenderSVGArtifacts(t *testing.T) {
	dir := t.TempDir()
	fig1, err := Fig1(small)
	if err != nil {
		t.Fatal(err)
	}
	if err := fig1.RenderSVG(dir); err != nil {
		t.Fatal(err)
	}
	fig6, err := Fig6(Config{Scale: 0.05, Seed: small.Seed})
	if err != nil {
		t.Fatal(err)
	}
	if err := fig6.RenderSVG(dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 6 { // 5 fig1 heatmaps + fig6.svg
		t.Fatalf("artifacts = %d, want 6", len(entries))
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(string(data), "<svg") {
			t.Errorf("%s is not an SVG", e.Name())
		}
	}
}

func TestSpaceSavingShape(t *testing.T) {
	res, err := SpaceSavingExperiment(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Checkpoints) != 3 {
		t.Fatalf("checkpoints = %d", len(res.Checkpoints))
	}
	for i, cp := range res.Checkpoints {
		// The frequency-only summary's defining weakness at equal
		// memory: count inheritance floods it with false positives.
		if cp.Synopsis.Precision <= cp.SpaceSaving.Precision {
			t.Errorf("%s: synopsis precision %.3f vs space-saving %.3f",
				cp.Label, cp.Synopsis.Precision, cp.SpaceSaving.Precision)
		}
		// On the dominant (wdev) concept checkpoints the synopsis wins
		// outright on F1; mid-drift, Space-Saving's fast membership
		// churn can keep its recall competitive, so F1 there is not
		// asserted.
		if i != 1 && cp.Synopsis.F1 <= cp.SpaceSaving.F1 {
			t.Errorf("%s: synopsis F1 %.3f should beat space-saving %.3f",
				cp.Label, cp.Synopsis.F1, cp.SpaceSaving.F1)
		}
	}
	render(t, res)
}
