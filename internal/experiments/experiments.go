// Package experiments reproduces every table and figure of the paper's
// evaluation (and the Section V extensions) as runnable experiments.
// Each experiment returns a structured result with a text renderer, so
// the same code backs the cmd/experiments CLI and the repository's
// benchmark harness.
//
// Scaling: the paper's traces are week-long (10^7 requests) and its
// correlation tables reach C = 4M entries. Experiments here default to
// laptop-scale request counts and proportionally scaled table sizes;
// Config.Scale raises both. Shape comparisons (who wins, where knees
// and crossovers fall) are preserved; EXPERIMENTS.md records
// paper-versus-measured values.
package experiments

import (
	"fmt"
	"io"
	"time"

	"daccor/internal/blktrace"
	"daccor/internal/core"
	"daccor/internal/device"
	"daccor/internal/fim"
	"daccor/internal/monitor"
	"daccor/internal/msr"
	"daccor/internal/pipeline"
	"daccor/internal/replay"
)

// Config controls experiment scale and determinism.
type Config struct {
	// Scale multiplies request counts (and, where applicable, table
	// sizes). 1.0 is the laptop-scale default; 0 means 1.0.
	Scale float64
	// Seed drives all generators.
	Seed int64
	// Support is the minimum correlation frequency used where the
	// paper uses support 5 (real-world workloads); 0 means 5.
	Support int
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Support == 0 {
		c.Support = 5
	}
	return c
}

func (c Config) scaled(n int) int {
	v := int(float64(n) * c.Scale)
	if v < 1 {
		v = 1
	}
	return v
}

// workloadRun is one MSR-like workload driven through the full
// pipeline: generated trace, live replay on the simulated NVMe device
// with monitoring and online analysis attached, stored transactions,
// and the offline pair-frequency ground truth mined from them.
type workloadRun struct {
	Gen          *msr.GeneratedTrace
	Speedup      replay.SpeedupMeasurement
	Transactions []monitor.Transaction
	Freqs        map[blktrace.Pair]int
	Pipe         *pipeline.Pipeline
}

// runWorkload executes the paper's evaluation pipeline for one profile:
// measure the Table II replay speedup, then replay the trace at that
// speedup with live monitoring (dynamic 2×-latency window, cap 8,
// dedup) and online analysis of capacity pairCapacity, keeping the
// transactions for offline FIM.
func runWorkload(p msr.Profile, requests int, seed int64, pairCapacity int) (*workloadRun, error) {
	gen, err := p.Generate(requests, seed)
	if err != nil {
		return nil, err
	}
	dev, err := device.New(device.NVMeSSD(), seed+1)
	if err != nil {
		return nil, err
	}
	sp, err := replay.MeasureSpeedup(gen.Trace, gen.Latencies, dev, 3)
	if err != nil {
		return nil, err
	}
	pipe, _, err := pipeline.AnalyzeReplay(gen.Trace, dev, replay.Options{Speedup: sp.Speedup},
		pipeline.Config{
			Analyzer: core.Config{
				ItemCapacity: pairCapacity,
				PairCapacity: pairCapacity,
			},
			KeepTransactions: true,
		})
	if err != nil {
		return nil, err
	}
	txs := pipe.Transactions()
	ds := fim.NewDataset(pipeline.ExtentSets(txs))
	return &workloadRun{
		Gen:          gen,
		Speedup:      sp,
		Transactions: txs,
		Freqs:        ds.PairFrequencies(),
		Pipe:         pipe,
	}, nil
}

// replayTransactions runs a fresh analyzer of the given capacity over
// stored transactions (used for table-size sweeps without re-replaying).
func replayTransactions(txs []monitor.Transaction, capacity int) (*core.Analyzer, error) {
	a, err := core.NewAnalyzer(core.Config{ItemCapacity: capacity, PairCapacity: capacity})
	if err != nil {
		return nil, err
	}
	for _, tx := range txs {
		a.Process(tx.Extents)
	}
	return a, nil
}

// fmtDur renders a duration like the paper's tables (µs/ms with 2
// decimals).
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2f ms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.2f µs", float64(d)/float64(time.Microsecond))
	}
	return fmt.Sprintf("%d ns", d.Nanoseconds())
}

func fprintf(w io.Writer, format string, args ...any) {
	// Rendering helpers write to in-memory or stdout writers; an
	// encoding error there is a programming error, not a runtime
	// condition worth threading through every caller.
	if _, err := fmt.Fprintf(w, format, args...); err != nil {
		panic(err)
	}
}
