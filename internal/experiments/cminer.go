package experiments

import (
	"io"
	"time"

	"daccor/internal/analysis"
	"daccor/internal/cminer"
	"daccor/internal/msr"
)

// CMinerRow is one detector's accuracy/runtime point against the
// offline transaction-based ground truth.
type CMinerRow struct {
	Detector       string
	WeightedRecall float64
	Runtime        time.Duration
	PairsReported  int
}

// CMinerBaseline compares the paper's online synopsis with a
// C-Miner-style offline closed-sequence miner (Li et al., FAST '04) on
// the same workload. C-Miner is the prior art the paper's introduction
// positions against: accurate, but offline — it needs the recorded
// stream and a multi-pass mining run after the fact.
type CMinerBaseline struct {
	Support int
	Rows    []CMinerRow
}

// CMinerExperiment runs the comparison on the wdev-like trace.
func CMinerExperiment(cfg Config) (*CMinerBaseline, error) {
	cfg = cfg.withDefaults()
	p, err := msr.ProfileByName("wdev")
	if err != nil {
		return nil, err
	}
	run, err := runWorkload(p, cfg.scaled(p.DefaultRequests), cfg.Seed, cfg.scaled(32*1024))
	if err != nil {
		return nil, err
	}
	res := &CMinerBaseline{Support: cfg.Support}

	// Online synopsis (already computed during the live replay).
	online := run.Pipe.Snapshot(uint32(cfg.Support)).PairSet()
	res.Rows = append(res.Rows, CMinerRow{
		Detector:       "online synopsis (paper, real time)",
		WeightedRecall: analysis.WeightedRecall(online, run.Freqs, cfg.Support),
		PairsReported:  len(online),
	})

	// C-Miner over the recorded stream, gap tuned to the transaction
	// cap's reach (pairs only, its best case here).
	start := time.Now()
	mined, err := cminer.Mine(run.Gen.Trace, cminer.Options{
		SegmentLen: 128,
		Gap:        6,
		MinSupport: cfg.Support,
		MaxLen:     2,
		// Pairs only: the closed filter would absorb pairs into longer
		// patterns and is not needed at MaxLen 2.
		KeepNonClosed: true,
	})
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	pairs := mined.FrequentPairSet()
	res.Rows = append(res.Rows, CMinerRow{
		Detector:       "C-Miner-style offline sequences",
		WeightedRecall: analysis.WeightedRecall(pairs, run.Freqs, cfg.Support),
		Runtime:        elapsed,
		PairsReported:  len(pairs),
	})
	return res, nil
}

// Render writes the comparison.
func (r *CMinerBaseline) Render(w io.Writer) {
	fprintf(w, "BASELINE: Online synopsis vs C-Miner-style offline mining (wdev-like, support %d)\n\n", r.Support)
	fprintf(w, "%-36s %16s %12s %10s\n", "detector", "weighted recall", "mining time", "pairs")
	for _, row := range r.Rows {
		rt := "(live)"
		if row.Runtime > 0 {
			rt = fmtDur(row.Runtime)
		}
		fprintf(w, "%-36s %15.1f%% %12s %10d\n",
			row.Detector, 100*row.WeightedRecall, rt, row.PairsReported)
	}
	fprintf(w, "\nC-Miner needs the stored trace and a post-hoc mining pass; the\n")
	fprintf(w, "synopsis reaches comparable coverage while the workload runs.\n")
}
