package experiments

import (
	"io"
	"time"

	"daccor/internal/analysis"
	"daccor/internal/blktrace"
	"daccor/internal/core"
	"daccor/internal/fim"
	"daccor/internal/monitor"
	"daccor/internal/msr"
	"daccor/internal/pipeline"
	"daccor/internal/spacesaving"
)

// SpaceSavingCheckpoint compares the two detectors against the
// *current* concept's frequent pairs at one drift checkpoint.
type SpaceSavingCheckpoint struct {
	Label              string
	Synopsis           analysis.PRF
	SpaceSaving        analysis.PRF
	SpaceSavingStalest blktrace.Pair // the summary's top pair (staleness witness)
}

// SpaceSavingResult is ablation A6: the paper's recency+frequency
// synopsis versus the canonical frequency-only heavy-hitter summary at
// equal entry budget, under concept drift.
type SpaceSavingResult struct {
	Entries     int
	Checkpoints []SpaceSavingCheckpoint
}

// SpaceSavingExperiment replays the Fig. 10 drift scenario (wdev → hm →
// wdev) through both detectors and scores each checkpoint against the
// concept that was just active.
func SpaceSavingExperiment(cfg Config) (*SpaceSavingResult, error) {
	cfg = cfg.withDefaults()
	segment := cfg.scaled(40_000)

	wdevProfile, err := msr.ProfileByName("wdev")
	if err != nil {
		return nil, err
	}
	hmProfile, err := msr.ProfileByName("hm")
	if err != nil {
		return nil, err
	}
	wdevGen, err := wdevProfile.Generate(2*segment, cfg.Seed)
	if err != nil {
		return nil, err
	}
	hmGen, err := hmProfile.Generate(segment, cfg.Seed+1)
	if err != nil {
		return nil, err
	}

	window := monitor.Config{Window: monitor.StaticWindow(100 * time.Microsecond)}
	collect := func(t *blktrace.Trace) ([]monitor.Transaction, error) {
		return monitor.Collect(t, window)
	}
	wdev1Tx, err := collect(wdevGen.Trace.Slice(0, min(segment, wdevGen.Trace.Len())))
	if err != nil {
		return nil, err
	}
	hmTx, err := collect(hmGen.Trace)
	if err != nil {
		return nil, err
	}
	wdev2Tx, err := collect(wdevGen.Trace.Slice(min(segment, wdevGen.Trace.Len()), wdevGen.Trace.Len()))
	if err != nil {
		return nil, err
	}
	support := cfg.Support
	truthOf := func(txs []monitor.Transaction) map[blktrace.Pair]struct{} {
		ds := fim.NewDataset(pipeline.ExtentSets(txs))
		return analysis.FrequentSet(ds.PairFrequencies(), support)
	}
	wdev1Truth := truthOf(wdev1Tx)
	hmTruth := truthOf(hmTx)
	wdev2Truth := truthOf(wdev2Tx)

	// Equal budgets: the synopsis's correlation table holds 2C pair
	// entries; give Space-Saving the same number of counters. Size so
	// neither can hold both concepts (the Fig. 10 condition).
	tableC := (len(wdev1Truth) + len(hmTruth)) / 3
	if tableC < 64 {
		tableC = 64
	}
	entries := 2 * tableC

	syn, err := core.NewAnalyzer(core.Config{ItemCapacity: tableC, PairCapacity: tableC})
	if err != nil {
		return nil, err
	}
	ss, err := spacesaving.New(entries)
	if err != nil {
		return nil, err
	}
	res := &SpaceSavingResult{Entries: entries}
	feed := func(txs []monitor.Transaction) {
		for _, tx := range txs {
			syn.Process(tx.Extents)
			ss.Process(tx.Extents)
		}
	}
	check := func(label string, truth map[blktrace.Pair]struct{}) {
		cp := SpaceSavingCheckpoint{
			Label:       label,
			Synopsis:    analysis.DetectionPRF(syn.Snapshot(uint32(support)).PairSet(), truth),
			SpaceSaving: analysis.DetectionPRF(ss.PairSet(uint64(support)), truth),
		}
		if top := ss.Top(0); len(top) > 0 {
			cp.SpaceSavingStalest = top[0].Pair
		}
		res.Checkpoints = append(res.Checkpoints, cp)
	}
	feed(wdev1Tx)
	check("after wdev[0:N] vs wdev concept", wdev1Truth)
	feed(hmTx)
	check("after hm[0:N] vs hm concept", hmTruth)
	feed(wdev2Tx)
	check("after wdev[N:2N] vs wdev concept", wdev2Truth)
	return res, nil
}

// Render writes the comparison.
func (r *SpaceSavingResult) Render(w io.Writer) {
	fprintf(w, "ABLATION A6: Recency+frequency synopsis vs frequency-only Space-Saving\n")
	fprintf(w, "(concept drift, %d pair entries each)\n\n", r.Entries)
	fprintf(w, "%-36s %22s %22s\n", "checkpoint vs current concept", "synopsis P/R/F1", "space-saving P/R/F1")
	for _, cp := range r.Checkpoints {
		fprintf(w, "%-36s  %5.1f%%/%5.1f%%/%5.1f%%  %5.1f%%/%5.1f%%/%5.1f%%\n",
			cp.Label,
			100*cp.Synopsis.Precision, 100*cp.Synopsis.Recall, 100*cp.Synopsis.F1,
			100*cp.SpaceSaving.Precision, 100*cp.SpaceSaving.Recall, 100*cp.SpaceSaving.F1)
	}
	fprintf(w, "\nSpace-Saving keeps frequency giants forever and inherits counts on\n")
	fprintf(w, "replacement (overestimation → false positives); the synopsis's LRU\n")
	fprintf(w, "tiers track the concept that is actually running.\n")
}
