package engine

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"daccor/internal/blktrace"
)

// TestEngineConcurrentStress drives all four engine verbs at once —
// Register, Submit, Snapshot/Stats/merge queries, and finally Stop —
// across 8 devices. It exists to run under -race: the engine's claim
// is that shard state is confined to worker goroutines and everything
// else goes through channels, and this is the test that would catch a
// shortcut past that design.
func TestEngineConcurrentStress(t *testing.T) {
	e := mustEngine(t, WithQueueSize(256), WithBackpressure(DropOldest))
	const devices = 8
	const eventsPerDevice = 400

	ids := make([]string, devices)
	for i := range ids {
		ids[i] = fmt.Sprintf("dev%d", i)
	}

	// Readers hammer the query surface for the whole test, including
	// while devices are still being registered (ErrUnknownDevice is
	// expected then) and across Stop (ErrStopped is expected after).
	stopReaders := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for i := 0; ; i++ {
				select {
				case <-stopReaders:
					return
				default:
					// Spinning readers can starve the feeder goroutines on
					// GOMAXPROCS=1 (cond/chan wakeup chains keep re-filling
					// the runnext slot), stretching the test from <1s to
					// minutes; yield so registration always makes progress.
					runtime.Gosched()
				}
				var err error
				switch i % 4 {
				case 0:
					_, err = e.Snapshot(ids[(r+i)%devices], 1)
				case 1:
					_, err = e.Stats()
				case 2:
					_, err = e.MergedSnapshot(1)
				case 3:
					_ = e.Devices()
					err = e.Metrics().WritePrometheus(io.Discard)
				}
				if err != nil && !errors.Is(err, ErrUnknownDevice) && !errors.Is(err, ErrStopped) {
					t.Errorf("reader %d: %v", r, err)
					return
				}
			}
		}(r)
	}

	// Each feeder registers its own device and then streams events, so
	// registration races both the other registrations and the readers.
	var feeders sync.WaitGroup
	for d := 0; d < devices; d++ {
		feeders.Add(1)
		go func(id string) {
			defer feeders.Done()
			if err := e.Register(id); err != nil {
				t.Errorf("register %s: %v", id, err)
				return
			}
			dev, err := e.Device(id)
			if err != nil {
				t.Errorf("device %s: %v", id, err)
				return
			}
			for i := 0; i < eventsPerDevice; i++ {
				ev := blktrace.Event{
					Time:   int64(i) * int64(time.Millisecond),
					Op:     blktrace.OpRead,
					Extent: blktrace.Extent{Block: uint64(1 + i%64), Len: 1},
				}
				if err := dev.Submit(ev); err != nil {
					t.Errorf("submit %s: %v", id, err)
					return
				}
				dev.ObserveLatency(int64(40 * time.Microsecond))
			}
		}(ids[d])
	}
	feeders.Wait()

	// Every event must be accounted for (processed or counted dropped)
	// before the shutdown race starts.
	for _, id := range ids {
		ds := waitDrained(t, e, id, eventsPerDevice)
		if ds.Monitor.Events+ds.Dropped != eventsPerDevice {
			t.Errorf("%s: %d processed + %d dropped, want %d total",
				id, ds.Monitor.Events, ds.Dropped, eventsPerDevice)
		}
	}

	// Late submitters race Stop itself: they must only ever observe a
	// clean ErrStopped, never a hang or a corrupted queue.
	var late sync.WaitGroup
	for d := 0; d < 2; d++ {
		late.Add(1)
		go func(id string) {
			defer late.Done()
			dev, err := e.Device(id)
			if err != nil {
				t.Errorf("device %s: %v", id, err)
				return
			}
			for i := 0; ; i++ {
				ev := blktrace.Event{
					Time:   int64(eventsPerDevice+i) * int64(time.Millisecond),
					Op:     blktrace.OpRead,
					Extent: blktrace.Extent{Block: 1, Len: 1},
				}
				if err := dev.Submit(ev); err != nil {
					if !errors.Is(err, ErrStopped) {
						t.Errorf("late submit %s: %v", id, err)
					}
					return
				}
				runtime.Gosched() // same starvation hazard as the readers
			}
		}(ids[d])
	}
	time.Sleep(2 * time.Millisecond)
	e.Stop()
	late.Wait()
	close(stopReaders)
	readers.Wait()

	if err := e.Submit(ids[0], blktrace.Event{
		Op: blktrace.OpRead, Extent: blktrace.Extent{Block: 1, Len: 1},
	}); !errors.Is(err, ErrStopped) {
		t.Errorf("post-stop submit = %v, want ErrStopped", err)
	}
	if err := e.Register("devZ"); !errors.Is(err, ErrStopped) {
		t.Errorf("post-stop register = %v, want ErrStopped", err)
	}
	// The roster survives shutdown, still sorted.
	if got := e.Devices(); !reflect.DeepEqual(got, ids) {
		t.Errorf("post-stop Devices() = %v, want %v", got, ids)
	}
}

// TestEngineDeterministicOrder pins the fix for scheduling-dependent
// device ordering: no matter which goroutine wins each registration
// race, Devices(), Stats(), and the metrics exposition must list
// devices in sorted ID order — /v1/devices and scrape output may not
// depend on who registered first.
func TestEngineDeterministicOrder(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		ids := make([]string, 16)
		for i := range ids {
			ids[i] = fmt.Sprintf("vol%02d", i)
		}
		e := mustEngine(t)
		perm := rand.New(rand.NewSource(int64(trial))).Perm(len(ids))
		var wg sync.WaitGroup
		for _, i := range perm {
			wg.Add(1)
			go func(id string) {
				defer wg.Done()
				if err := e.Register(id); err != nil {
					t.Errorf("register %s: %v", id, err)
				}
			}(ids[i])
		}
		wg.Wait()

		if got := e.Devices(); !reflect.DeepEqual(got, ids) {
			t.Fatalf("trial %d: Devices() = %v, want sorted %v", trial, got, ids)
		}
		st, err := e.Stats()
		if err != nil {
			t.Fatal(err)
		}
		for i, ds := range st.Devices {
			if ds.Device != ids[i] {
				t.Errorf("trial %d: Stats()[%d] = %s, want %s", trial, i, ds.Device, ids[i])
			}
		}
		var b1, b2 bytes.Buffer
		if err := e.Metrics().WritePrometheus(&b1); err != nil {
			t.Fatal(err)
		}
		if err := e.Metrics().WritePrometheus(&b2); err != nil {
			t.Fatal(err)
		}
		if b1.String() != b2.String() {
			t.Errorf("trial %d: metric exposition not stable across scrapes", trial)
		}
		e.Stop()
	}
}
