package engine

import (
	"io"
	"sync"
	"time"

	"daccor/internal/blktrace"
	"daccor/internal/core"
	"daccor/internal/monitor"
	"daccor/internal/pipeline"
)

type queryKind int

const (
	querySnapshot queryKind = iota
	queryRules
	queryStats
	querySave
)

type query struct {
	kind       queryKind
	minSupport uint32
	minConf    float64
	saveTo     io.Writer
	reply      chan queryReply
}

type queryReply struct {
	snapshot core.Snapshot
	rules    []core.Rule
	monStats monitor.Stats
	anStats  core.Stats
	window   time.Duration
	saveErr  error
}

// shard is one device's slice of the engine: a pipeline owned by a
// single worker goroutine, fed through a bounded ring of events. State
// confinement is the concurrency design — the pipeline is only ever
// touched by the worker, producers and queriers communicate through the
// mutex-guarded queues, and the worker drains whole batches per lock
// acquisition so the hot path amortizes synchronization.
type shard struct {
	id      string
	pipe    *pipeline.Pipeline
	policy  Backpressure
	metrics *shardMetrics

	mu       sync.Mutex
	notEmpty sync.Cond // signalled when work arrives
	notFull  sync.Cond // signalled when the worker frees queue space (Block policy)
	buf      []blktrace.Event
	tsbuf    []int64 // parallel ring: sampled enqueue times (UnixNano), 0 = unsampled
	head     int     // index of the oldest queued event
	count    int     // queued events
	seq      uint64  // submits seen, drives latency sampling
	lats     []int64
	queries  []query
	stopping bool

	done chan struct{} // closed when the worker exits
}

func newShard(id string, pipe *pipeline.Pipeline, queueSize int, policy Backpressure) *shard {
	s := &shard{
		id:     id,
		pipe:   pipe,
		policy: policy,
		buf:    make([]blktrace.Event, queueSize),
		tsbuf:  make([]int64, queueSize),
		done:   make(chan struct{}),
	}
	s.notEmpty.L = &s.mu
	s.notFull.L = &s.mu
	return s
}

// run is the worker loop: sleep until work arrives, take everything
// queued in one critical section, then process it outside the lock.
// On stop it drains the final batch, flushes the open transaction, and
// answers any pending queries against the flushed state.
func (s *shard) run() {
	defer close(s.done)
	var evs []blktrace.Event
	var tss []int64
	var lats []int64
	var queries []query
	for {
		s.mu.Lock()
		for s.count == 0 && len(s.lats) == 0 && len(s.queries) == 0 && !s.stopping {
			s.notEmpty.Wait()
		}
		evs = evs[:0]
		tss = tss[:0]
		for s.count > 0 {
			evs = append(evs, s.buf[s.head])
			tss = append(tss, s.tsbuf[s.head])
			s.head++
			if s.head == len(s.buf) {
				s.head = 0
			}
			s.count--
		}
		lats = append(lats[:0], s.lats...)
		s.lats = s.lats[:0]
		queries = append(queries[:0], s.queries...)
		s.queries = s.queries[:0]
		stopping := s.stopping
		if s.policy == Block {
			s.notFull.Broadcast()
		}
		s.mu.Unlock()

		for _, ns := range lats {
			s.pipe.Monitor().ObserveLatency(ns)
		}
		for i, ev := range evs {
			// Events were validated in Submit; the monitor re-validates
			// and cannot fail here.
			_ = s.pipe.HandleIssue(ev)
			if tss[i] != 0 {
				s.metrics.observeSubmitLatency(tss[i])
			}
		}
		if stopping {
			s.pipe.Flush()
			for _, q := range queries {
				s.answer(q)
			}
			return
		}
		for _, q := range queries {
			s.answer(q)
		}
	}
}

func (s *shard) answer(q query) {
	var r queryReply
	switch q.kind {
	case querySnapshot:
		r.snapshot = s.pipe.Snapshot(q.minSupport)
	case queryRules:
		r.rules = s.pipe.Analyzer().Rules(q.minSupport, q.minConf)
	case queryStats:
		r.monStats = s.pipe.Monitor().Stats()
		r.anStats = s.pipe.Analyzer().Stats()
		r.window = s.pipe.WindowDuration()
	case querySave:
		_, r.saveErr = s.pipe.Analyzer().WriteTo(q.saveTo)
	}
	q.reply <- r
}

// submit enqueues one pre-validated event. When the queue is full the
// configured backpressure policy decides: DropOldest evicts the oldest
// queued event (counted) so the producer never stalls, Block waits for
// the worker to free space.
func (s *shard) submit(ev blktrace.Event) error {
	s.mu.Lock()
	if s.stopping {
		s.mu.Unlock()
		return ErrStopped
	}
	if s.count == len(s.buf) {
		if s.policy == DropOldest {
			s.dropOldestLocked()
		} else {
			s.metrics.blocked.Inc()
			for s.count == len(s.buf) && !s.stopping {
				s.notFull.Wait()
			}
			if s.stopping {
				s.mu.Unlock()
				return ErrStopped
			}
		}
	}
	s.enqueueLocked(ev)
	s.metrics.submitted.Inc()
	s.notEmpty.Signal()
	s.mu.Unlock()
	return nil
}

// submitBatch enqueues a batch of pre-validated events under a single
// lock acquisition — the amortization that makes replayed and bulk
// ingestion cheap. Backpressure applies per event exactly as in
// submit: DropOldest discards the oldest queued events to admit the
// batch without stalling, Block parks until the worker frees space
// (waking the worker first, so a batch larger than the queue drains
// through it rather than deadlocking). On ErrStopped mid-wait the
// events enqueued so far remain queued and are drained by the stopping
// worker.
func (s *shard) submitBatch(evs []blktrace.Event) error {
	if len(evs) == 0 {
		return nil
	}
	s.mu.Lock()
	if s.stopping {
		s.mu.Unlock()
		return ErrStopped
	}
	n := 0
	for _, ev := range evs {
		for s.count == len(s.buf) {
			if s.policy == DropOldest {
				s.dropOldestLocked()
				continue
			}
			s.metrics.blocked.Inc()
			// The queue is full, so the worker has a whole buffer to
			// chew on; make sure it is awake before parking.
			s.notEmpty.Signal()
			for s.count == len(s.buf) && !s.stopping {
				s.notFull.Wait()
			}
			if s.stopping {
				s.finishBatchLocked(n, len(evs))
				s.mu.Unlock()
				return ErrStopped
			}
		}
		s.enqueueLocked(ev)
		n++
	}
	s.finishBatchLocked(n, len(evs))
	s.notEmpty.Signal()
	s.mu.Unlock()
	return nil
}

// enqueueLocked appends one event at the ring tail, stamping the
// 1-in-64 latency sample. Callers hold s.mu and have ensured space.
func (s *shard) enqueueLocked(ev blktrace.Event) {
	s.seq++
	var ts int64
	if s.seq&latencySampleMask == 0 {
		ts = time.Now().UnixNano()
	}
	tail := s.head + s.count
	if tail >= len(s.buf) {
		tail -= len(s.buf)
	}
	s.buf[tail] = ev
	s.tsbuf[tail] = ts
	s.count++
}

// dropOldestLocked discards the oldest queued event (counted) and
// clears the recycled slot's sampled enqueue timestamp, so a slot that
// held a sampled event cannot report a stale latency if anything other
// than an immediate overwrite recycles it.
func (s *shard) dropOldestLocked() {
	s.buf[s.head] = blktrace.Event{}
	s.tsbuf[s.head] = 0
	s.head++
	if s.head == len(s.buf) {
		s.head = 0
	}
	s.count--
	s.metrics.dropped.Inc()
}

// finishBatchLocked records batch accounting: n events actually
// enqueued (n < size only when stopping interrupted a blocked batch).
func (s *shard) finishBatchLocked(n, size int) {
	if n > 0 {
		s.metrics.submitted.Add(uint64(n))
	}
	s.metrics.batches.Inc()
	s.metrics.batchSize.Observe(float64(size))
}

// observeLatency enqueues one completion latency. Latencies are
// droppable signal (they only steer the dynamic window), so when the
// worker is far behind they are silently discarded rather than queued
// without bound.
func (s *shard) observeLatency(ns int64) {
	s.mu.Lock()
	if !s.stopping && len(s.lats) < len(s.buf) {
		s.lats = append(s.lats, ns)
		s.notEmpty.Signal()
	}
	s.mu.Unlock()
}

// ask posts a query to the worker and waits for the reply.
func (s *shard) ask(q query) (queryReply, error) {
	q.reply = make(chan queryReply, 1)
	s.mu.Lock()
	if s.stopping {
		s.mu.Unlock()
		return queryReply{}, ErrStopped
	}
	s.queries = append(s.queries, q)
	s.notEmpty.Signal()
	s.mu.Unlock()
	select {
	case r := <-q.reply:
		return r, nil
	case <-s.done:
		return queryReply{}, ErrStopped
	}
}

// counters reads the producer-side counters: total events discarded by
// drop-oldest backpressure and the current ingest lag (events queued
// but not yet processed). Unlike queries these never touch the worker,
// so they stay readable after Stop. The drop count lives in the
// metrics layer (single source of truth for accounting and /v1/metrics).
func (s *shard) counters() (dropped uint64, lag int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.metrics.dropped.Value(), s.count
}

// stop asks the worker to drain, flush, and exit. The caller waits on
// s.done.
func (s *shard) requestStop() {
	s.mu.Lock()
	if !s.stopping {
		s.stopping = true
		s.notEmpty.Broadcast()
		s.notFull.Broadcast()
	}
	s.mu.Unlock()
}
