package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"daccor/internal/blktrace"
	"daccor/internal/checkpoint"
	"daccor/internal/core"
	"daccor/internal/monitor"
	"daccor/internal/pipeline"
)

type queryKind int

// The worker answers only two query kinds. queryCapture is the whole
// read path: it copies the synopsis into the asker's RawSnapshot in
// O(live entries) and returns; sorting, rule extraction, JSON, and
// checkpoint encoding all happen on the asking goroutine against the
// immutable copy, so readers no longer stall ingest for the duration
// of a serialization (see core.RawSnapshot).
const (
	queryCapture queryKind = iota
	queryStats
)

type query struct {
	kind queryKind
	// raw receives the capture for queryCapture; owned by the asker,
	// written by the worker before the reply is sent.
	raw   *core.RawSnapshot
	reply chan queryReply
}

type queryReply struct {
	monStats monitor.Stats
	anStats  core.Stats
	window   time.Duration
	itemIdx  core.IndexStats
	pairIdx  core.IndexStats
	// err is set when the query could not be served at all: the worker
	// panicked while answering it, or the device failed permanently.
	err error
}

// rawPool recycles capture buffers across one-shot reads (rules,
// saves, checkpoints), so a steady stream of them settles into zero
// steady-state allocation for the capture itself.
var rawPool = sync.Pool{New: func() any { return new(core.RawSnapshot) }}

// shard is one device's slice of the engine: a pipeline owned by a
// single worker goroutine, fed through a bounded ring of events. State
// confinement is the concurrency design — the pipeline is only ever
// touched by the worker, producers and queriers communicate through the
// mutex-guarded queues, and the worker drains whole batches per lock
// acquisition so the hot path amortizes synchronization.
//
// The worker itself runs under a supervisor (see supervise): a panic
// in the pipeline is recovered, the freshest checkpoint is restored,
// and the worker restarts with backoff while producers keep enqueuing
// into the ring.
type shard struct {
	id      string
	pipe    *pipeline.Pipeline
	policy  Backpressure
	metrics *shardMetrics

	super   SupervisorConfig
	ckpt    *checkpoint.Store
	rebuild func() (*pipeline.Pipeline, checkpoint.Generation, error)
	hook    func(device string, ev blktrace.Event)

	mu       sync.Mutex
	notEmpty sync.Cond // signalled when work arrives
	notFull  sync.Cond // signalled when the worker frees queue space (Block policy)
	buf      []blktrace.Event
	tsbuf    []int64 // parallel ring: sampled enqueue times (UnixNano), 0 = unsampled
	head     int     // index of the oldest queued event
	count    int     // queued events
	seq      uint64  // submits seen, drives latency sampling
	lats     []int64
	queries  []query
	inflight []query // queries claimed by the worker but not yet answered
	stopping bool

	// Supervision state, guarded by mu. The pipe field is exempt: it is
	// owned by the worker goroutine, and the supervisor only swaps it
	// between worker runs (same goroutine).
	state        HealthState
	panics       uint64
	restarts     uint64
	consecutive  int
	lastRestart  time.Time
	sinceRestart uint64
	ckptGen      uint64
	ckptTime     time.Time

	stopCh chan struct{} // closed by requestStop: interrupts backoff and the checkpoint loop
	done   chan struct{} // closed when the supervisor goroutine exits

	// notify wakes epoch waiters (see watch.go); onEpoch forwards each
	// advance to the engine's fleet-level notifier. onEpoch is set
	// before the supervisor starts and never mutated after.
	notify  *epochNotifier
	onEpoch func()

	// epoch counts synopsis state changes: it advances whenever the
	// worker processes a batch of events, flushes on stop, or is
	// restarted onto restored state. Two reads at the same epoch see
	// identical synopsis state, which is what lets the snapshot cache
	// below (and the HTTP layer's ETags) skip recomputation — and even
	// the worker round trip — when nothing changed.
	epoch atomic.Uint64

	// Epoch-gated snapshot cache. snapMu serializes the capture+convert
	// path so a query storm at one epoch does one capture; followers
	// wait and take the cached product. The epoch is loaded before the
	// capture is requested, so a cache entry can under-claim freshness
	// (worker advanced mid-ask → next read recaptures) but never serve
	// stale data.
	snapMu      sync.Mutex
	snapRaw     *core.RawSnapshot // capture scratch, reused under snapMu
	snapCached  core.Snapshot
	snapEpoch   uint64
	snapSupport uint32
	snapValid   bool
}

func newShard(id string, pipe *pipeline.Pipeline, queueSize int, policy Backpressure) *shard {
	s := &shard{
		id:     id,
		pipe:   pipe,
		policy: policy,
		buf:    make([]blktrace.Event, queueSize),
		tsbuf:  make([]int64, queueSize),
		stopCh: make(chan struct{}),
		done:   make(chan struct{}),
		notify: newEpochNotifier(),
	}
	s.notEmpty.L = &s.mu
	s.notFull.L = &s.mu
	return s
}

// runOnce executes the worker loop until a clean stop (returns nil) or
// a panic in the pipeline (returns the recovered value). The recover
// is the supervision boundary: one device's bug must never tear down
// the process or its sibling devices.
func (s *shard) runOnce() (panicked any) {
	defer func() { panicked = recover() }()
	s.loop()
	return nil
}

// loop is the worker body: sleep until work arrives, take everything
// queued in one critical section, then process it outside the lock.
// On stop it drains the final batch, flushes the open transaction,
// writes a final checkpoint, and answers any pending queries against
// the flushed state.
func (s *shard) loop() {
	var evs []blktrace.Event
	var tss []int64
	var lats []int64
	for {
		s.mu.Lock()
		for s.count == 0 && len(s.lats) == 0 && len(s.queries) == 0 && !s.stopping {
			s.notEmpty.Wait()
		}
		evs = evs[:0]
		tss = tss[:0]
		for s.count > 0 {
			evs = append(evs, s.buf[s.head])
			tss = append(tss, s.tsbuf[s.head])
			s.head++
			if s.head == len(s.buf) {
				s.head = 0
			}
			s.count--
		}
		lats = append(lats[:0], s.lats...)
		s.lats = s.lats[:0]
		s.inflight = append(s.inflight[:0], s.queries...)
		s.queries = s.queries[:0]
		stopping := s.stopping
		if s.policy == Block {
			s.notFull.Broadcast()
		}
		s.mu.Unlock()

		for _, ns := range lats {
			s.pipe.Monitor().ObserveLatency(ns)
		}
		for i, ev := range evs {
			if s.hook != nil {
				s.hook(s.id, ev)
			}
			// Events were validated in Submit; the monitor re-validates
			// and cannot fail here.
			_ = s.pipe.HandleIssue(ev)
			if tss[i] != 0 {
				s.metrics.observeSubmitLatency(tss[i])
			}
		}
		if len(evs) > 0 {
			s.bumpEpoch()
		}
		s.noteProcessed(len(evs))
		if stopping {
			s.pipe.Flush()
			s.bumpEpoch()
			// Final flush: persist the drained state so a restart does
			// not pay the cold-start transient. An error is recorded in
			// the checkpoint metrics; shutdown proceeds regardless.
			_ = s.writeCheckpoint()
			s.answerInflight()
			return
		}
		s.answerInflight()
	}
}

// answerInflight answers the queries the worker claimed this round,
// consuming them one at a time so a panic mid-answer leaves only the
// genuinely unanswered ones for the supervisor to requeue.
func (s *shard) answerInflight() {
	for len(s.inflight) > 0 {
		q := s.inflight[0]
		s.inflight = s.inflight[1:]
		s.answer(q)
	}
}

// answer computes one query reply. If the computation panics (corrupt
// synopsis state), the asker still gets a reply — a typed
// ErrDeviceUnavailable — before the panic propagates to the supervisor
// to restart the worker; queries must fail fast, never hang.
func (s *shard) answer(q query) {
	defer func() {
		if r := recover(); r != nil {
			q.reply <- queryReply{err: fmt.Errorf("%w: %q query panicked: %v", ErrDeviceUnavailable, s.id, r)}
			panic(r)
		}
	}()
	var r queryReply
	switch q.kind {
	case queryCapture:
		// The capture is the only read-side work charged to the worker;
		// its duration is the ingest stall a reader causes, so it is
		// what the capture-seconds histogram measures.
		start := time.Now()
		s.pipe.Analyzer().CaptureSnapshot(q.raw)
		s.metrics.captureSeconds.Observe(time.Since(start).Seconds())
	case queryStats:
		a := s.pipe.Analyzer()
		r.monStats = s.pipe.Monitor().Stats()
		r.anStats = a.Stats()
		r.window = s.pipe.WindowDuration()
		r.itemIdx = a.Items().IndexStats()
		r.pairIdx = a.Pairs().IndexStats()
	}
	q.reply <- r
}

// submit enqueues one pre-validated event. When the queue is full the
// configured backpressure policy decides: DropOldest evicts the oldest
// queued event (counted) so the producer never stalls, Block waits for
// the worker to free space.
func (s *shard) submit(ev blktrace.Event) error {
	s.mu.Lock()
	if err := s.acceptingLocked(); err != nil {
		s.mu.Unlock()
		return err
	}
	if s.count == len(s.buf) {
		if s.policy == DropOldest {
			s.dropOldestLocked()
		} else {
			s.metrics.blocked.Inc()
			for s.count == len(s.buf) && !s.stopping && s.state != Failed {
				s.notFull.Wait()
			}
			if err := s.acceptingLocked(); err != nil {
				s.mu.Unlock()
				return err
			}
		}
	}
	s.enqueueLocked(ev)
	s.metrics.submitted.Inc()
	s.notEmpty.Signal()
	s.mu.Unlock()
	return nil
}

// acceptingLocked reports whether the shard can take new events:
// ErrStopped after Stop, ErrDeviceUnavailable once the supervisor has
// declared the device failed (its worker is gone, so accepting an
// event would promise processing that can never happen — and a Block
// submitter would hang forever).
func (s *shard) acceptingLocked() error {
	if s.stopping {
		return ErrStopped
	}
	if s.state == Failed {
		return fmt.Errorf("%w: %q", ErrDeviceUnavailable, s.id)
	}
	return nil
}

// submitBatch enqueues a batch of pre-validated events under a single
// lock acquisition — the amortization that makes replayed and bulk
// ingestion cheap. Backpressure applies per event exactly as in
// submit: DropOldest discards the oldest queued events to admit the
// batch without stalling, Block parks until the worker frees space
// (waking the worker first, so a batch larger than the queue drains
// through it rather than deadlocking). On ErrStopped or
// ErrDeviceUnavailable mid-wait the events enqueued so far remain
// queued and are drained by the stopping worker.
func (s *shard) submitBatch(evs []blktrace.Event) error {
	if len(evs) == 0 {
		return nil
	}
	s.mu.Lock()
	if err := s.acceptingLocked(); err != nil {
		s.mu.Unlock()
		return err
	}
	n := 0
	for _, ev := range evs {
		for s.count == len(s.buf) {
			if s.policy == DropOldest {
				s.dropOldestLocked()
				continue
			}
			s.metrics.blocked.Inc()
			// The queue is full, so the worker has a whole buffer to
			// chew on; make sure it is awake before parking.
			s.notEmpty.Signal()
			for s.count == len(s.buf) && !s.stopping && s.state != Failed {
				s.notFull.Wait()
			}
			if err := s.acceptingLocked(); err != nil {
				s.finishBatchLocked(n, len(evs))
				s.mu.Unlock()
				return err
			}
		}
		s.enqueueLocked(ev)
		n++
	}
	s.finishBatchLocked(n, len(evs))
	s.notEmpty.Signal()
	s.mu.Unlock()
	return nil
}

// enqueueLocked appends one event at the ring tail, stamping the
// 1-in-64 latency sample. Callers hold s.mu and have ensured space.
func (s *shard) enqueueLocked(ev blktrace.Event) {
	s.seq++
	var ts int64
	if s.seq&latencySampleMask == 0 {
		ts = time.Now().UnixNano()
	}
	tail := s.head + s.count
	if tail >= len(s.buf) {
		tail -= len(s.buf)
	}
	s.buf[tail] = ev
	s.tsbuf[tail] = ts
	s.count++
}

// dropOldestLocked discards the oldest queued event (counted) and
// clears the recycled slot's sampled enqueue timestamp, so a slot that
// held a sampled event cannot report a stale latency if anything other
// than an immediate overwrite recycles it.
func (s *shard) dropOldestLocked() {
	s.buf[s.head] = blktrace.Event{}
	s.tsbuf[s.head] = 0
	s.head++
	if s.head == len(s.buf) {
		s.head = 0
	}
	s.count--
	s.metrics.dropped.Inc()
}

// finishBatchLocked records batch accounting: n events actually
// enqueued (n < size only when stopping interrupted a blocked batch).
func (s *shard) finishBatchLocked(n, size int) {
	if n > 0 {
		s.metrics.submitted.Add(uint64(n))
	}
	s.metrics.batches.Inc()
	s.metrics.batchSize.Observe(float64(size))
}

// observeLatency enqueues one completion latency. Latencies are
// droppable signal (they only steer the dynamic window), so when the
// worker is far behind — or gone — they are silently discarded rather
// than queued without bound.
func (s *shard) observeLatency(ns int64) {
	s.mu.Lock()
	if !s.stopping && s.state != Failed && len(s.lats) < len(s.buf) {
		s.lats = append(s.lats, ns)
		s.notEmpty.Signal()
	}
	s.mu.Unlock()
}

// ask posts a query to the worker and waits for the reply. Failed
// devices answer immediately with ErrDeviceUnavailable — the worker is
// gone and waiting on it would hang forever.
func (s *shard) ask(q query) (queryReply, error) {
	q.reply = make(chan queryReply, 1)
	s.mu.Lock()
	if err := s.acceptingLocked(); err != nil {
		s.mu.Unlock()
		return queryReply{}, err
	}
	s.queries = append(s.queries, q)
	s.notEmpty.Signal()
	s.mu.Unlock()
	select {
	case r := <-q.reply:
		return r, r.err
	case <-s.done:
		return queryReply{}, ErrStopped
	}
}

// snapshot serves the device's sorted export, recomputing only when
// the synopsis changed since the cached copy was derived (same epoch +
// same support ⇒ identical result, so the cache is exact, not
// approximate). snapMu collapses a concurrent query storm into one
// worker capture; the sort and slice building run here, off the
// worker.
func (s *shard) snapshot(minSupport uint32) (core.Snapshot, error) {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	epoch := s.epoch.Load() // before the ask: may under-claim, never over-claims
	if s.snapValid && s.snapSupport == minSupport && s.snapEpoch == epoch {
		s.metrics.snapHits.Inc()
		return s.snapCached, nil
	}
	s.metrics.snapMisses.Inc()
	if s.snapRaw == nil {
		s.snapRaw = new(core.RawSnapshot)
	}
	if _, err := s.ask(query{kind: queryCapture, raw: s.snapRaw}); err != nil {
		return core.Snapshot{}, err
	}
	snap := s.snapRaw.Snapshot(minSupport)
	s.snapCached, s.snapEpoch, s.snapSupport, s.snapValid = snap, epoch, minSupport, true
	return snap, nil
}

// capture runs fn against a fresh pooled capture of the device's
// synopsis. The worker only does the O(live entries) copy; fn (rule
// extraction, snapshot encoding) runs on the calling goroutine.
func (s *shard) capture(fn func(*core.RawSnapshot) error) error {
	raw := rawPool.Get().(*core.RawSnapshot)
	defer rawPool.Put(raw)
	if _, err := s.ask(query{kind: queryCapture, raw: raw}); err != nil {
		return err
	}
	return fn(raw)
}

// counters reads the producer-side counters: total events discarded by
// drop-oldest backpressure and the current ingest lag (events queued
// but not yet processed). Unlike queries these never touch the worker,
// so they stay readable after Stop. The drop count lives in the
// metrics layer (single source of truth for accounting and /v1/metrics).
func (s *shard) counters() (dropped uint64, lag int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.metrics.dropped.Value(), s.count
}

// requestStop asks the worker to drain, flush, checkpoint, and exit.
// The caller waits on s.done.
func (s *shard) requestStop() {
	s.mu.Lock()
	if !s.stopping {
		s.stopping = true
		close(s.stopCh)
		s.notEmpty.Broadcast()
		s.notFull.Broadcast()
	}
	s.mu.Unlock()
}
