package engine

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"slices"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"daccor/internal/blktrace"
	"daccor/internal/checkpoint"
	"daccor/internal/core"
	"daccor/internal/monitor"
	"daccor/internal/pipeline"
)

type queryKind int

// The worker answers only two query kinds. queryCapture is the whole
// read path: it copies the synopsis into the asker's RawGroup (one
// RawSnapshot per partition) in O(live entries) and returns; sorting,
// rule extraction, JSON, merging, and checkpoint encoding all happen
// on the asking goroutine against the immutable copies, so readers
// never stall ingest for the duration of a serialization.
const (
	queryCapture queryKind = iota
	queryStats
)

type query struct {
	kind queryKind
	// raws receives the capture for queryCapture: one RawSnapshot per
	// partition (length 1 at P=1). Owned by the asker, written by the
	// partition workers before the reply is sent.
	raws  core.RawGroup
	reply chan queryReply
}

type queryReply struct {
	monStats monitor.Stats
	anStats  core.Stats
	window   time.Duration
	itemIdx  core.IndexStats
	pairIdx  core.IndexStats
	// err is set when the query could not be served at all: the worker
	// panicked while answering it, or the device failed permanently.
	err error
}

// errRunBroken is the router's internal signal that a partition worker
// died mid-run: the query being answered goes back to the inflight
// queue (the restarted run re-answers it) and the router returns to
// the supervisor.
var errRunBroken = errors.New("engine: partition worker died")

// deviceState is the worker-side state of one run of a device: the
// analyzer(s), the monitor, the reorder buffer, and (at P>1) the
// per-partition transaction rings. The supervisor rebuilds it from the
// freshest checkpoint on every restart, so a dying run can never leak
// corrupt state — or stale ring tokens — into the next one.
type deviceState struct {
	parts int

	// parts == 1: the classic single-worker pipeline.
	pipe *pipeline.Pipeline

	// parts > 1: the router owns the monitor (transaction assembly is
	// inherently sequential — it is a stateful scan of the timestamp
	// order) and fans completed transactions out to P partition-local
	// analyzers, each owned by its own worker goroutine.
	mon       *monitor.Monitor
	analyzers []*core.Analyzer
	txRings   []*txRing
	sortBuf   []blktrace.Extent
	run       *partRun

	// devCfg is the device-level analyzer config — what a combined
	// checkpoint of the P partitions is encoded (and re-split) under.
	devCfg core.Config

	rb        *reorderBuffer
	lastLate  uint64 // rb.late already mirrored into metrics
	processed uint64 // events released into analysis this run
}

func (st *deviceState) monitor() *monitor.Monitor {
	if st.parts == 1 {
		return st.pipe.Monitor()
	}
	return st.mon
}

// txKind discriminates the tokens the router pushes down a partition's
// transaction ring. Queries and stop travel in-band so every worker
// observes them strictly after the transactions routed before them.
type txKind uint8

const (
	txProcess txKind = iota
	txCapture
	txStats
	txStop
)

type txSlot struct {
	kind    txKind
	extents []blktrace.Extent // preallocated, len set per transaction
	req     *partReq
}

// txRing is a bounded SPSC ring from the router to one partition
// worker. The router is the only writer of enq, the worker the only
// writer of deq; slot contents are published by the enq store and
// released by the deq store.
type txRing struct {
	slots   []txSlot
	mask    uint64
	enq     atomic.Uint64
	deq     atomic.Uint64
	wake    wakeFlag // worker sleeps here
	notFull gate     // router parks here when the ring is full
}

// txRingSize bounds how far the router can run ahead of one partition
// worker, in transactions.
const txRingSize = 256

func newTxRing(maxTx int) *txRing {
	r := &txRing{
		slots: make([]txSlot, txRingSize),
		mask:  txRingSize - 1,
	}
	for i := range r.slots {
		r.slots[i].extents = make([]blktrace.Extent, 0, maxTx)
	}
	r.wake.init()
	r.notFull.init()
	return r
}

// partReq is an in-band barrier query: the router pushes one token per
// partition ring, each worker fills its slice and decrements pending,
// and the last one releases the router.
type partReq struct {
	kind    queryKind
	raws    core.RawGroup
	stats   []partStats
	pending atomic.Int32
	done    chan struct{}
}

func (r *partReq) finish() {
	if r.pending.Add(-1) == 0 {
		close(r.done)
	}
}

type partStats struct {
	an    core.Stats
	items core.IndexStats
	pairs core.IndexStats
}

// partRun is the lifecycle of one partitioned run: P workers plus the
// router. The first panic anywhere breaks the run (closing broken
// releases everyone mid-wait); the supervisor then rebuilds state and
// starts a fresh run.
type partRun struct {
	wg     sync.WaitGroup
	death  chan any
	broken chan struct{}
	once   sync.Once
}

func newPartRun() *partRun {
	return &partRun{death: make(chan any, 1), broken: make(chan struct{})}
}

func (r *partRun) fail(v any) {
	select {
	case r.death <- v:
	default:
	}
	r.abort()
}

func (r *partRun) abort() { r.once.Do(func() { close(r.broken) }) }

func (r *partRun) isBroken() bool {
	select {
	case <-r.broken:
		return true
	default:
		return false
	}
}

func (r *partRun) cause() any {
	select {
	case v := <-r.death:
		return v
	default:
		return errRunBroken
	}
}

// shard is one device's slice of the engine: a lock-free MPSC ingest
// ring drained by a router goroutine that owns the monitor and — at
// P>1 — fans completed transactions out to P partition workers, each
// owning 1/P of the synopsis (see core.PartitionOf). Producers never
// take a lock on the event path: submit is a CAS into the ring plus an
// eventcount wake, and the drop/lag counters are atomics, so metrics
// scrapes never serialize against ingest either.
//
// The router and workers run under a supervisor (see supervise): a
// panic anywhere in the run is recovered, the freshest checkpoint is
// restored, and a fresh run starts with backoff while producers keep
// enqueuing into the ring.
type shard struct {
	id      string
	parts   int
	policy  Backpressure
	metrics *shardMetrics

	super   SupervisorConfig
	ckpt    *checkpoint.Store
	rebuild func() (*deviceState, checkpoint.Generation, error)
	hook    func(device string, ev blktrace.Event)

	// Lock-free ingest: the event ring, the router's eventcount, and
	// the gate Block-policy producers park on.
	ring    *evRing
	wake    wakeFlag
	notFull gate

	stopping atomic.Bool
	failed   atomic.Bool
	// discard, set past a StopTimeout deadline, makes the stopping
	// drain count remaining queued events as dropped instead of
	// analyzing them; the flush and final checkpoint still run.
	discard atomic.Bool

	// st is owned by the router goroutine; the supervisor swaps it only
	// between runs (same goroutine ordering as the old pipe field).
	st *deviceState

	// txCount counts transactions the router formed since the current
	// state was installed. Partition analyzers never count transactions
	// (the transaction is shared across them); device-level stats and
	// checkpoints add this on top of the summed partition stats. Reset
	// on restore — the restored state already carries its own total.
	txCount atomic.Uint64

	// rbDepth mirrors the reorder buffer's depth for the lock-free lag
	// counter (the buffer itself is router-owned).
	rbDepth atomic.Int64

	// Cold-path queues: queries and sampled completion latencies. Low
	// rate, never on the event path.
	qMu      sync.Mutex
	queries  []query
	lats     []int64
	inflight []query // claimed by the router; supervisor requeues on panic

	// Supervision state, guarded by mu.
	mu           sync.Mutex
	state        HealthState
	panics       uint64
	restarts     uint64
	consecutive  int
	lastRestart  time.Time
	sinceRestart uint64
	ckptGen      uint64
	ckptTime     time.Time
	devCfg       core.Config

	stopCh chan struct{} // closed by requestStop: interrupts backoff, parked producers, the checkpoint loop
	done   chan struct{} // closed when the supervisor goroutine exits

	// notify wakes epoch waiters (see watch.go); onEpoch forwards each
	// advance to the engine's fleet-level notifier.
	notify  *epochNotifier
	onEpoch func()

	// epoch counts synopsis state changes. At P>1 every partition
	// worker bumps it as its slice advances, so the device epoch is the
	// sum of sub-shard advances — monotone, and unchanged iff no
	// partition changed, which is all the epoch-gated caches and
	// watchers need.
	epoch atomic.Uint64

	groupPool sync.Pool

	// Epoch-gated snapshot cache; see snapshot. The cache holds the
	// full (support-0) export — any requested support is a suffix cut
	// of it (Snapshot.FilterSupport), so reads at different supports
	// never thrash the cache. At P>1 snapIdx incrementally maintains
	// the union of the partition captures across misses.
	snapMu     sync.Mutex
	snapGroup  core.RawGroup
	snapIdx    *core.MergeIndex
	snapCached core.Snapshot
	snapEpoch  uint64
	snapValid  bool
	partNames  []string
}

func newShard(id string, queueSize, parts int, policy Backpressure) *shard {
	s := &shard{
		id:     id,
		parts:  parts,
		policy: policy,
		ring:   newEvRing(queueSize),
		stopCh: make(chan struct{}),
		done:   make(chan struct{}),
		notify: newEpochNotifier(),
	}
	s.wake.init()
	s.notFull.init()
	if parts > 1 {
		s.partNames = make([]string, parts)
		for i := range s.partNames {
			s.partNames[i] = strconv.Itoa(i)
		}
	}
	return s
}

// newGroup allocates a capture group with one RawSnapshot per
// partition.
func (s *shard) newGroup() core.RawGroup {
	g := make(core.RawGroup, s.parts)
	for i := range g {
		g[i] = new(core.RawSnapshot)
	}
	return g
}

func (s *shard) getGroup() core.RawGroup {
	if v := s.groupPool.Get(); v != nil {
		return v.(core.RawGroup)
	}
	return s.newGroup()
}

func (s *shard) putGroup(g core.RawGroup) { s.groupPool.Put(g) }

// runOnce executes one run of the device until a clean stop (returns
// nil) or a panic anywhere in the run (returns the recovered value).
// The recover is the supervision boundary: one device's bug must never
// tear down the process or its sibling devices.
func (s *shard) runOnce() (panicked any) {
	st := s.st
	if st.parts == 1 {
		defer func() { panicked = recover() }()
		s.routerLoop(st, nil)
		return nil
	}
	run := newPartRun()
	st.run = run
	for k := 0; k < st.parts; k++ {
		run.wg.Add(1)
		go s.partWorker(k, st, run)
	}
	v := func() (v any) {
		defer func() {
			if r := recover(); r != nil {
				v = r
			}
		}()
		s.routerLoop(st, run)
		return nil
	}()
	run.abort()
	run.wg.Wait()
	if v == nil || v == errRunBroken {
		if c := run.cause(); c != errRunBroken || v == errRunBroken {
			v = c
		}
	}
	return v
}

// routerLoop is the device's sequential spine: drain the ingest ring
// through the reorder buffer into the monitor, fan transactions out to
// partition workers (P>1) or the pipeline (P=1), and answer queries
// in-band. It returns on clean stop or when the run breaks (worker
// death); its own panics propagate to runOnce's recover.
func (s *shard) routerLoop(st *deviceState, run *partRun) {
	var ev blktrace.Event
	var ts int64
	var lats []int64
	emit := func(ev blktrace.Event, ts int64) { s.processEvent(st, ev, ts) }
	for {
		if run != nil && run.isBroken() {
			return
		}
		stopping := s.stopping.Load()
		s.claimWork(&lats)
		for _, ns := range lats {
			st.monitor().ObserveLatency(ns)
		}
		before := st.processed
		drained := 0
		for s.ring.pop(&ev, &ts) {
			drained++
			if stopping && s.discard.Load() {
				s.metrics.dropped.Inc()
				continue
			}
			st.rb.push(ev, ts, emit)
		}
		if drained > 0 && s.policy == Block {
			s.notFull.open()
		}
		// Flush the reorder buffer whenever the router has caught up
		// with the ring (it is about to go idle — holding events would
		// only add latency), before answering queries (read-your-writes
		// for snapshots), and on stop.
		if stopping || len(s.inflight) > 0 || s.ring.empty() {
			st.rb.flush(emit)
		}
		s.mirrorReorder(st)
		if released := int(st.processed - before); released > 0 {
			if st.parts == 1 {
				s.bumpEpoch()
			}
			s.noteProcessed(released)
		}
		if run != nil && run.isBroken() {
			return
		}
		if len(s.inflight) > 0 {
			if err := s.answerInflight(st, run); err != nil {
				return
			}
		}
		if stopping {
			_ = s.finishStop(st, run, emit)
			return
		}
		if s.ring.empty() && !s.havePending() {
			s.wake.prepare()
			if !s.ring.empty() || s.havePending() || s.stopping.Load() || (run != nil && run.isBroken()) {
				s.wake.cancel()
				continue
			}
			if run != nil {
				s.wake.sleep(s.stopCh, run.broken)
			} else {
				s.wake.sleep(s.stopCh, nil)
			}
		}
	}
}

// processEvent releases one reordered event into analysis: the process
// hook, then the monitor (whose sink routes the resulting transactions
// at P>1), then the sampled submit→analyze latency observation.
func (s *shard) processEvent(st *deviceState, ev blktrace.Event, ts int64) {
	if s.hook != nil {
		s.hook(s.id, ev)
	}
	// Events were validated in Submit; the monitor re-validates and
	// cannot fail here.
	if st.parts == 1 {
		_ = st.pipe.HandleIssue(ev)
	} else {
		_ = st.mon.HandleEvent(ev)
	}
	if ts != 0 {
		s.metrics.observeSubmitLatency(ts)
	}
	st.processed++
}

// routeTx is the monitor sink at P>1: count the transaction, sort its
// extents once (so every pair a partition forms is pre-canonical — no
// per-pair ownership hash in the Θ(N²) loop), and push the sorted list
// to every partition that owns at least one extent.
func (s *shard) routeTx(tx monitor.Transaction) {
	st := s.st
	run := st.run
	if run.isBroken() {
		return
	}
	s.txCount.Add(1)
	st.sortBuf = append(st.sortBuf[:0], tx.Extents...)
	slices.SortFunc(st.sortBuf, blktrace.Extent.Compare)
	var mask uint64
	for _, e := range st.sortBuf {
		mask |= 1 << uint(core.PartitionOf(e, st.parts))
	}
	for k := 0; k < st.parts; k++ {
		if mask&(1<<uint(k)) == 0 {
			continue
		}
		if !s.txPush(st.txRings[k], run, txProcess, st.sortBuf, nil) {
			return
		}
	}
}

// txPush publishes one token into a partition's SPSC ring, parking on
// the ring's gate when it is full. Returns false when the run broke
// while waiting — the caller abandons the fan-out.
func (s *shard) txPush(r *txRing, run *partRun, kind txKind, extents []blktrace.Extent, req *partReq) bool {
	for {
		pos := r.enq.Load()
		if pos-r.deq.Load() < uint64(len(r.slots)) {
			slot := &r.slots[pos&r.mask]
			slot.kind = kind
			slot.extents = append(slot.extents[:0], extents...)
			slot.req = req
			r.enq.Store(pos + 1)
			r.wake.wake()
			return true
		}
		ch := r.notFull.arm()
		if pos-r.deq.Load() < uint64(len(r.slots)) {
			r.notFull.disarm()
			continue
		}
		if run.isBroken() {
			r.notFull.disarm()
			return false
		}
		select {
		case <-ch:
		case <-run.broken:
		}
		r.notFull.disarm()
		if run.isBroken() {
			return false
		}
	}
}

// partWorker owns partition k's analyzer: it drains the partition's
// transaction ring, applying the partition-owned slice of each
// transaction, answers in-band barrier queries, and bumps the device
// epoch whenever its slice advanced and it goes idle.
func (s *shard) partWorker(k int, st *deviceState, run *partRun) {
	defer run.wg.Done()
	defer func() {
		if v := recover(); v != nil {
			run.fail(v)
		}
	}()
	r := st.txRings[k]
	a := st.analyzers[k]
	dirty := false
	for {
		if run.isBroken() {
			return
		}
		pos := r.deq.Load()
		if pos != r.enq.Load() {
			slot := &r.slots[pos&r.mask]
			switch slot.kind {
			case txProcess:
				a.ProcessPartitionSorted(slot.extents, k, st.parts)
				dirty = true
			case txCapture:
				start := time.Now()
				a.CaptureSnapshot(slot.req.raws[k])
				s.metrics.captureSeconds.Observe(time.Since(start).Seconds())
				slot.req.finish()
			case txStats:
				slot.req.stats[k] = partStats{
					an:    a.Stats(),
					items: a.Items().IndexStats(),
					pairs: a.Pairs().IndexStats(),
				}
				slot.req.finish()
			case txStop:
				if dirty {
					s.bumpEpoch()
				}
				slot.req = nil
				r.deq.Store(pos + 1)
				return
			}
			slot.req = nil
			r.deq.Store(pos + 1)
			r.notFull.open()
			continue
		}
		if dirty {
			s.bumpEpoch()
			dirty = false
		}
		r.wake.prepare()
		if r.deq.Load() != r.enq.Load() || run.isBroken() {
			r.wake.cancel()
			continue
		}
		r.wake.sleep(run.broken, nil)
	}
}

// claimWork moves pending queries and latencies from the producer-side
// queues to the router under the cold-path mutex.
func (s *shard) claimWork(lats *[]int64) {
	s.qMu.Lock()
	if len(s.queries) > 0 {
		s.inflight = append(s.inflight, s.queries...)
		s.queries = s.queries[:0]
	}
	*lats = append((*lats)[:0], s.lats...)
	s.lats = s.lats[:0]
	s.qMu.Unlock()
}

func (s *shard) havePending() bool {
	s.qMu.Lock()
	defer s.qMu.Unlock()
	return len(s.queries) > 0 || len(s.lats) > 0
}

// mirrorReorder publishes the router-owned reorder counters: late
// releases into the metrics counter, buffer depth into the lag atomic.
func (s *shard) mirrorReorder(st *deviceState) {
	if st.rb.late != st.lastLate {
		s.metrics.reorderLate.Add(st.rb.late - st.lastLate)
		st.lastLate = st.rb.late
	}
	s.rbDepth.Store(int64(st.rb.len()))
}

// finishStop drains the last claimed-but-unpublished events, flushes
// the open transaction, stops the partition workers, writes the final
// checkpoint, and answers the remaining queries against the flushed
// state.
func (s *shard) finishStop(st *deviceState, run *partRun, emit func(blktrace.Event, int64)) error {
	var ev blktrace.Event
	var ts int64
	for !s.ring.empty() {
		if s.ring.pop(&ev, &ts) {
			if s.discard.Load() {
				s.metrics.dropped.Inc()
				continue
			}
			st.rb.push(ev, ts, emit)
		} else {
			runtime.Gosched() // a producer claimed the slot; it will publish
		}
	}
	if s.discard.Load() {
		// Past the drain deadline: events still held in the reorder
		// buffer are dropped (counted) rather than analyzed, so a slow
		// analysis path cannot extend the shutdown unboundedly.
		st.rb.flush(func(blktrace.Event, int64) { s.metrics.dropped.Inc() })
	} else {
		st.rb.flush(emit)
	}
	s.mirrorReorder(st)
	if st.parts == 1 {
		st.pipe.Flush()
	} else {
		st.mon.Flush()
		if err := s.stopWorkers(st, run); err != nil {
			return err
		}
	}
	s.bumpEpoch()
	// Final flush: persist the drained state so a restart does not pay
	// the cold-start transient. An error is recorded in the checkpoint
	// metrics; shutdown proceeds regardless.
	_ = s.commitCheckpointState(st)
	var none []int64
	s.claimWork(&none)
	return s.answerInflight(st, nil)
}

// stopWorkers pushes a stop token down every partition ring and waits
// for the workers to drain up to it and exit.
func (s *shard) stopWorkers(st *deviceState, run *partRun) error {
	for k := range st.txRings {
		if !s.txPush(st.txRings[k], run, txStop, nil, nil) {
			return errRunBroken
		}
	}
	run.wg.Wait()
	if run.isBroken() {
		return errRunBroken
	}
	return nil
}

// answerInflight answers the queries the router claimed, consuming
// them one at a time so a panic mid-answer leaves only the genuinely
// unanswered ones for the supervisor to requeue. A broken run puts the
// un-replied query back and returns errRunBroken.
func (s *shard) answerInflight(st *deviceState, run *partRun) error {
	for len(s.inflight) > 0 {
		q := s.inflight[0]
		s.inflight = s.inflight[1:]
		if err := s.answer(st, run, q); err != nil {
			s.inflight = append([]query{q}, s.inflight...)
			return err
		}
	}
	return nil
}

// answer computes one query reply. With run == nil the router touches
// the analyzers directly (P=1 always; P>1 only after the workers
// exited on the stop path); otherwise partition state is reached via
// in-band barrier tokens. If the computation panics (corrupt synopsis
// state), the asker still gets a reply — a typed ErrDeviceUnavailable
// — before the panic propagates to the supervisor; queries must fail
// fast, never hang.
func (s *shard) answer(st *deviceState, run *partRun, q query) error {
	defer func() {
		if r := recover(); r != nil {
			q.reply <- queryReply{err: fmt.Errorf("%w: %q query panicked: %v", ErrDeviceUnavailable, s.id, r)}
			panic(r)
		}
	}()
	var r queryReply
	switch q.kind {
	case queryCapture:
		if st.parts == 1 {
			// The capture is the only read-side work charged to the
			// worker; its duration is the ingest stall a reader causes,
			// so it is what the capture-seconds histogram measures.
			start := time.Now()
			st.pipe.Analyzer().CaptureSnapshot(q.raws[0])
			s.metrics.captureSeconds.Observe(time.Since(start).Seconds())
		} else if run != nil {
			req := &partReq{kind: queryCapture, raws: q.raws, done: make(chan struct{})}
			if err := s.fanout(st, run, req); err != nil {
				return err
			}
		} else {
			for k, a := range st.analyzers {
				a.CaptureSnapshot(q.raws[k])
			}
		}
	case queryStats:
		if st.parts == 1 {
			a := st.pipe.Analyzer()
			r.monStats = st.pipe.Monitor().Stats()
			r.anStats = a.Stats()
			r.window = st.pipe.WindowDuration()
			r.itemIdx = a.Items().IndexStats()
			r.pairIdx = a.Pairs().IndexStats()
		} else {
			ps := make([]partStats, st.parts)
			if run != nil {
				req := &partReq{kind: queryStats, stats: ps, done: make(chan struct{})}
				if err := s.fanout(st, run, req); err != nil {
					return err
				}
			} else {
				for k, a := range st.analyzers {
					ps[k] = partStats{an: a.Stats(), items: a.Items().IndexStats(), pairs: a.Pairs().IndexStats()}
				}
			}
			for _, p := range ps {
				r.anStats = sumCoreStats(r.anStats, p.an)
				r.itemIdx = sumIndexStats(r.itemIdx, p.items)
				r.pairIdx = sumIndexStats(r.pairIdx, p.pairs)
			}
			r.anStats.Transactions += s.txCount.Load()
			r.monStats = st.mon.Stats()
			r.window = st.mon.WindowDuration()
		}
	}
	q.reply <- r
	return nil
}

// fanout pushes one barrier token per partition ring and waits for all
// workers to fill their slice. In-band delivery means every worker
// answers strictly after the transactions routed before the token.
func (s *shard) fanout(st *deviceState, run *partRun, req *partReq) error {
	req.pending.Store(int32(st.parts))
	for k := range st.txRings {
		if !s.txPush(st.txRings[k], run, kindToken(req.kind), nil, req) {
			return errRunBroken
		}
	}
	select {
	case <-req.done:
		return nil
	case <-run.broken:
		return errRunBroken
	}
}

func kindToken(k queryKind) txKind {
	if k == queryCapture {
		return txCapture
	}
	return txStats
}

func sumCoreStats(a, b core.Stats) core.Stats {
	a.Transactions += b.Transactions
	a.Extents += b.Extents
	a.PairTouches += b.PairTouches
	a.ItemEvictions += b.ItemEvictions
	a.PairEvictions += b.PairEvictions
	a.ItemPromotions += b.ItemPromotions
	a.PairPromotions += b.PairPromotions
	a.PairDemotions += b.PairDemotions
	return a
}

// sumIndexStats combines per-partition index telemetry: counters sum,
// occupancy sums, and MaxProbe takes the worst partition (the signal
// it exists to surface).
func sumIndexStats(a, b core.IndexStats) core.IndexStats {
	a.Lookups += b.Lookups
	a.Probes += b.Probes
	a.Grows += b.Grows
	a.Slots += b.Slots
	a.Used += b.Used
	if b.MaxProbe > a.MaxProbe {
		a.MaxProbe = b.MaxProbe
	}
	return a
}

// accepting reports whether the shard can take new events: ErrStopped
// after Stop, ErrDeviceUnavailable once the supervisor has declared
// the device failed (its workers are gone, so accepting an event would
// promise processing that can never happen — and a Block submitter
// would hang forever). Two atomic loads; no lock.
func (s *shard) accepting() error {
	if s.stopping.Load() {
		return ErrStopped
	}
	if s.failed.Load() {
		return fmt.Errorf("%w: %q", ErrDeviceUnavailable, s.id)
	}
	return nil
}

// submit enqueues one pre-validated event: a CAS into the ring plus an
// eventcount wake on the fast path. When the ring is full the
// configured backpressure policy decides: DropOldest evicts the oldest
// queued event (counted) so the producer never stalls, Block waits for
// the router to free space.
func (s *shard) submit(ev blktrace.Event) error {
	if err := s.accepting(); err != nil {
		return err
	}
	if !s.ring.tryPush(ev) {
		if err := s.waitPush(ev); err != nil {
			return err
		}
	}
	s.metrics.submitted.Inc()
	s.wake.wake()
	return nil
}

// waitPush admits one event into a full ring per the backpressure
// policy. It does not account the submit — callers do, so batches can
// amortize the accounting.
func (s *shard) waitPush(ev blktrace.Event) error {
	if s.policy == DropOldest {
		for {
			if s.ring.dropOldest() {
				s.metrics.dropped.Inc()
				s.metrics.reorderLost.Inc()
			}
			if s.ring.tryPush(ev) {
				return nil
			}
			if err := s.accepting(); err != nil {
				return err
			}
			// Transient: the oldest slot is mid-publish by a slow
			// producer; let it finish.
			s.wake.wake()
			runtime.Gosched()
		}
	}
	s.metrics.blocked.Inc()
	for {
		ch := s.notFull.arm()
		if s.ring.tryPush(ev) {
			s.notFull.disarm()
			return nil
		}
		// The ring is full, so the router has a whole buffer to chew
		// on; make sure it is awake before parking.
		s.wake.wake()
		select {
		case <-ch:
		case <-s.stopCh:
		}
		s.notFull.disarm()
		if err := s.accepting(); err != nil {
			return err
		}
	}
}

// submitBatch enqueues a batch of pre-validated events. Backpressure
// applies per event exactly as in submit; on ErrStopped or
// ErrDeviceUnavailable mid-batch the events enqueued so far remain
// queued and are drained by the stopping router.
func (s *shard) submitBatch(evs []blktrace.Event) error {
	if len(evs) == 0 {
		return nil
	}
	if err := s.accepting(); err != nil {
		return err
	}
	n := 0
	var err error
	for _, ev := range evs {
		if !s.ring.tryPush(ev) {
			if err = s.waitPush(ev); err != nil {
				break
			}
		}
		n++
	}
	if n > 0 {
		s.metrics.submitted.Add(uint64(n))
		s.wake.wake()
	}
	s.metrics.batches.Inc()
	s.metrics.batchSize.Observe(float64(len(evs)))
	return err
}

// observeLatency enqueues one completion latency. Latencies are
// droppable signal (they only steer the dynamic window), so when the
// router is far behind — or gone — they are silently discarded rather
// than queued without bound.
func (s *shard) observeLatency(ns int64) {
	if s.accepting() != nil {
		return
	}
	s.qMu.Lock()
	if len(s.lats) < s.ring.capacity() {
		s.lats = append(s.lats, ns)
	}
	s.qMu.Unlock()
	s.wake.wake()
}

// ask posts a query to the router and waits for the reply. Failed
// devices answer immediately with ErrDeviceUnavailable — the workers
// are gone and waiting on them would hang forever. The accepting
// re-check under qMu serializes against fail(): either the query is in
// the queue before fail drains it (fail answers it), or the flag is
// visible here (rejected) — it can never land unanswered.
func (s *shard) ask(q query) (queryReply, error) {
	q.reply = make(chan queryReply, 1)
	s.qMu.Lock()
	if err := s.accepting(); err != nil {
		s.qMu.Unlock()
		return queryReply{}, err
	}
	s.queries = append(s.queries, q)
	s.qMu.Unlock()
	s.wake.wake()
	select {
	case r := <-q.reply:
		return r, r.err
	case <-s.done:
		return queryReply{}, ErrStopped
	}
}

// snapshot serves the device's sorted export, recomputing only when
// the synopsis changed since the cached copy was derived. The cache
// holds the full support-0 export; the requested support is applied as
// a suffix cut (FilterSupport) on the way out, so the same epoch
// serves every support without recomputation — exact, because the
// export is sorted by count and a support filter of a merged view
// equals the merge of support-filtered disjoint views.
//
// At P>1 the capture is a RawGroup — one disjoint capture per
// partition — combined on this goroutine through a persistent
// core.MergeIndex: each miss reconciles the partition captures into
// the index (O(changed entries) per partition) instead of re-merging
// every entry from scratch. The epoch gate is the device epoch, which
// sums sub-shard advances.
func (s *shard) snapshot(minSupport uint32) (core.Snapshot, error) {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	epoch := s.epoch.Load() // before the ask: may under-claim, never over-claims
	if s.snapValid && s.snapEpoch == epoch {
		s.metrics.snapHits.Inc()
		return s.snapCached.FilterSupport(minSupport), nil
	}
	s.metrics.snapMisses.Inc()
	if s.snapGroup == nil {
		s.snapGroup = s.newGroup()
	}
	if _, err := s.ask(query{kind: queryCapture, raws: s.snapGroup}); err != nil {
		return core.Snapshot{}, err
	}
	var snap core.Snapshot
	if s.parts == 1 {
		snap = s.snapGroup.Snapshot(0)
	} else {
		if s.snapIdx == nil {
			s.snapIdx = core.NewMergeIndex()
		}
		for i, r := range s.snapGroup {
			s.snapIdx.UpdateRaw(s.partNames[i], r)
		}
		snap = s.snapIdx.Snapshot()
	}
	s.snapCached, s.snapEpoch, s.snapValid = snap, epoch, true
	return snap.FilterSupport(minSupport), nil
}

// capture runs fn against a fresh pooled capture group of the device's
// synopsis. The workers only do the O(live entries) copies; fn (rule
// extraction, snapshot encoding, checkpoint encoding) runs on the
// calling goroutine.
func (s *shard) capture(fn func(core.RawGroup) error) error {
	g := s.getGroup()
	defer s.putGroup(g)
	if _, err := s.ask(query{kind: queryCapture, raws: g}); err != nil {
		return err
	}
	return fn(g)
}

// writeTo serialises a capture group as the device's single synopsis
// file: the plain RawSnapshot encoding at P=1, the combined
// (EncodeMerged) encoding under the device-level config at P>1 — one
// loadable file per device regardless of P.
func (s *shard) writeTo(w io.Writer, g core.RawGroup) error {
	if len(g) == 1 {
		_, err := g[0].WriteTo(w)
		return err
	}
	st := g.Stats()
	st.Transactions += s.txCount.Load()
	_, _, err := g.EncodeMerged(w, s.deviceConfig(), st)
	return err
}

func (s *shard) deviceConfig() core.Config {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.devCfg
}

func (s *shard) setDeviceConfig(cfg core.Config) {
	s.mu.Lock()
	s.devCfg = cfg
	s.mu.Unlock()
}

// counters reads the producer-side counters: total events discarded by
// drop-oldest backpressure and the current ingest lag (events queued
// in the ring plus events held in the reorder buffer). Pure atomics —
// a metrics scrape never serializes against ingest — and they stay
// readable after Stop.
func (s *shard) counters() (dropped uint64, lag int) {
	return s.metrics.dropped.Value(), s.ring.size() + int(s.rbDepth.Load())
}

// requestStop asks the device to drain, flush, checkpoint, and exit.
// The caller waits on s.done.
func (s *shard) requestStop() {
	if s.stopping.CompareAndSwap(false, true) {
		close(s.stopCh)
		s.wake.wake()
		s.notFull.open()
	}
}

// forceDiscard flips the stopping drain into discard mode (see
// Engine.StopTimeout). Only meaningful after requestStop.
func (s *shard) forceDiscard() {
	s.discard.Store(true)
	s.wake.wake()
	s.notFull.open()
}
