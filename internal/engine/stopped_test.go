package engine

import (
	"errors"
	"io"
	"testing"

	"daccor/internal/blktrace"
)

// TestStoppedSemantics pins the post-Stop contract across the entire
// API surface in one table: every ingest and query entry point —
// engine-level, device-handle, single and batch — answers ErrStopped,
// immediately and consistently. Callers shut down in arbitrary order,
// so "which error does a racing producer see?" must have exactly one
// answer.
func TestStoppedSemantics(t *testing.T) {
	e := mustEngine(t, WithDevices("vol0", "vol1"))
	dev, err := e.Device("vol0")
	if err != nil {
		t.Fatal(err)
	}
	ev := blktrace.Event{Op: blktrace.OpRead, Extent: blktrace.Extent{Block: 1, Len: 1}}
	if err := dev.Submit(ev); err != nil {
		t.Fatal(err)
	}
	e.Stop()

	batch := []blktrace.Event{ev, ev}
	ops := []struct {
		name string
		call func() error
	}{
		{"Engine.Submit", func() error { return e.Submit("vol0", ev) }},
		{"Engine.SubmitBatch", func() error { return e.SubmitBatch("vol0", batch) }},
		{"Device.Submit", func() error { return dev.Submit(ev) }},
		{"Device.SubmitBatch", func() error { return dev.SubmitBatch(batch) }},
		{"Engine.Snapshot", func() error { _, err := e.Snapshot("vol0", 0); return err }},
		{"Engine.Rules", func() error { _, err := e.Rules("vol0", 0, 0); return err }},
		{"Engine.WriteSnapshot", func() error { return e.WriteSnapshot("vol0", io.Discard) }},
		{"Engine.MergedSnapshot", func() error { _, err := e.MergedSnapshot(0); return err }},
		{"Engine.MergedRules", func() error { _, err := e.MergedRules(0, 0); return err }},
		{"Engine.Stats", func() error { _, err := e.Stats(); return err }},
		{"Engine.DeviceStatsFor", func() error { _, err := e.DeviceStatsFor("vol0"); return err }},
		{"Engine.Register", func() error { return e.Register("vol2") }},
	}
	for _, op := range ops {
		t.Run(op.name, func(t *testing.T) {
			if err := op.call(); !errors.Is(err, ErrStopped) {
				t.Errorf("%s after Stop = %v, want ErrStopped", op.name, err)
			}
		})
	}

	// The non-erroring surfaces stay usable: drop counters and health
	// outlive Stop (operators read them during shutdown triage), and
	// Stopped reports the state.
	if !e.Stopped() {
		t.Error("Stopped() = false after Stop")
	}
	if _, err := e.Dropped("vol0"); err != nil {
		t.Errorf("Dropped after Stop = %v, want nil", err)
	}
	if h := e.Health(); len(h) != 2 {
		t.Errorf("Health after Stop lists %d devices, want 2", len(h))
	}
	if _, err := e.Device("vol1"); err != nil {
		t.Errorf("Device lookup after Stop = %v, want nil (handle resolution is not ingest)", err)
	}
	// Stop stays idempotent.
	e.Stop()
}
