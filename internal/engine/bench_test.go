package engine

import (
	"fmt"
	"testing"
	"time"

	"daccor/internal/blktrace"
	"daccor/internal/core"
	"daccor/internal/monitor"
)

// BenchmarkEngineSubmitBatch measures the batched ingest path in
// isolation: one producer streaming pre-built batches into a single
// shard under the Block policy (every event is processed, so ns/op is
// honest end-to-end work). Sub-benchmarks sweep the batch size; the
// gap between batch-1 and the larger sizes is the per-event lock and
// signal overhead that SubmitBatch amortizes.
func BenchmarkEngineSubmitBatch(b *testing.B) {
	for _, size := range []int{1, 64, 256, 1024} {
		b.Run(fmt.Sprintf("batch-%d", size), func(b *testing.B) {
			eng, err := New(
				WithMonitor(monitor.Config{Window: monitor.StaticWindow(100 * time.Microsecond)}),
				WithAnalyzer(core.Config{ItemCapacity: 16 * 1024, PairCapacity: 16 * 1024}),
				WithQueueSize(8192),
				WithBackpressure(Block),
				WithDevices("dev0"),
			)
			if err != nil {
				b.Fatal(err)
			}
			dev, err := eng.Device("dev0")
			if err != nil {
				b.Fatal(err)
			}
			batch := make([]blktrace.Event, size)
			b.ReportAllocs()
			b.ResetTimer()
			for done := 0; done < b.N; done += size {
				n := min(size, b.N-done)
				for i := 0; i < n; i++ {
					seq := done + i
					batch[i] = blktrace.Event{
						Time: int64(seq) * 10_000, // monotone
						Op:   blktrace.OpRead,
						Extent: blktrace.Extent{
							Block: uint64(seq%4096) * 8, Len: 8,
						},
					}
				}
				if err := dev.SubmitBatch(batch[:n]); err != nil {
					b.Fatal(err)
				}
			}
			eng.Stop() // drain before the clock stops
			b.StopTimer()
		})
	}
}
