package engine

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"daccor/internal/blktrace"
	"daccor/internal/checkpoint"
	"daccor/internal/core"
	"daccor/internal/monitor"
)

// BenchmarkEngineSubmitBatch measures the batched ingest path in
// isolation: one producer streaming pre-built batches into a single
// shard under the Block policy (every event is processed, so ns/op is
// honest end-to-end work). Sub-benchmarks sweep the batch size; the
// gap between batch-1 and the larger sizes is the per-event lock and
// signal overhead that SubmitBatch amortizes.
func BenchmarkEngineSubmitBatch(b *testing.B) {
	for _, size := range []int{1, 64, 256, 1024} {
		b.Run(fmt.Sprintf("batch-%d", size), func(b *testing.B) {
			eng, err := New(
				WithMonitor(monitor.Config{Window: monitor.StaticWindow(100 * time.Microsecond)}),
				WithAnalyzer(core.Config{ItemCapacity: 16 * 1024, PairCapacity: 16 * 1024}),
				WithQueueSize(8192),
				WithBackpressure(Block),
				WithDevices("dev0"),
			)
			if err != nil {
				b.Fatal(err)
			}
			dev, err := eng.Device("dev0")
			if err != nil {
				b.Fatal(err)
			}
			batch := make([]blktrace.Event, size)
			b.ReportAllocs()
			b.ResetTimer()
			for done := 0; done < b.N; done += size {
				n := min(size, b.N-done)
				for i := 0; i < n; i++ {
					seq := done + i
					batch[i] = blktrace.Event{
						Time: int64(seq) * 10_000, // monotone
						Op:   blktrace.OpRead,
						Extent: blktrace.Extent{
							Block: uint64(seq%4096) * 8, Len: 8,
						},
					}
				}
				if err := dev.SubmitBatch(batch[:n]); err != nil {
					b.Fatal(err)
				}
			}
			eng.Stop() // drain before the clock stops
			b.StopTimer()
		})
	}
}

// BenchmarkReorderBuffer measures the timestamp-reordering stage in
// isolation: a steady stream with bounded jitter (the multi-producer
// interleave the buffer exists to repair) through a
// DefaultReorderBuffer-sized heap. The hot path is one sift-up plus
// one sift-down per event over a preallocated array — 0 allocs/op.
func BenchmarkReorderBuffer(b *testing.B) {
	for _, capN := range []int{16, 256} {
		b.Run(fmt.Sprintf("cap-%d", capN), func(b *testing.B) {
			rb := newReorderBuffer(capN)
			emit := func(blktrace.Event, int64) {}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Deterministic jitter within the window: event i
				// carries time i minus a pseudo-random offset < capN.
				jitter := int64((uint64(i) * 0x9e3779b97f4a7c15 >> 56) & uint64(capN-1))
				ev := blktrace.Event{
					Time:   int64(i)*100 - jitter,
					Op:     blktrace.OpRead,
					Extent: blktrace.Extent{Block: uint64(i & 4095), Len: 8},
				}
				rb.push(ev, 0, emit)
			}
			rb.flush(emit)
			b.StopTimer()
		})
	}
}

// checkpointEvery is the persistence cadence for the checkpointing
// and storm variants below: 100ms (ten full-state generations per
// second, each a complete capture + encode + fsync) is already one to
// two orders of magnitude more aggressive than any production
// checkpoint schedule.
const checkpointEvery = 100 * time.Millisecond

// BenchmarkIngestUnderCheckpoint measures what readers cost the
// ingest path. Three variants run identical batched ingest:
//
//	quiet         — nothing else running (the baseline)
//	checkpointing — a periodic checkpoint loop persists a generation
//	                every checkpointEvery the whole time
//	storm         — the checkpoint loop plus a goroutine hammering
//	                Snapshot and Rules queries with no throttle
//
// With off-worker snapshotting the worker only pays the O(live
// entries) capture per read — binary encoding, canonical sorting, and
// the fsync all happen on the reader's goroutine — so checkpointing
// ns/op should land within ~20% of quiet rather than the multiples
// that on-worker serialization used to cost (on multi-core hosts the
// encode and fsync overlap ingest entirely; on a single core they
// still steal time slices). The storm variant is an unbounded
// adversarial reader — every round trip forces a fresh capture — so
// it bounds the worst case rather than the acceptance target.
func BenchmarkIngestUnderCheckpoint(b *testing.B) {
	const batchSize = 256
	run := func(b *testing.B, checkpoints, storm bool) {
		opts := []Option{
			WithMonitor(monitor.Config{Window: monitor.StaticWindow(100 * time.Microsecond)}),
			WithAnalyzer(core.Config{ItemCapacity: 16 * 1024, PairCapacity: 16 * 1024}),
			WithQueueSize(8192),
			WithBackpressure(Block),
			WithDevices("dev0"),
		}
		if checkpoints {
			store, err := checkpoint.Open(checkpoint.Config{Dir: b.TempDir()})
			if err != nil {
				b.Fatal(err)
			}
			opts = append(opts, WithCheckpoints(store, checkpointEvery))
		}
		eng, err := New(opts...)
		if err != nil {
			b.Fatal(err)
		}
		dev, err := eng.Device("dev0")
		if err != nil {
			b.Fatal(err)
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		if storm {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if _, err := eng.Snapshot("dev0", 2); err != nil {
						return
					}
					if _, err := eng.Rules("dev0", 2, 0.5); err != nil {
						return
					}
				}
			}()
		}
		batch := make([]blktrace.Event, batchSize)
		b.ReportAllocs()
		b.ResetTimer()
		for done := 0; done < b.N; done += batchSize {
			n := min(batchSize, b.N-done)
			for i := 0; i < n; i++ {
				seq := done + i
				batch[i] = blktrace.Event{
					Time: int64(seq) * 10_000, // monotone
					Op:   blktrace.OpRead,
					Extent: blktrace.Extent{
						Block: uint64(seq%4096) * 8, Len: 8,
					},
				}
			}
			if err := dev.SubmitBatch(batch[:n]); err != nil {
				b.Fatal(err)
			}
		}
		eng.Stop() // drain before the clock stops
		b.StopTimer()
		close(stop)
		wg.Wait()
	}
	b.Run("quiet", func(b *testing.B) { run(b, false, false) })
	b.Run("checkpointing", func(b *testing.B) { run(b, true, false) })
	b.Run("storm", func(b *testing.B) { run(b, true, true) })
}
