package engine

import (
	"time"

	"daccor/internal/core"
	"daccor/internal/obs"
)

// Metric names exposed by the engine, all labeled {device="..."}.
// Producer-side instruments (submits, drops, queue depth, submit→
// analyze latency) are updated on the event path; the monitor and
// analyzer families are mirrors of the worker-owned stats structs,
// refreshed by a collect hook at scrape time so the hot path never
// pays for them.
const (
	MetricSubmitted     = "daccor_engine_events_submitted_total"
	MetricDropped       = "daccor_engine_events_dropped_total"
	MetricBlocked       = "daccor_engine_submit_blocked_total"
	MetricQueueDepth    = "daccor_engine_queue_depth"
	MetricQueueCapacity = "daccor_engine_queue_capacity"
	MetricSubmitLatency = "daccor_engine_submit_latency_seconds"
	MetricBatches       = "daccor_engine_batches_submitted_total"
	MetricBatchSize     = "daccor_engine_submit_batch_size"

	// Reordering-stage instruments: events released with a timestamp
	// below an already-released one (an inversion wider than the
	// buffer), events evicted unanalyzed by the drop-oldest policy
	// (every drop loses a queued event), and the device's partition
	// count (a constant per engine configuration).
	MetricReorderLate = "daccor_engine_reorder_late_total"
	MetricReorderLost = "daccor_engine_reorder_lost_total"
	MetricPartitions  = "daccor_engine_partitions"
)

// Supervision and checkpoint metric families, all labeled
// {device="..."}. Counters are bumped by the supervisor/worker; the
// state, timestamp, and age gauges read the shard's mutex-guarded
// health fields at scrape time.
const (
	// Read-path instruments: how long the worker is held up copying
	// state for a reader (the residual in-worker cost of a snapshot,
	// rules, save, or checkpoint query) and how often the epoch-gated
	// snapshot cache spares the worker that copy entirely.
	MetricCaptureSeconds      = "daccor_engine_capture_seconds"
	MetricSnapshotCacheHits   = "daccor_engine_snapshot_cache_hits_total"
	MetricSnapshotCacheMisses = "daccor_engine_snapshot_cache_misses_total"

	MetricPanics           = "daccor_engine_worker_panics_total"
	MetricRestarts         = "daccor_engine_worker_restarts_total"
	MetricHealthState      = "daccor_engine_device_health_state"
	MetricLastRestart      = "daccor_engine_last_restart_timestamp_seconds"
	MetricCheckpoints      = "daccor_engine_checkpoints_total"
	MetricCheckpointErrors = "daccor_engine_checkpoint_errors_total"
	MetricCheckpointAge    = "daccor_engine_checkpoint_age_seconds"
)

// latencySampleMask subsamples the submit→analyze latency histogram:
// one in every 64 submitted events is timestamped at enqueue and
// measured after the worker analyzes it. Sampling keeps time.Now off
// the common path; queueing latency is a smooth signal, so 1/64
// coverage loses nothing an operator can act on.
const latencySampleMask = 63

// shardMetrics is one device's producer-side instruments.
type shardMetrics struct {
	submitted      *obs.Counter
	dropped        *obs.Counter
	blocked        *obs.Counter
	batches        *obs.Counter
	batchSize      *obs.Histogram
	latency        *obs.Histogram
	captureSeconds *obs.Histogram
	snapHits       *obs.Counter
	snapMisses     *obs.Counter
	panics         *obs.Counter
	restarts       *obs.Counter
	ckpts          *obs.Counter
	ckptErrors     *obs.Counter
	reorderLate    *obs.Counter
	reorderLost    *obs.Counter
}

// newShardMetrics registers one device's instruments. The queue-depth
// gauge reads the shard's live counters at scrape time; capacity is a
// constant gauge so dashboards can plot depth/capacity saturation.
func newShardMetrics(r *obs.Registry, s *shard, queueSize int) *shardMetrics {
	lbl := obs.L("device", s.id)
	m := &shardMetrics{
		submitted: r.Counter(MetricSubmitted, "Events accepted by Submit, per device.", lbl),
		dropped:   r.Counter(MetricDropped, "Events discarded by the drop-oldest backpressure policy.", lbl),
		blocked:   r.Counter(MetricBlocked, "Submits that had to wait for queue space under the Block policy.", lbl),
		batches:   r.Counter(MetricBatches, "Batches accepted by SubmitBatch, per device.", lbl),
		batchSize: r.Histogram(MetricBatchSize,
			"Events per SubmitBatch call.",
			obs.ExpBuckets(1, 2, 13), lbl),
		latency: r.Histogram(MetricSubmitLatency,
			"Sampled wall-clock latency from Submit to completed analysis, in seconds.",
			obs.LatencyBuckets(), lbl),
		captureSeconds: r.Histogram(MetricCaptureSeconds,
			"Worker time spent copying synopsis state for a reader (the ingest stall a query or checkpoint causes), in seconds.",
			obs.LatencyBuckets(), lbl),
		snapHits:    r.Counter(MetricSnapshotCacheHits, "Snapshot queries served from the epoch-gated cache without a worker round trip.", lbl),
		snapMisses:  r.Counter(MetricSnapshotCacheMisses, "Snapshot queries that required a fresh capture.", lbl),
		panics:      r.Counter(MetricPanics, "Worker panics recovered by the device supervisor.", lbl),
		restarts:    r.Counter(MetricRestarts, "Worker restarts performed by the device supervisor.", lbl),
		ckpts:       r.Counter(MetricCheckpoints, "Checkpoint generations committed, per device.", lbl),
		ckptErrors:  r.Counter(MetricCheckpointErrors, "Checkpoint saves that failed, per device.", lbl),
		reorderLate: r.Counter(MetricReorderLate, "Events released out of timestamp order (inversion wider than the reorder buffer).", lbl),
		reorderLost: r.Counter(MetricReorderLost, "Queued events evicted unanalyzed by the drop-oldest policy.", lbl),
	}
	r.GaugeFunc(MetricQueueDepth, "Events queued but not yet processed (ingest lag).",
		func() float64 { _, lag := s.counters(); return float64(lag) }, lbl)
	r.Gauge(MetricQueueCapacity, "Per-device event queue capacity.", lbl).Set(float64(queueSize))
	r.Gauge(MetricPartitions, "Analyzer sub-shards serving this device (1 = unpartitioned).", lbl).Set(float64(s.parts))
	r.GaugeFunc(MetricHealthState, "Device health: 0 healthy, 1 degraded, 2 failed.",
		func() float64 { return float64(s.health().State) }, lbl)
	r.GaugeFunc(MetricLastRestart, "Unix time of the device's last supervised restart (0 if never).",
		func() float64 {
			t := s.health().LastRestart
			if t.IsZero() {
				return 0
			}
			return float64(t.UnixNano()) / 1e9
		}, lbl)
	r.GaugeFunc(MetricCheckpointAge, "Seconds since the device's last committed checkpoint (-1 if none).",
		func() float64 {
			t := s.health().LastCheckpoint
			if t.IsZero() {
				return -1
			}
			return time.Since(t).Seconds()
		}, lbl)
	return m
}

// Mirrored per-device monitor and analyzer metric families; see
// Engine.collect.
const (
	MetricMonitorEvents       = "daccor_monitor_events_total"
	MetricMonitorFiltered     = "daccor_monitor_filtered_total"
	MetricMonitorDuplicates   = "daccor_monitor_duplicates_total"
	MetricMonitorTransactions = "daccor_monitor_transactions_total"
	MetricMonitorCapSplits    = "daccor_monitor_cap_splits_total"
	MetricMonitorOutOfOrder   = "daccor_monitor_out_of_order_total"
	MetricMonitorWindow       = "daccor_monitor_window_seconds"

	MetricAnalyzerTransactions   = "daccor_analyzer_transactions_total"
	MetricAnalyzerExtentTouches  = "daccor_analyzer_extent_touches_total"
	MetricAnalyzerPairTouches    = "daccor_analyzer_pair_touches_total"
	MetricAnalyzerItemPromotions = "daccor_analyzer_item_promotions_total"
	MetricAnalyzerPairPromotions = "daccor_analyzer_pair_promotions_total"
	MetricAnalyzerItemEvictions  = "daccor_analyzer_item_evictions_total"
	MetricAnalyzerPairEvictions  = "daccor_analyzer_pair_evictions_total"
	MetricAnalyzerPairDemotions  = "daccor_analyzer_pair_demotions_total"

	// Open-addressing index mirrors, labeled {device, table} with table
	// in {"items", "pairs"}. Probes/Lookups is the mean probe length —
	// the health signal for hash quality and load factor.
	MetricIndexLookups  = "daccor_core_index_lookups_total"
	MetricIndexProbes   = "daccor_core_index_probes_total"
	MetricIndexMaxProbe = "daccor_core_index_max_probe_length"
	MetricIndexSlots    = "daccor_core_index_slots"
	MetricIndexUsed     = "daccor_core_index_used"
)

// collect mirrors the worker-owned monitor and analyzer stats into the
// registry. It runs as a collect hook at scrape time: one stats query
// per device, then Store on mirror counters — the analyzer itself
// never touches an atomic. After Stop the stats query fails and the
// mirrors simply retain their last values.
func (e *Engine) collect() {
	st, err := e.Stats()
	if err != nil {
		return
	}
	r := e.metrics
	for _, d := range st.Devices {
		lbl := obs.L("device", d.Device)
		r.Counter(MetricMonitorEvents, "Events accepted by the monitor (after PID filtering).", lbl).Store(d.Monitor.Events)
		r.Counter(MetricMonitorFiltered, "Events dropped by the PID filter.", lbl).Store(d.Monitor.Filtered)
		r.Counter(MetricMonitorDuplicates, "Events removed by in-transaction deduplication.", lbl).Store(d.Monitor.Duplicates)
		r.Counter(MetricMonitorTransactions, "Transactions emitted by the monitor.", lbl).Store(d.Monitor.Transactions)
		r.Counter(MetricMonitorCapSplits, "Transactions closed by the size cap (overflow spills).", lbl).Store(d.Monitor.CapSplits)
		r.Counter(MetricMonitorOutOfOrder, "Events with timestamps before the open transaction's last event.", lbl).Store(d.Monitor.OutOfOrder)
		r.Gauge(MetricMonitorWindow, "Current rolling transaction window, in seconds.", lbl).Set(d.Window.Seconds())

		r.Counter(MetricAnalyzerTransactions, "Transactions processed by the online analyzer.", lbl).Store(d.Analyzer.Transactions)
		r.Counter(MetricAnalyzerExtentTouches, "Item-table extent touches (hits).", lbl).Store(d.Analyzer.Extents)
		r.Counter(MetricAnalyzerPairTouches, "Correlation-table pair touches (hits).", lbl).Store(d.Analyzer.PairTouches)
		r.Counter(MetricAnalyzerItemPromotions, "Item-table T1-to-T2 promotions.", lbl).Store(d.Analyzer.ItemPromotions)
		r.Counter(MetricAnalyzerPairPromotions, "Correlation-table T1-to-T2 promotions.", lbl).Store(d.Analyzer.PairPromotions)
		r.Counter(MetricAnalyzerItemEvictions, "Item-table evictions.", lbl).Store(d.Analyzer.ItemEvictions)
		r.Counter(MetricAnalyzerPairEvictions, "Correlation-table evictions.", lbl).Store(d.Analyzer.PairEvictions)
		r.Counter(MetricAnalyzerPairDemotions, "Pair demotions cascaded from item evictions.", lbl).Store(d.Analyzer.PairDemotions)

		for _, ix := range [...]struct {
			table string
			st    core.IndexStats
		}{{"items", d.ItemIndex}, {"pairs", d.PairIndex}} {
			tl := []obs.Label{obs.L("device", d.Device), obs.L("table", ix.table)}
			r.Counter(MetricIndexLookups, "Open-addressing index lookups (hits and misses).", tl...).Store(ix.st.Lookups)
			r.Counter(MetricIndexProbes, "Probe steps beyond the home slot, summed over lookups.", tl...).Store(ix.st.Probes)
			r.Gauge(MetricIndexMaxProbe, "Longest probe sequence any lookup has walked.", tl...).Set(float64(ix.st.MaxProbe))
			r.Gauge(MetricIndexSlots, "Open-addressing slot-array size.", tl...).Set(float64(ix.st.Slots))
			r.Gauge(MetricIndexUsed, "Open-addressing slots occupied by live entries.", tl...).Set(float64(ix.st.Used))
		}
	}
}

// observeSubmitLatency records one sampled submit→analyze latency.
func (m *shardMetrics) observeSubmitLatency(enqueuedUnixNano int64) {
	m.latency.Observe(time.Duration(time.Now().UnixNano() - enqueuedUnixNano).Seconds())
}
