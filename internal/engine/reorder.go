package engine

import "daccor/internal/blktrace"

// reorderBuffer is the bounded timestamp-reordering stage between the
// ingest ring and the analyzer. With multiple producers racing on the
// ring, events can interleave slightly out of timestamp order; the
// monitor would clamp every inversion (inflating OutOfOrder and
// distorting window decisions). The buffer holds up to cap events in
// a min-heap keyed by (Time, arrival), releasing the oldest once the
// bound is exceeded — so any inversion within a window of cap events
// is repaired, and anything beyond it is counted as late and left to
// the monitor's clamp. The router flushes the buffer whenever it
// catches up with the ring, before answering queries (read-your-writes
// for snapshots), and on stop.
//
// Single-goroutine (router-owned); no locking. The heap array is
// preallocated and entries are plain values, so steady-state push and
// release do not allocate.
type reorderItem struct {
	ev  blktrace.Event
	ts  int64  // sampled submit timestamp, 0 = unsampled
	arr uint64 // arrival sequence: tie-break keeps equal times FIFO
}

type reorderBuffer struct {
	cap  int
	heap []reorderItem
	arr  uint64

	lastReleased int64
	released     bool

	// late counts events released with a timestamp below an
	// already-released one — inversions wider than the buffer. The
	// router mirrors it into the reorder_late metric.
	late uint64
}

func newReorderBuffer(capacity int) *reorderBuffer {
	if capacity < 0 {
		capacity = 0
	}
	return &reorderBuffer{
		cap:  capacity,
		heap: make([]reorderItem, 0, capacity+1),
	}
}

func (b *reorderBuffer) len() int { return len(b.heap) }

func (b *reorderBuffer) less(i, j int) bool {
	if b.heap[i].ev.Time != b.heap[j].ev.Time {
		return b.heap[i].ev.Time < b.heap[j].ev.Time
	}
	return b.heap[i].arr < b.heap[j].arr
}

// push adds one event. If the buffer exceeds its bound the minimum is
// released to emit; emit may be invoked zero or one times per push.
func (b *reorderBuffer) push(ev blktrace.Event, ts int64, emit func(blktrace.Event, int64)) {
	b.heap = append(b.heap, reorderItem{ev: ev, ts: ts, arr: b.arr})
	b.arr++
	// sift up
	i := len(b.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !b.less(i, parent) {
			break
		}
		b.heap[i], b.heap[parent] = b.heap[parent], b.heap[i]
		i = parent
	}
	if len(b.heap) > b.cap {
		b.releaseMin(emit)
	}
}

// flush releases every buffered event in timestamp order.
func (b *reorderBuffer) flush(emit func(blktrace.Event, int64)) {
	for len(b.heap) > 0 {
		b.releaseMin(emit)
	}
}

func (b *reorderBuffer) releaseMin(emit func(blktrace.Event, int64)) {
	item := b.heap[0]
	last := len(b.heap) - 1
	b.heap[0] = b.heap[last]
	b.heap = b.heap[:last]
	// sift down
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(b.heap) && b.less(l, smallest) {
			smallest = l
		}
		if r < len(b.heap) && b.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		b.heap[i], b.heap[smallest] = b.heap[smallest], b.heap[i]
		i = smallest
	}
	if b.released && item.ev.Time < b.lastReleased {
		b.late++
	} else {
		b.lastReleased = item.ev.Time
		b.released = true
	}
	emit(item.ev, item.ts)
}
