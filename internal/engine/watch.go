package engine

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"daccor/internal/obs"
)

// This file is the push half of the epoch design from the read path:
// PR 5 gave every shard a monotone epoch so readers could *validate*
// cheaply; here the epoch also *notifies*, so a watcher blocks on a
// channel instead of polling If-None-Match in a loop. The mechanism is
// the classic closed-channel broadcast: each notifier holds a channel
// that is closed (waking every waiter at once) and replaced on every
// advance. Waiters re-read the epoch after grabbing the channel, so a
// bump between the read and the grab can never be missed; coalescing
// is inherent — a waiter woken after N bumps sees only the latest
// epoch, which is exactly the semantics a snapshot consumer wants.

// epochNotifier wakes waiters when an epoch advances, and carries a
// terminal error once the state it covers can never advance again
// (worker stopped, device failed, engine stopped).
type epochNotifier struct {
	mu   sync.Mutex
	ch   chan struct{}
	over error // non-nil once terminal; ch is closed and never replaced
	// advanceNs is the UnixNano of the latest advance, read by the HTTP
	// layer to measure notification fan-out latency.
	advanceNs int64
}

func newEpochNotifier() *epochNotifier {
	return &epochNotifier{ch: make(chan struct{})}
}

// wake broadcasts one advance to every current waiter. Terminal wakes
// are sticky: the first wins, later wakes (terminal or not) are no-ops.
func (n *epochNotifier) wake(terminal error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.over != nil {
		return
	}
	n.advanceNs = time.Now().UnixNano()
	close(n.ch)
	if terminal != nil {
		n.over = terminal
		return
	}
	n.ch = make(chan struct{})
}

// grab returns the current wait channel and the terminal error, if any.
func (n *epochNotifier) grab() (<-chan struct{}, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ch, n.over
}

// lastAdvance returns when the notifier last woke waiters (zero time if
// never).
func (n *epochNotifier) lastAdvance() time.Time {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.advanceNs == 0 {
		return time.Time{}
	}
	return time.Unix(0, n.advanceNs)
}

// bumpEpoch advances the shard's epoch and wakes epoch waiters — ours
// and, through onEpoch, the engine's fleet-level ones. It replaces the
// bare epoch.Add at every synopsis-change site.
func (s *shard) bumpEpoch() {
	s.epoch.Add(1)
	s.notify.wake(nil)
	if s.onEpoch != nil {
		s.onEpoch()
	}
}

// endEpochWaiters marks the shard's epoch terminal: current and future
// waiters get err instead of blocking on a worker that is gone. The
// fleet is woken too — a device leaving the fleet changes the merged
// view.
func (s *shard) endEpochWaiters(err error) {
	s.notify.wake(err)
	if s.onEpoch != nil {
		s.onEpoch()
	}
}

// waitEpoch blocks until the shard's epoch differs from since, the
// shard becomes terminal (returns the notifier's terminal error), or
// ctx is done (returns ctx.Err()). The current epoch is returned in
// every case.
func (s *shard) waitEpoch(ctx context.Context, since uint64) (uint64, error) {
	for {
		if cur := s.epoch.Load(); cur != since {
			return cur, nil
		}
		ch, over := s.notify.grab()
		// Re-check after grabbing the channel: a bump between the load
		// and the grab already closed a channel we never held.
		if cur := s.epoch.Load(); cur != since {
			return cur, nil
		}
		if over != nil {
			return s.epoch.Load(), over
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return s.epoch.Load(), ctx.Err()
		}
	}
}

// WaitEpoch blocks until the named device's epoch differs from since,
// then returns the new epoch. It returns immediately when the current
// epoch already differs — a caller resuming from a stale cursor pays
// nothing. On Stop (or device failure) waiters are woken with the
// corresponding sentinel error instead of hanging; on ctx cancellation
// the context's error is returned. The wait is notification-driven:
// no polling anywhere.
func (e *Engine) WaitEpoch(ctx context.Context, id string, since uint64) (uint64, error) {
	s, err := e.shard(id)
	if err != nil {
		return 0, err
	}
	return s.waitEpoch(ctx, since)
}

// EpochAdvanceTime returns when the named device's epoch last advanced
// (zero time if it never has) — the reference point for fan-out
// latency measurements.
func (e *Engine) EpochAdvanceTime(id string) (time.Time, error) {
	s, err := e.shard(id)
	if err != nil {
		return time.Time{}, err
	}
	return s.notify.lastAdvance(), nil
}

// fleetWake forwards one device advance to fleet-level waiters. It is
// the engine's onEpoch hook, called from shard workers and supervisors.
func (e *Engine) fleetWake() {
	e.fleet.wake(nil)
}

// WaitMergedEpoch blocks until the merged epoch differs from the
// (sum, devices) pair — any device processing a batch, restarting,
// registering, unregistering, or flushing on stop changes it — and
// returns the new pair. After Stop, waiters are woken with ErrStopped.
func (e *Engine) WaitMergedEpoch(ctx context.Context, sum uint64, devices int) (uint64, int, error) {
	for {
		if s, n := e.MergedEpoch(); s != sum || n != devices {
			return s, n, nil
		}
		ch, over := e.fleet.grab()
		if s, n := e.MergedEpoch(); s != sum || n != devices {
			return s, n, nil
		}
		if over != nil {
			s, n := e.MergedEpoch()
			return s, n, over
		}
		select {
		case <-ch:
		case <-ctx.Done():
			s, n := e.MergedEpoch()
			return s, n, ctx.Err()
		}
	}
}

// MergedEpochAdvanceTime returns when any device's epoch last advanced
// (zero time if none has).
func (e *Engine) MergedEpochAdvanceTime() time.Time {
	return e.fleet.lastAdvance()
}

// Unregister removes a device from the engine: its worker drains the
// queued events, flushes the open transaction, writes a final
// checkpoint, and exits; pending queries are answered first. Epoch
// waiters on the device are woken with a terminal error, and fleet
// waiters are woken because the merged view changed. The device's
// metric series (including the GaugeFunc closures that would otherwise
// pin the dead shard) are dropped from the registry, so cycling tenant
// IDs through Register/Unregister leaves registry cardinality and heap
// flat. The device ID is free for re-registration afterwards. Returns
// ErrUnknownDevice if the device is not registered and ErrStopped
// after Stop (which already stops every device).
func (e *Engine) Unregister(id string) error {
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return ErrStopped
	}
	s, ok := e.shards[id]
	if !ok {
		e.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownDevice, id)
	}
	delete(e.shards, id)
	at := sort.SearchStrings(e.order, id)
	e.order = append(e.order[:at], e.order[at+1:]...)
	e.mu.Unlock()
	// Drop the device's series before the drain, not after: the id is
	// already invisible to lookups (and to the scrape-time collect
	// hook, which iterates registered devices only), so nothing
	// recreates them — while a concurrent re-registration of the same
	// id after the drain would mint fresh series a late drop here must
	// not clobber. The draining worker keeps updating its detached
	// instruments harmlessly.
	e.metrics.DropSeries(obs.L("device", id))
	s.requestStop()
	<-s.done
	e.fleetWake()
	return nil
}
