package engine

import (
	"bytes"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"daccor/internal/blktrace"
	"daccor/internal/core"
	"daccor/internal/monitor"
	"daccor/internal/pipeline"
	"daccor/internal/workload"
)

func testOptions(extra ...Option) []Option {
	opts := []Option{
		WithMonitor(monitor.Config{Window: monitor.StaticWindow(10 * time.Millisecond)}),
		WithAnalyzer(core.Config{ItemCapacity: 4096, PairCapacity: 4096}),
	}
	return append(opts, extra...)
}

func mustEngine(t *testing.T, extra ...Option) *Engine {
	t.Helper()
	e, err := New(testOptions(extra...)...)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// waitDrained polls until the device has consumed (or dropped) at
// least want events.
func waitDrained(t *testing.T, e *Engine, id string, want uint64) DeviceStats {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		ds, err := e.DeviceStatsFor(id)
		if err != nil {
			t.Fatal(err)
		}
		if ds.Monitor.Events+ds.Dropped >= want && ds.Lag == 0 {
			return ds
		}
		if time.Now().After(deadline) {
			t.Fatalf("device %s consumed %d+%d dropped of %d events before deadline",
				id, ds.Monitor.Events, ds.Dropped, want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("want error for zero analyzer capacities")
	}
	if _, err := New(testOptions(WithQueueSize(-1))...); err == nil {
		t.Error("want error for negative queue size")
	}
	if _, err := New(testOptions(WithBackpressure(Backpressure(42)))...); err == nil {
		t.Error("want error for unknown policy")
	}
	if _, err := New(testOptions(WithDevices("a", "a"))...); !errors.Is(err, ErrDuplicateDevice) {
		t.Errorf("duplicate device = %v, want ErrDuplicateDevice", err)
	}
	if _, err := New(testOptions(WithDevices(""))...); err == nil {
		t.Error("want error for empty device id")
	}
}

func TestRegisterAndDevices(t *testing.T) {
	e := mustEngine(t, WithDevices("vol0", "vol1"))
	defer e.Stop()
	if err := e.Register("vol2"); err != nil {
		t.Fatal(err)
	}
	if err := e.Register("vol0"); !errors.Is(err, ErrDuplicateDevice) {
		t.Errorf("re-register = %v, want ErrDuplicateDevice", err)
	}
	want := []string{"vol0", "vol1", "vol2"}
	if got := e.Devices(); !reflect.DeepEqual(got, want) {
		t.Errorf("Devices() = %v, want %v", got, want)
	}
}

func TestUnknownDevice(t *testing.T) {
	e := mustEngine(t, WithDevices("vol0"))
	defer e.Stop()
	ev := blktrace.Event{Time: 0, Op: blktrace.OpRead, Extent: blktrace.Extent{Block: 1, Len: 1}}
	if err := e.Submit("nope", ev); !errors.Is(err, ErrUnknownDevice) {
		t.Errorf("Submit = %v, want ErrUnknownDevice", err)
	}
	if _, err := e.Snapshot("nope", 1); !errors.Is(err, ErrUnknownDevice) {
		t.Errorf("Snapshot = %v, want ErrUnknownDevice", err)
	}
	if _, err := e.Rules("nope", 1, 0); !errors.Is(err, ErrUnknownDevice) {
		t.Errorf("Rules = %v, want ErrUnknownDevice", err)
	}
	if _, err := e.Device("nope"); !errors.Is(err, ErrUnknownDevice) {
		t.Errorf("Device = %v, want ErrUnknownDevice", err)
	}
	if _, err := e.DeviceStatsFor("nope"); !errors.Is(err, ErrUnknownDevice) {
		t.Errorf("DeviceStatsFor = %v, want ErrUnknownDevice", err)
	}
	e.ObserveLatency("nope", 1) // must not panic
}

func TestSubmitValidates(t *testing.T) {
	e := mustEngine(t, WithDevices("vol0"))
	defer e.Stop()
	bad := blktrace.Event{Time: 0, Op: blktrace.OpRead, Extent: blktrace.Extent{Block: 1, Len: 0}}
	if err := e.Submit("vol0", bad); err == nil {
		t.Error("want validation error")
	}
}

// TestTwoDevicesConcurrent hammers two devices from concurrent
// producers while consumers poll per-device and merged state — the
// engine's core concurrency contract, meant to run under -race.
func TestTwoDevicesConcurrent(t *testing.T) {
	synA, err := workload.Generate(workload.SyntheticConfig{
		Kind: workload.OneToOne, Occurrences: 600, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	synB, err := workload.Generate(workload.SyntheticConfig{
		Kind: workload.ManyToMany, Occurrences: 400, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := mustEngine(t, WithDevices("vol0", "vol1"), WithBackpressure(Block))

	feeds := map[string]*blktrace.Trace{"vol0": synA.Trace, "vol1": synB.Trace}
	var wg sync.WaitGroup
	for id, trace := range feeds {
		dev, err := e.Device(id)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(dev *Device, trace *blktrace.Trace) {
			defer wg.Done()
			for _, ev := range trace.Events {
				if err := dev.Submit(ev); err != nil {
					t.Errorf("submit %s: %v", dev.ID(), err)
					return
				}
				dev.ObserveLatency(int64(40 * time.Microsecond))
			}
		}(dev, trace)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if _, err := e.MergedSnapshot(1); err != nil {
				t.Errorf("MergedSnapshot: %v", err)
				return
			}
			if _, err := e.Stats(); err != nil {
				t.Errorf("Stats: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	waitDrained(t, e, "vol0", uint64(synA.Trace.Len()))
	waitDrained(t, e, "vol1", uint64(synB.Trace.Len()))

	// Per-device views recover each device's planted correlations.
	snapA, err := e.Snapshot("vol0", 1)
	if err != nil {
		t.Fatal(err)
	}
	countsA := snapA.PairCounts()
	for rank, corr := range synA.Correlations {
		if countsA[corr.Pairs()[0]] < 5 {
			t.Errorf("vol0 planted pair rank %d missing after concurrent run", rank)
		}
	}
	// The merged view covers both devices' pairs with counts no lower
	// than either per-device view.
	snapB, err := e.Snapshot("vol1", 1)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := e.MergedSnapshot(1)
	if err != nil {
		t.Fatal(err)
	}
	mergedCounts := merged.PairCounts()
	for p, c := range countsA {
		if mergedCounts[p] < c {
			t.Errorf("merged count for %v = %d, below vol0's %d", p, mergedCounts[p], c)
		}
	}
	for p, c := range snapB.PairCounts() {
		if mergedCounts[p] < c {
			t.Errorf("merged count for %v = %d, below vol1's %d", p, mergedCounts[p], c)
		}
	}
	e.Stop()
}

// TestMergedEqualsSingleAnalyzerN1 is the regression check for the
// aggregation layer: with one device, the engine's merged output must
// be identical to running the same trace through a bare single-analyzer
// pipeline.
func TestMergedEqualsSingleAnalyzerN1(t *testing.T) {
	syn, err := workload.Generate(workload.SyntheticConfig{
		Kind: workload.ManyToMany, Occurrences: 500, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipeline.Config{
		Monitor:  monitor.Config{Window: monitor.StaticWindow(10 * time.Millisecond)},
		Analyzer: core.Config{ItemCapacity: 4096, PairCapacity: 4096},
	}

	// Reference: the plain single-threaded pipeline, fed the same
	// events without a final Flush (the engine flushes on Stop, which
	// is after the snapshot we compare — both sides hold the same open
	// transaction).
	ref, err := pipeline.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range syn.Trace.Events {
		if err := ref.HandleIssue(ev); err != nil {
			t.Fatal(err)
		}
	}
	want := ref.Snapshot(1)

	// Engine with N=1: same events through one shard, then merged.
	e, err := New(WithPipeline(cfg), WithDevices("only"), WithBackpressure(Block))
	if err != nil {
		t.Fatal(err)
	}
	dev, err := e.Device("only")
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range syn.Trace.Events {
		if err := dev.Submit(ev); err != nil {
			t.Fatal(err)
		}
	}
	waitDrained(t, e, "only", uint64(syn.Trace.Len()))
	got, err := e.MergedSnapshot(1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("N=1 merged snapshot diverges from single-analyzer run: %d vs %d pairs",
			len(got.Pairs), len(want.Pairs))
	}
	// MergeSnapshots over one export must also be the identity.
	single, err := e.Snapshot("only", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(core.MergeSnapshots(single), single) {
		t.Error("MergeSnapshots(s) != s for a single snapshot")
	}
	e.Stop()
}

func TestDropOldestAccounting(t *testing.T) {
	e := mustEngine(t, WithDevices("vol0"), WithQueueSize(4))
	const n = 5000
	for i := 0; i < n; i++ {
		ev := blktrace.Event{Time: int64(i) * 1000, Op: blktrace.OpRead,
			Extent: blktrace.Extent{Block: uint64(i), Len: 1}}
		if err := e.Submit("vol0", ev); err != nil {
			t.Fatal(err)
		}
	}
	// Every submitted event is either processed or counted as dropped.
	ds := waitDrained(t, e, "vol0", n)
	if ds.Monitor.Events+ds.Dropped != n {
		t.Errorf("events %d + dropped %d != submitted %d", ds.Monitor.Events, ds.Dropped, n)
	}
	t.Logf("processed %d, dropped %d", ds.Monitor.Events, ds.Dropped)
	e.Stop()
}

func TestWriteSnapshotLive(t *testing.T) {
	e := mustEngine(t, WithDevices("vol0"), WithBackpressure(Block))
	a := blktrace.Extent{Block: 10, Len: 1}
	b := blktrace.Extent{Block: 20, Len: 1}
	for i := 0; i < 8; i++ {
		base := int64(i) * int64(time.Second)
		if err := e.Submit("vol0", blktrace.Event{Time: base, Op: blktrace.OpRead, Extent: a}); err != nil {
			t.Fatal(err)
		}
		if err := e.Submit("vol0", blktrace.Event{Time: base + 1000, Op: blktrace.OpRead, Extent: b}); err != nil {
			t.Fatal(err)
		}
	}
	waitDrained(t, e, "vol0", 16)
	var buf bytes.Buffer
	if err := e.WriteSnapshot("vol0", &buf); err != nil {
		t.Fatal(err)
	}
	restored, err := core.LoadAnalyzer(&buf)
	if err != nil {
		t.Fatalf("live snapshot not loadable: %v", err)
	}
	if restored.Pairs().Len() == 0 {
		t.Error("restored live snapshot empty")
	}
	e.Stop()
}

func TestMergedRules(t *testing.T) {
	e := mustEngine(t, WithDevices("vol0", "vol1"), WithBackpressure(Block))
	a := blktrace.Extent{Block: 10, Len: 1}
	b := blktrace.Extent{Block: 20, Len: 1}
	for _, id := range []string{"vol0", "vol1"} {
		for i := 0; i < 5; i++ {
			base := int64(i) * int64(time.Second)
			if err := e.Submit(id, blktrace.Event{Time: base, Op: blktrace.OpRead, Extent: a}); err != nil {
				t.Fatal(err)
			}
			if err := e.Submit(id, blktrace.Event{Time: base + 1000, Op: blktrace.OpRead, Extent: b}); err != nil {
				t.Fatal(err)
			}
		}
		waitDrained(t, e, id, 10)
	}
	// Each device saw the pair 4 times (the 5th transaction is still
	// open); merged support is the sum of both devices' counters.
	rules, err := e.MergedRules(5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("merged rules = %+v, want 2", rules)
	}
	perDev, err := e.Rules("vol0", 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(perDev) != 2 {
		t.Fatalf("per-device rules = %+v, want 2", perDev)
	}
	if rules[0].Support != 2*perDev[0].Support {
		t.Errorf("merged support = %d, want %d", rules[0].Support, 2*perDev[0].Support)
	}
	e.Stop()
}

func TestStopSemantics(t *testing.T) {
	e := mustEngine(t, WithDevices("vol0"))
	dev, err := e.Device("vol0")
	if err != nil {
		t.Fatal(err)
	}
	e.Stop()
	e.Stop() // idempotent
	ev := blktrace.Event{Time: 0, Op: blktrace.OpRead, Extent: blktrace.Extent{Block: 1, Len: 1}}
	if err := e.Submit("vol0", ev); !errors.Is(err, ErrStopped) {
		t.Errorf("Submit after stop = %v, want ErrStopped", err)
	}
	if err := dev.Submit(ev); !errors.Is(err, ErrStopped) {
		t.Errorf("Device.Submit after stop = %v, want ErrStopped", err)
	}
	if _, err := e.Snapshot("vol0", 1); !errors.Is(err, ErrStopped) {
		t.Errorf("Snapshot after stop = %v, want ErrStopped", err)
	}
	if _, err := e.MergedSnapshot(1); !errors.Is(err, ErrStopped) {
		t.Errorf("MergedSnapshot after stop = %v, want ErrStopped", err)
	}
	if _, err := e.Stats(); !errors.Is(err, ErrStopped) {
		t.Errorf("Stats after stop = %v, want ErrStopped", err)
	}
	if err := e.Register("vol1"); !errors.Is(err, ErrStopped) {
		t.Errorf("Register after stop = %v, want ErrStopped", err)
	}
	if _, err := e.Dropped("vol0"); err != nil {
		t.Errorf("Dropped after stop = %v, want nil", err)
	}
	if got := e.Devices(); len(got) != 1 {
		t.Errorf("Devices after stop = %v", got)
	}
	dev.ObserveLatency(1) // must not panic or block
}

func TestConcurrentStop(t *testing.T) {
	e := mustEngine(t, WithDevices("vol0", "vol1"))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.Stop()
		}()
	}
	wg.Wait()
}

func TestBlockPolicyLosesNothing(t *testing.T) {
	e := mustEngine(t, WithDevices("vol0"), WithQueueSize(2), WithBackpressure(Block))
	const n = 3000
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < n/4; i++ {
				ev := blktrace.Event{Time: int64(i) * 1000, Op: blktrace.OpRead,
					Extent: blktrace.Extent{Block: uint64(g*1_000_000 + i), Len: 1}}
				if err := e.Submit("vol0", ev); err != nil {
					t.Errorf("Submit: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	ds := waitDrained(t, e, "vol0", n)
	if ds.Monitor.Events != n {
		t.Errorf("events = %d, want %d", ds.Monitor.Events, n)
	}
	if ds.Dropped != 0 {
		t.Errorf("dropped = %d, want 0 under Block policy", ds.Dropped)
	}
	e.Stop()
}
