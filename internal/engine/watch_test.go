package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"daccor/internal/blktrace"
	"daccor/internal/core"
	"daccor/internal/monitor"
)

func watchEngine(t *testing.T, devices ...string) *Engine {
	t.Helper()
	e, err := New(
		WithMonitor(monitor.Config{Window: monitor.StaticWindow(time.Millisecond)}),
		WithAnalyzer(core.Config{ItemCapacity: 1024, PairCapacity: 1024}),
		WithBackpressure(Block),
		WithDevices(devices...),
	)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// submitPair feeds one correlated pair far enough apart in event time
// to close the transaction window, guaranteeing at least one batch is
// processed and the epoch advances.
func submitPair(t *testing.T, e *Engine, id string, base int64) {
	t.Helper()
	a := blktrace.Extent{Block: 10, Len: 1}
	b := blktrace.Extent{Block: 20, Len: 1}
	if err := e.SubmitBatch(id, []blktrace.Event{
		{Time: base, Op: blktrace.OpRead, Extent: a},
		{Time: base + 1000, Op: blktrace.OpRead, Extent: b},
	}); err != nil {
		t.Fatal(err)
	}
}

func TestWaitEpochImmediateWhenBehind(t *testing.T) {
	e := watchEngine(t, "vol0")
	defer e.Stop()
	submitPair(t, e, "vol0", 0)
	// Wait for the epoch to move off zero.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	ep, err := e.WaitEpoch(ctx, "vol0", 0)
	if err != nil {
		t.Fatal(err)
	}
	if ep == 0 {
		t.Fatal("epoch still 0 after wait")
	}
	// A stale cursor returns without blocking.
	fast, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	again, err := e.WaitEpoch(fast, "vol0", ep-1)
	if err != nil {
		t.Fatalf("stale-cursor wait should not block: %v", err)
	}
	if again < ep {
		t.Errorf("epoch went backwards: %d < %d", again, ep)
	}
}

func TestWaitEpochBlocksUntilAdvance(t *testing.T) {
	e := watchEngine(t, "vol0")
	defer e.Stop()
	ep, err := e.Epoch("vol0")
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan uint64, 1)
	errc := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		next, err := e.WaitEpoch(ctx, "vol0", ep)
		if err != nil {
			errc <- err
			return
		}
		got <- next
	}()
	// Give the waiter time to actually block, then ingest.
	time.Sleep(20 * time.Millisecond)
	submitPair(t, e, "vol0", 0)
	select {
	case next := <-got:
		if next <= ep {
			t.Errorf("woke at epoch %d, want > %d", next, ep)
		}
	case err := <-errc:
		t.Fatal(err)
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never woke after ingest")
	}
}

func TestWaitEpochContextCancel(t *testing.T) {
	e := watchEngine(t, "vol0")
	defer e.Stop()
	ep, _ := e.Epoch("vol0")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := e.WaitEpoch(ctx, "vol0", ep)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want DeadlineExceeded", err)
	}
}

// TestWaitEpochTerminalOnStop pins the satellite fix: epoch waiters
// are woken with a terminal error on Stop instead of hanging.
func TestWaitEpochTerminalOnStop(t *testing.T) {
	e := watchEngine(t, "vol0")
	ep, _ := e.Epoch("vol0")
	errc := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_, err := e.WaitEpoch(ctx, "vol0", ep)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	e.Stop()
	select {
	case err := <-errc:
		// Stop flushes the open transaction, which may advance the
		// epoch and wake the waiter successfully before the terminal
		// signal; both are correct, hanging is not.
		if err != nil && !errors.Is(err, ErrStopped) {
			t.Errorf("err = %v, want nil (flush advance) or ErrStopped", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter hung across Stop")
	}
	// After Stop, a waiter holding the current (final) cursor is
	// immediately terminal — the epoch can never advance past it. (A
	// stale cursor still returns the final epoch first, so the last
	// flushed state remains deliverable.)
	final, err := e.WaitEpoch(context.Background(), "vol0", ^uint64(0))
	if err != nil {
		t.Fatalf("stale-cursor post-stop wait err = %v, want final epoch", err)
	}
	if _, err := e.WaitEpoch(context.Background(), "vol0", final); !errors.Is(err, ErrStopped) {
		t.Errorf("current-cursor post-stop wait err = %v, want ErrStopped", err)
	}
}

func TestWaitEpochTerminalOnUnregister(t *testing.T) {
	e := watchEngine(t, "vol0", "vol1")
	defer e.Stop()
	ep, _ := e.Epoch("vol0")
	errc := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_, err := e.WaitEpoch(ctx, "vol0", ep)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if err := e.Unregister("vol0"); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, ErrStopped) {
			t.Errorf("err = %v, want nil (flush advance) or ErrStopped", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter hung across Unregister")
	}
	// The device is gone from every surface.
	if _, err := e.Epoch("vol0"); !errors.Is(err, ErrUnknownDevice) {
		t.Errorf("Epoch after unregister = %v, want ErrUnknownDevice", err)
	}
	if got := e.Devices(); len(got) != 1 || got[0] != "vol1" {
		t.Errorf("Devices after unregister = %v, want [vol1]", got)
	}
	// The survivor still works.
	submitPair(t, e, "vol1", 0)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := e.WaitEpoch(ctx, "vol1", 0); err != nil {
		t.Errorf("surviving device wait: %v", err)
	}
}

func TestUnregisterErrors(t *testing.T) {
	e := watchEngine(t, "vol0")
	if err := e.Unregister("nope"); !errors.Is(err, ErrUnknownDevice) {
		t.Errorf("unknown unregister = %v", err)
	}
	e.Stop()
	if err := e.Unregister("vol0"); !errors.Is(err, ErrStopped) {
		t.Errorf("post-stop unregister = %v", err)
	}
}

// TestWaitMergedEpoch covers the fleet-level wait: it must wake both
// on any device's epoch advance and on fleet membership change.
func TestWaitMergedEpoch(t *testing.T) {
	e := watchEngine(t, "vol0", "vol1")
	defer e.Stop()
	sum, n := e.MergedEpoch()
	if n != 2 {
		t.Fatalf("devices = %d, want 2", n)
	}
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_, _, err := e.WaitMergedEpoch(ctx, sum, n)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	submitPair(t, e, "vol1", 0)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("merged waiter never woke on device ingest")
	}

	// Membership change (unregister) also wakes a merged waiter even
	// if the epoch sum happens not to move.
	sum, n = e.MergedEpoch()
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_, _, err := e.WaitMergedEpoch(ctx, sum, n)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if err := e.Unregister("vol0"); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("merged waiter never woke on unregister")
	}
}
