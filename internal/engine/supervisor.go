package engine

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"time"

	"daccor/internal/checkpoint"
	"daccor/internal/core"
)

// HealthState is one device's position in the supervisor's state
// machine:
//
//	Healthy ──panic──▶ Degraded ──restart budget exhausted──▶ Failed
//	   ▲                  │
//	   └──probation met───┘
//
// A panic in the device's worker moves it to Degraded; the supervisor
// restarts the worker (restoring the freshest checkpoint) under
// exponential backoff. Once the restarted worker has processed
// SupervisorConfig.Probation events without panicking the device
// returns to Healthy and its restart budget resets. If MaxRestarts
// consecutive restarts are burned without regaining health, the device
// becomes Failed: its worker exits, queued events are discarded, and
// every ingest or query against it returns ErrDeviceUnavailable
// immediately instead of hanging. Other devices are unaffected
// throughout.
type HealthState int

const (
	Healthy HealthState = iota
	Degraded
	Failed
)

func (h HealthState) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Failed:
		return "failed"
	}
	return fmt.Sprintf("HealthState(%d)", int(h))
}

// ErrDeviceUnavailable is returned for ingest and queries against a
// device whose worker has failed permanently (restart budget
// exhausted) or whose query died in a worker panic. The engine's other
// devices keep serving.
var ErrDeviceUnavailable = errors.New("engine: device unavailable")

// Supervisor defaults; see SupervisorConfig.
const (
	DefaultBackoffBase = 50 * time.Millisecond
	DefaultBackoffCap  = 5 * time.Second
	DefaultMaxRestarts = 8
	DefaultProbation   = 512
)

// SupervisorConfig tunes per-device panic recovery. The zero value
// selects the defaults.
type SupervisorConfig struct {
	// BackoffBase is the delay before the first restart; each
	// consecutive restart doubles it (default DefaultBackoffBase).
	BackoffBase time.Duration
	// BackoffCap bounds the backoff delay (default DefaultBackoffCap).
	BackoffCap time.Duration
	// MaxRestarts is how many consecutive restarts may be attempted
	// before the device is declared Failed (default
	// DefaultMaxRestarts). The counter resets when the device regains
	// health.
	MaxRestarts int
	// Probation is how many events a restarted worker must process
	// without panicking before the device transitions Degraded →
	// Healthy (default DefaultProbation).
	Probation uint64
}

// Validate reports whether the configuration is usable.
func (c SupervisorConfig) Validate() error {
	if c.BackoffBase < 0 || c.BackoffCap < 0 {
		return fmt.Errorf("engine: supervisor backoff must be >= 0 (base %v, cap %v)", c.BackoffBase, c.BackoffCap)
	}
	if c.MaxRestarts < 0 {
		return fmt.Errorf("engine: supervisor MaxRestarts must be >= 0 (got %d)", c.MaxRestarts)
	}
	return nil
}

// withDefaults fills zero fields with the package defaults.
func (c SupervisorConfig) withDefaults() SupervisorConfig {
	if c.BackoffBase == 0 {
		c.BackoffBase = DefaultBackoffBase
	}
	if c.BackoffCap == 0 {
		c.BackoffCap = DefaultBackoffCap
	}
	if c.MaxRestarts == 0 {
		c.MaxRestarts = DefaultMaxRestarts
	}
	if c.Probation == 0 {
		c.Probation = DefaultProbation
	}
	return c
}

// BackoffDelay is the sleep before restart attempt n (1-based):
// exponential growth from BackoffBase, capped at BackoffCap, with
// ±50% jitter so a fleet of devices felled by one bad input does not
// restart in lockstep. Exported because it is the one retry discipline
// of the system: the fleet sync client reuses it for network retries,
// for the same thundering-herd reason.
func (c SupervisorConfig) BackoffDelay(attempt int) time.Duration {
	d := c.BackoffBase
	for i := 1; i < attempt && d < c.BackoffCap; i++ {
		d *= 2
	}
	if d > c.BackoffCap {
		d = c.BackoffCap
	}
	if d <= 0 {
		return 0
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// DeviceHealth is one device's supervision state, readable without a
// worker round trip (so it stays available while the device is
// restarting or failed).
type DeviceHealth struct {
	State HealthState
	// Panics counts worker panics over the device's lifetime.
	Panics uint64
	// Restarts counts supervisor restarts over the device's lifetime.
	Restarts uint64
	// ConsecutiveRestarts is the current run of restarts without a
	// return to health; it resets on Healthy.
	ConsecutiveRestarts int
	// LastRestart is when the supervisor last restarted the worker
	// (zero if never).
	LastRestart time.Time
	// CheckpointSeq is the generation of the device's newest written
	// or restored checkpoint (0 if none).
	CheckpointSeq uint64
	// LastCheckpoint is when that checkpoint was committed (zero if
	// none).
	LastCheckpoint time.Time
}

// health snapshots the shard's supervision state.
func (s *shard) health() DeviceHealth {
	s.mu.Lock()
	defer s.mu.Unlock()
	return DeviceHealth{
		State:               s.state,
		Panics:              s.panics,
		Restarts:            s.restarts,
		ConsecutiveRestarts: s.consecutive,
		LastRestart:         s.lastRestart,
		CheckpointSeq:       s.ckptGen,
		LastCheckpoint:      s.ckptTime,
	}
}

// supervise is the shard's top-level goroutine: it runs the worker
// loop, and when the loop dies in a panic it restores the freshest
// checkpoint and restarts it under backoff — or, once the restart
// budget is exhausted, parks the device as Failed until Stop. It is
// the only closer of s.done.
func (s *shard) supervise() {
	defer close(s.done)
	// Whatever path ends the supervisor — clean stop, unregister, or a
	// failed device finally stopping — the shard's synopsis can never
	// advance again; epoch waiters must get a terminal error, never
	// hang (no-op if fail() already ended them with a sharper one).
	defer s.endEpochWaiters(ErrStopped)
	for {
		v := s.runOnce()
		if v == nil {
			return // clean stop: queue drained, transaction flushed
		}

		s.metrics.panics.Inc()
		s.mu.Lock()
		s.panics++
		s.state = Degraded
		s.consecutive++
		attempt := s.consecutive
		s.mu.Unlock()
		// Queries the dead worker had claimed but not answered go back
		// to the head of the queue; the restarted worker answers them
		// against the restored state rather than leaving askers hung.
		s.qMu.Lock()
		if len(s.inflight) > 0 {
			s.queries = append(s.inflight, s.queries...)
			s.inflight = nil
		}
		s.qMu.Unlock()

		for {
			if attempt > s.super.MaxRestarts {
				s.fail()
				s.parkFailed()
				return
			}
			select {
			case <-time.After(s.super.BackoffDelay(attempt)):
			case <-s.stopCh:
				// Stop is in progress: skip the remaining backoff so
				// shutdown is prompt; the rebuilt worker still drains
				// and flushes below.
			}
			st, gen, err := s.rebuild()
			if err == nil {
				s.installRestart(st, gen)
				break
			}
			// Restore/rebuild failure burns a restart attempt too —
			// a device whose checkpoints cannot be read must not spin
			// forever.
			s.mu.Lock()
			s.consecutive++
			attempt = s.consecutive
			s.mu.Unlock()
		}
	}
}

// installRestart swaps the rebuilt device state in and records the
// restart. The old run is dead (router and workers have exited) and
// the new one has not started, so the supervisor goroutine owns s.st
// here.
func (s *shard) installRestart(st *deviceState, gen checkpoint.Generation) {
	s.st = st
	// The restored state carries its own transaction total; the
	// router-side count restarts from zero alongside it.
	s.txCount.Store(0)
	// Restored state is different state: invalidate epoch-gated caches
	// and wake watchers so they re-read the restored synopsis.
	s.bumpEpoch()
	s.metrics.restarts.Inc()
	s.mu.Lock()
	s.devCfg = st.devCfg
	s.restarts++
	s.lastRestart = time.Now()
	s.sinceRestart = 0
	if gen.Seq != 0 {
		s.ckptGen = gen.Seq
		s.ckptTime = gen.Time
	}
	s.mu.Unlock()
}

// fail transitions the device to Failed and answers every pending
// query with ErrDeviceUnavailable. The failed flag is published before
// the pending queries are drained, and ask re-checks it under qMu
// after enqueuing — so every query either lands before the drain (and
// is answered here) or observes the flag and is rejected; none can
// hang on the dead workers.
func (s *shard) fail() {
	s.failed.Store(true)
	s.mu.Lock()
	s.state = Failed
	panics := s.panics
	s.mu.Unlock()
	s.qMu.Lock()
	pend := append(s.inflight, s.queries...)
	s.inflight, s.queries = nil, nil
	s.qMu.Unlock()
	// Wake Block-policy submitters so they observe Failed and return.
	s.notFull.open()
	err := fmt.Errorf("%w: %q restart budget exhausted after %d panic(s)", ErrDeviceUnavailable, s.id, panics)
	for _, q := range pend {
		q.reply <- queryReply{err: err}
	}
	// Epoch waiters on a failed device get the same terminal answer as
	// queries: the worker is gone, the synopsis will never advance.
	s.endEpochWaiters(err)
}

// parkFailed holds the supervisor goroutine of a failed device until
// Stop, so Engine.Stop's wait on s.done still completes.
func (s *shard) parkFailed() {
	<-s.stopCh
}

// checkpointLoop periodically checkpoints the device. The worker only
// contributes the O(live entries) capture between batches (a
// consistent state with a bounded ingest stall); the binary encoding
// and the fsync-heavy store commit run on this goroutine, so a slow
// disk no longer holds up ingest for the duration of a write. Errors
// are counted (checkpoint_errors metric); a failed or stopped device
// makes the capture fail immediately, keeping the loop cheap until
// Stop ends it.
func (s *shard) checkpointLoop(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			_ = s.capture(func(g core.RawGroup) error {
				return s.commitCheckpointGroup(g)
			})
		case <-s.stopCh:
			return
		}
	}
}

// commitCheckpointState saves the device's final state on the stop
// path, where the router is done ingesting (and at P>1 the partition
// workers have exited) so touching the analyzers directly is safe and
// encoding inline cannot stall anything.
func (s *shard) commitCheckpointState(st *deviceState) error {
	if st.parts == 1 {
		return s.commitCheckpoint(st.pipe.Analyzer())
	}
	g := s.newGroup()
	for k, a := range st.analyzers {
		a.CaptureSnapshot(g[k])
	}
	return s.commitCheckpointGroup(g)
}

// commitCheckpointGroup persists a capture group as one checkpoint
// generation: the plain single-snapshot encoding at P=1 (byte-for-byte
// the legacy format), the combined encoding under the device-level
// config at P>1 — so a device's checkpoint is loadable, and
// re-splittable across a different P, regardless of how it was
// captured.
func (s *shard) commitCheckpointGroup(g core.RawGroup) error {
	if len(g) == 1 {
		return s.commitCheckpoint(g[0])
	}
	st := g.Stats()
	st.Transactions += s.txCount.Load()
	return s.commitCheckpoint(mergedCheckpoint{g: g, cfg: s.deviceConfig(), stats: st})
}

// mergedCheckpoint adapts a multi-partition capture group to the
// io.WriterTo shape the checkpoint store consumes.
type mergedCheckpoint struct {
	g     core.RawGroup
	cfg   core.Config
	stats core.Stats
}

func (m mergedCheckpoint) WriteTo(w io.Writer) (int64, error) {
	n, _, err := m.g.EncodeMerged(w, m.cfg, m.stats)
	return n, err
}

// commitCheckpoint persists one serializable state as a new checkpoint
// generation and records it in the health view and metrics. src is
// either a live analyzer (worker stop path) or an off-worker capture
// (periodic path).
func (s *shard) commitCheckpoint(src io.WriterTo) error {
	if s.ckpt == nil {
		return nil
	}
	gen, err := s.ckpt.Save(s.id, src)
	if err != nil {
		s.metrics.ckptErrors.Inc()
		return err
	}
	s.metrics.ckpts.Inc()
	s.mu.Lock()
	s.ckptGen = gen.Seq
	s.ckptTime = gen.Time
	s.mu.Unlock()
	return nil
}

// noteProcessed advances the post-restart probation: once a degraded
// device has processed enough events without panicking it is healthy
// again and its restart budget resets.
func (s *shard) noteProcessed(n int) {
	if n == 0 {
		return
	}
	s.mu.Lock()
	s.sinceRestart += uint64(n)
	if s.state == Degraded && s.sinceRestart >= s.super.Probation {
		s.state = Healthy
		s.consecutive = 0
	}
	s.mu.Unlock()
}
