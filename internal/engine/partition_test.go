package engine

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"daccor/internal/blktrace"
	"daccor/internal/checkpoint"
	"daccor/internal/core"
	"daccor/internal/monitor"
	"daccor/internal/pipeline"
	"daccor/internal/workload"
)

// partitionedTrace is a deterministic correlated workload shared by the
// differential tests.
func partitionedTrace(t *testing.T) *blktrace.Trace {
	t.Helper()
	syn, err := workload.Generate(workload.SyntheticConfig{
		Kind: workload.ManyToMany, Occurrences: 800, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return syn.Trace
}

// runTraceThrough builds an engine with the given partition count,
// feeds it the trace from a single producer under Block (no drops, no
// producer-side reordering), and returns its snapshot, rules, and
// stats.
func runTraceThrough(t *testing.T, parts int, trace *blktrace.Trace) (core.Snapshot, []core.Rule, DeviceStats) {
	t.Helper()
	e := mustEngine(t,
		WithDevices("dev"),
		WithBackpressure(Block),
		WithPartitions(parts),
	)
	defer e.Stop()
	dev, err := e.Device("dev")
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range trace.Events {
		if err := dev.Submit(ev); err != nil {
			t.Fatal(err)
		}
	}
	waitDrained(t, e, "dev", uint64(trace.Len()))
	snap, err := e.Snapshot("dev", 0)
	if err != nil {
		t.Fatal(err)
	}
	rules, err := e.Rules("dev", 2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := e.DeviceStatsFor("dev")
	if err != nil {
		t.Fatal(err)
	}
	return snap, rules, ds
}

// TestPartitionedMatchesSingle is the tentpole's correctness
// differential: the same trace through a P-partitioned device must
// produce a merged snapshot semantically identical to P=1 — same
// entries, same counts, same rules — in the no-eviction regime (the
// test capacities hold the whole workload). Snapshots are sorted
// deterministically, so identity is literal equality.
func TestPartitionedMatchesSingle(t *testing.T) {
	trace := partitionedTrace(t)
	wantSnap, wantRules, wantStats := runTraceThrough(t, 1, trace)
	if len(wantSnap.Pairs) == 0 || len(wantRules) == 0 {
		t.Fatalf("degenerate reference: %d pairs, %d rules", len(wantSnap.Pairs), len(wantRules))
	}
	for _, parts := range []int{2, 4, 7} {
		snap, rules, stats := runTraceThrough(t, parts, trace)
		if !reflect.DeepEqual(snap, wantSnap) {
			t.Errorf("P=%d snapshot differs from P=1: %d/%d items, %d/%d pairs",
				parts, len(snap.Items), len(wantSnap.Items), len(snap.Pairs), len(wantSnap.Pairs))
		}
		if !reflect.DeepEqual(rules, wantRules) {
			t.Errorf("P=%d rules differ from P=1: %d vs %d", parts, len(rules), len(wantRules))
		}
		if stats.Partitions != parts {
			t.Errorf("P=%d DeviceStats.Partitions = %d", parts, stats.Partitions)
		}
		// Merged stats must agree with the P=1 run on every
		// device-level counter.
		if stats.Analyzer != wantStats.Analyzer {
			t.Errorf("P=%d analyzer stats = %+v, want %+v", parts, stats.Analyzer, wantStats.Analyzer)
		}
		if stats.Monitor != wantStats.Monitor {
			t.Errorf("P=%d monitor stats = %+v, want %+v", parts, stats.Monitor, wantStats.Monitor)
		}
	}
}

// TestPartitionedWriteSnapshotLoadable: a partitioned device's
// WriteSnapshot is one merged file in the standard synopsis format,
// loadable by core.LoadAnalyzer, equal to the P=1 encoding's content.
func TestPartitionedWriteSnapshotLoadable(t *testing.T) {
	trace := partitionedTrace(t)
	wantSnap, _, _ := runTraceThrough(t, 1, trace)

	e := mustEngine(t, WithDevices("dev"), WithBackpressure(Block), WithPartitions(4))
	defer e.Stop()
	dev, err := e.Device("dev")
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range trace.Events {
		if err := dev.Submit(ev); err != nil {
			t.Fatal(err)
		}
	}
	waitDrained(t, e, "dev", uint64(trace.Len()))

	var buf bytes.Buffer
	if err := e.WriteSnapshot("dev", &buf); err != nil {
		t.Fatal(err)
	}
	a, err := core.LoadAnalyzer(&buf)
	if err != nil {
		t.Fatalf("merged encoding not loadable: %v", err)
	}
	if got := a.Snapshot(0); !reflect.DeepEqual(got, wantSnap) {
		t.Errorf("loaded merged snapshot differs: %d/%d items, %d/%d pairs",
			len(got.Items), len(wantSnap.Items), len(got.Pairs), len(wantSnap.Pairs))
	}
}

// TestPartitionedCheckpointRoundTrip: a P=4 device's checkpoint is a
// single merged generation that a P=1 engine can restore — and vice
// versa — because the merged encoding is the standard synopsis format
// re-split on restore.
func TestPartitionedCheckpointRoundTrip(t *testing.T) {
	trace := partitionedTrace(t)
	wantSnap, _, _ := runTraceThrough(t, 1, trace)
	dir := t.TempDir()

	store, err := checkpoint.Open(checkpoint.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	e := mustEngine(t,
		WithDevices("dev"),
		WithBackpressure(Block),
		WithPartitions(4),
		WithCheckpoints(store, time.Hour), // only the stop-path flush matters
	)
	dev, err := e.Device("dev")
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range trace.Events {
		if err := dev.Submit(ev); err != nil {
			t.Fatal(err)
		}
	}
	waitDrained(t, e, "dev", uint64(trace.Len()))
	e.Stop() // flushes the open transaction and writes the final checkpoint

	for _, parts := range []int{1, 4} {
		store2, err := checkpoint.Open(checkpoint.Config{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		e2 := mustEngine(t,
			WithDevices("dev"),
			WithBackpressure(Block),
			WithPartitions(parts),
			WithCheckpoints(store2, time.Hour),
		)
		snap, err := e2.Snapshot("dev", 0)
		if err != nil {
			t.Fatal(err)
		}
		// The checkpoint was written after the stop flush, so it holds
		// one more (flushed) transaction's worth of state than the
		// pre-stop reference snapshot; compare pair presence and counts
		// at least as large instead of strict equality.
		counts := snap.PairCounts()
		for p, c := range wantSnap.PairCounts() {
			if counts[p] < c {
				t.Errorf("restore at P=%d: pair %v count %d < %d", parts, p, counts[p], c)
			}
		}
		ds, err := e2.DeviceStatsFor("dev")
		if err != nil {
			t.Fatal(err)
		}
		if ds.Analyzer.Transactions == 0 {
			t.Errorf("restore at P=%d lost the transaction total", parts)
		}
		e2.Stop()
	}
}

// TestPartitionedValidation: partition-count bounds and the
// KeepTransactions conflict fail at construction.
func TestPartitionedValidation(t *testing.T) {
	if _, err := New(testOptions(WithPartitions(0))...); err == nil {
		t.Error("want error for 0 partitions")
	}
	if _, err := New(testOptions(WithPartitions(MaxPartitions + 1))...); err == nil {
		t.Error("want error for > MaxPartitions")
	}
	if _, err := New(testOptions(WithReorderBuffer(-1))...); err == nil {
		t.Error("want error for negative reorder buffer")
	}
	cfg := pipeline.Config{
		Monitor:          monitor.Config{Window: monitor.StaticWindow(10 * time.Millisecond)},
		Analyzer:         core.Config{ItemCapacity: 4096, PairCapacity: 4096},
		KeepTransactions: true,
	}
	if _, err := New(WithPipeline(cfg), WithPartitions(2)); err == nil {
		t.Error("want error for KeepTransactions with partitions")
	}
	// Capacities too small to split across the partitions fail early.
	if _, err := New(
		WithMonitor(monitor.Config{Window: monitor.StaticWindow(time.Millisecond)}),
		WithAnalyzer(core.Config{ItemCapacity: 4, PairCapacity: 4}),
		WithPartitions(32),
	); err == nil {
		t.Error("want error for capacities unsplittable across partitions")
	}
}

// TestPartitionedReorderCounters: inversions wider than the reorder
// buffer surface in the reorder_late metric; drop-oldest evictions
// surface in reorder_lost.
func TestPartitionedReorderCounters(t *testing.T) {
	e := mustEngine(t,
		WithDevices("dev"),
		WithBackpressure(Block),
		WithPartitions(2),
		WithReorderBuffer(2),
	)
	defer e.Stop()
	// Timestamps 11..30 ms, then one event back at 1 ms — an inversion
	// far wider than the 2-slot buffer.
	for i := 0; i < 20; i++ {
		if err := e.Submit("dev", readEvent(uint64(1+i%8), 10+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Submit("dev", readEvent(3, 0)); err != nil {
		t.Fatal(err)
	}
	waitDrained(t, e, "dev", 21)
	if got := metricValue(t, e, MetricReorderLate, "dev"); got < 1 {
		t.Errorf("reorder_late = %v, want >= 1", got)
	}

	// A 1-slot DropOldest ring under a burst must shed and count.
	e2 := mustEngine(t,
		WithDevices("dev"),
		WithBackpressure(DropOldest),
		WithQueueSize(1),
	)
	defer e2.Stop()
	for i := 0; i < 5000; i++ {
		if err := e2.Submit("dev", readEvent(uint64(1+i%8), i)); err != nil {
			t.Fatal(err)
		}
	}
	waitDrained(t, e2, "dev", 5000)
	if got := metricValue(t, e2, MetricReorderLost, "dev"); got < 1 {
		t.Errorf("reorder_lost = %v, want >= 1 after a 5000-event burst through a 1-slot ring", got)
	}
	if got := metricValue(t, e2, MetricPartitions, "dev"); got != 1 {
		t.Errorf("partitions gauge = %v, want 1", got)
	}
}

// TestFaultPartitionedPanicRecovery runs the headline fault scenario
// against a P=4 device: a poison event panics the router mid-stream,
// the whole run (router + 4 partition workers) is torn down, the
// supervisor restores the merged checkpoint, re-splits it across fresh
// partitions, and the device serves queries again. The reorder-late
// counter must survive the restart on the metrics surface.
func TestFaultPartitionedPanicRecovery(t *testing.T) {
	store, err := checkpoint.Open(checkpoint.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	const poison = 999
	e := mustEngine(t,
		WithDevices("dev0"),
		WithPartitions(4),
		WithReorderBuffer(2),
		WithCheckpoints(store, 2*time.Millisecond),
		WithSupervisor(fastSupervisor(5, 8)),
		WithProcessHook(func(device string, ev blktrace.Event) {
			if ev.Extent.Block == poison {
				panic("injected fault")
			}
		}),
	)
	defer e.Stop()

	feedN(t, e, "dev0", 60, 10)
	// An inversion wider than the 2-slot reorder buffer, so the late
	// counter is provably exported before the fault.
	if err := e.Submit("dev0", readEvent(7, 0)); err != nil {
		t.Fatal(err)
	}
	ds := waitDrained(t, e, "dev0", 61)
	atDrain := ds.Health.CheckpointSeq
	waitHealth(t, e, "dev0", func(h DeviceHealthStatus) bool {
		return h.CheckpointSeq > atDrain
	}, "post-drain checkpoint")

	if err := e.Submit("dev0", readEvent(poison, 100)); err != nil {
		t.Fatalf("poison submit: %v", err)
	}
	waitHealth(t, e, "dev0", func(h DeviceHealthStatus) bool {
		return h.Panics >= 1 && h.Restarts >= 1 && h.State != Failed
	}, "restart after panic")

	after, err := e.DeviceStatsFor("dev0")
	if err != nil {
		t.Fatalf("stats after recovery: %v", err)
	}
	if after.Analyzer.Transactions < ds.Analyzer.Transactions {
		t.Errorf("restored partitioned analyzer has %d transactions, want >= %d",
			after.Analyzer.Transactions, ds.Analyzer.Transactions)
	}
	if after.Partitions != 4 {
		t.Errorf("Partitions = %d after restart, want 4", after.Partitions)
	}
	if _, err := e.Snapshot("dev0", 1); err != nil {
		t.Errorf("snapshot after recovery: %v", err)
	}
	if v := metricValue(t, e, MetricReorderLate, "dev0"); v < 1 {
		t.Errorf("%s = %v, want >= 1 (counter lost across restart)", MetricReorderLate, v)
	}
	feedN(t, e, "dev0", 20, 200)
	waitHealth(t, e, "dev0", func(h DeviceHealthStatus) bool {
		return h.State == Healthy && h.ConsecutiveRestarts == 0
	}, "healthy after probation")
}

// TestFaultPartitionedBudgetExhaustion: a P=2 device that panics on
// every event must land in Failed with its workers gone, fast-fail
// ingest and queries, and still stop cleanly — the fail/ask race
// protection under the lock-free queues.
func TestFaultPartitionedBudgetExhaustion(t *testing.T) {
	e := mustEngine(t,
		WithDevices("dev0"),
		WithPartitions(2),
		WithSupervisor(fastSupervisor(2, 1<<20)),
		WithProcessHook(func(device string, ev blktrace.Event) {
			panic("always fails")
		}),
	)
	defer e.Stop()
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; ; i++ {
		err := e.Submit("dev0", readEvent(uint64(1+i%8), i))
		if errors.Is(err, ErrDeviceUnavailable) {
			break
		}
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("device never failed; health: %+v", e.Health())
		}
		time.Sleep(time.Millisecond)
	}
	waitHealth(t, e, "dev0", func(h DeviceHealthStatus) bool {
		return h.State == Failed
	}, "failed after budget exhaustion")
	if _, err := e.Snapshot("dev0", 1); !errors.Is(err, ErrDeviceUnavailable) {
		t.Errorf("snapshot of failed device = %v, want ErrDeviceUnavailable", err)
	}
	cur, err := e.Epoch("dev0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := e.WaitEpoch(ctx, "dev0", cur); !errors.Is(err, ErrDeviceUnavailable) {
		t.Errorf("WaitEpoch on failed device = %v, want ErrDeviceUnavailable", err)
	}
}

// TestPartitionedStress is the -race contract for the partitioned
// path: concurrent multi-producer submit, periodic checkpoints,
// concurrent snapshot/stats/rules readers, and a final unregister —
// all against one P=4 device.
func TestPartitionedStress(t *testing.T) {
	store, err := checkpoint.Open(checkpoint.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	e := mustEngine(t,
		WithDevices("hot", "cold"),
		WithBackpressure(Block),
		WithPartitions(4),
		WithQueueSize(512),
		WithCheckpoints(store, 2*time.Millisecond),
	)
	const producers = 4
	const perProducer = 4000
	dev, err := e.Device("hot")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			batch := make([]blktrace.Event, 0, 64)
			for i := 0; i < perProducer; i++ {
				batch = append(batch, readEvent(uint64(1+(p*perProducer+i)%512), p*perProducer+i))
				if len(batch) == cap(batch) {
					if err := dev.SubmitBatch(batch); err != nil {
						t.Errorf("producer %d: %v", p, err)
						return
					}
					batch = batch[:0]
				}
				if i%128 == 0 {
					dev.ObserveLatency(int64(50 * time.Microsecond))
				}
			}
			if err := dev.SubmitBatch(batch); err != nil {
				t.Errorf("producer %d tail: %v", p, err)
			}
		}(p)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 60; i++ {
			if _, err := e.Snapshot("hot", 1); err != nil {
				t.Errorf("snapshot: %v", err)
				return
			}
			if _, err := e.Stats(); err != nil {
				t.Errorf("stats: %v", err)
				return
			}
			if _, err := e.Rules("hot", 2, 0.1); err != nil {
				t.Errorf("rules: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	waitDrained(t, e, "hot", producers*perProducer)
	ds, err := e.DeviceStatsFor("hot")
	if err != nil {
		t.Fatal(err)
	}
	if ds.Monitor.Events != producers*perProducer {
		t.Errorf("hot device analyzed %d of %d events under Block (no losses allowed)",
			ds.Monitor.Events, producers*perProducer)
	}
	if err := e.Unregister("cold"); err != nil {
		t.Fatal(err)
	}
	if err := e.Unregister("hot"); err != nil {
		t.Fatal(err)
	}
	e.Stop()
}
