package engine

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"daccor/internal/blktrace"
	"daccor/internal/checkpoint"
)

// The fault-injection harness: WithProcessHook plants deterministic
// panics on the worker's event path (exactly where a real synopsis bug
// would fire), and checkpoint.Config.FaultHook plants write failures
// between temp-file sync and rename (exactly where a full disk or
// crash would bite). Everything else is the production code path.

// fastSupervisor keeps restart churn fast enough for tests while
// preserving the real backoff/budget/probation machinery.
func fastSupervisor(maxRestarts int, probation uint64) SupervisorConfig {
	return SupervisorConfig{
		BackoffBase: time.Millisecond,
		BackoffCap:  5 * time.Millisecond,
		MaxRestarts: maxRestarts,
		Probation:   probation,
	}
}

func readEvent(block uint64, i int) blktrace.Event {
	return blktrace.Event{
		Time:   int64(i+1) * int64(time.Millisecond),
		Op:     blktrace.OpRead,
		Extent: blktrace.Extent{Block: block, Len: 1},
	}
}

// feedN submits n benign events (blocks 1..16) to the device.
func feedN(t *testing.T, e *Engine, id string, n, timeBase int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := e.Submit(id, readEvent(uint64(1+i%16), timeBase+i)); err != nil {
			t.Fatalf("submit %s event %d: %v", id, i, err)
		}
	}
}

// waitHealth polls Engine.Health until the device satisfies pred.
func waitHealth(t *testing.T, e *Engine, id string, pred func(DeviceHealthStatus) bool, what string) DeviceHealthStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		for _, h := range e.Health() {
			if h.Device == id && pred(h) {
				return h
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("device %s never reached %q; health now: %+v", id, what, e.Health())
		}
		time.Sleep(time.Millisecond)
	}
}

// metricValue scrapes the registry and returns the sample for
// name{device="dev"}, or 0 if absent.
func metricValue(t *testing.T, e *Engine, name, dev string) float64 {
	t.Helper()
	var b bytes.Buffer
	if err := e.Metrics().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	prefix := fmt.Sprintf("%s{device=%q} ", name, dev)
	sc := bufio.NewScanner(&b)
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), prefix); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("metric %s: bad sample %q: %v", name, rest, err)
			}
			return v
		}
	}
	return 0
}

// TestFaultPanicRecoveryFromCheckpoint is the headline fault-injection
// scenario: a device worker panics mid-stream, the supervisor restores
// the freshest checkpoint and restarts it, the device serves queries
// again, loses at most the events since that checkpoint, and the
// sibling device never notices.
func TestFaultPanicRecoveryFromCheckpoint(t *testing.T) {
	store, err := checkpoint.Open(checkpoint.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	const poison = 999
	e := mustEngine(t,
		WithDevices("dev0", "dev1"),
		WithCheckpoints(store, 2*time.Millisecond),
		WithSupervisor(fastSupervisor(5, 8)),
		WithProcessHook(func(device string, ev blktrace.Event) {
			if device == "dev0" && ev.Extent.Block == poison {
				panic("injected fault")
			}
		}),
	)
	defer e.Stop()

	feedN(t, e, "dev0", 60, 0)
	feedN(t, e, "dev1", 60, 0)
	waitDrained(t, e, "dev0", 60)
	st1 := waitDrained(t, e, "dev1", 60)

	ds0, err := e.DeviceStatsFor("dev0")
	if err != nil {
		t.Fatal(err)
	}
	// Wait for a checkpoint generation written after the drain, so it
	// provably contains every event fed so far.
	atDrain := ds0.Health.CheckpointSeq
	waitHealth(t, e, "dev0", func(h DeviceHealthStatus) bool {
		return h.CheckpointSeq > atDrain
	}, "post-drain checkpoint")

	// Poison the worker and wait for the supervisor to bring it back.
	if err := e.Submit("dev0", readEvent(poison, 60)); err != nil {
		t.Fatalf("poison submit: %v", err)
	}
	h := waitHealth(t, e, "dev0", func(h DeviceHealthStatus) bool {
		return h.Panics >= 1 && h.Restarts >= 1 && h.State != Failed
	}, "restart after panic")
	if h.LastRestart.IsZero() {
		t.Error("LastRestart still zero after a restart")
	}

	// The restored analyzer must carry the checkpointed state: at least
	// as many transactions as the pre-panic drain had accumulated (the
	// only admissible loss is the poison batch itself — well under one
	// checkpoint interval).
	after, err := e.DeviceStatsFor("dev0")
	if err != nil {
		t.Fatalf("stats after recovery: %v", err)
	}
	if after.Analyzer.Transactions < ds0.Analyzer.Transactions {
		t.Errorf("restored analyzer has %d transactions, want >= %d (checkpoint lost more than one interval)",
			after.Analyzer.Transactions, ds0.Analyzer.Transactions)
	}

	// The device serves queries again.
	if _, err := e.Snapshot("dev0", 1); err != nil {
		t.Errorf("snapshot after recovery: %v", err)
	}

	// The sibling device never wobbled.
	h1 := waitHealth(t, e, "dev1", func(DeviceHealthStatus) bool { return true }, "")
	if h1.State != Healthy || h1.Panics != 0 || h1.Restarts != 0 {
		t.Errorf("dev1 disturbed by dev0's fault: %+v", h1)
	}
	if got, _ := e.DeviceStatsFor("dev1"); got.Monitor.Events != st1.Monitor.Events {
		t.Errorf("dev1 lost events during dev0's fault: %d -> %d", st1.Monitor.Events, got.Monitor.Events)
	}

	// Probation: enough clean events return the device to Healthy and
	// reset its restart budget.
	feedN(t, e, "dev0", 20, 100)
	h = waitHealth(t, e, "dev0", func(h DeviceHealthStatus) bool {
		return h.State == Healthy && h.ConsecutiveRestarts == 0
	}, "healthy after probation")

	// The fault trail is on the metrics surface.
	if v := metricValue(t, e, MetricPanics, "dev0"); v < 1 {
		t.Errorf("%s = %v, want >= 1", MetricPanics, v)
	}
	if v := metricValue(t, e, MetricRestarts, "dev0"); v < 1 {
		t.Errorf("%s = %v, want >= 1", MetricRestarts, v)
	}
	if v := metricValue(t, e, MetricHealthState, "dev0"); v != 0 {
		t.Errorf("%s = %v, want 0 (healthy)", MetricHealthState, v)
	}
}

// TestFaultRestartBudgetExhaustion drives a device that panics on every
// event until its restart budget burns out: it must land in Failed,
// fast-fail ingest and queries with ErrDeviceUnavailable (never hang),
// leave its sibling untouched, and still let Stop complete cleanly.
func TestFaultRestartBudgetExhaustion(t *testing.T) {
	e := mustEngine(t,
		WithDevices("dev0", "dev1"),
		WithSupervisor(fastSupervisor(2, 1<<20)),
		WithProcessHook(func(device string, ev blktrace.Event) {
			if device == "dev0" {
				panic("always fails")
			}
		}),
	)

	deadline := time.Now().Add(10 * time.Second)
	for i := 0; ; i++ {
		err := e.Submit("dev0", readEvent(uint64(1+i%8), i))
		if errors.Is(err, ErrDeviceUnavailable) {
			break
		}
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("device never failed; health: %+v", e.Health())
		}
		time.Sleep(time.Millisecond)
	}
	h := waitHealth(t, e, "dev0", func(h DeviceHealthStatus) bool {
		return h.State == Failed
	}, "failed")
	if h.Restarts == 0 || h.Panics == 0 {
		t.Errorf("failed device reports no restarts/panics: %+v", h)
	}

	// Queries fast-fail rather than hanging on the dead worker.
	qdone := make(chan error, 1)
	go func() {
		_, err := e.Snapshot("dev0", 1)
		qdone <- err
	}()
	select {
	case err := <-qdone:
		if !errors.Is(err, ErrDeviceUnavailable) {
			t.Errorf("snapshot on failed device = %v, want ErrDeviceUnavailable", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("snapshot on failed device hung")
	}

	// Engine-wide stats still work; the failed entry keeps health and
	// producer-side counters.
	st, err := e.Stats()
	if err != nil {
		t.Fatalf("stats with failed device: %v", err)
	}
	for _, ds := range st.Devices {
		if ds.Device == "dev0" && ds.Health.State != Failed {
			t.Errorf("stats health for dev0 = %v, want Failed", ds.Health.State)
		}
	}
	if v := metricValue(t, e, MetricHealthState, "dev0"); v != 2 {
		t.Errorf("%s = %v, want 2 (failed)", MetricHealthState, v)
	}

	// The sibling keeps serving.
	feedN(t, e, "dev1", 10, 0)
	waitDrained(t, e, "dev1", 10)
	if _, err := e.Snapshot("dev1", 1); err != nil {
		t.Errorf("sibling snapshot: %v", err)
	}

	// Stop must complete even with a failed (parked) device.
	done := make(chan struct{})
	go func() { e.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Stop hung with a failed device")
	}
	if err := e.Submit("dev0", readEvent(1, 0)); !errors.Is(err, ErrStopped) {
		t.Errorf("post-stop submit to failed device = %v, want ErrStopped", err)
	}
}

// TestFaultCheckpointWriteFailure injects a persistent checkpoint-write
// fault: saves fail (and are counted), but the device itself stays
// healthy — losing durability must not take down live serving — and
// shutdown proceeds despite the failing final flush.
func TestFaultCheckpointWriteFailure(t *testing.T) {
	boom := errors.New("injected disk fault")
	store, err := checkpoint.Open(checkpoint.Config{
		Dir: t.TempDir(),
		FaultHook: func(device string, seq uint64) error {
			return boom
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	e := mustEngine(t,
		WithDevices("dev0"),
		WithCheckpoints(store, time.Millisecond),
	)
	feedN(t, e, "dev0", 20, 0)
	waitDrained(t, e, "dev0", 20)

	deadline := time.Now().Add(10 * time.Second)
	for metricValue(t, e, MetricCheckpointErrors, "dev0") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("checkpoint errors never counted")
		}
		time.Sleep(time.Millisecond)
	}
	h := waitHealth(t, e, "dev0", func(DeviceHealthStatus) bool { return true }, "")
	if h.State != Healthy {
		t.Errorf("checkpoint write failures degraded the device: %v", h.State)
	}
	if h.CheckpointSeq != 0 {
		t.Errorf("CheckpointSeq = %d despite every save failing", h.CheckpointSeq)
	}

	done := make(chan struct{})
	go func() { e.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Stop hung on failing final checkpoint")
	}
	if _, _, err := store.Restore("dev0"); !errors.Is(err, checkpoint.ErrNoCheckpoint) {
		t.Errorf("restore = %v, want ErrNoCheckpoint (no save ever committed)", err)
	}
}

// TestFaultQueryDuringPanicIsAnswered pins the no-hung-askers
// guarantee: a query enqueued while the worker is dying is either
// requeued and answered by the restarted worker or failed with a typed
// error — never abandoned.
func TestFaultQueryDuringPanicIsAnswered(t *testing.T) {
	const poison = 999
	entered := make(chan struct{})
	release := make(chan struct{})
	e := mustEngine(t,
		WithDevices("dev0"),
		WithSupervisor(fastSupervisor(5, 4)),
		WithProcessHook(func(device string, ev blktrace.Event) {
			switch ev.Extent.Block {
			case 1:
				close(entered)
				<-release
			case poison:
				panic("injected fault")
			}
		}),
	)
	defer e.Stop()

	// Park the worker mid-batch, then line up a query and the poison
	// event behind it: the next worker round claims the query and dies
	// on the poison before answering, exercising the requeue path.
	if err := e.Submit("dev0", readEvent(1, 0)); err != nil {
		t.Fatal(err)
	}
	<-entered
	qdone := make(chan error, 1)
	go func() {
		_, err := e.Snapshot("dev0", 1)
		qdone <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the query reach the queue
	if err := e.Submit("dev0", readEvent(poison, 1)); err != nil {
		t.Fatal(err)
	}
	close(release)

	select {
	case err := <-qdone:
		if err != nil && !errors.Is(err, ErrDeviceUnavailable) {
			t.Errorf("query across panic = %v, want nil or ErrDeviceUnavailable", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("query enqueued across a worker panic was never answered")
	}
	waitHealth(t, e, "dev0", func(h DeviceHealthStatus) bool {
		return h.Restarts >= 1 && h.State != Failed
	}, "recovered")
}

func TestSupervisorConfigValidateAndBackoff(t *testing.T) {
	if err := (SupervisorConfig{BackoffBase: -1}).Validate(); err == nil {
		t.Error("negative BackoffBase validated")
	}
	if err := (SupervisorConfig{MaxRestarts: -1}).Validate(); err == nil {
		t.Error("negative MaxRestarts validated")
	}
	c := SupervisorConfig{}.withDefaults()
	if c.BackoffBase != DefaultBackoffBase || c.BackoffCap != DefaultBackoffCap ||
		c.MaxRestarts != DefaultMaxRestarts || c.Probation != DefaultProbation {
		t.Errorf("withDefaults = %+v", c)
	}
	for attempt := 1; attempt <= 20; attempt++ {
		d := c.BackoffDelay(attempt)
		if d < 0 || d > c.BackoffCap+c.BackoffCap/2 {
			t.Errorf("BackoffDelay(%d) = %v, outside [0, 1.5*cap]", attempt, d)
		}
	}
	if got := c.BackoffDelay(1); got > DefaultBackoffBase+DefaultBackoffBase/2 {
		t.Errorf("first backoff %v exceeds 1.5*base", got)
	}
}

func TestHealthStateString(t *testing.T) {
	cases := map[HealthState]string{
		Healthy: "healthy", Degraded: "degraded", Failed: "failed", HealthState(9): "HealthState(9)",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
}
