package engine

import (
	"sync"
	"sync/atomic"
	"time"

	"daccor/internal/blktrace"
)

// Lock-free ingest plumbing for the per-device shard: a bounded
// multi-producer single-consumer event ring (Vyukov slot-sequence
// scheme), an eventcount the router sleeps on, and a broadcast gate
// Block-policy producers park on. Together they replace the
// mutex+condvar queue: the submit hot path is one CAS plus one
// relaxed load, and scrape-time counters never touch a lock.

// ringSlot is one cell of the event ring. seq is the Vyukov slot
// sequence: seq == pos means the slot is free for the producer that
// claims ticket pos; seq == pos+1 means it holds that ticket's event;
// seq == pos+capacity means it has been consumed and is free for the
// producer that claims ticket pos+capacity. ts carries the sampled
// submit timestamp (0 = unsampled) for the submit→analyze latency
// histogram.
type ringSlot struct {
	seq atomic.Uint64
	ev  blktrace.Event
	ts  int64
	_   [8]byte // round the slot up to 64 bytes
}

// evRing is a bounded MPSC ring. Producers race on enq (tryPush) and,
// under the DropOldest policy, on deq (dropOldest); the single router
// goroutine consumes via pop. Capacity is rounded up to a power of
// two so position→index is a mask.
type evRing struct {
	slots []ringSlot
	mask  uint64
	_     [40]byte // keep enq and deq on separate cache lines
	enq   atomic.Uint64
	_     [56]byte
	deq   atomic.Uint64
	_     [56]byte
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func newEvRing(capacity int) *evRing {
	// Minimum 2: the slot-sequence scheme needs "filled for ticket n"
	// and "free for ticket n+capacity" to be distinct states, which a
	// one-slot ring cannot provide (a producer could clobber the one
	// unconsumed event and strand the consumer).
	capacity = ceilPow2(max(capacity, 2))
	r := &evRing{
		slots: make([]ringSlot, capacity),
		mask:  uint64(capacity - 1),
	}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

func (r *evRing) capacity() int { return len(r.slots) }

// size is an instantaneous estimate of queued events (claimed tickets
// included). It is exact when quiescent and never negative; it is the
// lock-free lag counter.
func (r *evRing) size() int {
	d := int64(r.enq.Load() - r.deq.Load())
	switch {
	case d < 0:
		return 0
	case d > int64(len(r.slots)):
		return len(r.slots)
	}
	return int(d)
}

func (r *evRing) empty() bool { return r.size() == 0 }

// tryPush claims the next ticket and publishes ev. It returns false
// if the ring is full (the slot the next ticket maps to has not been
// consumed yet). Every latencySampleMask+1'th ticket is stamped with
// the submit time for the sampled submit→analyze latency path.
func (r *evRing) tryPush(ev blktrace.Event) bool {
	pos := r.enq.Load()
	for {
		slot := &r.slots[pos&r.mask]
		seq := slot.seq.Load()
		switch d := int64(seq - pos); {
		case d == 0:
			if r.enq.CompareAndSwap(pos, pos+1) {
				slot.ev = ev
				if pos&latencySampleMask == 0 {
					slot.ts = time.Now().UnixNano()
				} else {
					slot.ts = 0
				}
				slot.seq.Store(pos + 1)
				return true
			}
			pos = r.enq.Load()
		case d < 0:
			return false // slot still holds an unconsumed ticket: full
		default:
			pos = r.enq.Load() // lost the race; reload
		}
	}
}

// pop consumes the oldest event. It returns false when the ring is
// empty — including the transient case where the oldest slot has been
// claimed by a producer that has not finished publishing; the
// producer's post-publish wake covers that window.
func (r *evRing) pop(ev *blktrace.Event, ts *int64) bool {
	pos := r.deq.Load()
	for {
		slot := &r.slots[pos&r.mask]
		seq := slot.seq.Load()
		switch d := int64(seq - (pos + 1)); {
		case d == 0:
			if r.deq.CompareAndSwap(pos, pos+1) {
				*ev = slot.ev
				*ts = slot.ts
				slot.seq.Store(pos + uint64(len(r.slots)))
				return true
			}
			pos = r.deq.Load()
		case d < 0:
			return false // empty (or oldest slot mid-publish)
		default:
			pos = r.deq.Load() // a dropOldest got there first; reload
		}
	}
}

// dropOldest discards the oldest event to make room (DropOldest
// policy). Producers call it racing the consumer and each other; it
// returns false when there is nothing consumable to drop.
func (r *evRing) dropOldest() bool {
	pos := r.deq.Load()
	for {
		slot := &r.slots[pos&r.mask]
		seq := slot.seq.Load()
		switch d := int64(seq - (pos + 1)); {
		case d == 0:
			if r.deq.CompareAndSwap(pos, pos+1) {
				slot.seq.Store(pos + uint64(len(r.slots)))
				return true
			}
			pos = r.deq.Load()
		case d < 0:
			return false
		default:
			pos = r.deq.Load()
		}
	}
}

// wakeFlag is an eventcount: the consumer announces intent to sleep
// (prepare), rechecks its work sources, and only then blocks (sleep);
// producers wake it with one atomic load on the fast path. The
// sequentially-consistent Store/Load pair makes the classic lost
// wakeup impossible: either the producer sees sleeping=true and sends
// the token, or the consumer's recheck sees the producer's write.
type wakeFlag struct {
	sleeping atomic.Bool
	ch       chan struct{}
}

func (f *wakeFlag) init() { f.ch = make(chan struct{}, 1) }

// wake unblocks the consumer if it is (about to be) asleep.
func (f *wakeFlag) wake() {
	if f.sleeping.Load() && f.sleeping.CompareAndSwap(true, false) {
		select {
		case f.ch <- struct{}{}:
		default:
		}
	}
}

// prepare announces intent to sleep. The caller must recheck its work
// sources after prepare and call cancel instead of sleep if any has
// work.
func (f *wakeFlag) prepare() { f.sleeping.Store(true) }

func (f *wakeFlag) cancel() { f.sleeping.Store(false) }

// sleep blocks until a wake token or either abort channel fires.
func (f *wakeFlag) sleep(abort1, abort2 <-chan struct{}) {
	select {
	case <-f.ch:
	case <-abort1:
	case <-abort2:
	}
	f.sleeping.Store(false)
}

// gate is a broadcast edge: waiters arm, recheck their condition, and
// block on the armed channel; open closes the current channel and
// replaces it. The waiters fast-path count lets the opener skip the
// mutex entirely when nobody is parked — the common case on the
// consumer's per-batch open.
type gate struct {
	waiters atomic.Int32
	mu      sync.Mutex
	ch      chan struct{}
}

func (g *gate) init() { g.ch = make(chan struct{}) }

// arm registers the caller as a waiter and returns the channel the
// next open will close. The caller MUST recheck its condition after
// arm (the edge may have fired in between) and MUST call disarm when
// done waiting, whether or not the channel fired.
func (g *gate) arm() <-chan struct{} {
	g.waiters.Add(1)
	g.mu.Lock()
	ch := g.ch
	g.mu.Unlock()
	return ch
}

func (g *gate) disarm() { g.waiters.Add(-1) }

// open releases every armed waiter. Because a waiter increments
// waiters before arming and rechecks its condition after, an open
// that observes waiters == 0 can safely skip: any waiter arriving
// later rechecks after the state change that motivated this open.
func (g *gate) open() {
	if g.waiters.Load() == 0 {
		return
	}
	g.mu.Lock()
	close(g.ch)
	g.ch = make(chan struct{})
	g.mu.Unlock()
}
