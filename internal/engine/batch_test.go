package engine

import (
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"daccor/internal/blktrace"
	"daccor/internal/obs"
)

func batchOf(n int, base uint64) []blktrace.Event {
	evs := make([]blktrace.Event, n)
	for i := range evs {
		evs[i] = blktrace.Event{Time: int64(i) * 1000, Op: blktrace.OpRead,
			Extent: blktrace.Extent{Block: base + uint64(i), Len: 1}}
	}
	return evs
}

func TestSubmitBatchValidates(t *testing.T) {
	e := mustEngine(t, WithDevices("vol0"))
	defer e.Stop()
	evs := batchOf(4, 100)
	evs[2].Extent.Len = 0 // invalid
	err := e.SubmitBatch("vol0", evs)
	if err == nil {
		t.Fatal("want validation error")
	}
	if !strings.Contains(err.Error(), "event 2") {
		t.Errorf("error %q does not identify the offending index", err)
	}
	// A rejected batch must not be partially ingested.
	ds, err := e.DeviceStatsFor("vol0")
	if err != nil {
		t.Fatal(err)
	}
	if ds.Monitor.Events != 0 || ds.Lag != 0 {
		t.Errorf("rejected batch leaked events: processed %d, lag %d", ds.Monitor.Events, ds.Lag)
	}
	dev, err := e.Device("vol0")
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.SubmitBatch(evs); err == nil || !strings.Contains(err.Error(), "event 2") {
		t.Errorf("Device.SubmitBatch = %v, want indexed validation error", err)
	}
}

func TestSubmitBatchUnknownDeviceAndStopped(t *testing.T) {
	e := mustEngine(t, WithDevices("vol0"))
	evs := batchOf(2, 0)
	if err := e.SubmitBatch("nope", evs); !errors.Is(err, ErrUnknownDevice) {
		t.Errorf("SubmitBatch = %v, want ErrUnknownDevice", err)
	}
	if err := e.SubmitBatch("vol0", nil); err != nil {
		t.Errorf("empty batch = %v, want nil", err)
	}
	dev, err := e.Device("vol0")
	if err != nil {
		t.Fatal(err)
	}
	e.Stop()
	if err := e.SubmitBatch("vol0", evs); !errors.Is(err, ErrStopped) {
		t.Errorf("SubmitBatch after stop = %v, want ErrStopped", err)
	}
	if err := dev.SubmitBatch(evs); !errors.Is(err, ErrStopped) {
		t.Errorf("Device.SubmitBatch after stop = %v, want ErrStopped", err)
	}
}

// TestSubmitBatchEquivalentToSubmit checks the batch path produces the
// same synopsis as the per-event path: identical snapshot and stats.
func TestSubmitBatchEquivalentToSubmit(t *testing.T) {
	evs := make([]blktrace.Event, 0, 400)
	for i := 0; i < 100; i++ {
		base := int64(i) * int64(time.Second)
		for j := 0; j < 4; j++ {
			evs = append(evs, blktrace.Event{Time: base + int64(j)*1000, Op: blktrace.OpRead,
				Extent: blktrace.Extent{Block: uint64(10 + j*10), Len: 1}})
		}
	}

	one := mustEngine(t, WithDevices("d"), WithBackpressure(Block))
	for _, ev := range evs {
		if err := one.Submit("d", ev); err != nil {
			t.Fatal(err)
		}
	}
	one.Stop()
	wantSnap, err := one.Snapshot("d", 0)
	if err != nil && !errors.Is(err, ErrStopped) {
		t.Fatal(err)
	}

	// Queue smaller than the batch: exercises the wake-the-worker path.
	batched := mustEngine(t, WithDevices("d"), WithBackpressure(Block), WithQueueSize(64))
	if err := batched.SubmitBatch("d", evs); err != nil {
		t.Fatal(err)
	}
	batched.Stop()
	gotSnap, err := batched.Snapshot("d", 0)
	if err != nil && !errors.Is(err, ErrStopped) {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotSnap, wantSnap) {
		t.Errorf("batched snapshot differs from per-event snapshot:\n got %+v\nwant %+v", gotSnap, wantSnap)
	}
}

func TestSubmitBatchDropOldestAccounting(t *testing.T) {
	e := mustEngine(t, WithDevices("vol0"), WithQueueSize(4), WithBackpressure(DropOldest))
	const n = 5000
	const chunk = 128
	submitted := uint64(0)
	for off := 0; off < n; off += chunk {
		sz := min(chunk, n-off)
		if err := e.SubmitBatch("vol0", batchOf(sz, uint64(off))); err != nil {
			t.Fatal(err)
		}
		submitted += uint64(sz)
	}
	ds := waitDrained(t, e, "vol0", submitted)
	if ds.Monitor.Events+ds.Dropped != submitted {
		t.Errorf("events %d + dropped %d != submitted %d", ds.Monitor.Events, ds.Dropped, submitted)
	}
	e.Stop()
}

func TestSubmitBatchBlockLosesNothing(t *testing.T) {
	e := mustEngine(t, WithDevices("vol0"), WithQueueSize(8), WithBackpressure(Block))
	const n = 4096
	const chunk = 256 // much larger than the queue
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for off := 0; off < n/4; off += chunk {
				evs := batchOf(chunk, uint64(g*1_000_000+off))
				if err := e.SubmitBatch("vol0", evs); err != nil {
					t.Errorf("SubmitBatch: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	ds := waitDrained(t, e, "vol0", n)
	if ds.Monitor.Events != n {
		t.Errorf("events = %d, want %d", ds.Monitor.Events, n)
	}
	if ds.Dropped != 0 {
		t.Errorf("dropped = %d, want 0 under Block policy", ds.Dropped)
	}
	e.Stop()
}

// TestSubmitBatchMetrics checks the batch counter and size histogram
// families record each accepted batch.
func TestSubmitBatchMetrics(t *testing.T) {
	e := mustEngine(t, WithDevices("vol0"), WithBackpressure(Block))
	defer e.Stop()
	if err := e.SubmitBatch("vol0", batchOf(3, 0)); err != nil {
		t.Fatal(err)
	}
	if err := e.SubmitBatch("vol0", batchOf(5, 100)); err != nil {
		t.Fatal(err)
	}
	// Counter/Histogram are get-or-create keyed by name+labels, so
	// re-fetching returns the live series the shard updates.
	lbl := obs.L("device", "vol0")
	if got := e.Metrics().Counter(MetricBatches, "", lbl).Value(); got != 2 {
		t.Errorf("%s = %d, want 2", MetricBatches, got)
	}
	h := e.Metrics().Histogram(MetricBatchSize, "", obs.ExpBuckets(1, 2, 13), lbl)
	if h.Count() != 2 || h.Sum() != 8 {
		t.Errorf("%s count=%d sum=%v, want count=2 sum=8", MetricBatchSize, h.Count(), h.Sum())
	}
}
