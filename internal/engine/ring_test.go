package engine

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"daccor/internal/blktrace"
)

func mkEv(t int64, block uint64) blktrace.Event {
	return blktrace.Event{Time: t, Op: blktrace.OpRead, Extent: blktrace.Extent{Block: block, Len: 8}}
}

func TestEvRingFIFO(t *testing.T) {
	r := newEvRing(8)
	if r.capacity() != 8 {
		t.Fatalf("capacity = %d, want 8", r.capacity())
	}
	for i := 0; i < 8; i++ {
		if !r.tryPush(mkEv(int64(i), uint64(i))) {
			t.Fatalf("push %d failed on non-full ring", i)
		}
	}
	if r.tryPush(mkEv(99, 99)) {
		t.Fatal("push succeeded on full ring")
	}
	if r.size() != 8 {
		t.Fatalf("size = %d, want 8", r.size())
	}
	var ev blktrace.Event
	var ts int64
	for i := 0; i < 8; i++ {
		if !r.pop(&ev, &ts) {
			t.Fatalf("pop %d failed", i)
		}
		if ev.Time != int64(i) || ev.Extent.Block != uint64(i) {
			t.Fatalf("pop %d = %+v, want time/block %d", i, ev, i)
		}
	}
	if r.pop(&ev, &ts) {
		t.Fatal("pop succeeded on empty ring")
	}
	// wraparound: interleave pushes and pops past capacity
	for i := 0; i < 100; i++ {
		if !r.tryPush(mkEv(int64(i), uint64(i))) {
			t.Fatalf("wrap push %d failed", i)
		}
		if !r.pop(&ev, &ts) || ev.Time != int64(i) {
			t.Fatalf("wrap pop %d = %+v", i, ev)
		}
	}
}

func TestEvRingCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{1, 2}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {100, 128}} {
		if got := newEvRing(tc.in).capacity(); got != tc.want {
			t.Errorf("newEvRing(%d).capacity() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestEvRingDropOldest(t *testing.T) {
	r := newEvRing(4)
	for i := 0; i < 4; i++ {
		r.tryPush(mkEv(int64(i), uint64(i)))
	}
	if !r.dropOldest() {
		t.Fatal("dropOldest failed on full ring")
	}
	if !r.tryPush(mkEv(4, 4)) {
		t.Fatal("push failed after dropOldest")
	}
	var ev blktrace.Event
	var ts int64
	want := []int64{1, 2, 3, 4}
	for _, w := range want {
		if !r.pop(&ev, &ts) || ev.Time != w {
			t.Fatalf("pop = %+v, want time %d", ev, w)
		}
	}
	if r.dropOldest() {
		t.Fatal("dropOldest succeeded on empty ring")
	}
}

func TestEvRingLatencySampling(t *testing.T) {
	r := newEvRing(256)
	var ev blktrace.Event
	var ts int64
	for i := 0; i < 200; i++ {
		r.tryPush(mkEv(int64(i), uint64(i)))
	}
	sampled := 0
	for r.pop(&ev, &ts) {
		if ts != 0 {
			sampled++
		}
	}
	// tickets 0, 64, 128, 192 are sampled
	if sampled != 4 {
		t.Fatalf("sampled %d of 200, want 4", sampled)
	}
}

// TestEvRingConcurrent hammers the ring with racing producers (and
// droppers) against a single consumer; with -race this is the memory
// ordering check for the slot-sequence protocol. Every pushed ticket
// must be accounted exactly once, by pop or by dropOldest.
func TestEvRingConcurrent(t *testing.T) {
	const producers = 4
	const perProducer = 5000
	r := newEvRing(64)
	var dropped atomic.Int64
	var producersDone atomic.Bool
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				ev := mkEv(int64(i), uint64(p)<<32|uint64(i))
				for !r.tryPush(ev) {
					if r.dropOldest() {
						dropped.Add(1)
					}
				}
			}
		}(p)
	}
	done := make(chan struct{})
	var consumed int
	go func() {
		defer close(done)
		var ev blktrace.Event
		var ts int64
		for {
			if r.pop(&ev, &ts) {
				consumed++
				continue
			}
			if producersDone.Load() && r.empty() {
				return
			}
			runtime.Gosched()
		}
	}()
	wg.Wait()
	producersDone.Store(true)
	<-done
	total := consumed + int(dropped.Load())
	if total != producers*perProducer {
		t.Fatalf("consumed %d + dropped %d = %d, want %d", consumed, dropped.Load(), total, producers*perProducer)
	}
}

func TestWakeFlagNoLostWakeup(t *testing.T) {
	var f wakeFlag
	f.init()
	stop := make(chan struct{})
	var work, seen atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			for work.Load() > seen.Load() {
				seen.Add(1)
			}
			select {
			case <-stop:
				return
			default:
			}
			f.prepare()
			if work.Load() > seen.Load() {
				f.cancel()
				continue
			}
			f.sleep(stop, nil)
		}
	}()
	for i := 0; i < 2000; i++ {
		work.Add(1)
		f.wake()
	}
	// consumer must observe all work without a deadlock
	for work.Load() > seen.Load() {
		f.wake()
		runtime.Gosched()
	}
	close(stop)
	<-done
	if got := seen.Load(); got != 2000 {
		t.Fatalf("consumer saw %d of 2000", got)
	}
}

func TestGateOpenReleasesWaiters(t *testing.T) {
	var g gate
	g.init()
	const n = 8
	var wg sync.WaitGroup
	ready := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ch := g.arm()
			ready <- struct{}{}
			<-ch
			g.disarm()
		}()
	}
	for i := 0; i < n; i++ {
		<-ready
	}
	g.open()
	wg.Wait()
	// open with no waiters is a no-op and must not panic
	g.open()
}

func TestReorderBufferRepairsInversions(t *testing.T) {
	b := newReorderBuffer(4)
	var out []int64
	emit := func(ev blktrace.Event, _ int64) { out = append(out, ev.Time) }
	// inversions within the window of 4 are repaired
	for _, tm := range []int64{5, 3, 4, 1, 2, 8, 7, 6} {
		b.push(mkEv(tm, uint64(tm)), 0, emit)
	}
	b.flush(emit)
	for i := 1; i < len(out); i++ {
		if out[i] < out[i-1] {
			t.Fatalf("out of order release: %v", out)
		}
	}
	if len(out) != 8 {
		t.Fatalf("released %d, want 8", len(out))
	}
	if b.late != 0 {
		t.Fatalf("late = %d, want 0 (all inversions within window)", b.late)
	}
}

func TestReorderBufferLateCounter(t *testing.T) {
	b := newReorderBuffer(2)
	emit := func(blktrace.Event, int64) {}
	// 10, 11, 12 fill and start releasing; then 1 arrives — an
	// inversion wider than the 2-slot window.
	for _, tm := range []int64{10, 11, 12, 13} {
		b.push(mkEv(tm, uint64(tm)), 0, emit)
	}
	b.push(mkEv(1, 1), 0, emit)
	b.flush(emit)
	if b.late == 0 {
		t.Fatal("expected a late release for an inversion wider than the window")
	}
}

func TestReorderBufferFIFOTieBreak(t *testing.T) {
	b := newReorderBuffer(8)
	var out []uint64
	emit := func(ev blktrace.Event, _ int64) { out = append(out, ev.Extent.Block) }
	for i := 0; i < 6; i++ {
		b.push(mkEv(7, uint64(i)), 0, emit) // identical timestamps
	}
	b.flush(emit)
	for i, blk := range out {
		if blk != uint64(i) {
			t.Fatalf("equal-time events reordered: %v", out)
		}
	}
}

func TestReorderBufferZeroCapPassesThrough(t *testing.T) {
	b := newReorderBuffer(0)
	var out []int64
	emit := func(ev blktrace.Event, _ int64) { out = append(out, ev.Time) }
	for _, tm := range []int64{3, 1, 2} {
		b.push(mkEv(tm, 0), 0, emit)
	}
	if len(out) != 3 {
		t.Fatalf("cap-0 buffer held events: released %d of 3", len(out))
	}
	if out[0] != 3 || out[1] != 1 || out[2] != 2 {
		t.Fatalf("cap-0 buffer reordered: %v", out)
	}
	if b.late != 2 {
		t.Fatalf("late = %d, want 2", b.late)
	}
}

func TestReorderBufferRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		capN := rng.Intn(16) + 1
		b := newReorderBuffer(capN)
		var out []int64
		emit := func(ev blktrace.Event, _ int64) { out = append(out, ev.Time) }
		n := rng.Intn(200) + 1
		base := int64(0)
		for i := 0; i < n; i++ {
			base += int64(rng.Intn(10))
			jitter := int64(rng.Intn(capN)) // inversions bounded by window
			tm := base - jitter
			if tm < 0 {
				tm = 0
			}
			b.push(mkEv(tm, uint64(i)), 0, emit)
		}
		b.flush(emit)
		if len(out) != n {
			t.Fatalf("trial %d: released %d of %d", trial, len(out), n)
		}
	}
}
