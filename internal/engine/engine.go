// Package engine runs the characterization framework for a fleet of
// block devices. Each registered device gets its own
// pipeline.Pipeline (monitor + synopsis) owned by a dedicated worker
// goroutine and fed through a bounded event queue with an explicit
// drop-oldest backpressure policy — a live characterizer must never
// stall the I/O path it observes, so when a device falls behind the
// oldest unprocessed events are discarded and counted rather than
// blocking the producer. Per-device drop and lag counters expose that
// behaviour to operators.
//
// On top of the per-device shards sits cross-device aggregation:
// MergedSnapshot and MergedRules union the per-device synopses
// (core.MergeSnapshots) so callers can ask both "what correlates on
// volume 3" and "what correlates fleet-wide". The single-device
// deployment (internal/realtime.Collector) is the N=1 case of this
// engine.
package engine

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"daccor/internal/blktrace"
	"daccor/internal/checkpoint"
	"daccor/internal/core"
	"daccor/internal/monitor"
	"daccor/internal/obs"
	"daccor/internal/pipeline"
)

// DefaultQueueSize is the per-device event queue capacity used when no
// WithQueueSize option is given. It is rounded up to a power of two by
// the lock-free ring.
const DefaultQueueSize = 4096

// DefaultReorderBuffer is the per-device timestamp-reordering buffer
// capacity used when no WithReorderBuffer option is given. With
// multiple producers racing on the ingest ring, events can interleave
// slightly out of timestamp order; the buffer repairs any inversion
// narrower than its capacity before the monitor sees it.
const DefaultReorderBuffer = 256

// MaxPartitions bounds WithPartitions; the transaction router tracks
// partition membership in a 64-bit mask.
const MaxPartitions = 64

// Backpressure selects what Submit does when a device's queue is full.
type Backpressure int

const (
	// DropOldest discards the oldest queued event (counted per device)
	// to admit the new one without ever stalling the producer — the
	// right policy for a monitor attached to a live I/O path, and the
	// engine's default.
	DropOldest Backpressure = iota
	// Block makes Submit wait until the worker frees queue space; no
	// events are lost, at the cost of backpressure propagating to the
	// producer. Used by offline/replayed ingestion.
	Block
)

// Errors returned by engine operations.
var (
	ErrStopped         = errors.New("engine: stopped")
	ErrUnknownDevice   = errors.New("engine: unknown device")
	ErrDuplicateDevice = errors.New("engine: device already registered")
)

// settings collects what the functional options configure.
type settings struct {
	tmpl         pipeline.Config
	queueSize    int
	policy       Backpressure
	parts        int
	reorder      int
	devices      []string
	metrics      *obs.Registry
	super        SupervisorConfig
	ckptStore    *checkpoint.Store
	ckptInterval time.Duration
	procHook     func(device string, ev blktrace.Event)
}

// Option configures an Engine under construction; see With*.
type Option func(*settings)

// WithPipeline sets the whole per-device pipeline template at once.
// Later WithMonitor/WithAnalyzer options override its fields.
func WithPipeline(cfg pipeline.Config) Option {
	return func(s *settings) { s.tmpl = cfg }
}

// WithMonitor sets the monitoring-module template (window policy,
// transaction cap, PID filter) every registered device's pipeline is
// built from. A nil Window selects the paper's dynamic window.
func WithMonitor(cfg monitor.Config) Option {
	return func(s *settings) { s.tmpl.Monitor = cfg }
}

// WithAnalyzer sets the synopsis configuration (table capacities,
// promotion threshold) every registered device's pipeline is built
// from.
func WithAnalyzer(cfg core.Config) Option {
	return func(s *settings) { s.tmpl.Analyzer = cfg }
}

// WithQueueSize sets the per-device event queue capacity (default
// DefaultQueueSize).
func WithQueueSize(n int) Option {
	return func(s *settings) { s.queueSize = n }
}

// WithBackpressure selects the full-queue policy (default DropOldest).
func WithBackpressure(p Backpressure) Option {
	return func(s *settings) { s.policy = p }
}

// WithPartitions splits every device's analyzer into n sub-shards for
// intra-device scale-up: events hash by extent to a partition
// (core.PartitionOf) and each partition's synopsis slice is owned by
// its own worker goroutine, so one hot device can use n cores. Pair
// ownership goes to the canonical minimum extent of the pair, keeping
// membership lists partition-local; device-level snapshots, rules,
// stats, and checkpoints are merged views over the n slices. The
// default (and n = 1) is the classic single-worker pipeline.
// Partitioning is incompatible with pipeline KeepTransactions.
func WithPartitions(n int) Option {
	return func(s *settings) { s.parts = n }
}

// WithReorderBuffer sets the capacity of the per-device
// timestamp-reordering buffer between the ingest ring and the monitor
// (default DefaultReorderBuffer; 0 disables reordering). Inversions
// wider than the buffer are released anyway and counted in the
// reorder_late metric.
func WithReorderBuffer(n int) Option {
	return func(s *settings) { s.reorder = n }
}

// WithDevices registers the given device IDs at construction time;
// more can be added later with Register.
func WithDevices(ids ...string) Option {
	return func(s *settings) { s.devices = append(s.devices, ids...) }
}

// WithMetrics makes the engine publish its instruments into an
// existing registry instead of creating its own — so one process can
// expose several engines (or extra app-level metrics) from a single
// /v1/metrics endpoint. Engines sharing a registry must not share
// device IDs, or their per-device series would collide.
func WithMetrics(r *obs.Registry) Option {
	return func(s *settings) { s.metrics = r }
}

// WithSupervisor tunes per-device panic recovery: restart backoff,
// the consecutive-restart budget, and the probation that returns a
// degraded device to health. The zero config (and the default when
// this option is absent) selects the package defaults — supervision is
// always on.
func WithSupervisor(sc SupervisorConfig) Option {
	return func(s *settings) { s.super = sc }
}

// WithCheckpoints attaches a checkpoint store to the engine: each
// device restores the freshest valid generation when it is registered
// (avoiding the cold-start transient) and after a supervised restart,
// writes a new generation every interval, and flushes a final one on
// Stop. The worst case a crash or panic can lose is therefore one
// interval of counts.
func WithCheckpoints(store *checkpoint.Store, interval time.Duration) Option {
	return func(s *settings) {
		s.ckptStore = store
		s.ckptInterval = interval
	}
}

// WithProcessHook installs fn on every device worker's event path,
// invoked just before each event is analyzed. It exists for the
// fault-injection test harness — a hook that panics deterministically
// exercises the supervisor exactly where a real synopsis bug would —
// and must be nil in production configurations.
func WithProcessHook(fn func(device string, ev blktrace.Event)) Option {
	return func(s *settings) { s.procHook = fn }
}

// Engine is the multi-device collection engine. All methods are safe
// for concurrent use.
type Engine struct {
	tmpl         pipeline.Config
	queueSize    int
	policy       Backpressure
	parts        int
	reorder      int
	metrics      *obs.Registry
	super        SupervisorConfig
	ckptStore    *checkpoint.Store
	ckptInterval time.Duration
	procHook     func(device string, ev blktrace.Event)

	mu           sync.Mutex
	shards       map[string]*shard
	order        []string // sorted by device ID, for deterministic listings
	stopped      bool
	restoredUsed bool

	// fleet wakes merged-epoch waiters on any device advance (and on
	// register/unregister, which change the device count); see watch.go.
	fleet *epochNotifier

	// Epoch-gated merged-snapshot cache over an incrementally
	// maintained merge index. The key is the sum of all device epochs
	// plus the device count (epochs only advance, so an unchanged sum
	// at an unchanged count means no device changed). On a miss, only
	// devices whose own epoch moved since their last contribution are
	// re-exported and reconciled into mergeIdx — the steady-state cost
	// of a fleet read is O(changed entries), not O(fleet entries). As
	// with the per-shard cache the key is read before the exports, so
	// the cache can only under-claim freshness. mergeCached holds the
	// full support-0 merged export; requested supports are suffix cuts.
	mergeMu      sync.Mutex
	mergeIdx     *core.MergeIndex
	mergeSrc     map[string]uint64 // device -> epoch last fed into mergeIdx
	mergeCached  core.Snapshot
	mergeEpoch   uint64
	mergeDevices int
	mergeValid   bool
}

// New builds an engine from functional options — the one constructor
// callers use instead of hand-assembling nested monitor/analyzer/
// pipeline structs:
//
//	e, err := engine.New(
//	        engine.WithAnalyzer(core.Config{ItemCapacity: 32 << 10, PairCapacity: 32 << 10}),
//	        engine.WithQueueSize(8192),
//	        engine.WithDevices("vol0", "vol1"),
//	)
//
// The pipeline template is validated up front (pipeline.Config.Validate)
// so misconfiguration fails at construction, not at first Register.
func New(opts ...Option) (*Engine, error) {
	s := settings{queueSize: DefaultQueueSize, policy: DropOldest, parts: 1, reorder: DefaultReorderBuffer}
	for _, o := range opts {
		o(&s)
	}
	if s.queueSize < 1 {
		return nil, fmt.Errorf("engine: queue size must be >= 1 (got %d)", s.queueSize)
	}
	if s.policy != DropOldest && s.policy != Block {
		return nil, fmt.Errorf("engine: unknown backpressure policy %d", s.policy)
	}
	if s.parts < 1 || s.parts > MaxPartitions {
		return nil, fmt.Errorf("engine: partitions must be in [1, %d] (got %d)", MaxPartitions, s.parts)
	}
	if s.reorder < 0 {
		return nil, fmt.Errorf("engine: reorder buffer must be >= 0 (got %d)", s.reorder)
	}
	if err := s.tmpl.Validate(); err != nil {
		return nil, err
	}
	if s.parts > 1 {
		if s.tmpl.KeepTransactions {
			return nil, fmt.Errorf("engine: KeepTransactions is not supported with %d partitions", s.parts)
		}
		// Fail partition sizing at construction, not at first Register.
		if s.tmpl.Restored == nil {
			if _, err := s.tmpl.Analyzer.Split(s.parts); err != nil {
				return nil, err
			}
		}
	}
	if err := s.super.Validate(); err != nil {
		return nil, err
	}
	if s.ckptStore != nil && s.ckptInterval <= 0 {
		return nil, fmt.Errorf("engine: checkpoint interval must be > 0 (got %v)", s.ckptInterval)
	}
	if s.metrics == nil {
		s.metrics = obs.NewRegistry()
	}
	e := &Engine{
		tmpl:         s.tmpl,
		queueSize:    s.queueSize,
		policy:       s.policy,
		parts:        s.parts,
		reorder:      s.reorder,
		metrics:      s.metrics,
		super:        s.super.withDefaults(),
		ckptStore:    s.ckptStore,
		ckptInterval: s.ckptInterval,
		procHook:     s.procHook,
		shards:       make(map[string]*shard),
		fleet:        newEpochNotifier(),
		mergeIdx:     core.NewMergeIndex(),
		mergeSrc:     make(map[string]uint64),
	}
	// Monitor and analyzer counters are worker-owned; mirror them into
	// the registry only when something actually scrapes.
	e.metrics.OnCollect(e.collect)
	for _, id := range s.devices {
		if err := e.Register(id); err != nil {
			e.Stop()
			return nil, err
		}
	}
	return e, nil
}

// Register adds a device, building its pipeline from the engine's
// template and starting its supervised worker. When a checkpoint
// store is attached, the device restores its freshest valid
// checkpoint generation instead of starting cold. Devices can be
// registered while the engine is live; registering after Stop returns
// ErrStopped.
func (e *Engine) Register(id string) error {
	if id == "" {
		return errors.New("engine: device id must be non-empty")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.stopped {
		return ErrStopped
	}
	if _, ok := e.shards[id]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateDevice, id)
	}
	if e.tmpl.Restored != nil {
		// A restored analyzer is a single concrete instance; sharing it
		// across shards would race. It may seed exactly one device.
		if e.restoredUsed {
			return fmt.Errorf("engine: a Restored analyzer can seed only one device (device %q rejected)", id)
		}
		e.restoredUsed = true
	}
	sh := newShard(id, e.queueSize, e.parts, e.policy)
	sh.super = e.super
	sh.ckpt = e.ckptStore
	sh.hook = e.procHook
	sh.rebuild = func() (*deviceState, checkpoint.Generation, error) {
		// A restart never reuses the template's Restored instance (the
		// dying worker may have corrupted it); it restores from the
		// checkpoint store, or starts fresh from the analyzer config.
		return e.buildState(sh, false)
	}
	st, gen, err := e.buildState(sh, true)
	if err != nil {
		return err
	}
	sh.st = st
	sh.devCfg = st.devCfg
	if gen.Seq != 0 {
		sh.ckptGen = gen.Seq
		sh.ckptTime = gen.Time
	}
	sh.onEpoch = e.fleetWake
	sh.metrics = newShardMetrics(e.metrics, sh, sh.ring.capacity())
	e.shards[id] = sh
	// Keep the listing order sorted by ID rather than by registration:
	// devices registered concurrently would otherwise make /v1/devices
	// and the metrics exposition depend on goroutine scheduling.
	at := sort.SearchStrings(e.order, id)
	e.order = append(e.order, "")
	copy(e.order[at+1:], e.order[at:])
	e.order[at] = id
	go sh.supervise()
	if e.ckptStore != nil {
		go sh.checkpointLoop(e.ckptInterval)
	}
	// A new device changes the merged epoch's device count; wake fleet
	// watchers so they pick it up.
	e.fleetWake()
	return nil
}

// buildState constructs one device's worker-side state from the
// engine template, preferring (in order): the template's explicit
// Restored analyzer (initial registration only), the freshest valid
// checkpoint generation, a cold analyzer from the config. Checkpoints
// of partitioned devices are single merged files (see
// core.RawGroup.EncodeMerged): they restore as one analyzer and are
// re-split across the current partition count here. The returned
// generation is zero unless a checkpoint was restored.
func (e *Engine) buildState(sh *shard, useTemplateRestored bool) (*deviceState, checkpoint.Generation, error) {
	cfg := e.tmpl
	if !useTemplateRestored {
		cfg.Restored = nil
	}
	var gen checkpoint.Generation
	if cfg.Restored == nil && e.ckptStore != nil {
		a, g, err := e.ckptStore.Restore(sh.id)
		switch {
		case err == nil:
			cfg.Restored = a
			gen = g
		case errors.Is(err, checkpoint.ErrNoCheckpoint):
			// Cold start: nothing restorable, build from config.
		default:
			return nil, gen, err
		}
	}
	st := &deviceState{parts: e.parts, rb: newReorderBuffer(e.reorder)}
	if e.parts == 1 {
		p, err := pipeline.New(cfg)
		if err != nil {
			return nil, gen, err
		}
		st.pipe = p
		st.devCfg = p.Analyzer().Config()
		return st, gen, nil
	}
	st.devCfg = cfg.Analyzer
	if cfg.Restored != nil {
		st.devCfg = cfg.Restored.Config()
	}
	mon, analyzers, _, err := pipeline.NewPartitioned(cfg, e.parts, sh.routeTx)
	if err != nil {
		return nil, gen, err
	}
	st.mon = mon
	st.analyzers = analyzers
	maxReq := cfg.Monitor.MaxRequests
	if maxReq <= 0 {
		maxReq = monitor.DefaultMaxRequests
	}
	st.sortBuf = make([]blktrace.Extent, 0, maxReq)
	st.txRings = make([]*txRing, e.parts)
	for k := range st.txRings {
		st.txRings[k] = newTxRing(maxReq)
	}
	return st, gen, nil
}

// Metrics returns the registry holding the engine's instruments — the
// one given with WithMetrics, or the engine's own. The HTTP layer
// serves it at /v1/metrics.
func (e *Engine) Metrics() *obs.Registry { return e.metrics }

// Devices lists the registered device IDs sorted by ID (a
// deterministic order regardless of registration interleaving). It
// keeps working after Stop.
func (e *Engine) Devices() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, len(e.order))
	copy(out, e.order)
	return out
}

func (e *Engine) shard(id string) (*shard, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.shards[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDevice, id)
	}
	return s, nil
}

// orderedShards returns the shards sorted by device ID.
func (e *Engine) orderedShards() []*shard {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*shard, len(e.order))
	for i, id := range e.order {
		out[i] = e.shards[id]
	}
	return out
}

// Submit offers one issue event to the named device. It validates the
// event, then enqueues it under the engine's backpressure policy. For
// per-event hot loops prefer resolving a Device handle once.
func (e *Engine) Submit(id string, ev blktrace.Event) error {
	if err := ev.Validate(); err != nil {
		return err
	}
	s, err := e.shard(id)
	if err != nil {
		return err
	}
	return s.submit(ev)
}

// SubmitBatch offers a batch of issue events to the named device,
// taking the shard lock once for the whole batch instead of once per
// event — the ingest path for replayers and bulk producers. Every
// event is validated before anything is enqueued; an invalid event
// rejects the whole batch, identifying the offending index. Under
// backpressure the batch behaves as the equivalent sequence of Submit
// calls (DropOldest discards oldest-first; Block waits for the worker).
// The batch slice is copied into the queue and may be reused by the
// caller as soon as SubmitBatch returns.
func (e *Engine) SubmitBatch(id string, evs []blktrace.Event) error {
	for i := range evs {
		if err := evs[i].Validate(); err != nil {
			return fmt.Errorf("engine: batch event %d: %w", i, err)
		}
	}
	s, err := e.shard(id)
	if err != nil {
		return err
	}
	return s.submitBatch(evs)
}

// ObserveLatency feeds one completion latency (ns) to the named
// device's dynamic window. Latencies are droppable signal; unknown
// devices and backlog are silently ignored.
func (e *Engine) ObserveLatency(id string, ns int64) {
	if s, err := e.shard(id); err == nil {
		s.observeLatency(ns)
	}
}

// Snapshot exports the named device's synopsis at minSupport. The
// worker only contributes an O(live entries) capture; sorting happens
// on the calling goroutine, and repeated queries while the device's
// synopsis is unchanged are served from an epoch-gated cache without
// touching the worker at all. Callers must treat the returned snapshot
// as read-only — concurrent queries at the same epoch share it.
func (e *Engine) Snapshot(id string, minSupport uint32) (core.Snapshot, error) {
	s, err := e.shard(id)
	if err != nil {
		return core.Snapshot{}, err
	}
	return s.snapshot(minSupport)
}

// Epoch returns the named device's synopsis epoch: a counter that
// advances whenever the device's synopsis changes (a processed batch,
// a stop flush, a supervised restart). Two queries at the same epoch
// observe identical synopsis state, which is what lets HTTP handlers
// answer If-None-Match revalidations without recomputing — or even
// re-asking — anything.
func (e *Engine) Epoch(id string) (uint64, error) {
	s, err := e.shard(id)
	if err != nil {
		return 0, err
	}
	return s.epoch.Load(), nil
}

// SnapshotSince is the delta-capture primitive for fleet sync: it
// returns the named device's full export (support 0) together with the
// epoch observed before the capture, skipping the capture entirely
// when the epoch still equals since. The epoch is read first, so the
// returned snapshot may already be newer than the labelled epoch —
// sync clients diff by content, and an under-claimed epoch only means
// one extra (empty) delta next round, never a missed change.
func (e *Engine) SnapshotSince(id string, since uint64) (snap core.Snapshot, epoch uint64, changed bool, err error) {
	s, err := e.shard(id)
	if err != nil {
		return core.Snapshot{}, 0, false, err
	}
	epoch = s.epoch.Load()
	if epoch == since {
		return core.Snapshot{}, epoch, false, nil
	}
	snap, err = s.snapshot(0)
	if err != nil {
		return core.Snapshot{}, epoch, false, err
	}
	return snap, epoch, true, nil
}

// MergedEpoch returns the sum of every device's epoch and the device
// count. Epochs are monotone, so an unchanged (sum, devices) pair
// means no device's synopsis changed — the fleet-level analogue of
// Epoch for cache validation.
func (e *Engine) MergedEpoch() (sum uint64, devices int) {
	shards := e.orderedShards()
	for _, s := range shards {
		sum += s.epoch.Load()
	}
	return sum, len(shards)
}

// Rules extracts the named device's directional association rules from
// its live tables. The rule extraction runs on the calling goroutine
// against a capture; the worker only pays for the copy.
func (e *Engine) Rules(id string, minSupport uint32, minConfidence float64) ([]core.Rule, error) {
	return e.TopRules(id, minSupport, minConfidence, 0)
}

// TopRules is Rules bounded to the limit highest-ranked rules (all of
// them when limit <= 0); the result is exactly Rules(...)[:limit].
func (e *Engine) TopRules(id string, minSupport uint32, minConfidence float64, limit int) ([]core.Rule, error) {
	s, err := e.shard(id)
	if err != nil {
		return nil, err
	}
	var rules []core.Rule
	err = s.capture(func(g core.RawGroup) error {
		rules = g.TopRules(minSupport, minConfidence, limit)
		return nil
	})
	return rules, err
}

// WriteSnapshot serialises the named device's live synopsis (the
// core.Analyzer.WriteTo format) without stopping ingestion: the binary
// encoding and the writes to w run on the calling goroutine against a
// capture, not on the device worker.
func (e *Engine) WriteSnapshot(id string, w io.Writer) error {
	s, err := e.shard(id)
	if err != nil {
		return err
	}
	return s.capture(func(g core.RawGroup) error {
		return s.writeTo(w, g)
	})
}

// MergedSnapshot exports every device's synopsis and merges them
// (core.MergeSnapshots) into one fleet-wide view at minSupport. Each
// per-device export is a consistent point-in-time view; the merge is
// not a cross-device atomic snapshot — ingestion continues while later
// devices are exported. Failed devices are skipped rather than
// poisoning the fleet view: their workers are gone, but the healthy
// devices' correlations are still worth serving (the omission is
// visible on /v1/healthz and in Stats).
// Repeated fleet queries while no device changed are served from an
// epoch-sum-gated cache; on a miss, only the devices whose epochs
// moved are re-exported and reconciled into the engine's merge index,
// so a fleet read after one device changed costs O(that device's
// changed entries), not O(fleet entries). minSupport is applied to the
// merged view (a suffix cut of the count-sorted export) rather than to
// each device before merging: a fleet-wide counter that crosses the
// threshold is reported even when no single device's counter does. As
// with Snapshot, callers must treat the result as read-only.
func (e *Engine) MergedSnapshot(minSupport uint32) (core.Snapshot, error) {
	e.mergeMu.Lock()
	defer e.mergeMu.Unlock()
	full, err := e.refreshMergedLocked()
	if err != nil {
		return core.Snapshot{}, err
	}
	return full.FilterSupport(minSupport), nil
}

// refreshMergedLocked brings mergeIdx and mergeCached up to date with
// the fleet, re-exporting only the devices whose epoch advanced since
// their last contribution. Caller holds mergeMu.
func (e *Engine) refreshMergedLocked() (core.Snapshot, error) {
	sum, n := e.MergedEpoch() // before the exports: under-claims, never over-claims
	if e.mergeValid && e.mergeEpoch == sum && e.mergeDevices == n {
		return e.mergeCached, nil
	}
	shards := e.orderedShards()
	live := make(map[string]bool, len(shards))
	for _, s := range shards {
		live[s.id] = true
		epoch := s.epoch.Load()
		if rec, ok := e.mergeSrc[s.id]; ok && rec == epoch {
			continue
		}
		snap, err := s.snapshot(0)
		if err != nil {
			if errors.Is(err, ErrDeviceUnavailable) {
				// Failed devices are dropped from the fleet view rather
				// than poisoning it: their workers are gone, but the
				// healthy devices' correlations are still worth serving
				// (the omission is visible on /v1/healthz and in Stats).
				e.mergeIdx.Remove(s.id)
				delete(e.mergeSrc, s.id)
				continue
			}
			return core.Snapshot{}, err
		}
		e.mergeIdx.Update(s.id, snap)
		e.mergeSrc[s.id] = epoch
	}
	// Unregistered devices: replay their last contribution out of the
	// union. The live-set sweep catches same-count churn (one device
	// removed, another added between reads), which the (sum, n) key
	// alone would mask only until the next epoch advance.
	for id := range e.mergeSrc {
		if !live[id] {
			e.mergeIdx.Remove(id)
			delete(e.mergeSrc, id)
		}
	}
	merged := e.mergeIdx.Snapshot()
	e.mergeCached, e.mergeEpoch, e.mergeDevices, e.mergeValid = merged, sum, n, true
	return merged, nil
}

// MergedRules derives fleet-wide directional rules from the merged
// synopsis: per-device tables are exported in full, merged with summed
// counters, and rules are extracted from the merged view. Confidences
// are estimates over the summed counters. With one device this equals
// that device's Rules.
func (e *Engine) MergedRules(minSupport uint32, minConfidence float64) ([]core.Rule, error) {
	return e.MergedTopRules(minSupport, minConfidence, 0)
}

// MergedTopRules is MergedRules bounded to the limit highest-ranked
// rules (all of them when limit <= 0); the result is exactly
// MergedRules(...)[:limit]. The extraction runs straight off the merge
// index (antecedent lookups hit its item hash, selection is a bounded
// heap), so a fleet-wide top-K read allocates O(K), independent of how
// many rules the fleet could emit.
func (e *Engine) MergedTopRules(minSupport uint32, minConfidence float64, limit int) ([]core.Rule, error) {
	e.mergeMu.Lock()
	defer e.mergeMu.Unlock()
	if _, err := e.refreshMergedLocked(); err != nil {
		return nil, err
	}
	return e.mergeIdx.TopRules(minSupport, minConfidence, limit), nil
}

// DeviceStats is one device's health and processing counters.
type DeviceStats struct {
	Device   string
	Monitor  monitor.Stats
	Analyzer core.Stats
	// Window is the monitor's current rolling transaction window.
	Window time.Duration
	// ItemIndex and PairIndex report the synopsis tables'
	// open-addressing index shape and probe behaviour (mean probe
	// length = Probes/Lookups) — the signal that the hash index, not
	// the tiers, is degrading.
	ItemIndex core.IndexStats
	PairIndex core.IndexStats
	// Dropped counts events discarded by the drop-oldest policy.
	Dropped uint64
	// Lag is the number of events queued (ring + reorder buffer) but
	// not yet processed.
	Lag int
	// Partitions is the device's sub-shard count (1 = unpartitioned).
	// At P > 1 the Analyzer and index stats are merged views over the
	// P partition slices (counters summed, MaxProbe the worst slice).
	Partitions int
	// Health is the device's supervision state (restarts, panics,
	// checkpoint recency). For a Failed device the Monitor/Analyzer/
	// Window fields are zero — the worker that owned them is gone —
	// while Health, Dropped, and Lag remain accurate.
	Health DeviceHealth
}

// Stats is the engine-wide view: one entry per device, sorted by
// device ID.
type Stats struct {
	Devices []DeviceStats
}

// TotalDropped sums the per-device drop counters.
func (s Stats) TotalDropped() uint64 {
	var n uint64
	for _, d := range s.Devices {
		n += d.Dropped
	}
	return n
}

// TotalMonitor sums the per-device monitor counters.
func (s Stats) TotalMonitor() monitor.Stats {
	var t monitor.Stats
	for _, d := range s.Devices {
		t.Events += d.Monitor.Events
		t.Filtered += d.Monitor.Filtered
		t.Duplicates += d.Monitor.Duplicates
		t.Transactions += d.Monitor.Transactions
		t.CapSplits += d.Monitor.CapSplits
		t.OutOfOrder += d.Monitor.OutOfOrder
	}
	return t
}

// TotalAnalyzer sums the per-device analyzer counters.
func (s Stats) TotalAnalyzer() core.Stats {
	var t core.Stats
	for _, d := range s.Devices {
		t.Transactions += d.Analyzer.Transactions
		t.Extents += d.Analyzer.Extents
		t.PairTouches += d.Analyzer.PairTouches
		t.ItemEvictions += d.Analyzer.ItemEvictions
		t.PairEvictions += d.Analyzer.PairEvictions
		t.ItemPromotions += d.Analyzer.ItemPromotions
		t.PairPromotions += d.Analyzer.PairPromotions
		t.PairDemotions += d.Analyzer.PairDemotions
	}
	return t
}

// DeviceStatsFor returns one device's counters.
func (e *Engine) DeviceStatsFor(id string) (DeviceStats, error) {
	s, err := e.shard(id)
	if err != nil {
		return DeviceStats{}, err
	}
	return e.statsOf(s)
}

// Stats returns every device's counters sorted by device ID.
func (e *Engine) Stats() (Stats, error) {
	shards := e.orderedShards()
	st := Stats{Devices: make([]DeviceStats, 0, len(shards))}
	for _, s := range shards {
		ds, err := e.statsOf(s)
		if err != nil {
			return Stats{}, err
		}
		st.Devices = append(st.Devices, ds)
	}
	return st, nil
}

func (e *Engine) statsOf(s *shard) (DeviceStats, error) {
	ds := DeviceStats{Device: s.id, Health: s.health(), Partitions: s.parts}
	ds.Dropped, ds.Lag = s.counters()
	r, err := s.ask(query{kind: queryStats})
	if err != nil {
		if errors.Is(err, ErrDeviceUnavailable) {
			// A failed device still reports its health and producer-side
			// counters; the worker-owned stats died with the worker.
			return ds, nil
		}
		return DeviceStats{}, err
	}
	ds.Monitor, ds.Analyzer, ds.Window = r.monStats, r.anStats, r.window
	ds.ItemIndex, ds.PairIndex = r.itemIdx, r.pairIdx
	return ds, nil
}

// DeviceHealthStatus pairs a device ID with its supervision state and
// producer-side counters.
type DeviceHealthStatus struct {
	Device string
	DeviceHealth
	// Dropped and Lag mirror DeviceStats; they are readable without
	// the worker, so health stays observable during restarts.
	Dropped uint64
	Lag     int
}

// Health reports every device's supervision state sorted by device
// ID. Unlike Stats it never does a worker round trip, so it stays
// fast and responsive while devices are restarting, failed, or
// backlogged — the property a health endpoint needs.
func (e *Engine) Health() []DeviceHealthStatus {
	shards := e.orderedShards()
	out := make([]DeviceHealthStatus, 0, len(shards))
	for _, s := range shards {
		st := DeviceHealthStatus{Device: s.id, DeviceHealth: s.health()}
		st.Dropped, st.Lag = s.counters()
		out = append(out, st)
	}
	return out
}

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stopped
}

// Dropped reports the named device's drop counter. Unlike the query
// methods it keeps working after Stop.
func (e *Engine) Dropped(id string) (uint64, error) {
	s, err := e.shard(id)
	if err != nil {
		return 0, err
	}
	n, _ := s.counters()
	return n, nil
}

// Stop shuts every device down: no new events or queries are accepted,
// queued events are drained into the pipelines, open transactions are
// flushed, and the workers exit. Stop is idempotent, safe to call
// concurrently, and returns once every worker has exited.
func (e *Engine) Stop() { e.stopWithin(0) }

// StopTimeout is Stop with a drain deadline: devices get up to d to
// drain their queued events normally; past the deadline the remaining
// queued (and reorder-buffered) events are discarded — counted in the
// per-device drop metric — instead of analyzed. Everything after the
// drain still happens in full: open transactions are flushed and each
// device writes its final checkpoint, so a bounded shutdown loses only
// unprocessed backlog, never the synopsis. Returns true when the
// deadline forced at least one device to discard. d <= 0 means no
// deadline (identical to Stop).
func (e *Engine) StopTimeout(d time.Duration) (forced bool) {
	return e.stopWithin(d)
}

func (e *Engine) stopWithin(d time.Duration) (forced bool) {
	e.mu.Lock()
	e.stopped = true
	shards := make([]*shard, len(e.order))
	for i, id := range e.order {
		shards[i] = e.shards[id]
	}
	e.mu.Unlock()
	for _, s := range shards {
		s.requestStop()
	}
	if d > 0 {
		all := make(chan struct{})
		go func() {
			for _, s := range shards {
				<-s.done
			}
			close(all)
		}()
		t := time.NewTimer(d)
		select {
		case <-all:
			t.Stop()
		case <-t.C:
			forced = true
			for _, s := range shards {
				s.forceDiscard()
			}
			<-all
		}
	} else {
		for _, s := range shards {
			<-s.done
		}
	}
	// Every shard has flushed and ended its own waiters; end the
	// fleet-level ones too so merged watchers see a terminal event.
	e.fleet.wake(ErrStopped)
	return forced
}

// Device is a registered device's ingest handle: hot loops resolve it
// once and submit without a per-event fleet-map lookup.
type Device struct {
	s *shard
}

// Device resolves an ingest handle for the named device.
func (e *Engine) Device(id string) (*Device, error) {
	s, err := e.shard(id)
	if err != nil {
		return nil, err
	}
	return &Device{s: s}, nil
}

// ID returns the device's identifier.
func (d *Device) ID() string { return d.s.id }

// Submit validates and enqueues one issue event, as Engine.Submit.
func (d *Device) Submit(ev blktrace.Event) error {
	if err := ev.Validate(); err != nil {
		return err
	}
	return d.s.submit(ev)
}

// SubmitBatch validates and enqueues a batch of issue events under a
// single lock acquisition, as Engine.SubmitBatch.
func (d *Device) SubmitBatch(evs []blktrace.Event) error {
	for i := range evs {
		if err := evs[i].Validate(); err != nil {
			return fmt.Errorf("engine: batch event %d: %w", i, err)
		}
	}
	return d.s.submitBatch(evs)
}

// ObserveLatency feeds one completion latency (ns), as
// Engine.ObserveLatency.
func (d *Device) ObserveLatency(ns int64) { d.s.observeLatency(ns) }

// Lag returns the device's current queue depth — events enqueued but
// not yet analyzed. Feeders that want throughput without drops pace on
// this instead of guessing.
func (d *Device) Lag() int {
	_, lag := d.s.counters()
	return lag
}

// Dropped returns how many events the device has shed under the
// DropOldest policy since registration.
func (d *Device) Dropped() uint64 {
	n, _ := d.s.counters()
	return n
}
