package engine

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"daccor/internal/blktrace"
	"daccor/internal/core"
	"daccor/internal/monitor"
)

// The engine's merged read path is incrementally maintained (only
// devices whose epoch moved are re-exported into the merge index);
// these tests pin it against the from-scratch answer — MergeSnapshots
// over the per-device exports — through ingest churn, partitioning,
// support filters, and device unregistration.

func mergedFromScratch(t *testing.T, e *Engine, devices []string, minSupport uint32) core.Snapshot {
	t.Helper()
	snaps := make([]core.Snapshot, 0, len(devices))
	for _, id := range devices {
		s, err := e.Snapshot(id, 0)
		if err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, s)
	}
	return core.MergeSnapshots(snaps...).FilterSupport(minSupport)
}

func testMergedIncrementalEqualsScratch(t *testing.T, parts int) {
	devices := []string{"vol0", "vol1", "vol2", "vol3"}
	opts := []Option{
		WithMonitor(monitor.Config{Window: monitor.StaticWindow(time.Millisecond)}),
		WithAnalyzer(core.Config{ItemCapacity: 4096, PairCapacity: 4096}),
		WithDevices(devices...),
		WithBackpressure(Block),
	}
	if parts > 1 {
		opts = append(opts, WithPartitions(parts))
	}
	e, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()

	rng := rand.New(rand.NewSource(17))
	submitted := make(map[string]uint64)
	var clock int64
	burst := func(id string) {
		// A short run of overlapping transactions on one device; the
		// millisecond gaps close each transaction behind it.
		for tx := 0; tx < 8; tx++ {
			n := 2 + rng.Intn(3)
			for i := 0; i < n; i++ {
				ev := blktrace.Event{Time: clock, Op: blktrace.OpRead,
					Extent: blktrace.Extent{Block: uint64(rng.Intn(64)) * 8, Len: 8}}
				if err := e.Submit(id, ev); err != nil {
					t.Fatal(err)
				}
				submitted[id]++
				clock += 10_000 // 10µs: same window
			}
			clock += int64(2 * time.Millisecond)
		}
		waitDrained(t, e, id, submitted[id])
	}

	for round := 0; round < 25; round++ {
		// Steady state: every round dirties exactly one device, the
		// shape the incremental maintainer is built for.
		burst(devices[rng.Intn(len(devices))])
		for _, minSupport := range []uint32{0, 1, 3} {
			got, err := e.MergedSnapshot(minSupport)
			if err != nil {
				t.Fatal(err)
			}
			want := mergedFromScratch(t, e, devices, minSupport)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("round %d support %d: incremental merged view diverged: %d/%d pairs/items, want %d/%d",
					round, minSupport, len(got.Pairs), len(got.Items), len(want.Pairs), len(want.Items))
			}
		}
		fullRules, err := e.MergedRules(2, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		top, err := e.MergedTopRules(2, 0.1, 5)
		if err != nil {
			t.Fatal(err)
		}
		wantTop := fullRules
		if len(wantTop) > 5 {
			wantTop = wantTop[:5]
		}
		if !reflect.DeepEqual(top, wantTop) {
			t.Fatalf("round %d: MergedTopRules != MergedRules[:5] (%d vs %d rules)", round, len(top), len(wantTop))
		}
	}

	// Unregistering a device must replay its contribution out of the
	// merged view; registering a fresh one must fold it in.
	if err := e.Unregister("vol1"); err != nil {
		t.Fatal(err)
	}
	devices = []string{"vol0", "vol2", "vol3"}
	got, err := e.MergedSnapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	if want := mergedFromScratch(t, e, devices, 0); !reflect.DeepEqual(got, want) {
		t.Fatalf("after unregister: merged view diverged (%d pairs, want %d)", len(got.Pairs), len(want.Pairs))
	}
	if err := e.Register("vol4"); err != nil {
		t.Fatal(err)
	}
	devices = append(devices, "vol4")
	burst("vol4")
	got, err = e.MergedSnapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	if want := mergedFromScratch(t, e, devices, 0); !reflect.DeepEqual(got, want) {
		t.Fatalf("after register: merged view diverged (%d pairs, want %d)", len(got.Pairs), len(want.Pairs))
	}
}

func TestMergedIncrementalEqualsScratch(t *testing.T) {
	for _, parts := range []int{1, 3} {
		t.Run(fmt.Sprintf("parts-%d", parts), func(t *testing.T) {
			testMergedIncrementalEqualsScratch(t, parts)
		})
	}
}
