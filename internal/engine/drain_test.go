package engine

import (
	"testing"
	"time"

	"daccor/internal/blktrace"
	"daccor/internal/checkpoint"
)

// TestStopTimeoutForcesDrain covers the forced path of the -drain-timeout
// shutdown: a worker slowed to ~5ms/event faces a backlog worth seconds
// of drain, StopTimeout(100ms) must return far sooner, report that it
// forced, account the abandoned events as dropped — and still write the
// final checkpoint, because an operator who bounded the drain did not
// agree to lose the counts already analyzed.
func TestStopTimeoutForcesDrain(t *testing.T) {
	store, err := checkpoint.Open(checkpoint.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	slow := func(device string, ev blktrace.Event) { time.Sleep(5 * time.Millisecond) }
	e := mustEngine(t,
		WithDevices("dev0"),
		WithQueueSize(4096),
		WithCheckpoints(store, time.Hour),
		WithProcessHook(slow),
	)
	// ~4s of work at 5ms/event — far beyond the 100ms budget.
	feedN(t, e, "dev0", 800, 0)

	start := time.Now()
	forced := e.StopTimeout(100 * time.Millisecond)
	elapsed := time.Since(start)

	if !forced {
		t.Fatal("StopTimeout returned forced=false with a multi-second backlog")
	}
	if elapsed > 3*time.Second {
		t.Fatalf("forced stop took %v; the deadline did not bound the drain", elapsed)
	}
	if dropped := metricValue(t, e, MetricDropped, "dev0"); dropped == 0 {
		t.Fatal("forced stop discarded the backlog but dropped counter is 0")
	}
	if _, ok := store.Latest("dev0"); !ok {
		t.Fatal("no final checkpoint after forced stop")
	}
}

// TestStopTimeoutDrainsWithinDeadline covers the happy path: a small
// backlog drains well inside the deadline, nothing is dropped, and the
// final checkpoint is written as on a plain Stop.
func TestStopTimeoutDrainsWithinDeadline(t *testing.T) {
	store, err := checkpoint.Open(checkpoint.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	e := mustEngine(t,
		WithDevices("dev0"),
		WithQueueSize(4096),
		WithCheckpoints(store, time.Hour),
	)
	feedN(t, e, "dev0", 200, 0)

	if forced := e.StopTimeout(10 * time.Second); forced {
		t.Fatal("StopTimeout forced a discard on a trivially drainable backlog")
	}
	if dropped := metricValue(t, e, MetricDropped, "dev0"); dropped != 0 {
		t.Fatalf("clean drain dropped %v events", dropped)
	}
	if _, ok := store.Latest("dev0"); !ok {
		t.Fatal("no final checkpoint after clean stop")
	}
}
