package checkpoint

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"daccor/internal/blktrace"
	"daccor/internal/core"
)

// testAnalyzer builds a small analyzer with deterministic content.
func testAnalyzer(t *testing.T, txs int) *core.Analyzer {
	t.Helper()
	a, err := core.NewAnalyzer(core.Config{ItemCapacity: 32, PairCapacity: 32})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < txs; i++ {
		a.Process([]blktrace.Extent{
			{Block: uint64(i % 7), Len: 1},
			{Block: uint64(i%7) + 100, Len: 2},
		})
	}
	return a
}

func mustOpen(t *testing.T, cfg Config) *Store {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Config{}); err == nil {
		t.Error("Open with empty Dir should fail")
	}
	if _, err := Open(Config{Dir: t.TempDir(), Keep: -1}); err == nil {
		t.Error("Open with negative Keep should fail")
	}
}

func TestSaveRestoreRoundTrip(t *testing.T) {
	s := mustOpen(t, Config{})
	a := testAnalyzer(t, 50)
	gen, err := s.Save("dev0", a)
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	if gen.Seq != 1 {
		t.Errorf("first generation seq = %d, want 1", gen.Seq)
	}
	got, rgen, err := s.Restore("dev0")
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if rgen.Seq != gen.Seq {
		t.Errorf("restored generation %d, want %d", rgen.Seq, gen.Seq)
	}
	if !reflect.DeepEqual(a.Snapshot(0), got.Snapshot(0)) {
		t.Error("restored snapshot differs from saved")
	}
}

func TestRestoreNoCheckpoint(t *testing.T) {
	s := mustOpen(t, Config{})
	_, _, err := s.Restore("never-saved")
	if !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("Restore on empty store: %v, want ErrNoCheckpoint", err)
	}
}

func TestRetentionPrunesOldGenerations(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Config{Dir: dir, Keep: 2})
	a := testAnalyzer(t, 10)
	for i := 0; i < 5; i++ {
		if _, err := s.Save("dev0", a); err != nil {
			t.Fatalf("Save %d: %v", i, err)
		}
	}
	gens, err := s.generations("dev0")
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 2 {
		t.Fatalf("retained %d generations, want 2", len(gens))
	}
	if gens[0].Seq != 5 || gens[1].Seq != 4 {
		t.Errorf("retained seqs %d,%d, want 5,4", gens[0].Seq, gens[1].Seq)
	}
}

func TestSequencesSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	a := testAnalyzer(t, 10)
	s1 := mustOpen(t, Config{Dir: dir})
	if _, err := s1.Save("dev0", a); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Save("dev0", a); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, Config{Dir: dir})
	gen, err := s2.Save("dev0", a)
	if err != nil {
		t.Fatal(err)
	}
	if gen.Seq != 3 {
		t.Errorf("seq after reopen = %d, want 3", gen.Seq)
	}
}

func TestFaultHookAbortsCommit(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("injected")
	s := mustOpen(t, Config{Dir: dir, FaultHook: func(device string, seq uint64) error {
		if seq == 2 {
			return boom
		}
		return nil
	}})
	a := testAnalyzer(t, 10)
	if _, err := s.Save("dev0", a); err != nil {
		t.Fatalf("Save 1: %v", err)
	}
	if _, err := s.Save("dev0", a); !errors.Is(err, boom) {
		t.Fatalf("Save 2 = %v, want injected fault", err)
	}
	// The aborted commit must leave no temp litter and keep gen 1
	// restorable.
	ents, err := os.ReadDir(filepath.Join(dir, "dev0"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			t.Errorf("temp file %q left behind after aborted commit", e.Name())
		}
	}
	_, gen, err := s.Restore("dev0")
	if err != nil || gen.Seq != 1 {
		t.Fatalf("Restore after aborted commit: gen %d err %v, want gen 1", gen.Seq, err)
	}
	// The sequence was consumed; the next save must not collide.
	if gen, err := s.Save("dev0", a); err != nil || gen.Seq != 3 {
		t.Fatalf("Save after abort: gen %d err %v, want gen 3", gen.Seq, err)
	}
}

// TestCrashMidCheckpointEveryTruncation simulates a kill-style crash at
// every possible truncation offset of the newest generation file and
// requires that Restore always falls back to the previous good
// generation (or accepts the full-length file).
func TestCrashMidCheckpointEveryTruncation(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Config{Dir: dir, Keep: 3})
	good := testAnalyzer(t, 20)
	if _, err := s.Save("dev0", good); err != nil {
		t.Fatal(err)
	}

	// Serialize a distinct newer state to play the torn write.
	newer := testAnalyzer(t, 40)
	var buf bytes.Buffer
	if _, err := newer.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	devDir := filepath.Join(dir, "dev0")

	for cut := 0; cut <= len(full); cut++ {
		torn := filepath.Join(devDir, genName(2))
		if err := os.WriteFile(torn, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		a, gen, err := s.Restore("dev0")
		if err != nil {
			t.Fatalf("cut %d: Restore failed entirely: %v", cut, err)
		}
		if cut == len(full) {
			if gen.Seq != 2 {
				t.Fatalf("full file restored gen %d, want 2", gen.Seq)
			}
			if !reflect.DeepEqual(a.Snapshot(0), newer.Snapshot(0)) {
				t.Fatal("full-length generation restored wrong state")
			}
		} else if gen.Seq == 2 {
			// A strict prefix that still parses must at least be a
			// self-consistent synopsis (the format is not self-delimiting
			// at every byte, so some prefixes are valid snapshots of a
			// smaller state — that is fine, corruption detection is
			// format-level, not content-level). Round-trip it to prove
			// the accepted state is coherent.
			var rt bytes.Buffer
			if _, err := a.WriteTo(&rt); err != nil {
				t.Fatalf("cut %d: truncated restore cannot re-save: %v", cut, err)
			}
			if _, err := core.LoadAnalyzer(&rt); err != nil {
				t.Fatalf("cut %d: truncated restore does not round-trip: %v", cut, err)
			}
		} else {
			if gen.Seq != 1 {
				t.Fatalf("cut %d: fell back to gen %d, want 1", cut, gen.Seq)
			}
			if !reflect.DeepEqual(a.Snapshot(0), good.Snapshot(0)) {
				t.Fatalf("cut %d: fallback restored wrong state", cut)
			}
		}
		if err := os.Remove(torn); err != nil {
			t.Fatal(err)
		}
	}
}

// TestStrayTempFilesIgnoredAndSwept: a crash between temp write and
// rename leaves tmp-* files; they must not be restored and must be
// cleaned up by the next scan.
func TestStrayTempFilesIgnoredAndSwept(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Config{Dir: dir})
	a := testAnalyzer(t, 10)
	if _, err := s.Save("dev0", a); err != nil {
		t.Fatal(err)
	}
	devDir := filepath.Join(dir, "dev0")
	stray := filepath.Join(devDir, tmpPrefix+"123456"+ckptSuffix)
	if err := os.WriteFile(stray, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, gen, err := s.Restore("dev0"); err != nil || gen.Seq != 1 {
		t.Fatalf("Restore with stray temp: gen %d err %v", gen.Seq, err)
	}
	if _, err := os.Stat(stray); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("stray temp file not swept (stat err %v)", err)
	}
}

func TestDeviceDirEscaping(t *testing.T) {
	cases := map[string]string{
		"dev0":     "dev0",
		"a/b":      "a%2Fb",
		"..":       "%..",
		".":        "%.",
		"":         "%",
		"A_b-c.9":  "A_b-c.9",
		"vol 3":    "vol%203",
		"x%y":      "x%25y",
		"naïve":    "na%C3%AFve",
		"..secret": "..secret",
	}
	for in, want := range cases {
		if got := deviceDir(in); got != want {
			t.Errorf("deviceDir(%q) = %q, want %q", in, got, want)
		}
	}
	// Distinct IDs must never collide.
	if deviceDir("a/b") == deviceDir("a%2Fb") {
		t.Error("escaping collides for a/b vs its escaped form")
	}
}

func TestLatest(t *testing.T) {
	s := mustOpen(t, Config{})
	if _, ok := s.Latest("dev0"); ok {
		t.Error("Latest on empty device should report ok=false")
	}
	a := testAnalyzer(t, 5)
	if _, err := s.Save("dev0", a); err != nil {
		t.Fatal(err)
	}
	g, ok := s.Latest("dev0")
	if !ok || g.Seq != 1 {
		t.Errorf("Latest = (%v, %v), want seq 1", g, ok)
	}
}

// TestRestoreSkipsGarbageGeneration: a generation full of garbage (not
// merely truncated) is skipped in favour of an older good one.
func TestRestoreSkipsGarbageGeneration(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Config{Dir: dir})
	a := testAnalyzer(t, 10)
	if _, err := s.Save("dev0", a); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "dev0", genName(7))
	if err := os.WriteFile(bad, bytes.Repeat([]byte{0xAB}, 256), 0o644); err != nil {
		t.Fatal(err)
	}
	got, gen, err := s.Restore("dev0")
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if gen.Seq != 1 {
		t.Errorf("restored gen %d, want fallback to 1", gen.Seq)
	}
	if !reflect.DeepEqual(a.Snapshot(0), got.Snapshot(0)) {
		t.Error("fallback restored wrong state")
	}
}

// TestRestoreWithArbitraryPayload: RestoreWith gives non-Analyzer
// payloads the same newest-first, skip-corrupt walk that Restore has.
func TestRestoreWithArbitraryPayload(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Config{Dir: dir})
	payload := []byte("fleet-state-v1")
	if _, err := s.Save("agg", writerToFunc(func(w io.Writer) (int64, error) {
		n, err := w.Write(payload)
		return int64(n), err
	})); err != nil {
		t.Fatal(err)
	}
	// A newer, torn generation must be skipped by the load callback.
	bad := filepath.Join(dir, "agg", genName(9))
	if err := os.WriteFile(bad, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	var got []byte
	gen, err := s.RestoreWith("agg", func(r io.Reader) error {
		b, err := io.ReadAll(r)
		if err != nil {
			return err
		}
		if !bytes.Equal(b, payload) {
			return errors.New("not my payload")
		}
		got = b
		return nil
	})
	if err != nil {
		t.Fatalf("RestoreWith: %v", err)
	}
	if gen.Seq != 1 {
		t.Errorf("restored gen %d, want fallback to 1", gen.Seq)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("restored %q, want %q", got, payload)
	}
	if _, err := s.RestoreWith("absent", func(io.Reader) error { return nil }); !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("absent device: got %v, want ErrNoCheckpoint", err)
	}
}

type writerToFunc func(w io.Writer) (int64, error)

func (f writerToFunc) WriteTo(w io.Writer) (int64, error) { return f(w) }
