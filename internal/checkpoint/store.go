// Package checkpoint persists per-device synopsis snapshots so a
// long-running characterizer survives crashes without paying the §V.1
// cold-start transient again. A Store manages a directory of
// generations per device:
//
//	<dir>/<device>/ckpt-<seq>.dsyn
//
// Every save is crash-safe: the snapshot is written to a temporary
// file in the same directory, fsynced, atomically renamed into place,
// and the directory itself is fsynced so the rename survives a power
// cut. The last Keep generations are retained; Restore walks them
// newest-first and falls back to an older generation when the newest
// is truncated or corrupt (the expected leftovers of a crash mid-save
// are a stray temp file, which is ignored, or a torn rename, which the
// fallback skips).
//
// The worst case after a crash is therefore losing the events since
// the last completed checkpoint — one checkpoint interval — never the
// whole synopsis.
package checkpoint

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"daccor/internal/core"
)

// DefaultKeep is the number of checkpoint generations retained per
// device when Config.Keep is zero. More than one generation is the
// point: the newest can always be a torn write.
const DefaultKeep = 3

// ErrNoCheckpoint is returned by Restore when no generation of the
// device's checkpoint can be loaded — either none was ever written or
// every retained generation is corrupt.
var ErrNoCheckpoint = errors.New("checkpoint: no restorable checkpoint")

// Config configures a Store.
type Config struct {
	// Dir is the root directory; each device gets a subdirectory.
	// Created (with parents) if missing.
	Dir string
	// Keep is how many generations to retain per device (default
	// DefaultKeep, minimum 1).
	Keep int
	// FaultHook, when non-nil, runs after a generation's temp file has
	// been written and synced but before it is renamed into place; a
	// non-nil return aborts the commit and fails the Save. It exists
	// for fault-injection tests (simulated full disks, crashes between
	// write and rename) and must be nil in production use.
	FaultHook func(device string, seq uint64) error
}

// Store manages checkpoint generations under one directory. All
// methods are safe for concurrent use; saves for the same device are
// serialized by the caller (the engine checkpoints each device from
// its own worker).
type Store struct {
	dir       string
	keep      int
	faultHook func(device string, seq uint64) error

	mu   sync.Mutex
	next map[string]uint64 // per device, next generation sequence
}

// Open creates (if needed) the root directory and returns a store.
func Open(cfg Config) (*Store, error) {
	if cfg.Dir == "" {
		return nil, errors.New("checkpoint: Dir must be non-empty")
	}
	if cfg.Keep < 0 {
		return nil, fmt.Errorf("checkpoint: Keep must be >= 0 (got %d)", cfg.Keep)
	}
	if cfg.Keep == 0 {
		cfg.Keep = DefaultKeep
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: create dir: %w", err)
	}
	return &Store{
		dir:       cfg.Dir,
		keep:      cfg.Keep,
		faultHook: cfg.FaultHook,
		next:      make(map[string]uint64),
	}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Generation identifies one saved checkpoint.
type Generation struct {
	// Seq is the monotonically increasing per-device sequence number.
	Seq uint64
	// Time is the file's modification time (commit time for saves).
	Time time.Time
}

const (
	ckptPrefix = "ckpt-"
	ckptSuffix = ".dsyn"
	tmpPrefix  = "tmp-"
)

// deviceDir maps a device ID onto a filesystem-safe subdirectory name:
// letters, digits, '.', '_' and '-' pass through, every other byte is
// %XX-escaped (so distinct IDs cannot collide), and the escape also
// covers "." / ".." and empty IDs.
func deviceDir(id string) string {
	var b strings.Builder
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
			b.WriteByte(c)
		default:
			fmt.Fprintf(&b, "%%%02X", c)
		}
	}
	out := b.String()
	if out == "" || out == "." || out == ".." {
		return "%" + out
	}
	return out
}

func genName(seq uint64) string {
	return fmt.Sprintf("%s%016d%s", ckptPrefix, seq, ckptSuffix)
}

// parseGen extracts the sequence number from a generation file name.
func parseGen(name string) (uint64, bool) {
	if !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
		return 0, false
	}
	mid := name[len(ckptPrefix) : len(name)-len(ckptSuffix)]
	if len(mid) != 16 {
		return 0, false
	}
	n, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// generations lists a device's generation files sorted newest-first.
// Stray temp files from interrupted saves are ignored (and removed
// opportunistically).
func (s *Store) generations(device string) ([]Generation, error) {
	dir := filepath.Join(s.dir, deviceDir(device))
	entries, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	var gens []Generation
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			// Leftover of a crash between temp write and rename; it was
			// never committed, so it is garbage.
			_ = os.Remove(filepath.Join(dir, e.Name()))
			continue
		}
		seq, ok := parseGen(e.Name())
		if !ok {
			continue
		}
		g := Generation{Seq: seq}
		if info, err := e.Info(); err == nil {
			g.Time = info.ModTime()
		}
		gens = append(gens, g)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i].Seq > gens[j].Seq })
	return gens, nil
}

// nextSeq reserves the next generation sequence for a device,
// initializing from the directory on first use so sequences keep
// increasing across process restarts.
func (s *Store) nextSeq(device string) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n, ok := s.next[device]; ok {
		s.next[device] = n + 1
		return n, nil
	}
	gens, err := s.generations(device)
	if err != nil {
		return 0, err
	}
	var n uint64 = 1
	if len(gens) > 0 {
		n = gens[0].Seq + 1
	}
	s.next[device] = n + 1
	return n, nil
}

// Save writes one checkpoint generation for the device crash-safely:
// temp file, fsync, atomic rename, directory fsync, then pruning of
// generations beyond Keep. src is typically a *core.Analyzer; the
// engine calls Save from the device's worker goroutine, which owns the
// analyzer, so the serialization is a consistent point-in-time state.
func (s *Store) Save(device string, src io.WriterTo) (Generation, error) {
	return s.save(device, func(f *os.File) error {
		_, err := src.WriteTo(f)
		return err
	})
}

func (s *Store) save(device string, write func(f *os.File) error) (Generation, error) {
	dir := filepath.Join(s.dir, deviceDir(device))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Generation{}, fmt.Errorf("checkpoint: create device dir: %w", err)
	}
	seq, err := s.nextSeq(device)
	if err != nil {
		return Generation{}, fmt.Errorf("checkpoint: scan generations: %w", err)
	}
	tmp, err := os.CreateTemp(dir, tmpPrefix+"*"+ckptSuffix)
	if err != nil {
		return Generation{}, fmt.Errorf("checkpoint: create temp: %w", err)
	}
	tmpName := tmp.Name()
	// Any failure from here on removes the temp file; a crash leaves it
	// behind, where generations() sweeps it up.
	fail := func(step string, err error) (Generation, error) {
		tmp.Close()
		os.Remove(tmpName)
		return Generation{}, fmt.Errorf("checkpoint: %s: %w", step, err)
	}
	if err := write(tmp); err != nil {
		return fail("write", err)
	}
	if err := tmp.Sync(); err != nil {
		return fail("sync", err)
	}
	if err := tmp.Close(); err != nil {
		return fail("close", err)
	}
	if s.faultHook != nil {
		if err := s.faultHook(device, seq); err != nil {
			os.Remove(tmpName)
			return Generation{}, fmt.Errorf("checkpoint: fault hook: %w", err)
		}
	}
	final := filepath.Join(dir, genName(seq))
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		return Generation{}, fmt.Errorf("checkpoint: rename: %w", err)
	}
	// Sync the directory so the rename itself is durable. A failure
	// here does not invalidate the data — it only weakens durability —
	// so it is reported but the generation stands.
	if err := syncDir(dir); err != nil {
		return Generation{Seq: seq, Time: time.Now()}, fmt.Errorf("checkpoint: sync dir: %w", err)
	}
	s.prune(device, dir)
	return Generation{Seq: seq, Time: time.Now()}, nil
}

// prune removes generations beyond the retention count, oldest first.
// Pruning is best-effort: a file that cannot be removed is simply kept
// for the next pass.
func (s *Store) prune(device, dir string) {
	gens, err := s.generations(device)
	if err != nil {
		return
	}
	for _, g := range gens[min(len(gens), s.keep):] {
		_ = os.Remove(filepath.Join(dir, genName(g.Seq)))
	}
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Latest reports the newest on-disk generation for a device, without
// validating it. ok is false when the device has no generations.
func (s *Store) Latest(device string) (g Generation, ok bool) {
	gens, err := s.generations(device)
	if err != nil || len(gens) == 0 {
		return Generation{}, false
	}
	return gens[0], true
}

// Restore loads the freshest valid checkpoint for the device, walking
// generations newest-first and skipping any that fail to parse — the
// newest file after a crash can legitimately be truncated or torn.
// It returns ErrNoCheckpoint when nothing restorable exists; corrupt
// generations that were skipped on the way to a successful restore are
// left in place (they age out through retention).
func (s *Store) Restore(device string) (*core.Analyzer, Generation, error) {
	var a *core.Analyzer
	g, err := s.RestoreWith(device, func(r io.Reader) error {
		loaded, err := core.LoadAnalyzer(r)
		if err != nil {
			return err
		}
		a = loaded
		return nil
	})
	if err != nil {
		return nil, Generation{}, err
	}
	return a, g, nil
}

// RestoreWith is Restore for arbitrary payloads: it walks generations
// newest-first and hands each to load until one parses, so callers that
// checkpoint something other than an Analyzer (the fleet aggregator's
// mirror state, say) get the same torn-file tolerance. load must return
// an error on any payload it cannot fully decode; a load that succeeds
// ends the walk and its generation is returned.
func (s *Store) RestoreWith(device string, load func(r io.Reader) error) (Generation, error) {
	gens, err := s.generations(device)
	if err != nil {
		return Generation{}, fmt.Errorf("checkpoint: scan generations: %w", err)
	}
	dir := filepath.Join(s.dir, deviceDir(device))
	for _, g := range gens {
		f, err := os.Open(filepath.Join(dir, genName(g.Seq)))
		if err != nil {
			continue
		}
		err = load(f)
		f.Close()
		if err != nil {
			// Truncated or corrupt generation: fall back to the next
			// older one.
			continue
		}
		return g, nil
	}
	return Generation{}, fmt.Errorf("%w (device %q, %d generation(s) scanned)", ErrNoCheckpoint, device, len(gens))
}
