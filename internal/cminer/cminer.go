// Package cminer implements an offline block-correlation miner in the
// style of C-Miner (Li et al., FAST '04), the approach the paper
// positions itself against: the access stream is cut into short
// sequences, frequent subsequences are mined under a *gap* constraint
// (a sliding window limiting the distance between consecutive pattern
// elements), closed patterns are kept, and association rules are
// derived from them.
//
// It exists as a baseline: it shares the offline drawbacks the paper
// lists (needs the recorded stream, multi-pass, no recency notion) and
// lets experiments compare its correlations with the online synopsis's.
package cminer

import (
	"fmt"
	"sort"

	"daccor/internal/blktrace"
)

// Options bound a mining run.
type Options struct {
	// SegmentLen cuts the access stream into sequences of this many
	// requests (C-Miner cuts "the long sequence into short sequences").
	// 0 means DefaultSegmentLen.
	SegmentLen int
	// Gap is the maximum number of other requests allowed between two
	// consecutive elements of a pattern occurrence (C-Miner's gap
	// parameter; 0 = strictly adjacent).
	Gap int
	// MinSupport is the number of sequences a pattern must occur in.
	MinSupport int
	// MaxLen caps pattern length; 0 means DefaultMaxLen. C-Miner keeps
	// patterns short, as long rules rarely pay for their cost.
	MaxLen int
	// KeepNonClosed disables the closed-pattern filter.
	KeepNonClosed bool
}

// Defaults for Options.
const (
	DefaultSegmentLen = 128
	DefaultMaxLen     = 4
)

func (o *Options) applyDefaults() {
	if o.SegmentLen == 0 {
		o.SegmentLen = DefaultSegmentLen
	}
	if o.MaxLen == 0 {
		o.MaxLen = DefaultMaxLen
	}
}

func (o Options) validate() error {
	if o.SegmentLen < 2 {
		return fmt.Errorf("cminer: SegmentLen must be >= 2 (got %d)", o.SegmentLen)
	}
	if o.Gap < 0 {
		return fmt.Errorf("cminer: Gap must be >= 0 (got %d)", o.Gap)
	}
	if o.MinSupport < 1 {
		return fmt.Errorf("cminer: MinSupport must be >= 1 (got %d)", o.MinSupport)
	}
	if o.MaxLen < 1 {
		return fmt.Errorf("cminer: MaxLen must be >= 1 (got %d)", o.MaxLen)
	}
	return nil
}

// Pattern is one frequent subsequence with its support.
type Pattern struct {
	Extents []blktrace.Extent
	Support int
}

// Rule is a C-Miner association rule: after accessing the Antecedent
// subsequence, the Consequent is likely to be accessed within the gap
// window.
type Rule struct {
	Antecedent []blktrace.Extent
	Consequent blktrace.Extent
	Support    int
	Confidence float64
}

// Result holds a mining run's output.
type Result struct {
	Patterns  []Pattern
	Sequences int // sequences the stream was cut into
}

// Mine cuts the trace's request stream into sequences and mines
// frequent (closed) subsequences under the gap constraint, using a
// PrefixSpan-style projected-database search.
func Mine(t *blktrace.Trace, opts Options) (*Result, error) {
	opts.applyDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	// Intern extents and segment the stream.
	ids := make(map[blktrace.Extent]int32)
	var extents []blktrace.Extent
	intern := func(e blktrace.Extent) int32 {
		if id, ok := ids[e]; ok {
			return id
		}
		id := int32(len(extents))
		ids[e] = id
		extents = append(extents, e)
		return id
	}
	var seqs [][]int32
	for start := 0; start < t.Len(); start += opts.SegmentLen {
		end := start + opts.SegmentLen
		if end > t.Len() {
			end = t.Len()
		}
		seq := make([]int32, 0, end-start)
		for _, ev := range t.Events[start:end] {
			seq = append(seq, intern(ev.Extent))
		}
		if len(seq) > 0 {
			seqs = append(seqs, seq)
		}
	}
	patterns := prefixSpan(seqs, int32(len(extents)), opts)
	if !opts.KeepNonClosed {
		patterns = closedOnly(patterns)
	}
	res := &Result{Sequences: len(seqs)}
	for _, p := range patterns {
		out := make([]blktrace.Extent, len(p.items))
		for i, id := range p.items {
			out[i] = extents[id]
		}
		res.Patterns = append(res.Patterns, Pattern{Extents: out, Support: p.support})
	}
	sortPatterns(res.Patterns)
	return res, nil
}

type idPattern struct {
	items   []int32
	support int
}

// projection records, per sequence, every position at which the current
// pattern's last element can match (all are needed for correct gap
// extension).
type projection struct {
	seq  int
	ends []int
}

// prefixSpan mines frequent gap-constrained subsequences.
func prefixSpan(seqs [][]int32, numItems int32, opts Options) []idPattern {
	// Seed: frequent single items and their occurrence projections.
	occ := make(map[int32][]projection)
	for si, seq := range seqs {
		perItem := make(map[int32][]int)
		for pos, id := range seq {
			perItem[id] = append(perItem[id], pos)
		}
		for id, ends := range perItem {
			occ[id] = append(occ[id], projection{seq: si, ends: ends})
		}
	}
	var out []idPattern
	var dfs func(pattern []int32, projs []projection)
	dfs = func(pattern []int32, projs []projection) {
		out = append(out, idPattern{items: append([]int32(nil), pattern...), support: len(projs)})
		if len(pattern) >= opts.MaxLen {
			return
		}
		// Candidate extensions: items appearing within the gap window
		// after any end position.
		extProjs := make(map[int32][]projection)
		for _, pr := range projs {
			seq := seqs[pr.seq]
			perItem := make(map[int32][]int)
			for _, end := range pr.ends {
				hi := end + 1 + opts.Gap
				if hi > len(seq)-1 {
					hi = len(seq) - 1
				}
				for pos := end + 1; pos <= hi; pos++ {
					perItem[seq[pos]] = appendUnique(perItem[seq[pos]], pos)
				}
			}
			for id, ends := range perItem {
				sort.Ints(ends)
				extProjs[id] = append(extProjs[id], projection{seq: pr.seq, ends: ends})
			}
		}
		candidates := make([]int32, 0, len(extProjs))
		for id, ps := range extProjs {
			if len(ps) >= opts.MinSupport {
				candidates = append(candidates, id)
			}
		}
		sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })
		for _, id := range candidates {
			dfs(append(pattern, id), extProjs[id])
		}
	}
	var seeds []int32
	for id := int32(0); id < numItems; id++ {
		if len(occ[id]) >= opts.MinSupport {
			seeds = append(seeds, id)
		}
	}
	for _, id := range seeds {
		dfs([]int32{id}, occ[id])
	}
	return out
}

func appendUnique(s []int, v int) []int {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

// closedOnly drops patterns that have a proper supersequence with the
// same support — C-Miner mines closed patterns to curb redundancy.
func closedOnly(ps []idPattern) []idPattern {
	var out []idPattern
	for i, p := range ps {
		closed := true
		for j, q := range ps {
			if i == j || q.support != p.support || len(q.items) <= len(p.items) {
				continue
			}
			if isSubsequence(p.items, q.items) {
				closed = false
				break
			}
		}
		if closed {
			out = append(out, p)
		}
	}
	return out
}

func isSubsequence(sub, super []int32) bool {
	i := 0
	for _, x := range super {
		if i < len(sub) && sub[i] == x {
			i++
		}
	}
	return i == len(sub)
}

func sortPatterns(ps []Pattern) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Support != ps[j].Support {
			return ps[i].Support > ps[j].Support
		}
		a, b := ps[i].Extents, ps[j].Extents
		if len(a) != len(b) {
			return len(a) > len(b)
		}
		for k := range a {
			if a[k] != b[k] {
				return a[k].Less(b[k])
			}
		}
		return false
	})
}

// Rules derives association rules from the mined patterns: each
// pattern of length >= 2 yields prefix → last-element rules with
// confidence sup(pattern)/sup(prefix), kept at or above minConfidence.
func (r *Result) Rules(minConfidence float64) []Rule {
	support := make(map[string]int, len(r.Patterns))
	for _, p := range r.Patterns {
		support[key(p.Extents)] = p.Support
	}
	var out []Rule
	for _, p := range r.Patterns {
		if len(p.Extents) < 2 {
			continue
		}
		prefix := p.Extents[:len(p.Extents)-1]
		preSup, ok := support[key(prefix)]
		if !ok || preSup == 0 {
			// The prefix may have been absorbed by the closed filter;
			// its support is at least the pattern's.
			preSup = p.Support
		}
		conf := float64(p.Support) / float64(preSup)
		if conf > 1 {
			conf = 1
		}
		if conf < minConfidence {
			continue
		}
		out = append(out, Rule{
			Antecedent: prefix,
			Consequent: p.Extents[len(p.Extents)-1],
			Support:    p.Support,
			Confidence: conf,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		return out[i].Support > out[j].Support
	})
	return out
}

func key(extents []blktrace.Extent) string {
	b := make([]byte, 0, len(extents)*12)
	for _, e := range extents {
		for shift := 0; shift < 64; shift += 8 {
			b = append(b, byte(e.Block>>shift))
		}
		for shift := 0; shift < 32; shift += 8 {
			b = append(b, byte(e.Len>>shift))
		}
	}
	return string(b)
}

// FrequentPairSet flattens patterns to unordered extent pairs (from
// every adjacent pattern element), for comparison with the pair-based
// detectors.
func (r *Result) FrequentPairSet() map[blktrace.Pair]struct{} {
	out := make(map[blktrace.Pair]struct{})
	for _, p := range r.Patterns {
		for i := 0; i+1 < len(p.Extents); i++ {
			if p.Extents[i] == p.Extents[i+1] {
				continue
			}
			out[blktrace.MakePair(p.Extents[i], p.Extents[i+1])] = struct{}{}
		}
	}
	return out
}
