package cminer

import (
	"math/rand"
	"testing"
	"testing/quick"

	"daccor/internal/blktrace"
)

func e(b uint64) blktrace.Extent { return blktrace.Extent{Block: b, Len: 1} }

// traceOf builds a trace whose request order is exactly the given
// blocks (timestamps 1 ms apart).
func traceOf(blocks ...uint64) *blktrace.Trace {
	t := &blktrace.Trace{}
	for i, b := range blocks {
		t.Append(blktrace.Event{Time: int64(i) * 1_000_000, PID: 1, Op: blktrace.OpRead,
			Extent: e(b)})
	}
	return t
}

func supportOf(res *Result, blocks ...uint64) int {
	want := make([]blktrace.Extent, len(blocks))
	for i, b := range blocks {
		want[i] = e(b)
	}
	for _, p := range res.Patterns {
		if len(p.Extents) != len(want) {
			continue
		}
		match := true
		for i := range want {
			if p.Extents[i] != want[i] {
				match = false
				break
			}
		}
		if match {
			return p.Support
		}
	}
	return 0
}

func TestOptionsValidation(t *testing.T) {
	tr := traceOf(1, 2, 3)
	bad := []Options{
		{SegmentLen: 1, MinSupport: 1},
		{Gap: -1, MinSupport: 1},
		{MinSupport: 0},
		{MinSupport: 1, MaxLen: -1},
	}
	for i, o := range bad {
		if _, err := Mine(tr, o); err == nil {
			t.Errorf("options %d: want error", i)
		}
	}
}

func TestMineKnownSequence(t *testing.T) {
	// Three segments, each containing a→b adjacent; c appears with a
	// only once.
	tr := traceOf(
		1, 2, 9, 8, // segment 1: a b . .
		1, 2, 7, 6, // segment 2: a b . .
		1, 2, 3, 5, // segment 3: a b c .
	)
	res, err := Mine(tr, Options{SegmentLen: 4, Gap: 0, MinSupport: 2, KeepNonClosed: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sequences != 3 {
		t.Fatalf("sequences = %d, want 3", res.Sequences)
	}
	if got := supportOf(res, 1, 2); got != 3 {
		t.Errorf("sup(a,b) = %d, want 3", got)
	}
	if got := supportOf(res, 1); got != 3 {
		t.Errorf("sup(a) = %d, want 3", got)
	}
	if got := supportOf(res, 2, 3); got != 0 {
		t.Errorf("sup(b,c) = %d, want 0 (below min support)", got)
	}
}

func TestGapConstraint(t *testing.T) {
	// a ... b with one intervening item: visible at gap 1, not gap 0.
	tr := traceOf(
		1, 9, 2, 0,
		1, 8, 2, 0,
	)
	strict, err := Mine(tr, Options{SegmentLen: 4, Gap: 0, MinSupport: 2, KeepNonClosed: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := supportOf(strict, 1, 2); got != 0 {
		t.Errorf("gap 0: sup(a,b) = %d, want 0", got)
	}
	loose, err := Mine(tr, Options{SegmentLen: 4, Gap: 1, MinSupport: 2, KeepNonClosed: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := supportOf(loose, 1, 2); got != 2 {
		t.Errorf("gap 1: sup(a,b) = %d, want 2", got)
	}
}

func TestSupportIsPerSequence(t *testing.T) {
	// a→b occurs twice within ONE segment: support must still be 1.
	tr := traceOf(1, 2, 1, 2)
	res, err := Mine(tr, Options{SegmentLen: 4, Gap: 0, MinSupport: 1, KeepNonClosed: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := supportOf(res, 1, 2); got != 1 {
		t.Errorf("sup(a,b) = %d, want 1 (per-sequence counting)", got)
	}
}

func TestClosedFilter(t *testing.T) {
	// a b c in every segment: a→b (support 2) is absorbed by a→b→c
	// (support 2); both remain only without the filter.
	tr := traceOf(
		1, 2, 3, 0,
		1, 2, 3, 9,
	)
	all, err := Mine(tr, Options{SegmentLen: 4, Gap: 0, MinSupport: 2, KeepNonClosed: true})
	if err != nil {
		t.Fatal(err)
	}
	closed, err := Mine(tr, Options{SegmentLen: 4, Gap: 0, MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	if supportOf(all, 1, 2) != 2 || supportOf(all, 1, 2, 3) != 2 {
		t.Fatalf("unfiltered patterns missing")
	}
	if supportOf(closed, 1, 2) != 0 {
		t.Error("closed filter kept the absorbed prefix (a,b)")
	}
	if supportOf(closed, 1, 2, 3) != 2 {
		t.Error("closed filter lost the maximal pattern")
	}
	if len(closed.Patterns) >= len(all.Patterns) {
		t.Error("closed filter removed nothing")
	}
}

func TestMaxLenCap(t *testing.T) {
	tr := traceOf(1, 2, 3, 4, 1, 2, 3, 4)
	res, err := Mine(tr, Options{SegmentLen: 4, Gap: 0, MinSupport: 2, MaxLen: 2, KeepNonClosed: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Patterns {
		if len(p.Extents) > 2 {
			t.Errorf("pattern %v exceeds MaxLen", p.Extents)
		}
	}
}

func TestRules(t *testing.T) {
	// a→b always; a→c half the time.
	tr := traceOf(
		1, 2, 0, 9,
		1, 2, 0, 8,
		1, 3, 0, 7,
		1, 2, 0, 6,
	)
	res, err := Mine(tr, Options{SegmentLen: 4, Gap: 0, MinSupport: 1, KeepNonClosed: true})
	if err != nil {
		t.Fatal(err)
	}
	rules := res.Rules(0.6)
	foundAB := false
	for _, r := range rules {
		if len(r.Antecedent) == 1 && r.Antecedent[0] == e(1) && r.Consequent == e(2) {
			foundAB = true
			if r.Confidence != 0.75 {
				t.Errorf("conf(a→b) = %v, want 0.75", r.Confidence)
			}
		}
		if len(r.Antecedent) == 1 && r.Antecedent[0] == e(1) && r.Consequent == e(3) {
			t.Error("a→c (confidence 0.25) should be filtered at 0.6")
		}
		if r.Confidence < 0.6 {
			t.Errorf("rule below threshold: %+v", r)
		}
	}
	if !foundAB {
		t.Error("a→b rule missing")
	}
}

func TestFrequentPairSet(t *testing.T) {
	tr := traceOf(1, 2, 9, 9, 1, 2, 8, 8)
	res, err := Mine(tr, Options{SegmentLen: 4, Gap: 0, MinSupport: 2, KeepNonClosed: true})
	if err != nil {
		t.Fatal(err)
	}
	pairs := res.FrequentPairSet()
	if _, ok := pairs[blktrace.MakePair(e(1), e(2))]; !ok {
		t.Error("pair (a,b) missing from FrequentPairSet")
	}
}

// bruteSupport counts sequences containing the pattern as a
// gap-constrained subsequence, by exhaustive search.
func bruteSupport(seqs [][]uint64, pattern []uint64, gap int) int {
	var matchFrom func(seq []uint64, pos, pi int) bool
	matchFrom = func(seq []uint64, pos, pi int) bool {
		if pi == len(pattern) {
			return true
		}
		hi := pos + 1 + gap
		if hi > len(seq)-1 {
			hi = len(seq) - 1
		}
		for next := pos + 1; next <= hi; next++ {
			if seq[next] == pattern[pi] && matchFrom(seq, next, pi+1) {
				return true
			}
		}
		return false
	}
	sup := 0
	for _, seq := range seqs {
		found := false
		for start, v := range seq {
			if v == pattern[0] && matchFrom(seq, start, 1) {
				found = true
				break
			}
		}
		if found {
			sup++
		}
	}
	return sup
}

// Property: every mined pattern's support matches brute-force counting,
// and no frequent pattern is missed (checked for length <= 2 to keep
// the brute force cheap).
func TestPrefixSpanMatchesBruteForceQuick(t *testing.T) {
	g := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		segLen := 4 + rng.Intn(5)
		nSeg := 2 + rng.Intn(6)
		gap := rng.Intn(3)
		minSup := 1 + rng.Intn(2)
		var blocks []uint64
		for i := 0; i < segLen*nSeg; i++ {
			blocks = append(blocks, uint64(rng.Intn(5)))
		}
		tr := traceOf(blocks...)
		res, err := Mine(tr, Options{
			SegmentLen: segLen, Gap: gap, MinSupport: minSup,
			MaxLen: 2, KeepNonClosed: true,
		})
		if err != nil {
			return false
		}
		var seqs [][]uint64
		for s := 0; s < nSeg; s++ {
			seqs = append(seqs, blocks[s*segLen:(s+1)*segLen])
		}
		// Every mined pattern's support must match brute force.
		for _, p := range res.Patterns {
			pat := make([]uint64, len(p.Extents))
			for i, ex := range p.Extents {
				pat[i] = ex.Block
			}
			if bruteSupport(seqs, pat, gap) != p.Support {
				return false
			}
		}
		// No frequent pair missed.
		for a := uint64(0); a < 5; a++ {
			for b := uint64(0); b < 5; b++ {
				sup := bruteSupport(seqs, []uint64{a, b}, gap)
				if sup >= minSup && supportOf(res, a, b) != sup {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
