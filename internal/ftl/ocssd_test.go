package ftl

import (
	"math/rand"
	"testing"
	"time"

	"daccor/internal/blktrace"
	"daccor/internal/core"
)

func coreConfig(c int) core.Config {
	return core.Config{ItemCapacity: c, PairCapacity: c}
}

func TestStripedPlacement(t *testing.T) {
	s := Striped{Chunk: 64, PUs: 4}
	if s.PU(blktrace.Extent{Block: 0, Len: 1}) != 0 {
		t.Error("chunk 0 should be PU 0")
	}
	if s.PU(blktrace.Extent{Block: 64, Len: 1}) != 1 {
		t.Error("chunk 1 should be PU 1")
	}
	if s.PU(blktrace.Extent{Block: 64 * 4, Len: 1}) != 0 {
		t.Error("striping should wrap")
	}
}

func TestAgedPlacementSkews(t *testing.T) {
	aged := Aged{Striped: Striped{Chunk: 64, PUs: 8}, Skew: 0.7, HotPUs: 2}
	counts := make([]int, 8)
	for i := 0; i < 20_000; i++ {
		e := blktrace.Extent{Block: uint64(i) * 64, Len: 1}
		counts[aged.PU(e)]++
	}
	hot := counts[0] + counts[1]
	if float64(hot)/20_000 < 0.5 {
		t.Errorf("hot PUs got %d/20000, want majority under skew 0.7", hot)
	}
	// Determinism: same extent, same PU.
	e := blktrace.Extent{Block: 12345, Len: 8}
	if aged.PU(e) != aged.PU(e) {
		t.Error("placement must be deterministic")
	}
}

func TestBurstLatency(t *testing.T) {
	cfg := OCSSDConfig{PUs: 4, PUReadLatency: 100 * time.Microsecond}
	striped := Striped{Chunk: 64, PUs: 4}
	// Four extents on four distinct PUs: fully parallel.
	burst := []blktrace.Extent{
		{Block: 0, Len: 8}, {Block: 64, Len: 8}, {Block: 128, Len: 8}, {Block: 192, Len: 8},
	}
	lat, err := BurstLatency(burst, striped, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if lat != 100*time.Microsecond {
		t.Errorf("parallel burst = %v, want 100µs", lat)
	}
	// Four extents on one PU: fully serial.
	same := []blktrace.Extent{
		{Block: 0, Len: 8}, {Block: 8, Len: 8}, {Block: 16, Len: 8}, {Block: 24, Len: 8},
	}
	lat, err = BurstLatency(same, striped, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if lat != 400*time.Microsecond {
		t.Errorf("serial burst = %v, want 400µs", lat)
	}
	// Degenerates.
	if lat, _ := BurstLatency(nil, striped, cfg); lat != 0 {
		t.Error("empty burst should be free")
	}
	if _, err := BurstLatency(burst, striped, OCSSDConfig{}); err == nil {
		t.Error("want error for invalid config")
	}
}

func TestCorrelationPlacementValidation(t *testing.T) {
	if _, err := NewCorrelationPlacement(CorrelationPlacementConfig{PUs: 1}); err == nil {
		t.Error("want error for 1 PU")
	}
	if _, err := NewCorrelationPlacement(CorrelationPlacementConfig{PUs: 4}); err == nil {
		t.Error("want error for missing base")
	}
	if _, err := NewCorrelationPlacement(CorrelationPlacementConfig{
		PUs: 4, Base: Striped{Chunk: 64, PUs: 4},
	}); err == nil {
		t.Error("want error for zero analyzer capacities")
	}
}

// §V.2 experiment in miniature: correlated read bursts served faster
// once the placement learns to spread each burst's members.
func TestCorrelationPlacementBeatsIllMapped(t *testing.T) {
	const (
		nGroups   = 30
		burstSize = 4
		pus       = 8
		rounds    = 80
	)
	cfg := OCSSDConfig{PUs: pus, PUReadLatency: 80 * time.Microsecond}
	// Ill-mapped base: most data crowded onto 2 of 8 PUs.
	base := Aged{Striped: Striped{Chunk: 64, PUs: pus}, Skew: 0.8, HotPUs: 2}

	rng := rand.New(rand.NewSource(3))
	groups := make([][]blktrace.Extent, nGroups)
	for g := range groups {
		groups[g] = make([]blktrace.Extent, burstSize)
		for k := range groups[g] {
			groups[g][k] = blktrace.Extent{
				Block: uint64(rng.Intn(1 << 24)),
				Len:   uint32(8 * (1 + rng.Intn(4))),
			}
		}
	}

	cp, err := NewCorrelationPlacement(CorrelationPlacementConfig{
		PUs: pus, Base: base, Analyzer: coreConfig(1024),
	})
	if err != nil {
		t.Fatal(err)
	}
	var agedTotal, corrTotal time.Duration
	var measured int
	for r := 0; r < rounds; r++ {
		for _, g := range rng.Perm(nGroups) {
			burst := groups[g]
			cp.Observe(burst)
			if r < rounds/2 {
				continue // warmup: let the placement learn
			}
			la, err := BurstLatency(burst, base, cfg)
			if err != nil {
				t.Fatal(err)
			}
			lc, err := BurstLatency(burst, cp, cfg)
			if err != nil {
				t.Fatal(err)
			}
			agedTotal += la
			corrTotal += lc
			measured++
		}
	}
	if cp.Placed() == 0 {
		t.Fatal("placement learned nothing")
	}
	if measured == 0 {
		t.Fatal("nothing measured")
	}
	meanAged := agedTotal / time.Duration(measured)
	meanCorr := corrTotal / time.Duration(measured)
	if meanCorr >= meanAged {
		t.Fatalf("correlation placement %v not faster than ill-mapped %v", meanCorr, meanAged)
	}
	speedup := float64(meanAged) / float64(meanCorr)
	// Prior work saw up to 4.2×; with skew 0.8 on 2/8 PUs and bursts of
	// 4 we expect a solid factor.
	if speedup < 1.5 {
		t.Errorf("speedup = %.2fx, want >= 1.5x (aged %v, corr %v)", speedup, meanAged, meanCorr)
	}
}

// After learning, each burst's members must land on distinct PUs.
func TestCorrelationPlacementSpreadsBurst(t *testing.T) {
	base := Striped{Chunk: 64, PUs: 4}
	cp, err := NewCorrelationPlacement(CorrelationPlacementConfig{
		PUs: 4, Base: base, Analyzer: coreConfig(256), RebuildEvery: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	burst := []blktrace.Extent{
		{Block: 0, Len: 8}, {Block: 8, Len: 8}, {Block: 16, Len: 8}, {Block: 24, Len: 8},
	} // all on PU 0 under striping
	for i := 0; i < 20; i++ {
		cp.Observe(burst)
	}
	seen := map[int]bool{}
	for _, e := range burst {
		seen[cp.PU(e)] = true
	}
	if len(seen) != 4 {
		t.Errorf("burst spread over %d PUs, want 4", len(seen))
	}
}
