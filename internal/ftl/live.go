package ftl

import (
	"fmt"
	"sync"

	"daccor/internal/blktrace"
	"daccor/internal/core"
)

// RuleStreams is the push-fed variant of CorrelationStreams: instead
// of embedding its own analyzer, it is driven by the correlation pairs
// learned elsewhere — typically the engine's live snapshot arriving
// over a /v1/watch stream. SetPairs regroups (the same union-find and
// sticky stream pinning as CorrelationStreams) and swaps the index
// atomically; Assign on the write hot path never blocks behind an
// update.
type RuleStreams struct {
	streams int

	mu          sync.RWMutex
	groupStream map[blktrace.Extent]int
	repStream   map[blktrace.Extent]int
	updates     uint64
}

// NewRuleStreams returns an assigner with no groups yet (everything
// maps to stream 0 until SetPairs is called). Stream 0 stays reserved
// for unclassified writes, so streams must be >= 2.
func NewRuleStreams(streams int) (*RuleStreams, error) {
	if streams < 2 {
		return nil, fmt.Errorf("ftl: rule streams need >= 2 streams (got %d)", streams)
	}
	return &RuleStreams{
		streams:     streams,
		groupStream: make(map[blktrace.Extent]int),
		repStream:   make(map[blktrace.Extent]int),
	}, nil
}

// SetPairs replaces the extent→stream grouping from a fresh set of
// correlated pairs (e.g. a watch delivery's snapshot). Groups that
// survive from the previous set keep their streams.
func (r *RuleStreams) SetPairs(pairs []core.PairCount) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.groupStream, r.repStream = assignStreams(pairs, r.streams, r.repStream)
	r.updates++
}

// Observe implements StreamAssigner (no-op: learning happens in the
// characterizer this assigner subscribes to).
func (r *RuleStreams) Observe([]blktrace.Extent) {}

// Assign implements StreamAssigner: grouped extents get their group's
// stream (1..streams-1); everything else goes to stream 0.
func (r *RuleStreams) Assign(e blktrace.Extent) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if s, ok := r.groupStream[e]; ok {
		return s
	}
	return 0
}

// Groups returns the number of extents currently pinned to a stream.
func (r *RuleStreams) Groups() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.groupStream)
}

// Updates reports how many pair sets have been installed.
func (r *RuleStreams) Updates() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.updates
}
