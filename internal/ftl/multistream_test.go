package ftl

import (
	"math/rand"
	"testing"

	"daccor/internal/blktrace"
)

func mustSSD(t *testing.T, cfg SSDConfig) *SSD {
	t.Helper()
	s, err := NewSSD(cfg)
	if err != nil {
		t.Fatalf("NewSSD: %v", err)
	}
	return s
}

func TestPageMapping(t *testing.T) {
	if PageOf(0) != 0 || PageOf(7) != 0 || PageOf(8) != 1 {
		t.Error("PageOf wrong")
	}
	f, l := PagesOf(blktrace.Extent{Block: 6, Len: 4}) // blocks 6..9 -> pages 0..1
	if f != 0 || l != 1 {
		t.Errorf("PagesOf = [%d,%d]", f, l)
	}
	f, l = PagesOf(blktrace.Extent{Block: 8, Len: 8}) // exactly page 1
	if f != 1 || l != 1 {
		t.Errorf("PagesOf aligned = [%d,%d]", f, l)
	}
}

func TestSSDConfigValidation(t *testing.T) {
	bad := []SSDConfig{
		{EUs: 2, PagesPerEU: 4, Streams: 1},
		{EUs: 16, PagesPerEU: 0, Streams: 1},
		{EUs: 16, PagesPerEU: 4, Streams: 0},
		{EUs: 8, PagesPerEU: 4, Streams: 7},
		{EUs: 16, PagesPerEU: 4, Streams: 2, GCFreeTarget: 14},
	}
	for i, cfg := range bad {
		if _, err := NewSSD(cfg); err == nil {
			t.Errorf("config %d: want error", i)
		}
	}
}

func TestWriteReadbackMapping(t *testing.T) {
	s := mustSSD(t, SSDConfig{EUs: 16, PagesPerEU: 8, Streams: 2})
	if err := s.WritePage(5, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.WritePage(5, 0); err != nil { // overwrite invalidates
		t.Fatal(err)
	}
	st := s.Stats()
	if st.HostPages != 2 || st.DevicePages != 2 {
		t.Errorf("stats = %+v", st)
	}
	if s.WAF() != 1.0 {
		t.Errorf("WAF before GC = %v, want 1", s.WAF())
	}
	loc, ok := s.l2p[5]
	if !ok {
		t.Fatal("page lost")
	}
	if s.eus[loc.eu].pages[loc.slot] != 5 {
		t.Error("reverse mapping broken")
	}
	if s.eus[loc.eu].valid != 1 {
		t.Errorf("valid count = %d, want 1 after overwrite", s.eus[loc.eu].valid)
	}
}

func TestWriteExtentSpansPages(t *testing.T) {
	s := mustSSD(t, SSDConfig{EUs: 16, PagesPerEU: 8, Streams: 1})
	// 32 blocks = 4 pages.
	if err := s.WriteExtent(blktrace.Extent{Block: 0, Len: 32}, 0); err != nil {
		t.Fatal(err)
	}
	if s.Stats().HostPages != 4 {
		t.Errorf("HostPages = %d, want 4", s.Stats().HostPages)
	}
}

func TestWriteInvalidStream(t *testing.T) {
	s := mustSSD(t, SSDConfig{EUs: 16, PagesPerEU: 8, Streams: 2})
	if err := s.WritePage(0, 2); err == nil {
		t.Error("want error for out-of-range stream")
	}
	if err := s.WritePage(0, -1); err == nil {
		t.Error("want error for negative stream")
	}
}

func TestGCReclaimsAndAmplifies(t *testing.T) {
	s := mustSSD(t, SSDConfig{EUs: 16, PagesPerEU: 16, Streams: 2})
	cap := s.LogicalCapacityPages()
	if cap <= 0 {
		t.Fatal("no logical capacity")
	}
	// Overwrite a working set repeatedly: far more host pages than the
	// device holds, forcing GC.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < cap*10; i++ {
		if err := s.WritePage(uint64(rng.Intn(cap)), 0); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	st := s.Stats()
	if st.GCRuns == 0 || st.Erases == 0 {
		t.Fatalf("GC never ran: %+v", st)
	}
	if st.WAF <= 1.0 {
		t.Errorf("WAF = %v, want > 1 under random overwrites", st.WAF)
	}
	// Mapping integrity: every live logical page maps to a slot holding it.
	for lpn, loc := range s.l2p {
		if s.eus[loc.eu].pages[loc.slot] != lpn {
			t.Fatalf("broken mapping for lpn %d", lpn)
		}
	}
}

func TestOverfillFailsCleanly(t *testing.T) {
	s := mustSSD(t, SSDConfig{EUs: 8, PagesPerEU: 4, Streams: 1})
	var err error
	// Write more distinct pages than physical capacity: must error, not hang.
	for lpn := uint64(0); lpn < uint64(8*4+10) && err == nil; lpn++ {
		err = s.WritePage(lpn, 0)
	}
	if err == nil {
		t.Fatal("want overfill error")
	}
}

// gcWorkload drives the §V.1 experiment. Correlated write groups —
// sets of pages always rewritten together, i.e. sharing a death time —
// are rewritten as units by several concurrent writers whose pages
// interleave at the device (the multi-tenant block layer the paper
// targets). Groups span a whole erase unit, so death-time-aware stream
// assignment lets each EU die wholesale, while a single append point
// weaves concurrent groups into every EU and pays relocation for the
// still-live remainder at every collection.
func gcWorkload(t *testing.T, s *SSD, assigner StreamAssigner, seed int64) float64 {
	t.Helper()
	const (
		groups     = 24
		groupPages = 32 // one erase unit's worth
		writers    = 4  // concurrent rewrite operations
		totalOps   = 1500
	)
	extents := func(g int) []blktrace.Extent {
		out := make([]blktrace.Extent, groupPages)
		for k := range out {
			out[k] = blktrace.Extent{
				Block: uint64((g*groupPages + k) * BlocksPerPage),
				Len:   BlocksPerPage,
			}
		}
		return out
	}
	write := func(e blktrace.Extent) {
		if err := s.WriteExtent(e, assigner.Assign(e)); err != nil {
			t.Fatal(err)
		}
	}
	// Populate every group once, sequentially.
	for g := 0; g < groups; g++ {
		assigner.Observe(extents(g))
		for _, e := range extents(g) {
			write(e)
		}
	}
	// Concurrent rewrite phase: `writers` in-flight group rewrites,
	// one page at a time in random interleaving.
	rng := rand.New(rand.NewSource(seed))
	type op struct{ pending []blktrace.Extent }
	started := 0
	startOp := func() *op {
		g := rng.Intn(groups)
		assigner.Observe(extents(g))
		started++
		return &op{pending: extents(g)}
	}
	var active []*op
	for len(active) < writers {
		active = append(active, startOp())
	}
	warmup := totalOps / 5
	for len(active) > 0 {
		if started == warmup {
			// Measure steady state: learning assigners converge during
			// warmup, and the baseline is unaffected by the reset.
			s.ResetCounters()
			started++ // reset only once
		}
		i := rng.Intn(len(active))
		o := active[i]
		write(o.pending[0])
		o.pending = o.pending[1:]
		if len(o.pending) == 0 {
			if started < totalOps {
				active[i] = startOp()
			} else {
				active = append(active[:i], active[i+1:]...)
			}
		}
	}
	return s.WAF()
}

// pretrain shows the assigner every group a few times so its stream
// map is converged, modelling a characterization framework that has
// been running continuously (the paper's deployment model). Starting
// cold instead costs a one-time transient: the first few mis-assigned
// writes leave erase units mixing two groups' pages, which elevates
// WAF until those units churn out.
func pretrain(corr *CorrelationStreams) {
	for r := 0; r < 5; r++ {
		for g := 0; g < 24; g++ {
			tx := make([]blktrace.Extent, 32)
			for k := range tx {
				tx[k] = blktrace.Extent{Block: uint64((g*32 + k) * BlocksPerPage), Len: BlocksPerPage}
			}
			corr.Observe(tx)
		}
	}
}

// The §V.1 claim: correlation-aware stream assignment cuts GC overhead
// versus a conventional single append point under concurrent correlated
// writes.
func TestCorrelationStreamsReduceWAF(t *testing.T) {
	// Live set: 24 groups × 32 pages = 768 of 1536 physical pages; the
	// writable pool (after the free reserve and the 2×8 open append
	// points) is ≈80% utilised — real GC pressure without livelock.
	cfg := SSDConfig{EUs: 48, PagesPerEU: 32, Streams: 8}

	single := mustSSD(t, cfg)
	wafSingle := gcWorkload(t, single, SingleStream{}, 7)

	corr, err := NewCorrelationStreams(CorrelationStreamsConfig{
		Streams:      8,
		Analyzer:     coreConfig(16384),
		MinSupport:   2,
		RebuildEvery: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	pretrain(corr)
	ssd2 := mustSSD(t, cfg)
	wafCorr := gcWorkload(t, ssd2, corr, 7)

	if corr.Groups() == 0 {
		t.Fatal("assigner learned no groups")
	}
	if wafSingle <= 1.05 {
		t.Fatalf("baseline WAF %.3f: workload did not stress GC", wafSingle)
	}
	if wafCorr >= wafSingle {
		t.Fatalf("correlation WAF %.3f not better than single-stream %.3f", wafCorr, wafSingle)
	}
	// Compare amplification *overhead* (WAF − 1): the relocation work
	// eliminated is what matters. The converged assigner should remove
	// the bulk of it (near-wholesale erase-unit deaths).
	if ratio := (wafSingle - 1) / (wafCorr - 1); ratio < 2 {
		t.Errorf("GC overhead only cut %.2fx (single %.3f, corr %.3f)",
			ratio, wafSingle, wafCorr)
	}
	// A death-time-blind spreader must not be credited: hashing by
	// address across the same streams makes WAF *worse* than a single
	// append point on this workload.
	hashSSD := mustSSD(t, cfg)
	wafHash := gcWorkload(t, hashSSD, HashStreams{Streams: 8}, 7)
	if wafHash <= wafSingle {
		t.Errorf("hash streams WAF %.3f unexpectedly beat single %.3f", wafHash, wafSingle)
	}
}

// Starting cold, the learner must converge quickly: stream-0
// (unclassified) writes should be confined to the very beginning of
// the run.
func TestCorrelationStreamsConvergeOnline(t *testing.T) {
	cfg := SSDConfig{EUs: 48, PagesPerEU: 32, Streams: 8}
	corr, err := NewCorrelationStreams(CorrelationStreamsConfig{
		Streams:      8,
		Analyzer:     coreConfig(16384),
		MinSupport:   2,
		RebuildEvery: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	counter := &zeroCounter{inner: corr}
	s := mustSSD(t, cfg)
	gcWorkload(t, s, counter, 7)
	early := counter.calls / 10
	if counter.lastZero > early {
		t.Errorf("last unclassified write at call %d of %d, want within first %d",
			counter.lastZero, counter.calls, early)
	}
}

type zeroCounter struct {
	inner    StreamAssigner
	calls    int
	lastZero int
}

func (z *zeroCounter) Observe(tx []blktrace.Extent) { z.inner.Observe(tx) }
func (z *zeroCounter) Assign(e blktrace.Extent) int {
	s := z.inner.Assign(e)
	z.calls++
	if s == 0 {
		z.lastZero = z.calls
	}
	return s
}
