package ftl

import (
	"fmt"
	"sort"

	"daccor/internal/blktrace"
	"daccor/internal/core"
)

// A StreamAssigner decides which multi-stream SSD stream a write extent
// goes to. Observe feeds it the write transactions the monitoring
// module produces, so learning assigners can adapt online.
type StreamAssigner interface {
	// Observe sees one write transaction (deduplicated extents).
	Observe(tx []blktrace.Extent)
	// Assign returns the stream for a write extent, in [0, streams).
	Assign(e blktrace.Extent) int
}

// SingleStream models a conventional SSD: every write goes to the one
// append point. It is the baseline whose WAF the paper's optimization
// is meant to beat.
type SingleStream struct{}

// Observe implements StreamAssigner (no-op).
func (SingleStream) Observe([]blktrace.Extent) {}

// Assign implements StreamAssigner.
func (SingleStream) Assign(blktrace.Extent) int { return 0 }

// HashStreams spreads writes across streams by logical address — a
// locality-blind policy included as a second baseline (it separates
// data but not by death time).
type HashStreams struct {
	Streams int
}

// Observe implements StreamAssigner (no-op).
func (HashStreams) Observe([]blktrace.Extent) {}

// Assign implements StreamAssigner.
func (h HashStreams) Assign(e blktrace.Extent) int {
	// Fibonacci hash on the page number.
	return int((PageOf(e.Block) * 11400714819323198485) % uint64(h.Streams))
}

// CorrelationStreams implements the paper's §V.1 policy: the online
// analyzer watches write transactions; extents connected by frequent
// correlations are grouped (union-find over the correlation table's
// frequent pairs) and each group is pinned to a stream, so pages
// predicted to die together share erase units.
type CorrelationStreams struct {
	streams  int
	analyzer *core.Analyzer

	rebuildEvery int
	sinceRebuild int
	minSupport   uint32

	groupStream map[blktrace.Extent]int
	// repStream pins each learned group (by canonical representative)
	// to its stream across rebuilds.
	repStream map[blktrace.Extent]int
}

// CorrelationStreamsConfig configures the learning assigner.
type CorrelationStreamsConfig struct {
	// Streams is the SSD's stream count; stream 0 is reserved for
	// unclassified (cold/unknown) writes.
	Streams int
	// Analyzer configures the embedded online analyzer.
	Analyzer core.Config
	// MinSupport is the pair counter required before a correlation
	// drives grouping; 0 means 3.
	MinSupport uint32
	// RebuildEvery is the number of observed transactions between
	// group rebuilds; 0 means 64.
	RebuildEvery int
}

// NewCorrelationStreams returns an assigner that has seen nothing yet
// (everything maps to stream 0 until correlations emerge).
func NewCorrelationStreams(cfg CorrelationStreamsConfig) (*CorrelationStreams, error) {
	if cfg.Streams < 2 {
		return nil, fmt.Errorf("ftl: correlation streams need >= 2 streams (got %d)", cfg.Streams)
	}
	if cfg.MinSupport == 0 {
		cfg.MinSupport = 3
	}
	if cfg.RebuildEvery == 0 {
		cfg.RebuildEvery = 64
	}
	analyzer, err := core.NewAnalyzer(cfg.Analyzer)
	if err != nil {
		return nil, err
	}
	return &CorrelationStreams{
		streams:      cfg.Streams,
		analyzer:     analyzer,
		rebuildEvery: cfg.RebuildEvery,
		minSupport:   cfg.MinSupport,
		groupStream:  make(map[blktrace.Extent]int),
		repStream:    make(map[blktrace.Extent]int),
	}, nil
}

// Observe implements StreamAssigner: it feeds the analyzer and
// periodically rebuilds the extent→stream grouping.
func (c *CorrelationStreams) Observe(tx []blktrace.Extent) {
	c.analyzer.Process(tx)
	c.sinceRebuild++
	if c.sinceRebuild >= c.rebuildEvery {
		c.rebuild()
		c.sinceRebuild = 0
	}
}

// Assign implements StreamAssigner: grouped extents get their group's
// stream (1..streams-1); everything else goes to stream 0.
func (c *CorrelationStreams) Assign(e blktrace.Extent) int {
	if s, ok := c.groupStream[e]; ok {
		return s
	}
	return 0
}

// Groups returns the number of extents currently pinned to a stream.
func (c *CorrelationStreams) Groups() int { return len(c.groupStream) }

// Analyzer exposes the embedded analyzer (for stats).
func (c *CorrelationStreams) Analyzer() *core.Analyzer { return c.analyzer }

// rebuild runs union-find over the frequent pairs and maps each group
// to one of the non-reserved streams.
func (c *CorrelationStreams) rebuild() {
	snap := c.analyzer.Snapshot(c.minSupport)
	c.groupStream, c.repStream = assignStreams(snap.Pairs, c.streams, c.repStream)
}

// assignStreams is the grouping shared by CorrelationStreams (embedded
// analyzer) and RuleStreams (live-fed): union-find over correlated
// pairs, each group pinned to a non-reserved stream. prevRep carries
// the previous group→stream pinning so placements stay sticky across
// rebuilds; the returned maps are the new extent→stream index and
// pinning.
func assignStreams(pairs []core.PairCount, streams int, prevRep map[blktrace.Extent]int) (map[blktrace.Extent]int, map[blktrace.Extent]int) {
	parent := make(map[blktrace.Extent]blktrace.Extent)
	var find func(x blktrace.Extent) blktrace.Extent
	find = func(x blktrace.Extent) blktrace.Extent {
		p, ok := parent[x]
		if !ok {
			parent[x] = x
			return x
		}
		if p == x {
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	union := func(a, b blktrace.Extent) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, pc := range pairs {
		union(pc.Pair.A, pc.Pair.B)
	}
	// Map each group to a stream via a hash of its canonical
	// representative (the group's minimum extent). The choice must be
	// *stable across rebuilds*: if a group's stream changed whenever
	// counter order shifted, its pages would smear across streams and
	// erase units, forfeiting exactly the death-time colocation the
	// policy exists to provide.
	//
	// Stream 0 stays reserved for unclassified writes, so learned
	// groups never share erase units with unknown-lifetime data. GC
	// relocation is per-stream inside the device, so no stream needs
	// to be reserved for it.
	span := streams - 1
	members := make(map[blktrace.Extent][]blktrace.Extent)
	for _, pc := range pairs {
		for _, e := range [...]blktrace.Extent{pc.Pair.A, pc.Pair.B} {
			root := find(e)
			members[root] = append(members[root], e)
		}
	}
	// Order groups by canonical representative for determinism.
	type group struct {
		rep blktrace.Extent
		ms  []blktrace.Extent
	}
	groups := make([]group, 0, len(members))
	for _, ms := range members {
		rep := ms[0]
		for _, e := range ms[1:] {
			if e.Less(rep) {
				rep = e
			}
		}
		groups = append(groups, group{rep: rep, ms: ms})
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].rep.Less(groups[j].rep) })

	// First pass: sticky groups keep their streams and establish the
	// load picture; second pass places new groups on the least-loaded
	// stream. (Tallying loads lazily would let a new group grab a
	// stream whose sticky occupants simply hadn't been counted yet.)
	load := make([]int, span)
	assign := make(map[blktrace.Extent]int)
	repStream := make(map[blktrace.Extent]int, len(groups))
	for _, g := range groups {
		if stream, ok := prevRep[g.rep]; ok {
			load[stream-1]++
			repStream[g.rep] = stream
			for _, e := range g.ms {
				assign[e] = stream
			}
		}
	}
	for _, g := range groups {
		if _, ok := repStream[g.rep]; ok {
			continue
		}
		best := 0
		for i := 1; i < span; i++ {
			if load[i] < load[best] {
				best = i
			}
		}
		stream := 1 + best
		load[best]++
		repStream[g.rep] = stream
		for _, e := range g.ms {
			assign[e] = stream
		}
	}
	return assign, repStream
}
