package ftl

import (
	"fmt"
	"time"

	"daccor/internal/blktrace"
	"daccor/internal/core"
)

// OCSSDConfig models an open-channel SSD's parallelism for §V.2: PUs
// fully independent parallel units, each serving one read at a time at
// PUReadLatency per request.
type OCSSDConfig struct {
	PUs           int
	PUReadLatency time.Duration
}

func (c OCSSDConfig) validate() error {
	if c.PUs < 1 || c.PUReadLatency <= 0 {
		return fmt.Errorf("ftl: invalid OC-SSD config %+v", c)
	}
	return nil
}

// A Placement maps an extent to the parallel unit holding it.
type Placement interface {
	PU(e blktrace.Extent) int
}

// Striped is RAID-0-like initial placement: consecutive chunks go to
// consecutive PUs — "only effective for large sequential accesses".
type Striped struct {
	Chunk uint64 // chunk size in blocks
	PUs   int
}

// PU implements Placement.
func (s Striped) PU(e blktrace.Extent) int {
	return int((e.Block / s.Chunk) % uint64(s.PUs))
}

// Aged models the drifted logical-to-physical mapping of a worn device
// ("the initial striping may end up being largely skewed"): a fraction
// Skew of extents collapses onto HotPUs units, the rest stay striped.
// Prior work measured up to 4.2× higher latency from such ill-mapped
// layouts.
type Aged struct {
	Striped
	Skew   float64 // fraction of extents crowded onto the hot PUs
	HotPUs int
}

// PU implements Placement.
func (a Aged) PU(e blktrace.Extent) int {
	h := PageOf(e.Block) * 11400714819323198485
	// Deterministic per-extent "randomness" from the hash's top bits.
	if float64(h>>40%1000)/1000 < a.Skew {
		return int(h % uint64(a.HotPUs))
	}
	return a.Striped.PU(e)
}

// CorrelationPlacement implements §V.2: frequently co-read extents are
// spread across different PUs so a correlated burst is served in
// parallel. Extents without a learned slot fall back to the base
// placement.
type CorrelationPlacement struct {
	pus      int
	base     Placement
	analyzer *core.Analyzer

	rebuildEvery int
	sinceRebuild int
	minSupport   uint32

	slot map[blktrace.Extent]int
}

// CorrelationPlacementConfig configures the learning placement.
type CorrelationPlacementConfig struct {
	PUs  int
	Base Placement
	// Analyzer configures the embedded online analyzer fed with *read*
	// transactions.
	Analyzer     core.Config
	MinSupport   uint32 // 0 means 3
	RebuildEvery int    // 0 means 64
}

// NewCorrelationPlacement returns a placement that initially defers
// entirely to the base.
func NewCorrelationPlacement(cfg CorrelationPlacementConfig) (*CorrelationPlacement, error) {
	if cfg.PUs < 2 {
		return nil, fmt.Errorf("ftl: correlation placement needs >= 2 PUs (got %d)", cfg.PUs)
	}
	if cfg.Base == nil {
		return nil, fmt.Errorf("ftl: correlation placement needs a base placement")
	}
	if cfg.MinSupport == 0 {
		cfg.MinSupport = 3
	}
	if cfg.RebuildEvery == 0 {
		cfg.RebuildEvery = 64
	}
	analyzer, err := core.NewAnalyzer(cfg.Analyzer)
	if err != nil {
		return nil, err
	}
	return &CorrelationPlacement{
		pus:          cfg.PUs,
		base:         cfg.Base,
		analyzer:     analyzer,
		rebuildEvery: cfg.RebuildEvery,
		minSupport:   cfg.MinSupport,
		slot:         make(map[blktrace.Extent]int),
	}, nil
}

// Observe feeds one read transaction.
func (c *CorrelationPlacement) Observe(tx []blktrace.Extent) {
	c.analyzer.Process(tx)
	c.sinceRebuild++
	if c.sinceRebuild >= c.rebuildEvery {
		c.rebuild()
		c.sinceRebuild = 0
	}
}

// PU implements Placement.
func (c *CorrelationPlacement) PU(e blktrace.Extent) int {
	if pu, ok := c.slot[e]; ok {
		return pu
	}
	return c.base.PU(e)
}

// Placed returns how many extents have learned slots.
func (c *CorrelationPlacement) Placed() int { return len(c.slot) }

// rebuild walks the frequent pairs in descending strength and assigns
// each newly seen extent the least-loaded PU among those not already
// used by its correlated partners — a greedy spreading heuristic.
func (c *CorrelationPlacement) rebuild() {
	snap := c.analyzer.Snapshot(c.minSupport)
	slot := make(map[blktrace.Extent]int)
	partners := make(map[blktrace.Extent][]blktrace.Extent)
	for _, pc := range snap.Pairs {
		partners[pc.Pair.A] = append(partners[pc.Pair.A], pc.Pair.B)
		partners[pc.Pair.B] = append(partners[pc.Pair.B], pc.Pair.A)
	}
	load := make([]int, c.pus)
	for _, pc := range snap.Pairs {
		for _, e := range [...]blktrace.Extent{pc.Pair.A, pc.Pair.B} {
			if _, done := slot[e]; done {
				continue
			}
			used := make([]bool, c.pus)
			for _, p := range partners[e] {
				if pu, ok := slot[p]; ok {
					used[pu] = true
				}
			}
			best, bestLoad := -1, int(^uint(0)>>1)
			for pu := 0; pu < c.pus; pu++ {
				if used[pu] {
					continue
				}
				if load[pu] < bestLoad {
					best, bestLoad = pu, load[pu]
				}
			}
			if best < 0 { // all PUs taken by partners: pick global min
				for pu := 0; pu < c.pus; pu++ {
					if load[pu] < bestLoad {
						best, bestLoad = pu, load[pu]
					}
				}
			}
			slot[e] = best
			load[best]++
		}
	}
	c.slot = slot
}

// BurstLatency returns the time to serve a set of reads issued
// together: each PU serves its share serially, PUs run in parallel, so
// the burst costs the maximum per-PU count times the per-read latency.
func BurstLatency(burst []blktrace.Extent, p Placement, cfg OCSSDConfig) (time.Duration, error) {
	if err := cfg.validate(); err != nil {
		return 0, err
	}
	if len(burst) == 0 {
		return 0, nil
	}
	counts := make([]int, cfg.PUs)
	for _, e := range burst {
		pu := p.PU(e)
		if pu < 0 || pu >= cfg.PUs {
			return 0, fmt.Errorf("ftl: placement returned PU %d outside [0,%d)", pu, cfg.PUs)
		}
		counts[pu]++
	}
	max := 0
	for _, n := range counts {
		if n > max {
			max = n
		}
	}
	return time.Duration(max) * cfg.PUReadLatency, nil
}
