// Package ftl implements the paper's Section V automatic-optimization
// scenarios as working simulations:
//
//   - A multi-stream SSD flash translation layer (§V.1): a page-mapped
//     FTL with erase units, greedy garbage collection, and multiple
//     write streams. Write-amplification factor (WAF) is measured for
//     different stream-assignment policies, including one driven by the
//     online correlation analyzer's death-time prediction ("if two or
//     more data chunks were frequently written together in the past,
//     their death times will be similar").
//   - An open-channel SSD parallel-unit model (§V.2): read bursts cost
//     the maximum per-PU queue length, and a correlation-aware
//     placement spreads frequently co-read extents across PUs.
package ftl

import (
	"fmt"

	"daccor/internal/blktrace"
)

// BlocksPerPage maps 512 B blocks onto 4 KB flash pages, the pblk
// mapping granularity the paper cites.
const BlocksPerPage = 8

// PageOf returns the logical page number containing a block.
func PageOf(block uint64) uint64 { return block / BlocksPerPage }

// PagesOf returns the logical page range [first, last] covered by an
// extent.
func PagesOf(e blktrace.Extent) (first, last uint64) {
	return PageOf(e.Block), PageOf(e.End() - 1)
}

// SSDConfig parameterises the multi-stream FTL simulation.
type SSDConfig struct {
	// EUs is the number of erase units on the device.
	EUs int
	// PagesPerEU is the erase-unit size in 4 KB pages.
	PagesPerEU int
	// Streams is the number of host-visible write streams (open erase
	// blocks). 1 models a conventional single-append-point SSD.
	Streams int
	// GCFreeTarget triggers garbage collection when the free-EU pool
	// drops below it; GC runs until the pool recovers. It must leave
	// room for the open EUs. 0 means Streams+2.
	GCFreeTarget int
}

func (c SSDConfig) validate() error {
	if c.EUs < 4 || c.PagesPerEU < 1 {
		return fmt.Errorf("ftl: need at least 4 EUs and 1 page/EU (got %d, %d)", c.EUs, c.PagesPerEU)
	}
	if c.Streams < 1 {
		return fmt.Errorf("ftl: Streams must be >= 1 (got %d)", c.Streams)
	}
	// Each stream can hold two open EUs (host and GC append points).
	if 2*c.Streams+2 >= c.EUs {
		return fmt.Errorf("ftl: %d streams need more than %d EUs", c.Streams, c.EUs)
	}
	return nil
}

type pageLoc struct {
	eu   int
	slot int
}

type eraseUnit struct {
	pages  []uint64 // logical page per slot; invalid slots hold ^0
	valid  int
	used   int // slots written (sealed when used == PagesPerEU)
	open   bool
	stream int // stream that owns (or last owned) this EU
}

const invalidLPN = ^uint64(0)

// SSD is the multi-stream FTL simulation. Not safe for concurrent use.
type SSD struct {
	cfg    SSDConfig
	eus    []eraseUnit
	l2p    map[uint64]pageLoc
	free   []int // erased, unopened EUs
	open   []int // host open EU per stream (-1 if none)
	gcOpen []int // GC-relocation open EU per stream (-1 if none)

	hostPages   uint64 // pages written by the host
	devicePages uint64 // pages written to flash (host + GC relocation)
	gcRuns      uint64
	erases      uint64
	relocated   uint64 // pages moved by GC (devicePages - hostPages)
	inGC        bool   // guards against re-entrant collection
}

// NewSSD returns a freshly erased device.
func NewSSD(cfg SSDConfig) (*SSD, error) {
	if cfg.GCFreeTarget == 0 {
		cfg.GCFreeTarget = cfg.Streams + 2
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.GCFreeTarget >= cfg.EUs-cfg.Streams {
		return nil, fmt.Errorf("ftl: GCFreeTarget %d too high for %d EUs", cfg.GCFreeTarget, cfg.EUs)
	}
	s := &SSD{
		cfg:    cfg,
		eus:    make([]eraseUnit, cfg.EUs),
		l2p:    make(map[uint64]pageLoc),
		open:   make([]int, cfg.Streams),
		gcOpen: make([]int, cfg.Streams),
	}
	for i := range s.eus {
		s.eus[i].pages = make([]uint64, cfg.PagesPerEU)
		for j := range s.eus[i].pages {
			s.eus[i].pages[j] = invalidLPN
		}
		s.free = append(s.free, i)
	}
	for i := range s.open {
		s.open[i] = -1
		s.gcOpen[i] = -1
	}
	return s, nil
}

// LogicalCapacityPages returns how many distinct logical pages the
// device can hold while leaving the FTL working room (90% of physical
// minus open blocks and the GC reserve). Exceeding it risks GC
// livelock.
func (s *SSD) LogicalCapacityPages() int {
	return (s.cfg.EUs - 2*s.cfg.Streams - s.cfg.GCFreeTarget - 1) * s.cfg.PagesPerEU * 9 / 10
}

// WriteExtent writes every page of the extent to the given stream.
func (s *SSD) WriteExtent(e blktrace.Extent, stream int) error {
	first, last := PagesOf(e)
	for lpn := first; lpn <= last; lpn++ {
		if err := s.WritePage(lpn, stream); err != nil {
			return err
		}
	}
	return nil
}

// WritePage writes one logical page to the given stream: the previous
// physical copy (if any) is invalidated and the page is appended to the
// stream's open erase unit — "data with the same stream ID is
// guaranteed to be written together to a physically related NAND flash
// block".
func (s *SSD) WritePage(lpn uint64, stream int) error {
	if stream < 0 || stream >= s.cfg.Streams {
		return fmt.Errorf("ftl: stream %d out of range [0,%d)", stream, s.cfg.Streams)
	}
	s.hostPages++
	return s.appendPage(lpn, stream, false)
}

func (s *SSD) appendPage(lpn uint64, stream int, gc bool) error {
	// Invalidate the previous copy.
	if loc, ok := s.l2p[lpn]; ok {
		eu := &s.eus[loc.eu]
		eu.pages[loc.slot] = invalidLPN
		eu.valid--
	}
	eu, err := s.openEU(stream, gc)
	if err != nil {
		return err
	}
	u := &s.eus[eu]
	slot := u.used
	u.pages[slot] = lpn
	u.used++
	u.valid++
	s.l2p[lpn] = pageLoc{eu: eu, slot: slot}
	s.devicePages++
	if u.used == s.cfg.PagesPerEU {
		u.open = false // sealed
		if gc {
			s.gcOpen[stream] = -1
		} else {
			s.open[stream] = -1
		}
	}
	return nil
}

// openEU returns the stream's host (or GC) open EU, allocating one if
// needed. Host and GC append points are separate so relocated
// remnants never fragment the host stream's fresh erase units.
func (s *SSD) openEU(stream int, gc bool) (int, error) {
	points := s.open
	if gc {
		points = s.gcOpen
	}
	if cur := points[stream]; cur >= 0 {
		return cur, nil
	}
	// GC relocation itself opens EUs; it must draw on the reserve the
	// free target maintains rather than re-trigger collection.
	if !s.inGC && len(s.free) <= s.cfg.GCFreeTarget {
		if err := s.collectGarbage(); err != nil {
			return 0, err
		}
		// Collection may have opened an EU for this very append point;
		// reuse it rather than popping a second and orphaning the
		// first.
		if cur := points[stream]; cur >= 0 {
			return cur, nil
		}
	}
	if len(s.free) == 0 {
		return 0, fmt.Errorf("ftl: out of free erase units (device overfilled)")
	}
	eu := s.free[len(s.free)-1]
	s.free = s.free[:len(s.free)-1]
	s.eus[eu].open = true
	s.eus[eu].stream = stream
	points[stream] = eu
	return eu, nil
}

// collectGarbage greedily erases sealed EUs with the fewest valid
// pages, relocating survivors (device writes — the source of write
// amplification), until the free pool recovers.
func (s *SSD) collectGarbage() error {
	s.gcRuns++
	s.inGC = true
	defer func() { s.inGC = false }()
	for len(s.free) <= s.cfg.GCFreeTarget {
		victim := -1
		best := s.cfg.PagesPerEU + 1
		for i := range s.eus {
			u := &s.eus[i]
			if u.open || u.used < s.cfg.PagesPerEU {
				continue // open or unsealed
			}
			if u.valid < best {
				best = u.valid
				victim = i
			}
		}
		if victim < 0 {
			return fmt.Errorf("ftl: no GC victim available")
		}
		if best >= s.cfg.PagesPerEU {
			// Every sealed EU is fully valid: relocation would free
			// nothing. The logical working set exceeds the device.
			return fmt.Errorf("ftl: device overfilled, GC cannot reclaim space")
		}
		u := &s.eus[victim]
		// Relocate valid pages into the victim's stream's dedicated GC
		// append point: survivors keep their death-time neighbourhood
		// without fragmenting the stream's fresh erase units.
		gcStream := u.stream
		for slot, lpn := range u.pages {
			if lpn == invalidLPN {
				continue
			}
			u.pages[slot] = invalidLPN
			u.valid--
			delete(s.l2p, lpn)
			s.relocated++
			if err := s.appendPage(lpn, gcStream, true); err != nil {
				return err
			}
		}
		// Erase.
		u.used = 0
		u.valid = 0
		for j := range u.pages {
			u.pages[j] = invalidLPN
		}
		s.erases++
		s.free = append(s.free, victim)
	}
	return nil
}

// ResetCounters zeroes the accumulated statistics without touching the
// device state — used to exclude warmup from measurements, as the
// paper's steady-state methodology does.
func (s *SSD) ResetCounters() {
	s.hostPages, s.devicePages = 0, 0
	s.gcRuns, s.erases, s.relocated = 0, 0, 0
}

// WAF returns the write amplification factor: device page writes over
// host page writes (1.0 is ideal).
func (s *SSD) WAF() float64 {
	if s.hostPages == 0 {
		return 0
	}
	return float64(s.devicePages) / float64(s.hostPages)
}

// SSDStats summarises the device counters.
type SSDStats struct {
	HostPages, DevicePages uint64
	GCRuns, Erases         uint64
	RelocatedPages         uint64
	WAF                    float64
}

// Stats returns the device counters.
func (s *SSD) Stats() SSDStats {
	return SSDStats{
		HostPages:      s.hostPages,
		DevicePages:    s.devicePages,
		GCRuns:         s.gcRuns,
		Erases:         s.erases,
		RelocatedPages: s.relocated,
		WAF:            s.WAF(),
	}
}
