package blktrace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// The binary trace format is a fixed-size header followed by fixed-size
// little-endian records, mirroring the role of blktrace's binary per-CPU
// streams (we use a single stream; the paper's monitor merges streams
// anyway before windowing).
//
//	header:  magic "DACT" | uint16 version | uint16 reserved
//	record:  int64 time | uint32 pid | uint8 op | uint64 block | uint32 len
const (
	binaryMagic   = "DACT"
	binaryVersion = 1
	recordSize    = 8 + 4 + 1 + 8 + 4
	headerSize    = 4 + 2 + 2
)

// Codec errors.
var (
	ErrBadMagic   = errors.New("blktrace: bad magic, not a trace file")
	ErrBadVersion = errors.New("blktrace: unsupported trace version")
	ErrTruncated  = errors.New("blktrace: truncated record")
)

// Writer encodes events into the binary trace format.
type Writer struct {
	w           *bufio.Writer
	headerDone  bool
	buf         [recordSize]byte
	eventsTotal int
}

// NewWriter returns a Writer emitting to w. The header is written
// lazily on the first event (or on Flush) so that creating a writer is
// infallible.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

func (tw *Writer) writeHeader() error {
	if tw.headerDone {
		return nil
	}
	var hdr [headerSize]byte
	copy(hdr[:4], binaryMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], binaryVersion)
	if _, err := tw.w.Write(hdr[:]); err != nil {
		return err
	}
	tw.headerDone = true
	return nil
}

// Write implements Sink: it validates and encodes one event.
func (tw *Writer) Write(ev Event) error {
	if err := ev.Validate(); err != nil {
		return err
	}
	if err := tw.writeHeader(); err != nil {
		return err
	}
	b := tw.buf[:]
	binary.LittleEndian.PutUint64(b[0:8], uint64(ev.Time))
	binary.LittleEndian.PutUint32(b[8:12], ev.PID)
	b[12] = byte(ev.Op)
	binary.LittleEndian.PutUint64(b[13:21], ev.Extent.Block)
	binary.LittleEndian.PutUint32(b[21:25], ev.Extent.Len)
	if _, err := tw.w.Write(b); err != nil {
		return err
	}
	tw.eventsTotal++
	return nil
}

// Flush writes the header if no events were written and flushes
// buffered records to the underlying writer.
func (tw *Writer) Flush() error {
	if err := tw.writeHeader(); err != nil {
		return err
	}
	return tw.w.Flush()
}

// Count returns the number of events written so far.
func (tw *Writer) Count() int { return tw.eventsTotal }

// Reader decodes events from the binary trace format. It implements
// Source.
type Reader struct {
	r          *bufio.Reader
	headerDone bool
	buf        [recordSize]byte
}

// NewReader returns a Reader decoding from r. The header is checked on
// the first Next call.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

func (tr *Reader) readHeader() error {
	if tr.headerDone {
		return nil
	}
	var hdr [headerSize]byte
	if _, err := io.ReadFull(tr.r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
			return ErrBadMagic
		}
		return err
	}
	if string(hdr[:4]) != binaryMagic {
		return ErrBadMagic
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != binaryVersion {
		return fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	tr.headerDone = true
	return nil
}

// Next implements Source. It returns io.EOF cleanly at the end of the
// stream and ErrTruncated if the stream ends mid-record.
func (tr *Reader) Next() (Event, error) {
	if err := tr.readHeader(); err != nil {
		return Event{}, err
	}
	if _, err := io.ReadFull(tr.r, tr.buf[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Event{}, io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Event{}, ErrTruncated
		}
		return Event{}, err
	}
	b := tr.buf[:]
	ev := Event{
		Time: int64(binary.LittleEndian.Uint64(b[0:8])),
		PID:  binary.LittleEndian.Uint32(b[8:12]),
		Op:   Op(b[12]),
		Extent: Extent{
			Block: binary.LittleEndian.Uint64(b[13:21]),
			Len:   binary.LittleEndian.Uint32(b[21:25]),
		},
	}
	if err := ev.Validate(); err != nil {
		return Event{}, err
	}
	return ev, nil
}

// WriteTrace encodes a whole trace to w in binary format.
func WriteTrace(w io.Writer, t *Trace) error {
	tw := NewWriter(w)
	for _, ev := range t.Events {
		if err := tw.Write(ev); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// ReadTrace decodes a whole binary trace from r.
func ReadTrace(r io.Reader) (*Trace, error) {
	return ReadAll(NewReader(r))
}
