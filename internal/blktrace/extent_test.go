package blktrace

import (
	"testing"
	"testing/quick"
)

func TestExtentBytesEnd(t *testing.T) {
	e := Extent{Block: 100, Len: 4}
	if got := e.Bytes(); got != 4*BlockSize {
		t.Errorf("Bytes() = %d, want %d", got, 4*BlockSize)
	}
	if got := e.End(); got != 104 {
		t.Errorf("End() = %d, want 104", got)
	}
}

func TestExtentOverlaps(t *testing.T) {
	tests := []struct {
		a, b Extent
		want bool
	}{
		{Extent{0, 4}, Extent{4, 4}, false},   // adjacent
		{Extent{0, 5}, Extent{4, 4}, true},    // one block shared
		{Extent{10, 2}, Extent{0, 100}, true}, // contained
		{Extent{0, 1}, Extent{0, 1}, true},    // identical
		{Extent{5, 1}, Extent{7, 1}, false},   // disjoint
	}
	for _, tt := range tests {
		if got := tt.a.Overlaps(tt.b); got != tt.want {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
		if got := tt.b.Overlaps(tt.a); got != tt.want {
			t.Errorf("Overlaps not symmetric for %v, %v", tt.a, tt.b)
		}
	}
}

func TestExtentContains(t *testing.T) {
	e := Extent{Block: 100, Len: 4}
	for b, want := range map[uint64]bool{99: false, 100: true, 103: true, 104: false} {
		if got := e.Contains(b); got != want {
			t.Errorf("Contains(%d) = %v, want %v", b, got, want)
		}
	}
}

func TestExtentLessTotalOrder(t *testing.T) {
	a := Extent{Block: 1, Len: 2}
	b := Extent{Block: 1, Len: 3}
	c := Extent{Block: 2, Len: 1}
	if !a.Less(b) || !b.Less(c) || !a.Less(c) {
		t.Errorf("Less not transitive over %v %v %v", a, b, c)
	}
	if a.Less(a) {
		t.Error("Less not irreflexive")
	}
}

func TestMakePairCanonical(t *testing.T) {
	a := Extent{Block: 200, Len: 3}
	b := Extent{Block: 100, Len: 4}
	p := MakePair(a, b)
	q := MakePair(b, a)
	if p != q {
		t.Errorf("MakePair order-dependent: %v vs %v", p, q)
	}
	if !p.A.Less(p.B) {
		t.Errorf("pair not canonical: %v", p)
	}
}

func TestMakePairCanonicalQuick(t *testing.T) {
	f := func(ab, al, bb, bl uint32) bool {
		a := Extent{Block: uint64(ab), Len: al%1024 + 1}
		b := Extent{Block: uint64(bb), Len: bl%1024 + 1}
		p, q := MakePair(a, b), MakePair(b, a)
		canonical := !p.B.Less(p.A)
		return p == q && canonical
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPairContainsOther(t *testing.T) {
	a := Extent{Block: 100, Len: 4}
	b := Extent{Block: 200, Len: 3}
	p := MakePair(a, b)
	if !p.Contains(a) || !p.Contains(b) {
		t.Error("Contains should find both members")
	}
	if p.Contains(Extent{Block: 1, Len: 1}) {
		t.Error("Contains found a non-member")
	}
	if o, ok := p.Other(a); !ok || o != b {
		t.Errorf("Other(%v) = %v, %v", a, o, ok)
	}
	if o, ok := p.Other(b); !ok || o != a {
		t.Errorf("Other(%v) = %v, %v", b, o, ok)
	}
	if _, ok := p.Other(Extent{Block: 1, Len: 1}); ok {
		t.Error("Other found a non-member")
	}
}

func TestExtentString(t *testing.T) {
	if got := (Extent{Block: 100, Len: 4}).String(); got != "100+4" {
		t.Errorf("String() = %q, want 100+4", got)
	}
	got := MakePair(Extent{200, 3}, Extent{100, 4}).String()
	if got != "(100+4, 200+3)" {
		t.Errorf("Pair String() = %q", got)
	}
}

func TestBlockPairArithmetic(t *testing.T) {
	// The paper's Fig. 2: extents 100+4 and 200+3 imply
	// C(4,2)+C(3,2) = 9 intra and 4×3 = 12 inter block correlations.
	p := MakePair(Extent{Block: 100, Len: 4}, Extent{Block: 200, Len: 3})
	if got := p.IntraBlockPairs(); got != 9 {
		t.Errorf("IntraBlockPairs = %d, want 9", got)
	}
	if got := p.InterBlockPairs(); got != 12 {
		t.Errorf("InterBlockPairs = %d, want 12", got)
	}
	if got := p.BlockPairs(); got != 21 {
		t.Errorf("BlockPairs = %d, want 21", got)
	}
	// Single blocks: no intra pairs, one inter pair.
	q := MakePair(Extent{Block: 1, Len: 1}, Extent{Block: 2, Len: 1})
	if q.IntraBlockPairs() != 0 || q.InterBlockPairs() != 1 {
		t.Errorf("single-block pair arithmetic wrong: %d intra, %d inter",
			q.IntraBlockPairs(), q.InterBlockPairs())
	}
}
