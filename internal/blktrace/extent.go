// Package blktrace models Linux block-layer trace events and provides
// binary and text codecs for them.
//
// The package plays the role of the blktrace/blkparse toolchain in the
// paper: it defines the issue-event tuple (timestamp, process ID,
// operation, starting block, size) that the real-time monitoring module
// consumes, a compact binary on-disk format analogous to blktrace's
// per-CPU binary streams, and a blkparse-like text format for human
// inspection. Event producers are pluggable: the workload generators and
// the storage-device simulator both emit Events through the same Source
// interface a kernel tracer would.
package blktrace

import "fmt"

// BlockSize is the size in bytes of one block (a 512-byte sector, the
// unit used by the Linux block layer and by the paper's extents).
const BlockSize = 512

// Extent is a contiguous run of blocks: a starting block number and a
// length in blocks. Extents are the paper's unit of correlation; I/O
// requests in the block layer natively arrive in this shape.
//
// The paper sizes a stored extent at 12 bytes (64-bit block, 32-bit
// length); Extent matches that layout.
type Extent struct {
	Block uint64 // starting block number
	Len   uint32 // length in blocks; always >= 1 for a valid extent
}

// Bytes returns the extent's size in bytes.
func (e Extent) Bytes() uint64 { return uint64(e.Len) * BlockSize }

// End returns the first block past the extent.
func (e Extent) End() uint64 { return e.Block + uint64(e.Len) }

// Overlaps reports whether e and o share at least one block.
func (e Extent) Overlaps(o Extent) bool {
	return e.Block < o.End() && o.Block < e.End()
}

// Contains reports whether block b lies within the extent.
func (e Extent) Contains(b uint64) bool {
	return b >= e.Block && b < e.End()
}

// Less orders extents by starting block, then by length. It is the
// canonical order used to normalize extent pairs.
func (e Extent) Less(o Extent) bool {
	if e.Block != o.Block {
		return e.Block < o.Block
	}
	return e.Len < o.Len
}

// Compare is the three-way form of Less, usable with slices.SortFunc:
// negative when e < o, zero when equal, positive when e > o.
func (e Extent) Compare(o Extent) int {
	switch {
	case e.Block < o.Block:
		return -1
	case e.Block > o.Block:
		return 1
	case e.Len < o.Len:
		return -1
	case e.Len > o.Len:
		return 1
	}
	return 0
}

// String formats the extent as "block+len", e.g. "100+4", matching the
// paper's notation.
func (e Extent) String() string {
	return fmt.Sprintf("%d+%d", e.Block, e.Len)
}

// Pair is an unordered pair of extents, stored in canonical order
// (A.Less(B) or A == B). It is the key type of the correlation table.
// The paper sizes a stored pair entry at 28 bytes: two 12-byte extents
// plus a 32-bit counter.
type Pair struct {
	A, B Extent
}

// MakePair returns the canonical Pair for two extents, swapping them if
// needed so that the result is order-independent.
func MakePair(a, b Extent) Pair {
	if b.Less(a) {
		a, b = b, a
	}
	return Pair{A: a, B: b}
}

// Compare orders pairs canonically: by A, then by B. Negative when
// p < o, zero when equal, positive when p > o.
func (p Pair) Compare(o Pair) int {
	if c := p.A.Compare(o.A); c != 0 {
		return c
	}
	return p.B.Compare(o.B)
}

// Contains reports whether the pair includes extent e.
func (p Pair) Contains(e Extent) bool { return p.A == e || p.B == e }

// Other returns the pair's other extent given one member, and true if e
// is a member at all.
func (p Pair) Other(e Extent) (Extent, bool) {
	switch e {
	case p.A:
		return p.B, true
	case p.B:
		return p.A, true
	}
	return Extent{}, false
}

// String formats the pair as "(100+4, 200+3)".
func (p Pair) String() string {
	return fmt.Sprintf("(%s, %s)", p.A, p.B)
}

// IntraBlockPairs returns the number of distinct block-level pairs
// *within* the pair's extents: C(n,2) + C(m,2) for extents of n and m
// blocks. In the paper's Fig. 2 example (extents 100+4 and 200+3) this
// is 6 + 3 = 9 intra-request block correlations.
func (p Pair) IntraBlockPairs() uint64 {
	return choose2(uint64(p.A.Len)) + choose2(uint64(p.B.Len))
}

// InterBlockPairs returns the number of block-level pairs *across* the
// two extents: n·m. In the Fig. 2 example, 4 × 3 = 12 inter-request
// block correlations — all inferred from the single extent pair.
func (p Pair) InterBlockPairs() uint64 {
	return uint64(p.A.Len) * uint64(p.B.Len)
}

// BlockPairs returns the total block correlations the extent pair
// implies (intra + inter), quantifying the compression extent-based
// correlation achieves over block-based correlation.
func (p Pair) BlockPairs() uint64 {
	return p.IntraBlockPairs() + p.InterBlockPairs()
}

func choose2(n uint64) uint64 { return n * (n - 1) / 2 }
