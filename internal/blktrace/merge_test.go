package blktrace

import (
	"errors"
	"io"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func seqTrace(pid uint32, times ...int64) *Trace {
	t := &Trace{}
	for i, tm := range times {
		t.Append(Event{Time: tm, PID: pid, Op: OpRead,
			Extent: Extent{Block: uint64(pid)*1000 + uint64(i), Len: 1}})
	}
	return t
}

func TestMergeSourcesInterleaves(t *testing.T) {
	a := seqTrace(1, 0, 20, 40)
	b := seqTrace(2, 10, 30, 50)
	merged, err := ReadAll(MergeSources(a.Source(), b.Source()))
	if err != nil {
		t.Fatal(err)
	}
	wantTimes := []int64{0, 10, 20, 30, 40, 50}
	if merged.Len() != len(wantTimes) {
		t.Fatalf("merged %d events, want %d", merged.Len(), len(wantTimes))
	}
	for i, ev := range merged.Events {
		if ev.Time != wantTimes[i] {
			t.Errorf("event %d time = %d, want %d", i, ev.Time, wantTimes[i])
		}
	}
}

func TestMergeSourcesTieBreakBySourceIndex(t *testing.T) {
	a := seqTrace(1, 100)
	b := seqTrace(2, 100)
	merged, err := ReadAll(MergeSources(a.Source(), b.Source()))
	if err != nil {
		t.Fatal(err)
	}
	if merged.Events[0].PID != 1 || merged.Events[1].PID != 2 {
		t.Errorf("tie break wrong: %+v", merged.Events)
	}
}

func TestMergeSourcesDegenerate(t *testing.T) {
	// No sources.
	if _, err := MergeSources().Next(); !errors.Is(err, io.EOF) {
		t.Error("empty merge should EOF immediately")
	}
	// One source passes through.
	a := seqTrace(1, 1, 2, 3)
	merged, err := ReadAll(MergeSources(a.Source()))
	if err != nil || merged.Len() != 3 {
		t.Errorf("single-source merge: %d events, %v", merged.Len(), err)
	}
	// Empty sources among non-empty ones.
	merged, err = ReadAll(MergeSources((&Trace{}).Source(), seqTrace(1, 5).Source(), (&Trace{}).Source()))
	if err != nil || merged.Len() != 1 {
		t.Errorf("merge with empties: %d events, %v", merged.Len(), err)
	}
	// EOF is sticky.
	m := MergeSources(seqTrace(1, 1).Source())
	if _, err := m.Next(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := m.Next(); !errors.Is(err, io.EOF) {
			t.Fatalf("want sticky EOF, got %v", err)
		}
	}
}

type failingSource struct{ after int }

func (f *failingSource) Next() (Event, error) {
	if f.after <= 0 {
		return Event{}, errors.New("boom")
	}
	f.after--
	return Event{Time: 1, Op: OpRead, Extent: Extent{Block: 1, Len: 1}}, nil
}

func TestMergeSourcesPropagatesErrors(t *testing.T) {
	m := MergeSources(seqTrace(1, 0, 10).Source(), &failingSource{after: 1})
	var err error
	for err == nil {
		_, err = m.Next()
	}
	if errors.Is(err, io.EOF) {
		t.Fatal("error swallowed as EOF")
	}
	// Error is sticky too.
	if _, err2 := m.Next(); err2 == nil || errors.Is(err2, io.EOF) {
		t.Errorf("want sticky error, got %v", err2)
	}
}

// Property: merging K sorted shards of a trace reproduces the trace's
// multiset in timestamp order.
func TestMergeSourcesQuick(t *testing.T) {
	f := func(seed int64, nShards uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + int(nShards)%5
		shards := make([]*Trace, k)
		for i := range shards {
			shards[i] = &Trace{}
		}
		total := rng.Intn(200)
		var all []int64
		for i := 0; i < total; i++ {
			tm := rng.Int63n(1_000_000)
			all = append(all, tm)
			s := shards[rng.Intn(k)]
			s.Append(Event{Time: tm, PID: 1, Op: OpRead,
				Extent: Extent{Block: uint64(i), Len: 1}})
		}
		for _, s := range shards {
			s.SortByTime()
		}
		srcs := make([]Source, k)
		for i, s := range shards {
			srcs[i] = s.Source()
		}
		merged, err := ReadAll(MergeSources(srcs...))
		if err != nil || merged.Len() != total {
			return false
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		for i, ev := range merged.Events {
			if ev.Time != all[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestWithPID(t *testing.T) {
	a := seqTrace(1, 0, 10)
	relabeled, err := ReadAll(WithPID(a.Source(), 42))
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range relabeled.Events {
		if ev.PID != 42 {
			t.Errorf("PID = %d, want 42", ev.PID)
		}
	}
	// Errors pass through.
	if _, err := WithPID(&failingSource{}, 1).Next(); err == nil {
		t.Error("want error from inner source")
	}
}
