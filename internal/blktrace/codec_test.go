package blktrace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func randTrace(rng *rand.Rand, n int) *Trace {
	t := &Trace{}
	now := int64(0)
	for i := 0; i < n; i++ {
		now += rng.Int63n(1e6)
		t.Append(Event{
			Time: now,
			PID:  uint32(rng.Intn(1 << 16)),
			Op:   Op(rng.Intn(2)),
			Extent: Extent{
				Block: uint64(rng.Intn(1 << 30)),
				Len:   uint32(rng.Intn(2048) + 1),
			},
		})
	}
	return t
}

func tracesEqual(a, b *Trace) bool {
	if len(a.Events) != len(b.Events) {
		return false
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			return false
		}
	}
	return true
}

func TestBinaryRoundTrip(t *testing.T) {
	orig := randTrace(rand.New(rand.NewSource(1)), 500)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, orig); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if !tracesEqual(orig, got) {
		t.Error("binary round trip mismatch")
	}
}

func TestBinaryRoundTripQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		orig := randTrace(rand.New(rand.NewSource(seed)), int(n))
		var buf bytes.Buffer
		if err := WriteTrace(&buf, orig); err != nil {
			return false
		}
		got, err := ReadTrace(&buf)
		return err == nil && tracesEqual(orig, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBinaryEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, &Trace{}); err != nil {
		t.Fatalf("WriteTrace empty: %v", err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace empty: %v", err)
	}
	if got.Len() != 0 {
		t.Errorf("want 0 events, got %d", got.Len())
	}
}

func TestBinaryBadMagic(t *testing.T) {
	_, err := ReadTrace(strings.NewReader("NOPE????????????"))
	if !errors.Is(err, ErrBadMagic) {
		t.Errorf("want ErrBadMagic, got %v", err)
	}
	_, err = ReadTrace(strings.NewReader(""))
	if !errors.Is(err, ErrBadMagic) {
		t.Errorf("empty input: want ErrBadMagic, got %v", err)
	}
}

func TestBinaryTruncated(t *testing.T) {
	orig := randTrace(rand.New(rand.NewSource(2)), 3)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, orig); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-5] // chop mid-record
	r := NewReader(bytes.NewReader(cut))
	var err error
	for err == nil {
		_, err = r.Next()
	}
	if !errors.Is(err, ErrTruncated) {
		t.Errorf("want ErrTruncated, got %v", err)
	}
}

func TestBinaryBadVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, &Trace{}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = 0xFF // clobber version
	_, err := ReadTrace(bytes.NewReader(b))
	if !errors.Is(err, ErrBadVersion) {
		t.Errorf("want ErrBadVersion, got %v", err)
	}
}

func TestWriterRejectsInvalidEvent(t *testing.T) {
	tw := NewWriter(io.Discard)
	if err := tw.Write(Event{Time: 0, Op: OpRead, Extent: Extent{Block: 1, Len: 0}}); err == nil {
		t.Error("want error for zero-length extent")
	}
	if err := tw.Write(Event{Time: -1, Op: OpRead, Extent: Extent{Block: 1, Len: 1}}); err == nil {
		t.Error("want error for negative timestamp")
	}
	if err := tw.Write(Event{Time: 0, Op: Op(9), Extent: Extent{Block: 1, Len: 1}}); err == nil {
		t.Error("want error for invalid op")
	}
}

func TestTextRoundTrip(t *testing.T) {
	orig := randTrace(rand.New(rand.NewSource(3)), 200)
	var buf bytes.Buffer
	if err := WriteText(&buf, orig); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	if !tracesEqual(orig, got) {
		t.Error("text round trip mismatch")
	}
}

func TestTextRoundTripQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		orig := randTrace(rand.New(rand.NewSource(seed)), int(n))
		var buf bytes.Buffer
		if err := WriteText(&buf, orig); err != nil {
			return false
		}
		got, err := ReadText(&buf)
		return err == nil && tracesEqual(orig, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTextCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n100 1 R 10 4\n   \n200 1 W 20 8\n"
	tr, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 {
		t.Fatalf("want 2 events, got %d", tr.Len())
	}
	if tr.Events[1].Op != OpWrite || tr.Events[1].Extent.Block != 20 {
		t.Errorf("unexpected second event %+v", tr.Events[1])
	}
}

func TestTextMalformed(t *testing.T) {
	bad := []string{
		"100 1 R 10",    // too few fields
		"x 1 R 10 4",    // bad time
		"100 y R 10 4",  // bad pid
		"100 1 Q 10 4",  // bad op
		"100 1 R z 4",   // bad block
		"100 1 R 10 zz", // bad len
		"100 1 R 10 0",  // zero length extent
		"-5 1 R 10 4",   // negative time
	}
	for _, line := range bad {
		if _, err := ReadText(strings.NewReader(line)); err == nil {
			t.Errorf("ReadText(%q): want error", line)
		}
	}
}

func TestTraceStats(t *testing.T) {
	tr := &Trace{}
	tr.Append(Event{Time: 0, Op: OpRead, Extent: Extent{Block: 0, Len: 8}})
	tr.Append(Event{Time: 50_000, Op: OpRead, Extent: Extent{Block: 4, Len: 8}}) // overlaps prior
	tr.Append(Event{Time: 1_000_000, Op: OpWrite, Extent: Extent{Block: 100, Len: 2}})
	if got, want := tr.TotalBytes(), uint64(18*BlockSize); got != want {
		t.Errorf("TotalBytes = %d, want %d", got, want)
	}
	if got, want := tr.UniqueBytes(), uint64(14*BlockSize); got != want {
		t.Errorf("UniqueBytes = %d, want %d", got, want)
	}
	// one gap of 50 µs and one of 950 µs -> 0.5 below 100 µs
	if got := tr.InterarrivalFractionBelow(100_000); got != 0.5 {
		t.Errorf("InterarrivalFractionBelow = %v, want 0.5", got)
	}
}

func TestUniqueBytesAdjacent(t *testing.T) {
	tr := &Trace{}
	tr.Append(Event{Time: 0, Op: OpRead, Extent: Extent{Block: 0, Len: 4}})
	tr.Append(Event{Time: 1, Op: OpRead, Extent: Extent{Block: 4, Len: 4}})
	if got, want := tr.UniqueBytes(), uint64(8*BlockSize); got != want {
		t.Errorf("UniqueBytes = %d, want %d", got, want)
	}
}

func TestTraceSortAndSlice(t *testing.T) {
	tr := &Trace{}
	tr.Append(Event{Time: 30, Op: OpRead, Extent: Extent{Block: 3, Len: 1}})
	tr.Append(Event{Time: 10, Op: OpRead, Extent: Extent{Block: 1, Len: 1}})
	tr.Append(Event{Time: 20, Op: OpRead, Extent: Extent{Block: 2, Len: 1}})
	tr.SortByTime()
	for i := 1; i < tr.Len(); i++ {
		if tr.Events[i].Time < tr.Events[i-1].Time {
			t.Fatal("not sorted")
		}
	}
	sub := tr.Slice(1, 3)
	if sub.Len() != 2 || sub.Events[0].Extent.Block != 2 {
		t.Errorf("Slice wrong: %+v", sub.Events)
	}
	if tr.Slice(-5, 99).Len() != 3 {
		t.Error("Slice should clamp out-of-range bounds")
	}
	if tr.Slice(2, 1).Len() != 0 {
		t.Error("Slice should return empty for inverted bounds")
	}
}

func TestSliceSourceAndReadAll(t *testing.T) {
	orig := randTrace(rand.New(rand.NewSource(4)), 50)
	got, err := ReadAll(orig.Source())
	if err != nil {
		t.Fatal(err)
	}
	if !tracesEqual(orig, got) {
		t.Error("ReadAll(SliceSource) mismatch")
	}
	// exhausted source keeps returning EOF
	src := (&Trace{}).Source()
	for i := 0; i < 3; i++ {
		if _, err := src.Next(); !errors.Is(err, io.EOF) {
			t.Fatalf("want io.EOF, got %v", err)
		}
	}
}

func TestReadAllRejectsInvalid(t *testing.T) {
	src := NewSliceSource([]Event{{Time: 0, Op: Op(7), Extent: Extent{Block: 0, Len: 1}}})
	if _, err := ReadAll(src); err == nil {
		t.Error("want validation error from ReadAll")
	}
}

func TestTraceDuration(t *testing.T) {
	tr := &Trace{}
	if tr.Duration() != 0 {
		t.Error("empty trace duration should be 0")
	}
	tr.Append(Event{Time: 100, Op: OpRead, Extent: Extent{Block: 0, Len: 1}})
	if tr.Duration() != 0 {
		t.Error("single event duration should be 0")
	}
	tr.Append(Event{Time: 1100, Op: OpRead, Extent: Extent{Block: 0, Len: 1}})
	if tr.Duration() != 1000 {
		t.Errorf("Duration = %v, want 1000ns", tr.Duration())
	}
}
