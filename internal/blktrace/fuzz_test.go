package blktrace

import (
	"bytes"
	"testing"
)

// FuzzReadTrace hardens the binary decoder against arbitrary input: it
// must reject or accept without panicking, and anything it accepts
// must re-encode to an equivalent trace (decode∘encode is identity on
// the accepted set).
func FuzzReadTrace(f *testing.F) {
	seed := &Trace{}
	seed.Append(Event{Time: 0, PID: 1, Op: OpRead, Extent: Extent{Block: 100, Len: 4}})
	seed.Append(Event{Time: 1000, PID: 2, Op: OpWrite, Extent: Extent{Block: 200, Len: 3}})
	var buf bytes.Buffer
	if err := WriteTrace(&buf, seed); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("DACT"))
	f.Add([]byte("garbage that is not a trace at all............"))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteTrace(&out, tr); err != nil {
			t.Fatalf("accepted trace failed to re-encode: %v", err)
		}
		tr2, err := ReadTrace(&out)
		if err != nil {
			t.Fatalf("re-encoded trace failed to decode: %v", err)
		}
		if len(tr.Events) != len(tr2.Events) {
			t.Fatalf("round trip changed length: %d vs %d", len(tr.Events), len(tr2.Events))
		}
		for i := range tr.Events {
			if tr.Events[i] != tr2.Events[i] {
				t.Fatalf("round trip changed event %d", i)
			}
		}
	})
}

// FuzzParseTextLine hardens the text parser: no panics, and accepted
// lines yield valid events.
func FuzzParseTextLine(f *testing.F) {
	f.Add("100 1 R 10 4")
	f.Add("# comment")
	f.Add("")
	f.Add("100 1 W 18446744073709551615 4294967295")
	f.Add("-1 x Q y z")

	f.Fuzz(func(t *testing.T, line string) {
		ev, ok, err := ParseTextLine(line)
		if err != nil || !ok {
			return
		}
		if verr := ev.Validate(); verr != nil {
			t.Fatalf("accepted line %q produced invalid event: %v", line, verr)
		}
	})
}
