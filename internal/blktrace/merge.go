package blktrace

import (
	"container/heap"
	"errors"
	"io"
)

// MergeSources combines several event sources into one stream ordered
// by timestamp — the role of blkparse merging blktrace's per-CPU
// buffers, and the way multi-tenant workloads are composed from
// per-tenant traces. Each input source must itself be time-ordered;
// ties are broken by source index for determinism.
func MergeSources(sources ...Source) Source {
	m := &mergeSource{}
	for i, src := range sources {
		m.pending = append(m.pending, pendingSource{src: src, index: i})
	}
	return m
}

type pendingSource struct {
	src    Source
	index  int
	head   Event
	primed bool
}

type mergeSource struct {
	pending []pendingSource // not yet primed
	heap    mergeHeap
	err     error
}

type mergeHeap []pendingSource

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if h[i].head.Time != h[j].head.Time {
		return h[i].head.Time < h[j].head.Time
	}
	return h[i].index < h[j].index
}
func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)   { *h = append(*h, x.(pendingSource)) }
func (h *mergeHeap) Pop() (out any) {
	old := *h
	n := len(old)
	out = old[n-1]
	*h = old[:n-1]
	return out
}

// prime pulls the first event of every source into the heap.
func (m *mergeSource) prime() error {
	for _, ps := range m.pending {
		ev, err := ps.src.Next()
		if errors.Is(err, io.EOF) {
			continue
		}
		if err != nil {
			return err
		}
		ps.head = ev
		ps.primed = true
		heap.Push(&m.heap, ps)
	}
	m.pending = nil
	return nil
}

// Next implements Source.
func (m *mergeSource) Next() (Event, error) {
	if m.err != nil {
		return Event{}, m.err
	}
	if m.pending != nil {
		if err := m.prime(); err != nil {
			m.err = err
			return Event{}, err
		}
	}
	if m.heap.Len() == 0 {
		return Event{}, io.EOF
	}
	top := m.heap[0]
	out := top.head
	next, err := top.src.Next()
	switch {
	case errors.Is(err, io.EOF):
		heap.Pop(&m.heap)
	case err != nil:
		m.err = err
		return Event{}, err
	default:
		m.heap[0].head = next
		heap.Fix(&m.heap, 0)
	}
	return out, nil
}

// WithPID returns a Source that stamps every event from src with the
// given process ID — used to compose multi-tenant workloads whose
// tenants the monitor can then filter apart.
func WithPID(src Source, pid uint32) Source {
	return pidSource{src: src, pid: pid}
}

type pidSource struct {
	src Source
	pid uint32
}

func (p pidSource) Next() (Event, error) {
	ev, err := p.src.Next()
	if err != nil {
		return Event{}, err
	}
	ev.PID = p.pid
	return ev, nil
}
