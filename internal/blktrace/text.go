package blktrace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text format is one event per line, blkparse-flavoured:
//
//	<time-ns> <pid> <R|W> <block> <len>
//
// Lines starting with '#' and blank lines are ignored, so traces can
// carry provenance comments.

// WriteText encodes a trace in the text format, preceded by a comment
// header naming the columns.
func WriteText(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# time_ns pid op block len"); err != nil {
		return err
	}
	for _, ev := range t.Events {
		if err := ev.Validate(); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(bw, "%d %d %s %d %d\n",
			ev.Time, ev.PID, ev.Op, ev.Extent.Block, ev.Extent.Len); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseTextLine decodes one text-format line. It returns ok=false for
// comment and blank lines.
func ParseTextLine(line string) (ev Event, ok bool, err error) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return Event{}, false, nil
	}
	fields := strings.Fields(line)
	if len(fields) != 5 {
		return Event{}, false, fmt.Errorf("blktrace: want 5 fields, got %d in %q", len(fields), line)
	}
	ev.Time, err = strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return Event{}, false, fmt.Errorf("blktrace: bad time %q: %v", fields[0], err)
	}
	pid, err := strconv.ParseUint(fields[1], 10, 32)
	if err != nil {
		return Event{}, false, fmt.Errorf("blktrace: bad pid %q: %v", fields[1], err)
	}
	ev.PID = uint32(pid)
	switch fields[2] {
	case "R":
		ev.Op = OpRead
	case "W":
		ev.Op = OpWrite
	default:
		return Event{}, false, fmt.Errorf("blktrace: bad op %q", fields[2])
	}
	ev.Extent.Block, err = strconv.ParseUint(fields[3], 10, 64)
	if err != nil {
		return Event{}, false, fmt.Errorf("blktrace: bad block %q: %v", fields[3], err)
	}
	length, err := strconv.ParseUint(fields[4], 10, 32)
	if err != nil {
		return Event{}, false, fmt.Errorf("blktrace: bad len %q: %v", fields[4], err)
	}
	ev.Extent.Len = uint32(length)
	if err := ev.Validate(); err != nil {
		return Event{}, false, err
	}
	return ev, true, nil
}

// ReadText decodes a text-format trace.
func ReadText(r io.Reader) (*Trace, error) {
	t := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		ev, ok, err := ParseTextLine(sc.Text())
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineno, err)
		}
		if ok {
			t.Append(ev)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}
