package blktrace

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"time"
)

// Op is the direction of an I/O request.
type Op uint8

const (
	// OpRead is a read request.
	OpRead Op = iota
	// OpWrite is a write request.
	OpWrite
)

// String returns "R" or "W", matching blkparse's RWBS field.
func (op Op) String() string {
	switch op {
	case OpRead:
		return "R"
	case OpWrite:
		return "W"
	}
	return fmt.Sprintf("Op(%d)", uint8(op))
}

// Valid reports whether op is a known operation.
func (op Op) Valid() bool { return op == OpRead || op == OpWrite }

// Event is one block-layer "issue" event: a request handed to the
// storage device driver. It carries exactly the fields the paper's
// monitoring module extracts from blktrace's binary stream.
type Event struct {
	// Time is the issue timestamp in nanoseconds since trace start.
	Time int64
	// PID identifies the issuing process; the monitor can filter on it.
	PID uint32
	// Op is the request direction.
	Op Op
	// Extent is the requested run of blocks.
	Extent Extent
}

// Validate reports a descriptive error for malformed events: unknown
// ops, zero-length extents, negative timestamps, or extents that wrap
// the block number space.
func (ev Event) Validate() error {
	switch {
	case ev.Time < 0:
		return fmt.Errorf("blktrace: negative timestamp %d", ev.Time)
	case !ev.Op.Valid():
		return fmt.Errorf("blktrace: invalid op %d", uint8(ev.Op))
	case ev.Extent.Len == 0:
		return fmt.Errorf("blktrace: zero-length extent at block %d", ev.Extent.Block)
	case ev.Extent.Block+uint64(ev.Extent.Len) < ev.Extent.Block:
		return fmt.Errorf("blktrace: extent %s wraps block space", ev.Extent)
	}
	return nil
}

// A Source yields a stream of events. Next returns io.EOF after the
// final event. Sources are the seam between event producers (workload
// generators, the device simulator, a trace file) and consumers (the
// monitor, trace writers).
type Source interface {
	Next() (Event, error)
}

// A Sink consumes events, e.g. a trace file writer or the real-time
// monitor.
type Sink interface {
	Write(Event) error
}

// Trace is an in-memory sequence of events together with summary
// statistics. It is the unit the offline FIM baselines operate on and
// the workload generators produce.
type Trace struct {
	Events []Event
}

// Append adds an event to the trace.
func (t *Trace) Append(ev Event) { t.Events = append(t.Events, ev) }

// Len returns the number of events.
func (t *Trace) Len() int { return len(t.Events) }

// Duration returns the time span from the first to the last event.
// Events are assumed sorted by time (SortByTime enforces this).
func (t *Trace) Duration() time.Duration {
	if len(t.Events) < 2 {
		return 0
	}
	return time.Duration(t.Events[len(t.Events)-1].Time - t.Events[0].Time)
}

// SortByTime stably sorts events by timestamp. Generators interleaving
// several arrival processes use it to produce a well-formed trace.
func (t *Trace) SortByTime() {
	sort.SliceStable(t.Events, func(i, j int) bool {
		return t.Events[i].Time < t.Events[j].Time
	})
}

// Slice returns a sub-trace of events [from, to) by index, clamped to
// the valid range. The underlying storage is shared.
func (t *Trace) Slice(from, to int) *Trace {
	if from < 0 {
		from = 0
	}
	if to > len(t.Events) {
		to = len(t.Events)
	}
	if from > to {
		from = to
	}
	return &Trace{Events: t.Events[from:to]}
}

// TotalBytes returns the sum of request sizes: the paper's "total data
// accessed" column of Table I.
func (t *Trace) TotalBytes() uint64 {
	var sum uint64
	for _, ev := range t.Events {
		sum += ev.Extent.Bytes()
	}
	return sum
}

// UniqueBytes returns the size of the union of all accessed extents:
// the paper's "unique data accessed" column of Table I. It merges the
// extents as intervals, O(n log n).
func (t *Trace) UniqueBytes() uint64 {
	if len(t.Events) == 0 {
		return 0
	}
	ivs := make([]Extent, len(t.Events))
	for i, ev := range t.Events {
		ivs[i] = ev.Extent
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].Block < ivs[j].Block })
	var blocks, curStart, curEnd uint64
	curStart, curEnd = ivs[0].Block, ivs[0].End()
	for _, iv := range ivs[1:] {
		if iv.Block <= curEnd { // overlapping or adjacent: extend
			if iv.End() > curEnd {
				curEnd = iv.End()
			}
			continue
		}
		blocks += curEnd - curStart
		curStart, curEnd = iv.Block, iv.End()
	}
	blocks += curEnd - curStart
	return blocks * BlockSize
}

// InterarrivalFractionBelow returns the fraction of consecutive-event
// gaps strictly smaller than d: the paper's "interarrival % < 100 µs"
// column of Table I. It returns 0 for traces with fewer than two events.
func (t *Trace) InterarrivalFractionBelow(d time.Duration) float64 {
	if len(t.Events) < 2 {
		return 0
	}
	below := 0
	for i := 1; i < len(t.Events); i++ {
		if time.Duration(t.Events[i].Time-t.Events[i-1].Time) < d {
			below++
		}
	}
	return float64(below) / float64(len(t.Events)-1)
}

// ReadAll drains a source into a Trace, validating every event.
func ReadAll(src Source) (*Trace, error) {
	t := &Trace{}
	for {
		ev, err := src.Next()
		if errors.Is(err, io.EOF) {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		if err := ev.Validate(); err != nil {
			return nil, err
		}
		t.Append(ev)
	}
}

// SliceSource adapts a []Event (or a Trace) into a Source.
type SliceSource struct {
	events []Event
	pos    int
}

// NewSliceSource returns a Source yielding the given events in order.
func NewSliceSource(events []Event) *SliceSource {
	return &SliceSource{events: events}
}

// Source returns a Source over the trace's events.
func (t *Trace) Source() *SliceSource { return NewSliceSource(t.Events) }

// Next implements Source.
func (s *SliceSource) Next() (Event, error) {
	if s.pos >= len(s.events) {
		return Event{}, io.EOF
	}
	ev := s.events[s.pos]
	s.pos++
	return ev, nil
}
