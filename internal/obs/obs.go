// Package obs is the framework's dependency-free observability layer:
// atomic instruments (counters, gauges, fixed-bucket histograms), a
// named registry with labeled series, and a Prometheus text-format
// encoder. The hot layers — engine shards, monitors, analyzers, the
// HTTP server — register instruments here and the versioned HTTP API
// exposes the whole registry at /v1/metrics.
//
// The design follows the rest of the repository: no third-party
// dependencies, explicit construction, and instruments cheap enough to
// live on paths that process one block-layer event per call. A Counter
// increment is a single atomic add; a Histogram observation is a
// binary search over a handful of bucket bounds plus two atomic adds.
// Anything more expensive (mirroring single-goroutine stats structs,
// walking engine shards) happens at scrape time via collect hooks, not
// on the event path.
package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// Counter is a monotonically increasing metric backed by one atomic
// word. The zero value is ready to use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Store overwrites the counter's value. It exists for mirror counters
// that track an external monotonic source (e.g. a worker-owned stats
// struct read at scrape time); on a counter that is also incremented
// directly it would break monotonicity.
func (c *Counter) Store(n uint64) { c.v.Store(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down, stored as float64 bits in
// one atomic word. The zero value is ready to use and reads 0.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (possibly negative) to the gauge.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram with Prometheus semantics:
// observations are counted into the first bucket whose upper bound is
// >= the value, plus a +Inf overflow bucket, a running sum, and a
// total count. All fields are atomics, so concurrent Observe calls
// from producer goroutines and scrapes never block each other.
//
// Buckets are stored non-cumulatively and accumulated by the encoder,
// which keeps Observe to two atomic adds (bucket + count) and one CAS
// loop (sum).
type Histogram struct {
	bounds  []float64 // sorted ascending upper bounds, +Inf excluded
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // float64 bits
}

// NewHistogram returns a histogram over the given upper bounds. The
// bounds must be sorted ascending with no duplicates, NaNs, or +Inf
// (the overflow bucket is implicit); otherwise NewHistogram panics, as
// bucket layouts are compile-time decisions.
func NewHistogram(bounds []float64) *Histogram {
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic("obs: histogram bounds must be finite")
		}
		if i > 0 && bounds[i-1] >= b {
			panic("obs: histogram bounds must be sorted ascending without duplicates")
		}
	}
	h := &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// snapshot returns the bounds and cumulative bucket counts, ending
// with the +Inf bucket (== Count at the time of the read, modulo
// concurrent observations).
func (h *Histogram) snapshot() (bounds []float64, cumulative []uint64) {
	cumulative = make([]uint64, len(h.buckets))
	var run uint64
	for i := range h.buckets {
		run += h.buckets[i].Load()
		cumulative[i] = run
	}
	return h.bounds, cumulative
}

// ExpBuckets returns n exponentially spaced upper bounds starting at
// start and growing by factor — the standard layout for latency
// histograms. It panics on a non-positive start, a factor <= 1, or
// n < 1.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets is the default layout for latency-in-seconds
// histograms: twelve bounds from 1 µs to ~4.2 s in powers of four
// (plus the implicit +Inf bucket). The layout keeps the per-series
// footprint small while resolving both microsecond queue hops and
// multi-second stalls.
func LatencyBuckets() []float64 { return ExpBuckets(1e-6, 4, 12) }
