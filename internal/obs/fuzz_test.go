package obs

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// unescapeLabelValue inverts EscapeLabelValue; it reports false on a
// malformed escape, which the encoder must never emit.
func unescapeLabelValue(s string) (string, bool) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' {
			if s[i] == '"' || s[i] == '\n' {
				return "", false // raw specials must not survive escaping
			}
			b.WriteByte(s[i])
			continue
		}
		i++
		if i == len(s) {
			return "", false
		}
		switch s[i] {
		case '\\':
			b.WriteByte('\\')
		case '"':
			b.WriteByte('"')
		case 'n':
			b.WriteByte('\n')
		default:
			return "", false
		}
	}
	return b.String(), true
}

// FuzzEscapeLabelValue checks the escaping is invertible and leaves no
// raw quote or newline that would corrupt the exposition line.
func FuzzEscapeLabelValue(f *testing.F) {
	for _, s := range []string{"", "plain", `back\slash`, `qu"ote`, "new\nline", `\n`, `\\"`, "μ\x00\xff"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		esc := EscapeLabelValue(s)
		if strings.ContainsAny(esc, "\"\n") && !strings.Contains(esc, "\\") {
			t.Fatalf("EscapeLabelValue(%q) = %q leaves raw specials", s, esc)
		}
		got, ok := unescapeLabelValue(esc)
		if !ok {
			t.Fatalf("EscapeLabelValue(%q) = %q is not well-formed", s, esc)
		}
		if got != s {
			t.Fatalf("round-trip of %q via %q = %q", s, esc, got)
		}
	})
}

// FuzzValidNames pins the hand-rolled name validators to the format's
// published grammars.
func FuzzValidNames(f *testing.F) {
	metricRe := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe := regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	for _, s := range []string{"", "a", "_ok", "0bad", "a:b", "__reserved", "sp ace", "é", "a\x00b"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		if got, want := ValidMetricName(s), metricRe.MatchString(s); got != want {
			t.Errorf("ValidMetricName(%q) = %v, grammar says %v", s, got, want)
		}
		if got, want := ValidLabelName(s), labelRe.MatchString(s) && !strings.HasPrefix(s, "__"); got != want {
			t.Errorf("ValidLabelName(%q) = %v, grammar says %v", s, got, want)
		}
	})
}

var sampleLineRe = regexp.MustCompile(`^fuzz_total\{k="(.*)"\} ([0-9e+.]+)$`)

// FuzzWritePrometheus drives arbitrary help text and label values
// through a real registry and requires the exposition to stay
// line-parseable: exactly one HELP, one TYPE, and one sample line whose
// label value unescapes back to the original.
func FuzzWritePrometheus(f *testing.F) {
	f.Add("help", "value", uint64(1))
	f.Add("multi\nline \\help", `la"bel\`, uint64(0))
	f.Add("", "\n\n", uint64(1<<40))
	f.Fuzz(func(t *testing.T, help, labelValue string, v uint64) {
		r := NewRegistry()
		r.Counter("fuzz_total", help, L("k", labelValue)).Add(v)
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		out := b.String()
		if !strings.HasSuffix(out, "\n") {
			t.Fatalf("exposition does not end in newline: %q", out)
		}
		lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
		want := 3 // HELP + TYPE + sample; the HELP line is omitted for empty help
		if help == "" {
			want = 2
		}
		if len(lines) != want {
			t.Fatalf("help=%q label=%q: %d lines, want %d:\n%s",
				help, labelValue, len(lines), want, out)
		}
		if help != "" && !strings.HasPrefix(lines[0], "# HELP fuzz_total") {
			t.Errorf("line 0 = %q, want HELP comment", lines[0])
		}
		if lines[len(lines)-2] != "# TYPE fuzz_total counter" {
			t.Errorf("line %d = %q, want TYPE comment", len(lines)-2, lines[len(lines)-2])
		}
		m := sampleLineRe.FindStringSubmatch(lines[len(lines)-1])
		if m == nil {
			t.Fatalf("sample line %q does not parse", lines[2])
		}
		got, ok := unescapeLabelValue(m[1])
		if !ok || got != labelValue {
			t.Errorf("label survives as %q (ok=%v), want %q", got, ok, labelValue)
		}
		if num, err := strconv.ParseFloat(m[2], 64); err != nil || num != float64(v) {
			t.Errorf("sample value %q (%v), want %s", m[2], err,
				strconv.FormatFloat(float64(v), 'g', -1, 64))
		}
	})
}
