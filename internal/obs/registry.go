package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// A Label is one name=value dimension of a metric series.
type Label struct {
	Name, Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// kind is a metric family's type as exposed in the TYPE comment.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one labeled instance of a family. Exactly one of the
// instrument fields is set, matching the family's kind (fn may stand
// in for a Gauge).
type series struct {
	labels  []Label // sorted by name
	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// family is all series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   kind
	bounds []float64 // histograms only
	series map[string]*series
}

// Registry is a named collection of metric families. All methods are
// safe for concurrent use. Instrument lookups are get-or-create:
// asking twice for the same name and labels returns the same
// instrument, so hot paths resolve instruments once and callers that
// cannot (e.g. scrape-time mirrors) still get stable identities.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	collects []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// OnCollect registers a hook run at the start of every exposition.
// Hooks pull state that is too expensive to push per event — e.g. the
// engine mirrors its per-device monitor/analyzer stats into registry
// instruments from one hook. Hooks may create and update instruments
// on the registry they are registered with.
func (r *Registry) OnCollect(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collects = append(r.collects, fn)
}

// Counter returns the counter for name and labels, creating the family
// and series as needed. It panics if name or a label is invalid or if
// the name is already registered as a different type — metric
// identities are programmer-controlled, so a clash is a bug, not a
// runtime condition.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.seriesFor(name, help, kindCounter, nil, labels)
	return s.counter
}

// Gauge returns the gauge for name and labels, creating it as needed.
// The same panics as Counter apply.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.seriesFor(name, help, kindGauge, nil, labels)
	return s.gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at
// exposition time — for values that already live somewhere cheap to
// read (a queue depth, a window duration) where a mirror would be
// redundant. Re-registering the same name and labels replaces fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if fn == nil {
		panic("obs: GaugeFunc requires a non-nil fn")
	}
	s := r.seriesFor(name, help, kindGauge, nil, labels)
	r.mu.Lock()
	s.fn = fn
	s.gauge = nil
	r.mu.Unlock()
}

// Histogram returns the histogram for name and labels, creating it
// with the given bucket bounds as needed. All series of one family
// share a layout; a different bounds slice for an existing family
// panics.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	s := r.seriesFor(name, help, kindHistogram, bounds, labels)
	return s.hist
}

// seriesFor is the get-or-create core behind the typed accessors.
func (r *Registry) seriesFor(name, help string, k kind, bounds []float64, labels []Label) *series {
	if !ValidMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !ValidLabelName(l.Name) {
			panic(fmt.Sprintf("obs: invalid label name %q on metric %q", l.Name, name))
		}
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1].Name == sorted[i].Name {
			panic(fmt.Sprintf("obs: duplicate label %q on metric %q", sorted[i].Name, name))
		}
	}
	key := seriesKey(sorted)

	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: k, series: make(map[string]*series)}
		if k == kindHistogram {
			f.bounds = append([]float64(nil), bounds...)
		}
		r.families[name] = f
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q re-registered as %v (was %v)", name, k, f.kind))
	}
	if k == kindHistogram && !equalBounds(f.bounds, bounds) {
		panic(fmt.Sprintf("obs: metric %q re-registered with different buckets", name))
	}
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: sorted}
		switch k {
		case kindCounter:
			s.counter = &Counter{}
		case kindGauge:
			s.gauge = &Gauge{}
		case kindHistogram:
			s.hist = NewHistogram(f.bounds)
		}
		f.series[key] = s
	}
	return s
}

// NumSeries reports the total number of series across all families —
// the registry's cardinality, which leak detectors compare across
// device churn.
func (r *Registry) NumSeries() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, f := range r.families {
		n += len(f.series)
	}
	return n
}

// DropSeries removes every series (in any family) carrying the given
// label pair and returns how many were removed. Families stay
// registered — their name, type, and help survive for future series —
// but the dropped instruments are detached: holders can still update
// them, they just no longer appear in expositions. This is the churn
// half of the get-or-create contract: when a labeled entity (a device)
// leaves, its series must leave too, or cardinality grows without
// bound as fresh labels cycle through.
func (r *Registry) DropSeries(match Label) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, f := range r.families {
		for key, s := range f.series {
			for _, l := range s.labels {
				if l == match {
					delete(f.series, key)
					n++
					break
				}
			}
		}
	}
	return n
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// seriesKey canonically encodes sorted labels for map identity.
func seriesKey(sorted []Label) string {
	if len(sorted) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range sorted {
		b.WriteString(l.Name)
		b.WriteByte(0x1f)
		b.WriteString(l.Value)
		b.WriteByte(0x1e)
	}
	return b.String()
}

// ValidMetricName reports whether s is a legal Prometheus metric name:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func ValidMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// ValidLabelName reports whether s is a legal Prometheus label name:
// [a-zA-Z_][a-zA-Z0-9_]*. Names beginning with __ are reserved by the
// exposition format and rejected.
func ValidLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
