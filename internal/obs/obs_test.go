package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Errorf("Value = %d, want 42", got)
	}
	c.Store(7)
	if got := c.Value(); got != 7 {
		t.Errorf("after Store, Value = %d, want 7", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	if got := g.Value(); got != 0 {
		t.Errorf("zero gauge = %v, want 0", got)
	}
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("Value = %v, want 1.5", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500, 5000} {
		h.Observe(v)
	}
	if got := h.Count(); got != 6 {
		t.Errorf("Count = %d, want 6", got)
	}
	if got := h.Sum(); got != 5556.5 {
		t.Errorf("Sum = %v, want 5556.5", got)
	}
	_, cum := h.snapshot()
	want := []uint64{2, 3, 4, 6} // <=1: {0.5, 1}; <=10: +5; <=100: +50; +Inf: +2
	for i, w := range want {
		if cum[i] != w {
			t.Errorf("cumulative[%d] = %d, want %d", i, cum[i], w)
		}
	}
}

func TestHistogramPanics(t *testing.T) {
	for name, bounds := range map[string][]float64{
		"unsorted":  {10, 1},
		"duplicate": {1, 1},
		"nan":       {math.NaN()},
		"inf":       {math.Inf(1)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s bounds: want panic", name)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 10, 3)
	want := []float64{1, 10, 100}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
	if b := LatencyBuckets(); len(b) != 12 || b[0] != 1e-6 {
		t.Errorf("LatencyBuckets = %v", b)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help", L("device", "d0"))
	b := r.Counter("x_total", "help", L("device", "d0"))
	if a != b {
		t.Error("same name+labels returned distinct counters")
	}
	c := r.Counter("x_total", "help", L("device", "d1"))
	if a == c {
		t.Error("different labels returned the same counter")
	}
	// Label order must not matter for identity.
	p := r.Gauge("g", "", L("a", "1"), L("b", "2"))
	q := r.Gauge("g", "", L("b", "2"), L("a", "1"))
	if p != q {
		t.Error("label order changed series identity")
	}
}

func TestRegistryPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("ok_total", "")
	for name, fn := range map[string]func(){
		"bad metric name": func() { r.Counter("0bad", "") },
		"bad label name":  func() { r.Counter("m", "", L("0bad", "v")) },
		"reserved label":  func() { r.Counter("m2", "", L("__name__", "v")) },
		"duplicate label": func() { r.Counter("m3", "", L("a", "1"), L("a", "2")) },
		"type mismatch":   func() { r.Gauge("ok_total", "") },
		"bucket mismatch": func() { h := r.Histogram("h", "", []float64{1}); _ = h; r.Histogram("h", "", []float64{2}) },
		"nil gauge fn":    func() { r.GaugeFunc("gf", "", nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: want panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "events\nwith newline", L("device", `d"0\x`)).Add(3)
	r.Gauge("a_gauge", "a gauge").Set(1.5)
	r.GaugeFunc("a_func", "computed", func() float64 { return 7 })
	h := r.Histogram("c_seconds", "latency", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP a_func computed
# TYPE a_func gauge
a_func 7
# HELP a_gauge a gauge
# TYPE a_gauge gauge
a_gauge 1.5
# HELP b_total events\nwith newline
# TYPE b_total counter
b_total{device="d\"0\\x"} 3
# HELP c_seconds latency
# TYPE c_seconds histogram
c_seconds_bucket{le="0.001"} 1
c_seconds_bucket{le="0.01"} 1
c_seconds_bucket{le="+Inf"} 2
c_seconds_sum 0.5005
c_seconds_count 2
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// A second encode of an unchanged registry is byte-identical.
	var sb2 strings.Builder
	if err := r.WritePrometheus(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != want {
		t.Error("second exposition differs from first")
	}
}

func TestOnCollect(t *testing.T) {
	r := NewRegistry()
	calls := 0
	r.OnCollect(func() {
		calls++
		r.Counter("pulled_total", "mirrored").Store(uint64(calls))
	})
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("collect hook ran %d times, want 1", calls)
	}
	if !strings.Contains(sb.String(), "pulled_total 1") {
		t.Errorf("hook-created metric missing:\n%s", sb.String())
	}
}

// TestConcurrentUse exercises instruments and scrapes from many
// goroutines; it exists to run under -race.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("hits_total", "", L("worker", string(rune('a'+g)))).Inc()
				r.Gauge("depth", "").Set(float64(i))
				r.Histogram("lat", "", []float64{1, 2}).Observe(float64(i % 3))
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Error(err)
			}
		}
	}()
	wg.Wait()
	var total uint64
	for g := 0; g < 8; g++ {
		total += r.Counter("hits_total", "", L("worker", string(rune('a'+g)))).Value()
	}
	if total != 8*500 {
		t.Errorf("total hits = %d, want %d", total, 8*500)
	}
}

// Dropping a label's series removes them from cardinality and
// exposition across every family, leaves other series alone, keeps the
// families registered, and lets the same labels be re-created fresh —
// the lifecycle a device churning through Register/Unregister needs.
func TestDropSeries(t *testing.T) {
	r := NewRegistry()
	r.Counter("events_total", "", L("device", "a")).Inc()
	r.Counter("events_total", "", L("device", "b")).Inc()
	r.Gauge("lag", "", L("device", "a"), L("table", "hot")).Set(3)
	r.GaugeFunc("up", "", func() float64 { return 1 }, L("device", "a"))
	r.Histogram("lat", "", []float64{1, 2}, L("device", "b")).Observe(1)

	if got := r.NumSeries(); got != 5 {
		t.Fatalf("NumSeries = %d, want 5", got)
	}
	if got := r.DropSeries(L("device", "a")); got != 3 {
		t.Fatalf("DropSeries removed %d series, want 3", got)
	}
	if got := r.NumSeries(); got != 2 {
		t.Fatalf("NumSeries after drop = %d, want 2", got)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, `device="a"`) {
		t.Errorf("dropped device still exposed:\n%s", out)
	}
	if !strings.Contains(out, `events_total{device="b"} 1`) {
		t.Errorf("surviving series lost:\n%s", out)
	}

	// Re-creating the same identity starts from zero: the family
	// survived the drop, the series did not.
	if got := r.Counter("events_total", "", L("device", "a")).Value(); got != 0 {
		t.Errorf("re-created counter = %d, want 0", got)
	}
	if got := r.NumSeries(); got != 3 {
		t.Errorf("NumSeries after re-create = %d, want 3", got)
	}
	if got := r.DropSeries(L("device", "zzz")); got != 0 {
		t.Errorf("dropping an absent label removed %d series", got)
	}
}
