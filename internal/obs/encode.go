package obs

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"strings"
)

// TextContentType is the Content-Type of the Prometheus text
// exposition format this package encodes.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus encodes the registry in the Prometheus text
// exposition format (version 0.0.4): families sorted by name, series
// sorted by label values, histograms expanded into cumulative
// _bucket/_sum/_count series. Collect hooks run first, so pull-style
// mirrors are refreshed in the same pass.
//
// The output is deterministic for a given registry state, which is
// what makes scrapes diffable and the encoder testable byte-for-byte.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	hooks := append([]func(){}, r.collects...)
	r.mu.RUnlock()
	for _, fn := range hooks {
		fn()
	}

	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	// Snapshot each family's series list under the lock; instrument
	// values are atomics and fns are called after release, so a slow
	// GaugeFunc can never hold up registrations.
	type famSnap struct {
		fam    *family
		series []*series
	}
	snaps := make([]famSnap, len(fams))
	for i, f := range fams {
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		list := make([]*series, len(keys))
		for j, k := range keys {
			list[j] = f.series[k]
		}
		snaps[i] = famSnap{fam: f, series: list}
	}
	r.mu.RUnlock()

	bw := bufio.NewWriter(w)
	for _, snap := range snaps {
		f := snap.fam
		if f.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(f.help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')
		for _, s := range snap.series {
			switch f.kind {
			case kindCounter:
				writeSample(bw, f.name, "", s.labels, "", formatUint(s.counter.Value()))
			case kindGauge:
				v := 0.0
				if s.fn != nil {
					v = s.fn()
				} else {
					v = s.gauge.Value()
				}
				writeSample(bw, f.name, "", s.labels, "", formatFloat(v))
			case kindHistogram:
				bounds, cum := s.hist.snapshot()
				for i, b := range bounds {
					writeSample(bw, f.name, "_bucket", s.labels, formatFloat(b), formatUint(cum[i]))
				}
				writeSample(bw, f.name, "_bucket", s.labels, "+Inf", formatUint(cum[len(cum)-1]))
				writeSample(bw, f.name, "_sum", s.labels, "", formatFloat(s.hist.Sum()))
				writeSample(bw, f.name, "_count", s.labels, "", formatUint(s.hist.Count()))
			}
		}
	}
	return bw.Flush()
}

// writeSample emits one `name{labels} value` line. le, when non-empty,
// is appended as the bucket-bound label.
func writeSample(bw *bufio.Writer, name, suffix string, labels []Label, le, value string) {
	bw.WriteString(name)
	bw.WriteString(suffix)
	if len(labels) > 0 || le != "" {
		bw.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(l.Name)
			bw.WriteString(`="`)
			bw.WriteString(EscapeLabelValue(l.Value))
			bw.WriteByte('"')
		}
		if le != "" {
			if len(labels) > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(`le="`)
			bw.WriteString(le)
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}

// EscapeLabelValue escapes a label value per the text format:
// backslash, double-quote, and newline become \\, \", and \n. Every
// string is a legal label value once escaped, so arbitrary device IDs
// and route patterns are safe to use as labels.
func EscapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline only (quotes
// are legal in help text).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
