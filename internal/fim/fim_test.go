package fim

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"daccor/internal/blktrace"
)

func e(b uint64) blktrace.Extent { return blktrace.Extent{Block: b, Len: 1} }

// classic toy dataset (items interned in first-seen order):
// t1: a b c   t2: a b   t3: a c   t4: b c   t5: a b c
func toyDataset() *Dataset {
	a, b, c := e(1), e(2), e(3)
	return NewDataset([][]blktrace.Extent{
		{a, b, c}, {a, b}, {a, c}, {b, c}, {a, b, c},
	})
}

func supportsOf(fs []Frequent) map[string]int {
	m := make(map[string]int, len(fs))
	for _, f := range fs {
		m[f.Items.key()] = f.Support
	}
	return m
}

func TestDatasetBasics(t *testing.T) {
	ds := toyDataset()
	if ds.Transactions() != 5 || ds.Items() != 3 {
		t.Fatalf("dataset = %d tx, %d items", ds.Transactions(), ds.Items())
	}
	// Duplicate extents collapse; empty transactions are dropped.
	ds2 := NewDataset([][]blktrace.Extent{{e(1), e(1), e(2)}, {}})
	if ds2.Transactions() != 1 || len(ds2.tx[0]) != 2 {
		t.Errorf("dedup/drop failed: %+v", ds2.tx)
	}
	// Decode returns extents in canonical order.
	got := ds.Decode(Itemset{1, 0}) // b, a
	if got[0] != e(1) || got[1] != e(2) {
		t.Errorf("Decode = %v", got)
	}
}

func TestInterner(t *testing.T) {
	in := NewInterner()
	id1 := in.ID(e(10))
	id2 := in.ID(e(20))
	if id1 == id2 {
		t.Fatal("distinct extents share an ID")
	}
	if in.ID(e(10)) != id1 {
		t.Error("re-interning changed the ID")
	}
	if in.Extent(id2) != e(20) {
		t.Error("Extent lookup wrong")
	}
	if in.Len() != 2 {
		t.Errorf("Len = %d", in.Len())
	}
}

func TestOptionsValidation(t *testing.T) {
	ds := toyDataset()
	for _, algo := range []Algorithm{AlgoApriori, AlgoEclat, AlgoFPGrowth, AlgoBrute} {
		if _, err := Mine(algo, ds, Options{MinSupport: 0}); err == nil {
			t.Errorf("%s: want error for MinSupport 0", algo)
		}
		if _, err := Mine(algo, ds, Options{MinSupport: 1, MaxLen: -1}); err == nil {
			t.Errorf("%s: want error for negative MaxLen", algo)
		}
	}
	if _, err := Mine("nope", ds, Options{MinSupport: 1}); err == nil {
		t.Error("want error for unknown algorithm")
	}
}

func TestToyKnownSupports(t *testing.T) {
	// Hand-computed: a=4 b=4 c=4, ab=3 ac=3 bc=3, abc=2.
	want := map[string]int{
		Itemset{0}.key():       4,
		Itemset{1}.key():       4,
		Itemset{2}.key():       4,
		Itemset{0, 1}.key():    3,
		Itemset{0, 2}.key():    3,
		Itemset{1, 2}.key():    3,
		Itemset{0, 1, 2}.key(): 2,
	}
	for _, algo := range []Algorithm{AlgoApriori, AlgoEclat, AlgoFPGrowth, AlgoBrute} {
		fs, err := Mine(algo, toyDataset(), Options{MinSupport: 2})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		got := supportsOf(fs)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: supports = %v, want %v", algo, got, want)
		}
	}
}

func TestMinSupportFilters(t *testing.T) {
	for _, algo := range []Algorithm{AlgoApriori, AlgoEclat, AlgoFPGrowth, AlgoBrute} {
		fs, err := Mine(algo, toyDataset(), Options{MinSupport: 3})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		for _, f := range fs {
			if f.Support < 3 {
				t.Errorf("%s returned support %d < 3", algo, f.Support)
			}
			if len(f.Items) == 3 {
				t.Errorf("%s returned abc (support 2) at minsup 3", algo)
			}
		}
	}
}

func TestMaxLenCap(t *testing.T) {
	for _, algo := range []Algorithm{AlgoApriori, AlgoEclat, AlgoFPGrowth, AlgoBrute} {
		fs, err := Mine(algo, toyDataset(), Options{MinSupport: 1, MaxLen: 2})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		for _, f := range fs {
			if len(f.Items) > 2 {
				t.Errorf("%s ignored MaxLen: %v", algo, f.Items)
			}
		}
	}
}

func randomTransactions(rng *rand.Rand, nTx, universe, maxLen int) [][]blktrace.Extent {
	txs := make([][]blktrace.Extent, nTx)
	for i := range txs {
		n := 1 + rng.Intn(maxLen)
		seen := map[uint64]struct{}{}
		for len(txs[i]) < n {
			b := uint64(rng.Intn(universe))
			if _, dup := seen[b]; dup {
				continue
			}
			seen[b] = struct{}{}
			txs[i] = append(txs[i], e(b))
		}
	}
	return txs
}

// The central equivalence property: all four miners agree exactly on
// random datasets, across supports and length caps.
func TestAlgorithmsEquivalentQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ds := NewDataset(randomTransactions(rng, 30+rng.Intn(40), 12, 6))
		opts := Options{
			MinSupport: 1 + rng.Intn(4),
			MaxLen:     rng.Intn(5), // 0 = unlimited
		}
		ref, err := BruteForce(ds, opts)
		if err != nil {
			return false
		}
		want := supportsOf(ref)
		for _, algo := range []Algorithm{AlgoApriori, AlgoEclat, AlgoFPGrowth} {
			fs, err := Mine(algo, ds, opts)
			if err != nil {
				return false
			}
			if !reflect.DeepEqual(supportsOf(fs), want) {
				t.Logf("%s disagrees with brute force (seed %d, opts %+v): %d vs %d sets",
					algo, seed, opts, len(fs), len(ref))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// PairFrequencies must agree with the miners' 2-itemsets at support 1.
func TestPairFrequenciesMatchMiners(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	ds := NewDataset(randomTransactions(rng, 80, 15, 7))
	direct := ds.PairFrequencies()
	fs, err := Eclat(ds, Options{MinSupport: 1, MaxLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	mined := FrequentPairs(ds, fs)
	if !reflect.DeepEqual(direct, mined) {
		t.Errorf("direct pair counting (%d pairs) disagrees with eclat (%d pairs)",
			len(direct), len(mined))
	}
}

func TestFrequentPairsIgnoresOtherLengths(t *testing.T) {
	ds := toyDataset()
	fs, err := Apriori(ds, Options{MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	pairs := FrequentPairs(ds, fs)
	if len(pairs) != 3 {
		t.Errorf("FrequentPairs = %d entries, want 3", len(pairs))
	}
	for p, sup := range pairs {
		if sup != 3 {
			t.Errorf("pair %v support = %d, want 3", p, sup)
		}
	}
}

func TestEmptyDataset(t *testing.T) {
	ds := NewDataset(nil)
	for _, algo := range []Algorithm{AlgoApriori, AlgoEclat, AlgoFPGrowth, AlgoBrute} {
		fs, err := Mine(algo, ds, Options{MinSupport: 1})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if len(fs) != 0 {
			t.Errorf("%s mined %d sets from empty dataset", algo, len(fs))
		}
	}
	if len(ds.PairFrequencies()) != 0 {
		t.Error("PairFrequencies on empty dataset should be empty")
	}
}

func TestHighSupportYieldsNothing(t *testing.T) {
	ds := toyDataset()
	for _, algo := range []Algorithm{AlgoApriori, AlgoEclat, AlgoFPGrowth, AlgoBrute} {
		fs, err := Mine(algo, ds, Options{MinSupport: 100})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if len(fs) != 0 {
			t.Errorf("%s returned %d sets at impossible support", algo, len(fs))
		}
	}
}

func TestResultCanonicallySorted(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds := NewDataset(randomTransactions(rng, 50, 10, 5))
	for _, algo := range []Algorithm{AlgoApriori, AlgoEclat, AlgoFPGrowth, AlgoBrute} {
		fs, err := Mine(algo, ds, Options{MinSupport: 2})
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(fs); i++ {
			a, b := fs[i-1].Items, fs[i].Items
			if len(a) > len(b) {
				t.Fatalf("%s: not sorted by length", algo)
			}
			if len(a) == len(b) {
				for k := range a {
					if a[k] != b[k] {
						if a[k] > b[k] {
							t.Fatalf("%s: not lexicographic at %d", algo, i)
						}
						break
					}
				}
			}
		}
	}
}

func BenchmarkMiners(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ds := NewDataset(randomTransactions(rng, 2000, 200, 8))
	for _, algo := range []Algorithm{AlgoApriori, AlgoEclat, AlgoFPGrowth} {
		b.Run(string(algo), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Mine(algo, ds, Options{MinSupport: 4, MaxLen: 2}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
