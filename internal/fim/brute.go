package fim

// BruteForce counts every subset of every transaction directly. It is
// exponential in transaction size and exists purely as the reference
// implementation the three real miners are cross-checked against in
// tests; the paper's transaction cap (8) keeps it tractable there.
func BruteForce(ds *Dataset, opts Options) ([]Frequent, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	counts := make(map[string]int)
	sets := make(map[string]Itemset)
	for _, tx := range ds.tx {
		n := len(tx)
		for mask := 1; mask < 1<<n; mask++ {
			var s Itemset
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					s = append(s, tx[i])
				}
			}
			if !opts.lenOK(len(s)) {
				continue
			}
			k := s.key()
			if _, ok := sets[k]; !ok {
				sets[k] = s
			}
			counts[k]++
		}
	}
	var result []Frequent
	for k, sup := range counts {
		if sup >= opts.MinSupport {
			result = append(result, Frequent{Items: sets[k], Support: sup})
		}
	}
	sortResult(result)
	return result, nil
}

// Algorithm names a miner for CLI selection.
type Algorithm string

// The available mining algorithms.
const (
	AlgoApriori  Algorithm = "apriori"
	AlgoEclat    Algorithm = "eclat"
	AlgoFPGrowth Algorithm = "fpgrowth"
	AlgoBrute    Algorithm = "brute"
)

// Mine dispatches to the named algorithm.
func Mine(algo Algorithm, ds *Dataset, opts Options) ([]Frequent, error) {
	switch algo {
	case AlgoApriori:
		return Apriori(ds, opts)
	case AlgoEclat:
		return Eclat(ds, opts)
	case AlgoFPGrowth:
		return FPGrowth(ds, opts)
	case AlgoBrute:
		return BruteForce(ds, opts)
	}
	return nil, errUnknownAlgo(algo)
}

type errUnknownAlgo string

func (e errUnknownAlgo) Error() string { return "fim: unknown algorithm " + string(e) }
