package fim

// Apriori is the classic level-wise algorithm (Agrawal et al., SIGMOD
// '93): frequent k-itemsets are joined into (k+1)-candidates, pruned by
// the downward-closure property, and counted with a full scan per
// level. It is the fastest of the three baselines on the paper's
// workloads but has the largest memory footprint (all candidates of a
// level are held at once).
func Apriori(ds *Dataset, opts Options) ([]Frequent, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	var result []Frequent

	// L1: frequent single items.
	supports := ds.itemSupports()
	frequent := make(map[int32]struct{})
	for id, sup := range supports {
		if sup >= opts.MinSupport {
			frequent[int32(id)] = struct{}{}
			if opts.lenOK(1) {
				result = append(result, Frequent{Items: Itemset{int32(id)}, Support: sup})
			}
		}
	}

	// Pre-filter transactions to their frequent items: the "first
	// scan" filtering the paper credits apriori's speed to.
	filtered := make([]Itemset, 0, len(ds.tx))
	for _, tx := range ds.tx {
		keep := make(Itemset, 0, len(tx))
		for _, id := range tx {
			if _, ok := frequent[id]; ok {
				keep = append(keep, id)
			}
		}
		if len(keep) >= 2 {
			filtered = append(filtered, keep)
		}
	}

	level := make([]Itemset, 0, len(frequent))
	for id := range frequent {
		level = append(level, Itemset{id})
	}
	sortResult(wrap(level)) // canonical order simplifies the join
	levelSets := level
	sortItemsets(levelSets)

	for k := 2; opts.lenOK(k) && len(levelSets) >= 2; k++ {
		candidates := aprioriJoin(levelSets)
		if len(candidates) == 0 {
			break
		}
		counts := make(map[string]int, len(candidates))
		candidateSet := make(map[string]Itemset, len(candidates))
		for _, c := range candidates {
			candidateSet[c.key()] = c
		}
		// Count candidates by enumerating k-subsets of each transaction.
		sub := make(Itemset, k)
		for _, tx := range filtered {
			if len(tx) < k {
				continue
			}
			forEachSubset(tx, sub, 0, 0, func() {
				key := sub.key()
				if _, ok := candidateSet[key]; ok {
					counts[key]++
				}
			})
		}
		var next []Itemset
		for key, sup := range counts {
			if sup >= opts.MinSupport {
				c := candidateSet[key]
				result = append(result, Frequent{Items: c, Support: sup})
				next = append(next, c)
			}
		}
		sortItemsets(next)
		levelSets = next
	}
	sortResult(result)
	return result, nil
}

// wrap views itemsets as Frequent for canonical sorting.
func wrap(sets []Itemset) []Frequent {
	fs := make([]Frequent, len(sets))
	for i, s := range sets {
		fs[i] = Frequent{Items: s}
	}
	return fs
}

func sortItemsets(sets []Itemset) {
	fs := wrap(sets)
	sortResult(fs)
	for i := range fs {
		sets[i] = fs[i].Items
	}
}

// aprioriJoin generates (k+1)-candidates from frequent k-itemsets that
// share their first k-1 items, pruning candidates with an infrequent
// k-subset (downward closure).
func aprioriJoin(level []Itemset) []Itemset {
	if len(level) == 0 {
		return nil
	}
	k := len(level[0])
	inLevel := make(map[string]struct{}, len(level))
	for _, s := range level {
		inLevel[s.key()] = struct{}{}
	}
	var out []Itemset
	for i := 0; i < len(level); i++ {
		for j := i + 1; j < len(level); j++ {
			a, b := level[i], level[j]
			if !samePrefix(a, b, k-1) {
				break // sorted level: later j's diverge too
			}
			cand := make(Itemset, k+1)
			copy(cand, a)
			cand[k] = b[k-1]
			if cand[k-1] > cand[k] {
				cand[k-1], cand[k] = cand[k], cand[k-1]
			}
			if aprioriPrune(cand, inLevel) {
				out = append(out, cand)
			}
		}
	}
	return out
}

func samePrefix(a, b Itemset, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// aprioriPrune checks that every k-subset of the (k+1)-candidate is
// frequent.
func aprioriPrune(cand Itemset, inLevel map[string]struct{}) bool {
	sub := make(Itemset, len(cand)-1)
	for skip := range cand {
		copy(sub, cand[:skip])
		copy(sub[skip:], cand[skip+1:])
		if _, ok := inLevel[sub.key()]; !ok {
			return false
		}
	}
	return true
}

// forEachSubset enumerates the size-len(sub) subsets of tx, filling sub
// in place and invoking fn for each.
func forEachSubset(tx Itemset, sub Itemset, txPos, subPos int, fn func()) {
	if subPos == len(sub) {
		fn()
		return
	}
	for i := txPos; i <= len(tx)-(len(sub)-subPos); i++ {
		sub[subPos] = tx[i]
		forEachSubset(tx, sub, i+1, subPos+1, fn)
	}
}
