// Package fim implements offline frequent itemset mining over
// transaction datasets: the apriori, eclat, and fp-growth algorithms
// the paper uses (via Borgelt's implementations) as its offline
// baselines, plus a brute-force reference miner for testing.
//
// Transactions are sets of extents. Internally extents are interned to
// dense int32 item IDs; the three algorithms operate on the vertical or
// horizontal representation of those IDs and produce identical output,
// differing only in their time/space trade-offs — the property the
// paper highlights when arguing all three are impractical for real-time
// use.
package fim

import (
	"fmt"
	"sort"

	"daccor/internal/blktrace"
)

// Itemset is a set of interned item IDs, sorted ascending.
type Itemset []int32

// key encodes the itemset for use as a map key.
func (s Itemset) key() string {
	b := make([]byte, 4*len(s))
	for i, v := range s {
		b[4*i] = byte(v)
		b[4*i+1] = byte(v >> 8)
		b[4*i+2] = byte(v >> 16)
		b[4*i+3] = byte(v >> 24)
	}
	return string(b)
}

// Frequent is one mined itemset with its support (the number of
// transactions containing all of its items).
type Frequent struct {
	Items   Itemset
	Support int
}

// Interner maps extents to dense item IDs and back.
type Interner struct {
	byExtent map[blktrace.Extent]int32
	extents  []blktrace.Extent
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{byExtent: make(map[blktrace.Extent]int32)}
}

// ID interns an extent, returning its stable dense ID.
func (in *Interner) ID(e blktrace.Extent) int32 {
	if id, ok := in.byExtent[e]; ok {
		return id
	}
	id := int32(len(in.extents))
	in.byExtent[e] = id
	in.extents = append(in.extents, e)
	return id
}

// Extent returns the extent for an ID; it panics on unknown IDs, which
// indicate a programming error.
func (in *Interner) Extent(id int32) blktrace.Extent {
	return in.extents[id]
}

// Len returns the number of distinct interned extents.
func (in *Interner) Len() int { return len(in.extents) }

// Dataset is a horizontal transaction database over interned item IDs.
type Dataset struct {
	tx       []Itemset
	interner *Interner
}

// NewDataset interns the extents of each transaction. Duplicate extents
// within a transaction are collapsed (FIM semantics: transactions are
// sets) and items within each transaction are sorted by ID.
func NewDataset(transactions [][]blktrace.Extent) *Dataset {
	ds := &Dataset{interner: NewInterner()}
	for _, tx := range transactions {
		if len(tx) == 0 {
			continue
		}
		ids := make(Itemset, 0, len(tx))
		seen := make(map[int32]struct{}, len(tx))
		for _, e := range tx {
			id := ds.interner.ID(e)
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		ds.tx = append(ds.tx, ids)
	}
	return ds
}

// Transactions returns the number of (non-empty) transactions.
func (ds *Dataset) Transactions() int { return len(ds.tx) }

// Items returns the number of distinct items.
func (ds *Dataset) Items() int { return ds.interner.Len() }

// Interner exposes the extent↔ID mapping.
func (ds *Dataset) Interner() *Interner { return ds.interner }

// Decode translates a mined itemset back to extents, sorted
// canonically.
func (ds *Dataset) Decode(s Itemset) []blktrace.Extent {
	out := make([]blktrace.Extent, len(s))
	for i, id := range s {
		out[i] = ds.interner.Extent(id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// PairFrequencies counts every unordered extent pair's exact frequency
// by direct enumeration. This is the exhaustive "support 1" ground
// truth behind Figs. 5–9; the FIM miners must agree with it for
// 2-itemsets (they are cross-checked in tests).
func (ds *Dataset) PairFrequencies() map[blktrace.Pair]int {
	out := make(map[blktrace.Pair]int)
	for _, tx := range ds.tx {
		for i := 0; i < len(tx); i++ {
			for j := i + 1; j < len(tx); j++ {
				p := blktrace.MakePair(ds.interner.Extent(tx[i]), ds.interner.Extent(tx[j]))
				out[p]++
			}
		}
	}
	return out
}

// itemSupports counts each item's support.
func (ds *Dataset) itemSupports() []int {
	counts := make([]int, ds.Items())
	for _, tx := range ds.tx {
		for _, id := range tx {
			counts[id]++
		}
	}
	return counts
}

// Options bound a mining run.
type Options struct {
	// MinSupport is the minimum number of transactions an itemset must
	// appear in; it must be >= 1.
	MinSupport int
	// MaxLen caps the itemset length; 0 means unlimited. The paper's
	// pipeline needs only pairs (MaxLen 2), which is the key
	// simplification versus general stream FIM.
	MaxLen int
}

func (o Options) validate() error {
	if o.MinSupport < 1 {
		return fmt.Errorf("fim: MinSupport must be >= 1 (got %d)", o.MinSupport)
	}
	if o.MaxLen < 0 {
		return fmt.Errorf("fim: MaxLen must be >= 0 (got %d)", o.MaxLen)
	}
	return nil
}

func (o Options) lenOK(l int) bool { return o.MaxLen == 0 || l <= o.MaxLen }

// sortResult puts mined itemsets in canonical order: by length, then
// lexicographically by item IDs — so the three algorithms' outputs are
// directly comparable.
func sortResult(fs []Frequent) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i].Items, fs[j].Items
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

// FrequentPairs filters a mining result down to 2-itemsets decoded as
// extent pairs with their supports.
func FrequentPairs(ds *Dataset, fs []Frequent) map[blktrace.Pair]int {
	out := make(map[blktrace.Pair]int)
	for _, f := range fs {
		if len(f.Items) != 2 {
			continue
		}
		out[blktrace.MakePair(ds.interner.Extent(f.Items[0]), ds.interner.Extent(f.Items[1]))] = f.Support
	}
	return out
}
