package fim

import "sort"

// FPGrowth (Han et al., SIGMOD 2000) compresses the database into a
// frequent-pattern tree — transactions sharing frequent prefixes share
// tree paths — and mines it recursively via conditional pattern bases,
// never generating candidates. It sits between apriori and eclat in the
// paper's time/space trade-off.
func FPGrowth(ds *Dataset, opts Options) ([]Frequent, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	supports := ds.itemSupports()

	var result []Frequent
	if opts.lenOK(1) {
		for id, sup := range supports {
			if sup >= opts.MinSupport {
				result = append(result, Frequent{Items: Itemset{int32(id)}, Support: sup})
			}
		}
	}
	if !opts.lenOK(2) {
		sortResult(result)
		return result, nil
	}

	// Order items by descending support (ties by ID) — the FP-tree
	// insertion order that maximises prefix sharing.
	rank := make(map[int32]int, len(supports))
	var order []int32
	for id, sup := range supports {
		if sup >= opts.MinSupport {
			order = append(order, int32(id))
		}
	}
	sort.Slice(order, func(i, j int) bool {
		si, sj := supports[order[i]], supports[order[j]]
		if si != sj {
			return si > sj
		}
		return order[i] < order[j]
	})
	for r, id := range order {
		rank[id] = r
	}

	tree := newFPTree()
	sorted := make(Itemset, 0, 16)
	for _, tx := range ds.tx {
		sorted = sorted[:0]
		for _, id := range tx {
			if _, ok := rank[id]; ok {
				sorted = append(sorted, id)
			}
		}
		sort.Slice(sorted, func(i, j int) bool { return rank[sorted[i]] < rank[sorted[j]] })
		tree.insert(sorted, 1)
	}

	mineFPTree(tree, nil, opts, &result)
	sortResult(result)
	return result, nil
}

type fpNode struct {
	item     int32
	count    int
	parent   *fpNode
	children map[int32]*fpNode
	next     *fpNode // header-table chain of same-item nodes
}

type fpTree struct {
	root    *fpNode
	headers map[int32]*fpNode // item -> first node in chain
	counts  map[int32]int     // item -> total count in this tree
}

func newFPTree() *fpTree {
	return &fpTree{
		root:    &fpNode{children: make(map[int32]*fpNode)},
		headers: make(map[int32]*fpNode),
		counts:  make(map[int32]int),
	}
}

// insert adds one (ordered) transaction with multiplicity count.
func (t *fpTree) insert(items Itemset, count int) {
	node := t.root
	for _, id := range items {
		child, ok := node.children[id]
		if !ok {
			child = &fpNode{item: id, parent: node, children: make(map[int32]*fpNode)}
			node.children[id] = child
			child.next = t.headers[id]
			t.headers[id] = child
		}
		child.count += count
		t.counts[id] += count
		node = child
	}
}

// singlePath returns the tree's unique path if it has one (the base
// case that lets fp-growth emit all combinations directly).
func (t *fpTree) singlePath() ([]fpPathElem, bool) {
	var path []fpPathElem
	node := t.root
	for {
		if len(node.children) == 0 {
			return path, true
		}
		if len(node.children) > 1 {
			return nil, false
		}
		for _, child := range node.children {
			path = append(path, fpPathElem{item: child.item, count: child.count})
			node = child
		}
	}
}

type fpPathElem struct {
	item  int32
	count int
}

// mineFPTree appends all frequent itemsets of tree (each extended by
// suffix) to result.
func mineFPTree(tree *fpTree, suffix Itemset, opts Options, result *[]Frequent) {
	if path, ok := tree.singlePath(); ok {
		emitPathCombinations(path, suffix, opts, result)
		return
	}
	// Recurse per header item, least-frequent first (order does not
	// affect the result set).
	var items []int32
	for id := range tree.headers {
		items = append(items, id)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	for _, id := range items {
		sup := tree.counts[id]
		if sup < opts.MinSupport {
			continue
		}
		itemset := make(Itemset, 0, len(suffix)+1)
		itemset = append(itemset, id)
		itemset = append(itemset, suffix...)
		if len(itemset) >= 2 && opts.lenOK(len(itemset)) {
			sorted := make(Itemset, len(itemset))
			copy(sorted, itemset)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			*result = append(*result, Frequent{Items: sorted, Support: sup})
		}
		if !opts.lenOK(len(itemset) + 1) {
			continue
		}
		// Build the conditional tree from id's prefix paths.
		cond := newFPTree()
		for node := tree.headers[id]; node != nil; node = node.next {
			var prefix Itemset
			for p := node.parent; p != nil && p.parent != nil; p = p.parent {
				prefix = append(prefix, p.item)
			}
			// prefix is leaf→root; reverse to root→leaf insertion order.
			for l, r := 0, len(prefix)-1; l < r; l, r = l+1, r-1 {
				prefix[l], prefix[r] = prefix[r], prefix[l]
			}
			if len(prefix) > 0 {
				cond.insert(prefix, node.count)
			}
		}
		// Prune infrequent items from the conditional tree by rebuilding.
		pruned := pruneFPTree(cond, opts.MinSupport)
		if len(pruned.headers) > 0 {
			mineFPTree(pruned, itemset, opts, result)
		}
	}
}

// pruneFPTree rebuilds a conditional tree keeping only items meeting
// minSupport (paths are re-inserted without the pruned items).
func pruneFPTree(t *fpTree, minSupport int) *fpTree {
	out := newFPTree()
	var walk func(node *fpNode, path Itemset)
	walk = func(node *fpNode, path Itemset) {
		// Leaf-count insertion: a node's own surplus over its children
		// represents transactions ending here.
		childSum := 0
		for _, c := range node.children {
			childSum += c.count
		}
		if node != t.root {
			path = append(path, node.item)
			if surplus := node.count - childSum; surplus > 0 {
				insertFiltered(out, path, surplus, t.counts, minSupport)
			}
		}
		for _, c := range node.children {
			walk(c, path)
		}
	}
	walk(t.root, nil)
	return out
}

func insertFiltered(out *fpTree, path Itemset, count int, counts map[int32]int, minSupport int) {
	kept := make(Itemset, 0, len(path))
	for _, id := range path {
		if counts[id] >= minSupport {
			kept = append(kept, id)
		}
	}
	if len(kept) > 0 {
		out.insert(kept, count)
	}
}

// emitPathCombinations emits every non-empty subset of a single-path
// tree, each with the minimum count along its elements.
func emitPathCombinations(path []fpPathElem, suffix Itemset, opts Options, result *[]Frequent) {
	n := len(path)
	for mask := 1; mask < 1<<n; mask++ {
		var items Itemset
		sup := int(^uint(0) >> 1)
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				items = append(items, path[i].item)
				if path[i].count < sup {
					sup = path[i].count
				}
			}
		}
		if sup < opts.MinSupport {
			continue
		}
		full := make(Itemset, 0, len(items)+len(suffix))
		full = append(full, items...)
		full = append(full, suffix...)
		if len(full) < 2 || !opts.lenOK(len(full)) {
			continue
		}
		sort.Slice(full, func(i, j int) bool { return full[i] < full[j] })
		*result = append(*result, Frequent{Items: full, Support: sup})
	}
}
