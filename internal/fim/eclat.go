package fim

// Eclat (Zaki, TKDE 2000) mines the vertical representation: each item
// maps to the sorted list of transaction IDs containing it, and a
// depth-first search extends prefixes by intersecting tidlists. Memory
// stays proportional to the current search path — the trade-off the
// paper describes as "reduces the memory consumption but significantly
// increases the running time".
func Eclat(ds *Dataset, opts Options) ([]Frequent, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	// Build the vertical database.
	tidlists := make(map[int32][]int32)
	for tid, tx := range ds.tx {
		for _, id := range tx {
			tidlists[id] = append(tidlists[id], int32(tid))
		}
	}
	// Frequent single items, in ID order for a deterministic DFS.
	var items []int32
	for id := int32(0); id < int32(ds.Items()); id++ {
		if len(tidlists[id]) >= opts.MinSupport {
			items = append(items, id)
		}
	}
	var result []Frequent
	if opts.lenOK(1) {
		for _, id := range items {
			result = append(result, Frequent{Items: Itemset{id}, Support: len(tidlists[id])})
		}
	}
	type extension struct {
		item int32
		tids []int32
	}
	// DFS over prefix extensions.
	var dfs func(prefix Itemset, exts []extension)
	dfs = func(prefix Itemset, exts []extension) {
		for i, x := range exts {
			set := make(Itemset, len(prefix)+1)
			copy(set, prefix)
			set[len(prefix)] = x.item
			if len(set) >= 2 {
				result = append(result, Frequent{Items: set, Support: len(x.tids)})
			}
			if !opts.lenOK(len(set) + 1) {
				continue
			}
			var next []extension
			for _, y := range exts[i+1:] {
				inter := intersect(x.tids, y.tids)
				if len(inter) >= opts.MinSupport {
					next = append(next, extension{item: y.item, tids: inter})
				}
			}
			if len(next) > 0 {
				dfs(set, next)
			}
		}
	}
	if opts.lenOK(2) {
		roots := make([]extension, len(items))
		for i, id := range items {
			roots[i] = extension{item: id, tids: tidlists[id]}
		}
		dfs(nil, roots)
	}
	sortResult(result)
	return result, nil
}

// intersect merges two sorted tidlists.
func intersect(a, b []int32) []int32 {
	out := make([]int32, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
