package soak

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"daccor/internal/blktrace"
	"daccor/internal/checkpoint"
	"daccor/internal/core"
	"daccor/internal/engine"
	"daccor/internal/fleet"
	"daccor/internal/monitor"
	"daccor/internal/obs"
	"daccor/internal/realtime"
	"daccor/internal/workload"
	"daccor/pkg/client"
)

// Result is what one soak run measured. Violations is empty when every
// SLO held.
type Result struct {
	Devices         int
	Partitions      int
	EventsSubmitted uint64
	EventsDropped   uint64
	HTTPEvents      uint64
	Elapsed         time.Duration

	// ReorderLate and ReorderLost sum the reordering-buffer counters
	// (daccor_engine_reorder_{late,lost}_total) across every device
	// still registered at run end — late releases behind an
	// already-released timestamp, and events shed before the buffer
	// under DropOldest.
	ReorderLate uint64
	ReorderLost uint64

	SubmitP99     time.Duration
	SubmitMax     time.Duration
	SubmitSamples uint64
	HTTPSubmitP99 time.Duration
	HTTPSamples   uint64

	HeapBaseline      uint64
	HeapFinal         uint64
	GoroutineBaseline int
	GoroutineFinal    int
	SeriesBaseline    int
	SeriesFinal       int

	// Fleet topology accounting (Config.FleetSync > 0): sync rounds
	// completed and abandoned, bytes shipped by frame kind (the
	// delta/full split showing incremental sync earning its keep), the
	// worst aggregator-observed sync age at any sample point, the
	// aggregator read-path sample counts (reads must stay 200 no
	// matter what the run injects), and whether the mirror converged
	// on the engine's merged snapshot once the load stopped.
	FleetSyncRounds   uint64
	FleetSyncFailures uint64
	FleetDeltaBytes   uint64
	FleetFullBytes    uint64
	FleetMaxSyncAge   time.Duration
	FleetReads        uint64
	FleetReadErrors   uint64
	FleetConverged    bool

	ChurnCycles     int
	ChurnErrors     int
	ChurnLastError  string
	BadWatchEnds    int
	PanicsInjected  int
	WatchDeliveries uint64
	StalledWatchers int
	MaxWatchGap     time.Duration
	FleetDeliveries uint64
	FleetMaxGap     time.Duration
	Queries         uint64
	QueryErrors     uint64

	TimedOut   bool
	Violations []string
}

// HeapGrowth is live-heap growth from the post-warmup baseline to
// after shutdown (zero when the final heap is smaller).
func (r *Result) HeapGrowth() uint64 {
	if r.HeapFinal <= r.HeapBaseline {
		return 0
	}
	return r.HeapFinal - r.HeapBaseline
}

// DropPct is shed events as a percentage of submitted events.
func (r *Result) DropPct() float64 {
	if r.EventsSubmitted == 0 {
		return 0
	}
	return 100 * float64(r.EventsDropped) / float64(r.EventsSubmitted)
}

// ReorderLatePct is late reordering-buffer releases as a percentage of
// submitted events.
func (r *Result) ReorderLatePct() float64 {
	if r.EventsSubmitted == 0 {
		return 0
	}
	return 100 * float64(r.ReorderLate) / float64(r.EventsSubmitted)
}

// deviceID names the i-th tenant.
func deviceID(i int) string { return fmt.Sprintf("vol-%04d", i) }

// streamKinds rotates workload shapes across the fleet so the run
// exercises every correlation kind.
var streamKinds = []workload.Kind{workload.OneToOne, workload.OneToMany, workload.ManyToMany}

// seriesSlack is how many metric series may legitimately appear after
// the baseline snapshot (late-materializing HTTP route/status series).
// A device-series leak under churn is an order of magnitude larger.
const seriesSlack = 16

// Run executes one soak per cfg and reports the measured Result. logf
// (nil for silent) receives coarse progress lines. The returned error
// covers setup failures only; SLO violations land in
// Result.Violations so the caller can both report and gate.
func Run(cfg Config, logf func(format string, args ...any)) (*Result, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	parts := cfg.Partitions
	if parts == 0 {
		parts = 1
	}
	res := &Result{Devices: cfg.Devices, Partitions: parts, GoroutineBaseline: runtime.NumGoroutine()}

	ckptDir, err := os.MkdirTemp("", "daccor-soak-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(ckptDir)
	store, err := checkpoint.Open(checkpoint.Config{Dir: ckptDir, Keep: 2})
	if err != nil {
		return nil, err
	}

	// Crash injection: the process hook counts analyzed events and
	// panics the worker that crosses each threshold — a different,
	// schedule-dependent victim each time, which is the point. Each
	// threshold is crossed exactly once (the counter is monotone), so
	// each injection fires exactly once.
	var processed atomic.Uint64
	var panicsFired atomic.Uint32
	thresholds := make([]uint64, cfg.Panics)
	for i := range thresholds {
		thresholds[i] = cfg.Events * uint64(i+1) / uint64(cfg.Panics+2)
	}
	hook := func(string, blktrace.Event) {
		n := processed.Add(1)
		idx := panicsFired.Load()
		if int(idx) < len(thresholds) && n == thresholds[idx] {
			panicsFired.Store(idx + 1)
			panic(fmt.Sprintf("soak: injected crash %d/%d at %d analyzed events", idx+1, len(thresholds), n))
		}
	}

	reg := obs.NewRegistry()
	eng, err := engine.New(
		engine.WithMonitor(monitor.Config{Window: monitor.StaticWindow(cfg.Window)}),
		// Modest per-device synopsis caps: fleet-wide merges walk
		// Devices x PairCapacity entries, and the fleet watch/query
		// paths keep exercising them throughout the run.
		engine.WithAnalyzer(core.Config{ItemCapacity: 256, PairCapacity: 256}),
		engine.WithQueueSize(cfg.QueueSize),
		engine.WithPartitions(parts),
		engine.WithBackpressure(engine.DropOldest),
		engine.WithMetrics(reg),
		engine.WithSupervisor(engine.SupervisorConfig{
			BackoffBase: 5 * time.Millisecond,
			BackoffCap:  100 * time.Millisecond,
			Probation:   64,
		}),
		engine.WithCheckpoints(store, cfg.CheckpointEvery),
		engine.WithProcessHook(hook),
	)
	if err != nil {
		return nil, err
	}
	defer eng.Stop()
	for i := 0; i < cfg.Devices; i++ {
		if err := eng.Register(deviceID(i)); err != nil {
			return nil, err
		}
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: realtime.NewEngineHandler(eng)}
	go srv.Serve(ln)
	defer srv.Close()
	transport := &http.Transport{MaxIdleConnsPerHost: cfg.Watchers + 4}
	cl := client.New("http://"+ln.Addr().String(), client.WithHTTPClient(&http.Client{Transport: transport}))

	// Fleet topology: the engine doubles as a collector pushing delta
	// syncs to an in-process aggregator over real HTTP; a sampler
	// keeps reading the aggregator's merged surface and recording the
	// staleness it reports.
	var (
		agg     *fleet.Aggregator
		syncCl  *fleet.SyncClient
		aggSrv  *http.Server
		aggURL  string
		fReads  atomic.Uint64
		fErrs   atomic.Uint64
		fMaxAge atomic.Int64
	)
	if cfg.FleetSync > 0 {
		lease := 5 * cfg.FleetSync
		if lease < 2*time.Second {
			lease = 2 * time.Second
		}
		agg = fleet.NewAggregator(fleet.Config{Lease: lease, FailAfter: cfg.MaxDuration})
		aln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		aggSrv = &http.Server{Handler: fleet.NewHandler(agg)}
		go aggSrv.Serve(aln)
		defer aggSrv.Close()
		aggURL = "http://" + aln.Addr().String()
		if syncCl, err = fleet.NewSyncClient(fleet.ClientConfig{
			Aggregator: aggURL,
			Collector:  "soak-collector",
			Engine:     eng,
			Interval:   cfg.FleetSync,
		}); err != nil {
			return nil, err
		}
		syncCl.Start()
	}

	// runCtx governs producers and doubles as the wedge watchdog;
	// auxCtx governs the observers (watchers, queries, churner), which
	// are shut down after the producers finish.
	runCtx, cancelRun := context.WithTimeout(context.Background(), cfg.MaxDuration)
	defer cancelRun()
	auxCtx, cancelAux := context.WithCancel(context.Background())
	defer cancelAux()

	var submitted, httpEvents atomic.Uint64
	start := time.Now()

	// Producers: cfg.Feeders engine-path feeders plus one HTTP-path
	// feeder, each owning a disjoint slice of the fleet. The per-batch
	// pace stretches the run to at least MinDuration, so the observers
	// act mid-stream instead of racing a burst.
	producers := cfg.Feeders + 1
	var pace time.Duration
	if cfg.MinDuration > 0 {
		pace = time.Duration(uint64(cfg.MinDuration) * uint64(cfg.Batch) * uint64(producers) / cfg.Events)
	}
	recs := make([]*latRecorder, producers)
	var feedWg sync.WaitGroup
	for p := 0; p < producers; p++ {
		rec := &latRecorder{}
		recs[p] = rec
		var ids []string
		for i := p; i < cfg.Devices; i += producers {
			ids = append(ids, deviceID(i))
		}
		feedWg.Add(1)
		go func(p int, ids []string, rec *latRecorder) {
			defer feedWg.Done()
			feed(runCtx, feedEnv{
				cfg: cfg, eng: eng, cl: cl, ids: ids, rec: rec, pace: pace,
				http: p == cfg.Feeders, submitted: &submitted, httpEvents: &httpEvents,
			})
		}(p, ids, rec)
	}

	// Observers. The churner is not on auxWg: it finishes its cycle
	// count on its own (all thresholds sit below the event target) and
	// is only aborted by auxCtx if it wedges.
	var auxWg sync.WaitGroup
	ch := &churner{cfg: cfg, eng: eng, cl: cl, submitted: &submitted}
	churnDone := make(chan struct{})
	go func() { defer close(churnDone); ch.run(auxCtx) }()

	ws := &watchSet{cfg: cfg, cl: cl, logf: logf}
	for i := 0; i < cfg.Watchers; i++ {
		dev := "" // fleet route
		if i > 0 {
			dev = deviceID(cfg.Devices - i) // stable back-of-fleet devices
		}
		auxWg.Add(1)
		go func(dev string) { defer auxWg.Done(); ws.watch(auxCtx, dev) }(dev)
	}

	var queries, queryErrs atomic.Uint64
	auxWg.Add(1)
	go func() {
		defer auxWg.Done()
		queryLoop(auxCtx, cl, deviceID(cfg.Devices-cfg.Watchers), &queries, &queryErrs)
	}()

	if agg != nil {
		auxWg.Add(1)
		go func() {
			defer auxWg.Done()
			fleetSampleLoop(auxCtx, agg, aggURL, &fReads, &fErrs, &fMaxAge)
		}()
	}

	// Post-warmup baselines: heap after 10% of the load (every arena,
	// queue, and watcher is live by then) and metric-series
	// cardinality once the HTTP routes have materialized their series.
	warm := cfg.Events / 10
	for submitted.Load() < warm && runCtx.Err() == nil {
		time.Sleep(5 * time.Millisecond)
	}
	res.HeapBaseline = measureHeap()
	res.SeriesBaseline = reg.NumSeries()
	logf("soak: warmed up at %d events, heap baseline %d MiB, %d series",
		submitted.Load(), res.HeapBaseline>>20, res.SeriesBaseline)

	feedWg.Wait()
	res.Elapsed = time.Since(start)
	res.TimedOut = runCtx.Err() != nil && submitted.Load() < cfg.Events
	// Give the churner a grace period to finish any in-flight cycle
	// (its thresholds are all below the event target, so it normally
	// finished long ago), then shut the observers down.
	select {
	case <-churnDone:
	case <-time.After(30 * time.Second):
	}
	cancelAux()
	auxWg.Wait()
	<-churnDone

	// Fleet teardown: stop the periodic loop, then drive final rounds
	// until the aggregator's merged mirror is exactly the engine's
	// merged snapshot — the convergence obligation of the whole sync
	// protocol, asserted while the engine is still live.
	if syncCl != nil {
		syncCl.Close()
		res.FleetConverged = settleFleet(eng, agg, syncCl)
		st := syncCl.Stats()
		res.FleetSyncRounds = st.Rounds
		res.FleetSyncFailures = st.Failures
		res.FleetDeltaBytes = st.DeltaBytes
		res.FleetFullBytes = st.FullBytes
		res.FleetMaxSyncAge = time.Duration(fMaxAge.Load())
		res.FleetReads = fReads.Load()
		res.FleetReadErrors = fErrs.Load()
		agg.Close()
		aggSrv.Close()
	}

	// Account drops before Stop: registered shards via Stats, churned
	// shards via the counters the churner saved before each
	// Unregister.
	res.EventsSubmitted = submitted.Load()
	res.HTTPEvents = httpEvents.Load()
	if st, err := eng.Stats(); err == nil {
		res.EventsDropped = st.TotalDropped() + ch.droppedChurned
	}
	res.SeriesFinal = reg.NumSeries()
	res.ReorderLate = sumCounter(reg, engine.MetricReorderLate)
	res.ReorderLost = sumCounter(reg, engine.MetricReorderLost)
	res.ChurnCycles = ch.completed
	res.ChurnErrors = ch.errors
	if ch.lastErr != nil {
		res.ChurnLastError = ch.lastErr.Error()
	}
	res.BadWatchEnds = ch.badEnds
	res.PanicsInjected = int(panicsFired.Load())
	res.WatchDeliveries = ws.deliveries.Load()
	res.StalledWatchers = ws.stalled
	res.MaxWatchGap = ws.maxGap
	res.FleetDeliveries = ws.fleetDeliveries
	res.FleetMaxGap = ws.fleetMaxGap
	res.Queries = queries.Load()
	res.QueryErrors = queryErrs.Load()

	engineRec := &latRecorder{}
	for _, rec := range recs[:cfg.Feeders] {
		engineRec.merge(rec)
	}
	httpRec := recs[cfg.Feeders]
	res.SubmitP99 = time.Duration(engineRec.quantile(0.99))
	res.SubmitMax = time.Duration(engineRec.max)
	res.SubmitSamples = engineRec.count
	res.HTTPSubmitP99 = time.Duration(httpRec.quantile(0.99))
	res.HTTPSamples = httpRec.count

	eng.Stop() // final checkpoint flush; idempotent with the defer
	srv.Close()
	transport.CloseIdleConnections()
	res.HeapFinal = measureHeap()
	res.GoroutineFinal = settleGoroutines(res.GoroutineBaseline + cfg.SLO.MaxGoroutineGrowth)
	logf("soak: %d events in %v (%.0f ev/s), %d dropped, %d churns, %d panics, %d watch deliveries",
		res.EventsSubmitted, res.Elapsed.Round(time.Millisecond),
		float64(res.EventsSubmitted)/res.Elapsed.Seconds(),
		res.EventsDropped, res.ChurnCycles, res.PanicsInjected, res.WatchDeliveries)

	res.evaluate(cfg)
	return res, nil
}

// feedEnv is one producer's world.
type feedEnv struct {
	cfg        Config
	eng        *engine.Engine
	cl         *client.Client
	ids        []string
	rec        *latRecorder
	pace       time.Duration
	http       bool
	submitted  *atomic.Uint64
	httpEvents *atomic.Uint64
}

// feed pushes batches round-robin across its devices until the global
// target is reached. Each tenant gets its own deterministic stream
// (seeded per (cfg.Seed, tenant)); a device that is churned away
// mid-round is skipped until it returns. Producers pace on queue lag
// rather than a fixed rate: full-throttle while the worker keeps up,
// brief backoff when it falls behind, and after a bounded wait the
// batch is submitted anyway so a genuinely wedged worker surfaces as
// drops (and fails the drop SLO) instead of stalling the run.
func feed(ctx context.Context, env feedEnv) {
	streams := make(map[string]*workload.Stream, len(env.ids))
	for i, id := range env.ids {
		st, err := workload.NewStream(workload.SyntheticConfig{
			Kind: streamKinds[i%len(streamKinds)],
			Seed: workload.TenantSeed(env.cfg.Seed, id),
		})
		if err != nil {
			return // validated config cannot fail here
		}
		streams[id] = st
	}
	handles := make(map[string]*engine.Device, len(env.ids))
	buf := make([]blktrace.Event, env.cfg.Batch)
	for ctx.Err() == nil && env.submitted.Load() < env.cfg.Events {
		for _, id := range env.ids {
			if env.submitted.Load() >= env.cfg.Events {
				return
			}
			if env.pace > 0 {
				select {
				case <-ctx.Done():
					return
				case <-time.After(env.pace):
				}
			} else if ctx.Err() != nil {
				return
			}
			batch := streams[id].NextBatch(buf)
			if env.http {
				t0 := time.Now()
				n, err := env.cl.SubmitEvents(ctx, id, batch)
				env.rec.record(time.Since(t0).Nanoseconds())
				if err == nil {
					env.submitted.Add(uint64(n))
					env.httpEvents.Add(uint64(n))
				}
				continue
			}
			d := handles[id]
			if d == nil {
				var err error
				if d, err = env.eng.Device(id); err != nil {
					continue // churned away; retry next round
				}
				handles[id] = d
			}
			for try := 0; try < 5 && d.Lag() > env.cfg.QueueSize/2; try++ {
				time.Sleep(200 * time.Microsecond)
			}
			t0 := time.Now()
			err := d.SubmitBatch(batch)
			env.rec.record(time.Since(t0).Nanoseconds())
			if err != nil {
				delete(handles, id) // stale after churn or failure; re-resolve
				continue
			}
			env.submitted.Add(uint64(len(batch)))
		}
	}
}

// churner cycles tenants out of and back into the fleet while load is
// flowing: watch the victim, Unregister over HTTP, require the
// watcher's terminal end event, then re-Register (which restores the
// tenant's checkpoint). Cycles are spread evenly across the run by
// submitted-event thresholds.
type churner struct {
	cfg       Config
	eng       *engine.Engine
	cl        *client.Client
	submitted *atomic.Uint64

	completed      int
	errors         int
	lastErr        error
	badEnds        int
	droppedChurned uint64
}

func (c *churner) run(ctx context.Context) {
	cycles := c.cfg.churnCycles()
	for k := 0; k < cycles; k++ {
		// Spread cycles across the first 90% of the load, so the last
		// ones still run against live traffic instead of racing the
		// shutdown grace period.
		target := c.cfg.Events * uint64(k+1) * 9 / (10 * uint64(cycles+1))
		for c.submitted.Load() < target {
			select {
			case <-ctx.Done():
				return
			case <-time.After(time.Millisecond):
			}
		}
		victim := deviceID(k)
		w, werr := c.cl.Watch(ctx, victim, client.Query{Support: 1})
		if n, err := c.eng.Dropped(victim); err == nil {
			c.droppedChurned += n
		}
		if err := c.cl.Unregister(ctx, victim); err != nil {
			c.errors++
			c.lastErr = fmt.Errorf("unregister %s: %w", victim, err)
			if werr == nil {
				w.Close()
			}
			continue
		}
		if werr == nil {
			for range w.Events() {
				// drain until the terminal end closes the channel
			}
			var end *client.WatchEndError
			if err := w.Err(); !errors.As(err, &end) {
				c.badEnds++
			}
			w.Close()
		}
		if err := c.eng.Register(victim); err != nil {
			c.errors++
			c.lastErr = fmt.Errorf("re-register %s: %w", victim, err)
			continue
		}
		c.completed++
	}
}

// watchSet holds the long-lived SSE watchers and their liveness
// metrics: total deliveries, the worst gap between consecutive
// deliveries on any one stream, and how many streams never delivered.
type watchSet struct {
	cfg  Config
	cl   *client.Client
	logf func(format string, args ...any)

	deliveries atomic.Uint64

	mu              sync.Mutex
	maxGap          time.Duration
	fleetMaxGap     time.Duration
	fleetDeliveries uint64
	stalled         int
}

func (s *watchSet) watch(ctx context.Context, dev string) {
	// Paced deliveries: at fleet scale an unpaced watcher makes the
	// server recompute the merged state on every advance of any
	// device, which on small CI machines starves the ingest path. The
	// fleet stream's state is a full merge across the fleet — tens of
	// CPU-seconds per delivery at 256 devices under -race on one core
	// — so it gets a long interval to keep its duty cycle low, and its
	// gap is tracked separately: per-device streams are the liveness
	// signal, the fleet stream is the merge-path coverage.
	q := client.Query{Support: 2, Top: 8, Interval: 250 * time.Millisecond}
	if dev == "" {
		q = client.Query{Support: 5, Top: 8, Interval: 30 * time.Second}
	}
	w, err := s.cl.Watch(ctx, dev, q)
	if err != nil {
		s.mu.Lock()
		s.stalled++
		s.mu.Unlock()
		return
	}
	defer w.Close()
	var gap time.Duration
	n := 0
	last := time.Now()
	for range w.Events() {
		now := time.Now()
		if d := now.Sub(last); d > gap {
			gap = d
		}
		last = now
		n++
		s.deliveries.Add(1)
	}
	name := dev
	if name == "" {
		name = "fleet"
	}
	s.logf("soak: watcher %s: %d deliveries, max gap %v", name, n, gap.Round(time.Millisecond))
	s.mu.Lock()
	if dev == "" {
		s.fleetDeliveries += uint64(n)
		if gap > s.fleetMaxGap {
			s.fleetMaxGap = gap
		}
	} else if gap > s.maxGap {
		s.maxGap = gap
	}
	if n == 0 {
		s.stalled++
	}
	s.mu.Unlock()
}

// queryLoop keeps read traffic flowing against a stable device and the
// fleet routes for the whole run. Errors are counted, not fatal: a 503
// from /v1/healthz during a crash-restart probation window is the
// health gate doing its job.
func queryLoop(ctx context.Context, cl *client.Client, dev string, ok, errs *atomic.Uint64) {
	q := client.Query{Support: 2, Top: 8}
	for i := 0; ctx.Err() == nil; i++ {
		var err error
		switch i % 4 {
		case 0:
			_, err = cl.Stats(ctx)
		case 1:
			_, err = cl.DeviceSnapshot(ctx, dev, q)
		case 2:
			_, err = cl.FleetRules(ctx, q)
		case 3:
			_, err = cl.Health(ctx)
		}
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			errs.Add(1)
		} else {
			ok.Add(1)
		}
		// A multi-second spacing keeps read traffic flowing all run
		// while bounding how often the expensive fleet merge (case 2)
		// runs on a small CI machine.
		select {
		case <-ctx.Done():
			return
		case <-time.After(2 * time.Second):
		}
	}
}

// fleetSampleLoop keeps the aggregator's read surface hot and records
// the staleness it serves: it reads the merged snapshot over HTTP
// (counting anything but a 200 as an error — degraded must never mean
// 5xx) and samples the aggregator's reported max sync age.
func fleetSampleLoop(ctx context.Context, agg *fleet.Aggregator, base string, ok, errs *atomic.Uint64, maxAge *atomic.Int64) {
	hc := &http.Client{Timeout: 15 * time.Second}
	for ctx.Err() == nil {
		if age := int64(agg.MaxSyncAge()); age > maxAge.Load() {
			maxAge.Store(age)
		}
		resp, err := hc.Get(base + "/v1/snapshot?support=2&top=8")
		switch {
		case err != nil:
			if ctx.Err() != nil {
				return
			}
			errs.Add(1)
		case resp.StatusCode == http.StatusOK:
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			ok.Add(1)
		default:
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			errs.Add(1)
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(time.Second):
		}
	}
}

// settleFleet drives final sync rounds until the aggregator's merged
// mirror is DeepEqual to the engine's merged snapshot — the exact
// single-process answer — bounded so a wedged sync path surfaces as a
// convergence violation instead of hanging the run.
func settleFleet(eng *engine.Engine, agg *fleet.Aggregator, sc *fleet.SyncClient) bool {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		_, err := sc.SyncNow(ctx)
		cancel()
		if err == nil {
			want, werr := eng.MergedSnapshot(0)
			if werr == nil && reflect.DeepEqual(agg.MergedSnapshot(0), want) {
				return true
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	return false
}

// sumCounter sums one metric's value across every label combination in
// the registry's Prometheus exposition (devices churned away mid-run
// took their series with them, so the sum covers the surviving fleet).
func sumCounter(reg *obs.Registry, name string) uint64 {
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		return 0
	}
	var total float64
	for _, line := range strings.Split(sb.String(), "\n") {
		rest, ok := strings.CutPrefix(line, name)
		if !ok || (!strings.HasPrefix(rest, "{") && !strings.HasPrefix(rest, " ")) {
			continue // comment line or a longer metric sharing the prefix
		}
		if i := strings.LastIndexByte(rest, ' '); i >= 0 {
			if v, err := strconv.ParseFloat(rest[i+1:], 64); err == nil {
				total += v
			}
		}
	}
	return uint64(total)
}

// measureHeap forces a collection and returns live heap bytes.
func measureHeap() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// settleGoroutines waits (bounded) for the goroutine count to fall to
// target — shutdown is asynchronous at the edges (HTTP keepalives,
// watcher run loops) — and returns the final count.
func settleGoroutines(target int) int {
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= target || time.Now().After(deadline) {
			return n
		}
		time.Sleep(50 * time.Millisecond)
	}
}
