package soak

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestLatRecorder(t *testing.T) {
	r := &latRecorder{}
	if r.quantile(0.99) != 0 {
		t.Error("empty recorder should report 0")
	}
	for i := 0; i < 99; i++ {
		r.record(1000) // ~1 µs
	}
	r.record(1_000_000_000) // one 1 s outlier
	if got := time.Duration(r.quantile(0.5)); got > 2*time.Microsecond {
		t.Errorf("p50 = %v, want ~1µs bucket", got)
	}
	p99 := time.Duration(r.quantile(0.99))
	if p99 > 2*time.Microsecond {
		t.Errorf("p99 = %v; 99/100 samples are ~1µs", p99)
	}
	if got := time.Duration(r.quantile(1)); got != time.Second {
		t.Errorf("p100 = %v, want the 1s max", got)
	}
	if r.max != 1_000_000_000 {
		t.Errorf("max = %d", r.max)
	}

	other := &latRecorder{}
	other.record(-5) // clamps, does not underflow
	other.record(1 << 62)
	merged := &latRecorder{}
	merged.merge(r)
	merged.merge(other)
	if merged.count != r.count+other.count {
		t.Errorf("merged count = %d", merged.count)
	}
	if merged.max != 1<<62 {
		t.Errorf("merged max = %d", merged.max)
	}
}

func TestConfigValidate(t *testing.T) {
	for _, profile := range []Config{Quick(), Tiny()} {
		if err := profile.validate(); err != nil {
			t.Errorf("profile invalid: %v", err)
		}
	}
	bad := []func(*Config){
		func(c *Config) { c.Devices = 0 },
		func(c *Config) { c.Events = 0 },
		func(c *Config) { c.Feeders = 0 },
		func(c *Config) { c.Batch = 0 },
		func(c *Config) { c.QueueSize = c.Batch - 1 },
		func(c *Config) { c.Partitions = -1 },
		func(c *Config) { c.Partitions = 65 },
		func(c *Config) { c.ChurnFrac = 1.5 },
		func(c *Config) { c.Panics = -1 },
		func(c *Config) { c.Watchers = 0 },
		func(c *Config) { c.ChurnFrac = 1; c.Watchers = 4 }, // victims collide with watch targets
		func(c *Config) { c.Window = 0 },
		func(c *Config) { c.CheckpointEvery = 0 },
		func(c *Config) { c.MaxDuration = 0 },
		func(c *Config) { c.MinDuration = -1 },
		func(c *Config) { c.MinDuration = c.MaxDuration },
	}
	for i, mutate := range bad {
		c := Tiny()
		mutate(&c)
		if err := c.validate(); err == nil {
			t.Errorf("mutation %d: invalid config accepted", i)
		}
	}
}

func TestEvaluateFlagsViolations(t *testing.T) {
	cfg := Tiny()
	// A clean result: everything the structural checks demand.
	clean := func() *Result {
		return &Result{
			EventsSubmitted: cfg.Events,
			HTTPEvents:      100,
			SubmitP99:       time.Millisecond,
			HTTPSubmitP99:   time.Millisecond,
			ChurnCycles:     cfg.churnCycles(),
			PanicsInjected:  cfg.Panics,
			WatchDeliveries: 10,
			FleetDeliveries: 2,
			Queries:         10,
			FleetSyncRounds: 20,
			FleetConverged:  true,
			FleetReads:      5,
		}
	}
	r := clean()
	r.evaluate(cfg)
	if len(r.Violations) != 0 {
		t.Fatalf("clean result flagged: %v", r.Violations)
	}

	cases := []struct {
		name   string
		mutate func(*Result)
		want   string
	}{
		{"timeout", func(r *Result) { r.TimedOut = true }, "timed out"},
		{"short", func(r *Result) { r.EventsSubmitted = 1 }, "submitted"},
		{"no http", func(r *Result) { r.HTTPEvents = 0 }, "HTTP ingest"},
		{"p99", func(r *Result) { r.SubmitP99 = cfg.SLO.SubmitP99 + 1 }, "p99"},
		{"drops", func(r *Result) { r.EventsDropped = r.EventsSubmitted }, "drop rate"},
		{"reorder late", func(r *Result) { r.ReorderLate = r.EventsSubmitted }, "reorder late"},
		{"reorder lost", func(r *Result) { r.ReorderLost = r.EventsDropped + 1 }, "reorder lost"},
		{"heap", func(r *Result) { r.HeapFinal = r.HeapBaseline + cfg.SLO.MaxHeapGrowth + 1 }, "heap"},
		{"goroutines", func(r *Result) { r.GoroutineFinal = cfg.SLO.MaxGoroutineGrowth + 1 }, "goroutines"},
		{"series", func(r *Result) { r.SeriesFinal = r.SeriesBaseline + seriesSlack + 1 }, "series"},
		{"churn", func(r *Result) { r.ChurnCycles-- }, "churn"},
		{"bad end", func(r *Result) { r.BadWatchEnds = 1 }, "terminal end"},
		{"panics", func(r *Result) { r.PanicsInjected-- }, "panics"},
		{"stalled", func(r *Result) { r.StalledWatchers = 1 }, "never delivered"},
		{"gap", func(r *Result) { r.MaxWatchGap = cfg.SLO.MaxWatchGap + 1 }, "gap"},
		{"fleet silent", func(r *Result) { r.FleetDeliveries = 0 }, "fleet watcher"},
		{"queries", func(r *Result) { r.Queries = 0 }, "query"},
		{"sync silent", func(r *Result) { r.FleetSyncRounds = 0 }, "sync never"},
		{"diverged", func(r *Result) { r.FleetConverged = false }, "converge"},
		{"fleet reads", func(r *Result) { r.FleetReads = 0 }, "fleet read traffic"},
		{"fleet read errors", func(r *Result) { r.FleetReadErrors = 3 }, "fleet reads failed"},
		{"sync age", func(r *Result) { r.FleetMaxSyncAge = cfg.SLO.MaxSyncAge + 1 }, "sync age"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := clean()
			tc.mutate(r)
			r.evaluate(cfg)
			if len(r.Violations) == 0 {
				t.Fatal("violation not flagged")
			}
			found := false
			for _, v := range r.Violations {
				if strings.Contains(v, tc.want) {
					found = true
				}
			}
			if !found {
				t.Errorf("violations %v mention %q nowhere", r.Violations, tc.want)
			}
		})
	}
}

// TestRunMicro drives the whole harness end to end at unit-test scale:
// real engine, real HTTP server, churn, an injected panic, watchers,
// and queries, with every SLO expected to hold — once on the
// single-partition pipeline, once with each device's analyzer split
// across four partition workers.
func TestRunMicro(t *testing.T) {
	if testing.Short() {
		t.Skip("soak run in -short mode")
	}
	for _, parts := range []int{1, 4} {
		t.Run(fmt.Sprintf("partitions-%d", parts), func(t *testing.T) {
			cfg := Config{
				Devices:         6,
				Events:          8_000,
				Feeders:         2,
				Batch:           64,
				QueueSize:       256,
				Partitions:      parts,
				ChurnFrac:       0.34, // 2 cycles
				Panics:          1,
				Watchers:        2,
				Window:          5 * time.Millisecond,
				CheckpointEvery: 25 * time.Millisecond,
				FleetSync:       50 * time.Millisecond,
				Seed:            7,
				MinDuration:     1500 * time.Millisecond,
				MaxDuration:     90 * time.Second,
				SLO: SLO{
					SubmitP99:          5 * time.Second,
					HTTPSubmitP99:      10 * time.Second,
					MaxDropPct:         50,
					MaxHeapGrowth:      256 << 20,
					MaxGoroutineGrowth: 16,
					MaxWatchGap:        time.Minute,
					MaxReorderLatePct:  5,
					MaxSyncAge:         time.Minute,
				},
			}
			res, err := Run(cfg, t.Logf)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Violations) != 0 {
				t.Fatalf("SLO violations: %v", res.Violations)
			}
			if res.Partitions != parts {
				t.Errorf("partitions %d, want %d", res.Partitions, parts)
			}
			if res.EventsSubmitted < cfg.Events {
				t.Errorf("submitted %d < %d", res.EventsSubmitted, cfg.Events)
			}
			if res.HTTPEvents == 0 {
				t.Error("HTTP path idle")
			}
			if res.ChurnCycles != cfg.churnCycles() {
				t.Errorf("churn cycles %d, want %d", res.ChurnCycles, cfg.churnCycles())
			}
			if res.PanicsInjected != cfg.Panics {
				t.Errorf("panics %d, want %d", res.PanicsInjected, cfg.Panics)
			}
			if res.SubmitSamples == 0 || res.HTTPSamples == 0 {
				t.Error("latency recorders empty")
			}
			// DropOldest sheds pass through the reorder-lost counter, so
			// the two accounts must agree for surviving devices.
			if res.ReorderLost > res.EventsDropped {
				t.Errorf("reorder lost %d > dropped %d", res.ReorderLost, res.EventsDropped)
			}

			var sb strings.Builder
			if err := WriteBenchJSON(&sb, res); err != nil {
				t.Fatal(err)
			}
			if !res.FleetConverged {
				t.Error("fleet mirror did not converge")
			}
			if res.FleetSyncRounds == 0 || res.FleetReads == 0 {
				t.Errorf("fleet traffic idle: %d rounds, %d reads", res.FleetSyncRounds, res.FleetReads)
			}
			for _, name := range []string{"SoakEventsSubmitted", "SoakSLOViolations", "SoakSubmitP99Ns/engine", "SoakReorderLate", "SoakPartitions", "SoakFleetSyncRounds", "SoakFleetMaxSyncAgeNs"} {
				if !strings.Contains(sb.String(), name) {
					t.Errorf("benchjson output missing %s:\n%s", name, sb.String())
				}
			}
		})
	}
}
