package soak

import (
	"encoding/json"
	"io"
	"runtime"
)

// benchResult and benchDoc mirror cmd/benchjson's schema so a soak
// run's metrics can be committed as a baseline and gated with
// `benchjson -diff`. Each metric is one benchmark entry: the value
// rides in ns_per_op, the sample count in n.
type benchResult struct {
	Name        string  `json:"name"`
	Pkg         string  `json:"pkg,omitempty"`
	N           int64   `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type benchDoc struct {
	Goos       string        `json:"goos,omitempty"`
	Goarch     string        `json:"goarch,omitempty"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// WriteBenchJSON serializes the run's metrics as a benchjson document.
// SoakSLOViolations is the gate entry: its committed baseline is zero,
// and `benchjson -diff -fail-on-increase SoakSLOViolations` fails the
// build when a run violates any SLO.
func WriteBenchJSON(w io.Writer, r *Result) error {
	entry := func(name string, n uint64, value float64) benchResult {
		return benchResult{Name: name, Pkg: "daccor/cmd/loadgen", N: int64(n), NsPerOp: value}
	}
	perSec := float64(0)
	if s := r.Elapsed.Seconds(); s > 0 {
		perSec = float64(r.EventsSubmitted) / s
	}
	doc := benchDoc{
		Goos:   runtime.GOOS,
		Goarch: runtime.GOARCH,
		Benchmarks: []benchResult{
			entry("SoakEventsSubmitted", r.EventsSubmitted, float64(r.EventsSubmitted)),
			entry("SoakEventsPerSec", r.EventsSubmitted, perSec),
			entry("SoakSubmitP99Ns/engine", r.SubmitSamples, float64(r.SubmitP99.Nanoseconds())),
			entry("SoakSubmitP99Ns/http", r.HTTPSamples, float64(r.HTTPSubmitP99.Nanoseconds())),
			entry("SoakDropPct", r.EventsDropped, r.DropPct()),
			entry("SoakPartitions", uint64(r.Partitions), float64(r.Partitions)),
			entry("SoakReorderLate", r.ReorderLate, float64(r.ReorderLate)),
			entry("SoakReorderLost", r.ReorderLost, float64(r.ReorderLost)),
			entry("SoakHeapGrowthBytes", 1, float64(r.HeapGrowth())),
			entry("SoakGoroutineGrowth", 1, float64(r.GoroutineFinal-r.GoroutineBaseline)),
			entry("SoakChurnCycles", uint64(r.ChurnCycles), float64(r.ChurnCycles)),
			entry("SoakPanicsInjected", uint64(r.PanicsInjected), float64(r.PanicsInjected)),
			entry("SoakWatchDeliveries", r.WatchDeliveries, float64(r.WatchDeliveries)),
			entry("SoakFleetSyncRounds", r.FleetSyncRounds, float64(r.FleetSyncRounds)),
			entry("SoakFleetSyncFailures", r.FleetSyncFailures, float64(r.FleetSyncFailures)),
			entry("SoakFleetDeltaBytes", r.FleetSyncRounds, float64(r.FleetDeltaBytes)),
			entry("SoakFleetFullBytes", r.FleetSyncRounds, float64(r.FleetFullBytes)),
			entry("SoakFleetMaxSyncAgeNs", r.FleetReads, float64(r.FleetMaxSyncAge.Nanoseconds())),
			entry("SoakFleetReadErrors", r.FleetReads, float64(r.FleetReadErrors)),
			entry("SoakSLOViolations", 1, float64(len(r.Violations))),
		},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
