package soak

import "math/bits"

// latBuckets covers 1 ns .. ~9 s in power-of-two buckets; everything
// slower lands in the last bucket.
const latBuckets = 34

// latRecorder is a fixed-size power-of-two latency histogram. It is
// not synchronized: each producer owns one and the driver merges them
// after the producers stop, so the hot path is a single increment with
// no contention and no allocation.
type latRecorder struct {
	buckets [latBuckets]uint64
	count   uint64
	max     int64
}

// record files one latency sample in nanoseconds.
func (r *latRecorder) record(ns int64) {
	if ns < 0 {
		ns = 0
	}
	b := bits.Len64(uint64(ns)) // bucket i holds [2^(i-1), 2^i)
	if b >= latBuckets {
		b = latBuckets - 1
	}
	r.buckets[b]++
	r.count++
	if ns > r.max {
		r.max = ns
	}
}

// merge folds other into r.
func (r *latRecorder) merge(other *latRecorder) {
	for i, n := range other.buckets {
		r.buckets[i] += n
	}
	r.count += other.count
	if other.max > r.max {
		r.max = other.max
	}
}

// quantile returns an upper bound (the bucket's upper edge, in ns) for
// the q-th latency quantile, clamped by the true maximum. Zero samples
// report zero.
func (r *latRecorder) quantile(q float64) int64 {
	if r.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(r.count))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, n := range r.buckets {
		seen += n
		if seen >= rank {
			edge := int64(1) << uint(i) // upper edge of bucket i
			if edge > r.max || i == latBuckets-1 {
				return r.max
			}
			return edge
		}
	}
	return r.max
}
