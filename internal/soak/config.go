// Package soak drives the full service — engine, supervisor,
// checkpoints, HTTP API, SSE watch — under sustained multi-tenant load
// with tenant churn and injected worker crashes, and asserts the
// service-level objectives that individual unit tests cannot see:
// tail submit latency, bounded drop rate, bounded heap growth, no
// goroutine leaks, and no stalled watchers. A run produces a Result
// whose metrics serialize into the cmd/benchjson document schema, so
// soak baselines are committed and diffed exactly like benchmark
// baselines.
package soak

import (
	"fmt"
	"time"

	"daccor/internal/engine"
)

// SLO is the set of objectives a run must meet. Zero thresholds mean
// "not asserted" except where noted.
type SLO struct {
	// SubmitP99 bounds the p99 latency of one engine-path SubmitBatch
	// call.
	SubmitP99 time.Duration
	// HTTPSubmitP99 bounds the p99 latency of one HTTP ingest POST —
	// the engine bound plus transport, JSON, and handler overhead.
	HTTPSubmitP99 time.Duration
	// MaxDropPct bounds shed events as a percentage of submitted
	// events (DropOldest sheds under overload and during crash-restart
	// windows; a healthy run stays far below the bound).
	MaxDropPct float64
	// MaxHeapGrowth bounds live-heap growth from the post-warmup
	// baseline to after shutdown. The analyzers are capacity-bounded
	// and churned tenants must be fully released, so growth is
	// O(config), never O(events).
	MaxHeapGrowth uint64
	// MaxGoroutineGrowth bounds the goroutine count after shutdown
	// relative to the pre-run baseline.
	MaxGoroutineGrowth int
	// MaxWatchGap bounds the wall-clock gap between consecutive
	// deliveries on any per-device watcher while load is flowing —
	// the stream-liveness signal. The fleet stream is exempt: its
	// deliveries require the fleet-wide top-K to change, which no
	// workload guarantees on a clock; it is asserted live (at least
	// one delivery) and its gap is reported, not gated.
	MaxWatchGap time.Duration
	// MaxReorderLatePct bounds late reordering-buffer releases (events
	// emitted to analysis behind an already-released timestamp) as a
	// percentage of submitted events. Every producer's per-tenant
	// stream is monotone, so late releases should be rare even when
	// partition workers interleave; a high rate means the reordering
	// window is mis-sized or the ingest path scrambles order.
	MaxReorderLatePct float64
	// MaxSyncAge bounds the aggregator-observed age of the collector's
	// last successful sync at any sample point — the fleet view's
	// staleness SLO. Only asserted with Config.FleetSync.
	MaxSyncAge time.Duration
}

// Config describes one soak run.
type Config struct {
	// Devices is the registered fleet size.
	Devices int
	// Events is the total event count to submit across the fleet; the
	// run ends when it is reached.
	Events uint64
	// Feeders is how many concurrent engine-path producers share the
	// fleet. One additional producer always drives the HTTP ingest
	// route.
	Feeders int
	// Batch is the events-per-SubmitBatch (and per ingest POST).
	Batch int
	// QueueSize is the per-device ring capacity.
	QueueSize int
	// Partitions splits each device's analyzer into this many
	// sub-shards processed by parallel partition workers
	// (engine.WithPartitions); 0 or 1 keeps the single-partition
	// pipeline.
	Partitions int
	// ChurnFrac is the fraction of the fleet cycled through
	// Unregister/re-Register while load is flowing.
	ChurnFrac float64
	// Panics is how many worker crashes to inject via the process
	// hook, spread across the run.
	Panics int
	// Watchers is how many concurrent SSE watchers to hold open (one
	// is always the fleet route, the rest watch stable devices).
	Watchers int
	// Window is the monitor's static grouping window.
	Window time.Duration
	// CheckpointEvery is the periodic checkpoint interval.
	CheckpointEvery time.Duration
	// FleetSync enables the fleet topology: the engine doubles as a
	// collector pushing delta syncs at this interval to an in-process
	// aggregator, whose merged read surface and staleness are sampled
	// throughout the run and whose mirror must converge on the
	// engine's merged snapshot at the end. 0 disables.
	FleetSync time.Duration
	// Seed derives every tenant's workload stream; a run is
	// reproducible per (Config, Seed).
	Seed int64
	// MinDuration paces the producers so the run lasts at least this
	// long: soak is sustained load with churn, crashes, and watch
	// traffic happening mid-stream, not a burst that outruns its
	// observers.
	MinDuration time.Duration
	// MaxDuration aborts a wedged run; hitting it is an SLO violation.
	MaxDuration time.Duration
	// SLO is the objective set asserted after the run.
	SLO SLO
}

// Quick is the CI soak profile: a million-event multi-tenant run with
// double-digit churn and injected crashes, sized to finish in tens of
// seconds under -race on a laptop.
func Quick() Config {
	return Config{
		Devices: 256,
		Events:  1_200_000,
		Feeders: 8,
		// Smaller batches mean each device is visited more often per
		// round-robin sweep, which bounds how stale any one watched
		// device's stream can get.
		Batch:     128,
		QueueSize: 1024,
		ChurnFrac: 0.12,
		Panics:    2,
		Watchers:  4,
		Window:    5 * time.Millisecond,
		// Each cycle serializes and fsyncs every device's synopsis —
		// 256 files — so the interval stays coarse enough that
		// checkpointing is a periodic event, not a standing load.
		CheckpointEvery: 5 * time.Second,
		// One sync round per second keeps the aggregator at most a
		// round behind the fleet while churn and crashes are flowing.
		FleetSync: time.Second,
		Seed:      1,
		// 1.2M events over >= 2 minutes is ~10k events/s — inside what
		// a single-core CI runner sustains under -race, so the SLOs
		// measure the service, not the host's saturation point.
		MinDuration: 2 * time.Minute,
		MaxDuration: 10 * time.Minute,
		// The bounds are sized for a single-core -race CI runner: they
		// catch order-of-magnitude regressions (a wedged path, a leak,
		// a stalled stream), while the committed benchjson baseline
		// tracks the actual values for drift review.
		SLO: SLO{
			SubmitP99:          250 * time.Millisecond,
			HTTPSubmitP99:      4500 * time.Millisecond,
			MaxDropPct:         10,
			MaxHeapGrowth:      160 << 20,
			MaxGoroutineGrowth: 8,
			MaxWatchGap:        30 * time.Second,
			MaxReorderLatePct:  1,
			// The staleness bound is a multiple of the sync interval:
			// under -race on one core a round can stretch, but an age
			// in the tens of seconds means the sync path is wedged.
			MaxSyncAge: 30 * time.Second,
		},
	}
}

// Tiny is a seconds-scale profile for the package's own tests: the
// same machinery (churn, panics, watchers, checkpoints) at a size a
// unit-test budget tolerates.
func Tiny() Config {
	return Config{
		Devices:         8,
		Events:          20_000,
		Feeders:         2,
		Batch:           64,
		QueueSize:       256,
		ChurnFrac:       0.25,
		Panics:          1,
		Watchers:        2,
		Window:          5 * time.Millisecond,
		CheckpointEvery: 50 * time.Millisecond,
		FleetSync:       100 * time.Millisecond,
		Seed:            1,
		MinDuration:     2 * time.Second,
		MaxDuration:     2 * time.Minute,
		SLO: SLO{
			SubmitP99:          time.Second,
			HTTPSubmitP99:      2 * time.Second,
			MaxDropPct:         25,
			MaxHeapGrowth:      64 << 20,
			MaxGoroutineGrowth: 8,
			MaxWatchGap:        10 * time.Second,
			MaxReorderLatePct:  5,
			MaxSyncAge:         10 * time.Second,
		},
	}
}

// churnCycles is how many Unregister/re-Register cycles ChurnFrac
// implies.
func (c Config) churnCycles() int {
	return int(c.ChurnFrac * float64(c.Devices))
}

func (c Config) validate() error {
	if c.Devices < 1 {
		return fmt.Errorf("soak: Devices must be >= 1 (got %d)", c.Devices)
	}
	if c.Events == 0 {
		return fmt.Errorf("soak: Events must be > 0")
	}
	if c.Feeders < 1 {
		return fmt.Errorf("soak: Feeders must be >= 1 (got %d)", c.Feeders)
	}
	if c.Batch < 1 {
		return fmt.Errorf("soak: Batch must be >= 1 (got %d)", c.Batch)
	}
	if c.QueueSize < c.Batch {
		return fmt.Errorf("soak: QueueSize %d must hold at least one batch of %d", c.QueueSize, c.Batch)
	}
	if c.Partitions < 0 || c.Partitions > engine.MaxPartitions {
		return fmt.Errorf("soak: Partitions %d out of [0, %d]", c.Partitions, engine.MaxPartitions)
	}
	if c.ChurnFrac < 0 || c.ChurnFrac > 1 {
		return fmt.Errorf("soak: ChurnFrac %v out of [0, 1]", c.ChurnFrac)
	}
	if c.Panics < 0 {
		return fmt.Errorf("soak: Panics must be >= 0 (got %d)", c.Panics)
	}
	if c.Watchers < 1 {
		return fmt.Errorf("soak: Watchers must be >= 1 (got %d)", c.Watchers)
	}
	// Device watchers hold their stream across the whole run, so their
	// targets must never be churned: victims come from the front of
	// the id space, watch targets from the back.
	if c.churnCycles()+c.Watchers-1 > c.Devices {
		return fmt.Errorf("soak: %d churn cycles + %d device watchers need more than %d devices",
			c.churnCycles(), c.Watchers-1, c.Devices)
	}
	if c.Window <= 0 {
		return fmt.Errorf("soak: Window must be > 0 (got %v)", c.Window)
	}
	if c.CheckpointEvery <= 0 {
		return fmt.Errorf("soak: CheckpointEvery must be > 0 (got %v)", c.CheckpointEvery)
	}
	if c.FleetSync < 0 {
		return fmt.Errorf("soak: FleetSync must be >= 0 (got %v)", c.FleetSync)
	}
	if c.MinDuration < 0 {
		return fmt.Errorf("soak: MinDuration must be >= 0 (got %v)", c.MinDuration)
	}
	if c.MaxDuration <= 0 {
		return fmt.Errorf("soak: MaxDuration must be > 0 (got %v)", c.MaxDuration)
	}
	if c.MinDuration >= c.MaxDuration {
		return fmt.Errorf("soak: MinDuration %v must be below MaxDuration %v", c.MinDuration, c.MaxDuration)
	}
	return nil
}
