package soak

import "fmt"

// evaluate checks the run against cfg's objectives and fills
// r.Violations. Beyond the numeric SLOs it asserts the run's
// structural obligations: the load target was reached, every churn
// cycle and crash injection actually happened, watchers terminated the
// way the protocol promises, and read traffic flowed.
func (r *Result) evaluate(cfg Config) {
	add := func(format string, args ...any) {
		r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
	}
	slo := cfg.SLO

	if r.TimedOut {
		add("run timed out after %v with %d/%d events submitted", cfg.MaxDuration, r.EventsSubmitted, cfg.Events)
	}
	if r.EventsSubmitted < cfg.Events {
		add("submitted %d of %d events", r.EventsSubmitted, cfg.Events)
	}
	if r.HTTPEvents == 0 {
		add("HTTP ingest path carried no events")
	}
	if slo.SubmitP99 > 0 && r.SubmitP99 > slo.SubmitP99 {
		add("engine submit p99 %v exceeds SLO %v", r.SubmitP99, slo.SubmitP99)
	}
	if slo.HTTPSubmitP99 > 0 && r.HTTPSubmitP99 > slo.HTTPSubmitP99 {
		add("HTTP submit p99 %v exceeds SLO %v", r.HTTPSubmitP99, slo.HTTPSubmitP99)
	}
	if slo.MaxDropPct > 0 && r.DropPct() > slo.MaxDropPct {
		add("drop rate %.2f%% exceeds SLO %.2f%%", r.DropPct(), slo.MaxDropPct)
	}
	if slo.MaxReorderLatePct > 0 && r.ReorderLatePct() > slo.MaxReorderLatePct {
		add("reorder late rate %.3f%% (%d events) exceeds SLO %.3f%%",
			r.ReorderLatePct(), r.ReorderLate, slo.MaxReorderLatePct)
	}
	// ReorderLost counts DropOldest sheds at the ring, a subset of all
	// accounted drops; exceeding them means the counter wiring broke.
	if r.ReorderLost > r.EventsDropped {
		add("reorder lost %d exceeds total dropped %d", r.ReorderLost, r.EventsDropped)
	}
	if slo.MaxHeapGrowth > 0 && r.HeapGrowth() > slo.MaxHeapGrowth {
		add("heap grew %d MiB (baseline %d MiB, final %d MiB), SLO %d MiB",
			r.HeapGrowth()>>20, r.HeapBaseline>>20, r.HeapFinal>>20, slo.MaxHeapGrowth>>20)
	}
	if r.GoroutineFinal > r.GoroutineBaseline+slo.MaxGoroutineGrowth {
		add("goroutines grew from %d to %d (SLO allows +%d)",
			r.GoroutineBaseline, r.GoroutineFinal, slo.MaxGoroutineGrowth)
	}
	if r.SeriesFinal > r.SeriesBaseline+seriesSlack {
		add("metric series grew from %d to %d under churn (slack %d)",
			r.SeriesBaseline, r.SeriesFinal, seriesSlack)
	}
	if want := cfg.churnCycles(); r.ChurnCycles < want {
		add("completed %d of %d churn cycles", r.ChurnCycles, want)
	}
	if r.ChurnErrors > 0 {
		add("%d churn cycles errored (last: %s)", r.ChurnErrors, r.ChurnLastError)
	}
	if r.BadWatchEnds > 0 {
		add("%d churned watchers ended without a terminal end event", r.BadWatchEnds)
	}
	if r.PanicsInjected < cfg.Panics {
		add("injected %d of %d worker panics", r.PanicsInjected, cfg.Panics)
	}
	if r.WatchDeliveries == 0 {
		add("watchers received no deliveries")
	}
	if r.StalledWatchers > 0 {
		add("%d watchers never delivered", r.StalledWatchers)
	}
	if slo.MaxWatchGap > 0 && r.MaxWatchGap > slo.MaxWatchGap {
		add("max device watch delivery gap %v exceeds SLO %v", r.MaxWatchGap, slo.MaxWatchGap)
	}
	if r.FleetDeliveries == 0 {
		add("fleet watcher received no deliveries")
	}
	if r.Queries == 0 {
		add("query traffic never succeeded")
	}
	if cfg.FleetSync > 0 {
		if r.FleetSyncRounds == 0 {
			add("fleet sync never completed a round")
		}
		if !r.FleetConverged {
			add("aggregator mirror never converged on the engine's merged snapshot")
		}
		if r.FleetReads == 0 {
			add("fleet read traffic never succeeded")
		}
		// The aggregator's contract is that degradation shows up as
		// staleness in a 200, never as an error — so any failed read
		// against a live aggregator is a violation, not a threshold.
		if r.FleetReadErrors > 0 {
			add("%d fleet reads failed against a live aggregator", r.FleetReadErrors)
		}
		if slo.MaxSyncAge > 0 && r.FleetMaxSyncAge > slo.MaxSyncAge {
			add("fleet sync age peaked at %v, SLO %v", r.FleetMaxSyncAge, slo.MaxSyncAge)
		}
	}
}
