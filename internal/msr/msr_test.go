package msr

import (
	"math"
	"testing"
	"time"

	"daccor/internal/blktrace"
)

func TestProfilesValid(t *testing.T) {
	ps := Profiles()
	if len(ps) != 5 {
		t.Fatalf("want 5 profiles, got %d", len(ps))
	}
	names := []string{"wdev", "src2", "rsrch", "stg", "hm"}
	for i, p := range ps {
		if p.Name != names[i] {
			t.Errorf("profile %d = %q, want %q (paper order)", i, p.Name, names[i])
		}
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", p.Name, err)
		}
	}
}

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("stg")
	if err != nil || p.Name != "stg" {
		t.Errorf("ProfileByName(stg) = %v, %v", p.Name, err)
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Error("want error for unknown name")
	}
}

func TestProfileValidationCatchesBadConfigs(t *testing.T) {
	base := wdev()
	mutations := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.NumberSpace = 0 },
		func(p *Profile) { p.DefaultRequests = 0 },
		func(p *Profile) { p.Groups = 0 },
		func(p *Profile) { p.GroupMin = 1 },
		func(p *Profile) { p.GroupMax = 1 },
		func(p *Profile) { p.ReqMin = 0 },
		func(p *Profile) { p.ReqMax = p.ReqMin - 1 },
		func(p *Profile) { p.FastFrac = 0 },
		func(p *Profile) { p.FastFrac = 1 },
		func(p *Profile) { p.TraceLatencyMean = 0 },
		func(p *Profile) { p.InterBurstMean = 0 },
		func(p *Profile) { p.ColdProb = 0.9; p.WarmProb = 0.3 },
		func(p *Profile) { p.GroupProb = 1.5 },
	}
	for i, mutate := range mutations {
		p := base
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d: want validation error", i)
		}
	}
}

func TestStgNumberSpaceOrderOfMagnitudeLarger(t *testing.T) {
	var stgSpace, maxOther uint64
	for _, p := range Profiles() {
		if p.Name == "stg" {
			stgSpace = p.NumberSpace
		} else if p.NumberSpace > maxOther {
			maxOther = p.NumberSpace
		}
	}
	if stgSpace < 10*maxOther {
		t.Errorf("stg space %d should dwarf others (max %d), per the paper", stgSpace, maxOther)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := wdev()
	a, err := p.Generate(5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Generate(5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Trace.Len() != b.Trace.Len() {
		t.Fatal("lengths differ")
	}
	for i := range a.Trace.Events {
		if a.Trace.Events[i] != b.Trace.Events[i] || a.Latencies[i] != b.Latencies[i] {
			t.Fatal("same seed produced different traces")
		}
	}
}

func TestGenerateBasicShape(t *testing.T) {
	for _, p := range Profiles() {
		g, err := p.Generate(20_000, 7)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if g.Trace.Len() != 20_000 {
			t.Errorf("%s: %d events, want exactly 20000", p.Name, g.Trace.Len())
		}
		if len(g.Latencies) != g.Trace.Len() {
			t.Errorf("%s: %d latencies for %d events", p.Name, len(g.Latencies), g.Trace.Len())
		}
		last := int64(-1)
		for i, ev := range g.Trace.Events {
			if err := ev.Validate(); err != nil {
				t.Fatalf("%s event %d: %v", p.Name, i, err)
			}
			if ev.Time < last {
				t.Fatalf("%s: timestamps not monotone at %d", p.Name, i)
			}
			last = ev.Time
			if ev.Extent.End() > p.NumberSpace+uint64(p.ReqMax) {
				t.Fatalf("%s: extent %v escapes number space", p.Name, ev.Extent)
			}
		}
		if len(g.Groups) != p.Groups {
			t.Errorf("%s: %d groups, want %d", p.Name, len(g.Groups), p.Groups)
		}
		if len(g.GroupPairs()) < p.Groups {
			t.Errorf("%s: too few ground-truth pairs", p.Name)
		}
	}
}

// Table I calibration: the fast-interarrival fraction must match the
// paper's per-trace values closely, and the unique/total ratio must
// match its regime (small for wdev/rsrch/hm, ~24% for src2, ~78% for stg).
func TestTableICalibration(t *testing.T) {
	wantRatio := map[string]float64{
		"wdev": 0.047, "src2": 0.240, "rsrch": 0.074, "stg": 0.778, "hm": 0.062,
	}
	for _, p := range Profiles() {
		g, err := p.Generate(0, 11) // default length
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		st := g.Stats()
		if math.Abs(st.FastFraction-p.FastFrac) > 0.02 {
			t.Errorf("%s: fast fraction = %.3f, want %.3f ± 0.02",
				p.Name, st.FastFraction, p.FastFrac)
		}
		want := wantRatio[p.Name]
		if st.UniqueOverTotal < want*0.6 || st.UniqueOverTotal > want*1.6 {
			t.Errorf("%s: unique/total = %.3f, want ≈%.3f",
				p.Name, st.UniqueOverTotal, want)
		}
		// Mean recorded latency within 10% of the Table II value.
		ratio := float64(st.MeanTraceLat) / float64(p.TraceLatencyMean)
		if ratio < 0.9 || ratio > 1.1 {
			t.Errorf("%s: mean trace latency = %v, want ≈%v",
				p.Name, st.MeanTraceLat, p.TraceLatencyMean)
		}
	}
}

// The recorded latencies must be HDD-class (ms), per trace, so Table II
// speedups come out in the paper's 60–500× range against a µs device.
func TestRecordedLatenciesMsClass(t *testing.T) {
	for _, p := range Profiles() {
		g, err := p.Generate(5000, 3)
		if err != nil {
			t.Fatal(err)
		}
		st := g.Stats()
		if st.MeanTraceLat < time.Millisecond || st.MeanTraceLat > 40*time.Millisecond {
			t.Errorf("%s: mean trace latency %v out of HDD range", p.Name, st.MeanTraceLat)
		}
	}
}

// Groups must actually recur: the most popular group's extents should
// appear together many times (they drive Figs. 5–9).
func TestGroupsRecur(t *testing.T) {
	p := wdev()
	g, err := p.Generate(60_000, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Count exact-extent occurrences of the top group's first member.
	counts := map[blktrace.Extent]int{}
	for _, ev := range g.Trace.Events {
		counts[ev.Extent]++
	}
	top := g.Groups[0] // rank 0 = most popular under Zipf
	for _, e := range top {
		if counts[e] < 20 {
			t.Errorf("top group extent %v occurred %d times, want many", e, counts[e])
		}
	}
}

// Adjacent group members must be issued back-to-back (within 100 µs) so
// the monitor can windows them together.
func TestGroupMembersAdjacent(t *testing.T) {
	p := rsrch()
	g, err := p.Generate(30_000, 9)
	if err != nil {
		t.Fatal(err)
	}
	memberOf := map[blktrace.Extent]int{}
	for gi, grp := range g.Groups {
		for _, e := range grp {
			memberOf[e] = gi
		}
	}
	// Every group-member event must have a same-group partner (a
	// different extent) within a few events and 300 µs: group
	// occurrences are emitted back-to-back with forced-fast gaps.
	// (Consecutive occurrences of the same group may be far apart, so
	// we check for *a* nearby partner, not adjacency of all members.)
	evs := g.Trace.Events
	memberEvents := 0
	for i, ev := range evs {
		gi, ok := memberOf[ev.Extent]
		if !ok {
			continue
		}
		memberEvents++
		found := false
		for j := max(0, i-3); j <= i+3 && j < len(evs) && !found; j++ {
			if j == i {
				continue
			}
			gj, ok2 := memberOf[evs[j].Extent]
			if ok2 && gj == gi && evs[j].Extent != ev.Extent &&
				abs64(evs[j].Time-ev.Time) < 300_000 {
				found = true
			}
		}
		if !found {
			t.Fatalf("group-member event %d (%v) has no nearby partner", i, ev.Extent)
		}
	}
	if memberEvents < 1000 {
		t.Errorf("only %d group-member events seen", memberEvents)
	}
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestHmPopularRegionExists(t *testing.T) {
	p := hm()
	if p.PopularRegion == 0 || p.PopularRegionProb == 0 {
		t.Fatal("hm must model the Fig. 8e popular region")
	}
	g, err := p.Generate(40_000, 13)
	if err != nil {
		t.Fatal(err)
	}
	popBase := p.NumberSpace / 16
	hits := 0
	for _, ev := range g.Trace.Events {
		if ev.Extent.Block >= popBase && ev.Extent.Block < popBase+uint64(8*p.PopularRegion) {
			hits++
		}
	}
	frac := float64(hits) / float64(g.Trace.Len())
	if frac < p.PopularRegionProb/2 {
		t.Errorf("popular region hit fraction %.4f, want ≈%.3f", frac, p.PopularRegionProb)
	}
}

func TestFormatBytes(t *testing.T) {
	for in, want := range map[uint64]string{
		500:               "500 B",
		3 << 20:           "3.0 MB",
		11_300 << 20:      "11.0 GB",
		uint64(1.5 * 1e9): "1.4 GB",
	} {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}
