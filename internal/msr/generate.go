package msr

import (
	"fmt"
	"math/rand"
	"time"

	"daccor/internal/blktrace"
	"daccor/internal/workload"
)

// GeneratedTrace is a synthesised MSR-like trace plus the metadata the
// experiments need: the recorded per-request latencies ("as reported in
// the trace", Table II) and the planted correlated groups (ground truth
// for detection metrics).
type GeneratedTrace struct {
	Profile Profile
	Trace   *blktrace.Trace
	// Latencies[i] is the recorded latency of Trace.Events[i] on the
	// original (HDD-era) server.
	Latencies []time.Duration
	// Groups are the planted correlated extent groups.
	Groups [][]blktrace.Extent
}

// GroupPairs returns the ground-truth extent pairs implied by the
// planted groups.
func (g *GeneratedTrace) GroupPairs() []blktrace.Pair {
	var out []blktrace.Pair
	for _, grp := range g.Groups {
		for i := 0; i < len(grp); i++ {
			for j := i + 1; j < len(grp); j++ {
				out = append(out, blktrace.MakePair(grp[i], grp[j]))
			}
		}
	}
	return out
}

// arrivalUnit is one logical arrival: a single request, or a correlated
// group issued back-to-back.
type arrivalUnit struct {
	events []blktrace.Event // Time fields filled in later
	group  bool
}

// Generate synthesises a trace of the given length. requests <= 0 uses
// the profile default. Generation is deterministic in (profile,
// requests, seed).
func (p Profile) Generate(requests int, seed int64) (*GeneratedTrace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if requests <= 0 {
		requests = p.DefaultRequests
	}
	rng := rand.New(rand.NewSource(seed))

	fixedShape := func() blktrace.Extent {
		return blktrace.Extent{
			Block: uint64(rng.Int63n(int64(p.NumberSpace))),
			Len:   p.ReqMin + uint32(rng.Intn(int(p.ReqMax-p.ReqMin+1))),
		}
	}

	// Fixed populations: shapes are chosen once so repeated accesses
	// repeat the exact extent (the paper's same-shape observation).
	hot := make([]blktrace.Extent, p.HotExtents)
	for i := range hot {
		hot[i] = fixedShape()
	}
	groups := make([][]blktrace.Extent, p.Groups)
	for i := range groups {
		n := p.GroupMin + rng.Intn(p.GroupMax-p.GroupMin+1)
		groups[i] = make([]blktrace.Extent, n)
		for j := range groups[i] {
			groups[i][j] = fixedShape()
		}
	}
	// Warm extents are deliberately small (512 B – 4 KB): they exist to
	// populate the long tail of low-support *pairs*, not to move bulk
	// data, so they must not dominate the unique-bytes budget.
	warm := make([]blktrace.Extent, p.WarmExtents)
	for i := range warm {
		warm[i] = blktrace.Extent{
			Block: uint64(rng.Int63n(int64(p.NumberSpace))),
			Len:   1 + uint32(rng.Intn(8)),
		}
	}
	// hm's popular region: single blocks clustered around 1/16 of the
	// number space (the paper's "blocks around number 5M").
	popBase := p.NumberSpace / 16
	popular := make([]blktrace.Extent, p.PopularRegion)
	for i := range popular {
		popular[i] = blktrace.Extent{Block: popBase + uint64(rng.Intn(1+4*max(p.PopularRegion, 1))), Len: 1 + uint32(rng.Intn(4))}
	}

	hotZipf, err := workload.NewZipfRanks(len(hot), p.HotSkew)
	if err != nil {
		return nil, err
	}
	groupZipf, err := workload.NewZipfRanks(len(groups), p.HotSkew)
	if err != nil {
		return nil, err
	}
	var popZipf *workload.ZipfRanks
	if len(popular) > 0 {
		popZipf, err = workload.NewZipfRanks(len(popular), 0.8)
		if err != nil {
			return nil, err
		}
	}

	op := func() blktrace.Op {
		if rng.Float64() < p.WriteFrac {
			return blktrace.OpWrite
		}
		return blktrace.OpRead
	}

	// Build the arrival-unit sequence. The class probabilities are
	// *event* shares, but classes differ in events per arrival unit
	// (scans, warm pairs, and groups carry several), so each class's
	// unit probability is its event share divided by its expected unit
	// size, renormalised.
	const scanMin, scanMax = 3, 8
	meanScanLen := float64(scanMin+scanMax) / 2
	eCold := 1 + p.ScanFrac*(meanScanLen-1)
	eWarm := 2.0
	ePop := 1.0
	meanGroup := float64(p.GroupMin+p.GroupMax) / 2
	eHot := (1 - p.GroupProb) + p.GroupProb*meanGroup
	hotShare := 1 - p.ColdProb - p.WarmProb - p.PopularRegionProb
	wCold := p.ColdProb / eCold
	wWarm := p.WarmProb / eWarm
	wPop := p.PopularRegionProb / ePop
	wHot := hotShare / eHot
	z := wCold + wWarm + wPop + wHot
	coldUnitProb := wCold / z
	warmUnitProb := wWarm / z
	popUnitProb := wPop / z
	var units []arrivalUnit
	totalEvents := 0
	for totalEvents < requests {
		u := arrivalUnit{}
		r := rng.Float64()
		switch {
		case r < coldUnitProb:
			coldExtent := blktrace.Extent{
				Block: uint64(rng.Int63n(int64(p.NumberSpace))),
				Len:   p.ReqMin + uint32(rng.Intn(int(p.ReqMax-p.ReqMin+1))),
			}
			if rng.Float64() < p.ScanFrac {
				// Sequential scan: adjacent same-shape extents issued
				// back to back (Fig. 1's diagonal streaks).
				runLen := scanMin + rng.Intn(scanMax-scanMin+1)
				o := op()
				u.events = make([]blktrace.Event, runLen)
				cur := coldExtent
				for j := 0; j < runLen; j++ {
					u.events[j] = blktrace.Event{PID: 1, Op: o, Extent: cur}
					cur = blktrace.Extent{Block: cur.End(), Len: cur.Len}
				}
				u.group = true // members arrive with fast gaps
				break
			}
			// One-off random request.
			u.events = []blktrace.Event{{PID: 1, Op: op(), Extent: coldExtent}}
		case r < coldUnitProb+warmUnitProb && len(warm) >= 2:
			// A warm pair: both extents together, each pair repeating
			// only a handful of times over the trace (the long tail).
			i := rng.Intn(len(warm) / 2)
			o := op()
			u.events = []blktrace.Event{
				{PID: 1, Op: o, Extent: warm[2*i]},
				{PID: 1, Op: o, Extent: warm[2*i+1]},
			}
			u.group = true
		case r < coldUnitProb+warmUnitProb+popUnitProb && popZipf != nil:
			// hm's popular region: individually hot single blocks whose
			// pairings are coincidental.
			u.events = []blktrace.Event{{PID: 1, Op: blktrace.OpRead,
				Extent: popular[popZipf.Sample(rng)]}}
		default:
			if rng.Float64() < p.GroupProb {
				g := groups[groupZipf.Sample(rng)]
				o := op()
				u.events = make([]blktrace.Event, len(g))
				for j, e := range g {
					u.events[j] = blktrace.Event{PID: 1, Op: o, Extent: e}
				}
				u.group = true
			} else {
				u.events = []blktrace.Event{{PID: 1, Op: op(),
					Extent: hot[hotZipf.Sample(rng)]}}
			}
		}
		totalEvents += len(u.events)
		units = append(units, u)
	}

	// Timestamp pass. Gaps inside groups are forced fast (<100 µs);
	// the remaining gaps are fast with probability q chosen so the
	// overall fast fraction hits the profile target exactly in
	// expectation.
	events, forcedFast := flatten(units, requests)
	gaps := len(events) - 1
	q := 0.0
	if gaps > forcedFast {
		q = (p.FastFrac*float64(gaps) - float64(forcedFast)) / float64(gaps-forcedFast)
		if q < 0 {
			q = 0
		}
		if q > 1 {
			q = 1
		}
	}
	now := int64(0)
	trace := &blktrace.Trace{}
	lats := make([]time.Duration, 0, len(events))
	for i := range events {
		if i > 0 {
			if events[i].fastGap || rng.Float64() < q {
				now += 2_000 + rng.Int63n(88_000) // 2–90 µs
			} else {
				now += 120_000 + int64(rng.ExpFloat64()*float64(p.InterBurstMean))
			}
		}
		ev := events[i].ev
		ev.Time = now
		trace.Append(ev)
		// Recorded HDD-era latency: mean TraceLatencyMean with an
		// exponential tail (0.4 + 0.6·Exp(1) has mean 1).
		lats = append(lats, time.Duration(float64(p.TraceLatencyMean)*(0.4+0.6*rng.ExpFloat64())))
	}
	return &GeneratedTrace{Profile: p, Trace: trace, Latencies: lats, Groups: groups}, nil
}

type timedEvent struct {
	ev      blktrace.Event
	fastGap bool // gap *before* this event is forced fast
}

// flatten expands units to at most limit events, marking intra-group
// gaps as forced-fast, and returns the forced-fast gap count.
func flatten(units []arrivalUnit, limit int) ([]timedEvent, int) {
	var out []timedEvent
	forced := 0
	for _, u := range units {
		for j, ev := range u.events {
			if len(out) >= limit {
				return out, forced
			}
			te := timedEvent{ev: ev}
			if u.group && j > 0 {
				te.fastGap = true
				forced++
			}
			out = append(out, te)
		}
	}
	return out, forced
}

// Stats summarises a generated trace as a Table I row.
type Stats struct {
	Name            string
	Description     string
	Requests        int
	TotalBytes      uint64
	UniqueBytes     uint64
	FastFraction    float64 // interarrival % < 100 µs
	MeanTraceLat    time.Duration
	UniqueOverTotal float64
}

// Stats computes the Table I columns for the generated trace.
func (g *GeneratedTrace) Stats() Stats {
	total := g.Trace.TotalBytes()
	unique := g.Trace.UniqueBytes()
	var latSum time.Duration
	for _, l := range g.Latencies {
		latSum += l
	}
	mean := time.Duration(0)
	if len(g.Latencies) > 0 {
		mean = latSum / time.Duration(len(g.Latencies))
	}
	ratio := 0.0
	if total > 0 {
		ratio = float64(unique) / float64(total)
	}
	return Stats{
		Name:            g.Profile.Name,
		Description:     g.Profile.Description,
		Requests:        g.Trace.Len(),
		TotalBytes:      total,
		UniqueBytes:     unique,
		FastFraction:    g.Trace.InterarrivalFractionBelow(100 * time.Microsecond),
		MeanTraceLat:    mean,
		UniqueOverTotal: ratio,
	}
}

// FormatBytes renders a byte count like the paper's "11.3 GB".
func FormatBytes(b uint64) string {
	const gb = 1 << 30
	const mb = 1 << 20
	switch {
	case b >= gb:
		return fmt.Sprintf("%.1f GB", float64(b)/gb)
	case b >= mb:
		return fmt.Sprintf("%.1f MB", float64(b)/mb)
	}
	return fmt.Sprintf("%d B", b)
}
