// Package msr synthesises block I/O traces modelled on the five MSR
// Cambridge enterprise-server workloads the paper evaluates on (wdev,
// src2, rsrch, stg, hm from Narayanan et al.'s write-offloading
// dataset).
//
// We do not ship the original traces; instead each profile is
// calibrated to reproduce the properties the paper's evaluation
// actually depends on:
//
//   - Table I's shape: the unique/total accessed data ratio and the
//     fraction of interarrival gaps under 100 µs (arrival burstiness).
//   - Table II's regime: mean recorded (HDD-era) request latency per
//     trace, from which replay speedups are derived.
//   - Correlation structure: recurring extent groups with Zipf-like
//     popularity (the vertical stripes of Fig. 1 and the frequent
//     pairs of Figs. 5–9), a "warm" population of pairs repeating only
//     a handful of times (the long tail that makes stg and hm hard in
//     Fig. 9), and cold one-off requests (the support-1 mass of
//     Fig. 5).
//   - hm's quirk (Fig. 8e): a popular block region whose members are
//     individually frequent but co-occur only coincidentally.
//
// Generation is deterministic per (profile, requests, seed).
package msr

import (
	"fmt"
	"time"
)

// Profile parameterises one synthetic MSR-like server workload.
type Profile struct {
	// Name is the paper's short name (wdev, src2, rsrch, stg, hm).
	Name string
	// Description matches Table I's server role.
	Description string

	// NumberSpace is the block number space. stg's is an order of
	// magnitude larger than the others, which the paper calls out when
	// explaining its poor small-table representability.
	NumberSpace uint64

	// DefaultRequests is the trace length used by the experiment
	// drivers at scale 1. The real traces are week-long; everything
	// measured here is a ratio, so the scale only needs to be large
	// enough for the distributions to emerge.
	DefaultRequests int

	// HotExtents is the number of distinct recurring extents requested
	// individually (outside groups), with Zipf popularity HotSkew.
	HotExtents int
	// HotSkew is the Zipf skew over hot extents and groups.
	HotSkew float64
	// Groups is the number of correlated extent groups; a group's
	// members are issued back-to-back whenever it arrives, creating
	// genuine inter-request extent correlations.
	Groups int
	// GroupMin/GroupMax bound the extents per group.
	GroupMin, GroupMax int
	// GroupProb is the probability that a hot arrival is a group
	// rather than a single hot extent.
	GroupProb float64

	// WarmExtents is a population of extents each requested only a few
	// times over the whole trace; warm arrivals come in pairs, so they
	// produce low-support correlations — the long tail.
	WarmExtents int
	// WarmProb is the probability that a request is warm.
	WarmProb float64

	// ColdProb is the probability that a request is a one-off random
	// extent; it is the main control of the unique/total data ratio.
	ColdProb float64
	// ScanFrac is the fraction of cold *traffic* issued as sequential
	// scans (runs of adjacent same-shape extents) rather than isolated
	// requests — the diagonal streaks of Fig. 1. The generator keeps
	// the cold share of events equal to ColdProb regardless.
	ScanFrac float64

	// ReqMin/ReqMax bound request sizes in blocks for cold requests
	// (hot/warm/group extents get fixed shapes drawn from the same
	// range at construction — "extents of same shape repeat themselves
	// with very high frequency").
	ReqMin, ReqMax uint32

	// WriteFrac is the fraction of write requests.
	WriteFrac float64

	// FastFrac is Table I's "interarrival % < 100 µs": arrivals are
	// geometric bursts with mean length 1/(1-FastFrac), microsecond
	// gaps inside a burst and >100 µs gaps between bursts.
	FastFrac float64
	// InterBurstMean is the mean of the exponential between-burst gap
	// (on top of a 120 µs floor).
	InterBurstMean time.Duration

	// TraceLatencyMean is Table II's "mean trace latency": the mean of
	// the recorded per-request latencies (HDD-era service times).
	TraceLatencyMean time.Duration

	// PopularRegion, when non-zero, is the number of single blocks in
	// one hot region accessed individually at PopularRegionProb — hm's
	// coincidental-correlation region (Fig. 8e).
	PopularRegion     int
	PopularRegionProb float64
}

// Validate reports configuration errors.
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("msr: profile needs a name")
	case p.NumberSpace == 0:
		return fmt.Errorf("msr %s: NumberSpace required", p.Name)
	case p.DefaultRequests < 1:
		return fmt.Errorf("msr %s: DefaultRequests must be >= 1", p.Name)
	case p.HotExtents < 1 || p.Groups < 1:
		return fmt.Errorf("msr %s: need hot extents and groups", p.Name)
	case p.GroupMin < 2 || p.GroupMax < p.GroupMin:
		return fmt.Errorf("msr %s: invalid group size range [%d,%d]", p.Name, p.GroupMin, p.GroupMax)
	case p.ReqMin < 1 || p.ReqMax < p.ReqMin:
		return fmt.Errorf("msr %s: invalid request size range [%d,%d]", p.Name, p.ReqMin, p.ReqMax)
	case p.FastFrac <= 0 || p.FastFrac >= 1:
		return fmt.Errorf("msr %s: FastFrac must be in (0,1)", p.Name)
	case p.TraceLatencyMean <= 0:
		return fmt.Errorf("msr %s: TraceLatencyMean required", p.Name)
	case p.InterBurstMean <= 0:
		return fmt.Errorf("msr %s: InterBurstMean required", p.Name)
	}
	probs := p.GroupProb + 0 // GroupProb is conditional, checked alone
	if probs < 0 || p.GroupProb > 1 {
		return fmt.Errorf("msr %s: GroupProb out of range", p.Name)
	}
	if p.WarmProb < 0 || p.ColdProb < 0 || p.WarmProb+p.ColdProb+p.PopularRegionProb > 1 {
		return fmt.Errorf("msr %s: arrival class probabilities exceed 1", p.Name)
	}
	if p.ScanFrac < 0 || p.ScanFrac > 1 {
		return fmt.Errorf("msr %s: ScanFrac out of [0,1]", p.Name)
	}
	return nil
}

// The five profiles, calibrated against Tables I and II. Unique/total
// ratios targeted: wdev 4.7%, src2 24%, rsrch 7.4%, stg 78%, hm 6.2%.
func wdev() Profile {
	return Profile{
		Name: "wdev", Description: "test web server",
		NumberSpace:     36 << 20, // ~18 GB of blocks
		DefaultRequests: 120_000,
		HotExtents:      3000, HotSkew: 0.9,
		Groups: 400, GroupMin: 2, GroupMax: 4, GroupProb: 0.35,
		WarmExtents: 4000, WarmProb: 0.04,
		ColdProb: 0.022, ScanFrac: 0.30,
		ReqMin: 8, ReqMax: 64,
		WriteFrac: 0.70, // wdev is write-dominant in the MSR dataset
		FastFrac:  0.784, InterBurstMean: 4 * time.Millisecond,
		TraceLatencyMean: 3650 * time.Microsecond,
	}
}

func src2() Profile {
	return Profile{
		Name: "src2", Description: "version control",
		NumberSpace:     200 << 20, // ~100 GB
		DefaultRequests: 160_000,
		HotExtents:      12_000, HotSkew: 0.85,
		Groups: 1500, GroupMin: 2, GroupMax: 4, GroupProb: 0.30,
		WarmExtents: 20_000, WarmProb: 0.06,
		ColdProb: 0.165, ScanFrac: 0.35,
		ReqMin: 8, ReqMax: 128,
		WriteFrac: 0.55,
		FastFrac:  0.712, InterBurstMean: 5 * time.Millisecond,
		TraceLatencyMean: 3880 * time.Microsecond,
	}
}

func rsrch() Profile {
	return Profile{
		Name: "rsrch", Description: "research projects",
		NumberSpace:     40 << 20, // ~20 GB
		DefaultRequests: 120_000,
		HotExtents:      3500, HotSkew: 0.9,
		Groups: 500, GroupMin: 2, GroupMax: 3, GroupProb: 0.33,
		WarmExtents: 5000, WarmProb: 0.05,
		ColdProb: 0.040, ScanFrac: 0.25,
		ReqMin: 4, ReqMax: 64,
		WriteFrac: 0.85, // rsrch is ~90% writes in the MSR dataset
		FastFrac:  0.774, InterBurstMean: 4 * time.Millisecond,
		TraceLatencyMean: 3020 * time.Microsecond,
	}
}

func stg() Profile {
	return Profile{
		Name: "stg", Description: "staging server",
		// An order of magnitude more blocks than the rest — the
		// property the paper blames for stg's poor small-table
		// behaviour in Fig. 9.
		NumberSpace:     2 << 30, // ~1 TB
		DefaultRequests: 160_000,
		HotExtents:      8000, HotSkew: 0.8,
		Groups: 1200, GroupMin: 2, GroupMax: 3, GroupProb: 0.25,
		WarmExtents: 40_000, WarmProb: 0.10, // heavy low-support tail
		ColdProb: 0.66, ScanFrac: 0.50, // staging: bulk sequential copies
		ReqMin: 16, ReqMax: 256,
		WriteFrac: 0.35,
		FastFrac:  0.659, InterBurstMean: 8 * time.Millisecond,
		TraceLatencyMean: 18_940 * time.Microsecond,
	}
}

func hm() Profile {
	return Profile{
		Name: "hm", Description: "hardware monitor",
		NumberSpace:     80 << 20, // ~40 GB
		DefaultRequests: 140_000,
		HotExtents:      3500, HotSkew: 0.85,
		Groups: 800, GroupMin: 2, GroupMax: 3, GroupProb: 0.28,
		WarmExtents: 30_000, WarmProb: 0.09, // long tail, like stg
		ColdProb: 0.019, ScanFrac: 0.20,
		ReqMin: 4, ReqMax: 64,
		WriteFrac: 0.60,
		FastFrac:  0.670, InterBurstMean: 6 * time.Millisecond,
		// Fig. 8e's frequent-but-uncorrelated region around block 5M.
		PopularRegion: 600, PopularRegionProb: 0.06,
		TraceLatencyMean: 13_860 * time.Microsecond,
	}
}

// Profiles returns the five MSR-like profiles in the paper's order.
func Profiles() []Profile {
	return []Profile{wdev(), src2(), rsrch(), stg(), hm()}
}

// ProfileByName returns the named profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("msr: unknown profile %q (want wdev, src2, rsrch, stg, or hm)", name)
}
