// Package device simulates block storage devices with parameterised
// latency models.
//
// The paper evaluates on real hardware: traces recorded on enterprise
// HDDs and replayed on a Samsung 960 EVO NVMe SSD. This simulator
// substitutes for both roles. It matters for two things only: (1) the
// *relative* latency between the recording device and the replay device
// determines the replay speedups of Table II, and (2) the replay
// device's latency feeds the monitor's dynamic transaction window. The
// model therefore reproduces millisecond-class mechanical latencies
// (seek + rotation + transfer) and microsecond-class flash latencies
// (fixed submission cost + transfer + occasional garbage-collection
// tails), with deterministic seeded randomness.
package device

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"daccor/internal/blktrace"
)

// Profile parameterises a device's latency model. Zero-valued fields
// disable the corresponding term.
type Profile struct {
	// Name labels the profile in output.
	Name string

	// ReadBase and WriteBase are fixed per-request costs (controller,
	// submission, flash read/program).
	ReadBase, WriteBase time.Duration

	// SeekMax is the full-stroke seek time of a mechanical device; the
	// per-request seek cost scales with the square root of the seek
	// distance fraction, a standard approximation of seek curves.
	// NumberSpace must be set when SeekMax is.
	SeekMax time.Duration
	// RotationPeriod is one platter revolution; each mechanical access
	// pays a uniform random rotational delay in [0, RotationPeriod).
	RotationPeriod time.Duration
	// NumberSpace is the device capacity in blocks, used to normalise
	// seek distances.
	NumberSpace uint64

	// ReadBytesPerSec and WriteBytesPerSec are streaming transfer
	// rates; 0 disables the transfer term.
	ReadBytesPerSec, WriteBytesPerSec float64

	// TailProb is the probability that a request hits a slow path
	// (e.g. garbage collection on flash); it then pays TailPenalty.
	TailProb    float64
	TailPenalty time.Duration

	// JitterFrac adds multiplicative noise: the service time is scaled
	// by a factor uniform in [1-JitterFrac, 1+JitterFrac].
	JitterFrac float64

	// WriteCacheHitProb is the probability a write is absorbed by the
	// device's volatile cache and completes in WriteCacheLatency —
	// the reason the paper uses only *read* latency for Table II's
	// device comparison.
	WriteCacheHitProb float64
	WriteCacheLatency time.Duration
}

// Validate reports configuration errors.
func (p Profile) Validate() error {
	if p.ReadBase < 0 || p.WriteBase < 0 || p.SeekMax < 0 || p.RotationPeriod < 0 {
		return fmt.Errorf("device %q: negative latency term", p.Name)
	}
	if p.SeekMax > 0 && p.NumberSpace == 0 {
		return fmt.Errorf("device %q: SeekMax requires NumberSpace", p.Name)
	}
	if p.TailProb < 0 || p.TailProb > 1 || p.WriteCacheHitProb < 0 || p.WriteCacheHitProb > 1 {
		return fmt.Errorf("device %q: probability out of [0,1]", p.Name)
	}
	if p.JitterFrac < 0 || p.JitterFrac >= 1 {
		return fmt.Errorf("device %q: JitterFrac must be in [0,1)", p.Name)
	}
	if p.ReadBytesPerSec < 0 || p.WriteBytesPerSec < 0 {
		return fmt.Errorf("device %q: negative transfer rate", p.Name)
	}
	return nil
}

// EnterpriseHDD approximates the 7200 RPM enterprise disks behind the
// MSR Cambridge traces: multi-millisecond random access.
func EnterpriseHDD(numberSpace uint64) Profile {
	return Profile{
		Name:              "enterprise-hdd",
		ReadBase:          200 * time.Microsecond,
		WriteBase:         200 * time.Microsecond,
		SeekMax:           12 * time.Millisecond,
		RotationPeriod:    8333 * time.Microsecond, // 7200 RPM
		NumberSpace:       numberSpace,
		ReadBytesPerSec:   120e6,
		WriteBytesPerSec:  120e6,
		JitterFrac:        0.15,
		WriteCacheHitProb: 0.5,
		WriteCacheLatency: 50 * time.Microsecond,
	}
}

// NVMeSSD approximates the paper's Samsung 960 EVO test device:
// tens-of-microseconds reads, cached writes, rare GC tails.
func NVMeSSD() Profile {
	return Profile{
		Name:              "nvme-ssd",
		ReadBase:          25 * time.Microsecond,
		WriteBase:         20 * time.Microsecond,
		ReadBytesPerSec:   2.5e9,
		WriteBytesPerSec:  1.8e9,
		TailProb:          0.002,
		TailPenalty:       2 * time.Millisecond,
		JitterFrac:        0.2,
		WriteCacheHitProb: 0.9,
		WriteCacheLatency: 8 * time.Microsecond,
	}
}

// Stats aggregates a device's request history.
type Stats struct {
	Reads, Writes             uint64
	ReadLatencySum            time.Duration
	WriteLatencySum           time.Duration
	TailEvents                uint64
	BytesRead, BytesWritten   uint64
	BusyTime                  time.Duration
	QueueWaitSum              time.Duration
	MaxQueueWait, MaxReadTime time.Duration
}

// MeanReadLatency returns the average read service latency (excluding
// queueing), the metric Table II compares devices by.
func (s Stats) MeanReadLatency() time.Duration {
	if s.Reads == 0 {
		return 0
	}
	return s.ReadLatencySum / time.Duration(s.Reads)
}

// MeanWriteLatency returns the average write service latency.
func (s Stats) MeanWriteLatency() time.Duration {
	if s.Writes == 0 {
		return 0
	}
	return s.WriteLatencySum / time.Duration(s.Writes)
}

// Device is a single simulated block device. It is single-queue: a
// request submitted while the device is busy waits for the in-flight
// request to finish, which is how queueing delay arises in timed
// replays. Device is not safe for concurrent use.
type Device struct {
	prof      Profile
	rng       *rand.Rand
	headPos   uint64 // last accessed block, for seek distances
	busyUntil int64  // ns timestamp until which the device is busy
	stats     Stats
}

// New returns a device with the given profile and deterministic seed.
func New(prof Profile, seed int64) (*Device, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	return &Device{prof: prof, rng: rand.New(rand.NewSource(seed))}, nil
}

// Profile returns the device's profile.
func (d *Device) Profile() Profile { return d.prof }

// Stats returns a copy of the accumulated statistics.
func (d *Device) Stats() Stats { return d.stats }

// ResetStats clears the statistics (e.g. between replay repetitions)
// without resetting the head position or RNG.
func (d *Device) ResetStats() { d.stats = Stats{} }

// Reset clears the statistics and the queue state so a new replay can
// start its clock at zero. The RNG and head position persist, keeping
// repeated runs statistically independent but deterministic overall.
func (d *Device) Reset() {
	d.stats = Stats{}
	d.busyUntil = 0
}

// ServiceTime samples the service time for one request, advancing the
// head position and RNG. It excludes queueing.
func (d *Device) ServiceTime(op blktrace.Op, e blktrace.Extent) time.Duration {
	p := &d.prof
	var lat time.Duration

	if op == blktrace.OpWrite && p.WriteCacheHitProb > 0 && d.rng.Float64() < p.WriteCacheHitProb {
		// Absorbed by the volatile write cache: no mechanics.
		d.headPos = e.End()
		return d.jitter(p.WriteCacheLatency)
	}

	switch op {
	case blktrace.OpWrite:
		lat = p.WriteBase
	default:
		lat = p.ReadBase
	}

	if p.SeekMax > 0 {
		dist := float64(absDiff(e.Block, d.headPos))
		frac := dist / float64(p.NumberSpace)
		if frac > 1 {
			frac = 1
		}
		lat += time.Duration(float64(p.SeekMax) * math.Sqrt(frac))
	}
	if p.RotationPeriod > 0 {
		lat += time.Duration(d.rng.Int63n(int64(p.RotationPeriod)))
	}

	rate := p.ReadBytesPerSec
	if op == blktrace.OpWrite {
		rate = p.WriteBytesPerSec
	}
	if rate > 0 {
		lat += time.Duration(float64(e.Bytes()) / rate * float64(time.Second))
	}

	if p.TailProb > 0 && d.rng.Float64() < p.TailProb {
		lat += p.TailPenalty
		d.stats.TailEvents++
	}

	d.headPos = e.End()
	return d.jitter(lat)
}

func (d *Device) jitter(lat time.Duration) time.Duration {
	if d.prof.JitterFrac > 0 {
		f := 1 + d.prof.JitterFrac*(2*d.rng.Float64()-1)
		lat = time.Duration(float64(lat) * f)
	}
	if lat < 0 {
		lat = 0
	}
	return lat
}

// Completion describes one finished request.
type Completion struct {
	// SubmitTime is when the request arrived at the device.
	SubmitTime int64
	// StartTime is when service began (>= SubmitTime under queueing).
	StartTime int64
	// CompleteTime is when service finished.
	CompleteTime int64
	Op           blktrace.Op
	Extent       blktrace.Extent
}

// Latency is the request's total latency including queue wait — what
// the host observes and what drives the dynamic transaction window.
func (c Completion) Latency() time.Duration {
	return time.Duration(c.CompleteTime - c.SubmitTime)
}

// Submit services a request arriving at time `at` (ns), honouring the
// single-queue discipline, and returns its completion record.
func (d *Device) Submit(at int64, op blktrace.Op, e blktrace.Extent) Completion {
	start := at
	if d.busyUntil > start {
		start = d.busyUntil
	}
	svc := d.ServiceTime(op, e)
	complete := start + int64(svc)
	d.busyUntil = complete

	wait := time.Duration(start - at)
	d.stats.QueueWaitSum += wait
	if wait > d.stats.MaxQueueWait {
		d.stats.MaxQueueWait = wait
	}
	d.stats.BusyTime += svc
	total := time.Duration(complete - at)
	switch op {
	case blktrace.OpWrite:
		d.stats.Writes++
		d.stats.WriteLatencySum += total
		d.stats.BytesWritten += e.Bytes()
	default:
		d.stats.Reads++
		d.stats.ReadLatencySum += total
		d.stats.BytesRead += e.Bytes()
		if total > d.stats.MaxReadTime {
			d.stats.MaxReadTime = total
		}
	}
	return Completion{SubmitTime: at, StartTime: start, CompleteTime: complete, Op: op, Extent: e}
}

func absDiff(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}
