package device

import (
	"testing"
	"testing/quick"
	"time"

	"daccor/internal/blktrace"
)

func mustDevice(t *testing.T, p Profile, seed int64) *Device {
	t.Helper()
	d, err := New(p, seed)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d
}

func TestProfileValidation(t *testing.T) {
	bad := []Profile{
		{Name: "neg", ReadBase: -1},
		{Name: "seek-no-space", SeekMax: time.Millisecond},
		{Name: "prob", TailProb: 1.5},
		{Name: "wprob", WriteCacheHitProb: -0.1},
		{Name: "jitter", JitterFrac: 1.0},
		{Name: "rate", ReadBytesPerSec: -5},
	}
	for _, p := range bad {
		if _, err := New(p, 1); err == nil {
			t.Errorf("profile %q: want validation error", p.Name)
		}
	}
	for _, p := range []Profile{EnterpriseHDD(1 << 30), NVMeSSD()} {
		if err := p.Validate(); err != nil {
			t.Errorf("builtin profile %q invalid: %v", p.Name, err)
		}
	}
}

func TestLatencyScalesMillisecondsVsMicroseconds(t *testing.T) {
	hdd := mustDevice(t, EnterpriseHDD(1<<30), 1)
	ssd := mustDevice(t, NVMeSSD(), 1)
	e := blktrace.Extent{Block: 1 << 20, Len: 16} // 8 KB
	var hddSum, ssdSum time.Duration
	const n = 1000
	for i := 0; i < n; i++ {
		// Random-ish positions to force seeks on the HDD.
		e.Block = uint64(i%2) * (1 << 29)
		hddSum += hdd.ServiceTime(blktrace.OpRead, e)
		ssdSum += ssd.ServiceTime(blktrace.OpRead, e)
	}
	hddMean := hddSum / n
	ssdMean := ssdSum / n
	if hddMean < 2*time.Millisecond || hddMean > 25*time.Millisecond {
		t.Errorf("HDD mean read = %v, want ms-class", hddMean)
	}
	if ssdMean < 10*time.Microsecond || ssdMean > 150*time.Microsecond {
		t.Errorf("SSD mean read = %v, want tens of µs", ssdMean)
	}
	ratio := float64(hddMean) / float64(ssdMean)
	if ratio < 20 {
		t.Errorf("HDD/SSD ratio = %.1f, want a large gap (Table II regime)", ratio)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	e := blktrace.Extent{Block: 12345, Len: 8}
	a := mustDevice(t, NVMeSSD(), 7)
	b := mustDevice(t, NVMeSSD(), 7)
	for i := 0; i < 100; i++ {
		if a.ServiceTime(blktrace.OpRead, e) != b.ServiceTime(blktrace.OpRead, e) {
			t.Fatal("same seed must give identical latencies")
		}
	}
	c := mustDevice(t, NVMeSSD(), 8)
	same := true
	for i := 0; i < 100; i++ {
		if a.ServiceTime(blktrace.OpRead, e) != c.ServiceTime(blktrace.OpRead, e) {
			same = false
		}
	}
	if same {
		t.Error("different seeds should diverge")
	}
}

func TestSeekDistanceMatters(t *testing.T) {
	p := EnterpriseHDD(1 << 30)
	p.RotationPeriod = 0 // isolate the seek term
	p.JitterFrac = 0
	d := mustDevice(t, p, 1)
	near := blktrace.Extent{Block: 0, Len: 1}
	far := blktrace.Extent{Block: 1 << 29, Len: 1}

	d.ServiceTime(blktrace.OpRead, near) // park head at 1
	short := d.ServiceTime(blktrace.OpRead, near)
	d.ServiceTime(blktrace.OpRead, near)
	long := d.ServiceTime(blktrace.OpRead, far)
	if long <= short*2 {
		t.Errorf("far seek %v should dwarf near seek %v", long, short)
	}
}

func TestTransferTermScalesWithSize(t *testing.T) {
	p := NVMeSSD()
	p.JitterFrac = 0
	p.TailProb = 0
	d := mustDevice(t, p, 1)
	small := d.ServiceTime(blktrace.OpRead, blktrace.Extent{Block: 0, Len: 1})
	big := d.ServiceTime(blktrace.OpRead, blktrace.Extent{Block: 0, Len: 2048}) // 1 MB
	wantDelta := time.Duration(float64(2047*blktrace.BlockSize) / p.ReadBytesPerSec * float64(time.Second))
	gotDelta := big - small
	if gotDelta < wantDelta*9/10 || gotDelta > wantDelta*11/10 {
		t.Errorf("transfer delta = %v, want ≈%v", gotDelta, wantDelta)
	}
}

func TestWriteCacheAbsorbsWrites(t *testing.T) {
	p := NVMeSSD()
	p.WriteCacheHitProb = 1
	p.JitterFrac = 0
	d := mustDevice(t, p, 1)
	w := d.ServiceTime(blktrace.OpWrite, blktrace.Extent{Block: 0, Len: 2048})
	if w != p.WriteCacheLatency {
		t.Errorf("cached write = %v, want %v", w, p.WriteCacheLatency)
	}
}

func TestTailEventsCounted(t *testing.T) {
	p := NVMeSSD()
	p.TailProb = 1
	d := mustDevice(t, p, 1)
	lat := d.ServiceTime(blktrace.OpRead, blktrace.Extent{Block: 0, Len: 1})
	if lat < p.TailPenalty/2 {
		t.Errorf("tail latency = %v, want >= penalty %v scaled by jitter", lat, p.TailPenalty)
	}
	if d.Stats().TailEvents != 1 {
		t.Errorf("TailEvents = %d, want 1", d.Stats().TailEvents)
	}
}

func TestSubmitQueueing(t *testing.T) {
	p := NVMeSSD()
	p.JitterFrac = 0
	p.TailProb = 0
	d := mustDevice(t, p, 1)
	e := blktrace.Extent{Block: 0, Len: 1}
	c1 := d.Submit(0, blktrace.OpRead, e)
	// Second request arrives while the first is in flight.
	c2 := d.Submit(c1.CompleteTime/2, blktrace.OpRead, e)
	if c2.StartTime != c1.CompleteTime {
		t.Errorf("queued request started at %d, want %d", c2.StartTime, c1.CompleteTime)
	}
	if c2.Latency() <= time.Duration(c2.CompleteTime-c2.StartTime) {
		t.Error("queued latency must include wait time")
	}
	// Idle gap: a request arriving after completion starts immediately.
	c3 := d.Submit(c2.CompleteTime+1_000_000, blktrace.OpRead, e)
	if c3.StartTime != c3.SubmitTime {
		t.Errorf("idle request should start on arrival, got start %d submit %d", c3.StartTime, c3.SubmitTime)
	}
	st := d.Stats()
	if st.Reads != 3 || st.QueueWaitSum == 0 || st.MaxQueueWait == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestStatsAccumulateAndReset(t *testing.T) {
	d := mustDevice(t, NVMeSSD(), 1)
	d.Submit(0, blktrace.OpRead, blktrace.Extent{Block: 0, Len: 4})
	d.Submit(0, blktrace.OpWrite, blktrace.Extent{Block: 8, Len: 2})
	st := d.Stats()
	if st.Reads != 1 || st.Writes != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BytesRead != 4*blktrace.BlockSize || st.BytesWritten != 2*blktrace.BlockSize {
		t.Errorf("byte accounting wrong: %+v", st)
	}
	if st.MeanReadLatency() <= 0 || st.MeanWriteLatency() <= 0 {
		t.Error("mean latencies should be positive")
	}
	d.ResetStats()
	if d.Stats().Reads != 0 || d.Stats().MeanReadLatency() != 0 {
		t.Error("ResetStats should zero everything")
	}
	if (Stats{}).MeanReadLatency() != 0 || (Stats{}).MeanWriteLatency() != 0 {
		t.Error("zero-stats means should be 0, not NaN/panic")
	}
}

// Property: service times are always non-negative and completions are
// causally ordered regardless of profile randomness.
func TestSubmitCausalityQuick(t *testing.T) {
	f := func(seed int64, blocks []uint32) bool {
		d, err := New(NVMeSSD(), seed)
		if err != nil {
			return false
		}
		at := int64(0)
		lastComplete := int64(0)
		for _, b := range blocks {
			at += int64(b % 100_000)
			c := d.Submit(at, blktrace.OpRead, blktrace.Extent{Block: uint64(b), Len: 1 + b%64})
			if c.StartTime < c.SubmitTime || c.CompleteTime < c.StartTime {
				return false
			}
			if c.StartTime < lastComplete { // single queue: no overlap
				return false
			}
			lastComplete = c.CompleteTime
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
