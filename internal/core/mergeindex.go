package core

import (
	"fmt"
	"slices"

	"daccor/internal/blktrace"
)

// MergeIndex is the incremental merged-view maintainer: it holds the
// live union of N source snapshots — the same value MergeSnapshots
// computes from scratch — and keeps it current in O(changed entries)
// as sources publish new exports, deltas, or disappear. The fan-in
// read paths (engine merged cache, fleet aggregator, P>1 partition
// views) re-read the union on every epoch bump, and re-merging
// everything per read is O(total live entries) with two fresh dedup
// maps; the CHH literature maintains its combined summaries per update
// for exactly this reason. The index pays O(source entries) once when
// a source's full state arrives and O(delta) for a delta, and a read
// pays O(changed since last read · log changed) to re-materialize.
//
// Layout follows the PR 5 probe discipline: per side (items, pairs) an
// open-addressing oaMap keys into an arena of union entries holding a
// uint64 running sum, a holder refcount, and a Tier2 holder count.
// min(sum, MaxUint32) reproduces chained satAdd exactly — pairwise
// saturating addition of uint32 values equals the true sum clamped at
// the ceiling — and "any holder at Tier2" reproduces max-tier, since
// snapshot entries only carry Tier1 or Tier2 (the wire decoders reject
// anything else). Each source keeps a shadow table of its last-known
// contribution, so changing or removing a source replays its previous
// state as a negative delta without consulting the source again.
//
// Entries and slots are free-listed and scratch buffers are reused, so
// steady-state maintenance does not allocate; each materialized
// Snapshot is a fresh exact-size allocation (the previous one may
// still be referenced by readers) built by merging the previous sorted
// output with a sorted patch of the dirty keys — allocation count per
// read is constant, independent of union size.
//
// A MergeIndex is not safe for concurrent use; callers wrap it in the
// cache lock that already guards their merged view.
type MergeIndex struct {
	items   mergeSide[blktrace.Extent, ItemCount]
	pairs   mergeSide[blktrace.Pair, PairCount]
	sources map[string]*mergeSource
}

// mergeSource is one source's shadow: its last-known contribution to
// the union, keyed for O(1) lookup during reconcile and delta apply.
type mergeSource struct {
	items shadowTable[blktrace.Extent]
	pairs shadowTable[blktrace.Pair]
}

// NewMergeIndex returns an empty maintainer.
func NewMergeIndex() *MergeIndex {
	m := &MergeIndex{sources: make(map[string]*mergeSource)}
	m.items.init(func(k blktrace.Extent, c uint32, t Tier) ItemCount {
		return ItemCount{Extent: k, Count: c, Tier: t}
	}, func(e ItemCount) blktrace.Extent { return e.Extent }, compareItemCounts)
	m.pairs.init(func(k blktrace.Pair, c uint32, t Tier) PairCount {
		return PairCount{Pair: k, Count: c, Tier: t}
	}, func(e PairCount) blktrace.Pair { return e.Pair }, comparePairCounts)
	return m
}

// Sources returns the number of sources currently contributing.
func (m *MergeIndex) Sources() int { return len(m.sources) }

// Len returns the union's live entry counts (items, pairs).
func (m *MergeIndex) Len() (items, pairs int) { return m.items.live, m.pairs.live }

// source returns (creating if needed) the shadow for the named source,
// with capacity hints for a first full feed of ni items / np pairs.
func (m *MergeIndex) source(name string, ni, np int) *mergeSource {
	src := m.sources[name]
	if src == nil {
		src = &mergeSource{}
		src.items.init(ni)
		src.pairs.init(np)
		m.sources[name] = src
	}
	return src
}

// Update reconciles the union with a source's full current state: the
// difference against the source's shadow is applied entry by entry
// (new keys added, changed counters adjusted, vanished keys replayed
// as negatives), then the shadow is replaced. An unknown source is
// registered; an anti-entropy full sync is therefore exactly
// remove+full-apply, fused so unchanged entries never move. Snapshot
// entries must carry Tier1 or Tier2, which every real export does.
func (m *MergeIndex) Update(source string, snap Snapshot) {
	src := m.source(source, len(snap.Items), len(snap.Pairs))
	m.items.reconcile(&src.items, len(snap.Items), func(i int) (blktrace.Extent, uint32, Tier) {
		e := snap.Items[i]
		return e.Extent, e.Count, e.Tier
	})
	m.pairs.reconcile(&src.pairs, len(snap.Pairs), func(i int) (blktrace.Pair, uint32, Tier) {
		e := snap.Pairs[i]
		return e.Pair, e.Count, e.Tier
	})
}

// UpdateRaw is Update fed from a RawSnapshot capture, skipping the
// sorted-export derivation entirely: reconcile is order-insensitive,
// so the capture's recency-order entries feed the index directly. This
// is the P>1 partition path — each partition's capture reconciles in
// O(partition entries) with no per-refresh sort of unchanged keys.
func (m *MergeIndex) UpdateRaw(source string, raw *RawSnapshot) {
	src := m.source(source, len(raw.items), len(raw.pairs))
	m.items.reconcile(&src.items, len(raw.items), func(i int) (blktrace.Extent, uint32, Tier) {
		e := raw.items[i]
		return e.Key, e.Count, e.Tier
	})
	m.pairs.reconcile(&src.pairs, len(raw.pairs), func(i int) (blktrace.Pair, uint32, Tier) {
		e := raw.pairs[i]
		return e.Key, e.Count, e.Tier
	})
}

// ApplyDelta advances a source by a SnapshotDelta in O(delta): upserts
// carry the absolute new per-source state, deletes name keys the
// source no longer holds. The delta must fit the source's shadow — a
// delete of a key the shadow lacks returns ErrDeltaConflict, exactly
// as SnapshotDelta.Apply rejects a mismatched base, and the caller
// falls back to Update with the source's full state, which self-heals
// any partially applied entries. Deletes apply before upserts,
// matching SnapshotDelta.Apply.
func (m *MergeIndex) ApplyDelta(source string, d SnapshotDelta) error {
	src := m.source(source, len(d.UpsertItems), len(d.UpsertPairs))
	for _, k := range d.DeletePairs {
		if err := m.pairs.deleteKey(&src.pairs, k); err != nil {
			return err
		}
	}
	for _, k := range d.DeleteItems {
		if err := m.items.deleteKey(&src.items, k); err != nil {
			return err
		}
	}
	for _, pc := range d.UpsertPairs {
		m.pairs.upsert(&src.pairs, pc.Pair, pc.Count, pc.Tier)
	}
	for _, ic := range d.UpsertItems {
		m.items.upsert(&src.items, ic.Extent, ic.Count, ic.Tier)
	}
	return nil
}

// Remove replays the source's last-known state as a negative delta and
// forgets it. Removing an unknown source is a no-op. This is the
// device-unregister / collector-failed path.
func (m *MergeIndex) Remove(source string) {
	src := m.sources[source]
	if src == nil {
		return
	}
	m.items.removeAll(&src.items)
	m.pairs.removeAll(&src.pairs)
	delete(m.sources, source)
}

// Snapshot materializes the union as a sorted export, identical to
// MergeSnapshots over the sources' current states. Unchanged reads
// return the previous value; otherwise the dirty keys are deduped,
// their current values sorted into a patch, and the patch is merged
// with the previous sorted output in one linear pass. The result is
// read-only and remains valid after further index mutations.
func (m *MergeIndex) Snapshot() Snapshot {
	var s Snapshot
	if p := m.pairs.materialize(); len(p) > 0 {
		s.Pairs = p
	}
	if it := m.items.materialize(); len(it) > 0 {
		s.Items = it
	}
	return s
}

// TopRules extracts the limit highest-ranked fleet-wide rules straight
// from the union (all of them when limit <= 0): pair entries stream
// through a bounded min-heap and antecedent counts resolve via the
// item union's O(1) index, so no per-call item map is built and no
// full rule list is sorted. The result is exactly
// Snapshot().Rules(minSupport, minConfidence)[:limit].
func (m *MergeIndex) TopRules(minSupport uint32, minConfidence float64, limit int) []Rule {
	sink := newRuleSink(limit)
	lookup := func(ext blktrace.Extent) uint32 { return m.items.lookup(ext) }
	for i := range m.pairs.arena {
		e := &m.pairs.arena[i]
		if e.refs <= 0 {
			continue
		}
		count := clampCount(e.sum)
		if count < minSupport {
			continue
		}
		sink.addPair(e.key, count, minConfidence, lookup)
	}
	return sink.finish()
}

// clampCount folds a union running sum back to the snapshot counter
// domain: min(sum, MaxUint32), which equals any chaining of satAdd
// over the same addends.
func clampCount(sum uint64) uint32 {
	if sum > 0xFFFF_FFFF {
		return 0xFFFF_FFFF
	}
	return uint32(sum)
}

// unionEntry is one key's aggregate across all sources.
type unionEntry[K comparable] struct {
	key K
	// sum is the true uint64 sum of the holders' counters; the exported
	// counter is clampCount(sum).
	sum uint64
	// refs counts holders; 0 marks a free arena slot.
	refs int32
	// t2 counts holders at Tier2; the exported tier is Tier2 iff t2>0.
	t2 int32
	// next links free slots.
	next int32
}

// mergeSide is one half (items or pairs) of the union: the keyed
// aggregate plus everything needed to re-materialize the sorted export
// incrementally.
type mergeSide[K comparable, E any] struct {
	idx   *oaMap[K]
	arena []unionEntry[K]
	free  int32
	live  int

	// dirty accumulates keys touched since the last materialize
	// (duplicates allowed — deduped through dirtySet at read time).
	dirty    []K
	dirtySet map[K]struct{}
	patch    []E

	// prev is the last materialized output; immutable once returned.
	prev   []E
	prevOK bool

	mk  func(K, uint32, Tier) E
	key func(E) K
	cmp func(E, E) int
}

func (u *mergeSide[K, E]) init(mk func(K, uint32, Tier) E, key func(E) K, cmp func(E, E) int) {
	u.idx = newOAMap[K](0)
	u.free = nilSlot
	u.dirtySet = make(map[K]struct{})
	u.mk, u.key, u.cmp = mk, key, cmp
}

func (u *mergeSide[K, E]) lookup(k K) uint32 {
	slot, ok := u.idx.Get(k)
	if !ok {
		return 0
	}
	return clampCount(u.arena[slot].sum)
}

// add records one more holder of k contributing count at tier.
func (u *mergeSide[K, E]) add(k K, count uint32, tier Tier) {
	u.dirty = append(u.dirty, k)
	if slot, ok := u.idx.Get(k); ok {
		e := &u.arena[slot]
		e.sum += uint64(count)
		e.refs++
		if tier == Tier2 {
			e.t2++
		}
		return
	}
	var slot int32
	if u.free != nilSlot {
		slot = u.free
		u.free = u.arena[slot].next
	} else {
		u.arena = append(u.arena, unionEntry[K]{})
		slot = int32(len(u.arena) - 1)
	}
	e := &u.arena[slot]
	*e = unionEntry[K]{key: k, sum: uint64(count), refs: 1, next: nilSlot}
	if tier == Tier2 {
		e.t2 = 1
	}
	u.idx.Set(k, slot)
	u.live++
}

// sub removes one holder's contribution; the key must be held (the
// caller's shadow proves it).
func (u *mergeSide[K, E]) sub(k K, count uint32, tier Tier) {
	u.dirty = append(u.dirty, k)
	slot, _ := u.idx.Get(k)
	e := &u.arena[slot]
	e.sum -= uint64(count)
	e.refs--
	if tier == Tier2 {
		e.t2--
	}
	if e.refs == 0 {
		u.idx.Delete(k)
		var zero K
		e.key, e.sum, e.t2 = zero, 0, 0
		e.next = u.free
		u.free = slot
		u.live--
	}
}

// replace adjusts one holder's contribution in place (refs unchanged).
func (u *mergeSide[K, E]) replace(k K, oldCount uint32, oldTier Tier, newCount uint32, newTier Tier) {
	u.dirty = append(u.dirty, k)
	slot, _ := u.idx.Get(k)
	e := &u.arena[slot]
	e.sum = e.sum - uint64(oldCount) + uint64(newCount)
	if oldTier == Tier2 {
		e.t2--
	}
	if newTier == Tier2 {
		e.t2++
	}
}

// reconcile replaces shadow sh's state with the n entries served by
// at, adjusting the union by exactly the difference: present keys are
// re-marked (and adjusted when their value changed), absent keys are
// inserted, and unmarked shadow survivors are swept as deletions.
func (u *mergeSide[K, E]) reconcile(sh *shadowTable[K], n int, at func(int) (K, uint32, Tier)) {
	sh.mark++
	for i := 0; i < n; i++ {
		k, count, tier := at(i)
		if slot, ok := sh.idx.Get(k); ok {
			e := &sh.arena[slot]
			e.mark = sh.mark
			if e.count != count || e.tier != tier {
				u.replace(k, e.count, e.tier, count, tier)
				e.count, e.tier = count, tier
			}
			continue
		}
		sh.insert(k, count, tier)
		u.add(k, count, tier)
	}
	if sh.live == n { // every live shadow entry was re-marked
		return
	}
	for i := range sh.arena {
		e := &sh.arena[i]
		if e.mark == 0 || e.mark == sh.mark {
			continue
		}
		u.sub(e.key, e.count, e.tier)
		sh.deleteSlot(int32(i))
	}
}

// upsert sets one key's per-source state (the delta upsert path).
func (u *mergeSide[K, E]) upsert(sh *shadowTable[K], k K, count uint32, tier Tier) {
	if slot, ok := sh.idx.Get(k); ok {
		e := &sh.arena[slot]
		if e.count != count || e.tier != tier {
			u.replace(k, e.count, e.tier, count, tier)
			e.count, e.tier = count, tier
		}
		return
	}
	sh.insert(k, count, tier)
	u.add(k, count, tier)
}

// deleteKey removes one key from the shadow and the union, failing
// with ErrDeltaConflict when the shadow does not hold it.
func (u *mergeSide[K, E]) deleteKey(sh *shadowTable[K], k K) error {
	slot, ok := sh.idx.Get(k)
	if !ok {
		return fmt.Errorf("%w: delete of absent key %v", ErrDeltaConflict, k)
	}
	e := &sh.arena[slot]
	u.sub(k, e.count, e.tier)
	sh.deleteSlot(slot)
	return nil
}

// removeAll replays every shadow entry as a negative delta (the source
// removal path). The shadow is left empty but reusable.
func (u *mergeSide[K, E]) removeAll(sh *shadowTable[K]) {
	if sh.live == 0 {
		return
	}
	for i := range sh.arena {
		e := &sh.arena[i]
		if e.mark == 0 {
			continue
		}
		u.sub(e.key, e.count, e.tier)
		sh.deleteSlot(int32(i))
	}
}

// materialize returns the union's sorted export, rebuilding only what
// changed: the previous output minus the dirty keys, linearly merged
// with a freshly sorted patch of the dirty keys' current values. The
// output is a new exact-size slice (readers may still hold the
// previous one); all working storage is reused across calls.
func (u *mergeSide[K, E]) materialize() []E {
	if u.prevOK && len(u.dirty) == 0 {
		return u.prev
	}
	if !u.prevOK {
		out := make([]E, 0, u.live)
		for i := range u.arena {
			e := &u.arena[i]
			if e.refs > 0 {
				out = append(out, u.mk(e.key, clampCount(e.sum), tierOfUnion(e.t2)))
			}
		}
		slices.SortFunc(out, u.cmp)
		u.dirty = u.dirty[:0]
		u.prev, u.prevOK = out, true
		return out
	}
	clear(u.dirtySet)
	for _, k := range u.dirty {
		u.dirtySet[k] = struct{}{}
	}
	u.patch = u.patch[:0]
	for k := range u.dirtySet {
		if slot, ok := u.idx.Get(k); ok {
			e := &u.arena[slot]
			u.patch = append(u.patch, u.mk(k, clampCount(e.sum), tierOfUnion(e.t2)))
		}
	}
	slices.SortFunc(u.patch, u.cmp)
	out := make([]E, 0, u.live)
	i := 0
	for _, pe := range u.patch {
		for i < len(u.prev) {
			q := u.prev[i]
			if _, dirty := u.dirtySet[u.key(q)]; dirty {
				i++
				continue
			}
			if u.cmp(q, pe) > 0 {
				break
			}
			out = append(out, q)
			i++
		}
		out = append(out, pe)
	}
	for ; i < len(u.prev); i++ {
		q := u.prev[i]
		if _, dirty := u.dirtySet[u.key(q)]; !dirty {
			out = append(out, q)
		}
	}
	u.dirty = u.dirty[:0]
	u.prev = out
	return out
}

// tierOfUnion folds the Tier2 holder count back to the exported tier.
func tierOfUnion(t2 int32) Tier {
	if t2 > 0 {
		return Tier2
	}
	return Tier1
}

// shadowTable is one source's last-known per-key state: an oaMap into
// a free-listed arena, with a mark generation for reconcile sweeps.
type shadowTable[K comparable] struct {
	idx   *oaMap[K]
	arena []shadowEntry[K]
	free  int32
	live  int
	// mark is the reconcile generation; live entries carry mark >= 1
	// (0 marks a free slot), so it doubles as the liveness flag.
	mark uint64
}

type shadowEntry[K comparable] struct {
	key   K
	count uint32
	tier  Tier
	mark  uint64
	next  int32
}

func (sh *shadowTable[K]) init(hint int) {
	sh.idx = newOAMap[K](hint)
	sh.free = nilSlot
	sh.mark = 1
	if hint > 0 {
		sh.arena = make([]shadowEntry[K], 0, hint)
	}
}

func (sh *shadowTable[K]) insert(k K, count uint32, tier Tier) {
	var slot int32
	if sh.free != nilSlot {
		slot = sh.free
		sh.free = sh.arena[slot].next
	} else {
		sh.arena = append(sh.arena, shadowEntry[K]{})
		slot = int32(len(sh.arena) - 1)
	}
	sh.arena[slot] = shadowEntry[K]{key: k, count: count, tier: tier, mark: sh.mark, next: nilSlot}
	sh.idx.Set(k, slot)
	sh.live++
}

func (sh *shadowTable[K]) deleteSlot(slot int32) {
	e := &sh.arena[slot]
	sh.idx.Delete(e.key)
	var zero K
	e.key, e.mark = zero, 0
	e.next = sh.free
	sh.free = slot
	sh.live--
}

// checkInvariants verifies the maintainer's accounting: every union
// entry's sum, refcount, and Tier2 count must equal the aggregation of
// the shadows, both oaMaps must satisfy their probe invariants, and
// live counts must match. Test-only (differential suite).
func (m *MergeIndex) checkInvariants() error {
	if err := checkSideInvariants(&m.items, m.sources, func(s *mergeSource) *shadowTable[blktrace.Extent] { return &s.items }); err != nil {
		return fmt.Errorf("items: %w", err)
	}
	if err := checkSideInvariants(&m.pairs, m.sources, func(s *mergeSource) *shadowTable[blktrace.Pair] { return &s.pairs }); err != nil {
		return fmt.Errorf("pairs: %w", err)
	}
	return nil
}

func checkSideInvariants[K comparable, E any](u *mergeSide[K, E], sources map[string]*mergeSource, side func(*mergeSource) *shadowTable[K]) error {
	if err := u.idx.checkInvariants(); err != nil {
		return err
	}
	type agg struct {
		sum  uint64
		refs int32
		t2   int32
	}
	want := make(map[K]agg)
	for name, src := range sources {
		sh := side(src)
		if err := sh.idx.checkInvariants(); err != nil {
			return fmt.Errorf("source %q shadow: %w", name, err)
		}
		live := 0
		for i := range sh.arena {
			e := &sh.arena[i]
			if e.mark == 0 {
				continue
			}
			live++
			if slot, ok := sh.idx.Get(e.key); !ok || int(slot) != i {
				return fmt.Errorf("source %q shadow slot %d (key %v) not indexed", name, i, e.key)
			}
			a := want[e.key]
			a.sum += uint64(e.count)
			a.refs++
			if e.tier == Tier2 {
				a.t2++
			}
			want[e.key] = a
		}
		if live != sh.live {
			return fmt.Errorf("source %q shadow live %d, counted %d", name, sh.live, live)
		}
	}
	live := 0
	for i := range u.arena {
		e := &u.arena[i]
		if e.refs == 0 {
			continue
		}
		live++
		a, ok := want[e.key]
		if !ok {
			return fmt.Errorf("union holds %v with no shadow holder", e.key)
		}
		if a.sum != e.sum || a.refs != e.refs || a.t2 != e.t2 {
			return fmt.Errorf("union %v = {sum %d refs %d t2 %d}, shadows say {sum %d refs %d t2 %d}",
				e.key, e.sum, e.refs, e.t2, a.sum, a.refs, a.t2)
		}
		if slot, ok := u.idx.Get(e.key); !ok || int(slot) != i {
			return fmt.Errorf("union slot %d (key %v) not indexed", i, e.key)
		}
		delete(want, e.key)
	}
	if len(want) > 0 {
		return fmt.Errorf("%d shadow-held keys missing from the union", len(want))
	}
	if live != u.live {
		return fmt.Errorf("union live %d, counted %d", u.live, live)
	}
	return nil
}
