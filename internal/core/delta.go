package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"daccor/internal/blktrace"
)

// Delta snapshots are the fleet sync unit: a collector that already
// shipped a full export to its aggregator only needs to ship the
// entries that changed since — upserts carrying absolute new counters,
// plus the keys that fell out of the synopsis. Applying a delta to the
// exact base it was diffed against reproduces the new export
// bit-for-bit, which is what lets an aggregator mirror a collector
// without ever replaying its event stream.
//
// The wire encoding reuses the checkpoint record layouts
// (itemRecord/pairRecord from persist.go) framed with explicit counts:
//
//	delta:   u32 upsertItems | u32 upsertPairs | u32 delItems | u32 delPairs
//	         | item records | pair records | item keys | pair keys
//	records: snapshot body = u32 items | u32 pairs | item records | pair records
//
// Like LoadAnalyzer, the decoders treat input as untrusted: counts are
// bounded before they size anything, allocations grow with the bytes
// actually read (a hostile count cannot force a huge up-front make),
// and duplicate or non-canonical keys are rejected.

// Delta decode errors. ErrDeltaConflict additionally serves Apply: it
// marks a delta that does not fit the base it is being applied to —
// the divergence signal that triggers anti-entropy full sync.
var (
	ErrBadDelta      = errors.New("core: invalid snapshot delta")
	ErrDeltaConflict = errors.New("core: delta does not apply to this base snapshot")
)

// SnapshotDelta is the difference between two exports of one synopsis:
// upserts carry the absolute new state of added or changed entries,
// deletes name the keys present in the base but gone from the target.
type SnapshotDelta struct {
	UpsertItems []ItemCount
	UpsertPairs []PairCount
	DeleteItems []blktrace.Extent
	DeletePairs []blktrace.Pair
}

// Empty reports whether the delta changes nothing.
func (d SnapshotDelta) Empty() bool {
	return len(d.UpsertItems) == 0 && len(d.UpsertPairs) == 0 &&
		len(d.DeleteItems) == 0 && len(d.DeletePairs) == 0
}

// Len is the total record count across all four sections.
func (d SnapshotDelta) Len() int {
	return len(d.UpsertItems) + len(d.UpsertPairs) + len(d.DeleteItems) + len(d.DeletePairs)
}

// DiffSnapshots computes the delta that transforms old into new:
// Apply(DiffSnapshots(old, new), old) == new for any two sorted
// exports. Both inputs are sorted snapshots, so the output is
// deterministic: upserts in new's order, deletes in old's order.
func DiffSnapshots(old, new Snapshot) SnapshotDelta {
	var d SnapshotDelta
	oldPairs := make(map[blktrace.Pair]PairCount, len(old.Pairs))
	for _, pc := range old.Pairs {
		oldPairs[pc.Pair] = pc
	}
	oldItems := make(map[blktrace.Extent]ItemCount, len(old.Items))
	for _, ic := range old.Items {
		oldItems[ic.Extent] = ic
	}
	newPairs := make(map[blktrace.Pair]struct{}, len(new.Pairs))
	for _, pc := range new.Pairs {
		newPairs[pc.Pair] = struct{}{}
		if prev, ok := oldPairs[pc.Pair]; !ok || prev != pc {
			d.UpsertPairs = append(d.UpsertPairs, pc)
		}
	}
	newItems := make(map[blktrace.Extent]struct{}, len(new.Items))
	for _, ic := range new.Items {
		newItems[ic.Extent] = struct{}{}
		if prev, ok := oldItems[ic.Extent]; !ok || prev != ic {
			d.UpsertItems = append(d.UpsertItems, ic)
		}
	}
	for _, pc := range old.Pairs {
		if _, ok := newPairs[pc.Pair]; !ok {
			d.DeletePairs = append(d.DeletePairs, pc.Pair)
		}
	}
	for _, ic := range old.Items {
		if _, ok := newItems[ic.Extent]; !ok {
			d.DeleteItems = append(d.DeleteItems, ic.Extent)
		}
	}
	return d
}

// Apply transforms a base snapshot by the delta, returning the sorted
// result. A delete of a key the base does not hold returns
// ErrDeltaConflict: the delta was diffed against a different base, and
// the caller must fall back to a full sync rather than build a silently
// diverged mirror. The base is not modified.
func (d SnapshotDelta) Apply(base Snapshot) (Snapshot, error) {
	pairAt := make(map[blktrace.Pair]int, len(base.Pairs)+len(d.UpsertPairs))
	itemAt := make(map[blktrace.Extent]int, len(base.Items)+len(d.UpsertItems))
	out := Snapshot{
		Pairs: make([]PairCount, len(base.Pairs), len(base.Pairs)+len(d.UpsertPairs)),
		Items: make([]ItemCount, len(base.Items), len(base.Items)+len(d.UpsertItems)),
	}
	copy(out.Pairs, base.Pairs)
	copy(out.Items, base.Items)
	for i, pc := range out.Pairs {
		pairAt[pc.Pair] = i
	}
	for i, ic := range out.Items {
		itemAt[ic.Extent] = i
	}
	for _, p := range d.DeletePairs {
		i, ok := pairAt[p]
		if !ok {
			return Snapshot{}, fmt.Errorf("%w: delete of absent pair %v", ErrDeltaConflict, p)
		}
		delete(pairAt, p)
		last := len(out.Pairs) - 1
		if i != last {
			out.Pairs[i] = out.Pairs[last]
			pairAt[out.Pairs[i].Pair] = i
		}
		out.Pairs = out.Pairs[:last]
	}
	for _, e := range d.DeleteItems {
		i, ok := itemAt[e]
		if !ok {
			return Snapshot{}, fmt.Errorf("%w: delete of absent item %v", ErrDeltaConflict, e)
		}
		delete(itemAt, e)
		last := len(out.Items) - 1
		if i != last {
			out.Items[i] = out.Items[last]
			itemAt[out.Items[i].Extent] = i
		}
		out.Items = out.Items[:last]
	}
	for _, pc := range d.UpsertPairs {
		if i, ok := pairAt[pc.Pair]; ok {
			out.Pairs[i] = pc
			continue
		}
		pairAt[pc.Pair] = len(out.Pairs)
		out.Pairs = append(out.Pairs, pc)
	}
	for _, ic := range d.UpsertItems {
		if i, ok := itemAt[ic.Extent]; ok {
			out.Items[i] = ic
			continue
		}
		itemAt[ic.Extent] = len(out.Items)
		out.Items = append(out.Items, ic)
	}
	// Empty sections are nil in every other Snapshot producer; match
	// that so DeepEqual-based convergence checks compare content only.
	if len(out.Pairs) == 0 {
		out.Pairs = nil
	}
	if len(out.Items) == 0 {
		out.Items = nil
	}
	out.sort()
	return out, nil
}

// maxDeltaRecords bounds any single record-count field in the delta and
// snapshot-body encodings — the same 2·MaxSnapshotCapacity ceiling
// LoadAnalyzer enforces per table (capacity C is per tier).
const maxDeltaRecords = 2 * MaxSnapshotCapacity

// recordPrealloc caps the up-front slice capacity the decoders reserve
// from an untrusted count; beyond it slices grow with the bytes
// actually read, so a hostile header cannot force a large allocation
// from a tiny input.
const recordPrealloc = 1 << 12

func preallocCap(n uint32) int {
	if n > recordPrealloc {
		return recordPrealloc
	}
	return int(n)
}

// EncodeSnapshotRecords writes a snapshot body — item and pair counts
// followed by the checkpoint record layouts — without the analyzer
// header, for embedding in fleet sync frames. The snapshot should be a
// full export (support 0) so the receiving side can extract rules.
func EncodeSnapshotRecords(w io.Writer, s Snapshot) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(s.Items)))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(s.Pairs)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return n, err
	}
	n += 8
	var rec [pairRecordSize]byte
	for _, ic := range s.Items {
		rec[0] = uint8(ic.Tier)
		binary.LittleEndian.PutUint32(rec[1:], ic.Count)
		binary.LittleEndian.PutUint64(rec[5:], ic.Extent.Block)
		binary.LittleEndian.PutUint32(rec[13:], ic.Extent.Len)
		if _, err := bw.Write(rec[:itemRecordSize]); err != nil {
			return n, err
		}
		n += itemRecordSize
	}
	for _, pc := range s.Pairs {
		rec[0] = uint8(pc.Tier)
		binary.LittleEndian.PutUint32(rec[1:], pc.Count)
		binary.LittleEndian.PutUint64(rec[5:], pc.Pair.A.Block)
		binary.LittleEndian.PutUint64(rec[13:], pc.Pair.B.Block)
		binary.LittleEndian.PutUint32(rec[21:], pc.Pair.A.Len)
		binary.LittleEndian.PutUint32(rec[25:], pc.Pair.B.Len)
		if _, err := bw.Write(rec[:pairRecordSize]); err != nil {
			return n, err
		}
		n += pairRecordSize
	}
	return n, bw.Flush()
}

// DecodeSnapshotRecords reads a snapshot body written by
// EncodeSnapshotRecords, validating every record (bounded counts,
// nonzero extents, canonical pairs, valid tiers, positive counters, no
// duplicate keys) before it lands in the result.
func DecodeSnapshotRecords(r io.Reader) (Snapshot, error) {
	br := asByteReader(r)
	nItems, nPairs, err := readCountPair(br, "snapshot body")
	if err != nil {
		return Snapshot{}, err
	}
	var s Snapshot
	seenItems := make(map[blktrace.Extent]struct{}, preallocCap(nItems))
	s.Items = make([]ItemCount, 0, preallocCap(nItems))
	for i := uint32(0); i < nItems; i++ {
		ic, err := readItemRecord(br)
		if err != nil {
			return Snapshot{}, err
		}
		if _, dup := seenItems[ic.Extent]; dup {
			return Snapshot{}, fmt.Errorf("%w: duplicate item %v", ErrBadSnapshotRecord, ic.Extent)
		}
		seenItems[ic.Extent] = struct{}{}
		s.Items = append(s.Items, ic)
	}
	seenPairs := make(map[blktrace.Pair]struct{}, preallocCap(nPairs))
	s.Pairs = make([]PairCount, 0, preallocCap(nPairs))
	for i := uint32(0); i < nPairs; i++ {
		pc, err := readPairRecord(br)
		if err != nil {
			return Snapshot{}, err
		}
		if _, dup := seenPairs[pc.Pair]; dup {
			return Snapshot{}, fmt.Errorf("%w: duplicate pair %v", ErrBadSnapshotRecord, pc.Pair)
		}
		seenPairs[pc.Pair] = struct{}{}
		s.Pairs = append(s.Pairs, pc)
	}
	// Normalize empty sections to nil (see Apply): a decoded snapshot
	// must DeepEqual the export it was encoded from.
	if len(s.Items) == 0 {
		s.Items = nil
	}
	if len(s.Pairs) == 0 {
		s.Pairs = nil
	}
	return s, nil
}

// EncodeDelta writes the delta wire format: the four section counts,
// then upsert records (checkpoint layouts) and delete keys.
func EncodeDelta(w io.Writer, d SnapshotDelta) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(d.UpsertItems)))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(d.UpsertPairs)))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(d.DeleteItems)))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(d.DeletePairs)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return n, err
	}
	n += 16
	var rec [pairRecordSize]byte
	for _, ic := range d.UpsertItems {
		rec[0] = uint8(ic.Tier)
		binary.LittleEndian.PutUint32(rec[1:], ic.Count)
		binary.LittleEndian.PutUint64(rec[5:], ic.Extent.Block)
		binary.LittleEndian.PutUint32(rec[13:], ic.Extent.Len)
		if _, err := bw.Write(rec[:itemRecordSize]); err != nil {
			return n, err
		}
		n += itemRecordSize
	}
	for _, pc := range d.UpsertPairs {
		rec[0] = uint8(pc.Tier)
		binary.LittleEndian.PutUint32(rec[1:], pc.Count)
		binary.LittleEndian.PutUint64(rec[5:], pc.Pair.A.Block)
		binary.LittleEndian.PutUint64(rec[13:], pc.Pair.B.Block)
		binary.LittleEndian.PutUint32(rec[21:], pc.Pair.A.Len)
		binary.LittleEndian.PutUint32(rec[25:], pc.Pair.B.Len)
		if _, err := bw.Write(rec[:pairRecordSize]); err != nil {
			return n, err
		}
		n += pairRecordSize
	}
	for _, e := range d.DeleteItems {
		binary.LittleEndian.PutUint64(rec[0:], e.Block)
		binary.LittleEndian.PutUint32(rec[8:], e.Len)
		if _, err := bw.Write(rec[:12]); err != nil {
			return n, err
		}
		n += 12
	}
	for _, p := range d.DeletePairs {
		binary.LittleEndian.PutUint64(rec[0:], p.A.Block)
		binary.LittleEndian.PutUint64(rec[8:], p.B.Block)
		binary.LittleEndian.PutUint32(rec[16:], p.A.Len)
		binary.LittleEndian.PutUint32(rec[20:], p.B.Len)
		if _, err := bw.Write(rec[:24]); err != nil {
			return n, err
		}
		n += 24
	}
	return n, bw.Flush()
}

// DecodeDelta reads a delta written by EncodeDelta under the same
// validation discipline as DecodeSnapshotRecords; additionally a key
// may appear at most once across its upsert and delete sections (a key
// both upserted and deleted is a contradiction, not a delta).
func DecodeDelta(r io.Reader) (SnapshotDelta, error) {
	br := asByteReader(r)
	upItems, upPairs, err := readCountPair(br, "delta upserts")
	if err != nil {
		return SnapshotDelta{}, err
	}
	delItems, delPairs, err := readCountPair(br, "delta deletes")
	if err != nil {
		return SnapshotDelta{}, err
	}
	var d SnapshotDelta
	items := make(map[blktrace.Extent]struct{}, preallocCap(upItems+delItems))
	pairs := make(map[blktrace.Pair]struct{}, preallocCap(upPairs+delPairs))
	d.UpsertItems = make([]ItemCount, 0, preallocCap(upItems))
	for i := uint32(0); i < upItems; i++ {
		ic, err := readItemRecord(br)
		if err != nil {
			return SnapshotDelta{}, err
		}
		if _, dup := items[ic.Extent]; dup {
			return SnapshotDelta{}, fmt.Errorf("%w: duplicate item %v", ErrBadDelta, ic.Extent)
		}
		items[ic.Extent] = struct{}{}
		d.UpsertItems = append(d.UpsertItems, ic)
	}
	d.UpsertPairs = make([]PairCount, 0, preallocCap(upPairs))
	for i := uint32(0); i < upPairs; i++ {
		pc, err := readPairRecord(br)
		if err != nil {
			return SnapshotDelta{}, err
		}
		if _, dup := pairs[pc.Pair]; dup {
			return SnapshotDelta{}, fmt.Errorf("%w: duplicate pair %v", ErrBadDelta, pc.Pair)
		}
		pairs[pc.Pair] = struct{}{}
		d.UpsertPairs = append(d.UpsertPairs, pc)
	}
	d.DeleteItems = make([]blktrace.Extent, 0, preallocCap(delItems))
	for i := uint32(0); i < delItems; i++ {
		var buf [12]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return SnapshotDelta{}, fmt.Errorf("%w: truncated item delete: %v", ErrBadDelta, err)
		}
		e := blktrace.Extent{Block: binary.LittleEndian.Uint64(buf[0:]), Len: binary.LittleEndian.Uint32(buf[8:])}
		if e.Len == 0 {
			return SnapshotDelta{}, fmt.Errorf("%w: zero-length item delete", ErrBadDelta)
		}
		if _, dup := items[e]; dup {
			return SnapshotDelta{}, fmt.Errorf("%w: item %v both upserted and deleted", ErrBadDelta, e)
		}
		items[e] = struct{}{}
		d.DeleteItems = append(d.DeleteItems, e)
	}
	d.DeletePairs = make([]blktrace.Pair, 0, preallocCap(delPairs))
	for i := uint32(0); i < delPairs; i++ {
		var buf [24]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return SnapshotDelta{}, fmt.Errorf("%w: truncated pair delete: %v", ErrBadDelta, err)
		}
		p := blktrace.Pair{
			A: blktrace.Extent{Block: binary.LittleEndian.Uint64(buf[0:]), Len: binary.LittleEndian.Uint32(buf[16:])},
			B: blktrace.Extent{Block: binary.LittleEndian.Uint64(buf[8:]), Len: binary.LittleEndian.Uint32(buf[20:])},
		}
		if p.A.Len == 0 || p.B.Len == 0 {
			return SnapshotDelta{}, fmt.Errorf("%w: zero-length extent in pair delete", ErrBadDelta)
		}
		if p.B.Less(p.A) {
			return SnapshotDelta{}, fmt.Errorf("%w: pair delete %v not canonical", ErrBadDelta, p)
		}
		if _, dup := pairs[p]; dup {
			return SnapshotDelta{}, fmt.Errorf("%w: pair %v both upserted and deleted", ErrBadDelta, p)
		}
		pairs[p] = struct{}{}
		d.DeletePairs = append(d.DeletePairs, p)
	}
	return d, nil
}

// asByteReader wraps r for buffered record reads without double
// buffering an existing bufio.Reader.
func asByteReader(r io.Reader) *bufio.Reader {
	if br, ok := r.(*bufio.Reader); ok {
		return br
	}
	return bufio.NewReader(r)
}

// readCountPair reads two u32 counts and bounds both.
func readCountPair(br *bufio.Reader, what string) (uint32, uint32, error) {
	var buf [8]byte
	if _, err := io.ReadFull(br, buf[:]); err != nil {
		return 0, 0, fmt.Errorf("%w: truncated %s counts: %v", ErrBadDelta, what, err)
	}
	a := binary.LittleEndian.Uint32(buf[0:])
	b := binary.LittleEndian.Uint32(buf[4:])
	if a > maxDeltaRecords || b > maxDeltaRecords {
		return 0, 0, fmt.Errorf("%w: %s counts %d/%d exceed %d", ErrBadDelta, what, a, b, maxDeltaRecords)
	}
	return a, b, nil
}

func readItemRecord(br *bufio.Reader) (ItemCount, error) {
	var buf [itemRecordSize]byte
	if _, err := io.ReadFull(br, buf[:]); err != nil {
		return ItemCount{}, fmt.Errorf("%w: truncated item record: %v", ErrBadSnapshotRecord, err)
	}
	ic := ItemCount{
		Tier:   Tier(buf[0]),
		Count:  binary.LittleEndian.Uint32(buf[1:]),
		Extent: blktrace.Extent{Block: binary.LittleEndian.Uint64(buf[5:]), Len: binary.LittleEndian.Uint32(buf[13:])},
	}
	if ic.Tier != Tier1 && ic.Tier != Tier2 {
		return ItemCount{}, fmt.Errorf("%w: item %v has invalid tier %d", ErrBadSnapshotRecord, ic.Extent, ic.Tier)
	}
	if ic.Count == 0 {
		return ItemCount{}, fmt.Errorf("%w: item %v has zero count", ErrBadSnapshotRecord, ic.Extent)
	}
	if ic.Extent.Len == 0 {
		return ItemCount{}, fmt.Errorf("%w: item record has zero length", ErrBadSnapshotRecord)
	}
	return ic, nil
}

func readPairRecord(br *bufio.Reader) (PairCount, error) {
	var buf [pairRecordSize]byte
	if _, err := io.ReadFull(br, buf[:]); err != nil {
		return PairCount{}, fmt.Errorf("%w: truncated pair record: %v", ErrBadSnapshotRecord, err)
	}
	pc := PairCount{
		Tier:  Tier(buf[0]),
		Count: binary.LittleEndian.Uint32(buf[1:]),
		Pair: blktrace.Pair{
			A: blktrace.Extent{Block: binary.LittleEndian.Uint64(buf[5:]), Len: binary.LittleEndian.Uint32(buf[21:])},
			B: blktrace.Extent{Block: binary.LittleEndian.Uint64(buf[13:]), Len: binary.LittleEndian.Uint32(buf[25:])},
		},
	}
	if pc.Tier != Tier1 && pc.Tier != Tier2 {
		return PairCount{}, fmt.Errorf("%w: pair %v has invalid tier %d", ErrBadSnapshotRecord, pc.Pair, pc.Tier)
	}
	if pc.Count == 0 {
		return PairCount{}, fmt.Errorf("%w: pair %v has zero count", ErrBadSnapshotRecord, pc.Pair)
	}
	if pc.Pair.A.Len == 0 || pc.Pair.B.Len == 0 {
		return PairCount{}, fmt.Errorf("%w: pair record has zero-length extent", ErrBadSnapshotRecord)
	}
	if pc.Pair.B.Less(pc.Pair.A) {
		return PairCount{}, fmt.Errorf("%w: pair %v not canonical", ErrBadSnapshotRecord, pc.Pair)
	}
	return pc, nil
}
