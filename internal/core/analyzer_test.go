package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"daccor/internal/blktrace"
)

func ext(block uint64, length uint32) blktrace.Extent {
	return blktrace.Extent{Block: block, Len: length}
}

func mustAnalyzer(t *testing.T, cfg Config) *Analyzer {
	t.Helper()
	a, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatalf("NewAnalyzer: %v", err)
	}
	return a
}

func TestNewAnalyzerValidation(t *testing.T) {
	if _, err := NewAnalyzer(Config{ItemCapacity: 0, PairCapacity: 1}); err == nil {
		t.Error("want error for zero ItemCapacity")
	}
	if _, err := NewAnalyzer(Config{ItemCapacity: 1, PairCapacity: 0}); err == nil {
		t.Error("want error for zero PairCapacity")
	}
}

func TestProcessCountsItemsAndPairs(t *testing.T) {
	a := mustAnalyzer(t, Config{ItemCapacity: 16, PairCapacity: 16})
	tx := []blktrace.Extent{ext(100, 4), ext(200, 3), ext(300, 1)}
	a.Process(tx)
	st := a.Stats()
	if st.Transactions != 1 || st.Extents != 3 || st.PairTouches != 3 {
		t.Errorf("stats = %+v", st)
	}
	if a.Items().Len() != 3 {
		t.Errorf("item table len = %d, want 3", a.Items().Len())
	}
	if a.Pairs().Len() != 3 {
		t.Errorf("pair table len = %d, want 3", a.Pairs().Len())
	}
	// The same transaction again promotes everything (threshold 2).
	a.Process(tx)
	st = a.Stats()
	if st.ItemPromotions != 3 || st.PairPromotions != 3 {
		t.Errorf("promotions = %+v", st)
	}
	p := blktrace.MakePair(ext(100, 4), ext(200, 3))
	if a.Pairs().TierOf(p) != Tier2 {
		t.Error("repeated pair should be in T2")
	}
}

func TestPairCountQuadratic(t *testing.T) {
	a := mustAnalyzer(t, Config{ItemCapacity: 64, PairCapacity: 64})
	tx := make([]blktrace.Extent, 8)
	for i := range tx {
		tx[i] = ext(uint64(i*100), 1)
	}
	a.Process(tx)
	if got, want := a.Stats().PairTouches, uint64(8*7/2); got != want {
		t.Errorf("PairTouches = %d, want %d (8 choose 2)", got, want)
	}
}

func TestSingleExtentTransactionNoPairs(t *testing.T) {
	a := mustAnalyzer(t, Config{ItemCapacity: 4, PairCapacity: 4})
	a.Process([]blktrace.Extent{ext(5, 1)})
	if a.Pairs().Len() != 0 {
		t.Error("single-extent transaction must create no pairs")
	}
	a.Process(nil) // empty transaction is harmless
	if a.Stats().Transactions != 2 {
		t.Error("empty transaction should still be counted")
	}
}

func TestItemEvictionDemotesPairs(t *testing.T) {
	// Item T1 holds 4 extents; pair T1 holds 8 pairs. Build two pairs
	// so that (x,y) is the pair-T1 *front* (most recent), then churn
	// the item table with single-extent transactions (which create no
	// pairs) until x and y are evicted. Their eviction must demote
	// (x,y) behind the older (p,q).
	a := mustAnalyzer(t, Config{ItemCapacity: 4, PairCapacity: 8, PromoteThreshold: 99})
	p, q := ext(1, 1), ext(2, 1)
	x, y := ext(3, 1), ext(4, 1)
	a.Process([]blktrace.Extent{p, q}) // pair (p,q), older
	a.Process([]blktrace.Extent{x, y}) // pair (x,y), newer (pair-T1 front)
	// Item T1 (cap 4) is now [y,x,q,p] MRU→LRU. Four single-extent
	// transactions evict p, q, x, and y in turn.
	for i := 0; i < 4; i++ {
		a.Process([]blktrace.Extent{ext(uint64(100+i), 1)})
	}
	if a.Stats().PairDemotions == 0 {
		t.Fatal("item evictions should demote surviving pairs")
	}
	pXY := blktrace.MakePair(x, y)
	pPQ := blktrace.MakePair(p, q)
	// Without demotion the MRU→LRU order would be [(x,y), (p,q)];
	// the demotions must have pushed (x,y) behind (p,q), making it the
	// next eviction victim.
	entries := a.Pairs().Entries(0)
	if len(entries) != 2 {
		t.Fatalf("pair entries = %d, want 2", len(entries))
	}
	if entries[0].Key != pPQ || entries[1].Key != pXY {
		t.Errorf("order after demotion = [%v, %v], want [(p,q), (x,y)]",
			entries[0].Key, entries[1].Key)
	}
}

func TestPairEvictionCleansIndex(t *testing.T) {
	a := mustAnalyzer(t, Config{ItemCapacity: 64, PairCapacity: 1})
	// Pair T1 holds one pair; each new pair evicts the previous.
	for i := 0; i < 50; i++ {
		a.Process([]blktrace.Extent{ext(uint64(2*i), 1), ext(uint64(2*i+1), 1)})
	}
	if a.pairHeads.Len() > 2*a.Pairs().Capacity() {
		t.Errorf("pairHeads leaked: %d entries for capacity %d",
			a.pairHeads.Len(), a.Pairs().Capacity())
	}
	if err := a.checkMembershipInvariants(); err != nil {
		t.Error(err)
	}
}

func TestPairsByExtentConsistentQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a, err := NewAnalyzer(Config{
			ItemCapacity: 1 + rng.Intn(6),
			PairCapacity: 1 + rng.Intn(6),
		})
		if err != nil {
			return false
		}
		for i := 0; i < int(n); i++ {
			txLen := 1 + rng.Intn(5)
			seen := map[blktrace.Extent]struct{}{}
			var tx []blktrace.Extent
			for len(tx) < txLen {
				e := ext(uint64(rng.Intn(10)), uint32(1+rng.Intn(3)))
				if _, dup := seen[e]; dup {
					continue
				}
				seen[e] = struct{}{}
				tx = append(tx, e)
			}
			a.Process(tx)
		}
		// The membership lists must exactly mirror live pair entries.
		live := map[blktrace.Pair]struct{}{}
		for _, e := range a.Pairs().Entries(0) {
			live[e.Key] = struct{}{}
		}
		indexed := map[blktrace.Pair]struct{}{}
		a.pairHeads.Range(func(e blktrace.Extent, h int32) bool {
			for s := h; s != nilSlot; s = a.memberNext(s, e) {
				indexed[a.pairs.keyAt(s)] = struct{}{}
			}
			return true
		})
		if len(live) != len(indexed) {
			return false
		}
		for p := range live {
			if _, ok := indexed[p]; !ok {
				return false
			}
		}
		return a.checkMembershipInvariants() == nil &&
			a.Items().CheckInvariants() == nil && a.Pairs().CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMemoryBytesAccounting(t *testing.T) {
	// Paper: C = 16K gives 1.44 MB total (88C bytes).
	a := mustAnalyzer(t, Config{ItemCapacity: 16 * 1024, PairCapacity: 16 * 1024})
	if got, want := a.MemoryBytes(), 88*16*1024; got != want {
		t.Errorf("MemoryBytes = %d, want %d", got, want)
	}
}

func TestTierRatioSplit(t *testing.T) {
	a := mustAnalyzer(t, Config{ItemCapacity: 8, PairCapacity: 8, TierRatio: 0.75})
	// 2C = 16 entries, T1 should get 12.
	if got := a.Items().Capacity(); got != 16 {
		t.Errorf("items capacity = %d, want 16", got)
	}
	for i := 0; i < 13; i++ { // 13 distinct singles: T1 cap 12 forces 1 eviction
		a.Process([]blktrace.Extent{ext(uint64(i), 1)})
	}
	if got := a.Items().LenT1(); got != 12 {
		t.Errorf("T1 len = %d, want 12", got)
	}
	for _, ratio := range []float64{-1, 0, 1, 2} {
		t1, t2 := splitTiers(10, ratio)
		if t1 != 10 || t2 != 10 {
			t.Errorf("splitTiers(10, %v) = %d,%d; want equal split", ratio, t1, t2)
		}
	}
	// Extreme ratios are clamped to leave at least one slot per tier.
	if t1, t2 := splitTiers(10, 0.0001); t1 != 1 || t2 != 19 {
		t.Errorf("splitTiers clamp low = %d,%d", t1, t2)
	}
	if t1, t2 := splitTiers(10, 0.9999); t1 != 19 || t2 != 1 {
		t.Errorf("splitTiers clamp high = %d,%d", t1, t2)
	}
}

func TestSnapshotOrderingAndFilters(t *testing.T) {
	a := mustAnalyzer(t, Config{ItemCapacity: 32, PairCapacity: 32})
	hot := []blktrace.Extent{ext(100, 4), ext(200, 3)}
	warm := []blktrace.Extent{ext(300, 2), ext(400, 1)}
	for i := 0; i < 5; i++ {
		a.Process(hot)
	}
	for i := 0; i < 2; i++ {
		a.Process(warm)
	}
	a.Process([]blktrace.Extent{ext(500, 1), ext(600, 1)}) // once

	snap := a.Snapshot(0)
	if len(snap.Pairs) != 3 {
		t.Fatalf("snapshot pairs = %d, want 3", len(snap.Pairs))
	}
	if snap.Pairs[0].Count != 5 || snap.Pairs[1].Count != 2 || snap.Pairs[2].Count != 1 {
		t.Errorf("descending order violated: %+v", snap.Pairs)
	}
	if got := a.Snapshot(2); len(got.Pairs) != 2 {
		t.Errorf("Snapshot(2) pairs = %d, want 2", len(got.Pairs))
	}
	if got := a.Snapshot(5); len(got.Pairs) != 1 || got.Pairs[0].Pair != blktrace.MakePair(hot[0], hot[1]) {
		t.Errorf("Snapshot(5) = %+v", got.Pairs)
	}

	set := snap.PairSet()
	if len(set) != 3 {
		t.Errorf("PairSet len = %d", len(set))
	}
	counts := snap.PairCounts()
	if counts[blktrace.MakePair(hot[0], hot[1])] != 5 {
		t.Error("PairCounts wrong for hot pair")
	}
	if top := snap.TopPairs(2); len(top) != 2 || top[0].Count != 5 {
		t.Errorf("TopPairs(2) = %+v", top)
	}
	if top := snap.TopPairs(99); len(top) != 3 {
		t.Errorf("TopPairs(99) len = %d", len(top))
	}
	if len(snap.Items) == 0 || snap.Items[0].Count < snap.Items[len(snap.Items)-1].Count {
		t.Error("items not sorted descending")
	}
}

func TestSnapshotDeterministicTieBreak(t *testing.T) {
	a := mustAnalyzer(t, Config{ItemCapacity: 32, PairCapacity: 32})
	a.Process([]blktrace.Extent{ext(9, 1), ext(1, 1)})
	a.Process([]blktrace.Extent{ext(5, 1), ext(3, 1)})
	s1 := a.Snapshot(0)
	s2 := a.Snapshot(0)
	for i := range s1.Pairs {
		if s1.Pairs[i] != s2.Pairs[i] {
			t.Fatal("snapshot not deterministic")
		}
	}
	if !s1.Pairs[0].Pair.A.Less(s1.Pairs[1].Pair.A) {
		t.Errorf("tie break not by key order: %+v", s1.Pairs)
	}
}

// TestFrequentPairSurvivesNoise is the core behavioural claim: a pair
// recurring among a stream of one-off noise pairs must end in T2 and
// survive, while the noise churns through T1.
func TestFrequentPairSurvivesNoise(t *testing.T) {
	a := mustAnalyzer(t, Config{ItemCapacity: 32, PairCapacity: 32})
	hot := []blktrace.Extent{ext(7777, 4), ext(9999, 2)}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		if i%5 == 0 {
			a.Process(hot)
		} else {
			a.Process([]blktrace.Extent{
				ext(uint64(rng.Intn(1_000_000)), 1),
				ext(uint64(rng.Intn(1_000_000)), 1),
			})
		}
	}
	p := blktrace.MakePair(hot[0], hot[1])
	if a.Pairs().TierOf(p) != Tier2 {
		t.Fatalf("hot pair tier = %v, want T2", a.Pairs().TierOf(p))
	}
	c, _ := a.Pairs().Count(p)
	if c < 90 { // ~100 sightings
		t.Errorf("hot pair count = %d, want ~100", c)
	}
}
