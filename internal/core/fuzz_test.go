package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"testing"

	"daccor/internal/blktrace"
)

// FuzzLoadAnalyzer hardens snapshot restoration against arbitrary
// bytes: it must never panic, and any state it accepts must satisfy
// the table invariants and survive a save/load round trip.
func FuzzLoadAnalyzer(f *testing.F) {
	a, err := NewAnalyzer(Config{ItemCapacity: 4, PairCapacity: 4})
	if err != nil {
		f.Fatal(err)
	}
	a.Process([]blktrace.Extent{{Block: 1, Len: 1}, {Block: 2, Len: 2}})
	a.Process([]blktrace.Extent{{Block: 1, Len: 1}, {Block: 2, Len: 2}})
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("DSYN"))
	f.Add(bytes.Repeat([]byte{0xFF}, 128))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := LoadAnalyzer(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := got.Items().CheckInvariants(); err != nil {
			t.Fatalf("accepted snapshot violates item invariants: %v", err)
		}
		if err := got.Pairs().CheckInvariants(); err != nil {
			t.Fatalf("accepted snapshot violates pair invariants: %v", err)
		}
		if err := got.CheckMembershipInvariants(); err != nil {
			t.Fatalf("accepted snapshot violates membership invariants: %v", err)
		}
		var out bytes.Buffer
		if _, err := got.WriteTo(&out); err != nil {
			t.Fatalf("accepted snapshot failed to re-save: %v", err)
		}
		if _, err := LoadAnalyzer(&out); err != nil {
			t.Fatalf("re-saved snapshot failed to load: %v", err)
		}
	})
}

// FuzzReadSnapshot targets the snapshot decoder's error discipline:
// arbitrary input must either load cleanly or fail with one of the
// typed ErrBadSnapshot* sentinels (or a located truncation wrapping
// io.EOF/ErrUnexpectedEOF) — never a panic, never an unclassified
// error, and never an allocation sized by a hostile header field.
func FuzzReadSnapshot(f *testing.F) {
	a, err := NewAnalyzer(Config{ItemCapacity: 4, PairCapacity: 4})
	if err != nil {
		f.Fatal(err)
	}
	a.Process([]blktrace.Extent{{Block: 1, Len: 1}, {Block: 2, Len: 2}})
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	// Seed the hostile-header shapes: huge capacities, poisoned ratio,
	// inflated record counts.
	for _, m := range []struct {
		off int
		v   uint64
	}{
		{6, 1 << 40},                          // itemCap
		{14, 1 << 63},                         // pairCap
		{26, math.Float64bits(math.NaN())},    // ratioBits
		{26, math.Float64bits(math.Inf(-1))},  // ratioBits
		{len(valid) - 4, 0xFFFFFFFF_FFFFFFFF}, // clobber the tail
	} {
		mut := bytes.Clone(valid)
		if m.off+8 <= len(mut) {
			binary.LittleEndian.PutUint64(mut[m.off:], m.v)
		}
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := LoadAnalyzer(bytes.NewReader(data))
		if err != nil {
			switch {
			case errors.Is(err, ErrBadSnapshotMagic),
				errors.Is(err, ErrBadSnapshotVersion),
				errors.Is(err, ErrBadSnapshotHeader),
				errors.Is(err, ErrBadSnapshotRecord):
			case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF):
			default:
				t.Fatalf("unclassified load error: %v", err)
			}
			return
		}
		if c := got.Config(); c.ItemCapacity > MaxSnapshotCapacity || c.PairCapacity > MaxSnapshotCapacity {
			t.Fatalf("accepted snapshot with out-of-bounds capacities: %+v", c)
		}
		if err := got.Items().CheckInvariants(); err != nil {
			t.Fatalf("accepted snapshot violates item invariants: %v", err)
		}
		if err := got.Pairs().CheckInvariants(); err != nil {
			t.Fatalf("accepted snapshot violates pair invariants: %v", err)
		}
	})
}

// FuzzTableOps drives an arbitrary operation stream (touch, demote,
// remove) against a small arena-backed table, checking the structural
// and free-list invariants — no double-free, no lost slots, index and
// lists consistent — after every operation.
func FuzzTableOps(f *testing.F) {
	f.Add([]byte{3, 2, 0, 0, 1, 0, 2, 1, 3, 0, 5})
	f.Add([]byte{1, 1, 2})
	f.Add(bytes.Repeat([]byte{2, 7}, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		cfg := TableConfig{
			Capacity1:        1 + int(data[0]%8),
			Capacity2:        1 + int(data[1]%8),
			PromoteThreshold: 2 + uint32(data[2]%3),
		}
		tbl, err := NewTable[uint64](cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 3; i+1 < len(data); i += 2 {
			k := uint64(data[i+1] % 32)
			switch data[i] % 4 {
			case 0, 1:
				tbl.Touch(k)
			case 2:
				tbl.Demote(k)
			case 3:
				tbl.Remove(k)
			}
			if err := tbl.checkInvariants(); err != nil {
				t.Fatalf("after op %d: %v", i, err)
			}
		}
	})
}

// FuzzOpenAddrIndex pins the backward-shift deletion discipline of
// the open-addressing machinery against arbitrary operation streams,
// run differentially against a builtin map. The load-bearing property
// is tombstone-freedom: after any delete, no occupied slot's probe
// path from its home slot may cross an empty slot (a gap would make
// lookups lose reachable keys), and every live key must stay findable
// at its recorded value. checkInvariants asserts exactly that after
// every single operation.
func FuzzOpenAddrIndex(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 2, 1, 0, 3, 2, 2, 1, 3})
	f.Add(bytes.Repeat([]byte{0, 5, 2, 5}, 32)) // set/delete churn on one key
	f.Add(bytes.Repeat([]byte{1, 7, 2, 8}, 48)) // interleaved insert/delete
	f.Fuzz(func(t *testing.T, data []byte) {
		m := newOAMap[uint64](0)
		shadow := map[uint64]int32{}
		for i := 0; i+1 < len(data); i += 2 {
			// A 48-key space over a table that starts at minimum size
			// keeps the load factor high and the collision runs long, so
			// deletes constantly exercise the backward shift (and inserts
			// the grow/rehash).
			k := uint64(data[i+1]) % 48
			switch data[i] % 4 {
			case 0, 1: // set / overwrite
				v := int32(data[i+1]%127) + 1
				m.Set(k, v)
				shadow[k] = v
			case 2: // delete
				_, want := shadow[k]
				if got := m.Delete(k); got != want {
					t.Fatalf("op %d: Delete(%d) = %v, shadow %v", i, k, got, want)
				}
				delete(shadow, k)
			case 3: // lookup
				got, ok := m.Get(k)
				want, wok := shadow[k]
				if ok != wok || (ok && got != want) {
					t.Fatalf("op %d: Get(%d) = (%d,%v), shadow (%d,%v)", i, k, got, ok, want, wok)
				}
			}
			if m.Len() != len(shadow) {
				t.Fatalf("op %d: Len %d, shadow %d", i, m.Len(), len(shadow))
			}
			if err := m.checkInvariants(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
		for k, v := range shadow {
			if got, ok := m.Get(k); !ok || got != v {
				t.Fatalf("final: Get(%d) = (%d,%v), shadow %d", k, got, ok, v)
			}
		}
	})
}

// FuzzAnalyzerMembership drives transaction streams through a small
// analyzer and checks that the intrusive pair-membership lists stay an
// exact mirror of the live correlation table.
func FuzzAnalyzerMembership(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 0, 5, 6})
	f.Add(bytes.Repeat([]byte{9, 8, 7, 0}, 16))
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := NewAnalyzer(Config{ItemCapacity: 3, PairCapacity: 3})
		if err != nil {
			t.Fatal(err)
		}
		var tx []blktrace.Extent
		seen := map[blktrace.Extent]bool{}
		flush := func() {
			a.Process(tx)
			tx = tx[:0]
			for e := range seen {
				delete(seen, e)
			}
			if err := a.CheckMembershipInvariants(); err != nil {
				t.Fatal(err)
			}
		}
		for _, b := range data {
			if b == 0 || len(tx) >= 6 {
				flush()
				continue
			}
			e := blktrace.Extent{Block: uint64(b % 16), Len: 1 + uint32(b%3)}
			if !seen[e] { // the monitor guarantees deduplicated extents
				seen[e] = true
				tx = append(tx, e)
			}
		}
		flush()
		if err := a.Items().CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if err := a.Pairs().CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}
