package core

import (
	"bytes"
	"testing"

	"daccor/internal/blktrace"
)

// FuzzLoadAnalyzer hardens snapshot restoration against arbitrary
// bytes: it must never panic, and any state it accepts must satisfy
// the table invariants and survive a save/load round trip.
func FuzzLoadAnalyzer(f *testing.F) {
	a, err := NewAnalyzer(Config{ItemCapacity: 4, PairCapacity: 4})
	if err != nil {
		f.Fatal(err)
	}
	a.Process([]blktrace.Extent{{Block: 1, Len: 1}, {Block: 2, Len: 2}})
	a.Process([]blktrace.Extent{{Block: 1, Len: 1}, {Block: 2, Len: 2}})
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("DSYN"))
	f.Add(bytes.Repeat([]byte{0xFF}, 128))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := LoadAnalyzer(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := got.Items().CheckInvariants(); err != nil {
			t.Fatalf("accepted snapshot violates item invariants: %v", err)
		}
		if err := got.Pairs().CheckInvariants(); err != nil {
			t.Fatalf("accepted snapshot violates pair invariants: %v", err)
		}
		var out bytes.Buffer
		if _, err := got.WriteTo(&out); err != nil {
			t.Fatalf("accepted snapshot failed to re-save: %v", err)
		}
		if _, err := LoadAnalyzer(&out); err != nil {
			t.Fatalf("re-saved snapshot failed to load: %v", err)
		}
	})
}
