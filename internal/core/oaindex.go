package core

import (
	"fmt"
	"hash/maphash"
)

// Open-addressing key indexes for the synopsis hot path.
//
// The two-tier tables and the analyzer's pair-membership anchors used
// to be Go maps (Table.index map[K]int32, Analyzer.pairHeads
// map[Extent]int32). A general-purpose map is the wrong shape for a
// bounded synopsis: the key set never exceeds the arena capacity, every
// value is a small arena slot index, and the per-touch cost is
// dominated by hash-bucket indirection the table does not need. Like
// the hash-indexed bounded synopses of the Space-Saving and CMiner
// lines, the index here is a flat power-of-two slot array sized with
// the entry slab:
//
//   - linear probing, load factor <= 3/4, so a probe sequence is one or
//     two cache lines of 8-byte slots;
//   - a per-table maphash seed, so hostile key patterns cannot line up
//     probe chains across restarts;
//   - each slot caches the reduced 32-bit key hash, so a probe rejects
//     a non-matching slot without dereferencing the entry arena;
//   - tombstone-free deletion by backward shift: removing an entry
//     pulls every displaced successor one step toward its home slot,
//     keeping the invariant that no occupied slot is separated from its
//     home by an empty slot. Lookups therefore never scan tombstone
//     chains, and the load factor counts only live entries.
//
// Growth doubles the slot array and reinserts from the cached 32-bit
// hashes (never touching the keys), and only ever happens while the
// table is still filling toward its configured capacity — the same
// warm-up-only allocation regime as the entry arena.

// idxSlot is one open-addressing slot: the reduced key hash and the
// arena slot holding the key (nilSlot when empty). Eight bytes, so a
// 64-byte cache line holds eight probe steps.
type idxSlot struct {
	hash uint32
	slot int32
}

// minIndexSlots is the smallest slot array (power of two).
const minIndexSlots = 8

// IndexStats reports the open-addressing index's shape and probe
// behaviour — the observability the engine mirrors into /v1/metrics so
// an operator can see index pressure (mean probe length creeping up
// means the load factor or hash quality needs attention).
type IndexStats struct {
	// Lookups counts key lookups (hits and misses).
	Lookups uint64
	// Probes counts probe steps beyond the home slot, summed over all
	// lookups; Probes/Lookups is the mean displacement.
	Probes uint64
	// MaxProbe is the longest probe sequence any single lookup walked.
	MaxProbe uint32
	// Grows counts slot-array doublings (warm-up only).
	Grows uint64
	// Slots and Used are the slot-array size and live occupancy.
	Slots, Used int
}

// tableIndex is the open-addressing key→arena-slot index embedded in
// Table. Keys are not stored here — they live in the entry arena; a
// probe compares the cached 32-bit hash first and touches the arena
// only on a hash match.
type tableIndex struct {
	seed   maphash.Seed
	slots  []idxSlot
	mask   uint32
	used   int
	growAt int

	lookups  uint64
	probes   uint64
	maxProbe uint32
	grows    uint64
}

// nextPow2 returns the smallest power of two >= n (and >= minIndexSlots).
func nextPow2(n int) int {
	s := minIndexSlots
	for s < n {
		s <<= 1
	}
	return s
}

// indexInit sizes the slot array for hint live entries at a load
// factor of 3/4, so a table that stays within its pre-allocation hint
// never rehashes after construction.
func (ix *tableIndex) indexInit(hint int) {
	n := nextPow2(hint + hint/3 + 1)
	ix.seed = maphash.MakeSeed()
	ix.slots = make([]idxSlot, n)
	for i := range ix.slots {
		ix.slots[i].slot = nilSlot
	}
	ix.mask = uint32(n - 1)
	ix.growAt = n / 4 * 3
}

// hashOf reduces a key to the 32 bits the index stores and probes by.
// maphash.Comparable is the runtime's own memhash under a per-table
// seed: allocation-free for pointer-free keys (Extent, Pair) and
// uniform enough that linear probing at load 3/4 stays short.
func hashOf[K comparable](seed maphash.Seed, k K) uint32 {
	return uint32(maphash.Comparable(seed, k))
}

// indexLookup returns the arena slot holding k, or nilSlot. The caller
// supplies the reduced hash so miss-then-insert paths hash once.
func (t *Table[K]) indexLookup(h uint32, k K) int32 {
	ix := &t.idx
	ix.lookups++
	mask := ix.mask
	i := h & mask
	var steps uint32
	for {
		s := ix.slots[i]
		if s.slot == nilSlot {
			break
		}
		if s.hash == h && t.arena[s.slot].key == k {
			ix.probes += uint64(steps)
			if steps > ix.maxProbe {
				ix.maxProbe = steps
			}
			return s.slot
		}
		i = (i + 1) & mask
		steps++
	}
	ix.probes += uint64(steps)
	if steps > ix.maxProbe {
		ix.maxProbe = steps
	}
	return nilSlot
}

// indexInsert records k (with reduced hash h) as living in arena slot
// slot. The key must not already be present.
func (t *Table[K]) indexInsert(h uint32, slot int32) {
	ix := &t.idx
	if ix.used >= ix.growAt {
		t.indexGrow()
	}
	mask := ix.mask
	i := h & mask
	for ix.slots[i].slot != nilSlot {
		i = (i + 1) & mask
	}
	ix.slots[i] = idxSlot{hash: h, slot: slot}
	ix.used++
}

// indexDelete removes k (with reduced hash h) from the index,
// backward-shifting displaced successors so no tombstone is left
// behind. The key must be present.
func (t *Table[K]) indexDelete(h uint32, k K) {
	ix := &t.idx
	mask := ix.mask
	i := h & mask
	for {
		s := ix.slots[i]
		if s.hash == h && s.slot != nilSlot && t.arena[s.slot].key == k {
			break
		}
		i = (i + 1) & mask
	}
	backwardShift(ix.slots, mask, i)
	ix.used--
}

// backwardShift empties slot i and pulls every displaced successor of
// the probe chain one hole toward its home slot, preserving the
// no-gap-in-probe-path invariant that makes tombstones unnecessary. An
// entry at j may fill the hole at i iff its home slot is no further
// from i than from j in cyclic probe order — i.e. i lies on the
// entry's own probe path.
func backwardShift(slots []idxSlot, mask, i uint32) {
	for {
		slots[i].slot = nilSlot
		j := i
		for {
			j = (j + 1) & mask
			s := slots[j]
			if s.slot == nilSlot {
				return
			}
			if ((j - s.hash) & mask) >= ((j - i) & mask) {
				slots[i] = s
				i = j
				break
			}
		}
	}
}

// indexGrow doubles the slot array and reinserts every entry from its
// cached hash. Only reachable while the table is still filling toward
// a capacity larger than the pre-allocation hint.
func (t *Table[K]) indexGrow() {
	ix := &t.idx
	old := ix.slots
	n := len(old) * 2
	ix.slots = make([]idxSlot, n)
	for i := range ix.slots {
		ix.slots[i].slot = nilSlot
	}
	ix.mask = uint32(n - 1)
	ix.growAt = n / 4 * 3
	ix.grows++
	for _, s := range old {
		if s.slot == nilSlot {
			continue
		}
		i := s.hash & ix.mask
		for ix.slots[i].slot != nilSlot {
			i = (i + 1) & ix.mask
		}
		ix.slots[i] = s
	}
}

// IndexStats reports the index's probe counters and occupancy.
func (t *Table[K]) IndexStats() IndexStats {
	ix := &t.idx
	return IndexStats{
		Lookups:  ix.lookups,
		Probes:   ix.probes,
		MaxProbe: ix.maxProbe,
		Grows:    ix.grows,
		Slots:    len(ix.slots),
		Used:     ix.used,
	}
}

// checkIndexInvariants verifies the open-addressing invariants the
// backward-shift deletion must preserve:
//
//   - occupancy accounting matches the live slot count;
//   - every occupied slot holds an in-range, live arena slot whose
//     key re-hashes to the cached 32-bit hash;
//   - no occupied slot is separated from its home slot by an empty
//     slot (the tombstone-free probe-path invariant — a violation
//     makes keys unreachable);
//   - every live entry is found by lookup at its recorded slot.
//
// O(slots * probe length); used by tests and fuzz targets via the
// export_test shim.
func (t *Table[K]) checkIndexInvariants() error {
	ix := &t.idx
	if got := len(ix.slots); got&(got-1) != 0 || uint32(got-1) != ix.mask {
		return fmt.Errorf("index size %d / mask %#x inconsistent", len(ix.slots), ix.mask)
	}
	occupied := 0
	for j, s := range ix.slots {
		if s.slot == nilSlot {
			continue
		}
		occupied++
		if int(s.slot) >= len(t.arena) || s.slot < 0 {
			return fmt.Errorf("index slot %d points at out-of-range arena slot %d", j, s.slot)
		}
		e := &t.arena[s.slot]
		if e.tier == TierNone {
			return fmt.Errorf("index slot %d points at free arena slot %d", j, s.slot)
		}
		if want := hashOf(ix.seed, e.key); want != s.hash {
			return fmt.Errorf("index slot %d caches hash %#x for key %v, want %#x", j, s.hash, e.key, want)
		}
		// Walk home → j: every intermediate slot must be occupied, or
		// the entry is unreachable by lookup.
		for i := s.hash & ix.mask; i != uint32(j); i = (i + 1) & ix.mask {
			if ix.slots[i].slot == nilSlot {
				return fmt.Errorf("probe path to index slot %d (key %v) crosses empty slot %d", j, e.key, i)
			}
		}
		if got := t.indexLookup(s.hash, e.key); got != s.slot {
			return fmt.Errorf("lookup(%v) = slot %d, index records %d", e.key, got, s.slot)
		}
	}
	if occupied != ix.used {
		return fmt.Errorf("index used %d, counted %d occupied slots", ix.used, occupied)
	}
	if ix.used > ix.growAt {
		return fmt.Errorf("index occupancy %d exceeds grow watermark %d", ix.used, ix.growAt)
	}
	return nil
}

// oaMap is a small open-addressing key→int32 map with the same probe
// discipline as the table index (linear probing, cached reduced hash,
// backward-shift deletion), for bounded hot-path side indexes whose
// keys are not arena-resident — the analyzer's pair-membership heads.
// Values are arena slot indexes and never nilSlot, so nilSlot doubles
// as the empty-slot marker. Not safe for concurrent use.
type oaMap[K comparable] struct {
	seed   maphash.Seed
	slots  []oaMapSlot[K]
	mask   uint32
	used   int
	growAt int
}

type oaMapSlot[K comparable] struct {
	hash uint32
	val  int32 // nilSlot when the slot is empty
	key  K
}

// newOAMap returns a map pre-sized for hint entries.
func newOAMap[K comparable](hint int) *oaMap[K] {
	m := &oaMap[K]{seed: maphash.MakeSeed()}
	m.grow(nextPow2(hint + hint/3 + 1))
	return m
}

func (m *oaMap[K]) grow(n int) {
	old := m.slots
	m.slots = make([]oaMapSlot[K], n)
	for i := range m.slots {
		m.slots[i].val = nilSlot
	}
	m.mask = uint32(n - 1)
	m.growAt = n / 4 * 3
	for i := range old {
		if old[i].val == nilSlot {
			continue
		}
		j := old[i].hash & m.mask
		for m.slots[j].val != nilSlot {
			j = (j + 1) & m.mask
		}
		m.slots[j] = old[i]
	}
}

// Len returns the number of live entries.
func (m *oaMap[K]) Len() int { return m.used }

// Get returns the value for k and whether it is present.
func (m *oaMap[K]) Get(k K) (int32, bool) {
	h := hashOf(m.seed, k)
	i := h & m.mask
	for {
		s := &m.slots[i]
		if s.val == nilSlot {
			return nilSlot, false
		}
		if s.hash == h && s.key == k {
			return s.val, true
		}
		i = (i + 1) & m.mask
	}
}

// Set inserts or updates k → v. v must not be nilSlot.
func (m *oaMap[K]) Set(k K, v int32) {
	h := hashOf(m.seed, k)
	i := h & m.mask
	for {
		s := &m.slots[i]
		if s.val == nilSlot {
			break
		}
		if s.hash == h && s.key == k {
			s.val = v
			return
		}
		i = (i + 1) & m.mask
	}
	if m.used >= m.growAt {
		m.grow(len(m.slots) * 2)
		i = h & m.mask
		for m.slots[i].val != nilSlot {
			i = (i + 1) & m.mask
		}
	}
	m.slots[i] = oaMapSlot[K]{hash: h, val: v, key: k}
	m.used++
}

// Delete removes k, reporting whether it was present. Deletion
// backward-shifts displaced successors exactly like the table index.
func (m *oaMap[K]) Delete(k K) bool {
	h := hashOf(m.seed, k)
	i := h & m.mask
	for {
		s := &m.slots[i]
		if s.val == nilSlot {
			return false
		}
		if s.hash == h && s.key == k {
			break
		}
		i = (i + 1) & m.mask
	}
	var zero K
	mask := m.mask
	for {
		m.slots[i].val = nilSlot
		m.slots[i].key = zero
		j := i
		for {
			j = (j + 1) & mask
			s := &m.slots[j]
			if s.val == nilSlot {
				m.used--
				return true
			}
			if ((j - s.hash) & mask) >= ((j - i) & mask) {
				m.slots[i] = *s
				i = j
				break
			}
		}
	}
}

// Range calls fn for every live entry until fn returns false. The
// iteration order is the slot order — deterministic for a fixed seed
// and operation sequence, but callers must not depend on it.
func (m *oaMap[K]) Range(fn func(K, int32) bool) {
	for i := range m.slots {
		if m.slots[i].val == nilSlot {
			continue
		}
		if !fn(m.slots[i].key, m.slots[i].val) {
			return
		}
	}
}

// checkInvariants verifies the oaMap's probe-path and accounting
// invariants, mirroring Table.checkIndexInvariants.
func (m *oaMap[K]) checkInvariants() error {
	occupied := 0
	for j := range m.slots {
		s := &m.slots[j]
		if s.val == nilSlot {
			continue
		}
		occupied++
		if want := hashOf(m.seed, s.key); want != s.hash {
			return fmt.Errorf("oaMap slot %d caches hash %#x for key %v, want %#x", j, s.hash, s.key, want)
		}
		for i := s.hash & m.mask; i != uint32(j); i = (i + 1) & m.mask {
			if m.slots[i].val == nilSlot {
				return fmt.Errorf("oaMap probe path to slot %d (key %v) crosses empty slot %d", j, s.key, i)
			}
		}
		if got, ok := m.Get(s.key); !ok || got != s.val {
			return fmt.Errorf("oaMap Get(%v) = (%d, %v), slot records %d", s.key, got, ok, s.val)
		}
	}
	if occupied != m.used {
		return fmt.Errorf("oaMap used %d, counted %d occupied slots", m.used, occupied)
	}
	return nil
}
