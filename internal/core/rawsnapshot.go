package core

import (
	"io"

	"daccor/internal/blktrace"
)

// RawSnapshot is an O(live entries) copy of an analyzer's state, cheap
// enough to take while the owner is holding up ingest and complete
// enough to derive every read-side product — sorted Snapshot exports,
// association rules, the binary persistence format — after the owner
// has moved on.
//
// The engine's worker-confined shards motivate the split: a query or
// checkpoint used to sort and encode the synopsis on the worker
// goroutine, stalling ingest for the whole serialization. Capture is a
// pair of slice copies in table recency order (no sorting, no
// encoding, no allocation once the buffers have grown to table size);
// everything expensive happens on the asking goroutine against the
// immutable copy.
//
// A RawSnapshot is reusable: CaptureSnapshot overwrites in place,
// retaining the buffers. It is not safe for concurrent use, and its
// derived products are only as fresh as the last capture.
type RawSnapshot struct {
	cfg   Config
	stats Stats
	// items and pairs hold both tables' entries in Entries(0) order
	// (T2 first, MRU→LRU within each tier) — the order the persistence
	// format requires, which is why WriteTo needs no re-sorting.
	items []Entry[blktrace.Extent]
	pairs []Entry[blktrace.Pair]
}

// CaptureSnapshot copies the analyzer's full state into r, reusing r's
// buffers. It costs O(live entries) with no sorting or encoding and,
// once r's buffers have grown to the table sizes, no allocation — this
// is the only part of a snapshot/checkpoint/rules read that must run
// on the analyzer's owning goroutine.
func (a *Analyzer) CaptureSnapshot(r *RawSnapshot) {
	r.cfg = a.cfg
	r.stats = a.stats
	r.items = a.items.appendEntries(r.items[:0])
	r.pairs = a.pairs.appendEntries(r.pairs[:0])
}

// appendEntries appends every entry (T2 first, each tier MRU→LRU — the
// Entries(0) order) to buf and returns the extended slice. Unlike
// Entries it allocates only when buf lacks capacity, so a reused
// buffer makes repeated captures allocation-free.
func (t *Table[K]) appendEntries(buf []Entry[K]) []Entry[K] {
	for _, l := range [...]*lruList{&t.t2, &t.t1} {
		for s := l.front; s != nilSlot; s = t.arena[s].next {
			e := &t.arena[s]
			buf = append(buf, Entry[K]{Key: e.key, Count: e.count, Tier: e.tier})
		}
	}
	return buf
}

// Config returns the captured analyzer configuration.
func (r *RawSnapshot) Config() Config { return r.cfg }

// Stats returns the captured processing counters.
func (r *RawSnapshot) Stats() Stats { return r.stats }

// Len returns the captured live entry counts (items, pairs).
func (r *RawSnapshot) Len() (items, pairs int) { return len(r.items), len(r.pairs) }

// Snapshot derives the sorted public export from the capture, exactly
// as Analyzer.Snapshot would have at capture time: entries with
// counter >= minSupport, descending counter, ties by key.
func (r *RawSnapshot) Snapshot(minSupport uint32) Snapshot {
	var s Snapshot
	for _, e := range r.pairs {
		if e.Count >= minSupport {
			s.Pairs = append(s.Pairs, PairCount{Pair: e.Key, Count: e.Count, Tier: e.Tier})
		}
	}
	for _, e := range r.items {
		if e.Count >= minSupport {
			s.Items = append(s.Items, ItemCount{Extent: e.Key, Count: e.Count, Tier: e.Tier})
		}
	}
	s.sort()
	return s
}

// Rules derives directional association rules from the capture,
// producing exactly what Analyzer.Rules would have at capture time:
// the antecedent lookup consults every captured item (the full item
// table), and sortRules is a total order, so the output is
// reproducible entry for entry.
func (r *RawSnapshot) Rules(minSupport uint32, minConfidence float64) []Rule {
	return r.TopRules(minSupport, minConfidence, 0)
}

// TopRules is Rules bounded to the limit highest-ranked rules (all of
// them when limit <= 0); the result is exactly Rules(...)[:limit].
func (r *RawSnapshot) TopRules(minSupport uint32, minConfidence float64, limit int) []Rule {
	items := make(map[blktrace.Extent]uint32, len(r.items))
	for _, e := range r.items {
		items[e.Key] = e.Count
	}
	sink := newRuleSink(limit)
	for _, e := range r.pairs {
		if e.Count < minSupport {
			continue
		}
		sink.addPair(e.Key, e.Count, minConfidence, func(ext blktrace.Extent) uint32 {
			return items[ext]
		})
	}
	return sink.finish()
}

// WriteTo serialises the capture in the synopsis snapshot format,
// byte-identical to what Analyzer.WriteTo would have produced at
// capture time (Analyzer.WriteTo delegates here). It implements
// io.WriterTo, so a capture plugs directly into checkpoint stores.
func (r *RawSnapshot) WriteTo(w io.Writer) (int64, error) {
	return encodeSnapshot(w, r.cfg, r.stats, r.items, r.pairs)
}
