package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"daccor/internal/blktrace"
)

// Synopsis persistence: a deployed characterizer can save its state on
// shutdown and restore it on restart, avoiding the cold-start transient
// (the §V.1 experiment quantifies what that transient costs a consumer).
// The format captures both tables' entries in exact recency order, so a
// restored analyzer behaves identically to the original on any
// subsequent stream.
//
//	header:  magic "DSYN" | u16 version | config | stats
//	tables:  item entries, then pair entries, each MRU→LRU with tier

const (
	synMagic   = "DSYN"
	synVersion = 1
)

// Persistence errors.
var (
	ErrBadSnapshotMagic   = errors.New("core: bad magic, not a synopsis snapshot")
	ErrBadSnapshotVersion = errors.New("core: unsupported snapshot version")
)

type countingWriter struct {
	w *bufio.Writer
	n int64
}

func (cw *countingWriter) write(data any) error {
	if err := binary.Write(cw.w, binary.LittleEndian, data); err != nil {
		return err
	}
	cw.n += int64(binary.Size(data))
	return nil
}

// WriteTo serialises the analyzer's full state. It implements
// io.WriterTo.
func (a *Analyzer) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriter(w)}
	if _, err := cw.w.WriteString(synMagic); err != nil {
		return cw.n, err
	}
	cw.n += int64(len(synMagic))
	hdr := []any{
		uint16(synVersion),
		uint64(a.cfg.ItemCapacity),
		uint64(a.cfg.PairCapacity),
		a.cfg.PromoteThreshold,
		math.Float64bits(a.cfg.TierRatio),
		a.stats,
	}
	for _, v := range hdr {
		if err := cw.write(v); err != nil {
			return cw.n, err
		}
	}
	items := a.items.Entries(0) // T2 first, MRU→LRU within each tier
	if err := cw.write(uint32(len(items))); err != nil {
		return cw.n, err
	}
	for _, e := range items {
		if err := cw.write(itemRecord{
			Tier: uint8(e.Tier), Count: e.Count,
			Block: e.Key.Block, Len: e.Key.Len,
		}); err != nil {
			return cw.n, err
		}
	}
	pairs := a.pairs.Entries(0)
	if err := cw.write(uint32(len(pairs))); err != nil {
		return cw.n, err
	}
	for _, e := range pairs {
		if err := cw.write(pairRecord{
			Tier: uint8(e.Tier), Count: e.Count,
			ABlock: e.Key.A.Block, ALen: e.Key.A.Len,
			BBlock: e.Key.B.Block, BLen: e.Key.B.Len,
		}); err != nil {
			return cw.n, err
		}
	}
	return cw.n, cw.w.Flush()
}

type itemRecord struct {
	Tier  uint8
	Count uint32
	Block uint64
	Len   uint32
}

type pairRecord struct {
	Tier           uint8
	Count          uint32
	ABlock, BBlock uint64
	ALen, BLen     uint32
}

// LoadAnalyzer reconstructs an analyzer from a snapshot produced by
// WriteTo. The restored analyzer is behaviourally identical to the
// saved one: same configuration, same counters, same recency order in
// every tier.
func LoadAnalyzer(r io.Reader) (*Analyzer, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(synMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, ErrBadSnapshotMagic
	}
	if string(magic) != synMagic {
		return nil, ErrBadSnapshotMagic
	}
	var version uint16
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != synVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadSnapshotVersion, version)
	}
	var (
		itemCap, pairCap uint64
		threshold        uint32
		ratioBits        uint64
		stats            Stats
	)
	for _, v := range []any{&itemCap, &pairCap, &threshold, &ratioBits, &stats} {
		if err := binary.Read(br, binary.LittleEndian, v); err != nil {
			return nil, err
		}
	}
	a, err := NewAnalyzer(Config{
		ItemCapacity:     int(itemCap),
		PairCapacity:     int(pairCap),
		PromoteThreshold: threshold,
		TierRatio:        math.Float64frombits(ratioBits),
	})
	if err != nil {
		return nil, fmt.Errorf("core: snapshot config invalid: %w", err)
	}
	a.stats = stats

	var nItems uint32
	if err := binary.Read(br, binary.LittleEndian, &nItems); err != nil {
		return nil, err
	}
	for i := uint32(0); i < nItems; i++ {
		var rec itemRecord
		if err := binary.Read(br, binary.LittleEndian, &rec); err != nil {
			return nil, err
		}
		e := blktrace.Extent{Block: rec.Block, Len: rec.Len}
		if e.Len == 0 {
			return nil, fmt.Errorf("core: snapshot item %v has zero length", e)
		}
		if err := a.items.restore(e, rec.Count, Tier(rec.Tier)); err != nil {
			return nil, err
		}
	}
	var nPairs uint32
	if err := binary.Read(br, binary.LittleEndian, &nPairs); err != nil {
		return nil, err
	}
	for i := uint32(0); i < nPairs; i++ {
		var rec pairRecord
		if err := binary.Read(br, binary.LittleEndian, &rec); err != nil {
			return nil, err
		}
		p := blktrace.Pair{
			A: blktrace.Extent{Block: rec.ABlock, Len: rec.ALen},
			B: blktrace.Extent{Block: rec.BBlock, Len: rec.BLen},
		}
		if p.A.Len == 0 || p.B.Len == 0 {
			return nil, fmt.Errorf("core: snapshot pair %v has zero-length extent", p)
		}
		if p.B.Less(p.A) {
			return nil, fmt.Errorf("core: snapshot pair %v not canonical", p)
		}
		if err := a.pairs.restore(p, rec.Count, Tier(rec.Tier)); err != nil {
			return nil, err
		}
		a.registerPair(a.pairs.index[p], p)
	}
	return a, nil
}

// restore appends an entry at the LRU end of the given tier, so
// feeding entries in Entries(0) order (MRU→LRU per tier) reproduces
// the exact recency order. It rejects duplicates, invalid tiers, and
// capacity overflows.
func (t *Table[K]) restore(k K, count uint32, tier Tier) error {
	if _, dup := t.index[k]; dup {
		return fmt.Errorf("core: snapshot entry %v duplicated", k)
	}
	if count == 0 {
		return fmt.Errorf("core: snapshot entry %v has zero count", k)
	}
	switch tier {
	case Tier1:
		if t.t1.size >= t.cfg.Capacity1 {
			return fmt.Errorf("core: snapshot overflows T1 capacity %d", t.cfg.Capacity1)
		}
	case Tier2:
		if t.t2.size >= t.cfg.Capacity2 {
			return fmt.Errorf("core: snapshot overflows T2 capacity %d", t.cfg.Capacity2)
		}
		if count < t.cfg.PromoteThreshold {
			return fmt.Errorf("core: snapshot T2 entry %v below promote threshold", k)
		}
	default:
		return fmt.Errorf("core: snapshot entry %v has invalid tier %d", k, tier)
	}
	s := t.alloc(k, count, tier)
	if tier == Tier1 {
		t.listPushBack(&t.t1, s)
	} else {
		t.listPushBack(&t.t2, s)
	}
	t.index[k] = s
	return nil
}
