package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"daccor/internal/blktrace"
)

// Synopsis persistence: a deployed characterizer can save its state on
// shutdown and restore it on restart, avoiding the cold-start transient
// (the §V.1 experiment quantifies what that transient costs a consumer).
// The format captures both tables' entries in exact recency order, so a
// restored analyzer behaves identically to the original on any
// subsequent stream.
//
//	header:  magic "DSYN" | u16 version | config | stats
//	tables:  item entries, then pair entries, each MRU→LRU with tier

const (
	synMagic   = "DSYN"
	synVersion = 1
)

// MaxSnapshotCapacity bounds the table capacities LoadAnalyzer will
// accept from a snapshot header. Snapshots are read from disk and over
// trust boundaries (checkpoint directories, operator-supplied files),
// so a corrupt or hostile 64-bit capacity field must fail validation
// here — before it is ever used to size an allocation — rather than
// attempt a multi-gigabyte table build. 16Mi entries per table is far
// beyond any configuration the paper's experiments contemplate (§IV
// uses tables of a few thousand entries).
const MaxSnapshotCapacity = 1 << 24

// Persistence errors. Load failures wrap one of these sentinels and
// carry the byte offset where decoding stopped, so a corrupt
// checkpoint can be diagnosed from the error string alone.
var (
	ErrBadSnapshotMagic   = errors.New("core: bad magic, not a synopsis snapshot")
	ErrBadSnapshotVersion = errors.New("core: unsupported snapshot version")
	ErrBadSnapshotHeader  = errors.New("core: invalid snapshot header")
	ErrBadSnapshotRecord  = errors.New("core: invalid snapshot record")
)

type countingWriter struct {
	w *bufio.Writer
	n int64
}

func (cw *countingWriter) write(data any) error {
	if err := binary.Write(cw.w, binary.LittleEndian, data); err != nil {
		return err
	}
	cw.n += int64(binary.Size(data))
	return nil
}

// WriteTo serialises the analyzer's full state. It implements
// io.WriterTo. The encoding runs over a fresh capture, so it is the
// same bytes RawSnapshot.WriteTo yields from a capture at this moment.
func (a *Analyzer) WriteTo(w io.Writer) (int64, error) {
	var r RawSnapshot
	a.CaptureSnapshot(&r)
	return r.WriteTo(w)
}

// encodeSnapshot writes the synopsis snapshot format from captured
// state: header (config + stats), then both tables' entries in
// Entries(0) order (T2 first, MRU→LRU within each tier).
func encodeSnapshot(w io.Writer, cfg Config, stats Stats,
	items []Entry[blktrace.Extent], pairs []Entry[blktrace.Pair]) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriter(w)}
	if _, err := cw.w.WriteString(synMagic); err != nil {
		return cw.n, err
	}
	cw.n += int64(len(synMagic))
	hdr := []any{
		uint16(synVersion),
		uint64(cfg.ItemCapacity),
		uint64(cfg.PairCapacity),
		cfg.PromoteThreshold,
		math.Float64bits(cfg.TierRatio),
		stats,
	}
	for _, v := range hdr {
		if err := cw.write(v); err != nil {
			return cw.n, err
		}
	}
	if err := cw.write(uint32(len(items))); err != nil {
		return cw.n, err
	}
	// The record loops hand-roll the little-endian layout instead of
	// going through binary.Write: its reflection path allocates per
	// record, which turns a checkpoint of a full synopsis (tens of
	// thousands of records) into megabytes of garbage and the bulk of
	// the encode's CPU. Layouts must match itemRecord/pairRecord field
	// order exactly — the decoder still reads those structs, and
	// TestDifferentialCheckpointRestoreReplay pins the bytes.
	var rec [pairRecordSize]byte
	for _, e := range items {
		rec[0] = uint8(e.Tier)
		binary.LittleEndian.PutUint32(rec[1:], e.Count)
		binary.LittleEndian.PutUint64(rec[5:], e.Key.Block)
		binary.LittleEndian.PutUint32(rec[13:], e.Key.Len)
		if _, err := cw.w.Write(rec[:itemRecordSize]); err != nil {
			return cw.n, err
		}
		cw.n += itemRecordSize
	}
	if err := cw.write(uint32(len(pairs))); err != nil {
		return cw.n, err
	}
	for _, e := range pairs {
		rec[0] = uint8(e.Tier)
		binary.LittleEndian.PutUint32(rec[1:], e.Count)
		binary.LittleEndian.PutUint64(rec[5:], e.Key.A.Block)
		binary.LittleEndian.PutUint64(rec[13:], e.Key.B.Block)
		binary.LittleEndian.PutUint32(rec[21:], e.Key.A.Len)
		binary.LittleEndian.PutUint32(rec[25:], e.Key.B.Len)
		if _, err := cw.w.Write(rec[:pairRecordSize]); err != nil {
			return cw.n, err
		}
		cw.n += pairRecordSize
	}
	return cw.n, cw.w.Flush()
}

// Wire sizes of the two record layouts (binary.Size of the structs:
// fields packed in declaration order, no padding).
const (
	itemRecordSize = 1 + 4 + 8 + 4
	pairRecordSize = 1 + 4 + 8 + 8 + 4 + 4
)

type itemRecord struct {
	Tier  uint8
	Count uint32
	Block uint64
	Len   uint32
}

type pairRecord struct {
	Tier           uint8
	Count          uint32
	ABlock, BBlock uint64
	ALen, BLen     uint32
}

// countingReader tracks the byte offset of every decode so that a
// failure anywhere in the stream can report exactly where the snapshot
// went bad.
type countingReader struct {
	r   *bufio.Reader
	off int64
}

func (cr *countingReader) read(v any) error {
	if err := binary.Read(cr.r, binary.LittleEndian, v); err != nil {
		return fmt.Errorf("core: snapshot truncated at offset %d: %w", cr.off, err)
	}
	cr.off += int64(binary.Size(v))
	return nil
}

// LoadAnalyzer reconstructs an analyzer from a snapshot produced by
// WriteTo. The restored analyzer is behaviourally identical to the
// saved one: same configuration, same counters, same recency order in
// every tier.
//
// The input is treated as untrusted: every header field is validated
// against sane bounds before it sizes any allocation, record counts
// are checked against the declared capacities, and all failures wrap
// an ErrBadSnapshot* sentinel with the byte offset of the bad field.
func LoadAnalyzer(r io.Reader) (*Analyzer, error) {
	cr := &countingReader{r: bufio.NewReader(r)}
	magic := make([]byte, len(synMagic))
	if _, err := io.ReadFull(cr.r, magic); err != nil {
		return nil, ErrBadSnapshotMagic
	}
	if string(magic) != synMagic {
		return nil, ErrBadSnapshotMagic
	}
	cr.off = int64(len(synMagic))
	var version uint16
	if err := cr.read(&version); err != nil {
		return nil, err
	}
	if version != synVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadSnapshotVersion, version)
	}
	var (
		itemCap, pairCap uint64
		threshold        uint32
		ratioBits        uint64
		stats            Stats
	)
	hdr := []struct {
		v    any
		name string
	}{
		{&itemCap, "item capacity"},
		{&pairCap, "pair capacity"},
		{&threshold, "promote threshold"},
		{&ratioBits, "tier ratio"},
		{&stats, "stats"},
	}
	offs := make(map[string]int64, len(hdr))
	for _, f := range hdr {
		offs[f.name] = cr.off
		if err := cr.read(f.v); err != nil {
			return nil, err
		}
	}
	// Bound the capacities before they flow into NewAnalyzer: the raw
	// u64s are attacker-controlled, and int(1<<40) must never reach an
	// allocation size.
	for _, c := range []struct {
		v    uint64
		name string
	}{{itemCap, "item capacity"}, {pairCap, "pair capacity"}} {
		if c.v == 0 || c.v > MaxSnapshotCapacity {
			return nil, fmt.Errorf("%w: %s %d at offset %d (want 1..%d)",
				ErrBadSnapshotHeader, c.name, c.v, offs[c.name], MaxSnapshotCapacity)
		}
	}
	ratio := math.Float64frombits(ratioBits)
	if math.IsNaN(ratio) || math.IsInf(ratio, 0) || ratio < 0 {
		return nil, fmt.Errorf("%w: tier ratio %v at offset %d",
			ErrBadSnapshotHeader, ratio, offs["tier ratio"])
	}
	a, err := NewAnalyzer(Config{
		ItemCapacity:     int(itemCap),
		PairCapacity:     int(pairCap),
		PromoteThreshold: threshold,
		TierRatio:        ratio,
	})
	if err != nil {
		return nil, fmt.Errorf("%w: config rejected at offset %d: %v",
			ErrBadSnapshotHeader, offs["item capacity"], err)
	}
	a.stats = stats

	var nItems uint32
	countOff := cr.off
	if err := cr.read(&nItems); err != nil {
		return nil, err
	}
	// Capacity C is per tier, so a full table holds 2C entries.
	if uint64(nItems) > 2*itemCap {
		return nil, fmt.Errorf("%w: %d item records at offset %d exceed capacity %d",
			ErrBadSnapshotHeader, nItems, countOff, 2*itemCap)
	}
	for i := uint32(0); i < nItems; i++ {
		recOff := cr.off
		var rec itemRecord
		if err := cr.read(&rec); err != nil {
			return nil, err
		}
		e := blktrace.Extent{Block: rec.Block, Len: rec.Len}
		if e.Len == 0 {
			return nil, fmt.Errorf("%w: item %v at offset %d has zero length",
				ErrBadSnapshotRecord, e, recOff)
		}
		if err := a.items.restore(e, rec.Count, Tier(rec.Tier)); err != nil {
			return nil, fmt.Errorf("%w: item %d at offset %d: %v",
				ErrBadSnapshotRecord, i, recOff, err)
		}
	}
	var nPairs uint32
	countOff = cr.off
	if err := cr.read(&nPairs); err != nil {
		return nil, err
	}
	if uint64(nPairs) > 2*pairCap {
		return nil, fmt.Errorf("%w: %d pair records at offset %d exceed capacity %d",
			ErrBadSnapshotHeader, nPairs, countOff, 2*pairCap)
	}
	for i := uint32(0); i < nPairs; i++ {
		recOff := cr.off
		var rec pairRecord
		if err := cr.read(&rec); err != nil {
			return nil, err
		}
		p := blktrace.Pair{
			A: blktrace.Extent{Block: rec.ABlock, Len: rec.ALen},
			B: blktrace.Extent{Block: rec.BBlock, Len: rec.BLen},
		}
		if p.A.Len == 0 || p.B.Len == 0 {
			return nil, fmt.Errorf("%w: pair %v at offset %d has zero-length extent",
				ErrBadSnapshotRecord, p, recOff)
		}
		if p.B.Less(p.A) {
			return nil, fmt.Errorf("%w: pair %v at offset %d not canonical",
				ErrBadSnapshotRecord, p, recOff)
		}
		if err := a.pairs.restore(p, rec.Count, Tier(rec.Tier)); err != nil {
			return nil, fmt.Errorf("%w: pair %d at offset %d: %v",
				ErrBadSnapshotRecord, i, recOff, err)
		}
		a.registerPair(a.pairs.lookup(p), p)
	}
	return a, nil
}

// restore appends an entry at the LRU end of the given tier, so
// feeding entries in Entries(0) order (MRU→LRU per tier) reproduces
// the exact recency order. It rejects duplicates, invalid tiers, and
// capacity overflows.
func (t *Table[K]) restore(k K, count uint32, tier Tier) error {
	h := hashOf(t.idx.seed, k)
	if t.indexLookup(h, k) != nilSlot {
		return fmt.Errorf("core: snapshot entry %v duplicated", k)
	}
	if count == 0 {
		return fmt.Errorf("core: snapshot entry %v has zero count", k)
	}
	switch tier {
	case Tier1:
		if t.t1.size >= t.cfg.Capacity1 {
			return fmt.Errorf("core: snapshot overflows T1 capacity %d", t.cfg.Capacity1)
		}
	case Tier2:
		if t.t2.size >= t.cfg.Capacity2 {
			return fmt.Errorf("core: snapshot overflows T2 capacity %d", t.cfg.Capacity2)
		}
		if count < t.cfg.PromoteThreshold {
			return fmt.Errorf("core: snapshot T2 entry %v below promote threshold", k)
		}
	default:
		return fmt.Errorf("core: snapshot entry %v has invalid tier %d", k, tier)
	}
	s := t.alloc(k, count, tier)
	if tier == Tier1 {
		t.listPushBack(&t.t1, s)
	} else {
		t.listPushBack(&t.t2, s)
	}
	t.indexInsert(h, s)
	return nil
}
