package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"daccor/internal/blktrace"
)

func randomTransactions(rng *rand.Rand, n int) [][]blktrace.Extent {
	txs := make([][]blktrace.Extent, n)
	for i := range txs {
		size := 1 + rng.Intn(5)
		seen := map[blktrace.Extent]struct{}{}
		for len(txs[i]) < size {
			e := ext(uint64(rng.Intn(50)), uint32(1+rng.Intn(4)))
			if _, dup := seen[e]; dup {
				continue
			}
			seen[e] = struct{}{}
			txs[i] = append(txs[i], e)
		}
	}
	return txs
}

func TestPersistRoundTrip(t *testing.T) {
	a := mustAnalyzer(t, Config{ItemCapacity: 16, PairCapacity: 16})
	rng := rand.New(rand.NewSource(3))
	for _, tx := range randomTransactions(rng, 200) {
		a.Process(tx)
	}
	var buf bytes.Buffer
	n, err := a.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	b, err := LoadAnalyzer(&buf)
	if err != nil {
		t.Fatalf("LoadAnalyzer: %v", err)
	}
	if !reflect.DeepEqual(a.Snapshot(0), b.Snapshot(0)) {
		t.Error("snapshot mismatch after round trip")
	}
	if a.Stats() != b.Stats() {
		t.Errorf("stats mismatch: %+v vs %+v", a.Stats(), b.Stats())
	}
	if a.Config() != b.Config() {
		t.Errorf("config mismatch: %+v vs %+v", a.Config(), b.Config())
	}
	if err := b.Items().CheckInvariants(); err != nil {
		t.Errorf("restored item table: %v", err)
	}
	if err := b.Pairs().CheckInvariants(); err != nil {
		t.Errorf("restored pair table: %v", err)
	}
}

// TestEncodeRecordLayout pins the hand-rolled record encoding in
// encodeSnapshot to the reflective layout the decoder reads
// (binary.Write of itemRecord/pairRecord in declaration order). If
// either side drifts, on-disk snapshots stop round-tripping.
func TestEncodeRecordLayout(t *testing.T) {
	item := Entry[blktrace.Extent]{
		Key: ext(0x1122334455667788, 0x99aabbcc), Count: 0xdeadbeef, Tier: Tier2,
	}
	pair := Entry[blktrace.Pair]{
		Key: blktrace.Pair{
			A: ext(0x0102030405060708, 0x0a0b0c0d),
			B: ext(0x1112131415161718, 0x1a1b1c1d),
		},
		Count: 0xcafef00d, Tier: Tier1,
	}
	var got bytes.Buffer
	if _, err := encodeSnapshot(&got, Config{ItemCapacity: 16, PairCapacity: 16}, Stats{},
		[]Entry[blktrace.Extent]{item}, []Entry[blktrace.Pair]{pair}); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	for _, v := range []any{
		itemRecord{Tier: uint8(item.Tier), Count: item.Count, Block: item.Key.Block, Len: item.Key.Len},
		pairRecord{
			Tier: uint8(pair.Tier), Count: pair.Count,
			ABlock: pair.Key.A.Block, ALen: pair.Key.A.Len,
			BBlock: pair.Key.B.Block, BLen: pair.Key.B.Len,
		},
	} {
		if err := binary.Write(&want, binary.LittleEndian, v); err != nil {
			t.Fatal(err)
		}
	}
	if int64(binary.Size(itemRecord{})) != itemRecordSize ||
		int64(binary.Size(pairRecord{})) != pairRecordSize {
		t.Fatalf("record size constants drifted: item %d want %d, pair %d want %d",
			itemRecordSize, binary.Size(itemRecord{}), pairRecordSize, binary.Size(pairRecord{}))
	}
	// The stream is header | u32 count | item record | u32 count | pair
	// record; check both records byte-for-byte where they sit.
	stream := got.Bytes()
	itemOff := len(stream) - int(pairRecordSize) - 4 - int(itemRecordSize)
	wantItem := want.Bytes()[:itemRecordSize]
	if !bytes.Equal(stream[itemOff:itemOff+int(itemRecordSize)], wantItem) {
		t.Errorf("item record bytes drifted from binary.Write layout")
	}
	pairOff := len(stream) - int(pairRecordSize)
	if !bytes.Equal(stream[pairOff:], want.Bytes()[itemRecordSize:]) {
		t.Errorf("pair record bytes drifted from binary.Write layout")
	}
}

// The strong property: a restored analyzer behaves identically to the
// original on any subsequent stream — recency order, eviction choices,
// promotions, everything.
func TestPersistBehavioralEquivalenceQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, err := NewAnalyzer(Config{
			ItemCapacity: 2 + rng.Intn(10),
			PairCapacity: 2 + rng.Intn(10),
		})
		if err != nil {
			return false
		}
		for _, tx := range randomTransactions(rng, 100) {
			a.Process(tx)
		}
		var buf bytes.Buffer
		if _, err := a.WriteTo(&buf); err != nil {
			return false
		}
		b, err := LoadAnalyzer(&buf)
		if err != nil {
			return false
		}
		// Drive both with the same further stream.
		for _, tx := range randomTransactions(rng, 100) {
			a.Process(tx)
			b.Process(tx)
		}
		return reflect.DeepEqual(a.Snapshot(0), b.Snapshot(0)) && a.Stats() == b.Stats()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPersistEmptyAnalyzer(t *testing.T) {
	a := mustAnalyzer(t, Config{ItemCapacity: 8, PairCapacity: 8})
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := LoadAnalyzer(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.Items().Len() != 0 || b.Pairs().Len() != 0 {
		t.Error("restored empty analyzer not empty")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := LoadAnalyzer(strings.NewReader("")); !errors.Is(err, ErrBadSnapshotMagic) {
		t.Errorf("empty input: %v", err)
	}
	if _, err := LoadAnalyzer(strings.NewReader("NOPE nonsense")); !errors.Is(err, ErrBadSnapshotMagic) {
		t.Errorf("bad magic: %v", err)
	}
	// Valid snapshot with clobbered version.
	a := mustAnalyzer(t, Config{ItemCapacity: 4, PairCapacity: 4})
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 0xFF
	if _, err := LoadAnalyzer(bytes.NewReader(data)); !errors.Is(err, ErrBadSnapshotVersion) {
		t.Errorf("bad version: %v", err)
	}
}

func TestLoadRejectsTruncation(t *testing.T) {
	a := mustAnalyzer(t, Config{ItemCapacity: 8, PairCapacity: 8})
	a.Process([]blktrace.Extent{ext(1, 1), ext(2, 1)})
	a.Process([]blktrace.Extent{ext(1, 1), ext(2, 1)})
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every strict prefix must fail, never panic.
	for cut := 0; cut < len(full); cut += 7 {
		if _, err := LoadAnalyzer(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// snapshotBytes returns a valid snapshot of a small exercised analyzer
// plus the byte offsets of the header fields, so tests can corrupt
// specific fields in place.
func snapshotBytes(t *testing.T) (data []byte, off struct{ itemCap, pairCap, ratio, nItems int }) {
	t.Helper()
	a := mustAnalyzer(t, Config{ItemCapacity: 8, PairCapacity: 8})
	a.Process([]blktrace.Extent{ext(1, 1), ext(2, 1)})
	a.Process([]blktrace.Extent{ext(1, 1), ext(2, 1)})
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// magic(4) | version u16 | itemCap u64 | pairCap u64 |
	// threshold u32 | ratioBits u64 | stats | nItems u32 | ...
	off.itemCap = 4 + 2
	off.pairCap = off.itemCap + 8
	off.ratio = off.pairCap + 8 + 4
	off.nItems = off.ratio + 8 + binary.Size(Stats{})
	return buf.Bytes(), off
}

// A corrupt or hostile header must be rejected with a located error
// before it can size an allocation — int(1<<40) must never reach a
// table build.
func TestLoadRejectsHostileHeader(t *testing.T) {
	tests := []struct {
		name    string
		corrupt func(data []byte, off struct{ itemCap, pairCap, ratio, nItems int })
	}{
		{"item capacity huge", func(d []byte, o struct{ itemCap, pairCap, ratio, nItems int }) {
			binary.LittleEndian.PutUint64(d[o.itemCap:], 1<<40)
		}},
		{"item capacity zero", func(d []byte, o struct{ itemCap, pairCap, ratio, nItems int }) {
			binary.LittleEndian.PutUint64(d[o.itemCap:], 0)
		}},
		{"pair capacity overflows int", func(d []byte, o struct{ itemCap, pairCap, ratio, nItems int }) {
			binary.LittleEndian.PutUint64(d[o.pairCap:], 1<<63)
		}},
		{"tier ratio NaN", func(d []byte, o struct{ itemCap, pairCap, ratio, nItems int }) {
			binary.LittleEndian.PutUint64(d[o.ratio:], math.Float64bits(math.NaN()))
		}},
		{"tier ratio +Inf", func(d []byte, o struct{ itemCap, pairCap, ratio, nItems int }) {
			binary.LittleEndian.PutUint64(d[o.ratio:], math.Float64bits(math.Inf(1)))
		}},
		{"tier ratio negative", func(d []byte, o struct{ itemCap, pairCap, ratio, nItems int }) {
			binary.LittleEndian.PutUint64(d[o.ratio:], math.Float64bits(-0.5))
		}},
		{"item count exceeds capacity", func(d []byte, o struct{ itemCap, pairCap, ratio, nItems int }) {
			binary.LittleEndian.PutUint32(d[o.nItems:], 1<<30)
		}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			data, off := snapshotBytes(t)
			tc.corrupt(data, off)
			_, err := LoadAnalyzer(bytes.NewReader(data))
			if !errors.Is(err, ErrBadSnapshotHeader) {
				t.Fatalf("got %v, want ErrBadSnapshotHeader", err)
			}
			if !strings.Contains(err.Error(), "offset") {
				t.Errorf("error %q does not locate the bad field", err)
			}
		})
	}
}

// Decode failures must say where the stream went bad.
func TestLoadErrorsCarryOffsets(t *testing.T) {
	data, off := snapshotBytes(t)
	if _, err := LoadAnalyzer(bytes.NewReader(data[:off.nItems+2])); err == nil ||
		!strings.Contains(err.Error(), "offset") {
		t.Errorf("truncation error %v lacks an offset", err)
	}
	// Duplicate item record: copy the first record over the second.
	recSize := binary.Size(itemRecord{})
	first := data[off.nItems+4 : off.nItems+4+recSize]
	copy(data[off.nItems+4+recSize:], first)
	_, err := LoadAnalyzer(bytes.NewReader(data))
	if !errors.Is(err, ErrBadSnapshotRecord) {
		t.Fatalf("duplicate record: got %v, want ErrBadSnapshotRecord", err)
	}
	if !strings.Contains(err.Error(), "offset") {
		t.Errorf("record error %q lacks an offset", err)
	}
}

func TestLoadRejectsNonCanonicalPair(t *testing.T) {
	a := mustAnalyzer(t, Config{ItemCapacity: 8, PairCapacity: 8})
	a.Process([]blktrace.Extent{ext(1, 1), ext(2, 1)})
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// The pair record sits at the end; swap A and B blocks (bytes are
	// little-endian u64s at fixed offsets from the tail).
	// Rather than compute offsets, corrupt by brute force: flip the
	// final pair's A block to something larger than B.
	// pairRecord layout: tier u8, pad..., easier: just corrupt last 12
	// bytes (B extent) to zeros, making B < A.
	for i := len(data) - 12; i < len(data); i++ {
		data[i] = 0
	}
	if _, err := LoadAnalyzer(bytes.NewReader(data)); err == nil {
		t.Error("corrupted pair accepted")
	}
}
