package core

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"daccor/internal/blktrace"
)

func randomTransactions(rng *rand.Rand, n int) [][]blktrace.Extent {
	txs := make([][]blktrace.Extent, n)
	for i := range txs {
		size := 1 + rng.Intn(5)
		seen := map[blktrace.Extent]struct{}{}
		for len(txs[i]) < size {
			e := ext(uint64(rng.Intn(50)), uint32(1+rng.Intn(4)))
			if _, dup := seen[e]; dup {
				continue
			}
			seen[e] = struct{}{}
			txs[i] = append(txs[i], e)
		}
	}
	return txs
}

func TestPersistRoundTrip(t *testing.T) {
	a := mustAnalyzer(t, Config{ItemCapacity: 16, PairCapacity: 16})
	rng := rand.New(rand.NewSource(3))
	for _, tx := range randomTransactions(rng, 200) {
		a.Process(tx)
	}
	var buf bytes.Buffer
	n, err := a.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	b, err := LoadAnalyzer(&buf)
	if err != nil {
		t.Fatalf("LoadAnalyzer: %v", err)
	}
	if !reflect.DeepEqual(a.Snapshot(0), b.Snapshot(0)) {
		t.Error("snapshot mismatch after round trip")
	}
	if a.Stats() != b.Stats() {
		t.Errorf("stats mismatch: %+v vs %+v", a.Stats(), b.Stats())
	}
	if a.Config() != b.Config() {
		t.Errorf("config mismatch: %+v vs %+v", a.Config(), b.Config())
	}
	if err := b.Items().CheckInvariants(); err != nil {
		t.Errorf("restored item table: %v", err)
	}
	if err := b.Pairs().CheckInvariants(); err != nil {
		t.Errorf("restored pair table: %v", err)
	}
}

// The strong property: a restored analyzer behaves identically to the
// original on any subsequent stream — recency order, eviction choices,
// promotions, everything.
func TestPersistBehavioralEquivalenceQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, err := NewAnalyzer(Config{
			ItemCapacity: 2 + rng.Intn(10),
			PairCapacity: 2 + rng.Intn(10),
		})
		if err != nil {
			return false
		}
		for _, tx := range randomTransactions(rng, 100) {
			a.Process(tx)
		}
		var buf bytes.Buffer
		if _, err := a.WriteTo(&buf); err != nil {
			return false
		}
		b, err := LoadAnalyzer(&buf)
		if err != nil {
			return false
		}
		// Drive both with the same further stream.
		for _, tx := range randomTransactions(rng, 100) {
			a.Process(tx)
			b.Process(tx)
		}
		return reflect.DeepEqual(a.Snapshot(0), b.Snapshot(0)) && a.Stats() == b.Stats()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPersistEmptyAnalyzer(t *testing.T) {
	a := mustAnalyzer(t, Config{ItemCapacity: 8, PairCapacity: 8})
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := LoadAnalyzer(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.Items().Len() != 0 || b.Pairs().Len() != 0 {
		t.Error("restored empty analyzer not empty")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := LoadAnalyzer(strings.NewReader("")); !errors.Is(err, ErrBadSnapshotMagic) {
		t.Errorf("empty input: %v", err)
	}
	if _, err := LoadAnalyzer(strings.NewReader("NOPE nonsense")); !errors.Is(err, ErrBadSnapshotMagic) {
		t.Errorf("bad magic: %v", err)
	}
	// Valid snapshot with clobbered version.
	a := mustAnalyzer(t, Config{ItemCapacity: 4, PairCapacity: 4})
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 0xFF
	if _, err := LoadAnalyzer(bytes.NewReader(data)); !errors.Is(err, ErrBadSnapshotVersion) {
		t.Errorf("bad version: %v", err)
	}
}

func TestLoadRejectsTruncation(t *testing.T) {
	a := mustAnalyzer(t, Config{ItemCapacity: 8, PairCapacity: 8})
	a.Process([]blktrace.Extent{ext(1, 1), ext(2, 1)})
	a.Process([]blktrace.Extent{ext(1, 1), ext(2, 1)})
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every strict prefix must fail, never panic.
	for cut := 0; cut < len(full); cut += 7 {
		if _, err := LoadAnalyzer(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestLoadRejectsNonCanonicalPair(t *testing.T) {
	a := mustAnalyzer(t, Config{ItemCapacity: 8, PairCapacity: 8})
	a.Process([]blktrace.Extent{ext(1, 1), ext(2, 1)})
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// The pair record sits at the end; swap A and B blocks (bytes are
	// little-endian u64s at fixed offsets from the tail).
	// Rather than compute offsets, corrupt by brute force: flip the
	// final pair's A block to something larger than B.
	// pairRecord layout: tier u8, pad..., easier: just corrupt last 12
	// bytes (B extent) to zeros, making B < A.
	for i := len(data) - 12; i < len(data); i++ {
		data[i] = 0
	}
	if _, err := LoadAnalyzer(bytes.NewReader(data)); err == nil {
		t.Error("corrupted pair accepted")
	}
}
